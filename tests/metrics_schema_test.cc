// Drift gate between the serve-metrics JSON and its operator documentation
// (docs/OPERATIONS.md §3): every key ToJson emits must be documented in
// the metrics table, every documented key must be emitted, and the object
// must carry the schema_version stamp dashboards key off. Adding, renaming,
// or removing a metric without updating the docs — or vice versa — fails
// here, not in someone's dashboard.

#include <gtest/gtest.h>

#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>

#include "server/serve_metrics.h"

namespace sobc {
namespace {

#ifndef SOBC_SOURCE_DIR
#error "metrics_schema_test needs SOBC_SOURCE_DIR (set by CMakeLists.txt)"
#endif

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Keys of the documented metrics table: every `backticked` token in the
/// Field column (the first cell) between the metrics-keys markers.
std::set<std::string> DocumentedKeys(const std::string& operations_md) {
  const std::size_t begin = operations_md.find("<!-- metrics-keys-begin");
  const std::size_t end = operations_md.find("<!-- metrics-keys-end");
  EXPECT_NE(begin, std::string::npos) << "metrics-keys-begin marker missing";
  EXPECT_NE(end, std::string::npos) << "metrics-keys-end marker missing";
  EXPECT_LT(begin, end);
  std::set<std::string> keys;
  std::istringstream lines(operations_md.substr(begin, end - begin));
  const std::regex token("`([a-z][a-z0-9_]*)`");
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] != '|') continue;
    // First cell only — the Meaning column backticks values and flag
    // names that are not JSON keys.
    const std::size_t cell_end = line.find('|', 1);
    if (cell_end == std::string::npos) continue;
    const std::string cell = line.substr(0, cell_end);
    for (std::sregex_iterator it(cell.begin(), cell.end(), token), last;
         it != last; ++it) {
      keys.insert((*it)[1].str());
    }
  }
  return keys;
}

/// Keys of the emitted JSON object: everything quoted and followed by a
/// colon (values are never — string values are followed by a comma).
std::set<std::string> EmittedKeys(const std::string& json) {
  std::set<std::string> keys;
  const std::regex key("\"([a-z][a-z0-9_]*)\":");
  for (std::sregex_iterator it(json.begin(), json.end(), key), last;
       it != last; ++it) {
    keys.insert((*it)[1].str());
  }
  return keys;
}

TEST(MetricsSchemaTest, EveryDocumentedKeyIsEmittedAndViceVersa) {
  const std::string docs =
      ReadFileOrDie(std::string(SOBC_SOURCE_DIR) + "/docs/OPERATIONS.md");
  const std::set<std::string> documented = DocumentedKeys(docs);
  const std::set<std::string> emitted =
      EmittedKeys(ServeMetricsSnapshot{}.ToJson());
  ASSERT_FALSE(documented.empty());
  ASSERT_FALSE(emitted.empty());
  for (const std::string& key : emitted) {
    EXPECT_TRUE(documented.count(key) > 0)
        << "ToJson emits `" << key
        << "` but docs/OPERATIONS.md §3 does not document it";
  }
  for (const std::string& key : documented) {
    EXPECT_TRUE(emitted.count(key) > 0)
        << "docs/OPERATIONS.md §3 documents `" << key
        << "` but ToJson does not emit it";
  }
}

TEST(MetricsSchemaTest, SchemaVersionIsStampedFirst) {
  const std::string json = ServeMetricsSnapshot{}.ToJson();
  const std::string expected =
      "{\"schema_version\": " +
      std::to_string(ServeMetricsSnapshot::kSchemaVersion);
  EXPECT_EQ(json.substr(0, expected.size()), expected)
      << "schema_version must lead the object: " << json.substr(0, 80);
}

}  // namespace
}  // namespace sobc
