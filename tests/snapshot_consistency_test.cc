// Reader-threads-vs-writer stress for the serving layer: every snapshot any
// reader ever observes must equal a from-scratch Brandes run on the graph at
// that snapshot's stream position. This is the whole publication contract —
// immutability, epoch monotonicity, and coalescing-transparency — checked
// end to end, and the test the TSAN CI job leans on for data-race coverage.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "bc/brandes.h"
#include "common/rng.h"
#include "gen/stream_generators.h"
#include "server/bc_service.h"
#include "tests/test_util.h"

namespace sobc {
namespace {

using testutil::ExpectScoresNear;
using testutil::RandomConnectedGraph;

// `apply_threads` drives the writer's sharded parallel apply: 1 keeps the
// historical single-threaded writer; >1 makes the writer a coordinator
// fanning each batch across worker engines while the readers still hammer
// the snapshot head — the full concurrency surface under one roof.
void RunSnapshotConsistency(int apply_threads) {
  Rng rng(77);
  const Graph base = RandomConnectedGraph(48, 30, &rng);
  EdgeStream stream = MixedUpdateStream(base, 80, 0.35, &rng);
  ASSERT_FALSE(stream.empty());

  BcServiceOptions options;
  options.queue.max_batch = 3;  // small batches: many publications to catch
  options.bc.num_threads = apply_threads;
  auto service_or = BcService::Create(base, options);
  ASSERT_TRUE(service_or.ok());
  BcService& service = **service_or;

  constexpr int kReaders = 4;
  std::atomic<bool> done{false};
  std::vector<std::map<std::uint64_t, std::shared_ptr<const ScoreSnapshot>>>
      observed(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t last_epoch = 0;
      while (!done.load(std::memory_order_acquire)) {
        const auto snap = service.snapshot();
        // Publications may only move forward under this reader's feet.
        EXPECT_GE(snap->epoch, last_epoch);
        last_epoch = snap->epoch;
        observed[r].emplace(snap->stream_position, snap);
        std::this_thread::yield();
      }
    });
  }

  // Pace the producer a little so readers catch intermediate epochs.
  for (std::size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE(service.Submit(stream[i]));
    if (i % 8 == 7) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  ASSERT_TRUE(service.Drain().ok());
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  // The final snapshot must be observable and complete.
  const auto final_snap = service.snapshot();
  EXPECT_EQ(final_snap->stream_position, stream.size());
  observed[0].emplace(final_snap->stream_position, final_snap);
  ASSERT_TRUE(service.Stop().ok());

  // Merge every reader's observations and verify each distinct epoch
  // against an independent from-scratch computation at that prefix.
  std::map<std::uint64_t, std::shared_ptr<const ScoreSnapshot>> distinct;
  for (const auto& per_reader : observed) {
    distinct.insert(per_reader.begin(), per_reader.end());
  }
  ASSERT_GE(distinct.size(), 2u);  // at least epoch 0 and the final state

  Graph replay = base;
  std::size_t position = 0;
  for (const auto& [target, snap] : distinct) {
    ASSERT_LE(target, stream.size());
    while (position < target) {
      ASSERT_TRUE(ApplyToGraph(&replay, stream[position]).ok());
      ++position;
    }
    EXPECT_EQ(snap->num_vertices, replay.NumVertices());
    EXPECT_EQ(snap->num_edges, replay.NumEdges());
    ExpectScoresNear(ComputeBrandes(replay), BcScores{snap->vbc, snap->ebc},
                     1e-7,
                     "snapshot at position " + std::to_string(target));
  }
}

TEST(SnapshotConsistency, EveryObservedSnapshotMatchesBrandesAtItsEpoch) {
  RunSnapshotConsistency(/*apply_threads=*/1);
}

TEST(SnapshotConsistency, ParallelWriterKeepsThePublicationContract) {
  RunSnapshotConsistency(/*apply_threads=*/3);
}

}  // namespace
}  // namespace sobc
