// Differential check between the paper's queueing model and the real
// serving queue: SimulateQueue's miss/delay accounting (Section 5.3) must
// match a DeadlineAccounting-instrumented drain of the actual UpdateQueue
// fed the same arrival trace — same misses, same delays, same gaps.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "parallel/online_scheduler.h"
#include "server/update_queue.h"

namespace sobc {
namespace {

/// Drains `queue` one update at a time under a virtual clock: update i
/// starts at max(arrival, previous finish) and runs for processing[i] —
/// exactly the serial-writer discipline SimulateQueue models.
OnlineReplayResult DrainWithVirtualClock(UpdateQueue* queue,
                                         const std::vector<double>& processing) {
  DeadlineAccounting accounting;
  DrainedBatch batch;
  double finish_prev = 0.0;
  bool first = true;
  std::size_t i = 0;
  while (queue->PopBatch(&batch)) {
    for (const EdgeUpdate& update : batch.updates) {
      if (first) {
        finish_prev = update.timestamp;
        first = false;
      }
      const double start = std::max(update.timestamp, finish_prev);
      const double finish = start + processing[i++];
      accounting.Record(update.timestamp, finish);
      finish_prev = finish;
    }
  }
  return accounting.Result();
}

TEST(OnlineQueueDifferential, RealDrainMatchesSimulateQueue) {
  Rng rng(42);
  constexpr std::size_t kUpdates = 200;
  std::vector<double> arrivals;
  std::vector<double> processing;
  double t = 0.0;
  for (std::size_t i = 0; i < kUpdates; ++i) {
    t += rng.LogNormal(0.0, 1.0);
    arrivals.push_back(t);
    // Processing times straddling the inter-arrival scale so both on-time
    // and missed updates occur.
    processing.push_back(rng.LogNormal(0.0, 1.0));
  }

  const OnlineReplayResult expected = SimulateQueue(arrivals, processing);
  ASSERT_GT(expected.missed, 0u);                     // trace exercises both
  ASSERT_LT(expected.missed, expected.deadline_updates);

  UpdateQueueOptions options;
  options.capacity = kUpdates;
  options.max_batch = 7;       // batch boundaries must not change accounting
  options.coalesce = false;    // distinct edges below; order is everything
  UpdateQueue queue(options);
  for (std::size_t i = 0; i < kUpdates; ++i) {
    ASSERT_TRUE(queue.Push({static_cast<VertexId>(i),
                            static_cast<VertexId>(i + kUpdates), EdgeOp::kAdd,
                            arrivals[i]}));
  }
  queue.Close();
  const OnlineReplayResult actual = DrainWithVirtualClock(&queue, processing);

  EXPECT_EQ(actual.total_updates, expected.total_updates);
  EXPECT_EQ(actual.deadline_updates, expected.deadline_updates);
  EXPECT_EQ(actual.missed, expected.missed);
  EXPECT_DOUBLE_EQ(actual.missed_fraction, expected.missed_fraction);
  EXPECT_NEAR(actual.avg_delay_seconds, expected.avg_delay_seconds, 1e-12);
  ASSERT_EQ(actual.inter_arrival_seconds.size(),
            expected.inter_arrival_seconds.size());
  for (std::size_t i = 0; i < actual.inter_arrival_seconds.size(); ++i) {
    EXPECT_NEAR(actual.inter_arrival_seconds[i],
                expected.inter_arrival_seconds[i], 1e-12);
  }

  const UpdateQueueStats stats = queue.stats();
  EXPECT_EQ(stats.received, kUpdates);
  EXPECT_EQ(stats.drained, kUpdates);
  EXPECT_EQ(stats.coalesced, 0u);
}

TEST(OnlineQueueDifferential, CoalescedDrainStillConsumesTheWholeTrace) {
  // With coalescing on and a churny trace, drained + coalesced must still
  // account for every received update — the accounting identity the serve
  // metrics (epoch lag) depend on.
  UpdateQueueOptions options;
  options.capacity = 64;
  options.max_batch = 64;
  UpdateQueue queue(options);
  for (int round = 0; round < 16; ++round) {
    ASSERT_TRUE(queue.Push({1, 2,
                            round % 2 == 0 ? EdgeOp::kAdd : EdgeOp::kRemove,
                            static_cast<double>(round)}));
  }
  queue.Close();
  std::size_t consumed = 0;
  std::size_t applied = 0;
  DrainedBatch batch;
  while (queue.PopBatch(&batch)) {
    consumed += batch.consumed;
    applied += batch.updates.size();
  }
  EXPECT_EQ(consumed, 16u);
  const UpdateQueueStats stats = queue.stats();
  EXPECT_EQ(stats.drained + stats.coalesced, 16u);
  EXPECT_EQ(stats.drained, applied);
  EXPECT_EQ(applied, 0u);  // an even toggle chain is a complete no-op
}

TEST(DeadlineAccounting, MatchesSimulateQueueOnHandComputedTrace) {
  // arrivals 0,1,2; processing 0.5, 2.0, 0.1:
  //   update 0 finishes 0.5  <= 1 -> on time
  //   update 1 starts 1, finishes 3 > 2 -> missed by 1.0
  //   update 2 has no deadline
  const std::vector<double> arrivals = {0.0, 1.0, 2.0};
  const std::vector<double> processing = {0.5, 2.0, 0.1};
  const OnlineReplayResult result = SimulateQueue(arrivals, processing);
  EXPECT_EQ(result.total_updates, 3u);
  EXPECT_EQ(result.deadline_updates, 2u);
  EXPECT_EQ(result.missed, 1u);
  EXPECT_DOUBLE_EQ(result.missed_fraction, 0.5);
  EXPECT_DOUBLE_EQ(result.avg_delay_seconds, 1.0);
}

}  // namespace
}  // namespace sobc
