#include "graph/msbfs.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "graph/csr_view.h"
#include "graph/graph.h"
#include "tests/test_util.h"

namespace sobc {
namespace {

/// Scalar reference: plain queue BFS plus the canonical min-id parent rule,
/// implemented independently of the kernel so the differential means
/// something.
void ScalarBfs(const Graph& g, VertexId root, bool reverse,
               std::vector<Distance>* dist, std::vector<VertexId>* parent) {
  const std::size_t n = g.NumVertices();
  dist->assign(n, kUnreachable);
  (*dist)[root] = 0;
  std::vector<VertexId> queue = {root};
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const VertexId x = queue[head];
    const auto out = reverse ? g.InNeighbors(x) : g.OutNeighbors(x);
    for (const VertexId w : out) {
      if ((*dist)[w] == kUnreachable) {
        (*dist)[w] = (*dist)[x] + 1;
        queue.push_back(w);
      }
    }
  }
  parent->assign(n, kInvalidVertex);
  for (VertexId v = 0; v < n; ++v) {
    if ((*dist)[v] == kUnreachable || (*dist)[v] == 0) continue;
    const auto in = reverse ? g.OutNeighbors(v) : g.InNeighbors(v);
    for (const VertexId u : in) {
      if ((*dist)[u] != kUnreachable && (*dist)[u] + 1 == (*dist)[v] &&
          ((*parent)[v] == kInvalidVertex || u < (*parent)[v])) {
        (*parent)[v] = u;
      }
    }
  }
}

/// Runs `sources` through the kernel 64 lanes at a time (the way every
/// integration layer drives it) and checks distances and canonical parents
/// against the scalar reference, lane by lane.
void ExpectMatchesScalar(const Graph& g, std::span<const VertexId> sources,
                         bool reverse, const MsBfsOptions& options,
                         MsBfsStats* stats = nullptr) {
  const std::size_t n = g.NumVertices();
  MsBfsScratch scratch;
  const CsrView& csr = g.csr();
  std::vector<std::vector<Distance>> lane_dist;
  std::vector<Distance> ref_dist;
  std::vector<VertexId> ref_parent;
  std::vector<VertexId> got_parent;
  for (std::size_t off = 0; off < sources.size();
       off += MsBfsScratch::kLanes) {
    const std::size_t lanes =
        std::min(MsBfsScratch::kLanes, sources.size() - off);
    lane_dist.assign(lanes, std::vector<Distance>(n));
    std::vector<Distance*> dist_ptrs(lanes);
    for (std::size_t i = 0; i < lanes; ++i) {
      dist_ptrs[i] = lane_dist[i].data();
    }
    MsBfsRun(csr, sources.subspan(off, lanes), reverse, options, &scratch,
             dist_ptrs, stats);
    for (std::size_t i = 0; i < lanes; ++i) {
      const VertexId s = sources[off + i];
      ScalarBfs(g, s, reverse, &ref_dist, &ref_parent);
      ASSERT_EQ(ref_dist, lane_dist[i])
          << "distance mismatch for source " << s << " (lane " << i << ")";
      MsBfsCanonicalParents(csr, reverse, lane_dist[i], &got_parent);
      ASSERT_EQ(ref_parent, got_parent)
          << "parent mismatch for source " << s << " (lane " << i << ")";
    }
  }
}

std::vector<VertexId> FirstSources(std::size_t count, std::size_t n) {
  std::vector<VertexId> sources;
  for (std::size_t i = 0; i < count; ++i) {
    sources.push_back(static_cast<VertexId>(i % n));
  }
  return sources;
}

TEST(MsBfsTest, MatchesScalarAcrossBatchSizes) {
  Rng rng(7);
  for (const bool directed : {false, true}) {
    for (const bool connected : {false, true}) {
      Graph g = connected
                    ? testutil::RandomConnectedGraph(160, 240, &rng)
                    : testutil::RandomGraph(160, 180, &rng, directed);
      if (connected && directed) continue;  // helper is undirected-only
      for (const std::size_t batch : {std::size_t{1}, std::size_t{63},
                                      std::size_t{64}, std::size_t{65}}) {
        const auto sources = FirstSources(batch, g.NumVertices());
        for (const bool dir_opt : {false, true}) {
          MsBfsOptions options;
          options.direction_optimizing = dir_opt;
          ExpectMatchesScalar(g, sources, /*reverse=*/false, options);
        }
      }
    }
  }
}

TEST(MsBfsTest, MatchesScalarOnSmallGraphFullBatch) {
  // n < 64: one ragged batch covering every vertex as a source.
  Rng rng(21);
  Graph g = testutil::RandomGraph(20, 35, &rng, /*directed=*/false);
  std::vector<VertexId> sources(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) sources[v] = v;
  ExpectMatchesScalar(g, sources, /*reverse=*/false, MsBfsOptions{});
}

TEST(MsBfsTest, MatchesScalarReverseDirected) {
  // The prefilter's orientation: distances *to* the root over in-edges.
  Rng rng(33);
  Graph g = testutil::RandomGraph(120, 300, &rng, /*directed=*/true);
  const auto sources = FirstSources(64, g.NumVertices());
  ExpectMatchesScalar(g, sources, /*reverse=*/true, MsBfsOptions{});
}

TEST(MsBfsTest, DirectionSwitchForcedAndIdentical) {
  // Star + path: the star explodes the frontier at level 1 (forcing the
  // bottom-up switch), the path tail shrinks it again (forcing the switch
  // back). Distances and parents must be identical either way.
  Graph g;
  constexpr VertexId kStar = 400;
  constexpr VertexId kPath = 40;
  for (VertexId leaf = 1; leaf <= kStar; ++leaf) {
    ASSERT_TRUE(g.AddEdge(0, leaf).ok());
  }
  for (VertexId i = 0; i < kPath; ++i) {
    ASSERT_TRUE(g.AddEdge(kStar + i, kStar + i + 1).ok());
  }
  ASSERT_TRUE(g.AddEdge(1, kStar + 1).ok());  // bridge star -> path

  std::vector<VertexId> sources = {0, 1, 2, kStar + kPath};
  MsBfsOptions on;
  on.direction_optimizing = true;
  on.alpha = 4.0;  // switch eagerly so the dense level goes bottom-up
  MsBfsStats stats_on;
  ExpectMatchesScalar(g, sources, /*reverse=*/false, on, &stats_on);
  EXPECT_GT(stats_on.bottom_up_levels, 0u);
  EXPECT_GT(stats_on.top_down_levels, 0u);

  MsBfsOptions off;
  off.direction_optimizing = false;
  MsBfsStats stats_off;
  ExpectMatchesScalar(g, sources, /*reverse=*/false, off, &stats_off);
  EXPECT_EQ(stats_off.bottom_up_levels, 0u);
}

TEST(MsBfsTest, DisconnectedComponentsStayUnreachable) {
  // Three islands plus two fully isolated vertices: lanes rooted in one
  // component must leave every other component at kUnreachable, including
  // under a forced bottom-up switch (the bottom-up scan probes EVERY
  // unvisited vertex, so a bug there typically invents parents across
  // components).
  Graph g;
  Rng rng(61);
  for (VertexId offset : {VertexId{0}, VertexId{12}, VertexId{24}}) {
    const Graph island = testutil::RandomConnectedGraph(10, 8, &rng);
    island.ForEachEdge([&](VertexId u, VertexId v) {
      ASSERT_TRUE(g.AddEdge(u + offset, v + offset).ok());
    });
  }
  g.EnsureVertex(35);  // 34 and 35 are isolated
  std::vector<VertexId> sources = {0, 5, 12, 24, 33, 34, 35};
  for (const bool dir_opt : {false, true}) {
    MsBfsOptions options;
    options.direction_optimizing = dir_opt;
    if (dir_opt) options.alpha = 1.0;  // switch as eagerly as possible
    ExpectMatchesScalar(g, sources, /*reverse=*/false, options);
  }
}

TEST(MsBfsTest, DirectedSinksAndZeroOutDegreeSources) {
  // Directed chain into a sink fan: several vertices have zero out-degree,
  // and lanes rooted AT a sink must terminate at level 0 with everything
  // else unreachable. Reverse orientation flips the roles (sources become
  // the unreachable-from side), covering the prefilter's direction.
  Graph g(/*directed=*/true);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(2, 3).ok());  // 3 is a sink
  ASSERT_TRUE(g.AddEdge(2, 4).ok());  // 4 is a sink
  ASSERT_TRUE(g.AddEdge(5, 2).ok());  // 5 is a source-only vertex
  ASSERT_TRUE(g.AddEdge(6, 7).ok());  // separate 2-vertex component
  std::vector<VertexId> sources = {0, 3, 4, 5, 6, 7};
  for (const bool dir_opt : {false, true}) {
    MsBfsOptions options;
    options.direction_optimizing = dir_opt;
    if (dir_opt) options.alpha = 1.0;
    ExpectMatchesScalar(g, sources, /*reverse=*/false, options);
    ExpectMatchesScalar(g, sources, /*reverse=*/true, options);
  }
}

TEST(MsBfsTest, SmallGraphSingleBatchBothKernelModes) {
  // n < 64 with every vertex enlisted as a source in ONE ragged batch —
  // the lane mask is partially populated and the frontier words are
  // narrower than the lane count. Both kernel modes must agree with the
  // scalar reference (the default-options variant above only covers the
  // default mode).
  Rng rng(62);
  for (const bool directed : {false, true}) {
    Graph g = testutil::RandomGraph(23, 40, &rng, directed);
    std::vector<VertexId> sources(g.NumVertices());
    for (VertexId v = 0; v < g.NumVertices(); ++v) sources[v] = v;
    for (const bool dir_opt : {false, true}) {
      MsBfsOptions options;
      options.direction_optimizing = dir_opt;
      if (dir_opt) options.alpha = 2.0;
      ExpectMatchesScalar(g, sources, /*reverse=*/false, options);
    }
  }
}

TEST(MsBfsTest, DuplicateSourcesShareLanes) {
  Rng rng(5);
  Graph g = testutil::RandomConnectedGraph(50, 60, &rng);
  const std::vector<VertexId> sources = {3, 3, 7, 3};
  ExpectMatchesScalar(g, sources, /*reverse=*/false, MsBfsOptions{});
}

TEST(MsBfsTest, ScratchStopsAllocatingAfterFirstRun) {
  Rng rng(11);
  Graph g = testutil::RandomConnectedGraph(200, 300, &rng);
  const CsrView& csr = g.csr();
  MsBfsScratch scratch;
  scratch.ReserveLanes(g.NumVertices());
  std::vector<Distance*> dist_ptrs(MsBfsScratch::kLanes);
  for (std::size_t i = 0; i < dist_ptrs.size(); ++i) {
    dist_ptrs[i] = scratch.LaneDistances(i);
  }
  const auto sources = FirstSources(MsBfsScratch::kLanes, g.NumVertices());
  MsBfsRun(csr, std::span<const VertexId>(sources), false, MsBfsOptions{},
           &scratch, dist_ptrs);
  const std::uint64_t after_first = scratch.allocation_events();
  for (int round = 0; round < 5; ++round) {
    MsBfsRun(csr, std::span<const VertexId>(sources), false, MsBfsOptions{},
             &scratch, dist_ptrs);
  }
  EXPECT_EQ(scratch.allocation_events(), after_first);
}

}  // namespace
}  // namespace sobc
