#include "server/bc_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bc/brandes.h"
#include "bc/dynamic_bc.h"
#include "common/rng.h"
#include "gen/stream_generators.h"
#include "tests/test_util.h"

namespace sobc {
namespace {

using testutil::ExpectScoresNear;
using testutil::RandomConnectedGraph;

constexpr double kTol = 1e-7;

// --- DynamicBc::ApplyBatch --------------------------------------------------

TEST(ApplyBatch, MatchesPerUpdateApply) {
  Rng rng(11);
  const Graph base = RandomConnectedGraph(40, 25, &rng);
  EdgeStream stream = MixedUpdateStream(base, 30, 0.4, &rng);

  auto batched = DynamicBc::Create(base, {});
  ASSERT_TRUE(batched.ok());
  auto sequential = DynamicBc::Create(base, {});
  ASSERT_TRUE(sequential.ok());

  // Same stream, applied in chunks of 7 vs one at a time.
  for (std::size_t i = 0; i < stream.size(); i += 7) {
    const std::size_t end = std::min(stream.size(), i + 7);
    ASSERT_TRUE((*batched)
                    ->ApplyBatch({stream.data() + i, end - i})
                    .ok());
  }
  ASSERT_TRUE((*sequential)->ApplyAll(stream).ok());

  ExpectScoresNear((*sequential)->scores(), (*batched)->scores(), kTol,
                   "batched vs sequential");
  EXPECT_EQ((*batched)->graph().NumEdges(), (*sequential)->graph().NumEdges());
}

TEST(ApplyBatch, GrowsVerticesOnceForTheWholeBatch) {
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  auto bc = DynamicBc::Create(g, {});
  ASSERT_TRUE(bc.ok());
  // Two updates introduce vertices 5 and then 9; growth must cover both.
  const std::vector<EdgeUpdate> batch = {{1, 5, EdgeOp::kAdd, 0.0},
                                         {5, 9, EdgeOp::kAdd, 0.0}};
  ASSERT_TRUE((*bc)->ApplyBatch(batch).ok());
  EXPECT_EQ((*bc)->graph().NumVertices(), 10u);
  ExpectScoresNear(ComputeBrandes((*bc)->graph()), (*bc)->scores(), kTol,
                   "grown batch");
}

TEST(ApplyBatch, RemovedEdgeResidueIsErasedButReAddedEdgeSurvives) {
  Rng rng(5);
  const Graph base = RandomConnectedGraph(20, 15, &rng);
  auto bc = DynamicBc::Create(base, {});
  ASSERT_TRUE(bc.ok());
  const EdgeKey victim = base.Edges().front();
  // Remove an edge for good: its ebc entry must vanish.
  const std::vector<EdgeUpdate> removal = {
      {victim.u, victim.v, EdgeOp::kRemove, 0.0}};
  ASSERT_TRUE((*bc)->ApplyBatch(removal).ok());
  EXPECT_EQ((*bc)->scores().ebc.count(victim), 0u);
  // Remove and re-add inside one batch: the entry must survive with the
  // correct (unchanged) score.
  const EdgeKey churn = (*bc)->graph().Edges().front();
  const std::vector<EdgeUpdate> bounce = {
      {churn.u, churn.v, EdgeOp::kRemove, 0.0},
      {churn.u, churn.v, EdgeOp::kAdd, 0.0}};
  ASSERT_TRUE((*bc)->ApplyBatch(bounce).ok());
  EXPECT_EQ((*bc)->scores().ebc.count(churn), 1u);
  ExpectScoresNear(ComputeBrandes((*bc)->graph()), (*bc)->scores(), kTol,
                   "bounced edge");
}

// --- BcService --------------------------------------------------------------

TEST(BcService, ServesExactScoresAfterDrain) {
  Rng rng(23);
  const Graph base = RandomConnectedGraph(50, 30, &rng);
  EdgeStream stream = MixedUpdateStream(base, 60, 0.35, &rng);

  BcServiceOptions options;
  options.queue.max_batch = 8;
  auto service = BcService::Create(base, options);
  ASSERT_TRUE(service.ok());

  const auto initial = (*service)->snapshot();
  EXPECT_EQ(initial->epoch, 0u);
  EXPECT_EQ(initial->stream_position, 0u);
  ExpectScoresNear(ComputeBrandes(base),
                   BcScores{initial->vbc, initial->ebc}, kTol, "epoch 0");

  EXPECT_EQ((*service)->SubmitAll(stream), stream.size());
  ASSERT_TRUE((*service)->Drain().ok());

  const auto snap = (*service)->snapshot();
  EXPECT_EQ(snap->stream_position, stream.size());
  EXPECT_GE(snap->epoch, 1u);

  // Readers must see exactly what the offline framework computes.
  Graph replayed = base;
  for (const EdgeUpdate& update : stream) {
    ASSERT_TRUE(ApplyToGraph(&replayed, update).ok());
  }
  EXPECT_EQ(snap->num_edges, replayed.NumEdges());
  ExpectScoresNear(ComputeBrandes(replayed), BcScores{snap->vbc, snap->ebc},
                   kTol, "drained");

  // Leaderboards were precomputed against the same scores.
  ASSERT_FALSE(snap->top_vertices.empty());
  std::vector<double> vbc = snap->vbc;
  std::sort(vbc.begin(), vbc.end(), std::greater<double>());
  EXPECT_NEAR(snap->top_vertices.front().second, vbc.front(), kTol);

  const ServeMetricsSnapshot metrics = (*service)->metrics();
  EXPECT_EQ(metrics.received, stream.size());
  EXPECT_EQ(metrics.applied + metrics.coalesced, stream.size());
  EXPECT_EQ(metrics.published_stream_position, stream.size());
  EXPECT_EQ(metrics.epoch_lag, 0u);
  EXPECT_EQ(metrics.dropped, 0u);
  ASSERT_TRUE((*service)->Stop().ok());
}

TEST(BcService, CoalescesChurnBeforeTheEngine) {
  Rng rng(7);
  const Graph base = RandomConnectedGraph(30, 20, &rng);
  // Toggle a pool of 3 edges 64 times: most batches collapse massively.
  EdgeStream stream = ChurnStream(base, 64, 3, &rng);
  ASSERT_EQ(stream.size(), 64u);

  BcServiceOptions options;
  options.queue.max_batch = 64;
  options.queue.batch_latency_budget_seconds = 0.05;
  auto service = BcService::Create(base, options);
  ASSERT_TRUE(service.ok());
  EXPECT_EQ((*service)->SubmitAll(stream), stream.size());
  ASSERT_TRUE((*service)->Drain().ok());

  const ServeMetricsSnapshot metrics = (*service)->metrics();
  EXPECT_EQ(metrics.applied + metrics.coalesced, 64u);
  EXPECT_GT(metrics.coalesced, 0u);

  // Correctness is untouched by coalescing.
  Graph replayed = base;
  for (const EdgeUpdate& update : stream) {
    ASSERT_TRUE(ApplyToGraph(&replayed, update).ok());
  }
  const auto snap = (*service)->snapshot();
  ExpectScoresNear(ComputeBrandes(replayed), BcScores{snap->vbc, snap->ebc},
                   kTol, "coalesced churn");
  ASSERT_TRUE((*service)->Stop().ok());
}

TEST(BcService, LeaderboardOnlySnapshotsSkipTheEdgeMap) {
  Rng rng(3);
  const Graph base = RandomConnectedGraph(20, 10, &rng);
  BcServiceOptions options;
  options.snapshot_edge_scores = false;
  options.top_k = 4;
  auto service = BcService::Create(base, options);
  ASSERT_TRUE(service.ok());
  const auto snap = (*service)->snapshot();
  EXPECT_TRUE(snap->ebc.empty());
  EXPECT_EQ(snap->top_edges.size(), 4u);
  EXPECT_EQ(snap->top_vertices.size(), 4u);
  ASSERT_TRUE((*service)->Stop().ok());
}

TEST(BcService, SubmitAfterStopIsRejected) {
  Rng rng(9);
  const Graph base = RandomConnectedGraph(10, 5, &rng);
  auto service = BcService::Create(base, {});
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->Stop().ok());
  EXPECT_FALSE((*service)->Submit({0, 5, EdgeOp::kAdd, 0.0}));
  EXPECT_EQ((*service)->metrics().dropped, 1u);
}

TEST(BcService, WriterErrorSurfacesThroughDrain) {
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  auto service = BcService::Create(g, {});
  ASSERT_TRUE(service.ok());
  EXPECT_EQ((*service)->health(), ServiceHealth::kHealthy);
  // (0,2) is not an edge: the removal fails inside the writer thread.
  EXPECT_TRUE((*service)->Submit({0, 2, EdgeOp::kRemove, 0.0}));
  EXPECT_FALSE((*service)->Drain().ok());
  EXPECT_FALSE((*service)->Stop().ok());
  // A failed writer stops accepting updates and lands on the terminal
  // rung of the health ladder with the cause recorded.
  EXPECT_FALSE((*service)->Submit({0, 2, EdgeOp::kAdd, 0.0}));
  EXPECT_EQ((*service)->health(), ServiceHealth::kReadOnly);
  EXPECT_FALSE((*service)->last_error().ok());
}

TEST(BcService, MetricsJsonCarriesTheHealthAndIoFields) {
  Rng rng(31);
  const Graph base = RandomConnectedGraph(20, 12, &rng);
  auto service = BcService::Create(base, {});
  ASSERT_TRUE(service.ok());
  const ServeMetricsSnapshot metrics = (*service)->metrics();
  EXPECT_EQ(metrics.health, "healthy");
  EXPECT_EQ(metrics.health_state, 0u);
  EXPECT_TRUE(metrics.last_error.empty());
  const std::string json = metrics.ToJson();
  // The operator-facing contract of docs/OPERATIONS.md: dashboards key on
  // these names.
  for (const char* key :
       {"\"health\": \"healthy\"", "\"health_state\": 0",
        "\"checkpoints_suspended\": 0", "\"writer_stalled\": 0",
        "\"last_error\": \"\"", "\"io_retries\": ", "\"io_retries_exhausted\": ",
        "\"io_faults_injected\": ", "\"wal_last_durable_epoch\": "}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key
                                                 << " in " << json;
  }
  ASSERT_TRUE((*service)->Stop().ok());
}

TEST(BcService, MetricsJsonEscapesTheErrorString) {
  ServeMetricsSnapshot snap;
  snap.last_error = "a \"quoted\\path\"\nwith\tcontrol\x01" "chars";
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"last_error\": \"a \\\"quoted\\\\path\\\"\\nwith"
                      "\\tcontrol\\u0001chars\""),
            std::string::npos)
      << json;
}

TEST(BcService, WatchdogOnlyRunsWhenConfigured) {
  Rng rng(33);
  const Graph base = RandomConnectedGraph(12, 6, &rng);
  // Default options: no watchdog, hook-free batches, Drain blocks until
  // published — writer_stalled can never be set.
  auto service = BcService::Create(base, {});
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->Submit({0, 7, EdgeOp::kAdd, 0.0}));
  ASSERT_TRUE((*service)->Drain().ok());
  EXPECT_EQ((*service)->metrics().writer_stalled, 0u);
  ASSERT_TRUE((*service)->Stop().ok());
}

}  // namespace
}  // namespace sobc
