// Differential accuracy gate of the online sampled-approximation mode
// (DESIGN.md §15). The mode's correctness claim decomposes into two parts,
// and each gets its own differential here:
//
//  1. Maintenance exactness: the incrementally maintained (unscaled) sums
//     must equal a from-scratch Brandes sweep over the CURRENT sample set
//     after every update — the same invariant the exact engine is tested
//     against, restricted to the sampled sources. This holds regardless of
//     how good the sample is.
//  2. Estimation quality: the n/k-scaled published estimates must track
//     exact Brandes — exactly when k == n, and with pinned leaderboard
//     fidelity at realistic k.
//
// Plus the schedule properties that make the mode operable: seed-pinned
// reproducibility (serial == threaded, run == rerun), adaptive resampling
// actually firing under growth with a tight epsilon, and the DO
// checkpoint/resume round trip carrying the sample state.

#include "bc/online_approx.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/top_k.h"
#include "bc/brandes.h"
#include "bc/dynamic_bc.h"
#include "graph/edge_stream.h"
#include "graph/graph.h"
#include "test_util.h"
#include "tests/testlib/scenarios.h"

namespace sobc {
namespace {

using testutil::ExpectScoresNear;

constexpr double kTol = 1e-7;

/// From-scratch reference over exactly the given source set: what the
/// maintained sample sums must equal after every update.
BcScores SampledReference(const Graph& graph,
                          std::span<const VertexId> sources) {
  BcScores ref;
  ref.vbc.assign(graph.NumVertices(), 0.0);
  BrandesOptions options;
  SourceBcData data;
  for (const VertexId s : sources) {
    BrandesSingleSource(graph, s, options, &data, &ref);
  }
  return ref;
}

struct VariantCase {
  const char* name;
  BcVariant variant;
  int threads;
};

class OnlineApproxTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& p : paths_) std::remove(p.c_str());
  }
  std::string TempPath(const std::string& name) {
    std::string p = ::testing::TempDir() + "/sobc_approx_" + name;
    paths_.push_back(p);
    std::remove(p.c_str());
    return p;
  }
  DynamicBcOptions ApproxOptions(const VariantCase& vc, std::size_t k,
                                 const std::string& tag) {
    DynamicBcOptions options;
    options.variant = vc.variant;
    options.num_threads = vc.threads;
    options.approx_samples = k;
    options.approx_seed = 99;
    if (vc.variant == BcVariant::kOutOfCore) {
      options.storage_path = TempPath(tag + ".bd");
    }
    return options;
  }
  std::vector<std::string> paths_;
};

// Part 1 of the gate: after every applied update (additions and removals,
// across all three storage variants, serial and threaded) the maintained
// unscaled sums equal a from-scratch sweep over the current sample set.
// Resampling swaps may change the set mid-stream; the reference always
// follows the live membership, so swaps must land exactly too.
TEST_F(OnlineApproxTest, MaintainedSumsMatchFromScratchSweepEveryUpdate) {
  const VariantCase cases[] = {
      {"mo_serial", BcVariant::kMemory, 1},
      {"mo_threaded", BcVariant::kMemory, 4},
      {"mp_serial", BcVariant::kMemoryPredecessors, 1},
      {"mp_threaded", BcVariant::kMemoryPredecessors, 4},
      {"do_serial", BcVariant::kOutOfCore, 1},
      {"do_threaded", BcVariant::kOutOfCore, 4},
  };
  for (const VariantCase& vc : cases) {
    const auto [base, stream] =
        testlib::ChurnScenario(/*seed=*/301, /*n=*/28, /*extra_edges=*/22,
                               /*updates=*/24);
    DynamicBcOptions options = ApproxOptions(vc, /*k=*/7, vc.name);
    // A tight epsilon plus churn makes resampling rounds fire mid-stream,
    // so the differential also covers the swap path.
    options.approx_epsilon = 0.02;
    options.approx_max_swaps_per_batch = 2;
    auto bc = DynamicBc::Create(base, options);
    ASSERT_TRUE(bc.ok()) << vc.name << ": " << bc.status().ToString();
    ASSERT_TRUE((*bc)->approx());
    std::size_t step = 0;
    for (const EdgeUpdate& update : stream) {
      ASSERT_TRUE((*bc)->Apply(update).ok()) << vc.name << " step " << step;
      const BcScores ref =
          SampledReference((*bc)->graph(), (*bc)->sample_sources());
      ExpectScoresNear(ref, (*bc)->scores(), kTol,
                       std::string(vc.name) + " step " +
                           std::to_string(step));
      ++step;
    }
    EXPECT_GT((*bc)->approx_status().source_swaps, 0u)
        << vc.name << ": the tight epsilon should have forced swaps";
  }
}

// Part 2, exact end of the spectrum: sampling every source (k == n) must
// reproduce exact Brandes bit-for-tolerance — scale is 1 and the sample
// covers the universe, so any deviation is a maintenance bug.
TEST_F(OnlineApproxTest, FullSampleEqualsExactBrandes) {
  const auto [base, stream] =
      testlib::ChurnScenario(/*seed=*/302, /*n=*/24, /*extra_edges=*/18,
                             /*updates=*/20);
  DynamicBcOptions options;
  options.approx_samples = base.NumVertices();
  options.approx_seed = 7;
  auto bc = DynamicBc::Create(base, options);
  ASSERT_TRUE(bc.ok()) << bc.status().ToString();
  ASSERT_TRUE((*bc)->ApplyAll(stream).ok());
  EXPECT_DOUBLE_EQ((*bc)->approx_scale(), 1.0);
  const BcScores exact = ComputeBrandes((*bc)->graph());
  ExpectScoresNear(exact, (*bc)->EstimatedScores(), kTol,
                   "full-sample estimates vs exact");
}

// Part 2, realistic k: the scaled estimates preserve the leaderboard. The
// overlap floor is seed-pinned, not a theorem — but it is deterministic,
// and a maintenance or scaling regression drags it to ~0.
TEST_F(OnlineApproxTest, EstimatesPreserveTopKRanking) {
  const auto [base, stream] =
      testlib::ChurnScenario(/*seed=*/303, /*n=*/48, /*extra_edges=*/60,
                             /*updates=*/30);
  DynamicBcOptions options;
  options.approx_samples = 24;  // k = n/2
  options.approx_seed = 11;
  auto bc = DynamicBc::Create(base, options);
  ASSERT_TRUE(bc.ok()) << bc.status().ToString();
  ASSERT_TRUE((*bc)->ApplyAll(stream).ok());
  const BcScores exact = ComputeBrandes((*bc)->graph());
  const BcScores estimated = (*bc)->EstimatedScores();
  EXPECT_GE(TopKOverlap(exact.vbc, estimated.vbc, 10), 0.5);
  // The estimate scale must be n/k applied uniformly to the maintained
  // sums — spot-check the linear relationship.
  const double scale =
      static_cast<double>((*bc)->graph().NumVertices()) / 24.0;
  for (std::size_t v = 0; v < estimated.vbc.size(); ++v) {
    EXPECT_NEAR(estimated.vbc[v], (*bc)->scores().vbc[v] * scale, kTol);
  }
}

// Equal seeds must reproduce the identical sample-set trajectory and
// identical estimates; a different seed must (on this scenario) draw a
// different set. Reproducibility is what makes approx runs debuggable.
TEST_F(OnlineApproxTest, SeedPinsTheSamplingSchedule) {
  const auto [base, stream] =
      testlib::ChurnScenario(/*seed=*/304, /*n=*/30, /*extra_edges=*/24,
                             /*updates=*/24);
  auto run = [&](std::uint64_t seed) {
    DynamicBcOptions options;
    options.approx_samples = 6;
    options.approx_seed = seed;
    options.approx_epsilon = 0.02;  // force resampling activity
    options.approx_max_swaps_per_batch = 1;
    auto bc = DynamicBc::Create(base, options);
    EXPECT_TRUE(bc.ok());
    EXPECT_TRUE((*bc)->ApplyAll(stream).ok());
    return std::move(*bc);
  };
  const auto a = run(5);
  const auto b = run(5);
  const auto c = run(6);
  const std::vector<VertexId> ids_a(a->sample_sources().begin(),
                                    a->sample_sources().end());
  const std::vector<VertexId> ids_b(b->sample_sources().begin(),
                                    b->sample_sources().end());
  const std::vector<VertexId> ids_c(c->sample_sources().begin(),
                                    c->sample_sources().end());
  EXPECT_EQ(ids_a, ids_b);
  EXPECT_NE(ids_a, ids_c);
  EXPECT_EQ(a->approx_status().source_swaps, b->approx_status().source_swaps);
  for (std::size_t v = 0; v < a->vbc().size(); ++v) {
    EXPECT_DOUBLE_EQ(a->vbc()[v], b->vbc()[v]) << "vertex " << v;
  }
}

// Serial and threaded deployments must make the same resampling decisions
// (the drift inputs are deterministic sums) and keep the same sample set;
// scores agree up to floating-point summation order.
TEST_F(OnlineApproxTest, ThreadedMatchesSerialSchedule) {
  const auto [base, stream] =
      testlib::ChurnScenario(/*seed=*/305, /*n=*/32, /*extra_edges=*/28,
                             /*updates=*/28);
  auto run = [&](int threads) {
    DynamicBcOptions options;
    options.approx_samples = 8;
    options.approx_seed = 17;
    options.approx_epsilon = 0.02;
    options.approx_max_swaps_per_batch = 2;
    options.num_threads = threads;
    auto bc = DynamicBc::Create(base, options);
    EXPECT_TRUE(bc.ok());
    EXPECT_TRUE((*bc)->ApplyAll(stream).ok());
    return std::move(*bc);
  };
  const auto serial = run(1);
  const auto threaded = run(4);
  const std::vector<VertexId> ids_s(serial->sample_sources().begin(),
                                    serial->sample_sources().end());
  const std::vector<VertexId> ids_t(threaded->sample_sources().begin(),
                                    threaded->sample_sources().end());
  EXPECT_EQ(ids_s, ids_t);
  const ApproxStatus ss = serial->approx_status();
  const ApproxStatus ts = threaded->approx_status();
  EXPECT_EQ(ss.sample_epoch, ts.sample_epoch);
  EXPECT_EQ(ss.resample_rounds, ts.resample_rounds);
  EXPECT_EQ(ss.source_swaps, ts.source_swaps);
  ExpectScoresNear(serial->scores(), threaded->scores(), kTol,
                   "serial vs threaded maintained sums");
}

// Growth with a tight epsilon: new vertices have zero inclusion
// probability until a resample, so the drift ledger must trigger rounds,
// and after enough growth the refreshed sample must be able to include
// post-draw vertices. The maintenance invariant is re-checked at the end
// on the grown graph.
TEST_F(OnlineApproxTest, GrowthTriggersAdaptiveResampling) {
  const auto [base, stream] =
      testlib::GrowScenario(/*seed=*/306, /*n=*/20, /*extra_edges=*/14,
                            /*new_vertices=*/20, /*churn_updates=*/10);
  DynamicBcOptions options;
  options.approx_samples = 6;
  options.approx_seed = 23;
  options.approx_epsilon = 0.05;
  options.approx_max_swaps_per_batch = 2;
  auto bc = DynamicBc::Create(base, options);
  ASSERT_TRUE(bc.ok()) << bc.status().ToString();
  ASSERT_TRUE((*bc)->ApplyAll(stream).ok());
  const ApproxStatus status = (*bc)->approx_status();
  EXPECT_GT(status.resample_rounds, 0u)
      << "doubling the population must exceed a 0.05 drift bound";
  EXPECT_GT(status.source_swaps, 0u);
  EXPECT_GT(status.sample_epoch, 0u);
  const BcScores ref =
      SampledReference((*bc)->graph(), (*bc)->sample_sources());
  ExpectScoresNear(ref, (*bc)->scores(), kTol, "post-growth differential");
}

// DO checkpoint/resume round trip: the sidecar must bring back the same
// sample set, scores, and schedule state, and a run interrupted at the
// halfway checkpoint must finish the stream with exactly the state an
// uninterrupted run reaches — sample trajectory included.
TEST_F(OnlineApproxTest, OutOfCoreCheckpointResumeCarriesSampleState) {
  const auto [base, stream] =
      testlib::ChurnScenario(/*seed=*/307, /*n=*/26, /*extra_edges=*/20,
                             /*updates=*/24);
  DynamicBcOptions options;
  options.variant = BcVariant::kOutOfCore;
  options.approx_samples = 7;
  options.approx_seed = 31;
  options.approx_epsilon = 0.02;
  options.approx_max_swaps_per_batch = 1;

  // Twin A: uninterrupted run over the whole stream (its own store file).
  options.storage_path = TempPath("twin.bd");
  auto twin = DynamicBc::Create(base, options);
  ASSERT_TRUE(twin.ok()) << twin.status().ToString();
  ASSERT_TRUE((*twin)->ApplyAll(stream).ok());

  // Run B: apply half, checkpoint, and shut down (the store file must not
  // see further writes from this instance once the resumed one opens it).
  const std::string store_path = TempPath("resume.bd");
  const std::string scores_path = TempPath("resume.scores");
  paths_.push_back(scores_path + ".approx");  // sidecar cleanup
  options.storage_path = store_path;
  auto created = DynamicBc::Create(base, options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<DynamicBc> bc = std::move(*created);
  const std::size_t half = stream.size() / 2;
  Graph at_checkpoint = base;
  for (std::size_t i = 0; i < half; ++i) {
    ASSERT_TRUE(bc->Apply(stream[i]).ok());
    ASSERT_TRUE(ApplyToGraph(&at_checkpoint, stream[i]).ok());
  }
  ASSERT_TRUE(bc->Checkpoint(scores_path).ok());
  const std::vector<VertexId> ids_before(bc->sample_sources().begin(),
                                         bc->sample_sources().end());
  const ApproxStatus status_before = bc->approx_status();
  const BcScores scores_before = bc->scores();
  bc.reset();

  auto resumed = DynamicBc::Resume(at_checkpoint, options, scores_path);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_TRUE((*resumed)->approx());
  const std::vector<VertexId> ids_after((*resumed)->sample_sources().begin(),
                                        (*resumed)->sample_sources().end());
  EXPECT_EQ(ids_before, ids_after);
  EXPECT_EQ(status_before.sample_epoch,
            (*resumed)->approx_status().sample_epoch);
  EXPECT_EQ(status_before.source_swaps,
            (*resumed)->approx_status().source_swaps);
  ExpectScoresNear(scores_before, (*resumed)->scores(), 0.0,
                   "resumed maintained sums");

  // Finish the stream on the resumed instance; it must land exactly where
  // the uninterrupted twin did.
  for (std::size_t i = half; i < stream.size(); ++i) {
    ASSERT_TRUE((*resumed)->Apply(stream[i]).ok());
  }
  const std::vector<VertexId> final_twin((*twin)->sample_sources().begin(),
                                         (*twin)->sample_sources().end());
  const std::vector<VertexId> final_resumed(
      (*resumed)->sample_sources().begin(),
      (*resumed)->sample_sources().end());
  EXPECT_EQ(final_twin, final_resumed);
  ExpectScoresNear((*twin)->scores(), (*resumed)->scores(), kTol,
                   "post-resume tail vs uninterrupted twin");
  const BcScores ref =
      SampledReference((*resumed)->graph(), (*resumed)->sample_sources());
  ExpectScoresNear(ref, (*resumed)->scores(), kTol,
                   "resumed differential");
}

// Component-splitting removals: the disconnect scenario repeatedly cuts
// the bridge between clusters, which exercises the engine's disconnected
// source repairs under sampling — the churn input of the drift ledger.
TEST_F(OnlineApproxTest, DisconnectionsKeepTheDifferential) {
  const auto [base, stream] = testlib::DisconnectScenario(
      /*seed=*/308, /*cluster_size=*/10, /*extra_edges=*/6, /*cycles=*/3);
  DynamicBcOptions options;
  options.approx_samples = 5;
  options.approx_seed = 41;
  auto bc = DynamicBc::Create(base, options);
  ASSERT_TRUE(bc.ok()) << bc.status().ToString();
  std::size_t step = 0;
  for (const EdgeUpdate& update : stream) {
    ASSERT_TRUE((*bc)->Apply(update).ok()) << "step " << step;
    const BcScores ref =
        SampledReference((*bc)->graph(), (*bc)->sample_sources());
    ExpectScoresNear(ref, (*bc)->scores(), kTol,
                     "disconnect step " + std::to_string(step));
    ++step;
  }
}

}  // namespace
}  // namespace sobc
