// Regression tests for the engine's rarest code paths — the cases that
// motivated the stale-edge prescan and the unified repair pipeline (see
// DESIGN.md §5 and the analysis notes in incremental.cc).

#include <gtest/gtest.h>

#include <string>

#include "bc/brandes.h"
#include "bc/dynamic_bc.h"
#include "common/rng.h"
#include "graph/graph.h"
#include "test_util.h"

namespace sobc {
namespace {

using testutil::ExpectScoresNear;

void ExpectMatches(DynamicBc* bc, const std::string& label) {
  ExpectScoresNear(ComputeBrandes(bc->graph()), bc->scores(), 1e-7, label);
}

std::unique_ptr<DynamicBc> Make(const Graph& g) {
  auto bc = DynamicBc::Create(g, DynamicBcOptions{});
  EXPECT_TRUE(bc.ok());
  return std::move(*bc);
}

// In a directed graph, an old DAG edge's endpoints can end up more than one
// level apart after an update (impossible undirected). The old predecessor
// keeps its distance and sits *deeper* than the moved vertex, so its level
// bucket would already be processed when the accumulation sweep reaches the
// moved endpoint — exactly the ordering hazard the prescan exists for.
TEST(DirectedStaleEdgeTest, OldPredecessorLeftFarBehindByShortcut) {
  Graph g(/*directed=*/true);
  // Long chain 0 -> 1 -> ... -> 8; vertex 7 is the sole predecessor of 8.
  for (VertexId v = 0; v < 8; ++v) ASSERT_TRUE(g.AddEdge(v, v + 1).ok());
  auto bc = Make(g);
  // Shortcut 0 -> 8 pulls 8 up to depth 1; 7 stays at depth 7, six levels
  // below its former successor.
  ASSERT_TRUE((*bc).Apply({0, 8, EdgeOp::kAdd}).ok());
  ExpectMatches(bc.get(), "directed deep stale edge");
}

TEST(DirectedStaleEdgeTest, ChainOfStaleEdgesAfterMultipleShortcuts) {
  Graph g(/*directed=*/true);
  for (VertexId v = 0; v < 10; ++v) ASSERT_TRUE(g.AddEdge(v, v + 1).ok());
  auto bc = Make(g);
  ASSERT_TRUE((*bc).Apply({0, 10, EdgeOp::kAdd}).ok());
  ExpectMatches(bc.get(), "first shortcut");
  ASSERT_TRUE((*bc).Apply({0, 5, EdgeOp::kAdd}).ok());
  ExpectMatches(bc.get(), "second shortcut");
  ASSERT_TRUE((*bc).Apply({0, 10, EdgeOp::kRemove}).ok());
  ExpectMatches(bc.get(), "shortcut removal restores depth");
}

TEST(DirectedStaleEdgeTest, RemovalDropsVertexFarBelowOldSuccessor) {
  Graph g(/*directed=*/true);
  // 0->1->2->3 and a long detour 0->4->5->6->7->3': removing (2,3) drops 3
  // four levels (served via the detour), leaving stale relations behind.
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(2, 3).ok());
  ASSERT_TRUE(g.AddEdge(3, 8).ok());  // a successor that rides along
  ASSERT_TRUE(g.AddEdge(0, 4).ok());
  ASSERT_TRUE(g.AddEdge(4, 5).ok());
  ASSERT_TRUE(g.AddEdge(5, 6).ok());
  ASSERT_TRUE(g.AddEdge(6, 7).ok());
  ASSERT_TRUE(g.AddEdge(7, 3).ok());
  auto bc = Make(g);
  ASSERT_TRUE((*bc).Apply({2, 3, EdgeOp::kRemove}).ok());
  ExpectMatches(bc.get(), "directed deep drop");
}

TEST(DenseGraphTest, SaturateToCompleteThenDrain) {
  // Every pair at distance <= 2 throughout: lots of dd==0 skips, wide
  // same-level fringes, and the densest possible accumulation scans.
  Graph g;
  for (VertexId v = 0; v + 1 < 7; ++v) ASSERT_TRUE(g.AddEdge(v, v + 1).ok());
  auto bc = Make(g);
  for (VertexId u = 0; u < 7; ++u) {
    for (VertexId v = u + 1; v < 7; ++v) {
      if (bc->graph().HasEdge(u, v)) continue;
      ASSERT_TRUE(bc->Apply({u, v, EdgeOp::kAdd}).ok());
    }
  }
  ExpectMatches(bc.get(), "complete graph reached");
  EXPECT_EQ(bc->graph().NumEdges(), 21u);
  // Drain back down to a sparse graph.
  Rng rng(5);
  while (bc->graph().NumEdges() > 8) {
    auto edges = bc->graph().Edges();
    const EdgeKey pick = edges[rng.Uniform(edges.size())];
    ASSERT_TRUE(bc->Apply({pick.u, pick.v, EdgeOp::kRemove}).ok());
  }
  ExpectMatches(bc.get(), "drained");
}

TEST(PathCountGrowthTest, HypercubeHasExponentialSigma) {
  // The d-dimensional hypercube has d! shortest paths between antipodes;
  // exact 64-bit path counts must survive incremental maintenance.
  constexpr int kDim = 6;  // 64 vertices, 6! = 720 paths per antipodal pair
  Graph g;
  g.EnsureVertex((1u << kDim) - 1);
  for (VertexId v = 0; v < (1u << kDim); ++v) {
    for (int b = 0; b < kDim; ++b) {
      const VertexId w = v ^ (1u << b);
      if (v < w) {
        ASSERT_TRUE(g.AddEdge(v, w).ok());
      }
    }
  }
  auto bc = Make(g);
  // Perturb a few dimensions' worth of edges.
  ASSERT_TRUE(bc->Apply({0, 3, EdgeOp::kAdd}).ok());
  ExpectMatches(bc.get(), "hypercube chord");
  ASSERT_TRUE(bc->Apply({0, 1, EdgeOp::kRemove}).ok());
  ExpectMatches(bc.get(), "hypercube cut");
  // Cross-check exact path counts against a fresh single-source run.
  SourceBcData fresh;
  BrandesSingleSource(bc->graph(), 0, BrandesOptions{}, &fresh, nullptr);
  SourceView view;
  ASSERT_TRUE(bc->store()->View(0, &view).ok());
  for (VertexId v = 0; v < bc->graph().NumVertices(); ++v) {
    ASSERT_EQ(view.sigma[v], fresh.sigma[v]) << "sigma drift at " << v;
  }
}

TEST(IsolatedVertexTest, UpdatesAroundDegreeZeroVertices) {
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  g.EnsureVertex(4);  // 2, 3, 4 isolated
  auto bc = Make(g);
  ASSERT_TRUE(bc->Apply({2, 3, EdgeOp::kAdd}).ok());  // isolated pair joins
  ExpectMatches(bc.get(), "isolated pair");
  ASSERT_TRUE(bc->Apply({1, 2, EdgeOp::kAdd}).ok());  // components merge
  ExpectMatches(bc.get(), "merge through former isolate");
  ASSERT_TRUE(bc->Apply({2, 3, EdgeOp::kRemove}).ok());
  ExpectMatches(bc.get(), "re-isolate");
  EXPECT_DOUBLE_EQ(bc->vbc()[3], 0.0);
  EXPECT_DOUBLE_EQ(bc->vbc()[4], 0.0);
}

TEST(LadderTest, ParallelShortestPathsUnderChurn) {
  // A 2xN ladder keeps two parallel shortest paths everywhere; rung
  // removals halve path counts without changing distances (pure Alg. 2
  // territory), while rail removals force reroutes.
  constexpr VertexId kLen = 8;
  Graph g;
  for (VertexId i = 0; i + 1 < kLen; ++i) {
    ASSERT_TRUE(g.AddEdge(i, i + 1).ok());                       // top rail
    ASSERT_TRUE(g.AddEdge(kLen + i, kLen + i + 1).ok());         // bottom
  }
  for (VertexId i = 0; i < kLen; ++i) {
    ASSERT_TRUE(g.AddEdge(i, kLen + i).ok());                    // rungs
  }
  auto bc = Make(g);
  ASSERT_TRUE(bc->Apply({3, kLen + 3, EdgeOp::kRemove}).ok());   // rung
  ExpectMatches(bc.get(), "rung removal");
  ASSERT_TRUE(bc->Apply({4, 5, EdgeOp::kRemove}).ok());          // rail
  ExpectMatches(bc.get(), "rail removal");
  ASSERT_TRUE(bc->Apply({3, kLen + 3, EdgeOp::kAdd}).ok());
  ExpectMatches(bc.get(), "rung restored");
}

TEST(VariantParityTest, AllVariantsAgreeAfterIdenticalStream) {
  Rng rng(88);
  Graph g = testutil::RandomConnectedGraph(20, 18, &rng);
  EdgeStream stream;
  {
    Graph scratch = g;
    for (int i = 0; i < 10; ++i) {
      const auto a = static_cast<VertexId>(rng.Uniform(20));
      const auto b = static_cast<VertexId>(rng.Uniform(20));
      if (a == b || scratch.HasEdge(a, b)) continue;
      ASSERT_TRUE(scratch.AddEdge(a, b).ok());
      stream.push_back({a, b, EdgeOp::kAdd});
    }
  }
  DynamicBcOptions mo;
  DynamicBcOptions mp;
  mp.variant = BcVariant::kMemoryPredecessors;
  DynamicBcOptions dod;
  dod.variant = BcVariant::kOutOfCore;
  dod.storage_path = ::testing::TempDir() + "/sobc_parity.bin";
  auto bc_mo = DynamicBc::Create(g, mo);
  auto bc_mp = DynamicBc::Create(g, mp);
  auto bc_do = DynamicBc::Create(g, dod);
  ASSERT_TRUE(bc_mo.ok());
  ASSERT_TRUE(bc_mp.ok());
  ASSERT_TRUE(bc_do.ok());
  ASSERT_TRUE((*bc_mo)->ApplyAll(stream).ok());
  ASSERT_TRUE((*bc_mp)->ApplyAll(stream).ok());
  ASSERT_TRUE((*bc_do)->ApplyAll(stream).ok());
  ExpectScoresNear((*bc_mo)->scores(), (*bc_mp)->scores(), 1e-9, "mo vs mp");
  ExpectScoresNear((*bc_mo)->scores(), (*bc_do)->scores(), 1e-9, "mo vs do");
}

}  // namespace
}  // namespace sobc
