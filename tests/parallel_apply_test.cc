// Differential coverage for the sharded parallel apply and the
// affected-source prefilter (DESIGN.md §9): for every storage variant
// (MP/MO/DO) and every stream shape the paper distinguishes (additions,
// removals, disconnections), the framework must produce — after every
// single update — scores identical (up to floating-point summation order)
// whether the per-update source loop runs serially, serially without the
// prefilter, or sharded across 2 or 8 workers. From-scratch Brandes is the
// independent referee at every step.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bc/brandes.h"
#include "bc/dynamic_bc.h"
#include "common/rng.h"
#include "gen/stream_generators.h"
#include "tests/test_util.h"
#include "tests/testlib/scenarios.h"

namespace sobc {
namespace {

using testutil::ExpectScoresNear;
using testutil::RandomConnectedGraph;
using testutil::RandomGraph;

constexpr double kTol = 1e-7;

struct ApplyConfig {
  BcVariant variant = BcVariant::kMemory;
  int threads = 1;
  bool prefilter = true;
  // Storage-engine axes (DO only): record codec and async prefetch. The
  // tiny cache forces eviction traffic through the shared hot-record
  // cache even at test scale.
  RecordCodecId codec = RecordCodecId::kRaw;
  bool prefetch = false;
};

std::string ConfigName(const ApplyConfig& config) {
  std::string name;
  switch (config.variant) {
    case BcVariant::kMemory: name = "mo"; break;
    case BcVariant::kMemoryPredecessors: name = "mp"; break;
    case BcVariant::kOutOfCore: name = "do"; break;
  }
  name += "_t" + std::to_string(config.threads);
  if (!config.prefilter) name += "_noprefilter";
  if (config.variant == BcVariant::kOutOfCore) {
    name += std::string("_") + RecordCodecName(config.codec);
    if (config.prefetch) name += "_prefetch";
  }
  return name;
}

std::unique_ptr<DynamicBc> MakeBc(const Graph& graph,
                                  const ApplyConfig& config,
                                  const std::string& label) {
  DynamicBcOptions options;
  options.variant = config.variant;
  options.num_threads = config.threads;
  options.prefilter = config.prefilter;
  if (config.variant == BcVariant::kOutOfCore) {
    options.storage_path = ::testing::TempDir() + "/parallel_apply_" + label +
                           "_" + ConfigName(config) + ".bd";
    std::remove(options.storage_path.c_str());
    options.store_codec = config.codec;
    options.prefetch = config.prefetch;
    options.cache_mb = 1;
  }
  auto bc = DynamicBc::Create(graph, options);
  EXPECT_TRUE(bc.ok()) << bc.status().ToString();
  return bc.ok() ? std::move(*bc) : nullptr;
}

/// Replays `stream` under every configuration, holding each one to the
/// from-scratch answer after every single update.
void RunDifferential(const Graph& base, const EdgeStream& stream,
                     const std::string& label) {
  const std::vector<ApplyConfig> configs = {
      {BcVariant::kMemory, 1, true},
      {BcVariant::kMemory, 1, false},
      {BcVariant::kMemory, 2, true},
      {BcVariant::kMemory, 8, true},
      {BcVariant::kMemoryPredecessors, 2, true},
      {BcVariant::kMemoryPredecessors, 8, true},
      {BcVariant::kOutOfCore, 2, true},
      {BcVariant::kOutOfCore, 8, true},
      // The storage engine's axes: both codecs, with the async prefetcher
      // feeding the shared cache under the sharded drain.
      {BcVariant::kOutOfCore, 2, true, RecordCodecId::kDelta, false},
      {BcVariant::kOutOfCore, 8, true, RecordCodecId::kDelta, true},
      {BcVariant::kOutOfCore, 8, true, RecordCodecId::kRaw, true},
      {BcVariant::kOutOfCore, 1, true, RecordCodecId::kDelta, true},
  };
  std::vector<std::unique_ptr<DynamicBc>> frameworks;
  for (const ApplyConfig& config : configs) {
    frameworks.push_back(MakeBc(base, config, label));
    ASSERT_NE(frameworks.back(), nullptr);
  }

  Graph replay = base;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE(ApplyToGraph(&replay, stream[i]).ok());
    const BcScores expected = ComputeBrandes(replay);
    for (std::size_t c = 0; c < configs.size(); ++c) {
      ASSERT_TRUE(frameworks[c]->Apply(stream[i]).ok())
          << label << " " << ConfigName(configs[c]) << " update " << i;
      ExpectScoresNear(expected, frameworks[c]->scores(), kTol,
                       label + " " + ConfigName(configs[c]) + " update " +
                           std::to_string(i));
      // The skipped/no-level-change/structural partition of the per-source
      // passes must stay exhaustive whichever path produced it.
      const UpdateStats& stats = frameworks[c]->last_update_stats();
      EXPECT_EQ(stats.sources_total, replay.NumVertices())
          << label << " " << ConfigName(configs[c]);
      EXPECT_EQ(stats.sources_total,
                stats.sources_skipped + stats.sources_non_structural +
                    stats.sources_structural)
          << label << " " << ConfigName(configs[c]);
      EXPECT_LE(stats.sources_prefiltered, stats.sources_skipped);
      if (!configs[c].prefilter) {
        EXPECT_EQ(stats.sources_prefiltered, 0u);
      }
    }
  }
}

TEST(ParallelApply, AdditionStreamAllVariants) {
  Rng rng(1001);
  const Graph base = RandomConnectedGraph(36, 24, &rng);
  const EdgeStream stream = RandomAdditionStream(base, 10, &rng);
  ASSERT_EQ(stream.size(), 10u);
  RunDifferential(base, stream, "additions");
}

TEST(ParallelApply, RemovalStreamAllVariants) {
  Rng rng(1002);
  const Graph base = RandomConnectedGraph(36, 28, &rng);
  const EdgeStream stream = RandomRemovalStream(base, 10, &rng);
  ASSERT_EQ(stream.size(), 10u);
  RunDifferential(base, stream, "removals");
}

TEST(ParallelApply, DisconnectionStreamAllVariants) {
  // Two dense-ish clusters joined by a single bridge; the stream cuts the
  // bridge (splitting a component off — Section 4.5), keeps churning each
  // side, then heals the cut.
  Rng rng(1003);
  Graph base;
  constexpr VertexId kHalf = 14;
  base.EnsureVertex(2 * kHalf - 1);
  for (VertexId v = 1; v < kHalf; ++v) {
    ASSERT_TRUE(base.AddEdge(static_cast<VertexId>(rng.Uniform(v)), v).ok());
    ASSERT_TRUE(base.AddEdge(kHalf + static_cast<VertexId>(rng.Uniform(v)),
                             kHalf + v)
                    .ok());
  }
  for (int i = 0; i < 8; ++i) {
    const auto u = static_cast<VertexId>(rng.Uniform(kHalf));
    const auto v = static_cast<VertexId>(rng.Uniform(kHalf));
    if (u != v) (void)base.AddEdge(u, v);
    const auto x = kHalf + static_cast<VertexId>(rng.Uniform(kHalf));
    const auto y = kHalf + static_cast<VertexId>(rng.Uniform(kHalf));
    if (x != y) (void)base.AddEdge(x, y);
  }
  ASSERT_TRUE(base.AddEdge(0, kHalf).ok());

  EdgeStream stream;
  stream.push_back({3, kHalf + 3, EdgeOp::kAdd, 0.0});
  stream.push_back({3, kHalf + 3, EdgeOp::kRemove, 0.0});
  stream.push_back({0, kHalf, EdgeOp::kRemove, 0.0});  // disconnects
  stream.push_back({1, 5, EdgeOp::kAdd, 0.0});
  stream.push_back({kHalf + 1, kHalf + 5, EdgeOp::kAdd, 0.0});
  stream.push_back({2, kHalf + 7, EdgeOp::kAdd, 0.0});  // re-joins
  stream.push_back({2, kHalf + 7, EdgeOp::kRemove, 0.0});
  stream.push_back({0, kHalf, EdgeOp::kAdd, 0.0});
  RunDifferential(base, stream, "disconnection");
}

TEST(ParallelApply, DirectedMixedStream) {
  Rng rng(1004);
  const Graph base = RandomGraph(30, 70, &rng, /*directed=*/true);
  const EdgeStream stream = MixedUpdateStream(base, 12, 0.4, &rng);
  RunDifferential(base, stream, "directed");
}

TEST(ParallelApply, PrefilterSkipsSourcesWithoutChangingScores) {
  Rng rng(1005);
  const Graph base = RandomConnectedGraph(40, 60, &rng);
  const EdgeStream stream = RandomAdditionStream(base, 8, &rng);

  DynamicBcOptions with;
  with.prefilter = true;
  DynamicBcOptions without;
  without.prefilter = false;
  auto a = DynamicBc::Create(base, with);
  auto b = DynamicBc::Create(base, without);
  ASSERT_TRUE(a.ok() && b.ok());

  UpdateStats totals;
  for (const EdgeUpdate& update : stream) {
    ASSERT_TRUE((*a)->Apply(update).ok());
    ASSERT_TRUE((*b)->Apply(update).ok());
    // The prefilter must skip exactly the sources the engine's BD probe
    // would have skipped — no more (scores would drift), no fewer (the
    // engine skip count would stay positive).
    EXPECT_EQ((*a)->last_update_stats().sources_skipped,
              (*b)->last_update_stats().sources_skipped);
    EXPECT_EQ((*a)->last_update_stats().sources_prefiltered,
              (*a)->last_update_stats().sources_skipped);
    totals.Merge((*a)->last_update_stats());
  }
  EXPECT_GT(totals.sources_prefiltered, 0u);
  ExpectScoresNear((*b)->scores(), (*a)->scores(), kTol, "prefilter on/off");
}

TEST(ParallelApply, AdjacencyListFallbackMatchesUnderThreads) {
  // use_csr=false routes prefilter BFS and repair kernels through the
  // pointer-chasing GraphAdjacency provider; the sharded drain must not
  // care which provider it monomorphized against.
  const auto [base, stream] = testlib::ChurnScenario(
      /*seed=*/1008, /*n=*/28, /*extra_edges=*/30, /*updates=*/12,
      /*remove_fraction=*/0.4);

  DynamicBcOptions options;
  options.use_csr = false;
  options.num_threads = 4;
  auto bc = DynamicBc::Create(base, options);
  ASSERT_TRUE(bc.ok());
  Graph replay = base;
  for (const EdgeUpdate& update : stream) {
    ASSERT_TRUE(ApplyToGraph(&replay, update).ok());
    ASSERT_TRUE((*bc)->Apply(update).ok());
  }
  ExpectScoresNear(ComputeBrandes(replay), (*bc)->scores(), kTol,
                   "adjacency fallback");
}

TEST(ParallelApply, BatchedParallelApplyMatchesPerUpdate) {
  const auto [base, stream] = testlib::ChurnScenario(
      /*seed=*/1006, /*n=*/32, /*extra_edges=*/40, /*updates=*/24,
      /*remove_fraction=*/0.35);

  DynamicBcOptions serial;
  auto expected = DynamicBc::Create(base, serial);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE((*expected)->ApplyAll(stream).ok());

  DynamicBcOptions parallel;
  parallel.num_threads = 8;
  auto batched = DynamicBc::Create(base, parallel);
  ASSERT_TRUE(batched.ok());
  for (std::size_t i = 0; i < stream.size(); i += 5) {
    const std::size_t take = std::min<std::size_t>(5, stream.size() - i);
    ASSERT_TRUE((*batched)->ApplyBatch({stream.data() + i, take}).ok());
  }
  ExpectScoresNear((*expected)->scores(), (*batched)->scores(), kTol,
                   "batched parallel");
}

TEST(ParallelApply, MsBfsScratchIsReusedAcrossParallelDrains) {
  // The MS-BFS scratch (per-worker engines + the prefilter's 2-lane
  // fold) must stop allocating once the drains are warmed: lane slabs
  // and frontier masks are sized to the vertex count, which this stream
  // never grows, so steady-state traversal has to reuse the same backing
  // memory. This is the same sharded path the TSAN job exercises — a
  // fresh allocation here would also be a racing one.
  Rng rng(1009);
  const Graph base = RandomConnectedGraph(48, 80, &rng);
  const EdgeStream warmup = MixedUpdateStream(base, 6, 0.4, &rng);

  DynamicBcOptions options;
  options.num_threads = 4;
  auto bc = DynamicBc::Create(base, options);
  ASSERT_TRUE(bc.ok());
  Graph replay = base;
  for (const EdgeUpdate& update : warmup) {
    ASSERT_TRUE(ApplyToGraph(&replay, update).ok());
    ASSERT_TRUE((*bc)->Apply(update).ok());
  }
  const std::uint64_t warmed = (*bc)->MsBfsScratchAllocations();
  EXPECT_GT(warmed, 0u) << "warmup never reached the MS-BFS kernel";

  const EdgeStream steady = MixedUpdateStream(replay, 10, 0.4, &rng);
  for (const EdgeUpdate& update : steady) {
    ASSERT_TRUE(ApplyToGraph(&replay, update).ok());
    ASSERT_TRUE((*bc)->Apply(update).ok());
  }
  EXPECT_EQ((*bc)->MsBfsScratchAllocations(), warmed)
      << "MS-BFS scratch allocated during steady-state drains";
  ExpectScoresNear(ComputeBrandes(replay), (*bc)->scores(), kTol,
                   "scratch reuse");
}

TEST(ParallelApply, VertexGrowthWithParallelDiskStore) {
  // New vertices arriving mid-stream force the store to grow past its
  // reserved capacity (rebuild + swap for the DO variant) while apply
  // workers hold per-worker handles — the handle-invalidation path.
  Rng rng(1007);
  const Graph base = RandomConnectedGraph(20, 14, &rng);

  for (const RecordCodecId codec :
       {RecordCodecId::kRaw, RecordCodecId::kDelta}) {
    DynamicBcOptions options;
    options.variant = BcVariant::kOutOfCore;
    options.storage_path = ::testing::TempDir() +
                           "/parallel_apply_growth_" +
                           RecordCodecName(codec) + ".bd";
    options.num_threads = 4;
    options.store_codec = codec;
    std::remove(options.storage_path.c_str());
    auto bc = DynamicBc::Create(base, options);
    ASSERT_TRUE(bc.ok()) << bc.status().ToString();

    Graph replay = base;
    for (VertexId fresh = 20; fresh < 44; ++fresh) {
      const EdgeUpdate update{static_cast<VertexId>(fresh % 7), fresh,
                              EdgeOp::kAdd, 0.0};
      ASSERT_TRUE(ApplyToGraph(&replay, update).ok());
      ASSERT_TRUE((*bc)->Apply(update).ok()) << "vertex " << fresh;
    }
    ExpectScoresNear(ComputeBrandes(replay), (*bc)->scores(), kTol,
                     std::string("disk growth under parallel apply, ") +
                         RecordCodecName(codec));
  }
}

TEST(ParallelApply, CoordinatorStoreReadsAreFreshAfterParallelDrain) {
  // The DO drain writes BD records through per-worker handles only; the
  // coordinator's own handle still holds the record Step 1 cached last
  // (the highest source). A public store() read of that source after a
  // parallel Apply must see the post-update values, not the cache.
  Graph base;
  constexpr VertexId kN = 10;
  for (VertexId v = 0; v + 1 < kN; ++v) {
    ASSERT_TRUE(base.AddEdge(v, v + 1).ok());  // path 0-1-...-9
  }
  DynamicBcOptions options;
  options.variant = BcVariant::kOutOfCore;
  options.storage_path = ::testing::TempDir() + "/parallel_apply_fresh.bd";
  options.num_threads = 2;
  std::remove(options.storage_path.c_str());
  auto bc = DynamicBc::Create(base, options);
  ASSERT_TRUE(bc.ok()) << bc.status().ToString();

  // Closing the ring drops d(9, 0) from 9 to 1 and d(9, 1) from 8 to 2.
  ASSERT_TRUE((*bc)->Apply({kN - 1, 0, EdgeOp::kAdd, 0.0}).ok());
  Distance d0 = 0;
  Distance d1 = 0;
  ASSERT_TRUE((*bc)->store()->PeekDistances(kN - 1, 0, 1, &d0, &d1).ok());
  EXPECT_EQ(d0, 1u);
  EXPECT_EQ(d1, 2u);
}

}  // namespace
}  // namespace sobc
