// Crash-injection differential for the durability subsystem (DESIGN.md
// §11): run a durable serve to completion, then rebuild crash images from
// its artifacts — the final checkpoint removed ("died while serving"), the
// WAL truncated at arbitrary byte offsets ("died mid-append"), the newest
// manifest damaged ("died mid-checkpoint") — and require every recovery to
// land on a legal prefix of the run: scores equal to an offline replay of
// the first `recovered_stream_position` raw stream elements and to
// from-scratch Brandes, for MP, MO, and DO. For the out-of-core variant
// with a serial writer the guarantee is sharper: the replayed BD store is
// the checkpoint's byte image, so recovered scores are bit-identical to
// the uninterrupted run's published snapshot.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bc/brandes.h"
#include "bc/dynamic_bc.h"
#include "common/rng.h"
#include "gen/stream_generators.h"
#include "graph/graph_io.h"
#include "server/bc_service.h"
#include "storage/checkpoint.h"
#include "storage/wal.h"
#include "tests/test_util.h"

namespace sobc {
namespace {

namespace fs = std::filesystem;

using testutil::ExpectScoresNear;
using testutil::RandomConnectedGraph;

constexpr double kTol = 1e-7;

/// One completed durable run plus everything needed to audit recoveries
/// against it.
struct DurableRun {
  Graph base_graph;
  EdgeStream stream;
  std::string wal_dir;
  std::string checkpoint_dir;
  /// Published state at the moment of the clean shutdown.
  std::shared_ptr<const ScoreSnapshot> final_snapshot;
  ServeMetricsSnapshot final_metrics;
};

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/sobc_recovery_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string Fresh(const std::string& name) {
    const std::string path = root_ + "/" + name;
    fs::remove_all(path);
    return path;
  }

  BcServiceOptions DurableOptions(const std::string& tag, BcVariant variant,
                                  std::size_t checkpoint_every) {
    BcServiceOptions options;
    options.queue.max_batch = 8;
    options.queue.batch_latency_budget_seconds = 0.002;
    options.bc.variant = variant;
    if (variant == BcVariant::kOutOfCore) {
      options.bc.storage_path = Fresh(tag + "_live.bd");
      options.bc.cache_mb = 4;
    }
    options.durability.wal_dir = Fresh(tag + "_wal");
    options.durability.checkpoint_dir = Fresh(tag + "_ckpt");
    options.durability.checkpoint_every_updates = checkpoint_every;
    options.durability.wal_fsync_every = 0;  // page-cache durability is
                                             // enough for process crashes
    return options;
  }

  /// Runs the full stream through a durable service and shuts down
  /// cleanly, leaving wal/checkpoint dirs behind as the recovery corpus.
  DurableRun RunDurableService(const std::string& tag, BcVariant variant,
                               std::size_t checkpoint_every,
                               std::size_t n_updates) {
    DurableRun run;
    Rng rng(split_mix_++);
    run.base_graph = RandomConnectedGraph(40, 30, &rng);
    run.stream = MixedUpdateStream(run.base_graph, n_updates * 2 / 3, 0.35,
                                   &rng);
    {
      Graph scratch = run.base_graph;
      for (const EdgeUpdate& update : run.stream) {
        EXPECT_TRUE(ApplyToGraph(&scratch, update).ok());
      }
      EdgeStream churn =
          ChurnStream(scratch, n_updates - run.stream.size(), 4, &rng);
      run.stream.insert(run.stream.end(), churn.begin(), churn.end());
    }
    BcServiceOptions options =
        DurableOptions(tag, variant, checkpoint_every);
    run.wal_dir = options.durability.wal_dir;
    run.checkpoint_dir = options.durability.checkpoint_dir;
    auto service = BcService::Create(run.base_graph, options);
    EXPECT_TRUE(service.ok()) << service.status().ToString();
    EXPECT_EQ((*service)->SubmitAll(run.stream), run.stream.size());
    EXPECT_TRUE((*service)->Drain().ok());
    run.final_snapshot = (*service)->snapshot();
    run.final_metrics = (*service)->metrics();
    EXPECT_TRUE((*service)->Stop().ok());
    return run;
  }

  /// Copies the run's durable state into a fresh crash image.
  std::pair<std::string, std::string> MakeImage(const DurableRun& run,
                                                const std::string& tag) {
    const std::string wal = Fresh(tag + "_wal");
    const std::string ckpt = Fresh(tag + "_ckpt");
    fs::copy(run.wal_dir, wal, fs::copy_options::recursive);
    fs::copy(run.checkpoint_dir, ckpt, fs::copy_options::recursive);
    return {wal, ckpt};
  }

  /// Deletes the clean-shutdown checkpoint from an image, leaving the
  /// state a process killed while serving would have left (CURRENT is
  /// deliberately kept stale — recovery must fall back on its own).
  static void DropFinalCheckpoint(const std::string& ckpt_dir,
                                  std::uint64_t final_epoch) {
    auto manifest =
        ReadManifest(ckpt_dir + "/" + ManifestName(final_epoch));
    ASSERT_TRUE(manifest.ok());
    fs::remove(ckpt_dir + "/" + ManifestName(final_epoch));
    fs::remove(ckpt_dir + "/" + manifest->graph_file);
    fs::remove(ckpt_dir + "/" + manifest->scores_file);
    if (!manifest->store_file.empty()) {
      fs::remove(ckpt_dir + "/" + manifest->store_file);
    }
  }

  BcServiceOptions RecoverOptions(const std::string& wal,
                                  const std::string& ckpt,
                                  const std::string& tag) {
    BcServiceOptions options;
    options.durability.wal_dir = wal;
    options.durability.checkpoint_dir = ckpt;
    options.bc.storage_path = Fresh(tag + "_recovered.bd");
    return options;
  }

  /// The graph after the first `position` raw stream elements.
  static Graph GraphAtPosition(const DurableRun& run,
                               std::uint64_t position) {
    Graph graph = run.base_graph;
    for (std::uint64_t i = 0; i < position; ++i) {
      EXPECT_TRUE(ApplyToGraph(&graph, run.stream[i]).ok());
    }
    return graph;
  }

  /// Offline reference: a fresh framework applying the same raw prefix
  /// one update at a time — no queue, no coalescing, no durability.
  static BcScores OfflineReplay(const DurableRun& run,
                                std::uint64_t position) {
    auto bc = DynamicBc::Create(run.base_graph, {});
    EXPECT_TRUE(bc.ok());
    for (std::uint64_t i = 0; i < position; ++i) {
      EXPECT_TRUE((*bc)->Apply(run.stream[i]).ok());
    }
    return (*bc)->scores();
  }

  std::string root_;
  std::uint64_t split_mix_ = 101;
};

/// Exact (bitwise) score equality — the differential guarantee of the
/// byte-copied out-of-core store under a serial writer.
void ExpectScoresIdentical(const ScoreSnapshot& expected,
                           const ScoreSnapshot& actual) {
  ASSERT_EQ(expected.vbc.size(), actual.vbc.size());
  for (std::size_t v = 0; v < expected.vbc.size(); ++v) {
    EXPECT_EQ(expected.vbc[v], actual.vbc[v]) << "vbc differs at " << v;
  }
  ASSERT_EQ(expected.ebc.size(), actual.ebc.size());
  for (const auto& [key, value] : expected.ebc) {
    const auto it = actual.ebc.find(key);
    ASSERT_TRUE(it != actual.ebc.end())
        << "missing edge (" << key.u << "," << key.v << ")";
    EXPECT_EQ(value, it->second)
        << "ebc differs at (" << key.u << "," << key.v << ")";
  }
}

TEST_F(RecoveryTest, CleanRestartReplaysNothingAndScoresAreBitIdentical) {
  const DurableRun run =
      RunDurableService("clean", BcVariant::kMemory, 0, 60);
  auto [wal, ckpt] = MakeImage(run, "img");
  RecoveryInfo info;
  auto recovered =
      BcService::Recover(RecoverOptions(wal, ckpt, "img"), &info);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(info.replayed_batches, 0u);
  EXPECT_EQ(info.manifest_epoch, run.final_snapshot->epoch);
  const auto snap = (*recovered)->snapshot();
  EXPECT_EQ(snap->epoch, run.final_snapshot->epoch);
  EXPECT_EQ(snap->stream_position, run.stream.size());
  // The checkpoint stored the live run's doubles verbatim; a clean
  // restart must reproduce them bit for bit, whatever the variant.
  ExpectScoresIdentical(*run.final_snapshot, *snap);
  EXPECT_TRUE((*recovered)->Stop().ok());
}

TEST_F(RecoveryTest, CrashWhileServingRecoversFromWalForEveryVariant) {
  const struct {
    BcVariant variant;
    const char* tag;
    std::size_t checkpoint_every;
  } cases[] = {
      {BcVariant::kMemory, "mo", 0},
      {BcVariant::kMemoryPredecessors, "mp", 0},
      // DO with a mid-stream checkpoint cadence: recovery starts from a
      // generation-stamped store copy, not epoch 0.
      {BcVariant::kOutOfCore, "do", 25},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.tag);
    const DurableRun run =
        RunDurableService(c.tag, c.variant, c.checkpoint_every, 60);
    auto [wal, ckpt] = MakeImage(run, std::string(c.tag) + "_img");
    DropFinalCheckpoint(ckpt, run.final_snapshot->epoch);
    RecoveryInfo info;
    auto recovered = BcService::Recover(
        RecoverOptions(wal, ckpt, std::string(c.tag) + "_img"), &info);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_GT(info.replayed_batches, 0u);
    EXPECT_LT(info.manifest_epoch, run.final_snapshot->epoch);
    const auto snap = (*recovered)->snapshot();
    EXPECT_EQ(snap->epoch, run.final_snapshot->epoch);
    EXPECT_EQ(snap->stream_position, run.stream.size());
    ExpectScoresNear(BcScores{run.final_snapshot->vbc,
                              run.final_snapshot->ebc},
                     BcScores{snap->vbc, snap->ebc}, kTol, c.tag);
    // And against an authority that never saw the serving layer at all.
    ExpectScoresNear(ComputeBrandes(GraphAtPosition(run, run.stream.size())),
                     BcScores{snap->vbc, snap->ebc}, kTol,
                     std::string(c.tag) + " vs Brandes");
    EXPECT_TRUE((*recovered)->Stop().ok());
  }
}

TEST_F(RecoveryTest, OutOfCoreSerialRecoveryIsBitIdentical) {
  const DurableRun run =
      RunDurableService("dobit", BcVariant::kOutOfCore, 0, 50);
  auto [wal, ckpt] = MakeImage(run, "dobit_img");
  DropFinalCheckpoint(ckpt, run.final_snapshot->epoch);
  RecoveryInfo info;
  auto recovered =
      BcService::Recover(RecoverOptions(wal, ckpt, "dobit_img"), &info);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_GT(info.replayed_updates, 0u);
  EXPECT_EQ(info.variant, "do");
  const auto snap = (*recovered)->snapshot();
  EXPECT_EQ(snap->epoch, run.final_snapshot->epoch);
  // Replay started from the byte-copied epoch-0 store and pushed the same
  // batches through the same serial machinery: not just close — equal.
  ExpectScoresIdentical(*run.final_snapshot, *snap);
  EXPECT_TRUE((*recovered)->Stop().ok());
}

TEST_F(RecoveryTest, TornWalTailsRecoverALegalPrefixAtRandomizedCuts) {
  const DurableRun run =
      RunDurableService("torn", BcVariant::kMemory, 0, 50);
  // Locate the single WAL segment of the run.
  std::string segment;
  for (const auto& entry : fs::directory_iterator(run.wal_dir)) {
    segment = entry.path().filename().string();
  }
  ASSERT_FALSE(segment.empty());
  const std::uint64_t full_size =
      fs::file_size(run.wal_dir + "/" + segment);
  Rng rng(4242);
  for (int trial = 0; trial < 8; ++trial) {
    SCOPED_TRACE(trial);
    const std::string tag = "torn_img" + std::to_string(trial);
    auto [wal, ckpt] = MakeImage(run, tag);
    DropFinalCheckpoint(ckpt, run.final_snapshot->epoch);
    // Cut anywhere, torn-header cuts included: byte 1 to just short of
    // the full file.
    const std::uint64_t cut = 1 + rng.Uniform(full_size - 1);
    fs::resize_file(wal + "/" + segment, cut);
    RecoveryInfo info;
    auto recovered = BcService::Recover(RecoverOptions(wal, ckpt, tag),
                                        &info);
    ASSERT_TRUE(recovered.ok())
        << "cut at " << cut << ": " << recovered.status().ToString();
    const auto snap = (*recovered)->snapshot();
    const std::uint64_t position = info.recovered_stream_position;
    EXPECT_LE(position, run.stream.size()) << "cut at " << cut;
    EXPECT_EQ(snap->stream_position, position);
    // Whatever prefix survived, the recovered scores must be exactly the
    // betweenness of that prefix's graph — never a torn in-between.
    const Graph prefix_graph = GraphAtPosition(run, position);
    ExpectScoresNear(OfflineReplay(run, position),
                     BcScores{snap->vbc, snap->ebc}, kTol,
                     "offline replay, cut " + std::to_string(cut));
    ExpectScoresNear(ComputeBrandes(prefix_graph),
                     BcScores{snap->vbc, snap->ebc}, kTol,
                     "brandes, cut " + std::to_string(cut));
    EXPECT_TRUE((*recovered)->Stop().ok());
  }
}

TEST_F(RecoveryTest, DamagedNewestManifestFallsBackToOlderCheckpoint) {
  const DurableRun run =
      RunDurableService("midckpt", BcVariant::kMemory, 0, 40);
  auto [wal, ckpt] = MakeImage(run, "midckpt_img");
  // Crash mid-checkpoint: the newest manifest exists but is torn.
  const std::string newest =
      ckpt + "/" + ManifestName(run.final_snapshot->epoch);
  ASSERT_TRUE(fs::exists(newest));
  std::ofstream(newest, std::ios::trunc) << "sobc-checkpoint 1\nepoch gar";
  RecoveryInfo info;
  auto recovered =
      BcService::Recover(RecoverOptions(wal, ckpt, "midckpt_img"), &info);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(info.manifest_epoch, 0u);  // fell back to the initial one
  EXPECT_GT(info.replayed_batches, 0u);
  const auto snap = (*recovered)->snapshot();
  EXPECT_EQ(snap->epoch, run.final_snapshot->epoch);
  ExpectScoresNear(
      BcScores{run.final_snapshot->vbc, run.final_snapshot->ebc},
      BcScores{snap->vbc, snap->ebc}, kTol, "fallback");
  EXPECT_TRUE((*recovered)->Stop().ok());
}

TEST_F(RecoveryTest, RecoveredServiceKeepsServingAndSurvivesASecondCrash) {
  const DurableRun run =
      RunDurableService("resume", BcVariant::kMemory, 0, 40);
  auto [wal, ckpt] = MakeImage(run, "resume_img");
  DropFinalCheckpoint(ckpt, run.final_snapshot->epoch);
  RecoveryInfo info;
  auto recovered = BcService::Recover(
      RecoverOptions(wal, ckpt, "resume_img"), &info);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  // Keep the stream going against the recovered state.
  Graph live = GraphAtPosition(run, run.stream.size());
  Rng rng(77);
  EdgeStream more = MixedUpdateStream(live, 25, 0.3, &rng);
  EXPECT_EQ((*recovered)->SubmitAll(more), more.size());
  ASSERT_TRUE((*recovered)->Drain().ok());
  const auto live_snap = (*recovered)->snapshot();
  EXPECT_EQ(live_snap->stream_position, run.stream.size() + more.size());
  for (const EdgeUpdate& update : more) {
    ASSERT_TRUE(ApplyToGraph(&live, update).ok());
  }
  ExpectScoresNear(ComputeBrandes(live),
                   BcScores{live_snap->vbc, live_snap->ebc}, kTol,
                   "post-recovery serving");
  ASSERT_TRUE((*recovered)->Stop().ok());

  // Second recovery from the same dirs: the clean shutdown checkpointed,
  // so nothing replays and the epochs continue seamlessly.
  RecoveryInfo second;
  auto again =
      BcService::Recover(RecoverOptions(wal, ckpt, "resume_img2"), &second);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(second.replayed_batches, 0u);
  EXPECT_EQ(second.recovered_epoch, live_snap->epoch);
  EXPECT_EQ(second.recovered_stream_position, live_snap->stream_position);
  EXPECT_TRUE((*again)->Stop().ok());
}

TEST_F(RecoveryTest, PoisonedFinalRecordIsAmputatedNotReplayedForever) {
  // A client submits an update the engine deterministically rejects
  // (removing an edge that does not exist). Log-before-apply means it is
  // durably logged before the writer dies on it — recovery must amputate
  // it instead of replaying the same failure on every restart.
  const DurableRun run =
      RunDurableService("poison", BcVariant::kMemory, 0, 30);
  BcServiceOptions options;
  options.durability.wal_dir = Fresh("poison2_wal");
  options.durability.checkpoint_dir = Fresh("poison2_ckpt");
  options.durability.wal_fsync_every = 0;
  auto service = BcService::Create(run.base_graph, options);
  ASSERT_TRUE(service.ok());
  EXPECT_EQ((*service)->SubmitAll(run.stream), run.stream.size());
  ASSERT_TRUE((*service)->Drain().ok());
  const auto last_good = (*service)->snapshot();
  // A pair with no edge in the CURRENT graph: removing it must be
  // rejected by the engine, killing the writer after the batch was
  // durably logged.
  const Graph live = GraphAtPosition(run, run.stream.size());
  VertexId a = kInvalidVertex;
  VertexId b = kInvalidVertex;
  for (VertexId u = 0; u < live.NumVertices() && a == kInvalidVertex; ++u) {
    for (VertexId v = u + 1; v < live.NumVertices(); ++v) {
      if (!live.HasEdge(u, v)) {
        a = u;
        b = v;
        break;
      }
    }
  }
  ASSERT_NE(a, kInvalidVertex);
  ASSERT_TRUE((*service)->Submit({a, b, EdgeOp::kRemove, 0.0}));
  ASSERT_FALSE((*service)->Drain().ok());
  (void)(*service)->Stop();

  RecoveryInfo info;
  BcServiceOptions recover_options;
  recover_options.durability.wal_dir = options.durability.wal_dir;
  recover_options.durability.checkpoint_dir =
      options.durability.checkpoint_dir;
  auto recovered = BcService::Recover(recover_options, &info);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(info.poisoned_batches, 1u);
  EXPECT_GE(info.poisoned_updates, 1u);
  const auto snap = (*recovered)->snapshot();
  // Exactly the last PUBLISHED state of the poisoned run.
  EXPECT_EQ(snap->epoch, last_good->epoch);
  EXPECT_EQ(snap->stream_position, last_good->stream_position);
  ExpectScoresNear(BcScores{last_good->vbc, last_good->ebc},
                   BcScores{snap->vbc, snap->ebc}, kTol, "post-poison");
  ASSERT_TRUE((*recovered)->Stop().ok());

  // And the amputation is durable: the next recovery replays cleanly.
  RecoveryInfo second;
  auto again = BcService::Recover(recover_options, &second);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(second.poisoned_batches, 0u);
  EXPECT_TRUE((*again)->Stop().ok());
}

TEST_F(RecoveryTest, CreateRefusesPreExistingDurableState) {
  const DurableRun run =
      RunDurableService("guard", BcVariant::kMemory, 0, 20);
  // A wal dir with a log is Recover's job.
  BcServiceOptions options;
  options.durability.wal_dir = run.wal_dir;
  options.durability.checkpoint_dir = run.checkpoint_dir;
  auto service = BcService::Create(run.base_graph, options);
  ASSERT_FALSE(service.ok());
  EXPECT_EQ(service.status().code(), StatusCode::kFailedPrecondition);
  // So is a reused checkpoint dir, even with a fresh wal dir: its stale
  // higher-epoch manifests would win retention and the fallback ladder.
  options.durability.wal_dir = Fresh("guard_fresh_wal");
  auto mixed = BcService::Create(run.base_graph, options);
  ASSERT_FALSE(mixed.ok());
  EXPECT_EQ(mixed.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(RecoveryTest, RecoverWithoutDurabilityOrCheckpointsFails) {
  BcServiceOptions options;
  auto no_dir = BcService::Recover(options);
  ASSERT_FALSE(no_dir.ok());
  EXPECT_EQ(no_dir.status().code(), StatusCode::kInvalidArgument);

  options.durability.wal_dir = Fresh("empty_wal");
  fs::create_directories(options.durability.wal_dir);
  auto no_checkpoint = BcService::Recover(options);
  ASSERT_FALSE(no_checkpoint.ok());
  EXPECT_EQ(no_checkpoint.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace sobc
