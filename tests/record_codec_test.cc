// Unit coverage for the record codec layer (storage/record_codec.h): the
// varint primitives, the 16-bit raw distance encoding (and its Status on
// overflow — the regression for the silent-wrap hazard), and the delta
// blob codec's exact round-tripping across the record shapes BFS produces
// (near-uniform distances, sigma runs, zero-heavy dependencies, distances
// past the 16-bit ceiling, unreachable stretches).

#include "storage/record_codec.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.h"

namespace sobc {
namespace {

TEST(Varint, RoundTripBoundaries) {
  const std::uint64_t cases[] = {0,
                                 1,
                                 127,
                                 128,
                                 16383,
                                 16384,
                                 (1ULL << 32) - 1,
                                 1ULL << 32,
                                 std::numeric_limits<std::uint64_t>::max()};
  for (std::uint64_t value : cases) {
    std::vector<std::uint8_t> buf;
    PutVarint64(value, &buf);
    ASSERT_LE(buf.size(), 10u);
    std::uint64_t back = 0;
    ASSERT_EQ(GetVarint64(buf.data(), buf.size(), &back), buf.size());
    EXPECT_EQ(back, value);
  }
}

TEST(Varint, TruncatedInputDetected) {
  std::vector<std::uint8_t> buf;
  PutVarint64(1ULL << 40, &buf);
  std::uint64_t back = 0;
  EXPECT_EQ(GetVarint64(buf.data(), buf.size() - 1, &back), 0u);
  EXPECT_EQ(GetVarint64(buf.data(), 0, &back), 0u);
}

TEST(Varint, ZigZagRoundTrip) {
  const std::int64_t cases[] = {0, 1, -1, 2, -2, 1000, -1000,
                               std::numeric_limits<std::int64_t>::max(),
                               std::numeric_limits<std::int64_t>::min()};
  for (std::int64_t v : cases) {
    EXPECT_EQ(ZigZagDecode64(ZigZagEncode64(v)), v);
  }
  EXPECT_EQ(ZigZagEncode64(0), 0u);   // small magnitudes stay small
  EXPECT_EQ(ZigZagEncode64(-1), 1u);
  EXPECT_EQ(ZigZagEncode64(1), 2u);
}

// --- 16-bit raw distance encoding ------------------------------------------

TEST(Distance16, RoundTripsRepresentableRange) {
  for (Distance d : {Distance{0}, Distance{1}, Distance{100},
                     kMaxRawDistance}) {
    auto encoded = EncodeDistance16(d);
    ASSERT_TRUE(encoded.ok()) << d;
    EXPECT_EQ(DecodeDistance16(*encoded), d);
  }
  auto unreachable = EncodeDistance16(kUnreachable);
  ASSERT_TRUE(unreachable.ok());
  EXPECT_EQ(*unreachable, 0u);  // zero-fill reads as unreachable
  EXPECT_EQ(DecodeDistance16(*unreachable), kUnreachable);
}

TEST(Distance16, OverflowReturnsStatusInsteadOfWrapping) {
  // 65535 encoded as 65535+1 wraps to 0 == "unreachable" in a bare cast;
  // the codec entry point must refuse instead.
  EXPECT_EQ(EncodeDistance16(65535).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(EncodeDistance16(70000).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(EncodeDistance16(kUnreachable - 1).status().code(),
            StatusCode::kOutOfRange);
}

// --- delta blob codec ------------------------------------------------------

struct Columns {
  std::vector<Distance> d;
  std::vector<PathCount> sigma;
  std::vector<double> delta;
};

void ExpectRoundTrip(const Columns& in, const std::string& label) {
  const RecordCodec& codec = RecordCodec::Get(RecordCodecId::kDelta);
  const std::size_t n = in.d.size();
  std::vector<std::uint8_t> blob;
  codec.Encode(in.d.data(), in.sigma.data(), in.delta.data(), n, &blob);
  EXPECT_LE(blob.size(), codec.MaxEncodedBytes(n)) << label;
  Columns out;
  out.d.assign(n, 12345);
  out.sigma.assign(n, 12345);
  out.delta.assign(n, 12345.0);
  ASSERT_TRUE(codec
                  .Decode(blob.data(), blob.size(), n, out.d.data(),
                          out.sigma.data(), out.delta.data())
                  .ok())
      << label;
  EXPECT_EQ(out.d, in.d) << label;
  EXPECT_EQ(out.sigma, in.sigma) << label;
  for (std::size_t v = 0; v < n; ++v) {
    // Bit-exact: dependencies feed later old-value subtractions.
    EXPECT_EQ(out.delta[v], in.delta[v]) << label << " v=" << v;
  }
  // Distances-only decode (the peek path) agrees on every prefix length.
  for (std::size_t limit : {std::size_t{1}, n / 2, n}) {
    if (limit == 0) continue;
    std::vector<Distance> head(limit, 777);
    ASSERT_TRUE(
        codec.DecodeDistances(blob.data(), blob.size(), n, limit, head.data())
            .ok())
        << label;
    for (std::size_t v = 0; v < limit; ++v) EXPECT_EQ(head[v], in.d[v]);
  }
}

TEST(DeltaCodec, RoundTripsBfsShapedRecord) {
  Columns in;
  in.d = {0, 1, 1, 2, 2, 2, 3, kUnreachable, kUnreachable, 3};
  in.sigma = {1, 1, 1, 2, 1, 1, 3, 0, 0, 1};
  in.delta = {0.0, 2.5, 1.5, 0.0, 0.0, 0.5, 0.0, 0.0, 0.0, 0.0};
  ExpectRoundTrip(in, "bfs");
}

TEST(DeltaCodec, RoundTripsDistancesPast16Bits) {
  // The widening that retires the raw codec's 65534 ceiling: a long-path
  // BD column where d grows linearly past 65534.
  const std::size_t n = 70000;
  Columns in;
  in.d.resize(n);
  in.sigma.assign(n, 1);
  in.delta.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    in.d[v] = static_cast<Distance>(v);
    in.delta[v] = static_cast<double>(n - 1 - v);
  }
  ExpectRoundTrip(in, "long path");
}

TEST(DeltaCodec, RoundTripsRandomRecords) {
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 1 + rng.Uniform(200);
    Columns in;
    in.d.resize(n);
    in.sigma.resize(n);
    in.delta.resize(n);
    for (std::size_t v = 0; v < n; ++v) {
      in.d[v] = rng.Uniform(10) == 0 ? kUnreachable
                                     : static_cast<Distance>(rng.Uniform(1u << 20));
      in.sigma[v] = rng.Uniform(4) == 0 ? 0 : rng.Uniform(1u << 30);
      in.delta[v] = rng.Uniform(3) == 0
                        ? 0.0
                        : static_cast<double>(rng.Uniform(1u << 20)) / 7.0;
    }
    ExpectRoundTrip(in, "random round " + std::to_string(round));
  }
}

TEST(DeltaCodec, CompressesTypicalBfsColumnsWellUnderRaw) {
  // The bench gate's unit-level guard: a realistic sparse-graph record
  // (levels 1-5, sigma mostly 1, >= half the dependencies zero) must
  // encode clearly below the 18-byte/vertex fixed-width layout.
  Rng rng(7);
  const std::size_t n = 4096;
  Columns in;
  in.d.resize(n);
  in.sigma.resize(n);
  in.delta.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    in.d[v] = 1 + static_cast<Distance>(rng.Uniform(5));
    in.sigma[v] = rng.Uniform(8) == 0 ? 1 + rng.Uniform(40) : 1;
    in.delta[v] = rng.Uniform(2) == 0
                      ? 0.0
                      : static_cast<double>(1 + rng.Uniform(1000)) / 3.0;
  }
  const RecordCodec& codec = RecordCodec::Get(RecordCodecId::kDelta);
  std::vector<std::uint8_t> blob;
  codec.Encode(in.d.data(), in.sigma.data(), in.delta.data(), n, &blob);
  const double raw_bytes = 18.0 * static_cast<double>(n);
  EXPECT_LT(static_cast<double>(blob.size()), 0.6 * raw_bytes)
      << "encoded " << blob.size() << " of raw " << raw_bytes;
}

TEST(DeltaCodec, RejectsTruncatedBlob) {
  Columns in;
  in.d = {0, 1, 2, 3};
  in.sigma = {1, 1, 2, 2};
  in.delta = {0.0, 1.0, 0.0, 2.0};
  const RecordCodec& codec = RecordCodec::Get(RecordCodecId::kDelta);
  std::vector<std::uint8_t> blob;
  codec.Encode(in.d.data(), in.sigma.data(), in.delta.data(), 4, &blob);
  Columns out;
  out.d.resize(4);
  out.sigma.resize(4);
  out.delta.resize(4);
  for (std::size_t cut = 0; cut < blob.size(); ++cut) {
    EXPECT_FALSE(codec
                     .Decode(blob.data(), cut, 4, out.d.data(),
                             out.sigma.data(), out.delta.data())
                     .ok())
        << "cut=" << cut;
  }
}

}  // namespace
}  // namespace sobc
