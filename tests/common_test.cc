#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/env.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"

namespace sobc {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad edge");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad edge");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad edge");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(), Status::NotFound("").code(),
      Status::AlreadyExists("").code(),   Status::OutOfRange("").code(),
      Status::IOError("").code(),         Status::FailedPrecondition("").code(),
      Status::Internal("").code()};
  EXPECT_EQ(codes.size(), 7u);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.Next() == b.Next();
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, ExponentialMeanRoughlyCorrect) {
  Rng rng(11);
  double sum = 0.0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / kSamples, 2.0, 0.1);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.05);
  EXPECT_NEAR(sq / kSamples, 1.0, 0.05);
}

TEST(SummaryTest, BasicStats) {
  Summary s({3.0, 1.0, 2.0});
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 3.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.Median(), 2.0);
}

TEST(SummaryTest, QuantileInterpolates) {
  Summary s({0.0, 10.0});
  EXPECT_DOUBLE_EQ(s.Quantile(0.25), 2.5);
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 10.0);
}

TEST(SummaryTest, CdfAt) {
  Summary s({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.CdfAt(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.CdfAt(2.0), 0.5);
  EXPECT_DOUBLE_EQ(s.CdfAt(9.0), 1.0);
}

TEST(SummaryTest, RenderCdfHasRequestedPoints) {
  Summary s({1.0, 2.0, 3.0});
  const std::string out = RenderCdf(s, 5);
  int lines = 0;
  for (char c : out) lines += c == '\n';
  EXPECT_EQ(lines, 5);
}

TEST(EnvTest, FallbacksWhenUnset) {
  ::unsetenv("SOBC_TEST_UNSET");
  EXPECT_EQ(GetEnvString("SOBC_TEST_UNSET", "dflt"), "dflt");
  EXPECT_EQ(GetEnvInt("SOBC_TEST_UNSET", 17), 17);
}

TEST(EnvTest, ParsesValues) {
  ::setenv("SOBC_TEST_INT", "123", 1);
  EXPECT_EQ(GetEnvInt("SOBC_TEST_INT", 0), 123);
  ::setenv("SOBC_TEST_INT", "junk", 1);
  EXPECT_EQ(GetEnvInt("SOBC_TEST_INT", 5), 5);
  ::unsetenv("SOBC_TEST_INT");
}

}  // namespace
}  // namespace sobc
