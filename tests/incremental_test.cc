#include "bc/incremental.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "bc/brandes.h"
#include "bc/dynamic_bc.h"
#include "common/rng.h"
#include "graph/graph.h"
#include "test_util.h"

namespace sobc {
namespace {

using testutil::ExpectScoresNear;
using testutil::RandomConnectedGraph;
using testutil::RandomGraph;

constexpr double kTol = 1e-7;

std::unique_ptr<DynamicBc> MakeBc(const Graph& graph, BcVariant variant,
                                  const std::string& tag,
                                  RecordCodecId codec = RecordCodecId::kRaw) {
  DynamicBcOptions options;
  options.variant = variant;
  if (variant == BcVariant::kOutOfCore) {
    options.storage_path = ::testing::TempDir() + "/sobc_bd_" + tag + ".bin";
    options.store_codec = codec;
  }
  auto bc = DynamicBc::Create(graph, options);
  EXPECT_TRUE(bc.ok()) << bc.status().ToString();
  return std::move(*bc);
}

void ExpectMatchesRecompute(DynamicBc& bc, const std::string& label) {
  BcScores expected = ComputeBrandes(bc.graph());
  ExpectScoresNear(expected, bc.scores(), kTol, label);
}

// ---------------------------------------------------------------------------
// Hand-constructed cases, one per dispatch branch of Section 3.1.
// ---------------------------------------------------------------------------

TEST(IncrementalAdditionTest, SameLevelEdgeIsSkipped) {
  // 1 and 2 are both at distance 1 from 0: Proposition 3.1.
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  ASSERT_TRUE(g.AddEdge(1, 3).ok());
  ASSERT_TRUE(g.AddEdge(2, 3).ok());
  auto bc = MakeBc(g, BcVariant::kMemory, "samelevel");
  ASSERT_TRUE(bc->Apply({1, 2, EdgeOp::kAdd}).ok());
  ExpectMatchesRecompute(*bc, "same-level addition");
  // From sources 1 and 2 the endpoints differ by one level; from 0 and 3
  // they tie. At least those two sources must be skipped.
  EXPECT_GE(bc->last_update_stats().sources_skipped, 2u);
}

TEST(IncrementalAdditionTest, OneLevelDifferenceNoStructuralChange) {
  // Path 0-1-2-3; adding (1,3) creates a parallel two-hop route 1-3 vs
  // 1-2-3?? No: d(1,3)=2, d(1)=1 from 0 ... from source 0: uH=1 (d1),
  // uL=3 (d3? d(0,3)=3): dd=2. From source 2: d(2,1)=1, d(2,3)=1: skip.
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(2, 3).ok());
  ASSERT_TRUE(g.AddEdge(0, 4).ok());
  ASSERT_TRUE(g.AddEdge(4, 3).ok());  // makes d(0,3)=2 via 4
  auto bc = MakeBc(g, BcVariant::kMemory, "dd1");
  // d(0,2)=2 and d(0,3)=2 ... choose an edge with dd=1 from most sources:
  ASSERT_TRUE(bc->Apply({1, 3, EdgeOp::kAdd}).ok());
  ExpectMatchesRecompute(*bc, "dd=1 addition");
  EXPECT_GT(bc->last_update_stats().sources_non_structural, 0u);
}

TEST(IncrementalAdditionTest, MultiLevelShortcut) {
  // Long path; chord from the root to the tail pulls several vertices up.
  Graph g;
  for (VertexId v = 0; v < 7; ++v) ASSERT_TRUE(g.AddEdge(v, v + 1).ok());
  auto bc = MakeBc(g, BcVariant::kMemory, "shortcut");
  ASSERT_TRUE(bc->Apply({0, 6, EdgeOp::kAdd}).ok());
  ExpectMatchesRecompute(*bc, "multi-level shortcut");
  EXPECT_GT(bc->last_update_stats().sources_structural, 0u);
}

TEST(IncrementalAdditionTest, JoinsTwoComponents) {
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(3, 4).ok());
  ASSERT_TRUE(g.AddEdge(4, 5).ok());
  auto bc = MakeBc(g, BcVariant::kMemory, "join");
  ASSERT_TRUE(bc->Apply({2, 3, EdgeOp::kAdd}).ok());
  ExpectMatchesRecompute(*bc, "component join");
}

TEST(IncrementalAdditionTest, NewVertexArrives) {
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  auto bc = MakeBc(g, BcVariant::kMemory, "newvertex");
  ASSERT_TRUE(bc->Apply({2, 5, EdgeOp::kAdd}).ok());  // ids 3..5 created
  EXPECT_EQ(bc->graph().NumVertices(), 6u);
  ExpectMatchesRecompute(*bc, "new vertex");
  // Isolated fresh vertices have zero centrality.
  EXPECT_DOUBLE_EQ(bc->vbc()[3], 0.0);
  EXPECT_DOUBLE_EQ(bc->vbc()[4], 0.0);
}

TEST(IncrementalAdditionTest, TriangleClosureOnStar) {
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  ASSERT_TRUE(g.AddEdge(0, 3).ok());
  auto bc = MakeBc(g, BcVariant::kMemory, "closure");
  ASSERT_TRUE(bc->Apply({1, 2, EdgeOp::kAdd}).ok());
  ExpectMatchesRecompute(*bc, "star closure");
  EXPECT_LT(bc->vbc()[0], 6.0);  // center lost the (1,2) pairs
}

TEST(IncrementalRemovalTest, RedundantEdgeNoLevelChange) {
  // Diamond: 0-1, 0-2, 1-3, 2-3. Removing (1,3) leaves 3 reachable at the
  // same level through 2 from every source.
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  ASSERT_TRUE(g.AddEdge(1, 3).ok());
  ASSERT_TRUE(g.AddEdge(2, 3).ok());
  auto bc = MakeBc(g, BcVariant::kMemory, "rm0");
  ASSERT_TRUE(bc->Apply({1, 3, EdgeOp::kRemove}).ok());
  ExpectMatchesRecompute(*bc, "0-level-drop removal");
  EXPECT_TRUE(bc->ebc().find(EdgeKey{1, 3}) == bc->ebc().end());
}

TEST(IncrementalRemovalTest, SingleLevelDrop) {
  // 0-1-2 plus 0-3-2: removing (1,2)... vertex 2 keeps distance. Use a
  // graph where the dropped vertex falls exactly one level: 0-1, 1-2, 0-2'
  // pattern: remove (0,1); 1 falls to distance 2 via 2.
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  auto bc = MakeBc(g, BcVariant::kMemory, "rm1");
  ASSERT_TRUE(bc->Apply({0, 1, EdgeOp::kRemove}).ok());
  ExpectMatchesRecompute(*bc, "1-level-drop removal");
  EXPECT_GT(bc->last_update_stats().sources_structural, 0u);
}

TEST(IncrementalRemovalTest, DeepDropThroughPivots) {
  // A ladder where cutting the top rung forces a whole chain to reroute
  // through a distant pivot.
  Graph g;
  for (VertexId v = 0; v < 6; ++v) ASSERT_TRUE(g.AddEdge(v, v + 1).ok());
  ASSERT_TRUE(g.AddEdge(0, 6).ok());  // alternate route to the tail
  auto bc = MakeBc(g, BcVariant::kMemory, "rmdeep");
  ASSERT_TRUE(bc->Apply({0, 1, EdgeOp::kRemove}).ok());
  ExpectMatchesRecompute(*bc, "multi-level drop");
}

TEST(IncrementalRemovalTest, DisconnectsComponent) {
  // Bridge graph: removing the bridge splits the graph (Section 4.5).
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(2, 3).ok());
  ASSERT_TRUE(g.AddEdge(3, 4).ok());
  ASSERT_TRUE(g.AddEdge(4, 5).ok());
  auto bc = MakeBc(g, BcVariant::kMemory, "rmsplit");
  ASSERT_TRUE(bc->Apply({2, 3, EdgeOp::kRemove}).ok());
  ExpectMatchesRecompute(*bc, "component split");
  EXPECT_GT(bc->last_update_stats().sources_disconnected, 0u);
}

TEST(IncrementalRemovalTest, IsolatesSingleton) {
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  auto bc = MakeBc(g, BcVariant::kMemory, "rmsingleton");
  ASSERT_TRUE(bc->Apply({2, 1, EdgeOp::kRemove}).ok());
  ExpectMatchesRecompute(*bc, "singleton isolation");
  EXPECT_DOUBLE_EQ(bc->vbc()[1], 0.0);
}

TEST(IncrementalRoundTripTest, AddThenRemoveRestoresScores) {
  Rng rng(5);
  Graph g = RandomConnectedGraph(20, 15, &rng);
  auto bc = MakeBc(g, BcVariant::kMemory, "roundtrip");
  const BcScores before = bc->scores();
  // Find a non-edge.
  VertexId a = 0;
  VertexId b = 0;
  while (a == b || g.HasEdge(a, b)) {
    a = static_cast<VertexId>(rng.Uniform(20));
    b = static_cast<VertexId>(rng.Uniform(20));
  }
  ASSERT_TRUE(bc->Apply({a, b, EdgeOp::kAdd}).ok());
  ASSERT_TRUE(bc->Apply({a, b, EdgeOp::kRemove}).ok());
  ExpectScoresNear(before, bc->scores(), kTol, "round trip");
}

// ---------------------------------------------------------------------------
// Property suite: random update streams checked against recomputation after
// every single update, across execution variants and graph directedness.
// ---------------------------------------------------------------------------

struct StreamCase {
  BcVariant variant;
  bool directed;
  const char* name;
  RecordCodecId codec = RecordCodecId::kRaw;  // DO only
};

class IncrementalStreamTest : public ::testing::TestWithParam<StreamCase> {};

TEST_P(IncrementalStreamTest, MatchesRecomputeAfterEveryUpdate) {
  const StreamCase& param = GetParam();
  Rng rng(1234);
  for (int trial = 0; trial < 3; ++trial) {
    Graph g = param.directed
                  ? RandomGraph(24, 60, &rng, /*directed=*/true)
                  : RandomConnectedGraph(24, 24, &rng);
    auto bc = MakeBc(g, param.variant,
                     std::string(param.name) + std::to_string(trial),
                     param.codec);
    const std::size_t n = bc->graph().NumVertices();
    for (int step = 0; step < 25; ++step) {
      const bool remove = bc->graph().NumEdges() > 10 && rng.Chance(0.45);
      EdgeUpdate update;
      if (remove) {
        auto edges = bc->graph().Edges();
        const EdgeKey pick = edges[rng.Uniform(edges.size())];
        update = {pick.u, pick.v, EdgeOp::kRemove};
      } else {
        VertexId a = 0;
        VertexId b = 0;
        int guard = 0;
        do {
          a = static_cast<VertexId>(rng.Uniform(n));
          b = static_cast<VertexId>(rng.Uniform(n));
        } while ((a == b || bc->graph().HasEdge(a, b)) && ++guard < 500);
        if (a == b || bc->graph().HasEdge(a, b)) continue;
        update = {a, b, EdgeOp::kAdd};
      }
      ASSERT_TRUE(bc->Apply(update).ok());
      ExpectMatchesRecompute(
          *bc, std::string(param.name) + " trial " + std::to_string(trial) +
                   " step " + std::to_string(step));
      if (::testing::Test::HasFailure()) return;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, IncrementalStreamTest,
    ::testing::Values(
        StreamCase{BcVariant::kMemory, false, "mo_undirected"},
        StreamCase{BcVariant::kMemoryPredecessors, false, "mp_undirected"},
        StreamCase{BcVariant::kOutOfCore, false, "do_undirected"},
        StreamCase{BcVariant::kMemory, true, "mo_directed"},
        StreamCase{BcVariant::kMemoryPredecessors, true, "mp_directed"},
        StreamCase{BcVariant::kOutOfCore, true, "do_directed"},
        StreamCase{BcVariant::kOutOfCore, false, "do_undirected_delta",
                   RecordCodecId::kDelta},
        StreamCase{BcVariant::kOutOfCore, true, "do_directed_delta",
                   RecordCodecId::kDelta}),
    [](const ::testing::TestParamInfo<StreamCase>& info) {
      return std::string(info.param.name);
    });

// After a stream of updates, the stored BD[s] must equal what a fresh
// Brandes run would produce — not just the aggregate scores.
TEST(IncrementalStoreConsistencyTest, BdMatchesFreshBrandes) {
  Rng rng(99);
  Graph g = RandomConnectedGraph(18, 14, &rng);
  auto bc = MakeBc(g, BcVariant::kMemory, "bdconsistency");
  for (int step = 0; step < 12; ++step) {
    const bool remove = bc->graph().NumEdges() > 8 && rng.Chance(0.4);
    if (remove) {
      auto edges = bc->graph().Edges();
      const EdgeKey pick = edges[rng.Uniform(edges.size())];
      ASSERT_TRUE(bc->Apply({pick.u, pick.v, EdgeOp::kRemove}).ok());
    } else {
      const auto a = static_cast<VertexId>(rng.Uniform(18));
      const auto b = static_cast<VertexId>(rng.Uniform(18));
      if (a == b || bc->graph().HasEdge(a, b)) continue;
      ASSERT_TRUE(bc->Apply({a, b, EdgeOp::kAdd}).ok());
    }
  }
  const std::size_t n = bc->graph().NumVertices();
  SourceBcData fresh;
  for (VertexId s = 0; s < n; ++s) {
    BrandesSingleSource(bc->graph(), s, BrandesOptions{}, &fresh, nullptr);
    SourceView view;
    ASSERT_TRUE(bc->store()->View(s, &view).ok());
    for (VertexId v = 0; v < n; ++v) {
      EXPECT_EQ(view.d[v], fresh.d[v]) << "d mismatch s=" << s << " v=" << v;
      EXPECT_EQ(view.sigma[v], fresh.sigma[v])
          << "sigma mismatch s=" << s << " v=" << v;
      EXPECT_NEAR(view.delta[v], fresh.delta[v], kTol)
          << "delta mismatch s=" << s << " v=" << v;
    }
  }
}

TEST(IncrementalStatsTest, CountersAddUp) {
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(2, 3).ok());
  auto bc = MakeBc(g, BcVariant::kMemory, "stats");
  ASSERT_TRUE(bc->Apply({0, 3, EdgeOp::kAdd}).ok());
  const UpdateStats& stats = bc->last_update_stats();
  EXPECT_EQ(stats.sources_total, 4u);
  EXPECT_EQ(stats.sources_total,
            stats.sources_skipped + stats.sources_non_structural +
                stats.sources_structural);
}

TEST(IncrementalErrorTest, RemoveMissingEdgeFails) {
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  auto bc = MakeBc(g, BcVariant::kMemory, "err1");
  EXPECT_EQ(bc->Apply({0, 5, EdgeOp::kRemove}).code(), StatusCode::kNotFound);
}

TEST(IncrementalErrorTest, DuplicateAddFails) {
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  auto bc = MakeBc(g, BcVariant::kMemory, "err2");
  EXPECT_EQ(bc->Apply({1, 0, EdgeOp::kAdd}).code(),
            StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace sobc
