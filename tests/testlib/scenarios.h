#ifndef SOBC_TESTS_TESTLIB_SCENARIOS_H_
#define SOBC_TESTS_TESTLIB_SCENARIOS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "gen/stream_generators.h"
#include "graph/edge_stream.h"
#include "graph/graph.h"

namespace sobc {
namespace testlib {

/// Deterministic seeded graph + stream generators shared by the
/// differential test suites (parallel apply, fault soak, cluster, online
/// approx). One seeded Rng drives each scenario end to end, so a scenario
/// is reproducible from its seed alone and two tests that pass the same
/// seed exercise byte-identical inputs.

/// Erdős–Rényi G(n, m)-style random graph (exactly `m` distinct edges when
/// possible), connected-ish but not necessarily connected — the algorithms
/// must handle disconnection anyway.
inline Graph RandomGraph(std::size_t n, std::size_t m, Rng* rng,
                         bool directed = false) {
  Graph g(directed);
  g.EnsureVertex(static_cast<VertexId>(n - 1));
  std::size_t attempts = 0;
  while (g.NumEdges() < m && attempts < 50 * m) {
    ++attempts;
    const auto u = static_cast<VertexId>(rng->Uniform(n));
    const auto v = static_cast<VertexId>(rng->Uniform(n));
    if (u == v) continue;
    (void)g.AddEdge(u, v);
  }
  return g;
}

/// Random spanning tree plus `extra` chords: always connected, so removal
/// tests start from one component.
inline Graph RandomConnectedGraph(std::size_t n, std::size_t extra, Rng* rng) {
  Graph g;
  g.EnsureVertex(static_cast<VertexId>(n - 1));
  for (VertexId v = 1; v < n; ++v) {
    const auto parent = static_cast<VertexId>(rng->Uniform(v));
    (void)g.AddEdge(parent, v);
  }
  std::size_t added = 0;
  std::size_t attempts = 0;
  while (added < extra && attempts < 50 * (extra + 1)) {
    ++attempts;
    const auto u = static_cast<VertexId>(rng->Uniform(n));
    const auto v = static_cast<VertexId>(rng->Uniform(n));
    if (u == v) continue;
    if (g.AddEdge(u, v).ok()) ++added;
  }
  return g;
}

/// One seeded scenario: the base graph the framework is built over plus
/// the ordered update stream it then absorbs.
struct Scenario {
  Graph base;
  EdgeStream stream;
};

/// Churn profile: a connected base and a mixed add/remove stream over the
/// existing population (no growth). The bread-and-butter differential
/// input — structural repairs in both directions, one component
/// throughout most of the run.
inline Scenario ChurnScenario(std::uint64_t seed, std::size_t n,
                              std::size_t extra_edges, std::size_t updates,
                              double remove_fraction = 0.3) {
  Rng rng(seed);
  Scenario scenario;
  scenario.base = RandomConnectedGraph(n, extra_edges, &rng);
  scenario.stream =
      MixedUpdateStream(scenario.base, updates, remove_fraction, &rng);
  return scenario;
}

/// Grow profile: the stream attaches brand-new vertex ids (n, n+1, ...) to
/// random existing vertices, interleaved with internal churn. Exercises
/// store growth, score resizing — and, for the sampled engine, the drift
/// term of vertices that had zero inclusion probability at draw time.
inline Scenario GrowScenario(std::uint64_t seed, std::size_t n,
                             std::size_t extra_edges,
                             std::size_t new_vertices,
                             std::size_t churn_updates = 0) {
  Rng rng(seed);
  Scenario scenario;
  scenario.base = RandomConnectedGraph(n, extra_edges, &rng);
  EdgeStream churn;
  if (churn_updates > 0) {
    churn = MixedUpdateStream(scenario.base, churn_updates, 0.3, &rng);
  }
  std::size_t churn_at = 0;
  std::size_t population = n;
  for (std::size_t i = 0; i < new_vertices; ++i) {
    const auto arrival = static_cast<VertexId>(population++);
    const auto anchor = static_cast<VertexId>(rng.Uniform(arrival));
    scenario.stream.push_back({anchor, arrival, EdgeOp::kAdd, 0.0});
    // Interleave the churn tail evenly between arrivals so growth and
    // structural repairs overlap instead of forming two phases.
    for (std::size_t take = 0;
         churn_at < churn.size() &&
         take < (churn.size() + new_vertices - 1) / new_vertices;
         ++take) {
      scenario.stream.push_back(churn[churn_at++]);
    }
  }
  while (churn_at < churn.size()) {
    scenario.stream.push_back(churn[churn_at++]);
  }
  return scenario;
}

/// Disconnect profile: two seeded connected clusters joined by a single
/// bridge edge; the stream cuts and re-adds the bridge for `cycles`
/// rounds, with intra-cluster churn between flips. Exercises component
/// splits/rejoins — unreachable distances, disconnected-source repairs,
/// and (for MS-BFS) frontiers that die in one component.
inline Scenario DisconnectScenario(std::uint64_t seed,
                                   std::size_t cluster_size,
                                   std::size_t extra_edges,
                                   std::size_t cycles,
                                   std::size_t churn_per_cycle = 2) {
  Rng rng(seed);
  Scenario scenario;
  scenario.base = RandomConnectedGraph(cluster_size, extra_edges, &rng);
  // Second cluster: same generator recipe, ids offset by cluster_size.
  {
    const Graph other = RandomConnectedGraph(cluster_size, extra_edges, &rng);
    scenario.base.EnsureVertex(
        static_cast<VertexId>(2 * cluster_size - 1));
    other.ForEachEdge([&](VertexId u, VertexId v) {
      (void)scenario.base.AddEdge(
          static_cast<VertexId>(u + cluster_size),
          static_cast<VertexId>(v + cluster_size));
    });
  }
  const VertexId bridge_u = 0;
  const auto bridge_v = static_cast<VertexId>(cluster_size);
  (void)scenario.base.AddEdge(bridge_u, bridge_v);
  EdgeStream churn =
      MixedUpdateStream(scenario.base, cycles * churn_per_cycle, 0.3, &rng);
  // Keep intra-cluster churn only: dropping EVERY element of an edge keeps
  // the remaining stream applicable in order (each edge's add/remove
  // alternation is internally consistent), and it leaves the scripted
  // cadence below as the only traffic that can join the two components.
  churn.erase(std::remove_if(churn.begin(), churn.end(),
                             [&](const EdgeUpdate& u) {
                               return (u.u < cluster_size) !=
                                      (u.v < cluster_size);
                             }),
              churn.end());
  std::size_t churn_at = 0;
  for (std::size_t c = 0; c < cycles; ++c) {
    scenario.stream.push_back({bridge_u, bridge_v, EdgeOp::kRemove, 0.0});
    for (std::size_t take = 0;
         take < churn_per_cycle && churn_at < churn.size(); ++take) {
      scenario.stream.push_back(churn[churn_at++]);
    }
    scenario.stream.push_back({bridge_u, bridge_v, EdgeOp::kAdd, 0.0});
  }
  return scenario;
}

}  // namespace testlib
}  // namespace sobc

#endif  // SOBC_TESTS_TESTLIB_SCENARIOS_H_
