#include "bc/brandes.h"

#include <gtest/gtest.h>

#include <cmath>

#include "bc/bd_store.h"
#include "common/rng.h"
#include "graph/graph.h"
#include "test_util.h"

namespace sobc {
namespace {

using testutil::ExpectScoresNear;
using testutil::NaiveBc;
using testutil::RandomGraph;

constexpr double kTol = 1e-9;

TEST(BrandesTest, PathGraph) {
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  BcScores scores = ComputeBrandes(g);
  // Ordered-pair convention: (0,2) and (2,0) both pass through vertex 1.
  EXPECT_DOUBLE_EQ(scores.vbc[0], 0.0);
  EXPECT_DOUBLE_EQ(scores.vbc[1], 2.0);
  EXPECT_DOUBLE_EQ(scores.vbc[2], 0.0);
  // Each edge carries (0,1),(1,0) plus (0,2),(2,0).
  EXPECT_DOUBLE_EQ(scores.ebc[(EdgeKey{0, 1})], 4.0);
  EXPECT_DOUBLE_EQ(scores.ebc[(EdgeKey{1, 2})], 4.0);
}

TEST(BrandesTest, StarGraph) {
  Graph g;
  for (VertexId leaf = 1; leaf <= 3; ++leaf) {
    ASSERT_TRUE(g.AddEdge(0, leaf).ok());
  }
  BcScores scores = ComputeBrandes(g);
  EXPECT_DOUBLE_EQ(scores.vbc[0], 6.0);  // 3*2 ordered leaf pairs
  for (VertexId leaf = 1; leaf <= 3; ++leaf) {
    EXPECT_DOUBLE_EQ(scores.vbc[leaf], 0.0);
  }
}

TEST(BrandesTest, TriangleHasNoBetweenness) {
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  BcScores scores = ComputeBrandes(g);
  for (VertexId v = 0; v < 3; ++v) EXPECT_DOUBLE_EQ(scores.vbc[v], 0.0);
  for (const auto& [key, value] : scores.ebc) {
    EXPECT_DOUBLE_EQ(value, 2.0);  // only its own endpoints, both directions
  }
}

TEST(BrandesTest, CycleOfFourSplitsPaths) {
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(2, 3).ok());
  ASSERT_TRUE(g.AddEdge(3, 0).ok());
  BcScores scores = ComputeBrandes(g);
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_NEAR(scores.vbc[v], 1.0, kTol);  // half of each opposite pair
  }
}

TEST(BrandesTest, DirectedPath) {
  Graph g(/*directed=*/true);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  BcScores scores = ComputeBrandes(g);
  EXPECT_DOUBLE_EQ(scores.vbc[1], 1.0);  // only (0,2)
  EXPECT_DOUBLE_EQ(scores.ebc[(EdgeKey{0, 1})], 2.0);
  EXPECT_DOUBLE_EQ(scores.ebc[(EdgeKey{1, 2})], 2.0);
}

TEST(BrandesTest, BridgeEdgeDominates) {
  // Two triangles joined by a bridge (2-3): the classic weak-tie picture
  // from the paper's introduction.
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(3, 4).ok());
  ASSERT_TRUE(g.AddEdge(3, 5).ok());
  ASSERT_TRUE(g.AddEdge(4, 5).ok());
  ASSERT_TRUE(g.AddEdge(2, 3).ok());
  BcScores scores = ComputeBrandes(g);
  const double bridge = scores.ebc[(EdgeKey{2, 3})];
  for (const auto& [key, value] : scores.ebc) {
    if (key == (EdgeKey{2, 3})) continue;
    EXPECT_LT(value, bridge) << "bridge should carry the most paths";
  }
  EXPECT_GT(scores.vbc[2], scores.vbc[0]);
  EXPECT_GT(scores.vbc[3], scores.vbc[5]);
}

TEST(BrandesTest, DisconnectedComponentsIgnoreEachOther) {
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(3, 4).ok());
  ASSERT_TRUE(g.AddEdge(4, 5).ok());
  BcScores scores = ComputeBrandes(g);
  EXPECT_DOUBLE_EQ(scores.vbc[1], 2.0);
  EXPECT_DOUBLE_EQ(scores.vbc[4], 2.0);
}

TEST(BrandesTest, SingletonGraph) {
  Graph g;
  g.EnsureVertex(0);
  BcScores scores = ComputeBrandes(g);
  EXPECT_DOUBLE_EQ(scores.vbc[0], 0.0);
  EXPECT_TRUE(scores.ebc.empty());
}

TEST(BrandesTest, PredListsAndScanAgree) {
  Rng rng(42);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = RandomGraph(40, 120, &rng);
    BrandesOptions scan;
    BrandesOptions preds;
    preds.pred_mode = PredMode::kPredecessorLists;
    ExpectScoresNear(ComputeBrandes(g, scan), ComputeBrandes(g, preds), kTol,
                     "MP vs MO trial " + std::to_string(trial));
  }
}

TEST(BrandesTest, MatchesNaiveOnRandomUndirected) {
  Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = RandomGraph(30, 70, &rng);
    ExpectScoresNear(NaiveBc(g), ComputeBrandes(g), 1e-7,
                     "undirected trial " + std::to_string(trial));
  }
}

TEST(BrandesTest, MatchesNaiveOnRandomDirected) {
  Rng rng(9);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = RandomGraph(30, 120, &rng, /*directed=*/true);
    ExpectScoresNear(NaiveBc(g), ComputeBrandes(g), 1e-7,
                     "directed trial " + std::to_string(trial));
  }
}

TEST(BrandesTest, RangeSumsToFull) {
  Rng rng(21);
  Graph g = RandomGraph(25, 60, &rng);
  BcScores full = ComputeBrandes(g);
  BcScores left;
  BcScores right;
  BrandesOptions options;
  ComputeBrandesRange(g, 0, 12, options, &left);
  ComputeBrandesRange(g, 12, 25, options, &right);
  left.Merge(right);
  ExpectScoresNear(full, left, kTol, "partition merge");
}

TEST(BrandesTest, SingleSourceFillsBdData) {
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  ASSERT_TRUE(g.AddEdge(2, 3).ok());
  SourceBcData data;
  BrandesSingleSource(g, 0, BrandesOptions{}, &data, nullptr);
  EXPECT_EQ(data.d[0], 0u);
  EXPECT_EQ(data.d[1], 1u);
  EXPECT_EQ(data.d[2], 1u);
  EXPECT_EQ(data.d[3], 2u);
  EXPECT_EQ(data.sigma[3], 1u);
  EXPECT_DOUBLE_EQ(data.delta[2], 1.0);  // vertex 2 carries (0,3)
}

TEST(BrandesTest, UnreachableVerticesStayAtSentinels) {
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  g.EnsureVertex(2);
  SourceBcData data;
  BrandesSingleSource(g, 0, BrandesOptions{}, &data, nullptr);
  EXPECT_EQ(data.d[2], kUnreachable);
  EXPECT_EQ(data.sigma[2], 0u);
  EXPECT_DOUBLE_EQ(data.delta[2], 0.0);
}

TEST(BrandesTest, InitializeFromScratchPopulatesStore) {
  Rng rng(33);
  Graph g = RandomGraph(20, 40, &rng);
  InMemoryBdStore store;
  BcScores scores;
  ASSERT_TRUE(InitializeFromScratch(g, BrandesOptions{}, &store, &scores).ok());
  EXPECT_EQ(store.num_sources(), 20u);
  ExpectScoresNear(ComputeBrandes(g), scores, kTol, "init scores");
  SourceView view;
  ASSERT_TRUE(store.View(5, &view).ok());
  EXPECT_EQ(view.d[5], 0u);
  EXPECT_EQ(view.sigma[5], 1u);
}

}  // namespace
}  // namespace sobc
