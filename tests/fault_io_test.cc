// The fault-injection seam itself (DESIGN.md §12): schedule parsing and
// canonical rendering, deterministic nth-call firing, path filtering,
// seeded probabilistic replay, short-write shrinking — and the
// bounded-backoff retry policy of the posix_io helpers observed through
// an installed FaultInjectingIo (a transient EINTR is absorbed, a
// persistent storm hits the attempt cap and surfaces).

#include "common/fault_io.h"

#include <fcntl.h>
#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/posix_io.h"
#include "common/status.h"

namespace sobc {
namespace {

namespace fs = std::filesystem;

/// Installs a FaultInjectingIo for the scope of one test body and always
/// restores the default on the way out.
class ScopedFaultIo {
 public:
  explicit ScopedFaultIo(FaultSchedule schedule)
      : io_(std::move(schedule)) {
    Io::Install(&io_);
  }
  ~ScopedFaultIo() { Io::Install(nullptr); }

  FaultInjectingIo* operator->() { return &io_; }

 private:
  FaultInjectingIo io_;
};

FaultSchedule MustParse(const std::string& text) {
  auto schedule = FaultSchedule::Parse(text);
  EXPECT_TRUE(schedule.ok()) << schedule.status().ToString();
  return *schedule;
}

class FaultIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/sobc_fault_io_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    Io::Install(nullptr);  // belt and braces if a test aborted mid-scope
    fs::remove_all(dir_);
  }

  std::string Path(const std::string& name) { return dir_ + "/" + name; }

  /// Opens a fresh file for writing through the CURRENT Io (so an
  /// installed fault schedule sees the open too).
  int OpenForWrite(const std::string& path) {
    const int fd =
        Io::Get()->Open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    EXPECT_GE(fd, 0);
    return fd;
  }

  std::string dir_;
};

// --- Schedule grammar -------------------------------------------------------

TEST_F(FaultIoTest, ParseRendersCanonicallyAndRoundTrips) {
  const FaultSchedule schedule =
      MustParse("fdatasync@3=EIO, write~ckpt%0.05=ENOSPC, short_write@2");
  ASSERT_EQ(schedule.specs.size(), 3u);
  EXPECT_EQ(schedule.specs[0].op, FaultOp::kFdatasync);
  EXPECT_EQ(schedule.specs[0].nth, 3u);
  EXPECT_EQ(schedule.specs[0].fault_errno, EIO);
  EXPECT_EQ(schedule.specs[1].op, FaultOp::kWrite);
  EXPECT_EQ(schedule.specs[1].path_contains, "ckpt");
  EXPECT_DOUBLE_EQ(schedule.specs[1].probability, 0.05);
  EXPECT_EQ(schedule.specs[1].fault_errno, ENOSPC);
  EXPECT_EQ(schedule.specs[2].op, FaultOp::kShortWrite);
  EXPECT_EQ(schedule.specs[2].fault_errno, 0);

  // ToString is the reproduction string echoed into logs: parsing it
  // again must yield the same schedule.
  const std::string rendered = schedule.ToString();
  EXPECT_EQ(rendered, "fdatasync@3=EIO,write~ckpt%0.05=ENOSPC,short_write@2");
  EXPECT_EQ(MustParse(rendered).ToString(), rendered);
}

TEST_F(FaultIoTest, ParseExpandsSyncAliasAndKeepsSeed) {
  const FaultSchedule schedule = MustParse("sync~wal@2=ENOSPC,seed=42");
  ASSERT_EQ(schedule.specs.size(), 3u);
  EXPECT_EQ(schedule.specs[0].op, FaultOp::kFsync);
  EXPECT_EQ(schedule.specs[1].op, FaultOp::kFdatasync);
  EXPECT_EQ(schedule.specs[2].op, FaultOp::kMsync);
  for (const FaultSpec& spec : schedule.specs) {
    EXPECT_EQ(spec.path_contains, "wal");
    EXPECT_EQ(spec.nth, 2u);
    EXPECT_EQ(spec.fault_errno, ENOSPC);
  }
  EXPECT_EQ(schedule.seed, 42u);
  EXPECT_EQ(schedule.ToString(),
            "fsync~wal@2=ENOSPC,fdatasync~wal@2=ENOSPC,msync~wal@2=ENOSPC,"
            "seed=42");
}

TEST_F(FaultIoTest, ParseRejectsMalformedEntries) {
  EXPECT_FALSE(FaultSchedule::Parse("").ok());
  EXPECT_FALSE(FaultSchedule::Parse("write").ok());          // no trigger
  EXPECT_FALSE(FaultSchedule::Parse("write@0").ok());        // nth >= 1
  EXPECT_FALSE(FaultSchedule::Parse("write%0").ok());        // P in (0,1]
  EXPECT_FALSE(FaultSchedule::Parse("write%1.5").ok());
  EXPECT_FALSE(FaultSchedule::Parse("chmod@1").ok());        // unknown op
  EXPECT_FALSE(FaultSchedule::Parse("write@1=EWHAT").ok());  // unknown errno
  EXPECT_FALSE(FaultSchedule::Parse("short_write@1=EIO").ok());
  EXPECT_FALSE(FaultSchedule::Parse("seed=5").ok());  // seed alone: empty
}

// --- Deterministic firing ---------------------------------------------------

TEST_F(FaultIoTest, NthWriteFailsExactlyOnce) {
  ScopedFaultIo io(MustParse("write@2=ENOSPC"));
  const std::string path = Path("nth");
  const int fd = OpenForWrite(path);
  char byte = 'x';
  EXPECT_EQ(Io::Get()->Write(fd, &byte, 1), 1);  // 1st: passes through
  errno = 0;
  EXPECT_EQ(Io::Get()->Write(fd, &byte, 1), -1);  // 2nd: scheduled fault
  EXPECT_EQ(errno, ENOSPC);
  EXPECT_EQ(Io::Get()->Write(fd, &byte, 1), 1);  // 3rd: passes again
  EXPECT_EQ(Io::Get()->Close(fd), 0);
  EXPECT_EQ(io->faults_injected(), 1u);
  EXPECT_EQ(io->injected_for(FaultOp::kWrite), 1u);
  EXPECT_EQ(io->injected_for(FaultOp::kRead), 0u);
}

TEST_F(FaultIoTest, PathFilterMatchesViaTheFdsOpenPath) {
  // Only fds opened under a path containing "victim" are faulted; the
  // other file keeps working, proving per-file targeting through the
  // fd -> path registry.
  ScopedFaultIo io(MustParse("fsync~victim@1=EIO"));
  const int victim = OpenForWrite(Path("victim.log"));
  const int bystander = OpenForWrite(Path("bystander.log"));
  EXPECT_EQ(Io::Get()->Fsync(bystander), 0);
  errno = 0;
  EXPECT_EQ(Io::Get()->Fsync(victim), -1);
  EXPECT_EQ(errno, EIO);
  EXPECT_EQ(Io::Get()->Close(victim), 0);
  EXPECT_EQ(Io::Get()->Close(bystander), 0);
  EXPECT_EQ(io->faults_injected(), 1u);
}

TEST_F(FaultIoTest, RenameFaultMatchesEitherEndpoint) {
  ScopedFaultIo io(MustParse("rename~final@1=EIO"));
  const std::string tmp = Path("file.tmp");
  const int fd = OpenForWrite(tmp);
  EXPECT_EQ(Io::Get()->Close(fd), 0);
  errno = 0;
  // The destination (not the source) carries the filtered substring.
  EXPECT_EQ(Io::Get()->Rename(tmp.c_str(), Path("final.dat").c_str()), -1);
  EXPECT_EQ(errno, EIO);
  EXPECT_TRUE(fs::exists(tmp));  // the rename really was suppressed
}

TEST_F(FaultIoTest, ShortWriteHalvesTheCountInsteadOfFailing) {
  ScopedFaultIo io(MustParse("short_write@1"));
  const std::string path = Path("short");
  const int fd = OpenForWrite(path);
  const char data[8] = {'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h'};
  EXPECT_EQ(Io::Get()->Write(fd, data, sizeof(data)),
            static_cast<long>(sizeof(data) / 2));
  EXPECT_EQ(Io::Get()->Write(fd, data + 4, 4), 4);  // fired once only
  EXPECT_EQ(Io::Get()->Close(fd), 0);
  EXPECT_EQ(io->injected_for(FaultOp::kShortWrite), 1u);
  EXPECT_EQ(fs::file_size(path), 8u);
}

TEST_F(FaultIoTest, ProbabilisticFiringReplaysBitIdenticallyPerSeed) {
  // Two instances of the same seeded schedule must fire on exactly the
  // same calls — that is what makes a logged schedule reproducible.
  constexpr int kCalls = 200;
  auto fire_pattern = [&](const std::string& text) {
    FaultInjectingIo io(MustParse(text));
    Io::Install(&io);
    const int fd = OpenForWrite(Path("prob"));
    std::vector<bool> fired;
    char byte = 'p';
    for (int i = 0; i < kCalls; ++i) {
      fired.push_back(Io::Get()->Write(fd, &byte, 1) < 0);
    }
    EXPECT_EQ(Io::Get()->Close(fd), 0);
    Io::Install(nullptr);
    return fired;
  };
  const auto a = fire_pattern("write%0.25=EIO,seed=7");
  const auto b = fire_pattern("write%0.25=EIO,seed=7");
  const auto c = fire_pattern("write%0.25=EIO,seed=8");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // a different seed draws a different pattern
  const int fires = static_cast<int>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, kCalls);
}

// --- Retry policy of the posix_io helpers -----------------------------------

TEST_F(FaultIoTest, TransientErrnoClassifierIsNarrow) {
  EXPECT_TRUE(IsTransientIoErrno(EINTR));
  EXPECT_TRUE(IsTransientIoErrno(EAGAIN));
  EXPECT_FALSE(IsTransientIoErrno(EIO));
  EXPECT_FALSE(IsTransientIoErrno(ENOSPC));
  EXPECT_FALSE(IsTransientIoErrno(0));
}

TEST_F(FaultIoTest, WriteFullyAbsorbsASingleEintr) {
  const IoCounters before = ReadIoCounters();
  ScopedFaultIo io(MustParse("write@1=EINTR"));
  const std::string path = Path("eintr");
  const int fd = OpenForWrite(path);
  const std::string payload = "retry survives one interruption";
  EXPECT_TRUE(WriteFully(fd, payload.data(), payload.size(), path).ok());
  EXPECT_EQ(Io::Get()->Close(fd), 0);
  EXPECT_EQ(fs::file_size(path), payload.size());
  const IoCounters after = ReadIoCounters();
  EXPECT_GE(after.retries, before.retries + 1);
  EXPECT_EQ(after.retries_exhausted, before.retries_exhausted);
}

TEST_F(FaultIoTest, WriteFullySurfacesAPersistentEintrStormAtTheCap) {
  const IoCounters before = ReadIoCounters();
  // Probability 1: every attempt is interrupted, forever. The bounded
  // retry budget must turn that into a reported EINTR error instead of an
  // unbounded spin.
  ScopedFaultIo io(MustParse("write%1=EINTR"));
  const std::string path = Path("storm");
  const int fd = OpenForWrite(path);
  char byte = 's';
  const Status st = WriteFully(fd, &byte, 1, path);
  EXPECT_EQ(Io::Get()->Close(fd), 0);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_EQ(st.sys_errno(), EINTR);
  const IoCounters after = ReadIoCounters();
  EXPECT_GE(after.retries, before.retries +
                               static_cast<std::uint64_t>(
                                   kMaxTransientIoAttempts - 1));
  EXPECT_EQ(after.retries_exhausted, before.retries_exhausted + 1);
}

TEST_F(FaultIoTest, ReadErrorCarriesItsErrno) {
  ScopedFaultIo io(MustParse("read@1=EIO"));
  const std::string path = Path("readerr");
  const int fd = OpenForWrite(path);
  char buf[16];
  std::size_t got = 0;
  const Status st = ReadUpTo(fd, buf, sizeof(buf), &got, path);
  EXPECT_EQ(Io::Get()->Close(fd), 0);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_EQ(st.sys_errno(), EIO);
}

TEST_F(FaultIoTest, WriteFullyFinishesAScheduledShortWrite) {
  // The continuation path: a shortened write must not lose the tail.
  ScopedFaultIo io(MustParse("short_write@1"));
  const std::string path = Path("short_full");
  const int fd = OpenForWrite(path);
  const std::string payload(64, 'z');
  EXPECT_TRUE(WriteFully(fd, payload.data(), payload.size(), path).ok());
  EXPECT_EQ(Io::Get()->Close(fd), 0);
  EXPECT_EQ(fs::file_size(path), payload.size());
  EXPECT_EQ(io->injected_for(FaultOp::kShortWrite), 1u);
}

TEST_F(FaultIoTest, InstallSwapsAndRestoresTheProcessGlobal) {
  Io* original = Io::Get();
  EXPECT_EQ(original, Io::Default());
  FaultInjectingIo fault(MustParse("write@1=EIO"));
  EXPECT_EQ(Io::Install(&fault), original);
  EXPECT_EQ(Io::Get(), &fault);
  EXPECT_EQ(Io::Install(nullptr), &fault);
  EXPECT_EQ(Io::Get(), Io::Default());
}

}  // namespace
}  // namespace sobc
