#include "bc/ebc_map.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"

namespace sobc {
namespace {

EdgeKey Key(VertexId u, VertexId v) { return EdgeKey::Undirected(u, v); }

TEST(EdgeScoreMapTest, InsertFindAt) {
  EdgeScoreMap map;
  EXPECT_TRUE(map.empty());
  map[Key(1, 2)] = 3.5;
  map[Key(2, 7)] += 1.0;
  map[Key(1, 2)] += 0.5;
  EXPECT_EQ(map.size(), 2u);
  EXPECT_DOUBLE_EQ(map.at(Key(2, 1)), 4.0);  // canonical key
  EXPECT_DOUBLE_EQ(map.find(Key(2, 7))->second, 1.0);
  EXPECT_EQ(map.find(Key(5, 6)), map.end());
  EXPECT_EQ(map.count(Key(5, 6)), 0u);
  EXPECT_THROW(map.at(Key(5, 6)), std::out_of_range);
}

TEST(EdgeScoreMapTest, EraseTombstoneReuseAndReinsert) {
  EdgeScoreMap map;
  map[Key(0, 1)] = 1.0;
  map[Key(0, 2)] = 2.0;
  EXPECT_EQ(map.erase(Key(0, 1)), 1u);
  EXPECT_EQ(map.erase(Key(0, 1)), 0u);  // already gone
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.find(Key(0, 1)), map.end());
  // Re-insert after erase must land on one live slot (tombstone reuse).
  map[Key(0, 1)] = 7.0;
  EXPECT_EQ(map.size(), 2u);
  EXPECT_DOUBLE_EQ(map.at(Key(0, 1)), 7.0);
  map[Key(0, 1)] += 1.0;
  EXPECT_EQ(map.size(), 2u) << "reinsert through a tombstone double-counted";
}

TEST(EdgeScoreMapTest, IterationSkipsDeadSlots) {
  EdgeScoreMap map;
  for (VertexId v = 1; v <= 10; ++v) map[Key(0, v)] = v;
  for (VertexId v = 1; v <= 10; v += 2) map.erase(Key(0, v));
  std::vector<std::pair<EdgeKey, double>> seen(map.begin(), map.end());
  EXPECT_EQ(seen.size(), 5u);
  double total = 0.0;
  for (const auto& [key, value] : map) total += value;
  EXPECT_DOUBLE_EQ(total, 2 + 4 + 6 + 8 + 10);
  // Values stay mutable through iteration (the approx scaler relies on it).
  for (auto& [key, value] : map) value *= 2.0;
  EXPECT_DOUBLE_EQ(map.at(Key(0, 2)), 4.0);
}

TEST(EdgeScoreMapTest, ClearKeepsCapacityAndRefills) {
  EdgeScoreMap map;
  for (VertexId v = 1; v <= 200; ++v) map[Key(0, v)] = v;
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(Key(0, 5)), map.end());
  for (VertexId v = 1; v <= 200; ++v) map[Key(0, v)] = v + 0.5;
  EXPECT_EQ(map.size(), 200u);
  EXPECT_DOUBLE_EQ(map.at(Key(0, 123)), 123.5);
}

TEST(EdgeScoreMapTest, RemovalHeavyStreamDoesNotAccumulateTombstoneGrowth) {
  // The core evolving-graph pattern: erase ever-new distinct keys while the
  // live set stays tiny. The table must stay bounded by the live size, not
  // grow with cumulative erases (rehash must clear tombstones).
  EdgeScoreMap map;
  for (std::uint32_t i = 0; i < 100000; ++i) {
    const EdgeKey key = Key(i, i + 1);
    map[key] = 1.0;
    EXPECT_EQ(map.erase(key), 1u);
  }
  EXPECT_TRUE(map.empty());
  map[Key(0, 1)] = 42.0;
  EXPECT_DOUBLE_EQ(map.at(Key(0, 1)), 42.0);
}

TEST(EdgeScoreMapTest, EraseTriggeredCleanupBoundsTombstonesAndShrinks) {
  // Serve-style churn: a burst of inserts followed by an erase-dominated
  // stretch with no insert to piggyback growth on. The erase-side trigger
  // must (a) keep tombstones below the quarter-capacity ratio at all
  // times, and (b) shrink the table back to live-size scale once the
  // churn has emptied it — without it, capacity stays at the high-water
  // mark and every miss probes through a tombstone field.
  EdgeScoreMap map;
  constexpr std::uint32_t kBurst = 4096;
  for (std::uint32_t i = 0; i < kBurst; ++i) map[Key(i, i + 1)] = 1.0;
  const std::size_t peak_capacity = map.capacity();
  EXPECT_GE(peak_capacity, 2 * kBurst);
  for (std::uint32_t i = 0; i < kBurst - 16; ++i) {
    ASSERT_EQ(map.erase(Key(i, i + 1)), 1u);
    ASSERT_LE(4 * map.tombstone_count(), map.capacity())
        << "tombstone ratio exceeded after erase " << i;
  }
  EXPECT_EQ(map.size(), 16u);
  EXPECT_LT(map.capacity(), peak_capacity / 8);
  for (std::uint32_t i = kBurst - 16; i < kBurst; ++i) {
    EXPECT_DOUBLE_EQ(map.at(Key(i, i + 1)), 1.0);
  }
}

TEST(EdgeScoreMapTest, ChurnLoopKeepsCapacityAtLiveScale) {
  // Interleaved insert/erase churn over a small live set, the exact shape
  // of the serving workload after coalescing: capacity must stay at the
  // live-set scale forever instead of ratcheting with cumulative erases.
  Rng rng(7);
  EdgeScoreMap map;
  std::size_t max_capacity = 0;
  for (int round = 0; round < 50000; ++round) {
    const auto u = static_cast<VertexId>(rng.Uniform(1u << 20));
    const EdgeKey key = Key(u, u + 1);
    map[key] = static_cast<double>(round);
    if (map.size() > 32) {
      // Evict a pseudo-random live entry to hold the live set near 32.
      map.erase(map.begin()->first);
    }
    max_capacity = std::max(max_capacity, map.capacity());
  }
  EXPECT_LE(map.size(), 33u);
  EXPECT_LE(max_capacity, 512u);
  EXPECT_LE(4 * map.tombstone_count(), map.capacity() + 4);
}

TEST(EdgeScoreMapTest, AddAllAccumulatesDuplicatesAndRevivesTombstones) {
  EdgeScoreMap map;
  map[Key(0, 1)] = 1.0;
  map[Key(0, 2)] = 2.0;
  map.erase(Key(0, 2));  // a tombstone on the slab's probe path
  const std::vector<std::pair<EdgeKey, double>> slab = {
      {Key(0, 1), 0.5},  {Key(0, 2), 3.0}, {Key(3, 4), 1.0},
      {Key(0, 1), 0.25}, {Key(3, 4), 1.0},
  };
  map.AddAll(slab);
  EXPECT_EQ(map.size(), 3u);
  EXPECT_DOUBLE_EQ(map.at(Key(0, 1)), 1.75);  // existing + two slab hits
  // Revival through the tombstone must start from zero, not the erased
  // value.
  EXPECT_DOUBLE_EQ(map.at(Key(0, 2)), 3.0);
  EXPECT_DOUBLE_EQ(map.at(Key(3, 4)), 2.0);  // duplicate fresh key
}

TEST(EdgeScoreMapTest, AddAllMatchesUnorderedMapThroughGrowth) {
  // A slab much larger than the table's current capacity: the up-front
  // reserve must rehash once, and the prefetch lookahead (slots hashed
  // against the pre-insert mask) must not skip or double-apply any entry.
  // Keys are drawn from a small id pool so probe chains collide heavily.
  Rng rng(17);
  EdgeScoreMap map;
  std::unordered_map<EdgeKey, double, EdgeKeyHash> reference;
  for (int i = 0; i < 8; ++i) {  // a few pre-existing entries + tombstones
    const EdgeKey key = Key(static_cast<VertexId>(rng.Uniform(12)),
                            static_cast<VertexId>(12 + rng.Uniform(12)));
    map[key] += 0.5;
    reference[key] += 0.5;
    if (i % 3 == 0) {
      EXPECT_EQ(map.erase(key), reference.erase(key));
    }
  }
  std::vector<std::pair<EdgeKey, double>> slab;
  for (int i = 0; i < 5000; ++i) {
    const EdgeKey key = Key(static_cast<VertexId>(rng.Uniform(40)),
                            static_cast<VertexId>(40 + rng.Uniform(40)));
    slab.push_back({key, 1.0 + static_cast<double>(rng.Uniform(8))});
  }
  map.AddAll(slab);
  for (const auto& [key, value] : slab) reference[key] += value;
  ASSERT_EQ(map.size(), reference.size());
  for (const auto& [key, value] : reference) {
    ASSERT_NE(map.find(key), map.end())
        << "(" << key.u << "," << key.v << ")";
    EXPECT_DOUBLE_EQ(map.at(key), value)
        << "(" << key.u << "," << key.v << ")";
  }
}

TEST(EdgeScoreMapTest, MatchesUnorderedMapUnderRandomChurn) {
  Rng rng(99);
  EdgeScoreMap map;
  std::unordered_map<EdgeKey, double, EdgeKeyHash> reference;
  for (int step = 0; step < 20000; ++step) {
    const EdgeKey key = Key(static_cast<VertexId>(rng.Uniform(60)),
                            static_cast<VertexId>(rng.Uniform(60)));
    if (key.u == key.v) continue;
    switch (rng.Uniform(4)) {
      case 0:
      case 1:
        map[key] += 1.25;
        reference[key] += 1.25;
        break;
      case 2:
        EXPECT_EQ(map.erase(key), reference.erase(key));
        break;
      default: {
        const auto it = map.find(key);
        const auto ref = reference.find(key);
        ASSERT_EQ(it == map.end(), ref == reference.end());
        if (ref != reference.end()) {
          EXPECT_DOUBLE_EQ(it->second, ref->second);
        }
      }
    }
  }
  ASSERT_EQ(map.size(), reference.size());
  for (const auto& [key, value] : reference) {
    ASSERT_NE(map.find(key), map.end());
    EXPECT_DOUBLE_EQ(map.at(key), value);
  }
}

}  // namespace
}  // namespace sobc
