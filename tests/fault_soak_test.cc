// Fault-soak torture for the durability stack (DESIGN.md §12, the
// capstone of the fault-injection layer): serve under injected I/O fault
// schedules — targeted ones proving each rung of the health ladder, plus
// a randomized matrix of deterministic schedules across all three
// storage variants — then recover with faults cleared and differentially
// verify the recovered scores against from-scratch Brandes on the
// recovered prefix. A run may end Healthy, Degraded (checkpoints
// suspended, WAL-only) or ReadOnly (writer dead), but it must never
// hang, crash, or publish a wrong snapshot, and an epoch whose fsync
// failed must never be reported durable.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bc/brandes.h"
#include "bc/dynamic_bc.h"
#include "common/fault_io.h"
#include "common/io.h"
#include "common/rng.h"
#include "gen/stream_generators.h"
#include "graph/graph_io.h"
#include "server/bc_service.h"
#include "tests/test_util.h"
#include "tests/testlib/scenarios.h"

namespace sobc {
namespace {

namespace fs = std::filesystem;

using testutil::ExpectScoresNear;
using testutil::RandomConnectedGraph;

constexpr double kTol = 1e-7;

/// Installs a FaultInjectingIo for one serve phase; the destructor always
/// restores the real Io before recovery runs.
class ScopedFaultIo {
 public:
  explicit ScopedFaultIo(FaultSchedule schedule)
      : io_(std::move(schedule)) {
    Io::Install(&io_);
  }
  ~ScopedFaultIo() { Io::Install(nullptr); }

  FaultInjectingIo* operator->() { return &io_; }

 private:
  FaultInjectingIo io_;
};

FaultSchedule MustParse(const std::string& text) {
  auto schedule = FaultSchedule::Parse(text);
  EXPECT_TRUE(schedule.ok()) << schedule.status().ToString();
  return *schedule;
}

/// Exact (bitwise) score equality — the sharper differential guarantee of
/// the byte-copied out-of-core store under a serial writer.
void ExpectScoresIdentical(const ScoreSnapshot& expected,
                           const ScoreSnapshot& actual,
                           const std::string& label) {
  ASSERT_EQ(expected.vbc.size(), actual.vbc.size()) << label;
  for (std::size_t v = 0; v < expected.vbc.size(); ++v) {
    EXPECT_EQ(expected.vbc[v], actual.vbc[v])
        << label << ": vbc differs at " << v;
  }
}

class FaultSoakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/sobc_fault_soak_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override {
    Io::Install(nullptr);  // belt and braces if a test aborted mid-scope
    fs::remove_all(root_);
  }

  std::string Fresh(const std::string& name) {
    const std::string path = root_ + "/" + name;
    fs::remove_all(path);
    return path;
  }

  BcServiceOptions DurableOptions(const std::string& tag, BcVariant variant,
                                  std::size_t checkpoint_every,
                                  std::size_t fsync_every) {
    BcServiceOptions options;
    options.queue.max_batch = 8;
    options.queue.batch_latency_budget_seconds = 0.002;
    options.bc.variant = variant;
    if (variant == BcVariant::kOutOfCore) {
      options.bc.storage_path = Fresh(tag + "_live.bd");
      options.bc.cache_mb = 4;
    }
    options.durability.wal_dir = Fresh(tag + "_wal");
    options.durability.checkpoint_dir = Fresh(tag + "_ckpt");
    options.durability.checkpoint_every_updates = checkpoint_every;
    options.durability.wal_fsync_every = fsync_every;
    return options;
  }

  BcServiceOptions RecoverOptions(const BcServiceOptions& run_options,
                                  const std::string& tag) {
    BcServiceOptions options;
    options.durability.wal_dir = run_options.durability.wal_dir;
    options.durability.checkpoint_dir = run_options.durability.checkpoint_dir;
    options.bc.storage_path = Fresh(tag + "_recovered.bd");
    return options;
  }

  static Graph GraphAtPosition(const Graph& base, const EdgeStream& stream,
                               std::uint64_t position) {
    Graph graph = base;
    for (std::uint64_t i = 0; i < position; ++i) {
      EXPECT_TRUE(ApplyToGraph(&graph, stream[i]).ok());
    }
    return graph;
  }

  std::string root_;
};

// --- Targeted ladder rungs --------------------------------------------------

TEST_F(FaultSoakTest, CheckpointEnospcDegradesServiceButServingContinues) {
  const auto [base, stream] =
      testlib::ChurnScenario(/*seed=*/11, /*n=*/30, /*extra_edges=*/22,
                             /*updates=*/36);
  BcServiceOptions options =
      DurableOptions("degrade", BcVariant::kMemory, /*checkpoint_every=*/10,
                     /*fsync_every=*/0);
  auto service = BcService::Create(base, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  {
    // Armed after bring-up, so the initial checkpoint is real; the FIRST
    // fsync under the checkpoint dir — the next background checkpoint —
    // hits ENOSPC.
    ScopedFaultIo fault(MustParse("fsync~ckpt@1=ENOSPC"));
    const std::size_t half = stream.size() / 2;
    for (std::size_t i = 0; i < half; ++i) {
      ASSERT_TRUE((*service)->Submit(stream[i]));
    }
    ASSERT_TRUE((*service)->Drain().ok());
    // Let the background checkpoint fail, then let the writer observe it
    // on the next batch.
    (void)(*service)->QuiesceCheckpoints();
    for (std::size_t i = half; i < stream.size(); ++i) {
      ASSERT_TRUE((*service)->Submit(stream[i]))
          << "degraded mode must keep accepting updates";
    }
    ASSERT_TRUE((*service)->Drain().ok());
    EXPECT_EQ((*service)->health(), ServiceHealth::kDegraded);
    EXPECT_EQ(fault->injected_for(FaultOp::kFsync), 1u);

    const ServeMetricsSnapshot metrics = (*service)->metrics();
    EXPECT_EQ(metrics.health, "degraded");
    EXPECT_EQ(metrics.health_state, 1u);
    EXPECT_EQ(metrics.checkpoints_suspended, 1u);
    EXPECT_GE(metrics.io_faults_injected, 1u);
    EXPECT_FALSE(metrics.last_error.empty());
    EXPECT_EQ((*service)->last_error().sys_errno(), ENOSPC);

    const auto snap = (*service)->snapshot();
    EXPECT_EQ(snap->stream_position, stream.size());
    // WAL-only serving stayed correct the whole time.
    ExpectScoresNear(ComputeBrandes(GraphAtPosition(base, stream,
                                                    stream.size())),
                     BcScores{snap->vbc, snap->ebc}, kTol, "degraded live");
    // Degraded Stop skips the final checkpoint and reports the cause.
    EXPECT_FALSE((*service)->Stop().ok());
  }

  // Faults cleared: recovery replays the whole WAL (no post-degrade
  // checkpoint exists) and lands on the truth.
  RecoveryInfo info;
  auto recovered =
      BcService::Recover(RecoverOptions(options, "degrade"), &info);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(info.recovered_stream_position, stream.size());
  const auto snap = (*recovered)->snapshot();
  ExpectScoresNear(ComputeBrandes(GraphAtPosition(base, stream,
                                                  stream.size())),
                   BcScores{snap->vbc, snap->ebc}, kTol, "post-degrade");
  EXPECT_TRUE((*recovered)->Stop().ok());
}

TEST_F(FaultSoakTest, WalFsyncFailureIsFatalAndNeverReportsTheEpochDurable) {
  const auto [base, stream] =
      testlib::ChurnScenario(/*seed=*/12, /*n=*/30, /*extra_edges=*/22,
                             /*updates=*/24);
  BcServiceOptions options =
      DurableOptions("fsyncgate", BcVariant::kMemory, /*checkpoint_every=*/0,
                     /*fsync_every=*/1);
  auto service = BcService::Create(base, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  const std::uint64_t epoch_before = (*service)->snapshot()->epoch;
  {
    ScopedFaultIo fault(MustParse("fdatasync@1=EIO"));
    (void)(*service)->SubmitAll(stream);
    // The first batch sync fails: fsyncgate — the segment is poisoned, the
    // writer dies, and the service lands ReadOnly.
    const Status drain = (*service)->Drain();
    ASSERT_FALSE(drain.ok());
    EXPECT_EQ(drain.code(), StatusCode::kIOError);
    EXPECT_EQ(drain.sys_errno(), EIO);
    EXPECT_EQ((*service)->health(), ServiceHealth::kReadOnly);
    EXPECT_GE(fault->injected_for(FaultOp::kFdatasync), 1u);

    // ReadOnly: Submit fails fast, snapshots still serve.
    EXPECT_FALSE((*service)->Submit(stream[0]));
    const auto snap = (*service)->snapshot();
    EXPECT_EQ(snap->epoch, epoch_before);

    const ServeMetricsSnapshot metrics = (*service)->metrics();
    EXPECT_EQ(metrics.health, "readonly");
    EXPECT_EQ(metrics.health_state, 2u);
    EXPECT_FALSE(metrics.last_error.empty());
    // The acceptance bar of the issue: the epoch whose fsync failed must
    // not be reported durable — the durable epoch froze before it.
    EXPECT_LE(metrics.wal_last_durable_epoch, epoch_before);

    // Stop reports the terminal writer status.
    EXPECT_FALSE((*service)->Stop().ok());
  }

  // The unsynced bytes were still written (the fault failed the sync, not
  // the write), so a clean-Io recovery may legally replay them; whatever
  // prefix it lands on must be the truth of that prefix.
  RecoveryInfo info;
  auto recovered =
      BcService::Recover(RecoverOptions(options, "fsyncgate"), &info);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const auto snap = (*recovered)->snapshot();
  const std::uint64_t position = info.recovered_stream_position;
  EXPECT_LE(position, stream.size());
  ExpectScoresNear(ComputeBrandes(GraphAtPosition(base, stream, position)),
                   BcScores{snap->vbc, snap->ebc}, kTol, "post-fsyncgate");
  EXPECT_TRUE((*recovered)->Stop().ok());
}

TEST_F(FaultSoakTest, WatchdogSurfacesAStalledWriterInsteadOfHangingDrain) {
  Rng rng(13);
  const Graph base = RandomConnectedGraph(20, 14, &rng);
  BcServiceOptions options;  // no durability needed for a stall
  options.writer_stall_timeout_seconds = 0.05;
  std::atomic<bool> stall_once{true};
  options.writer_batch_hook = [&stall_once] {
    if (stall_once.exchange(false)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(400));
    }
  };
  auto service = BcService::Create(base, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ASSERT_TRUE((*service)->Submit({0, 5, EdgeOp::kAdd, 0.0}));
  const Status stalled = (*service)->Drain();
  ASSERT_FALSE(stalled.ok());
  EXPECT_EQ(stalled.code(), StatusCode::kInternal);
  EXPECT_NE(stalled.message().find("stalled"), std::string::npos);
  // The stall is recoverable: Drain keeps reporting it while the batch is
  // stuck, and succeeds once it finishes — the watchdog reports, it never
  // kills.
  Status later = stalled;
  for (int i = 0; i < 300 && !later.ok(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    later = (*service)->Drain();
  }
  EXPECT_TRUE(later.ok()) << later.ToString();
  EXPECT_EQ((*service)->health(), ServiceHealth::kHealthy);
  // The watchdog clears the flag on its next poll after the batch ends.
  ServeMetricsSnapshot metrics = (*service)->metrics();
  for (int i = 0; i < 100 && metrics.writer_stalled != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    metrics = (*service)->metrics();
  }
  EXPECT_EQ(metrics.health, "healthy");
  EXPECT_EQ(metrics.writer_stalled, 0u);
  EXPECT_TRUE((*service)->Stop().ok());
}

TEST_F(FaultSoakTest, ShortWritesAndTransientErrnosAreAbsorbedEndToEnd) {
  // Shortened WAL/checkpoint writes and EINTR interruptions are the
  // faults the retry/continuation machinery must swallow: the run stays
  // Healthy and the recovered scores are the full-stream truth.
  const auto [base, stream] =
      testlib::ChurnScenario(/*seed=*/14, /*n=*/30, /*extra_edges=*/22,
                             /*updates=*/30);
  BcServiceOptions options =
      DurableOptions("absorb", BcVariant::kMemory, /*checkpoint_every=*/10,
                     /*fsync_every=*/1);
  auto service = BcService::Create(base, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  {
    ScopedFaultIo fault(
        MustParse("short_write%0.4,write%0.05=EINTR,seed=99"));
    EXPECT_EQ((*service)->SubmitAll(stream), stream.size());
    ASSERT_TRUE((*service)->Drain().ok());
    EXPECT_EQ((*service)->health(), ServiceHealth::kHealthy);
    EXPECT_GE(fault->faults_injected(), 1u);
    EXPECT_TRUE((*service)->Stop().ok());
  }
  RecoveryInfo info;
  auto recovered =
      BcService::Recover(RecoverOptions(options, "absorb"), &info);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(info.replayed_batches, 0u);  // the clean shutdown checkpointed
  const auto snap = (*recovered)->snapshot();
  ExpectScoresNear(ComputeBrandes(GraphAtPosition(base, stream,
                                                  stream.size())),
                   BcScores{snap->vbc, snap->ebc}, kTol, "post-absorb");
  EXPECT_TRUE((*recovered)->Stop().ok());
}

// --- Randomized schedule matrix ---------------------------------------------

/// A deterministic random schedule for iteration `seed`: one or two specs
/// over the durability stack's operation classes, biased toward nth-call
/// triggers, with the seed embedded so any failure is reproducible from
/// the SCOPED_TRACE output alone.
std::string RandomSchedule(std::uint64_t seed) {
  Rng rng(seed * 2654435761ull + 17);
  static const char* kOps[] = {"write",     "short_write", "read",
                               "fsync",     "fdatasync",   "rename",
                               "unlink",    "open"};
  static const char* kErrnos[] = {"EIO", "ENOSPC"};
  static const char* kFilters[] = {"", "wal", "ckpt"};
  const int n = 1 + static_cast<int>(rng.Uniform(2));
  std::string text;
  for (int i = 0; i < n; ++i) {
    if (!text.empty()) text += ",";
    const char* op = kOps[rng.Uniform(8)];
    text += op;
    const char* filter = kFilters[rng.Uniform(3)];
    if (*filter != '\0') {
      text += "~";
      text += filter;
    }
    if (rng.Chance(0.7)) {
      text += "@" + std::to_string(1 + rng.Uniform(12));
    } else {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%%0.%02d",
                    2 + static_cast<int>(rng.Uniform(10)));
      text += buf;
    }
    if (std::string(op) != "short_write") {
      text += "=";
      text += kErrnos[rng.Uniform(2)];
    }
  }
  text += ",seed=" + std::to_string(seed);
  return text;
}

TEST_F(FaultSoakTest, RandomizedScheduleMatrixAlwaysRecoversToTheTruth) {
  const struct {
    BcVariant variant;
    const char* tag;
  } variants[] = {
      {BcVariant::kMemory, "mo"},
      {BcVariant::kMemoryPredecessors, "mp"},
      {BcVariant::kOutOfCore, "do"},
  };
  std::set<std::string> schedules;
  for (const auto& v : variants) {
    for (std::uint64_t seed = 1; seed <= 9; ++seed) {
      const std::string tag =
          std::string(v.tag) + "_s" + std::to_string(seed);
      const std::string schedule_text =
          RandomSchedule(seed * 10 + (v.variant == BcVariant::kMemory  ? 0
                                      : v.variant == BcVariant::kOutOfCore
                                          ? 2
                                          : 1));
      // Any assertion below reports everything a reproduction needs: the
      // matrix seed, the generator input, the raw schedule text, and the
      // parsed schedule's canonical rendering (what the injector actually
      // armed — grammar defaults filled in).
      const FaultSchedule parsed_schedule = MustParse(schedule_text);
      SCOPED_TRACE(tag + " seed=" + std::to_string(seed) +
                   " schedule: " + schedule_text +
                   " canonical: " + parsed_schedule.ToString());
      schedules.insert(schedule_text);

      const auto [base, stream] = testlib::ChurnScenario(
          seed * 977 + 5, /*n=*/28, /*extra_edges=*/20, /*updates=*/36);
      BcServiceOptions options = DurableOptions(
          tag, v.variant, /*checkpoint_every=*/12, /*fsync_every=*/1);
      auto service = BcService::Create(base, options);
      ASSERT_TRUE(service.ok()) << service.status().ToString();

      std::size_t accepted = 0;
      ServiceHealth health = ServiceHealth::kHealthy;
      std::shared_ptr<const ScoreSnapshot> live;
      {
        ScopedFaultIo fault(parsed_schedule);
        accepted = (*service)->SubmitAll(stream);
        const Status drain = (*service)->Drain();
        live = (*service)->snapshot();
        const Status stop = (*service)->Stop();
        health = (*service)->health();
        if (!drain.ok() || !stop.ok()) {
          // A failed run must be a REPORTED failure: off the Healthy rung
          // with the cause recorded — never a silent wrong answer.
          EXPECT_NE(health, ServiceHealth::kHealthy);
          EXPECT_FALSE((*service)->last_error().ok());
        }
        if (health == ServiceHealth::kReadOnly) {
          EXPECT_FALSE((*service)->Submit(stream[0]))
              << "ReadOnly must reject Submit fast";
        }
        // Whatever happened, the published snapshot is a legal prefix.
        EXPECT_LE(live->stream_position, accepted);
      }

      // Faults cleared: recovery must always succeed and land on the
      // exact betweenness of the recovered prefix.
      RecoveryInfo info;
      auto recovered =
          BcService::Recover(RecoverOptions(options, tag), &info);
      ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
      const auto snap = (*recovered)->snapshot();
      const std::uint64_t position = info.recovered_stream_position;
      EXPECT_LE(position, accepted);
      EXPECT_EQ(snap->stream_position, position);
      ExpectScoresNear(ComputeBrandes(GraphAtPosition(base, stream,
                                                      position)),
                       BcScores{snap->vbc, snap->ebc}, kTol,
                       "brandes @" + std::to_string(position));
      if (position == live->stream_position) {
        // Recovery landed exactly on the live run's published prefix; for
        // the serial out-of-core variant that means bit-identical scores.
        if (v.variant == BcVariant::kOutOfCore) {
          ExpectScoresIdentical(*live, *snap, "do bit-identity");
        } else {
          ExpectScoresNear(BcScores{live->vbc, live->ebc},
                           BcScores{snap->vbc, snap->ebc}, kTol,
                           "live vs recovered");
        }
      }
      EXPECT_TRUE((*recovered)->Stop().ok());
    }
  }
  // The acceptance bar: at least 25 distinct injected-fault schedules,
  // every one ending in a verified recovery.
  EXPECT_GE(schedules.size(), 25u);
}

}  // namespace
}  // namespace sobc
