#include "graph/csr_view.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bc/brandes.h"
#include "bc/dynamic_bc.h"
#include "common/rng.h"
#include "gen/social_generator.h"
#include "gen/stream_generators.h"
#include "graph/graph.h"
#include "tests/test_util.h"

namespace sobc {
namespace {

std::vector<VertexId> Sorted(std::span<const VertexId> span) {
  std::vector<VertexId> out(span.begin(), span.end());
  std::sort(out.begin(), out.end());
  return out;
}

/// The patched view must present exactly the adjacency a fresh rebuild
/// would, vertex by vertex, in both directions (order within a block is
/// not part of the contract).
void ExpectMatchesRebuild(const Graph& graph) {
  CsrView fresh;
  fresh.Build(graph);
  const CsrView& patched = graph.csr();
  ASSERT_EQ(patched.NumVertices(), graph.NumVertices());
  ASSERT_EQ(fresh.NumVertices(), graph.NumVertices());
  EXPECT_EQ(patched.directed(), graph.directed());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    EXPECT_EQ(Sorted(patched.OutNeighbors(v)), Sorted(fresh.OutNeighbors(v)))
        << "out-neighbors of " << v;
    EXPECT_EQ(Sorted(patched.InNeighbors(v)), Sorted(fresh.InNeighbors(v)))
        << "in-neighbors of " << v;
    EXPECT_EQ(patched.OutDegree(v), graph.OutDegree(v));
    EXPECT_EQ(patched.InDegree(v), graph.InDegree(v));
  }
}

TEST(CsrViewTest, BuildMatchesGraph) {
  Rng rng(11);
  const Graph g = GenerateSocialGraph(200, SocialGraphParams{}, &rng);
  ExpectMatchesRebuild(g);
  EXPECT_EQ(g.csr().stats().builds, 1u);
}

TEST(CsrViewTest, PatchEqualsRebuildAfterRandomAddRemoveStream) {
  Rng rng(23);
  Graph g = GenerateSocialGraph(120, SocialGraphParams{}, &rng);
  g.csr();  // build once; everything below must be patches
  for (int step = 0; step < 400; ++step) {
    const auto u = static_cast<VertexId>(rng.Uniform(140));
    const auto v = static_cast<VertexId>(rng.Uniform(140));
    if (u == v) continue;
    if (g.HasVertex(u) && g.HasVertex(v) && g.HasEdge(u, v) &&
        rng.Uniform(2) == 0) {
      ASSERT_TRUE(g.RemoveEdge(u, v).ok());
    } else {
      (void)g.AddEdge(u, v);  // AlreadyExists is fine; must not patch then
    }
  }
  ExpectMatchesRebuild(g);
  EXPECT_EQ(g.csr().stats().builds, 1u);
  EXPECT_GT(g.csr().stats().patches, 0u);
}

TEST(CsrViewTest, PatchEqualsRebuildDirected) {
  Rng rng(31);
  Graph g(/*directed=*/true);
  g.csr();
  for (int step = 0; step < 300; ++step) {
    const auto u = static_cast<VertexId>(rng.Uniform(60));
    const auto v = static_cast<VertexId>(rng.Uniform(60));
    if (u == v) continue;
    if (g.HasVertex(u) && g.HasVertex(v) && g.HasEdge(u, v) &&
        rng.Uniform(3) == 0) {
      ASSERT_TRUE(g.RemoveEdge(u, v).ok());
    } else {
      (void)g.AddEdge(u, v);
    }
  }
  ExpectMatchesRebuild(g);
  EXPECT_EQ(g.csr().stats().builds, 1u);
}

TEST(CsrViewTest, EpochAdvancesOnEveryMutation) {
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  const CsrView& view = g.csr();
  const std::uint64_t e0 = view.epoch();

  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  const std::uint64_t e1 = view.epoch();
  EXPECT_NE(e1, e0) << "a snapshot consumer must detect the new edge";

  ASSERT_TRUE(g.RemoveEdge(0, 1).ok());
  EXPECT_NE(view.epoch(), e1);

  // Vertex growth also invalidates cached derivations (spans can move).
  ASSERT_TRUE(g.AddEdge(5, 6).ok());
  EXPECT_GT(view.epoch(), e1);
}

TEST(CsrViewTest, StaleEpochDetectsRebuild) {
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  const std::uint64_t before = g.csr().epoch();
  // A copy rebuilds nothing: the snapshot travels with the graph.
  const Graph copy = g;
  EXPECT_EQ(copy.csr().epoch(), before);
  EXPECT_EQ(copy.csr().stats().builds, 1u);
}

TEST(CsrViewTest, MovedFromGraphRebuildsLazily) {
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  g.csr();
  Graph h = std::move(g);
  EXPECT_EQ(h.csr().stats().builds, 1u);
  // Moved-from graph is valid-but-empty; csr() must rebuild, not crash on
  // the moved-out view, and the edge counter must read empty too.
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.csr().NumVertices(), g.NumVertices());
  Graph g2;
  ASSERT_TRUE(g2.AddEdge(2, 3).ok());
  g2.csr();
  h = std::move(g2);
  EXPECT_EQ(g2.csr().NumVertices(), g2.NumVertices());
  EXPECT_TRUE(h.csr().OutNeighbors(2).size() == 1);
}

TEST(CsrViewTest, GrowThenAddStartsFromEmptyBlock) {
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  g.csr();
  ASSERT_TRUE(g.AddEdge(40, 41).ok());  // implicit growth patches the view
  EXPECT_EQ(g.csr().stats().builds, 1u);
  EXPECT_EQ(Sorted(g.csr().OutNeighbors(40)), (std::vector<VertexId>{41}));
  EXPECT_TRUE(g.csr().OutNeighbors(20).empty());
  ExpectMatchesRebuild(g);
}

TEST(CsrViewTest, RelocationsPreserveNeighborsUnderHeavyChurnOnOneVertex) {
  Graph g;
  g.EnsureVertex(300);
  g.csr();
  // Hammer vertex 0 so its block overflows its slack repeatedly.
  for (VertexId v = 1; v <= 300; ++v) {
    ASSERT_TRUE(g.AddEdge(0, v).ok());
  }
  EXPECT_GT(g.csr().stats().relocations, 0u);
  EXPECT_EQ(g.csr().stats().builds, 1u);
  EXPECT_EQ(g.csr().OutDegree(0), 300u);
  ExpectMatchesRebuild(g);
}

/// End-to-end: on the CSR path, incremental scores after a random
/// add/remove stream must match a fresh Brandes recompute — for all three
/// variants (MP / MO / DO).
class CsrEndToEndTest : public ::testing::TestWithParam<BcVariant> {};

TEST_P(CsrEndToEndTest, IncrementalMatchesFreshBrandes) {
  Rng rng(77);
  Graph g = GenerateSocialGraph(60, SocialGraphParams{}, &rng);

  DynamicBcOptions options;
  options.variant = GetParam();
  if (options.variant == BcVariant::kOutOfCore) {
    options.storage_path = ::testing::TempDir() + "/csr_e2e_store.bin";
  }
  auto bc = DynamicBc::Create(g, options);
  ASSERT_TRUE(bc.ok()) << bc.status().ToString();

  Rng stream_rng(78);
  for (int step = 0; step < 60; ++step) {
    const auto u = static_cast<VertexId>(stream_rng.Uniform(70));
    const auto v = static_cast<VertexId>(stream_rng.Uniform(70));
    if (u == v) continue;
    const Graph& cur = (*bc)->graph();
    if (cur.HasVertex(u) && cur.HasVertex(v) && cur.HasEdge(u, v) &&
        stream_rng.Uniform(2) == 0) {
      ASSERT_TRUE((*bc)->Apply({u, v, EdgeOp::kRemove}).ok());
    } else if (!(cur.HasVertex(u) && cur.HasVertex(v) && cur.HasEdge(u, v))) {
      ASSERT_TRUE((*bc)->Apply({u, v, EdgeOp::kAdd}).ok());
    }
  }

  // O(degree) patching, never a rebuild, across the whole stream.
  EXPECT_LE((*bc)->graph().csr().stats().builds, 1u);

  const BcScores fresh = ComputeBrandes((*bc)->graph());
  testutil::ExpectScoresNear(fresh, (*bc)->scores(), 1e-6, "csr end-to-end");
}

INSTANTIATE_TEST_SUITE_P(AllVariants, CsrEndToEndTest,
                         ::testing::Values(BcVariant::kMemoryPredecessors,
                                           BcVariant::kMemory,
                                           BcVariant::kOutOfCore));

}  // namespace
}  // namespace sobc
