#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "graph/edge_stream.h"
#include "graph/graph.h"
#include "graph/graph_io.h"

namespace sobc {
namespace {

TEST(GraphTest, StartsEmpty) {
  Graph g;
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_FALSE(g.directed());
}

TEST(GraphTest, AddEdgeCreatesVertices) {
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 5).ok());
  EXPECT_EQ(g.NumVertices(), 6u);
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_TRUE(g.HasEdge(0, 5));
  EXPECT_TRUE(g.HasEdge(5, 0));  // undirected symmetry
}

TEST(GraphTest, RejectsSelfLoop) {
  Graph g;
  EXPECT_EQ(g.AddEdge(3, 3).code(), StatusCode::kInvalidArgument);
}

TEST(GraphTest, RejectsDuplicateEdge) {
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  EXPECT_EQ(g.AddEdge(0, 1).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(g.AddEdge(1, 0).code(), StatusCode::kAlreadyExists);
}

TEST(GraphTest, RemoveEdge) {
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.RemoveEdge(2, 1).ok());
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_FALSE(g.HasEdge(1, 2));
  EXPECT_EQ(g.RemoveEdge(1, 2).code(), StatusCode::kNotFound);
}

TEST(GraphTest, DegreeUndirected) {
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(0), 2u);
}

TEST(GraphTest, DirectedEdgesAreAsymmetric) {
  Graph g(/*directed=*/true);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_EQ(g.OutDegree(0), 1u);
  EXPECT_EQ(g.InDegree(1), 1u);
  EXPECT_EQ(g.InDegree(0), 0u);
  // The reverse edge is a distinct edge.
  ASSERT_TRUE(g.AddEdge(1, 0).ok());
  EXPECT_EQ(g.NumEdges(), 2u);
}

TEST(GraphTest, DirectedRemoveOnlyRemovesOrientation) {
  Graph g(/*directed=*/true);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 0).ok());
  ASSERT_TRUE(g.RemoveEdge(0, 1).ok());
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
}

TEST(GraphTest, InOutNeighborsDirected) {
  Graph g(/*directed=*/true);
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  auto in = g.InNeighbors(2);
  EXPECT_EQ(in.size(), 2u);
  EXPECT_EQ(g.OutNeighbors(2).size(), 0u);
}

TEST(GraphTest, ForEachEdgeVisitsOnce) {
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  int count = 0;
  g.ForEachEdge([&count](VertexId u, VertexId v) {
    EXPECT_LT(u, v);
    ++count;
  });
  EXPECT_EQ(count, 3);
}

TEST(GraphTest, EdgesSortedCanonical) {
  Graph g;
  ASSERT_TRUE(g.AddEdge(2, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 0).ok());
  auto edges = g.Edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (EdgeKey{0, 1}));
  EXPECT_EQ(edges[1], (EdgeKey{1, 2}));
}

TEST(GraphTest, EnsureVertexGrows) {
  Graph g;
  EXPECT_TRUE(g.EnsureVertex(3));
  EXPECT_FALSE(g.EnsureVertex(3));
  EXPECT_EQ(g.NumVertices(), 4u);
  EXPECT_EQ(g.Degree(3), 0u);
}

TEST(EdgeKeyTest, UndirectedCanonical) {
  EXPECT_EQ(EdgeKey::Undirected(5, 2), (EdgeKey{2, 5}));
  EXPECT_EQ(EdgeKey::Undirected(2, 5), (EdgeKey{2, 5}));
}

TEST(EdgeKeyTest, HashDistinguishesOrientation) {
  EdgeKeyHash h;
  EXPECT_NE(h({1, 2}), h({2, 1}));
}

TEST(EdgeStreamTest, InterArrivalTimes) {
  EdgeStream s = {{0, 1, EdgeOp::kAdd, 10.0},
                  {1, 2, EdgeOp::kAdd, 12.5},
                  {2, 3, EdgeOp::kRemove, 20.0}};
  auto gaps = InterArrivalTimes(s);
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_DOUBLE_EQ(gaps[0], 2.5);
  EXPECT_DOUBLE_EQ(gaps[1], 7.5);
}

TEST(EdgeStreamTest, InterArrivalOfShortStreams) {
  EXPECT_TRUE(InterArrivalTimes({}).empty());
  EXPECT_TRUE(InterArrivalTimes({{0, 1, EdgeOp::kAdd, 1.0}}).empty());
}

class GraphIoTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& p : paths_) std::remove(p.c_str());
  }
  std::string TempPath(const std::string& name) {
    std::string p = ::testing::TempDir() + "/sobc_" + name;
    paths_.push_back(p);
    return p;
  }
  std::vector<std::string> paths_;
};

TEST_F(GraphIoTest, EdgeListRoundTrip) {
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(0, 3).ok());
  const std::string path = TempPath("edges.txt");
  ASSERT_TRUE(WriteEdgeList(g, path).ok());
  auto loaded = ReadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumVertices(), 4u);
  EXPECT_EQ(loaded->NumEdges(), 3u);
  EXPECT_EQ(loaded->Edges(), g.Edges());
}

TEST_F(GraphIoTest, ReadSkipsCommentsAndDuplicates) {
  const std::string path = TempPath("dirty.txt");
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("# comment\n% other comment\n0 1\n0 1\n1 1\n1 2\n", f);
  std::fclose(f);
  auto loaded = ReadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumEdges(), 2u);  // dup and self-loop dropped
}

TEST_F(GraphIoTest, ReadMissingFileFails) {
  auto loaded = ReadEdgeList("/nonexistent/sobc/file.txt");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST_F(GraphIoTest, StreamRoundTrip) {
  EdgeStream s = {{0, 1, EdgeOp::kAdd, 1.5}, {4, 2, EdgeOp::kRemove, 2.25}};
  const std::string path = TempPath("stream.txt");
  ASSERT_TRUE(WriteEdgeStream(s, path).ok());
  auto loaded = ReadEdgeStream(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, s);
}

}  // namespace
}  // namespace sobc
