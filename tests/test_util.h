#ifndef SOBC_TESTS_TEST_UTIL_H_
#define SOBC_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bc/bc_types.h"
#include "common/rng.h"
#include "graph/graph.h"

namespace sobc {
namespace testutil {

/// Reference betweenness computed from all-pairs BFS data, independent of
/// Brandes' dependency accumulation: a pair (s, t) contributes
/// sigma(s,v)*sigma(v,t)/sigma(s,t) to v whenever d(s,v)+d(v,t)=d(s,t),
/// and analogously for edges. O(n^2 + nm) time, O(n^2) space — test-only.
inline BcScores NaiveBc(const Graph& g) {
  const std::size_t n = g.NumVertices();
  std::vector<std::vector<Distance>> dist(n);
  std::vector<std::vector<PathCount>> sig(n);
  for (VertexId s = 0; s < n; ++s) {
    auto& d = dist[s];
    auto& sigma = sig[s];
    d.assign(n, kUnreachable);
    sigma.assign(n, 0);
    d[s] = 0;
    sigma[s] = 1;
    std::vector<VertexId> queue = {s};
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const VertexId v = queue[head];
      for (VertexId w : g.OutNeighbors(v)) {
        if (d[w] == kUnreachable) {
          d[w] = d[v] + 1;
          queue.push_back(w);
        }
        if (d[w] == d[v] + 1) sigma[w] += sigma[v];
      }
    }
  }
  // For directed graphs d/sigma are from-source only; the pair loop below
  // only ever combines d(s,.) and (via dist[v]) d(v,t), both out-directed,
  // which is exactly what the definition needs.
  BcScores scores;
  scores.vbc.assign(n, 0.0);
  for (VertexId s = 0; s < n; ++s) {
    for (VertexId t = 0; t < n; ++t) {
      if (s == t || dist[s][t] == kUnreachable) continue;
      const double st = static_cast<double>(sig[s][t]);
      for (VertexId v = 0; v < n; ++v) {
        if (v == s || v == t) continue;
        if (dist[s][v] == kUnreachable || dist[v][t] == kUnreachable) continue;
        if (dist[s][v] + dist[v][t] == dist[s][t]) {
          scores.vbc[v] += static_cast<double>(sig[s][v]) *
                           static_cast<double>(sig[v][t]) / st;
        }
      }
      g.ForEachEdge([&](VertexId u, VertexId v) {
        // Contribution of edge (u, v); for undirected graphs test both
        // orientations of the canonical edge.
        auto edge_on_path = [&](VertexId a, VertexId b) -> double {
          if (dist[s][a] == kUnreachable || dist[b][t] == kUnreachable) {
            return 0.0;
          }
          if (dist[s][a] + 1 + dist[b][t] != dist[s][t]) return 0.0;
          return static_cast<double>(sig[s][a]) *
                 static_cast<double>(sig[b][t]) / st;
        };
        double c = edge_on_path(u, v);
        if (!g.directed()) c += edge_on_path(v, u);
        if (c != 0.0) scores.ebc[g.MakeKey(u, v)] += c;
      });
    }
  }
  return scores;
}

/// Asserts two score sets agree within tolerance. Edge maps must cover the
/// same non-negligible entries.
inline void ExpectScoresNear(const BcScores& expected, const BcScores& actual,
                             double tol, const std::string& label) {
  ASSERT_EQ(expected.vbc.size(), actual.vbc.size()) << label;
  for (std::size_t v = 0; v < expected.vbc.size(); ++v) {
    EXPECT_NEAR(expected.vbc[v], actual.vbc[v],
                tol * (1.0 + std::abs(expected.vbc[v])))
        << label << " vbc mismatch at vertex " << v;
  }
  for (const auto& [key, value] : expected.ebc) {
    const auto it = actual.ebc.find(key);
    const double got = it == actual.ebc.end() ? 0.0 : it->second;
    EXPECT_NEAR(value, got, tol * (1.0 + std::abs(value)))
        << label << " ebc mismatch at edge (" << key.u << "," << key.v << ")";
  }
  for (const auto& [key, value] : actual.ebc) {
    if (expected.ebc.find(key) == expected.ebc.end()) {
      EXPECT_NEAR(value, 0.0, tol)
          << label << " spurious ebc at edge (" << key.u << "," << key.v
          << ")";
    }
  }
}

/// Erdős–Rényi G(n, m)-style random graph (exactly `m` distinct edges when
/// possible), connected-ish but not necessarily connected — the algorithms
/// must handle disconnection anyway.
inline Graph RandomGraph(std::size_t n, std::size_t m, Rng* rng,
                         bool directed = false) {
  Graph g(directed);
  g.EnsureVertex(static_cast<VertexId>(n - 1));
  std::size_t attempts = 0;
  while (g.NumEdges() < m && attempts < 50 * m) {
    ++attempts;
    const auto u = static_cast<VertexId>(rng->Uniform(n));
    const auto v = static_cast<VertexId>(rng->Uniform(n));
    if (u == v) continue;
    (void)g.AddEdge(u, v);
  }
  return g;
}

/// Random spanning tree plus `extra` chords: always connected, so removal
/// tests start from one component.
inline Graph RandomConnectedGraph(std::size_t n, std::size_t extra, Rng* rng) {
  Graph g;
  g.EnsureVertex(static_cast<VertexId>(n - 1));
  for (VertexId v = 1; v < n; ++v) {
    const auto parent = static_cast<VertexId>(rng->Uniform(v));
    (void)g.AddEdge(parent, v);
  }
  std::size_t added = 0;
  std::size_t attempts = 0;
  while (added < extra && attempts < 50 * (extra + 1)) {
    ++attempts;
    const auto u = static_cast<VertexId>(rng->Uniform(n));
    const auto v = static_cast<VertexId>(rng->Uniform(n));
    if (u == v) continue;
    if (g.AddEdge(u, v).ok()) ++added;
  }
  return g;
}

}  // namespace testutil
}  // namespace sobc

#endif  // SOBC_TESTS_TEST_UTIL_H_
