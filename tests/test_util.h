#ifndef SOBC_TESTS_TEST_UTIL_H_
#define SOBC_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bc/bc_types.h"
#include "common/rng.h"
#include "graph/graph.h"
#include "tests/testlib/scenarios.h"

namespace sobc {
namespace testutil {

// The seeded generators live in tests/testlib/ (shared scenario profiles);
// re-exported here so the existing suites keep their testutil:: spelling.
using testlib::RandomConnectedGraph;
using testlib::RandomGraph;

/// Reference betweenness computed from all-pairs BFS data, independent of
/// Brandes' dependency accumulation: a pair (s, t) contributes
/// sigma(s,v)*sigma(v,t)/sigma(s,t) to v whenever d(s,v)+d(v,t)=d(s,t),
/// and analogously for edges. O(n^2 + nm) time, O(n^2) space — test-only.
inline BcScores NaiveBc(const Graph& g) {
  const std::size_t n = g.NumVertices();
  std::vector<std::vector<Distance>> dist(n);
  std::vector<std::vector<PathCount>> sig(n);
  for (VertexId s = 0; s < n; ++s) {
    auto& d = dist[s];
    auto& sigma = sig[s];
    d.assign(n, kUnreachable);
    sigma.assign(n, 0);
    d[s] = 0;
    sigma[s] = 1;
    std::vector<VertexId> queue = {s};
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const VertexId v = queue[head];
      for (VertexId w : g.OutNeighbors(v)) {
        if (d[w] == kUnreachable) {
          d[w] = d[v] + 1;
          queue.push_back(w);
        }
        if (d[w] == d[v] + 1) sigma[w] += sigma[v];
      }
    }
  }
  // For directed graphs d/sigma are from-source only; the pair loop below
  // only ever combines d(s,.) and (via dist[v]) d(v,t), both out-directed,
  // which is exactly what the definition needs.
  BcScores scores;
  scores.vbc.assign(n, 0.0);
  for (VertexId s = 0; s < n; ++s) {
    for (VertexId t = 0; t < n; ++t) {
      if (s == t || dist[s][t] == kUnreachable) continue;
      const double st = static_cast<double>(sig[s][t]);
      for (VertexId v = 0; v < n; ++v) {
        if (v == s || v == t) continue;
        if (dist[s][v] == kUnreachable || dist[v][t] == kUnreachable) continue;
        if (dist[s][v] + dist[v][t] == dist[s][t]) {
          scores.vbc[v] += static_cast<double>(sig[s][v]) *
                           static_cast<double>(sig[v][t]) / st;
        }
      }
      g.ForEachEdge([&](VertexId u, VertexId v) {
        // Contribution of edge (u, v); for undirected graphs test both
        // orientations of the canonical edge.
        auto edge_on_path = [&](VertexId a, VertexId b) -> double {
          if (dist[s][a] == kUnreachable || dist[b][t] == kUnreachable) {
            return 0.0;
          }
          if (dist[s][a] + 1 + dist[b][t] != dist[s][t]) return 0.0;
          return static_cast<double>(sig[s][a]) *
                 static_cast<double>(sig[b][t]) / st;
        };
        double c = edge_on_path(u, v);
        if (!g.directed()) c += edge_on_path(v, u);
        if (c != 0.0) scores.ebc[g.MakeKey(u, v)] += c;
      });
    }
  }
  return scores;
}

/// Asserts two score sets agree within tolerance. Edge maps must cover the
/// same non-negligible entries.
inline void ExpectScoresNear(const BcScores& expected, const BcScores& actual,
                             double tol, const std::string& label) {
  ASSERT_EQ(expected.vbc.size(), actual.vbc.size()) << label;
  for (std::size_t v = 0; v < expected.vbc.size(); ++v) {
    EXPECT_NEAR(expected.vbc[v], actual.vbc[v],
                tol * (1.0 + std::abs(expected.vbc[v])))
        << label << " vbc mismatch at vertex " << v;
  }
  for (const auto& [key, value] : expected.ebc) {
    const auto it = actual.ebc.find(key);
    const double got = it == actual.ebc.end() ? 0.0 : it->second;
    EXPECT_NEAR(value, got, tol * (1.0 + std::abs(value)))
        << label << " ebc mismatch at edge (" << key.u << "," << key.v << ")";
  }
  for (const auto& [key, value] : actual.ebc) {
    if (expected.ebc.find(key) == expected.ebc.end()) {
      EXPECT_NEAR(value, 0.0, tol)
          << label << " spurious ebc at edge (" << key.u << "," << key.v
          << ")";
    }
  }
}

}  // namespace testutil
}  // namespace sobc

#endif  // SOBC_TESTS_TEST_UTIL_H_
