// Storage-layer hardening: span I/O bounds, partitioned disk stores
// addressed by global source ids, metadata survival across reopen, and
// concurrent handles on one file touching disjoint records (the access
// pattern of the parallel engine when mappers share a file).

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bc/bd_store_disk.h"
#include "storage/columnar_file.h"

namespace sobc {
namespace {

class ColumnarHardeningTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& p : paths_) std::remove(p.c_str());
  }
  std::string TempPath(const std::string& name) {
    std::string p = ::testing::TempDir() + "/sobc_chard_" + name;
    paths_.push_back(p);
    return p;
  }
  std::vector<std::string> paths_;
};

TEST_F(ColumnarHardeningTest, SpanIoRoundTripAndBounds) {
  ColumnarLayout layout;
  layout.column_widths = {2, 8};
  layout.entries_per_record = 8;  // record stride = 8*2 + 8*8 = 80 bytes
  layout.num_records = 3;
  auto file = ColumnarFile::Create(TempPath("span.bin"), layout);
  ASSERT_TRUE(file.ok());
  const char payload[16] = "fifteen-bytes!!";
  ASSERT_TRUE((*file)->WriteSpan(1, 10, sizeof(payload), payload).ok());
  char back[16] = {};
  ASSERT_TRUE((*file)->ReadSpan(1, 10, sizeof(back), back).ok());
  EXPECT_EQ(std::string(back, 15), std::string(payload, 15));
  // Spans must stay inside one record.
  char buf[96] = {};
  EXPECT_EQ((*file)->ReadSpan(1, 70, 20, buf).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ((*file)->WriteSpan(3, 0, 4, buf).code(),
            StatusCode::kOutOfRange);
}

TEST_F(ColumnarHardeningTest, SpanWriteVisibleThroughColumnRead) {
  ColumnarLayout layout;
  layout.column_widths = {2};
  layout.entries_per_record = 4;
  layout.num_records = 1;
  auto file = ColumnarFile::Create(TempPath("mix.bin"), layout);
  ASSERT_TRUE(file.ok());
  const std::uint16_t values[4] = {10, 20, 30, 40};
  ASSERT_TRUE((*file)->WriteSpan(0, 0, sizeof(values), values).ok());
  std::uint16_t one = 0;
  ASSERT_TRUE((*file)->Read(0, 0, 2, 1, &one).ok());
  EXPECT_EQ(one, 30);
}

TEST_F(ColumnarHardeningTest, PartitionedStoreUsesGlobalIds) {
  // A store holding sources [4, 8) of a 10-vertex graph.
  auto store = DiskBdStore::Create(TempPath("part.bin"), 10, 0, 4, 8);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->source_begin(), 4u);
  EXPECT_EQ((*store)->source_end(), 8u);
  EXPECT_EQ((*store)->num_sources(), 4u);
  SourceView view;
  ASSERT_TRUE((*store)->View(5, &view).ok());
  EXPECT_EQ(view.d[5], 0u);  // self entry of source 5
  EXPECT_EQ(view.sigma[5], 1u);
  EXPECT_FALSE((*store)->View(3, &view).ok());
  EXPECT_FALSE((*store)->View(8, &view).ok());
  // Patches address vertices globally too.
  ASSERT_TRUE(
      (*store)->Apply(6, {BdPatch{9, 2, 5, 1.5}}, PredPatchList{}).ok());
  ASSERT_TRUE((*store)->View(6, &view).ok());
  EXPECT_EQ(view.d[9], 2u);
  EXPECT_EQ(view.sigma[9], 5u);
}

TEST_F(ColumnarHardeningTest, PartitionMetadataSurvivesReopen) {
  const std::string path = TempPath("meta.bin");
  {
    auto store = DiskBdStore::Create(path, 12, 0, 3, 9);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(
        (*store)->Apply(4, {BdPatch{0, 7, 3, 0.5}}, PredPatchList{}).ok());
  }
  auto reopened = DiskBdStore::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->num_vertices(), 12u);
  EXPECT_EQ((*reopened)->source_begin(), 3u);
  EXPECT_EQ((*reopened)->source_end(), 9u);
  SourceView view;
  ASSERT_TRUE((*reopened)->View(4, &view).ok());
  EXPECT_EQ(view.d[0], 7u);
}

TEST_F(ColumnarHardeningTest, ConcurrentHandlesOnDisjointRecords) {
  // Each thread opens its own handle and hammers its own record; this is
  // the invariant the parallel engine relies on when mappers share a file.
  const std::string path = TempPath("conc.bin");
  constexpr std::size_t kVertices = 64;
  constexpr int kThreads = 4;
  constexpr int kRounds = 200;
  {
    auto store = DiskBdStore::Create(path, kVertices);
    ASSERT_TRUE(store.ok());
  }
  std::vector<std::thread> threads;
  std::vector<Status> results(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto handle = DiskBdStore::Open(path);
      if (!handle.ok()) {
        results[t] = handle.status();
        return;
      }
      const auto s = static_cast<VertexId>(t * 7 + 1);
      for (int round = 0; round < kRounds && results[t].ok(); ++round) {
        const auto value = static_cast<PathCount>(round + 1);
        results[t] = (*handle)->Apply(
            s, {BdPatch{static_cast<VertexId>(t), 1, value, 0.0}},
            PredPatchList{});
        if (!results[t].ok()) break;
        SourceView view;
        results[t] = (*handle)->View(s, &view);
        if (results[t].ok() &&
            view.sigma[static_cast<VertexId>(t)] != value) {
          results[t] = Status::Internal("lost write");
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(results[t].ok()) << "thread " << t << ": "
                                 << results[t].ToString();
  }
  // All four records hold their final values.
  auto verify = DiskBdStore::Open(path);
  ASSERT_TRUE(verify.ok());
  for (int t = 0; t < kThreads; ++t) {
    SourceView view;
    ASSERT_TRUE(
        (*verify)->View(static_cast<VertexId>(t * 7 + 1), &view).ok());
    EXPECT_EQ(view.sigma[static_cast<VertexId>(t)],
              static_cast<PathCount>(kRounds));
  }
}

TEST_F(ColumnarHardeningTest, DistanceEncodingLimits) {
  auto store = DiskBdStore::Create(TempPath("enc.bin"), 4);
  ASSERT_TRUE(store.ok());
  // 65534 is the largest representable distance (encoded +1 in 16 bits).
  ASSERT_TRUE((*store)
                  ->Apply(0, {BdPatch{1, 65534, 1, 0.0}}, PredPatchList{})
                  .ok());
  SourceView view;
  ASSERT_TRUE((*store)->View(0, &view).ok());
  EXPECT_EQ(view.d[1], 65534u);
  EXPECT_EQ((*store)
                ->Apply(0, {BdPatch{1, 65535, 1, 0.0}}, PredPatchList{})
                .code(),
            StatusCode::kOutOfRange);
  // The unreachable sentinel round-trips.
  ASSERT_TRUE(
      (*store)
          ->Apply(0, {BdPatch{2, kUnreachable, 0, 0.0}}, PredPatchList{})
          .ok());
  ASSERT_TRUE((*store)->View(0, &view).ok());
  EXPECT_EQ(view.d[2], kUnreachable);
}

}  // namespace
}  // namespace sobc
