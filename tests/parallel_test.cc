#include "parallel/mapreduce.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <cmath>
#include <numeric>
#include <string>

#include "bc/brandes.h"
#include "bc/dynamic_bc.h"
#include "common/rng.h"
#include "gen/stream_generators.h"
#include "graph/graph.h"
#include "parallel/online_scheduler.h"
#include "parallel/thread_pool.h"
#include "test_util.h"

namespace sobc {
namespace {

using testutil::ExpectScoresNear;
using testutil::RandomConnectedGraph;

constexpr double kTol = 1e-7;

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ParallelForCoversIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  ParallelFor(&pool, 100, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(PartitionedStoreTest, EnforcesRange) {
  InMemoryBdStore store(PredMode::kScanNeighbors, 5, 10);
  SourceBcData data;
  data.Resize(20);
  data.d[7] = 0;
  data.sigma[7] = 1;
  ASSERT_TRUE(store.PutInitial(7, std::move(data)).ok());
  EXPECT_EQ(store.source_begin(), 5u);
  EXPECT_EQ(store.source_end(), 10u);
  SourceView view;
  EXPECT_TRUE(store.View(7, &view).ok());
  EXPECT_FALSE(store.View(3, &view).ok());
  EXPECT_FALSE(store.View(12, &view).ok());
  SourceBcData other;
  other.Resize(20);
  EXPECT_EQ(store.PutInitial(11, std::move(other)).code(),
            StatusCode::kOutOfRange);
}

TEST(PartitionedStoreTest, OpenEndedPartitionAdoptsNewSources) {
  InMemoryBdStore store(PredMode::kScanNeighbors, 2, kInvalidVertex);
  SourceBcData data;
  data.Resize(4);
  data.d[2] = 0;
  data.sigma[2] = 1;
  ASSERT_TRUE(store.PutInitial(2, std::move(data)).ok());
  SourceBcData data3;
  data3.Resize(4);
  ASSERT_TRUE(store.PutInitial(3, std::move(data3)).ok());
  ASSERT_TRUE(store.Grow(6).ok());
  EXPECT_EQ(store.source_end(), 6u);
  SourceView view;
  ASSERT_TRUE(store.View(5, &view).ok());
  EXPECT_EQ(view.d[5], 0u);
  EXPECT_EQ(view.sigma[5], 1u);
}

TEST(TimingTest, CumulativeAndWall) {
  ParallelUpdateTiming timing;
  timing.mapper_seconds = {0.5, 2.0, 1.0};
  timing.merge_seconds = 0.25;
  EXPECT_DOUBLE_EQ(timing.CumulativeSeconds(), 3.75);
  EXPECT_DOUBLE_EQ(timing.ModeledWallSeconds(), 2.25);
}

struct ParallelCase {
  int mappers;
  BcVariant variant;
  const char* name;
};

class ParallelEquivalenceTest : public ::testing::TestWithParam<ParallelCase> {
};

TEST_P(ParallelEquivalenceTest, MatchesSequentialFramework) {
  const ParallelCase& param = GetParam();
  Rng rng(314);
  Graph g = RandomConnectedGraph(30, 40, &rng);
  EdgeStream stream = MixedUpdateStream(g, 15, 0.4, &rng);

  ParallelBcOptions options;
  options.num_mappers = param.mappers;
  options.variant = param.variant;
  options.num_threads = 2;
  if (param.variant == BcVariant::kOutOfCore) {
    options.storage_dir = ::testing::TempDir();
  }
  auto parallel = ParallelDynamicBc::Create(g, options);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  auto sequential = DynamicBc::Create(g, DynamicBcOptions{});
  ASSERT_TRUE(sequential.ok());

  ExpectScoresNear((*sequential)->scores(), (*parallel)->scores(), kTol,
                   std::string(param.name) + " after init");
  for (const EdgeUpdate& update : stream) {
    ParallelUpdateTiming timing;
    ASSERT_TRUE((*parallel)->Apply(update, &timing).ok());
    ASSERT_TRUE((*sequential)->Apply(update).ok());
    EXPECT_EQ(timing.mapper_seconds.size(),
              static_cast<std::size_t>(param.mappers));
  }
  ExpectScoresNear((*sequential)->scores(), (*parallel)->scores(), kTol,
                   std::string(param.name) + " after stream");
  const UpdateStats stats = (*parallel)->last_update_stats();
  EXPECT_EQ(stats.sources_total, (*parallel)->graph().NumVertices());
}

INSTANTIATE_TEST_SUITE_P(
    Partitions, ParallelEquivalenceTest,
    ::testing::Values(ParallelCase{1, BcVariant::kMemory, "p1"},
                      ParallelCase{3, BcVariant::kMemory, "p3"},
                      ParallelCase{8, BcVariant::kMemory, "p8"},
                      ParallelCase{64, BcVariant::kMemory, "p64_more_than_n"},
                      ParallelCase{4, BcVariant::kOutOfCore, "p4_disk"}),
    [](const ::testing::TestParamInfo<ParallelCase>& info) {
      return std::string(info.param.name);
    });

TEST(ParallelDynamicBcTest, NewVertexGrowsAllPartitions) {
  Rng rng(7);
  Graph g = RandomConnectedGraph(12, 8, &rng);
  ParallelBcOptions options;
  options.num_mappers = 3;
  options.num_threads = 2;
  auto parallel = ParallelDynamicBc::Create(g, options);
  ASSERT_TRUE(parallel.ok());
  ASSERT_TRUE((*parallel)->Apply({2, 15, EdgeOp::kAdd}).ok());
  EXPECT_EQ((*parallel)->graph().NumVertices(), 16u);
  BcScores expected = ComputeBrandes((*parallel)->graph());
  ExpectScoresNear(expected, (*parallel)->scores(), kTol, "growth");
}

TEST(ParallelDynamicBcTest, RejectsBadOptions) {
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ParallelBcOptions options;
  options.num_mappers = 0;
  EXPECT_FALSE(ParallelDynamicBc::Create(g, options).ok());
  options.num_mappers = 2;
  options.variant = BcVariant::kOutOfCore;  // no storage_dir
  EXPECT_FALSE(ParallelDynamicBc::Create(g, options).ok());
}

// ---------------------------------------------------------------------------
// Online scheduler
// ---------------------------------------------------------------------------

TEST(OnlineSchedulerTest, NoMissesWhenFast) {
  const std::vector<double> arrivals = {0.0, 10.0, 20.0, 30.0};
  const std::vector<double> processing = {1.0, 1.0, 1.0, 1.0};
  const OnlineReplayResult r = SimulateQueue(arrivals, processing);
  EXPECT_EQ(r.total_updates, 4u);
  EXPECT_EQ(r.deadline_updates, 3u);
  EXPECT_EQ(r.missed, 0u);
  EXPECT_DOUBLE_EQ(r.missed_fraction, 0.0);
}

TEST(OnlineSchedulerTest, SlowProcessingMissesDeadlines) {
  const std::vector<double> arrivals = {0.0, 1.0, 2.0};
  const std::vector<double> processing = {5.0, 5.0, 5.0};
  const OnlineReplayResult r = SimulateQueue(arrivals, processing);
  EXPECT_EQ(r.missed, 2u);
  EXPECT_DOUBLE_EQ(r.missed_fraction, 1.0);
  // First update finishes at 5 (deadline 1, late 4); second starts at 5,
  // finishes at 10 (deadline 2, late 8): average 6.
  EXPECT_DOUBLE_EQ(r.avg_delay_seconds, 6.0);
}

TEST(OnlineSchedulerTest, QueueBacklogPropagates) {
  const std::vector<double> arrivals = {0.0, 1.0, 100.0};
  const std::vector<double> processing = {3.0, 0.5, 0.5};
  const OnlineReplayResult r = SimulateQueue(arrivals, processing);
  // Update 0 misses (finish 3 > 1). Update 1 waits until 3, finishes 3.5,
  // well before 100. Update 2 has no deadline.
  EXPECT_EQ(r.missed, 1u);
  EXPECT_DOUBLE_EQ(r.avg_delay_seconds, 2.0);
}

TEST(OnlineSchedulerTest, CapacityModelMath) {
  // tU = tS*n/p + tM
  EXPECT_DOUBLE_EQ(ModeledUpdateSeconds(0.01, 1000, 10, 0.5), 1.5);
  // p' > tS*n/(tI - tM): 0.01*1000/(2.5-0.5) = 5 -> need 6.
  EXPECT_EQ(RequiredMappers(0.01, 1000, 2.5, 0.5), 6);
  // Serial merge part alone exceeds the deadline.
  EXPECT_EQ(RequiredMappers(0.01, 1000, 0.4, 0.5), 0);
}

TEST(OnlineSchedulerTest, MoreMappersReduceModeledUpdateTime) {
  const double t1 = ModeledUpdateSeconds(0.002, 5000, 1, 0.01);
  const double t10 = ModeledUpdateSeconds(0.002, 5000, 10, 0.01);
  const double t100 = ModeledUpdateSeconds(0.002, 5000, 100, 0.01);
  EXPECT_GT(t1, t10);
  EXPECT_GT(t10, t100);
}

TEST(OnlineSchedulerTest, ReplayOnlineEndToEnd) {
  Rng rng(55);
  Graph g = RandomConnectedGraph(25, 20, &rng);
  EdgeStream stream = RandomAdditionStream(g, 8, &rng);
  StampArrivalTimes(&stream, {std::log(10.0), 0.5}, 0.0, &rng);

  ParallelBcOptions options;
  options.num_mappers = 2;
  options.num_threads = 2;
  auto bc = ParallelDynamicBc::Create(g, options);
  ASSERT_TRUE(bc.ok());
  auto result = ReplayOnline(bc->get(), stream);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->total_updates, stream.size());
  EXPECT_EQ(result->update_seconds.size(), stream.size());
  EXPECT_EQ(result->inter_arrival_seconds.size(), stream.size() - 1);
  // Tiny graph, 10-second gaps: nothing should be late.
  EXPECT_EQ(result->missed, 0u);
}

TEST(OnlineSchedulerTest, ReplayRejectsUnsortedTimestamps) {
  Rng rng(56);
  Graph g = RandomConnectedGraph(10, 5, &rng);
  EdgeStream stream = RandomAdditionStream(g, 2, &rng);
  ASSERT_EQ(stream.size(), 2u);
  stream[0].timestamp = 5.0;
  stream[1].timestamp = 1.0;
  ParallelBcOptions options;
  options.num_mappers = 1;
  options.num_threads = 1;
  auto bc = ParallelDynamicBc::Create(g, options);
  ASSERT_TRUE(bc.ok());
  EXPECT_FALSE(ReplayOnline(bc->get(), stream).ok());
}

}  // namespace
}  // namespace sobc
