#include "storage/checkpoint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "common/rng.h"
#include "tests/test_util.h"

namespace sobc {
namespace {

namespace fs = std::filesystem;

using testutil::RandomConnectedGraph;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/sobc_ckpt_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static CheckpointWriter::Job MakeJob(std::uint64_t epoch, Rng* rng) {
    CheckpointWriter::Job job;
    job.epoch = epoch;
    job.stream_position = epoch * 10;
    job.graph = RandomConnectedGraph(20 + epoch, 10, rng);
    job.scores.vbc.assign(job.graph.NumVertices(),
                          static_cast<double>(epoch) + 0.5);
    job.scores.ebc[job.graph.Edges().front()] = 1.25 * epoch;
    job.variant = "mo";
    return job;
  }

  std::string dir_;
};

TEST_F(CheckpointTest, ManifestRoundTripsAllFields) {
  CheckpointManifest manifest;
  manifest.epoch = 42;
  manifest.stream_position = 1234;
  manifest.directed = true;
  manifest.num_vertices = 77;
  manifest.variant = "do";
  manifest.graph_file = "graph-42.txt";
  manifest.scores_file = "scores-42.bin";
  manifest.store_file = "bd-42.bin";
  manifest.store_codec = "delta";
  manifest.graph_crc = 0xDEADBEEF;
  manifest.scores_crc = 0x0BADF00D;
  manifest.store_crc = 0x12345678;
  ASSERT_TRUE(WriteManifest(dir_, manifest).ok());

  auto read = ReadManifest(dir_ + "/" + ManifestName(42));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->epoch, 42u);
  EXPECT_EQ(read->stream_position, 1234u);
  EXPECT_TRUE(read->directed);
  EXPECT_EQ(read->num_vertices, 77u);
  EXPECT_EQ(read->variant, "do");
  EXPECT_EQ(read->graph_file, "graph-42.txt");
  EXPECT_EQ(read->scores_file, "scores-42.bin");
  EXPECT_EQ(read->store_file, "bd-42.bin");
  EXPECT_EQ(read->store_codec, "delta");
  EXPECT_EQ(read->graph_crc, 0xDEADBEEFu);
  EXPECT_EQ(read->scores_crc, 0x0BADF00Du);
  EXPECT_EQ(read->store_crc, 0x12345678u);

  // CURRENT points at it.
  std::ifstream current(dir_ + "/CURRENT");
  std::string name;
  ASSERT_TRUE(std::getline(current, name));
  EXPECT_EQ(name, ManifestName(42));
}

TEST_F(CheckpointTest, CorruptedManifestIsRejected) {
  CheckpointManifest manifest;
  manifest.epoch = 7;
  manifest.num_vertices = 3;
  manifest.graph_file = "g";
  manifest.scores_file = "s";
  ASSERT_TRUE(WriteManifest(dir_, manifest).ok());
  const std::string path = dir_ + "/" + ManifestName(7);
  {
    std::fstream f(path, std::ios::in | std::ios::out);
    f.seekp(10);
    f.put('Z');
  }
  auto read = ReadManifest(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
}

TEST_F(CheckpointTest, WriteNowCommitsLoadableState) {
  Rng rng(3);
  CheckpointWriter writer(dir_, "", 2);
  CheckpointWriter::Job job = MakeJob(5, &rng);
  const Graph graph_copy = job.graph;
  const BcScores scores_copy = job.scores;
  ASSERT_TRUE(writer.WriteNow(std::move(job)).ok());
  EXPECT_EQ(writer.stats().written, 1u);
  EXPECT_EQ(writer.stats().last_epoch, 5u);

  auto loaded = LoadLatestCheckpoint(dir_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->manifest.epoch, 5u);
  EXPECT_EQ(loaded->manifest.stream_position, 50u);
  EXPECT_EQ(loaded->graph.NumVertices(), graph_copy.NumVertices());
  EXPECT_EQ(loaded->graph.NumEdges(), graph_copy.NumEdges());
  EXPECT_EQ(loaded->scores.vbc, scores_copy.vbc);
  EXPECT_TRUE(loaded->store_path.empty());
}

TEST_F(CheckpointTest, IsolatedTrailingVerticesSurviveTheRoundTrip) {
  Rng rng(9);
  CheckpointWriter writer(dir_, "", 2);
  CheckpointWriter::Job job = MakeJob(1, &rng);
  // Vertices beyond any edge: an edge list alone would drop them.
  job.graph.EnsureVertex(static_cast<VertexId>(job.graph.NumVertices() + 4));
  job.scores.vbc.assign(job.graph.NumVertices(), 0.25);
  const std::size_t n = job.graph.NumVertices();
  ASSERT_TRUE(writer.WriteNow(std::move(job)).ok());
  auto loaded = LoadLatestCheckpoint(dir_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->graph.NumVertices(), n);
  EXPECT_EQ(loaded->scores.vbc.size(), n);
}

TEST_F(CheckpointTest, FallsBackWhenNewestStateIsDamaged) {
  Rng rng(11);
  CheckpointWriter writer(dir_, "", 4);
  for (std::uint64_t e = 1; e <= 3; ++e) {
    ASSERT_TRUE(writer.WriteNow(MakeJob(e, &rng)).ok());
  }
  // Crash-shaped damage: the newest checkpoint's scores file is gone.
  ASSERT_TRUE(fs::remove(dir_ + "/scores-3.bin"));
  auto loaded = LoadLatestCheckpoint(dir_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->manifest.epoch, 2u);

  // CURRENT gone entirely: the manifest scan still finds epoch 2.
  ASSERT_TRUE(fs::remove(dir_ + "/CURRENT"));
  loaded = LoadLatestCheckpoint(dir_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->manifest.epoch, 2u);

  // A torn CURRENT pointing at garbage also falls back.
  {
    std::ofstream current(dir_ + "/CURRENT");
    current << "MANIFEST-999\n";
  }
  loaded = LoadLatestCheckpoint(dir_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->manifest.epoch, 2u);
}

TEST_F(CheckpointTest, SilentContentCorruptionFallsBackViaStateCrc) {
  Rng rng(13);
  CheckpointWriter writer(dir_, "", 4);
  for (std::uint64_t e = 1; e <= 2; ++e) {
    ASSERT_TRUE(writer.WriteNow(MakeJob(e, &rng)).ok());
  }
  // Flip one byte mid-file: sizes and structure stay plausible, so only
  // the whole-file CRC can catch it.
  {
    std::fstream f(dir_ + "/graph-2.adj",
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(40);
    char byte = 0;
    f.seekg(40);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    f.seekp(40);
    f.write(&byte, 1);
  }
  auto loaded = LoadLatestCheckpoint(dir_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->manifest.epoch, 1u);
}

TEST_F(CheckpointTest, CopyFileRefusesCopyingAFileOntoItself) {
  const std::string path = dir_ + "/self.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "precious bytes";
  }
  auto st = CopyFile(path, path);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  // The content must be untouched.
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "precious bytes");
}

TEST_F(CheckpointTest, RetentionPrunesOldCheckpointsAndTheirFiles) {
  Rng rng(17);
  CheckpointWriter writer(dir_, "", 2);
  for (std::uint64_t e = 1; e <= 4; ++e) {
    ASSERT_TRUE(writer.WriteNow(MakeJob(e, &rng)).ok());
  }
  EXPECT_FALSE(fs::exists(dir_ + "/" + ManifestName(1)));
  EXPECT_FALSE(fs::exists(dir_ + "/graph-1.adj"));
  EXPECT_FALSE(fs::exists(dir_ + "/scores-2.bin"));
  EXPECT_TRUE(fs::exists(dir_ + "/" + ManifestName(3)));
  EXPECT_TRUE(fs::exists(dir_ + "/" + ManifestName(4)));
  auto loaded = LoadLatestCheckpoint(dir_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->manifest.epoch, 4u);
}

TEST_F(CheckpointTest, EnqueueSkipsWhileBusyAndWaitIdleDrains) {
  Rng rng(23);
  CheckpointWriter writer(dir_, "", 3);
  ASSERT_TRUE(writer.Enqueue(MakeJob(1, &rng)));
  // Saturate: some of these must be skipped (one slot, no queue). Exact
  // counts depend on scheduling; the invariant is accepted + skipped == 8
  // and nothing is lost silently.
  std::size_t accepted = 1;
  for (std::uint64_t e = 2; e <= 8; ++e) {
    if (writer.Enqueue(MakeJob(e, &rng))) ++accepted;
  }
  ASSERT_TRUE(writer.WaitIdle().ok());
  const CheckpointStats stats = writer.stats();
  EXPECT_EQ(stats.written, accepted);
  EXPECT_EQ(stats.skipped, 8u - accepted);
  EXPECT_EQ(stats.failed, 0u);
  auto loaded = LoadLatestCheckpoint(dir_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_GE(loaded->manifest.epoch, 1u);
}

TEST_F(CheckpointTest, LoadFromEmptyDirIsNotFound) {
  auto loaded = LoadLatestCheckpoint(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
  auto missing = LoadLatestCheckpoint(dir_ + "/never");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST_F(CheckpointTest, CopyFileCopiesBytesExactly) {
  const std::string src = dir_ + "/src.bin";
  const std::string dst = dir_ + "/dst.bin";
  {
    std::ofstream out(src, std::ios::binary);
    for (int i = 0; i < 100000; ++i) out.put(static_cast<char>(i * 37));
  }
  ASSERT_TRUE(CopyFile(src, dst).ok());
  std::ifstream a(src, std::ios::binary), b(dst, std::ios::binary);
  std::string sa((std::istreambuf_iterator<char>(a)),
                 std::istreambuf_iterator<char>());
  std::string sb((std::istreambuf_iterator<char>(b)),
                 std::istreambuf_iterator<char>());
  EXPECT_EQ(sa, sb);
  EXPECT_FALSE(CopyFile(dir_ + "/nope", dst).ok());
}

}  // namespace
}  // namespace sobc
