// The layered BD storage engine (codec x shared cache x prefetch), driven
// through the same scenarios under both record codecs:
//   * store semantics (initial state, put/view/apply/peek, reopen, grow)
//     must be codec-invariant;
//   * handles sharing one backing file must observe each other's writes
//     with no manual invalidation — the epoch protocol that replaced
//     BdStore::InvalidateCache;
//   * Grow must retire every decoded record across all handles (cache
//     generation), and grown sources must decode as isolated vertices;
//   * the prefetcher must populate the shared cache (Hint + Quiesce is
//     deterministic) and never affect results;
//   * the full DO framework must stay exact against from-scratch Brandes
//     across growth under either codec, serial and sharded.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bc/bd_store.h"
#include "bc/bd_store_disk.h"
#include "bc/brandes.h"
#include "bc/dynamic_bc.h"
#include "common/rng.h"
#include "gen/stream_generators.h"
#include "tests/test_util.h"

namespace sobc {
namespace {

using testutil::ExpectScoresNear;
using testutil::RandomConnectedGraph;

class StorageEngineTest : public ::testing::TestWithParam<RecordCodecId> {
 protected:
  void TearDown() override {
    for (const auto& p : paths_) std::remove(p.c_str());
  }
  std::string TempPath(const std::string& name) {
    std::string p = ::testing::TempDir() + "/sobc_engine_" +
                    std::string(RecordCodecName(GetParam())) + "_" + name;
    paths_.push_back(p);
    std::remove(p.c_str());
    return p;
  }
  DiskBdStoreOptions Options(std::size_t cache_bytes = 1 << 20,
                             bool prefetch = false) const {
    DiskBdStoreOptions options;
    options.codec = GetParam();
    options.cache_bytes = cache_bytes;
    options.prefetch = prefetch;
    return options;
  }
  std::vector<std::string> paths_;
};

TEST_P(StorageEngineTest, InitialStateIsIsolatedVertices) {
  auto store = DiskBdStore::Create(TempPath("init.bin"), 5, 0, 0,
                                   kInvalidVertex, Options());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->codec(), GetParam());
  for (VertexId s = 0; s < 5; ++s) {
    SourceView view;
    ASSERT_TRUE((*store)->View(s, &view).ok());
    ASSERT_EQ(view.n, 5u);
    for (VertexId v = 0; v < 5; ++v) {
      if (v == s) {
        EXPECT_EQ(view.d[v], 0u);
        EXPECT_EQ(view.sigma[v], 1u);
      } else {
        EXPECT_EQ(view.d[v], kUnreachable);
        EXPECT_EQ(view.sigma[v], 0u);
      }
      EXPECT_DOUBLE_EQ(view.delta[v], 0.0);
    }
  }
}

TEST_P(StorageEngineTest, PutViewApplyPeekRoundTrip) {
  auto store =
      DiskBdStore::Create(TempPath("rw.bin"), 4, 0, 0, kInvalidVertex,
                          Options());
  ASSERT_TRUE(store.ok());
  SourceBcData data;
  data.Resize(4);
  data.d = {0, 1, 2, kUnreachable};
  data.sigma = {1, 2, 3, 0};
  data.delta = {0.5, 1.5, 0.0, 0.0};
  ASSERT_TRUE((*store)->PutInitial(0, std::move(data)).ok());

  Distance da = 0;
  Distance db = 0;
  ASSERT_TRUE((*store)->PeekDistances(0, 2, 3, &da, &db).ok());
  EXPECT_EQ(da, 2u);
  EXPECT_EQ(db, kUnreachable);

  SourceView view;
  ASSERT_TRUE((*store)->View(0, &view).ok());
  EXPECT_EQ(view.sigma[2], 3u);
  EXPECT_DOUBLE_EQ(view.delta[1], 1.5);

  ASSERT_TRUE(
      (*store)->Apply(0, {BdPatch{1, 5, 9, 2.25}}, PredPatchList{}).ok());
  ASSERT_TRUE((*store)->View(0, &view).ok());
  EXPECT_EQ(view.d[1], 5u);
  EXPECT_EQ(view.sigma[1], 9u);
  EXPECT_DOUBLE_EQ(view.delta[1], 2.25);
  // Peek after apply sees the patched distance too (cache-served).
  ASSERT_TRUE((*store)->PeekDistances(0, 1, 2, &da, &db).ok());
  EXPECT_EQ(da, 5u);
}

TEST_P(StorageEngineTest, PersistsAcrossProcessStyleReopen) {
  const std::string path = TempPath("reopen.bin");
  {
    auto store =
        DiskBdStore::Create(path, 3, 0, 0, kInvalidVertex, Options());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(
        (*store)->Apply(1, {BdPatch{2, 4, 6, 1.0}}, PredPatchList{}).ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  // A fresh Open must pick the codec from the header, not from options.
  DiskBdStoreOptions open_options;
  open_options.codec = GetParam() == RecordCodecId::kRaw
                           ? RecordCodecId::kDelta
                           : RecordCodecId::kRaw;
  auto second = DiskBdStore::Open(path, open_options);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*second)->codec(), GetParam());
  EXPECT_EQ((*second)->num_vertices(), 3u);
  SourceView view;
  ASSERT_TRUE((*second)->View(1, &view).ok());
  EXPECT_EQ(view.d[2], 4u);
  EXPECT_EQ(view.sigma[2], 6u);
}

TEST_P(StorageEngineTest, SharedHandlesSeeWritesWithoutInvalidation) {
  // The regression for the deleted InvalidateCache protocol: handle B
  // caches a decode of source 1; handle A rewrites source 1; handle B's
  // next read must be fresh with no manual call in between.
  auto root = DiskBdStore::Create(TempPath("shared.bin"), 6, 0, 0,
                                  kInvalidVertex, Options());
  ASSERT_TRUE(root.ok());
  auto a = (*root)->OpenShared();
  auto b = (*root)->OpenShared();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  SourceView view;
  ASSERT_TRUE((*b)->View(1, &view).ok());
  EXPECT_EQ(view.d[3], kUnreachable);

  ASSERT_TRUE(
      (*a)->Apply(1, {BdPatch{3, 2, 7, 0.5}}, PredPatchList{}).ok());

  ASSERT_TRUE((*b)->View(1, &view).ok());
  EXPECT_EQ(view.d[3], 2u);
  EXPECT_EQ(view.sigma[3], 7u);
  Distance da = 0;
  Distance db = 0;
  ASSERT_TRUE((*root)->PeekDistances(1, 3, 0, &da, &db).ok());
  EXPECT_EQ(da, 2u);
}

TEST_P(StorageEngineTest, GrowKeepsRecordsAndIsolatesNewSources) {
  for (const bool beyond_capacity : {false, true}) {
    const std::string name =
        beyond_capacity ? "grow_rebuild.bin" : "grow_inplace.bin";
    auto store = DiskBdStore::Create(TempPath(name), 3,
                                     beyond_capacity ? 3 : 16, 0,
                                     kInvalidVertex, Options());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(
        (*store)->Apply(0, {BdPatch{1, 1, 7, 0.25}}, PredPatchList{}).ok());
    ASSERT_TRUE((*store)->Grow(6).ok());
    EXPECT_EQ((*store)->num_vertices(), 6u);
    EXPECT_GE((*store)->vertex_capacity(), 6u);
    SourceView view;
    ASSERT_TRUE((*store)->View(0, &view).ok());
    ASSERT_EQ(view.n, 6u);
    EXPECT_EQ(view.sigma[1], 7u);  // survived
    EXPECT_DOUBLE_EQ(view.delta[1], 0.25);
    EXPECT_EQ(view.d[5], kUnreachable);  // grown tail
    // Grown sources decode as isolated vertices under either codec.
    ASSERT_TRUE((*store)->View(5, &view).ok());
    EXPECT_EQ(view.d[5], 0u);
    EXPECT_EQ(view.sigma[5], 1u);
    EXPECT_EQ(view.d[0], kUnreachable);
  }
}

TEST_P(StorageEngineTest, GrowInvalidatesDecodedRecordsAcrossHandles) {
  auto root = DiskBdStore::Create(TempPath("grow_shared.bin"), 4, 16, 0,
                                  kInvalidVertex, Options());
  ASSERT_TRUE(root.ok());
  auto worker = (*root)->OpenShared();
  ASSERT_TRUE(worker.ok());
  SourceView view;
  ASSERT_TRUE((*worker)->View(2, &view).ok());  // cached at n=4
  EXPECT_EQ(view.n, 4u);

  ASSERT_TRUE((*root)->Grow(6).ok());
  // The worker handle missed the Grow: its reads must fail loudly instead
  // of decoding undersized records into the shared cache.
  SourceView stale;
  EXPECT_EQ((*worker)->View(2, &stale).code(),
            StatusCode::kFailedPrecondition);
  // And the old 4-entry decode must never be served for a 6-entry view.
  ASSERT_TRUE((*root)->View(2, &view).ok());
  ASSERT_EQ(view.n, 6u);
  EXPECT_EQ(view.d[2], 0u);
  EXPECT_EQ(view.d[5], kUnreachable);

  auto reopened = (*root)->OpenShared();
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->num_vertices(), 6u);
  ASSERT_TRUE((*reopened)->View(5, &view).ok());
  EXPECT_EQ(view.d[5], 0u);
  EXPECT_EQ(view.sigma[5], 1u);
}

TEST_P(StorageEngineTest, CacheEvictsUnderTinyBudgetAndStaysCorrect) {
  // Budget fits roughly two decoded records per cache shard (a 64-vertex
  // record decodes to ~1.3 KiB); correctness must not depend on residency.
  auto store = DiskBdStore::Create(TempPath("evict.bin"), 64, 0, 0,
                                   kInvalidVertex, Options(/*cache=*/48 << 10));
  ASSERT_TRUE(store.ok());
  for (VertexId s = 0; s < 64; ++s) {
    ASSERT_TRUE((*store)
                    ->Apply(s, {BdPatch{static_cast<VertexId>(63 - s), 3,
                                        s + 1, 0.125}},
                            PredPatchList{})
                    .ok());
  }
  for (VertexId s = 0; s < 64; ++s) {
    SourceView view;
    ASSERT_TRUE((*store)->View(s, &view).ok());
    EXPECT_EQ(view.d[63 - s], 3u);
    EXPECT_EQ(view.sigma[63 - s], s + 1u);
  }
  const RecordCache::Stats stats = (*store)->cache_stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, stats.capacity_bytes);
}

TEST_P(StorageEngineTest, ViewBatchPinsAllRecordsAtOnce) {
  auto store = DiskBdStore::Create(TempPath("batch.bin"), 8, 0, 0,
                                   kInvalidVertex, Options());
  ASSERT_TRUE(store.ok());
  for (VertexId s = 0; s < 8; ++s) {
    ASSERT_TRUE(
        (*store)
            ->Apply(s, {BdPatch{0, s + 1, 2, 0.5}}, PredPatchList{})
            .ok());
  }
  const std::vector<VertexId> sources = {6, 1, 3};
  std::vector<SourceView> views;
  ASSERT_TRUE((*store)->ViewBatch(sources, &views).ok());
  ASSERT_EQ(views.size(), 3u);
  // All three views are readable together — a single-buffer store would
  // have clobbered the earlier ones.
  EXPECT_EQ(views[0].d[0], 7u);
  EXPECT_EQ(views[1].d[0], 2u);
  EXPECT_EQ(views[2].d[0], 4u);
  EXPECT_EQ(views[0].d[6], 0u);
  EXPECT_EQ(views[1].sigma[1], 1u);
}

TEST_P(StorageEngineTest, HintPrefetchesIntoSharedCache) {
  auto store = DiskBdStore::Create(TempPath("prefetch.bin"), 32, 0, 0,
                                   kInvalidVertex,
                                   Options(1 << 20, /*prefetch=*/true));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->prefetch_enabled());
  std::vector<VertexId> sources;
  for (VertexId s = 0; s < 32; ++s) sources.push_back(s);
  (*store)->Hint(sources);
  // Wait for the background reader to drain the hinted batch (bounded).
  for (int round = 0; round < 5000; ++round) {
    const PrefetchStats stats = (*store)->prefetch_stats();
    if (stats.fetched + stats.already_cached + stats.failed >= 32) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const RecordCache::Stats before = (*store)->cache_stats();
  SourceView view;
  for (VertexId s = 0; s < 32; ++s) {
    ASSERT_TRUE((*store)->View(s, &view).ok());
    EXPECT_EQ(view.d[s], 0u);
  }
  const RecordCache::Stats after = (*store)->cache_stats();
  EXPECT_GT(after.hits, before.hits);  // prefetch (or pins) produced hits
  const PrefetchStats pf = (*store)->prefetch_stats();
  EXPECT_GT(pf.hinted, 0u);
  EXPECT_GT(pf.fetched + pf.already_cached, 0u);
}

TEST_P(StorageEngineTest, LongPathDistancesWidenOrReject) {
  // A 70000-vertex path graph's BD column for source 0: d[v] = v runs far
  // past the 16-bit ceiling. One source record is enough (partition
  // [0, 1)); Brandes over such a graph would take minutes, the storage
  // behavior is what's under test.
  const std::size_t n = 70000;
  auto store = DiskBdStore::Create(TempPath("longpath.bin"), n, 0, 0,
                                   /*source_limit=*/1, Options());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  SourceBcData data;
  data.Resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    data.d[v] = static_cast<Distance>(v);
    data.sigma[v] = 1;
    data.delta[v] = static_cast<double>(n - 1 - v);
  }
  const Status put = (*store)->PutInitial(0, std::move(data));
  if (GetParam() == RecordCodecId::kRaw) {
    // The raw codec must refuse loudly (the silent 16-bit wrap regression).
    EXPECT_EQ(put.code(), StatusCode::kOutOfRange) << put.ToString();
    // Patches past the ceiling are refused too.
    EXPECT_EQ((*store)
                  ->Apply(0, {BdPatch{1, 70000, 1, 0.0}}, PredPatchList{})
                  .code(),
              StatusCode::kOutOfRange);
  } else {
    ASSERT_TRUE(put.ok()) << put.ToString();
    SourceView view;
    ASSERT_TRUE((*store)->View(0, &view).ok());
    EXPECT_EQ(view.d[65535], 65535u);
    EXPECT_EQ(view.d[n - 1], static_cast<Distance>(n - 1));
    Distance da = 0;
    Distance db = 0;
    ASSERT_TRUE((*store)->PeekDistances(0, 65533, 69999, &da, &db).ok());
    EXPECT_EQ(da, 65533u);
    EXPECT_EQ(db, 69999u);
  }
}

// --- full-framework differential: DO x codec x growth x threads -----------

void RunGrowthDifferential(RecordCodecId codec, int threads, bool prefetch,
                           const std::string& tag) {
  Rng rng(515 + threads);
  Graph base = RandomConnectedGraph(30, 20, &rng);
  const std::size_t n0 = base.NumVertices();

  DynamicBcOptions options;
  options.variant = BcVariant::kOutOfCore;
  options.storage_path = ::testing::TempDir() + "/sobc_engine_diff_" + tag +
                         ".bd";
  std::remove(options.storage_path.c_str());
  options.store_codec = codec;
  options.cache_mb = 4;
  options.prefetch = prefetch;
  options.num_threads = threads;
  // Force growth through both regimes: a little slack, then far past it.
  options.vertex_capacity = n0 + 2;

  auto bc = DynamicBc::Create(base, options);
  ASSERT_TRUE(bc.ok()) << bc.status().ToString();

  // Mixed stream: churn on existing vertices plus arrivals that push the
  // vertex set past the reserved capacity (forcing a rebuild).
  EdgeStream stream = RandomAdditionStream(base, 6, &rng);
  for (std::size_t i = 0; i < 8; ++i) {
    const auto fresh = static_cast<VertexId>(n0 + i);
    const auto anchor = static_cast<VertexId>(rng.Uniform(n0));
    stream.push_back(EdgeUpdate{anchor, fresh, EdgeOp::kAdd, 0.0});
  }
  stream.push_back(EdgeUpdate{stream.back().u, stream.back().v,
                              EdgeOp::kRemove, 0.0});

  Graph replay = base;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE(ApplyToGraph(&replay, stream[i]).ok()) << tag << " " << i;
    ASSERT_TRUE((*bc)->Apply(stream[i]).ok()) << tag << " update " << i;
    const BcScores expected = ComputeBrandes(replay);
    ExpectScoresNear(expected, (*bc)->scores(), 1e-7,
                     tag + " update " + std::to_string(i));
  }
  std::remove(options.storage_path.c_str());
}

TEST_P(StorageEngineTest, DynamicBcExactAcrossGrowthSerial) {
  RunGrowthDifferential(GetParam(), 1, /*prefetch=*/true,
                        std::string("serial_") + RecordCodecName(GetParam()));
}

TEST_P(StorageEngineTest, DynamicBcExactAcrossGrowthSharded) {
  RunGrowthDifferential(GetParam(), 4, /*prefetch=*/true,
                        std::string("sharded_") + RecordCodecName(GetParam()));
}

TEST_P(StorageEngineTest, DynamicBcExactWithoutPrefetchOrCache) {
  Rng rng(99);
  Graph base = RandomConnectedGraph(24, 16, &rng);
  DynamicBcOptions options;
  options.variant = BcVariant::kOutOfCore;
  options.storage_path = ::testing::TempDir() + "/sobc_engine_nocache_" +
                         std::string(RecordCodecName(GetParam())) + ".bd";
  std::remove(options.storage_path.c_str());
  options.store_codec = GetParam();
  options.cache_mb = 0;  // every lookup misses; epochs alone keep coherence
  options.prefetch = false;
  auto bc = DynamicBc::Create(base, options);
  ASSERT_TRUE(bc.ok()) << bc.status().ToString();
  Graph replay = base;
  const EdgeStream stream = RandomAdditionStream(base, 8, &rng);
  for (const EdgeUpdate& update : stream) {
    ASSERT_TRUE(ApplyToGraph(&replay, update).ok());
    ASSERT_TRUE((*bc)->Apply(update).ok());
  }
  ExpectScoresNear(ComputeBrandes(replay), (*bc)->scores(), 1e-7,
                   "no-cache replay");
  std::remove(options.storage_path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Codecs, StorageEngineTest,
                         ::testing::Values(RecordCodecId::kRaw,
                                           RecordCodecId::kDelta),
                         [](const auto& info) {
                           return std::string(RecordCodecName(info.param));
                         });

}  // namespace
}  // namespace sobc
