#include "analysis/graph_stats.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/connected_components.h"
#include "analysis/girvan_newman.h"
#include "common/rng.h"
#include "gen/generators.h"
#include "graph/graph.h"

namespace sobc {
namespace {

Graph TwoTrianglesWithBridge() {
  Graph g;
  (void)g.AddEdge(0, 1);
  (void)g.AddEdge(0, 2);
  (void)g.AddEdge(1, 2);
  (void)g.AddEdge(3, 4);
  (void)g.AddEdge(3, 5);
  (void)g.AddEdge(4, 5);
  (void)g.AddEdge(2, 3);
  return g;
}

TEST(GraphStatsTest, AverageDegree) {
  Graph g;
  (void)g.AddEdge(0, 1);
  (void)g.AddEdge(1, 2);
  EXPECT_DOUBLE_EQ(AverageDegree(g), 4.0 / 3.0);
  Graph d(/*directed=*/true);
  (void)d.AddEdge(0, 1);
  (void)d.AddEdge(1, 2);
  EXPECT_DOUBLE_EQ(AverageDegree(d), 2.0 / 3.0);
}

TEST(GraphStatsTest, ClusteringOfTriangleIsOne) {
  Graph g;
  (void)g.AddEdge(0, 1);
  (void)g.AddEdge(1, 2);
  (void)g.AddEdge(0, 2);
  EXPECT_DOUBLE_EQ(AverageClustering(g), 1.0);
}

TEST(GraphStatsTest, ClusteringOfPathIsZero) {
  Graph g;
  (void)g.AddEdge(0, 1);
  (void)g.AddEdge(1, 2);
  (void)g.AddEdge(2, 3);
  EXPECT_DOUBLE_EQ(AverageClustering(g), 0.0);
}

TEST(GraphStatsTest, ClusteringHandComputed) {
  // Triangle 0-1-2 plus pendant 3 on vertex 2: c(0)=c(1)=1, c(2)=1/3,
  // c(3)=0 (degree 1) => mean 7/12.
  Graph g;
  (void)g.AddEdge(0, 1);
  (void)g.AddEdge(1, 2);
  (void)g.AddEdge(0, 2);
  (void)g.AddEdge(2, 3);
  EXPECT_NEAR(AverageClustering(g), 7.0 / 12.0, 1e-12);
}

TEST(GraphStatsTest, SampledClusteringApproximatesExact) {
  Rng rng(31);
  Graph g = GenerateWattsStrogatz(400, 4, 0.1, &rng);
  const double exact = AverageClustering(g);
  const double sampled = AverageClustering(g, &rng, 200);
  EXPECT_NEAR(sampled, exact, 0.1);
}

TEST(GraphStatsTest, EffectiveDiameterOfPath) {
  // P5 pairwise distance counts: d1:8, d2:6, d3:4, d4:2 (ordered pairs).
  // 90th percentile target 18 of 20 -> reached inside d=3's bucket:
  // 2 + (18-14)/4 = 3.
  Graph g;
  for (VertexId v = 0; v + 1 < 5; ++v) (void)g.AddEdge(v, v + 1);
  EXPECT_NEAR(EffectiveDiameter(g), 3.0, 1e-9);
}

TEST(GraphStatsTest, EffectiveDiameterOfClique) {
  Graph g;
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) (void)g.AddEdge(u, v);
  }
  // All pairs at distance 1: interpolation lands at 0.9.
  EXPECT_NEAR(EffectiveDiameter(g), 0.9, 1e-9);
}

TEST(GraphStatsTest, ComputeGraphStatsBundle) {
  Rng rng(32);
  Graph g = GenerateErdosRenyi(200, 600, &rng);
  const GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.vertices, 200u);
  EXPECT_EQ(stats.edges, 600u);
  EXPECT_DOUBLE_EQ(stats.average_degree, 6.0);
  EXPECT_GT(stats.effective_diameter, 1.0);
}

TEST(ComponentsTest, LabelsAndSizes) {
  Graph g;
  (void)g.AddEdge(0, 1);
  (void)g.AddEdge(1, 2);
  (void)g.AddEdge(3, 4);
  g.EnsureVertex(5);
  const auto labels = ComponentLabels(g);
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_NE(labels[3], labels[5]);
  const auto sizes = ComponentSizes(labels);
  std::vector<std::size_t> sorted = sizes;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::size_t>{1, 2, 3}));
  EXPECT_EQ(NumComponents(g), 3u);
}

TEST(ComponentsTest, DirectedUsesWeakConnectivity) {
  Graph g(/*directed=*/true);
  (void)g.AddEdge(0, 1);
  (void)g.AddEdge(2, 1);  // 0 -> 1 <- 2 : weakly one component
  EXPECT_EQ(NumComponents(g), 1u);
}

TEST(ComponentsTest, LargestComponentExtraction) {
  Graph g;
  (void)g.AddEdge(0, 1);
  (void)g.AddEdge(1, 2);
  (void)g.AddEdge(2, 3);
  (void)g.AddEdge(5, 6);
  std::vector<VertexId> ids;
  Graph lcc = LargestConnectedComponent(g, &ids);
  EXPECT_EQ(lcc.NumVertices(), 4u);
  EXPECT_EQ(lcc.NumEdges(), 3u);
  EXPECT_EQ(ids, (std::vector<VertexId>{0, 1, 2, 3}));
}

TEST(GirvanNewmanTest, BridgeRemovedFirst) {
  Graph g = TwoTrianglesWithBridge();
  GirvanNewmanOptions options;
  options.target_components = 2;
  auto result = GirvanNewmanIncremental(g, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->steps.size(), 1u);
  EXPECT_EQ(result->steps[0].removed, (EdgeKey{2, 3}));
  EXPECT_EQ(result->steps[0].num_components, 2u);
}

TEST(GirvanNewmanTest, RecomputeBaselineAgreesOnBridge) {
  Graph g = TwoTrianglesWithBridge();
  GirvanNewmanOptions options;
  options.target_components = 2;
  auto incremental = GirvanNewmanIncremental(g, options);
  auto recompute = GirvanNewmanRecompute(g, options);
  ASSERT_TRUE(incremental.ok());
  ASSERT_TRUE(recompute.ok());
  ASSERT_EQ(recompute->steps.size(), 1u);
  EXPECT_EQ(incremental->steps[0].removed, recompute->steps[0].removed);
  EXPECT_NEAR(incremental->steps[0].ebc, recompute->steps[0].ebc, 1e-9);
}

TEST(GirvanNewmanTest, FullDendrogramRemovesEverything) {
  Graph g = TwoTrianglesWithBridge();
  auto result = GirvanNewmanIncremental(g, GirvanNewmanOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->steps.size(), 7u);  // every edge removed
  EXPECT_EQ(result->FinalComponents(), 6u);
  EXPECT_GT(result->TotalSeconds(), 0.0);
}

TEST(GirvanNewmanTest, MaxRemovalsBudgetRespected) {
  Rng rng(44);
  Graph g = GenerateErdosRenyi(30, 80, &rng);
  GirvanNewmanOptions options;
  options.max_removals = 5;
  auto result = GirvanNewmanIncremental(g, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->steps.size(), 5u);
}

TEST(GirvanNewmanTest, MatchingRemovalSequencesOnAsymmetricGraph) {
  // A graph engineered so edge-betweenness values are distinct: a chain of
  // cliques of different sizes. Incremental and recompute drivers must
  // peel edges in the same order.
  Graph g;
  // K3 on {0,1,2}, bridge 2-3, K4 on {3,4,5,6}, bridge 6-7, path 7-8-9.
  (void)g.AddEdge(0, 1);
  (void)g.AddEdge(0, 2);
  (void)g.AddEdge(1, 2);
  (void)g.AddEdge(2, 3);
  for (VertexId u = 3; u <= 6; ++u) {
    for (VertexId v = u + 1; v <= 6; ++v) (void)g.AddEdge(u, v);
  }
  (void)g.AddEdge(6, 7);
  (void)g.AddEdge(7, 8);
  (void)g.AddEdge(8, 9);
  GirvanNewmanOptions options;
  options.max_removals = 4;
  auto incremental = GirvanNewmanIncremental(g, options);
  auto recompute = GirvanNewmanRecompute(g, options);
  ASSERT_TRUE(incremental.ok());
  ASSERT_TRUE(recompute.ok());
  ASSERT_EQ(incremental->steps.size(), recompute->steps.size());
  for (std::size_t i = 0; i < incremental->steps.size(); ++i) {
    EXPECT_EQ(incremental->steps[i].removed, recompute->steps[i].removed)
        << "diverged at step " << i;
  }
}

}  // namespace
}  // namespace sobc
