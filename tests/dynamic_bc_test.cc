// Framework-level API tests: persistence (checkpoint/resume), score files,
// the approximate estimator, and the top-k utilities.

#include "bc/dynamic_bc.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "analysis/top_k.h"
#include "bc/approx_brandes.h"
#include "bc/brandes.h"
#include "bc/score_io.h"
#include "common/rng.h"
#include "gen/social_generator.h"
#include "gen/stream_generators.h"
#include "graph/graph.h"
#include "graph/graph_io.h"
#include "test_util.h"

namespace sobc {
namespace {

using testutil::ExpectScoresNear;
using testutil::RandomConnectedGraph;

constexpr double kTol = 1e-7;

class PersistenceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& p : paths_) std::remove(p.c_str());
  }
  std::string TempPath(const std::string& name) {
    std::string p = ::testing::TempDir() + "/sobc_persist_" + name;
    paths_.push_back(p);
    return p;
  }
  std::vector<std::string> paths_;
};

TEST_F(PersistenceTest, ScoreFileRoundTrip) {
  Rng rng(71);
  Graph g = RandomConnectedGraph(20, 20, &rng);
  const BcScores original = ComputeBrandes(g);
  const std::string path = TempPath("scores.bin");
  ASSERT_TRUE(WriteScores(original, path).ok());
  auto loaded = ReadScores(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectScoresNear(original, *loaded, 0.0, "score file round trip");
}

TEST_F(PersistenceTest, ReadScoresRejectsGarbage) {
  const std::string path = TempPath("garbage.bin");
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("not a score file", f);
  std::fclose(f);
  EXPECT_FALSE(ReadScores(path).ok());
  EXPECT_FALSE(ReadScores(TempPath("missing.bin")).ok());
}

TEST_F(PersistenceTest, TsvExportContainsAllElements) {
  Rng rng(72);
  Graph g = RandomConnectedGraph(10, 5, &rng);
  const BcScores scores = ComputeBrandes(g);
  const std::string path = TempPath("scores.tsv");
  ASSERT_TRUE(WriteScoresTsv(scores, path).ok());
  std::ifstream in(path);
  std::string line;
  std::size_t vertex_lines = 0;
  std::size_t edge_lines = 0;
  while (std::getline(in, line)) {
    if (line.rfind("v\t", 0) == 0) ++vertex_lines;
    if (line.rfind("e\t", 0) == 0) ++edge_lines;
  }
  EXPECT_EQ(vertex_lines, g.NumVertices());
  EXPECT_EQ(edge_lines, scores.ebc.size());
}

TEST_F(PersistenceTest, CheckpointAndResumeContinuesExactly) {
  Rng rng(73);
  Graph g = RandomConnectedGraph(24, 24, &rng);
  const std::string store_path = TempPath("bd.bin");
  const std::string scores_path = TempPath("ckpt_scores.bin");
  const std::string graph_path = TempPath("ckpt_graph.txt");

  EdgeStream before = MixedUpdateStream(g, 8, 0.4, &rng);
  Graph checkpoint_graph;
  {
    DynamicBcOptions options;
    options.variant = BcVariant::kOutOfCore;
    options.storage_path = store_path;
    auto bc = DynamicBc::Create(g, options);
    ASSERT_TRUE(bc.ok()) << bc.status().ToString();
    ASSERT_TRUE((*bc)->ApplyAll(before).ok());
    ASSERT_TRUE((*bc)->Checkpoint(scores_path).ok());
    ASSERT_TRUE(WriteEdgeList((*bc)->graph(), graph_path).ok());
    checkpoint_graph = (*bc)->graph();
  }  // the process "restarts" here

  auto reloaded_graph = ReadEdgeList(graph_path);
  ASSERT_TRUE(reloaded_graph.ok());
  DynamicBcOptions options;
  options.variant = BcVariant::kOutOfCore;
  options.storage_path = store_path;
  auto resumed = DynamicBc::Resume(*reloaded_graph, options, scores_path);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();

  // Scores at resume match a fresh recompute of the checkpointed graph.
  ExpectScoresNear(ComputeBrandes(checkpoint_graph), (*resumed)->scores(),
                   kTol, "resume state");

  // And the framework keeps updating exactly from there.
  EdgeStream after = MixedUpdateStream((*resumed)->graph(), 6, 0.4, &rng);
  for (const EdgeUpdate& update : after) {
    ASSERT_TRUE((*resumed)->Apply(update).ok());
    ExpectScoresNear(ComputeBrandes((*resumed)->graph()),
                     (*resumed)->scores(), kTol, "post-resume update");
    if (::testing::Test::HasFailure()) return;
  }
}

TEST_F(PersistenceTest, ResumeRejectsMismatchedGraph) {
  Rng rng(74);
  Graph g = RandomConnectedGraph(12, 10, &rng);
  const std::string store_path = TempPath("bd2.bin");
  const std::string scores_path = TempPath("scores2.bin");
  {
    DynamicBcOptions options;
    options.variant = BcVariant::kOutOfCore;
    options.storage_path = store_path;
    auto bc = DynamicBc::Create(g, options);
    ASSERT_TRUE(bc.ok());
    ASSERT_TRUE((*bc)->Checkpoint(scores_path).ok());
  }
  Graph wrong = RandomConnectedGraph(15, 10, &rng);  // different n
  DynamicBcOptions options;
  options.variant = BcVariant::kOutOfCore;
  options.storage_path = store_path;
  auto resumed = DynamicBc::Resume(wrong, options, scores_path);
  EXPECT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(PersistenceTest, ResumeRequiresOutOfCoreVariant) {
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  auto resumed = DynamicBc::Resume(g, DynamicBcOptions{}, "/nope");
  EXPECT_EQ(resumed.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PersistenceTest, CheckpointOnMemoryVariantFailsCleanly) {
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  auto bc = DynamicBc::Create(g, DynamicBcOptions{});
  ASSERT_TRUE(bc.ok());
  // The score file is still written (useful by itself)...
  const std::string path = TempPath("mem_scores.bin");
  // ...but the call reports that BD durability is absent.
  EXPECT_EQ((*bc)->Checkpoint(path).code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(ReadScores(path).ok());
}

// ---------------------------------------------------------------------------
// Approximate estimator
// ---------------------------------------------------------------------------

TEST(ApproxBrandesTest, FullSampleIsExact) {
  Rng rng(75);
  Graph g = RandomConnectedGraph(25, 30, &rng);
  ApproxBrandesOptions options;
  options.num_sources = 25;  // == n
  const BcScores approx = ComputeApproxBrandes(g, options, &rng);
  ExpectScoresNear(ComputeBrandes(g), approx, kTol, "full sample");
}

TEST(ApproxBrandesTest, EstimateTracksExactRanking) {
  Rng rng(76);
  SocialGraphParams params;
  params.edges_per_vertex = 4;
  Graph g = GenerateSocialGraph(300, params, &rng);
  const BcScores exact = ComputeBrandes(g);
  ApproxBrandesOptions options;
  options.num_sources = 100;
  const BcScores approx = ComputeApproxBrandes(g, options, &rng);
  // A third of the sources recovers most of the top-10 leaderboard.
  EXPECT_GT(TopKOverlap(exact.vbc, approx.vbc, 10), 0.4);
  // Total mass is preserved in expectation; allow generous slack.
  double exact_total = 0.0;
  double approx_total = 0.0;
  for (double v : exact.vbc) exact_total += v;
  for (double v : approx.vbc) approx_total += v;
  EXPECT_NEAR(approx_total / exact_total, 1.0, 0.25);
}

TEST(ApproxBrandesTest, MoreSourcesReduceError) {
  Rng rng(77);
  SocialGraphParams params;
  params.edges_per_vertex = 4;
  Graph g = GenerateSocialGraph(200, params, &rng);
  const BcScores exact = ComputeBrandes(g);
  auto mean_abs_error = [&](std::size_t k) {
    ApproxBrandesOptions options;
    options.num_sources = k;
    Rng local(123);  // shared seed: paired comparison
    const BcScores approx = ComputeApproxBrandes(g, options, &local);
    double err = 0.0;
    for (std::size_t v = 0; v < exact.vbc.size(); ++v) {
      err += std::abs(exact.vbc[v] - approx.vbc[v]);
    }
    return err / static_cast<double>(exact.vbc.size());
  };
  EXPECT_LT(mean_abs_error(150), mean_abs_error(15));
}

TEST(ApproxBrandesTest, HandlesEmptyAndTinyGraphs) {
  Rng rng(78);
  Graph empty;
  ApproxBrandesOptions options;
  EXPECT_TRUE(ComputeApproxBrandes(empty, options, &rng).vbc.empty());
  Graph tiny;
  ASSERT_TRUE(tiny.AddEdge(0, 1).ok());
  const BcScores scores = ComputeApproxBrandes(tiny, options, &rng);
  EXPECT_EQ(scores.vbc.size(), 2u);
}

// ---------------------------------------------------------------------------
// Top-k utilities
// ---------------------------------------------------------------------------

TEST(TopKTest, OrdersByScoreThenId) {
  const std::vector<double> vbc = {5.0, 9.0, 9.0, 1.0};
  const auto top = TopKVertices(vbc, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, 1u);
  EXPECT_EQ(top[1].first, 2u);
  EXPECT_EQ(top[2].first, 0u);
}

TEST(TopKTest, KLargerThanInputIsClamped) {
  const auto top = TopKVertices({1.0, 2.0}, 10);
  EXPECT_EQ(top.size(), 2u);
}

TEST(TopKTest, TopEdges) {
  EbcMap ebc;
  ebc[EdgeKey{0, 1}] = 3.0;
  ebc[EdgeKey{1, 2}] = 7.0;
  ebc[EdgeKey{2, 3}] = 5.0;
  const auto top = TopKEdges(ebc, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, (EdgeKey{1, 2}));
  EXPECT_EQ(top[1].first, (EdgeKey{2, 3}));
}

TEST(TopKTest, OverlapBoundsAndIdentity) {
  const std::vector<double> a = {4.0, 3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(TopKOverlap(a, a, 2), 1.0);
  const std::vector<double> b = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(TopKOverlap(a, b, 2), 0.0);  // disjoint top-2
  EXPECT_DOUBLE_EQ(TopKOverlap({}, {}, 3), 1.0);
}

}  // namespace
}  // namespace sobc
