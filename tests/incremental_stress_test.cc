// Long randomized campaigns for the incremental engine: many graph
// families, long add/remove streams, periodic full cross-checks against
// recomputation, plus constructed worst cases (the Figure 3 configurations
// and the special cases of Sections 3.1/4.5).

#include <gtest/gtest.h>

#include <string>

#include "bc/brandes.h"
#include "bc/dynamic_bc.h"
#include "common/rng.h"
#include "gen/generators.h"
#include "gen/social_generator.h"
#include "gen/stream_generators.h"
#include "graph/graph.h"
#include "test_util.h"

namespace sobc {
namespace {

using testutil::ExpectScoresNear;

constexpr double kTol = 2e-6;  // long streams accumulate fp drift

struct StressCase {
  const char* name;
  int kind;       // 0 tree, 1 er, 2 ba, 3 social, 4 grid-ish ws
  bool directed;
  double remove_fraction;
};

Graph BuildStressGraph(const StressCase& c, Rng* rng) {
  switch (c.kind) {
    case 0:
      return GenerateRandomTree(36, rng);
    case 1:
      return testutil::RandomGraph(32, 80, rng, c.directed);
    case 2:
      return GenerateBarabasiAlbert(36, 2, rng);
    case 3: {
      SocialGraphParams params;
      params.edges_per_vertex = 3;
      return GenerateSocialGraph(36, params, rng);
    }
    default:
      return GenerateWattsStrogatz(36, 2, 0.3, rng);
  }
}

class IncrementalStressTest : public ::testing::TestWithParam<StressCase> {};

TEST_P(IncrementalStressTest, LongStreamStaysExact) {
  const StressCase& c = GetParam();
  Rng rng(2718);
  Graph g = BuildStressGraph(c, &rng);
  auto bc = DynamicBc::Create(g, DynamicBcOptions{});
  ASSERT_TRUE(bc.ok());

  const std::size_t n = bc->get()->graph().NumVertices();
  int applied = 0;
  for (int step = 0; step < 120; ++step) {
    const Graph& current = (*bc)->graph();
    EdgeUpdate update;
    const bool remove =
        current.NumEdges() > n / 2 && rng.Chance(c.remove_fraction);
    if (remove) {
      auto edges = current.Edges();
      const EdgeKey pick = edges[rng.Uniform(edges.size())];
      update = {pick.u, pick.v, EdgeOp::kRemove};
    } else {
      const auto a = static_cast<VertexId>(rng.Uniform(n));
      const auto b = static_cast<VertexId>(rng.Uniform(n));
      if (a == b || current.HasEdge(a, b)) continue;
      update = {a, b, EdgeOp::kAdd};
    }
    ASSERT_TRUE((*bc)->Apply(update).ok());
    ++applied;
    // Full recompute cross-check every 10 applied updates; checking every
    // step would make the test quadratic for little extra power.
    if (applied % 10 == 0) {
      ExpectScoresNear(ComputeBrandes((*bc)->graph()), (*bc)->scores(), kTol,
                       std::string(c.name) + " step " + std::to_string(step));
      if (::testing::Test::HasFailure()) return;
    }
  }
  EXPECT_GT(applied, 60) << "stream generation starved";
}

INSTANTIATE_TEST_SUITE_P(
    Families, IncrementalStressTest,
    ::testing::Values(
        StressCase{"tree_mixed", 0, false, 0.45},
        StressCase{"er_mixed", 1, false, 0.45},
        StressCase{"er_directed_mixed", 1, true, 0.45},
        StressCase{"ba_heavy_remove", 2, false, 0.7},
        StressCase{"social_add_heavy", 3, false, 0.2},
        StressCase{"ws_mixed", 4, false, 0.5}),
    [](const ::testing::TestParamInfo<StressCase>& info) {
      return std::string(info.param.name);
    });

// ---------------------------------------------------------------------------
// The Figure 3 configurations, exercised deliberately.
// ---------------------------------------------------------------------------

void ExpectMatches(DynamicBc* bc, const std::string& label) {
  ExpectScoresNear(ComputeBrandes(bc->graph()), bc->scores(), 1e-7, label);
}

TEST(Fig3CaseTest, AdditionSiblingsStaySiblings) {
  // x and y at the same level before and after (case 1a/1b analogue).
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  ASSERT_TRUE(g.AddEdge(1, 3).ok());
  ASSERT_TRUE(g.AddEdge(2, 3).ok());
  auto bc = DynamicBc::Create(g, DynamicBcOptions{});
  ASSERT_TRUE(bc.ok());
  ASSERT_TRUE((*bc)->Apply({1, 2, EdgeOp::kAdd}).ok());
  ExpectMatches(bc->get(), "siblings addition");
}

TEST(Fig3CaseTest, AdditionFlipsPredecessorToSuccessor) {
  // Case 2c: y was two below x, the shortcut pulls y above x.
  Graph g;
  for (VertexId v = 0; v < 5; ++v) ASSERT_TRUE(g.AddEdge(v, v + 1).ok());
  auto bc = DynamicBc::Create(g, DynamicBcOptions{});
  ASSERT_TRUE(bc.ok());
  // From source 0: d(5)=5; adding (0,5) flips the whole chain's roles.
  ASSERT_TRUE((*bc)->Apply({0, 5, EdgeOp::kAdd}).ok());
  ExpectMatches(bc->get(), "flip addition");
}

TEST(Fig3CaseTest, AdditionPullsVertexLevelWithPredecessor) {
  // Case 2a: x and y move up together, keeping their relative order.
  Graph g;
  for (VertexId v = 0; v < 6; ++v) ASSERT_TRUE(g.AddEdge(v, v + 1).ok());
  auto bc = DynamicBc::Create(g, DynamicBcOptions{});
  ASSERT_TRUE(bc.ok());
  ASSERT_TRUE((*bc)->Apply({0, 4, EdgeOp::kAdd}).ok());
  ExpectMatches(bc->get(), "co-moving addition");
}

TEST(Fig3CaseTest, RemovalKeepsSiblingPivot) {
  // Case 1d: y keeps its level thanks to a predecessor outside the
  // affected region (a pivot).
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  ASSERT_TRUE(g.AddEdge(1, 3).ok());
  ASSERT_TRUE(g.AddEdge(2, 3).ok());
  ASSERT_TRUE(g.AddEdge(3, 4).ok());
  auto bc = DynamicBc::Create(g, DynamicBcOptions{});
  ASSERT_TRUE(bc.ok());
  ASSERT_TRUE((*bc)->Apply({1, 3, EdgeOp::kRemove}).ok());
  ExpectMatches(bc->get(), "pivot removal");
}

TEST(Fig3CaseTest, RemovalDropsChainThroughDistantPivot) {
  // Cases 2e/2f: a deep chain must re-route through a far-away pivot,
  // dropping several levels.
  Graph g;
  for (VertexId v = 0; v < 8; ++v) ASSERT_TRUE(g.AddEdge(v, v + 1).ok());
  ASSERT_TRUE(g.AddEdge(0, 8).ok());  // distant alternative route
  auto bc = DynamicBc::Create(g, DynamicBcOptions{});
  ASSERT_TRUE(bc.ok());
  ASSERT_TRUE((*bc)->Apply({3, 4, EdgeOp::kRemove}).ok());
  ExpectMatches(bc->get(), "deep drop removal");
}

TEST(Fig3CaseTest, RemovalSameLevelEdgeIsFree) {
  // Removing an edge between same-level vertices must touch nothing.
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  auto bc = DynamicBc::Create(g, DynamicBcOptions{});
  ASSERT_TRUE(bc.ok());
  ASSERT_TRUE((*bc)->Apply({1, 2, EdgeOp::kRemove}).ok());
  ExpectMatches(bc->get(), "same-level removal");
  // From sources 1 and 2 the edge was a DAG edge, so only source 0 skips.
  EXPECT_EQ((*bc)->last_update_stats().sources_skipped, 1u);
}

TEST(SpecialCaseTest, RepeatedJoinAndSplit) {
  // Oscillate a bridge between two components; every transition crosses
  // the component-join (addition) and Alg. 10 (removal) paths.
  Rng rng(31);
  Graph g;
  Graph a = GenerateErdosRenyi(10, 20, &rng);
  a.ForEachEdge([&g](VertexId u, VertexId v) { (void)g.AddEdge(u, v); });
  Graph b = GenerateErdosRenyi(10, 20, &rng);
  b.ForEachEdge([&g](VertexId u, VertexId v) {
    (void)g.AddEdge(u + 10, v + 10);
  });
  auto bc = DynamicBc::Create(g, DynamicBcOptions{});
  ASSERT_TRUE(bc.ok());
  for (int round = 0; round < 4; ++round) {
    const auto left = static_cast<VertexId>(rng.Uniform(10));
    const auto right = static_cast<VertexId>(10 + rng.Uniform(10));
    ASSERT_TRUE((*bc)->Apply({left, right, EdgeOp::kAdd}).ok());
    ExpectMatches(bc->get(), "join round " + std::to_string(round));
    ASSERT_TRUE((*bc)->Apply({left, right, EdgeOp::kRemove}).ok());
    ExpectMatches(bc->get(), "split round " + std::to_string(round));
    EXPECT_GT((*bc)->last_update_stats().sources_disconnected, 0u);
  }
}

TEST(SpecialCaseTest, GrowThroughManyNewVertices) {
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  auto bc = DynamicBc::Create(g, DynamicBcOptions{});
  ASSERT_TRUE(bc.ok());
  // A growing path of brand-new ids, then chords over them.
  for (VertexId v = 2; v < 12; ++v) {
    ASSERT_TRUE((*bc)->Apply({static_cast<VertexId>(v - 1), v,
                              EdgeOp::kAdd}).ok());
  }
  ExpectMatches(bc->get(), "pure growth");
  ASSERT_TRUE((*bc)->Apply({2, 11, EdgeOp::kAdd}).ok());
  ASSERT_TRUE((*bc)->Apply({0, 7, EdgeOp::kAdd}).ok());
  ExpectMatches(bc->get(), "chords after growth");
  EXPECT_EQ((*bc)->graph().NumVertices(), 12u);
}

TEST(SpecialCaseTest, DirectedAsymmetricPair) {
  // u->v and v->u are distinct edges; updating one must not disturb the
  // other's contributions.
  Graph g(/*directed=*/true);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(2, 0).ok());
  auto bc = DynamicBc::Create(g, DynamicBcOptions{});
  ASSERT_TRUE(bc.ok());
  ASSERT_TRUE((*bc)->Apply({0, 2, EdgeOp::kAdd}).ok());
  ExpectMatches(bc->get(), "directed reverse edge add");
  ASSERT_TRUE((*bc)->Apply({2, 0, EdgeOp::kRemove}).ok());
  ExpectMatches(bc->get(), "directed forward edge remove");
  EXPECT_TRUE((*bc)->graph().HasEdge(0, 2));
  EXPECT_FALSE((*bc)->graph().HasEdge(2, 0));
}

TEST(SpecialCaseTest, StarCenterChurn) {
  // Every update touches the highest-degree vertex; exercises wide
  // neighbor scans in the accumulation phase.
  Graph g;
  for (VertexId leaf = 1; leaf <= 12; ++leaf) {
    ASSERT_TRUE(g.AddEdge(0, leaf).ok());
  }
  auto bc = DynamicBc::Create(g, DynamicBcOptions{});
  ASSERT_TRUE(bc.ok());
  for (VertexId leaf = 1; leaf <= 6; ++leaf) {
    ASSERT_TRUE(
        (*bc)->Apply({leaf, static_cast<VertexId>(leaf + 6), EdgeOp::kAdd})
            .ok());
  }
  ExpectMatches(bc->get(), "star after chords");
  for (VertexId leaf = 1; leaf <= 3; ++leaf) {
    ASSERT_TRUE((*bc)->Apply({0, leaf, EdgeOp::kRemove}).ok());
  }
  ExpectMatches(bc->get(), "star after center pruning");
}

}  // namespace
}  // namespace sobc
