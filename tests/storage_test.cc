#include "storage/columnar_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bc/bd_store.h"
#include "bc/bd_store_disk.h"
#include "bc/brandes.h"
#include "common/rng.h"
#include "test_util.h"

namespace sobc {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& p : paths_) std::remove(p.c_str());
  }
  std::string TempPath(const std::string& name) {
    std::string p = ::testing::TempDir() + "/sobc_storage_" + name;
    paths_.push_back(p);
    return p;
  }
  std::vector<std::string> paths_;
};

TEST_F(StorageTest, ColumnarCreateAndRoundTrip) {
  ColumnarLayout layout;
  layout.column_widths = {2, 8};
  layout.entries_per_record = 10;
  layout.num_records = 4;
  auto file = ColumnarFile::Create(TempPath("basic.bin"), layout);
  ASSERT_TRUE(file.ok()) << file.status().ToString();

  std::vector<std::uint16_t> shorts = {1, 2, 3};
  ASSERT_TRUE((*file)->Write(2, 0, 5, 3, shorts.data()).ok());
  std::vector<std::uint16_t> back(3);
  ASSERT_TRUE((*file)->Read(2, 0, 5, 3, back.data()).ok());
  EXPECT_EQ(back, shorts);

  std::vector<std::uint64_t> longs = {7, 8};
  ASSERT_TRUE((*file)->Write(3, 1, 0, 2, longs.data()).ok());
  std::vector<std::uint64_t> back64(2);
  ASSERT_TRUE((*file)->Read(3, 1, 0, 2, back64.data()).ok());
  EXPECT_EQ(back64, longs);
}

TEST_F(StorageTest, ColumnarFreshFileReadsZero) {
  ColumnarLayout layout;
  layout.column_widths = {8};
  layout.entries_per_record = 4;
  layout.num_records = 2;
  auto file = ColumnarFile::Create(TempPath("zeros.bin"), layout);
  ASSERT_TRUE(file.ok());
  std::vector<std::uint64_t> values(4, 99);
  ASSERT_TRUE((*file)->Read(1, 0, 0, 4, values.data()).ok());
  for (std::uint64_t v : values) EXPECT_EQ(v, 0u);
}

TEST_F(StorageTest, ColumnarBoundsChecked) {
  ColumnarLayout layout;
  layout.column_widths = {4};
  layout.entries_per_record = 4;
  layout.num_records = 2;
  auto file = ColumnarFile::Create(TempPath("bounds.bin"), layout);
  ASSERT_TRUE(file.ok());
  std::uint32_t x = 0;
  EXPECT_EQ((*file)->Read(2, 0, 0, 1, &x).code(), StatusCode::kOutOfRange);
  EXPECT_EQ((*file)->Read(0, 1, 0, 1, &x).code(), StatusCode::kOutOfRange);
  EXPECT_EQ((*file)->Read(0, 0, 4, 1, &x).code(), StatusCode::kOutOfRange);
  EXPECT_EQ((*file)->Read(0, 0, 2, 3, &x).code(), StatusCode::kOutOfRange);
}

TEST_F(StorageTest, ColumnarReopenKeepsLayoutAndUserValue) {
  const std::string path = TempPath("reopen.bin");
  {
    ColumnarLayout layout;
    layout.column_widths = {2, 8, 8};
    layout.entries_per_record = 7;
    layout.num_records = 3;
    auto file = ColumnarFile::Create(path, layout);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->SetUserValue(42).ok());
    std::uint16_t v = 77;
    ASSERT_TRUE((*file)->Write(1, 0, 3, 1, &v).ok());
  }
  auto reopened = ColumnarFile::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->layout().entries_per_record, 7u);
  EXPECT_EQ((*reopened)->layout().column_widths.size(), 3u);
  EXPECT_EQ((*reopened)->user_value(), 42u);
  std::uint16_t v = 0;
  ASSERT_TRUE((*reopened)->Read(1, 0, 3, 1, &v).ok());
  EXPECT_EQ(v, 77);
}

TEST_F(StorageTest, ColumnarOpenRejectsGarbage) {
  const std::string path = TempPath("garbage.bin");
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("definitely not a columnar file header....", f);
  std::fclose(f);
  auto opened = ColumnarFile::Open(path);
  EXPECT_FALSE(opened.ok());
}

// ---------------------------------------------------------------------------
// DiskBdStore
// ---------------------------------------------------------------------------

TEST_F(StorageTest, DiskStoreInitialState) {
  auto store = DiskBdStore::Create(TempPath("init.bin"), 5);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  SourceView view;
  ASSERT_TRUE((*store)->View(3, &view).ok());
  ASSERT_EQ(view.n, 5u);
  for (VertexId v = 0; v < 5; ++v) {
    if (v == 3) {
      EXPECT_EQ(view.d[v], 0u);
      EXPECT_EQ(view.sigma[v], 1u);
    } else {
      EXPECT_EQ(view.d[v], kUnreachable);
      EXPECT_EQ(view.sigma[v], 0u);
    }
    EXPECT_DOUBLE_EQ(view.delta[v], 0.0);
  }
}

TEST_F(StorageTest, DiskStorePutViewApplyPeek) {
  auto store = DiskBdStore::Create(TempPath("rw.bin"), 4);
  ASSERT_TRUE(store.ok());
  SourceBcData data;
  data.Resize(4);
  data.d = {0, 1, 2, kUnreachable};
  data.sigma = {1, 2, 3, 0};
  data.delta = {0.5, 1.5, 0.0, 0.0};
  ASSERT_TRUE((*store)->PutInitial(0, std::move(data)).ok());

  Distance da = 0;
  Distance db = 0;
  ASSERT_TRUE((*store)->PeekDistances(0, 2, 3, &da, &db).ok());
  EXPECT_EQ(da, 2u);
  EXPECT_EQ(db, kUnreachable);

  SourceView view;
  ASSERT_TRUE((*store)->View(0, &view).ok());
  EXPECT_EQ(view.sigma[2], 3u);
  EXPECT_DOUBLE_EQ(view.delta[1], 1.5);

  ASSERT_TRUE((*store)
                  ->Apply(0, {BdPatch{1, 5, 9, 2.25}}, PredPatchList{})
                  .ok());
  ASSERT_TRUE((*store)->View(0, &view).ok());
  EXPECT_EQ(view.d[1], 5u);
  EXPECT_EQ(view.sigma[1], 9u);
  EXPECT_DOUBLE_EQ(view.delta[1], 2.25);
}

TEST_F(StorageTest, DiskStorePersistsAcrossHandles) {
  const std::string path = TempPath("handles.bin");
  auto store = DiskBdStore::Create(path, 3);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(
      (*store)->Apply(1, {BdPatch{2, 4, 6, 1.0}}, PredPatchList{}).ok());

  auto second = DiskBdStore::Open(path);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*second)->num_vertices(), 3u);
  SourceView view;
  ASSERT_TRUE((*second)->View(1, &view).ok());
  EXPECT_EQ(view.d[2], 4u);
  EXPECT_EQ(view.sigma[2], 6u);
}

TEST_F(StorageTest, DiskStoreGrowWithinCapacity) {
  auto store = DiskBdStore::Create(TempPath("grow1.bin"), 3, 8);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Grow(5).ok());
  EXPECT_EQ((*store)->num_vertices(), 5u);
  SourceView view;
  ASSERT_TRUE((*store)->View(4, &view).ok());
  EXPECT_EQ(view.d[4], 0u);
  EXPECT_EQ(view.sigma[4], 1u);
  EXPECT_EQ(view.d[0], kUnreachable);
  // Existing record gains unreachable tail entries.
  ASSERT_TRUE((*store)->View(0, &view).ok());
  EXPECT_EQ(view.n, 5u);
  EXPECT_EQ(view.d[4], kUnreachable);
}

TEST_F(StorageTest, DiskStoreGrowBeyondCapacityRebuilds) {
  auto store = DiskBdStore::Create(TempPath("grow2.bin"), 2, 2);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(
      (*store)->Apply(0, {BdPatch{1, 1, 7, 0.25}}, PredPatchList{}).ok());
  ASSERT_TRUE((*store)->Grow(6).ok());
  EXPECT_EQ((*store)->num_vertices(), 6u);
  EXPECT_GE((*store)->vertex_capacity(), 6u);
  SourceView view;
  ASSERT_TRUE((*store)->View(0, &view).ok());
  EXPECT_EQ(view.sigma[1], 7u);  // survived the rebuild
  EXPECT_DOUBLE_EQ(view.delta[1], 0.25);
  ASSERT_TRUE((*store)->View(5, &view).ok());
  EXPECT_EQ(view.d[5], 0u);
}

TEST_F(StorageTest, DiskStoreRejectsShrink) {
  auto store = DiskBdStore::Create(TempPath("shrink.bin"), 4);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->Grow(2).code(), StatusCode::kInvalidArgument);
}

TEST_F(StorageTest, DiskStoreRejectsPredPatches) {
  auto store = DiskBdStore::Create(TempPath("preds.bin"), 2);
  ASSERT_TRUE(store.ok());
  PredPatchList preds;
  preds.emplace_back(0, std::vector<VertexId>{1});
  EXPECT_FALSE((*store)->Apply(0, {}, preds).ok());
}

// The disk store must behave exactly like the in-memory store when driven
// by the same Brandes initialization.
TEST_F(StorageTest, DiskMatchesMemoryAfterInit) {
  Rng rng(17);
  Graph g = testutil::RandomGraph(15, 35, &rng);
  InMemoryBdStore mem;
  BcScores mem_scores;
  ASSERT_TRUE(
      InitializeFromScratch(g, BrandesOptions{}, &mem, &mem_scores).ok());
  auto disk = DiskBdStore::Create(TempPath("parity.bin"), 15);
  ASSERT_TRUE(disk.ok());
  BcScores disk_scores;
  ASSERT_TRUE(
      InitializeFromScratch(g, BrandesOptions{}, disk->get(), &disk_scores)
          .ok());
  for (VertexId s = 0; s < 15; ++s) {
    SourceView mv;
    SourceView dv;
    ASSERT_TRUE(mem.View(s, &mv).ok());
    ASSERT_TRUE((*disk)->View(s, &dv).ok());
    for (VertexId v = 0; v < 15; ++v) {
      EXPECT_EQ(mv.d[v], dv.d[v]);
      EXPECT_EQ(mv.sigma[v], dv.sigma[v]);
      EXPECT_DOUBLE_EQ(mv.delta[v], dv.delta[v]);
    }
  }
}

}  // namespace
}  // namespace sobc
