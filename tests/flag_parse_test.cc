// Regression tests for the validated CLI flag parsing (common/flag_parse).
// The original sobc_cli used bare strtod/strtoull, so
// `--do-switch-threshold=inf` and `--epsilon=0.5x` were silently accepted
// and deployed a nonsense configuration; these pin the helpers that now
// back every numeric flag.

#include "common/flag_parse.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace sobc {
namespace {

TEST(ParseFiniteDoubleTest, AcceptsPlainNumbers) {
  ASSERT_TRUE(ParseFiniteDouble("14").ok());
  EXPECT_DOUBLE_EQ(*ParseFiniteDouble("14"), 14.0);
  EXPECT_DOUBLE_EQ(*ParseFiniteDouble("0.05"), 0.05);
  EXPECT_DOUBLE_EQ(*ParseFiniteDouble("-3.5"), -3.5);
  EXPECT_DOUBLE_EQ(*ParseFiniteDouble("1e2"), 100.0);
}

TEST(ParseFiniteDoubleTest, RejectsEmptyAndTrailingJunk) {
  EXPECT_FALSE(ParseFiniteDouble("").ok());
  EXPECT_FALSE(ParseFiniteDouble("1.5x").ok());
  EXPECT_FALSE(ParseFiniteDouble("abc").ok());
  // strtod would stop at the space and return 1.0 — the whole-token rule
  // is what rejects this.
  EXPECT_FALSE(ParseFiniteDouble("1.0 2.0").ok());
}

TEST(ParseFiniteDoubleTest, RejectsNonFiniteSpellingsAndOverflow) {
  EXPECT_FALSE(ParseFiniteDouble("inf").ok());
  EXPECT_FALSE(ParseFiniteDouble("-inf").ok());
  EXPECT_FALSE(ParseFiniteDouble("nan").ok());
  EXPECT_FALSE(ParseFiniteDouble("1e400").ok());  // overflows to +inf
}

TEST(ParseFiniteDoubleTest, RangeVariantChecksInclusiveBounds) {
  EXPECT_TRUE(ParseFiniteDoubleInRange("0.5", 0.0, 1.0).ok());
  EXPECT_TRUE(ParseFiniteDoubleInRange("0", 0.0, 1.0).ok());
  EXPECT_TRUE(ParseFiniteDoubleInRange("1", 0.0, 1.0).ok());
  EXPECT_FALSE(ParseFiniteDoubleInRange("1.01", 0.0, 1.0).ok());
  EXPECT_FALSE(ParseFiniteDoubleInRange("-0.01", 0.0, 1.0).ok());
  EXPECT_FALSE(ParseFiniteDoubleInRange("nan", 0.0, 1.0).ok());
}

TEST(ParseUint64Test, AcceptsPlainDecimals) {
  ASSERT_TRUE(ParseUint64("0").ok());
  EXPECT_EQ(*ParseUint64("0"), 0u);
  EXPECT_EQ(*ParseUint64("128"), 128u);
  EXPECT_EQ(*ParseUint64("18446744073709551615"),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(ParseUint64Test, RejectsSignsJunkAndOverflow) {
  EXPECT_FALSE(ParseUint64("").ok());
  // strtoull accepts "-1" and wraps it to 2^64-1 — the digit pre-scan is
  // what rejects it.
  EXPECT_FALSE(ParseUint64("-1").ok());
  EXPECT_FALSE(ParseUint64("+1").ok());
  EXPECT_FALSE(ParseUint64("12x").ok());
  EXPECT_FALSE(ParseUint64("1.5").ok());
  EXPECT_FALSE(ParseUint64("18446744073709551616").ok());  // 2^64
}

}  // namespace
}  // namespace sobc
