// Property tests on identities that exact betweenness must satisfy.
// These hold for any graph, so they catch errors that example-based tests
// miss — and they must keep holding after every incremental update.
//
//   (1) sum_e EBC(e)  = sum over ordered reachable pairs (s,t) of d(s,t)
//       (every shortest path contributes each of its d(s,t) edges once,
//       weighted by 1/sigma(s,t) over sigma(s,t) paths).
//   (2) sum_v VBC(v)  = sum over ordered reachable pairs of (d(s,t) - 1)
//       (the interior vertices of each path).
//   (3) VBC(v) = sum over v's incident DAG... more usefully:
//       2 * VBC(v) + "pair deficit" relates VBC and EBC per vertex:
//       sum of EBC over edges incident to v = 2*VBC(v) + (paths that end
//       at v): for undirected graphs, sum_{e ~ v} EBC(e) - 2*VBC(v)
//       equals the number of ordered reachable pairs with endpoint v.

#include <gtest/gtest.h>

#include <cmath>

#include "bc/brandes.h"
#include "bc/dynamic_bc.h"
#include "common/rng.h"
#include "gen/generators.h"
#include "gen/social_generator.h"
#include "gen/stream_generators.h"
#include "graph/graph.h"
#include "test_util.h"

namespace sobc {
namespace {

constexpr double kTol = 1e-6;

/// Sums d(s,t) and d(s,t)-1 over ordered reachable pairs via BFS.
struct PairSums {
  double total_distance = 0.0;
  double total_interior = 0.0;
  double pairs_with_endpoint(VertexId v) const {
    return endpoint_pairs.empty() ? 0.0 : endpoint_pairs[v];
  }
  std::vector<double> endpoint_pairs;  // ordered pairs having v as endpoint
};

PairSums ComputePairSums(const Graph& g) {
  PairSums sums;
  const std::size_t n = g.NumVertices();
  sums.endpoint_pairs.assign(n, 0.0);
  std::vector<Distance> d(n);
  std::vector<VertexId> queue;
  for (VertexId s = 0; s < n; ++s) {
    std::fill(d.begin(), d.end(), kUnreachable);
    queue.clear();
    d[s] = 0;
    queue.push_back(s);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const VertexId v = queue[head];
      for (VertexId w : g.OutNeighbors(v)) {
        if (d[w] == kUnreachable) {
          d[w] = d[v] + 1;
          queue.push_back(w);
        }
      }
    }
    for (VertexId t = 0; t < n; ++t) {
      if (t == s || d[t] == kUnreachable) continue;
      sums.total_distance += static_cast<double>(d[t]);
      sums.total_interior += static_cast<double>(d[t]) - 1.0;
      sums.endpoint_pairs[s] += 1.0;
      sums.endpoint_pairs[t] += 1.0;
    }
  }
  return sums;
}

void CheckInvariants(const Graph& g, const BcScores& scores,
                     const std::string& label) {
  const PairSums sums = ComputePairSums(g);
  double ebc_total = 0.0;
  for (const auto& [key, value] : scores.ebc) ebc_total += value;
  EXPECT_NEAR(ebc_total, sums.total_distance,
              kTol * (1.0 + sums.total_distance))
      << label << ": sum of EBC vs total pair distance";
  double vbc_total = 0.0;
  for (double v : scores.vbc) vbc_total += v;
  EXPECT_NEAR(vbc_total, sums.total_interior,
              kTol * (1.0 + sums.total_interior))
      << label << ": sum of VBC vs total interior count";
}

void CheckVertexEdgeCoupling(const Graph& g, const BcScores& scores,
                             const std::string& label) {
  if (g.directed()) return;  // the identity below is for undirected graphs
  const PairSums sums = ComputePairSums(g);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    double incident = 0.0;
    for (VertexId w : g.OutNeighbors(v)) {
      const auto it = scores.ebc.find(g.MakeKey(v, w));
      if (it != scores.ebc.end()) incident += it->second;
    }
    // Every path through v uses exactly two incident edges; every path
    // ending at v uses exactly one.
    EXPECT_NEAR(incident, 2.0 * scores.vbc[v] + sums.pairs_with_endpoint(v),
                kTol * (1.0 + incident))
        << label << ": edge-vertex coupling at " << v;
  }
}

struct FamilyCase {
  const char* name;
  Graph (*build)(Rng*);
};

Graph BuildTree(Rng* rng) { return GenerateRandomTree(40, rng); }
Graph BuildEr(Rng* rng) { return GenerateErdosRenyi(36, 90, rng); }
Graph BuildBa(Rng* rng) { return GenerateBarabasiAlbert(40, 2, rng); }
Graph BuildWs(Rng* rng) { return GenerateWattsStrogatz(40, 2, 0.2, rng); }
Graph BuildSocial(Rng* rng) {
  SocialGraphParams params;
  params.edges_per_vertex = 3;
  return GenerateSocialGraph(40, params, rng);
}
Graph BuildBipartite(Rng* rng) {
  Graph g;
  g.EnsureVertex(29);
  for (int i = 0; i < 70; ++i) {
    const auto left = static_cast<VertexId>(rng->Uniform(15));
    const auto right = static_cast<VertexId>(15 + rng->Uniform(15));
    (void)g.AddEdge(left, right);
  }
  return g;
}
Graph BuildGrid(Rng*) {
  Graph g;
  constexpr int kSide = 6;
  for (int r = 0; r < kSide; ++r) {
    for (int c = 0; c < kSide; ++c) {
      const auto v = static_cast<VertexId>(r * kSide + c);
      if (c + 1 < kSide) (void)g.AddEdge(v, v + 1);
      if (r + 1 < kSide) (void)g.AddEdge(v, v + kSide);
    }
  }
  return g;
}
Graph BuildDisconnected(Rng* rng) {
  Graph g = GenerateErdosRenyi(18, 30, rng);
  Graph h = GenerateErdosRenyi(18, 30, rng);
  h.ForEachEdge([&g](VertexId u, VertexId v) {
    (void)g.AddEdge(u + 18, v + 18);
  });
  return g;
}

class InvariantFamilyTest : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(InvariantFamilyTest, BrandesSatisfiesIdentities) {
  Rng rng(17);
  Graph g = GetParam().build(&rng);
  const BcScores scores = ComputeBrandes(g);
  CheckInvariants(g, scores, GetParam().name);
  CheckVertexEdgeCoupling(g, scores, GetParam().name);
}

TEST_P(InvariantFamilyTest, IdentitiesSurviveUpdateStream) {
  Rng rng(18);
  Graph g = GetParam().build(&rng);
  auto bc = DynamicBc::Create(g, DynamicBcOptions{});
  ASSERT_TRUE(bc.ok());
  EdgeStream stream = MixedUpdateStream(g, 12, 0.4, &rng);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE((*bc)->Apply(stream[i]).ok());
    if (i % 4 == 3) {
      CheckInvariants((*bc)->graph(), (*bc)->scores(),
                      std::string(GetParam().name) + " step " +
                          std::to_string(i));
    }
  }
  CheckVertexEdgeCoupling((*bc)->graph(), (*bc)->scores(), GetParam().name);
}

INSTANTIATE_TEST_SUITE_P(
    Families, InvariantFamilyTest,
    ::testing::Values(FamilyCase{"tree", BuildTree},
                      FamilyCase{"erdos_renyi", BuildEr},
                      FamilyCase{"barabasi_albert", BuildBa},
                      FamilyCase{"watts_strogatz", BuildWs},
                      FamilyCase{"social", BuildSocial},
                      FamilyCase{"bipartite", BuildBipartite},
                      FamilyCase{"grid", BuildGrid},
                      FamilyCase{"disconnected", BuildDisconnected}),
    [](const ::testing::TestParamInfo<FamilyCase>& info) {
      return std::string(info.param.name);
    });

TEST(InvariantEdgeCases, EmptyGraph) {
  Graph g;
  const BcScores scores = ComputeBrandes(g);
  EXPECT_TRUE(scores.vbc.empty());
  EXPECT_TRUE(scores.ebc.empty());
}

TEST(InvariantEdgeCases, SingleEdge) {
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  const BcScores scores = ComputeBrandes(g);
  CheckInvariants(g, scores, "single edge");
  EXPECT_DOUBLE_EQ(scores.ebc.at(EdgeKey{0, 1}), 2.0);
}

TEST(InvariantEdgeCases, DirectedIdentitiesHold) {
  Rng rng(19);
  Graph g = testutil::RandomGraph(30, 120, &rng, /*directed=*/true);
  const BcScores scores = ComputeBrandes(g);
  CheckInvariants(g, scores, "directed");
}

}  // namespace
}  // namespace sobc
