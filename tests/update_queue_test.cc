#include "server/update_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace sobc {
namespace {

EdgeUpdate Add(VertexId u, VertexId v, double t = 0.0) {
  return {u, v, EdgeOp::kAdd, t};
}
EdgeUpdate Remove(VertexId u, VertexId v, double t = 0.0) {
  return {u, v, EdgeOp::kRemove, t};
}

// --- CoalesceUpdates rules --------------------------------------------------

TEST(CoalesceUpdates, AddThenRemoveCancels) {
  std::vector<EdgeUpdate> batch = {Add(1, 2), Remove(1, 2)};
  EXPECT_EQ(CoalesceUpdates(false, &batch), 2u);
  EXPECT_TRUE(batch.empty());
}

TEST(CoalesceUpdates, RemoveThenAddCancels) {
  std::vector<EdgeUpdate> batch = {Remove(3, 4), Add(3, 4)};
  EXPECT_EQ(CoalesceUpdates(false, &batch), 2u);
  EXPECT_TRUE(batch.empty());
}

TEST(CoalesceUpdates, OddChurnKeepsLastOpOnly) {
  std::vector<EdgeUpdate> batch = {Add(1, 2, 0.1), Remove(1, 2, 0.2),
                                   Add(1, 2, 0.3)};
  EXPECT_EQ(CoalesceUpdates(false, &batch), 2u);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].op, EdgeOp::kAdd);
  EXPECT_DOUBLE_EQ(batch[0].timestamp, 0.3);

  batch = {Remove(5, 6), Add(5, 6), Remove(5, 6)};
  EXPECT_EQ(CoalesceUpdates(false, &batch), 2u);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].op, EdgeOp::kRemove);
}

TEST(CoalesceUpdates, UndirectedCanonicalizesEndpointOrder) {
  // (2,1) and (1,2) are the same undirected edge: the pair cancels.
  std::vector<EdgeUpdate> batch = {Add(2, 1), Remove(1, 2)};
  EXPECT_EQ(CoalesceUpdates(false, &batch), 2u);
  EXPECT_TRUE(batch.empty());
  // Directed graphs keep them distinct.
  batch = {Add(2, 1), Remove(1, 2)};
  EXPECT_EQ(CoalesceUpdates(true, &batch), 0u);
  EXPECT_EQ(batch.size(), 2u);
}

TEST(CoalesceUpdates, IndependentEdgesKeepArrivalOrder) {
  std::vector<EdgeUpdate> batch = {Add(1, 2), Add(3, 4), Remove(1, 2),
                                   Add(5, 6)};
  EXPECT_EQ(CoalesceUpdates(false, &batch), 2u);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].u, 3u);
  EXPECT_EQ(batch[1].u, 5u);
}

TEST(CoalesceUpdates, SingletonAndEmptyAreUntouched) {
  std::vector<EdgeUpdate> batch;
  EXPECT_EQ(CoalesceUpdates(false, &batch), 0u);
  batch = {Add(1, 2)};
  EXPECT_EQ(CoalesceUpdates(false, &batch), 0u);
  EXPECT_EQ(batch.size(), 1u);
}

// --- UpdateQueue ------------------------------------------------------------

TEST(UpdateQueue, DrainsInArrivalOrder) {
  UpdateQueueOptions options;
  options.coalesce = false;
  UpdateQueue queue(options);
  EXPECT_TRUE(queue.Push(Add(1, 2)));
  EXPECT_TRUE(queue.Push(Add(3, 4)));
  EXPECT_TRUE(queue.Push(Remove(1, 2)));
  DrainedBatch batch;
  ASSERT_TRUE(queue.PopBatch(&batch));
  ASSERT_EQ(batch.updates.size(), 3u);
  EXPECT_EQ(batch.consumed, 3u);
  EXPECT_EQ(batch.enqueue_seconds.size(), 3u);
  EXPECT_EQ(batch.updates[0].u, 1u);
  EXPECT_EQ(batch.updates[1].u, 3u);
  EXPECT_EQ(batch.updates[2].op, EdgeOp::kRemove);
}

TEST(UpdateQueue, CoalescedBatchStillAccountsConsumedInputs) {
  UpdateQueueOptions options;
  UpdateQueue queue(options);
  queue.Push(Add(1, 2));
  queue.Push(Remove(1, 2));
  DrainedBatch batch;
  ASSERT_TRUE(queue.PopBatch(&batch));
  EXPECT_TRUE(batch.updates.empty());  // collapsed to a no-op...
  EXPECT_EQ(batch.consumed, 2u);       // ...but both inputs are consumed
  EXPECT_EQ(batch.enqueue_seconds.size(), 2u);
  const UpdateQueueStats stats = queue.stats();
  EXPECT_EQ(stats.received, 2u);
  EXPECT_EQ(stats.coalesced, 2u);
  EXPECT_EQ(stats.drained, 0u);
  EXPECT_EQ(stats.batches, 1u);
}

TEST(UpdateQueue, MaxBatchBoundsTheDrain) {
  UpdateQueueOptions options;
  options.max_batch = 2;
  options.coalesce = false;
  UpdateQueue queue(options);
  for (VertexId i = 0; i < 5; ++i) queue.Push(Add(i, i + 10));
  DrainedBatch batch;
  ASSERT_TRUE(queue.PopBatch(&batch));
  EXPECT_EQ(batch.consumed, 2u);
  EXPECT_EQ(queue.depth(), 3u);
}

TEST(UpdateQueue, DropWhenFullRejectsAndCounts) {
  UpdateQueueOptions options;
  options.capacity = 2;
  options.drop_when_full = true;
  UpdateQueue queue(options);
  EXPECT_TRUE(queue.Push(Add(1, 2)));
  EXPECT_TRUE(queue.Push(Add(3, 4)));
  EXPECT_FALSE(queue.Push(Add(5, 6)));  // full
  const UpdateQueueStats stats = queue.stats();
  EXPECT_EQ(stats.received, 2u);
  EXPECT_EQ(stats.dropped, 1u);
}

TEST(UpdateQueue, BlockingPushResumesAfterDrain) {
  UpdateQueueOptions options;
  options.capacity = 1;
  options.coalesce = false;
  UpdateQueue queue(options);
  ASSERT_TRUE(queue.Push(Add(1, 2)));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(Add(3, 4)));  // blocks until the drain below
    second_pushed.store(true);
  });
  DrainedBatch batch;
  ASSERT_TRUE(queue.PopBatch(&batch));
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  ASSERT_TRUE(queue.PopBatch(&batch));
  EXPECT_EQ(batch.updates[0].u, 3u);
}

TEST(UpdateQueue, CloseUnblocksProducerAndDrainsRemainder) {
  UpdateQueueOptions options;
  options.capacity = 1;
  UpdateQueue queue(options);
  ASSERT_TRUE(queue.Push(Add(1, 2)));
  std::thread producer([&] {
    EXPECT_FALSE(queue.Push(Add(3, 4)));  // blocked, then rejected by Close
  });
  // Give the producer a moment to block, then close.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.Close();
  producer.join();
  DrainedBatch batch;
  ASSERT_TRUE(queue.PopBatch(&batch));  // queued update survives Close
  EXPECT_EQ(batch.consumed, 1u);
  EXPECT_FALSE(queue.PopBatch(&batch));  // closed and empty: exit signal
}

TEST(UpdateQueue, SetCapacityTightensNewPushesWithoutDroppingQueued) {
  UpdateQueueOptions options;
  options.capacity = 8;
  options.drop_when_full = true;
  options.coalesce = false;
  UpdateQueue queue(options);
  for (VertexId i = 0; i < 6; ++i) ASSERT_TRUE(queue.Push(Add(i, i + 10)));
  queue.SetCapacity(2);  // below the current depth of 6
  EXPECT_EQ(queue.capacity(), 2u);
  EXPECT_FALSE(queue.Push(Add(90, 91)));  // new pushes see the tight bound
  std::size_t drained = 0;
  DrainedBatch batch;
  while (queue.depth() > 0 && queue.PopBatch(&batch)) {
    drained += batch.consumed;  // nothing queued was dropped
  }
  EXPECT_EQ(drained, 6u);
  EXPECT_EQ(queue.stats().dropped, 1u);
  queue.SetCapacity(0);  // clamps to 1 instead of wedging every producer
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_TRUE(queue.Push(Add(92, 93)));
}

TEST(UpdateQueue, CloseRacingDropModeProducersNeverOvercounts) {
  // Drop mode under a mid-burst Close: every Push returns promptly (drop
  // mode never blocks), and the accepted count — the number of true
  // returns — must exactly equal what the stats report and what drains
  // out. An overcount here would become a Drain target the writer can
  // never reach.
  UpdateQueueOptions options;
  options.capacity = 8;
  options.drop_when_full = true;
  options.coalesce = false;
  UpdateQueue queue(options);
  constexpr int kProducers = 4;
  std::atomic<std::size_t> accepted{0};
  std::atomic<std::size_t> attempted{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      // Push until Close lands mid-burst, so the close genuinely races
      // live producers.
      for (VertexId i = 0; !queue.closed(); ++i) {
        attempted.fetch_add(1);
        if (queue.Push(
                Add(static_cast<VertexId>(p) * 1000000 + i,
                    static_cast<VertexId>(100000 + p)))) {
          accepted.fetch_add(1);
        }
      }
    });
  }
  std::size_t drained = 0;
  DrainedBatch batch;
  std::thread consumer([&] {
    // Drain a little, close mid-burst, then drain the remainder.
    for (int i = 0; i < 3 && queue.PopBatch(&batch); ++i) {
      drained += batch.consumed;
    }
    queue.Close();
    while (queue.PopBatch(&batch)) drained += batch.consumed;
  });
  for (std::thread& t : producers) t.join();
  consumer.join();
  const UpdateQueueStats stats = queue.stats();
  EXPECT_EQ(stats.received, accepted.load());
  EXPECT_EQ(drained, accepted.load());
  EXPECT_LE(stats.dropped, attempted.load() - accepted.load());
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(UpdateQueue, CloseRacingBlockedProducersUnblocksAndAccountsExactly) {
  // Block mode: producers wedge against a tiny capacity while the
  // consumer drains slowly, then Close lands mid-flight. No Push may
  // block forever afterwards, and the accepted count must equal exactly
  // what drains out — rejected pushes leave no residue.
  UpdateQueueOptions options;
  options.capacity = 2;
  options.coalesce = false;
  UpdateQueue queue(options);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 100;
  std::atomic<std::size_t> accepted{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (queue.Push(Add(static_cast<VertexId>(p * kPerProducer + i),
                           static_cast<VertexId>(200000 + p)))) {
          accepted.fetch_add(1);
        }
      }
    });
  }
  std::size_t drained = 0;
  DrainedBatch batch;
  std::thread consumer([&] {
    for (int i = 0; i < 5 && queue.PopBatch(&batch); ++i) {
      drained += batch.consumed;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    queue.Close();  // producers blocked in Push must all return false now
    while (queue.PopBatch(&batch)) drained += batch.consumed;
  });
  // If Close failed to unblock a producer, these joins would hang the
  // test — the absence of a timeout is the assertion.
  for (std::thread& t : producers) t.join();
  consumer.join();
  const UpdateQueueStats stats = queue.stats();
  EXPECT_EQ(stats.received, accepted.load());
  EXPECT_EQ(drained, accepted.load());
  // Block mode rejects only at close; every rejection is accounted as a
  // drop, so attempted == accepted + dropped with nothing lost in between.
  EXPECT_EQ(stats.dropped,
            static_cast<std::uint64_t>(kProducers * kPerProducer) -
                accepted.load());
  EXPECT_FALSE(queue.Push(Add(1, 2)));  // closed stays closed
}

TEST(UpdateQueue, MultiProducerCountsAddUp) {
  UpdateQueueOptions options;
  options.capacity = 64;
  options.max_batch = 16;
  options.coalesce = false;
  UpdateQueue queue(options);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        // Distinct edges per producer so nothing could coalesce anyway.
        queue.Push(Add(static_cast<VertexId>(p * kPerProducer + i),
                       static_cast<VertexId>(100000 + p)));
      }
    });
  }
  std::size_t drained = 0;
  DrainedBatch batch;
  std::thread consumer([&] {
    while (queue.PopBatch(&batch)) drained += batch.consumed;
  });
  for (std::thread& t : producers) t.join();
  queue.Close();
  consumer.join();
  EXPECT_EQ(drained, static_cast<std::size_t>(kProducers * kPerProducer));
  const UpdateQueueStats stats = queue.stats();
  EXPECT_EQ(stats.received, static_cast<std::uint64_t>(drained));
  EXPECT_EQ(stats.drained, static_cast<std::uint64_t>(drained));
  EXPECT_LE(stats.max_depth, 64u);
}

}  // namespace
}  // namespace sobc
