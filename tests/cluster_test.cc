// End-to-end coverage of the cluster embodiment (DESIGN.md §13): a real
// ClusterCoordinator over real in-process ShardWorkers on loopback TCP,
// differentially verified against the single-process BcService on the
// same stream. The acceptance bar of the distributed-serving PR: N ∈
// {1, 2, 4} shards must match the single process within 1e-7 on add/remove
// churn — including a shard crash + checkpoint/WAL rejoin mid-stream —
// plus the failure ladder over the wire: chaos-transport partitions heal
// through the bounded reconnect path, an exhausted retry budget takes the
// coordinator read-only (snapshots keep serving), and a Degraded shard
// degrades the coordinator.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bc/brandes.h"
#include "cluster/chaos_transport.h"
#include "cluster/coordinator.h"
#include "cluster/shard_worker.h"
#include "cluster/transport.h"
#include "cluster/wire.h"
#include "common/fault_io.h"
#include "common/io.h"
#include "common/rng.h"
#include "gen/stream_generators.h"
#include "graph/graph.h"
#include "server/bc_service.h"
#include "tests/test_util.h"
#include "tests/testlib/scenarios.h"

namespace sobc {
namespace {

namespace fs = std::filesystem;

using testutil::ExpectScoresNear;
using testutil::RandomConnectedGraph;

constexpr double kTol = 1e-7;

/// Polls `cond` every 5ms until true or the timeout lapses.
bool WaitFor(const std::function<bool()>& cond, double timeout_seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return cond();
}

class ClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/sobc_cluster_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override {
    Io::Install(nullptr);
    fs::remove_all(root_);
  }

  ShardWorkerOptions WorkerOptions(std::size_t index, std::size_t count) {
    ShardWorkerOptions options;
    options.shard_index = index;
    options.shard_count = count;
    options.poll_seconds = 0.02;
    return options;
  }

  ClusterCoordinatorOptions CoordinatorOptions() {
    ClusterCoordinatorOptions options;
    // Small batches so a stream spans many epochs — the replay window,
    // resync, and merge paths all see real multi-epoch traffic.
    options.queue.max_batch = 8;
    options.queue.batch_latency_budget_seconds = 0.002;
    options.reconnect_backoff_seconds = 0.02;
    return options;
  }

  /// The single-process truth: the same stream through one BcService.
  std::shared_ptr<const ScoreSnapshot> ReferenceSnapshot(
      const Graph& base, const EdgeStream& stream) {
    BcServiceOptions options;
    options.queue.max_batch = 8;
    auto service = BcService::Create(Graph(base), options);
    EXPECT_TRUE(service.ok()) << service.status().ToString();
    EXPECT_EQ((*service)->SubmitAll(stream), stream.size());
    EXPECT_TRUE((*service)->Drain().ok());
    auto snap = (*service)->snapshot();
    EXPECT_TRUE((*service)->Stop().ok());
    return snap;
  }

  std::string root_;
};

// --- the acceptance differential --------------------------------------------

TEST_F(ClusterTest, ShardedClusterMatchesSingleProcessOnChurn) {
  const auto [base, stream] = testlib::ChurnScenario(
      /*seed=*/41, /*n=*/30, /*extra_edges=*/24, /*updates=*/60);
  const auto reference = ReferenceSnapshot(base, stream);

  for (std::size_t shards : {1u, 2u, 4u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    TcpTransport transport;
    std::vector<std::unique_ptr<ShardWorker>> workers;
    std::vector<std::string> addresses;
    for (std::size_t i = 0; i < shards; ++i) {
      auto worker = ShardWorker::Start(Graph(base), &transport, "127.0.0.1:0",
                                       WorkerOptions(i, shards));
      ASSERT_TRUE(worker.ok()) << worker.status().ToString();
      addresses.push_back((*worker)->address());
      workers.push_back(std::move(*worker));
    }

    auto coordinator = ClusterCoordinator::Connect(
        Graph(base), addresses, &transport, CoordinatorOptions());
    ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();

    // The bring-up snapshot is the merged Step-1 truth at epoch 0.
    const auto bringup = (*coordinator)->snapshot();
    EXPECT_EQ(bringup->epoch, 0u);
    ExpectScoresNear(ComputeBrandes(base),
                     BcScores{bringup->vbc, bringup->ebc}, kTol,
                     std::to_string(shards) + "-shard bring-up");

    EXPECT_EQ((*coordinator)->SubmitAll(stream), stream.size());
    ASSERT_TRUE((*coordinator)->Drain().ok())
        << (*coordinator)->last_error().ToString();

    const auto snap = (*coordinator)->snapshot();
    EXPECT_EQ(snap->stream_position, stream.size());
    EXPECT_EQ((*coordinator)->final_position(), stream.size());
    EXPECT_EQ((*coordinator)->health(), ServiceHealth::kHealthy);
    ExpectScoresNear(BcScores{reference->vbc, reference->ebc},
                     BcScores{snap->vbc, snap->ebc}, kTol,
                     std::to_string(shards) + "-shard cluster");
    EXPECT_EQ(snap->num_vertices, reference->num_vertices);
    EXPECT_EQ(snap->num_edges, reference->num_edges);

    // Epochs advanced in lockstep on every shard.
    for (const ShardStatus& status : (*coordinator)->shard_status()) {
      EXPECT_EQ(status.epoch, (*coordinator)->final_epoch());
      EXPECT_EQ(status.health, ServiceHealth::kHealthy);
      EXPECT_EQ(status.reconnects, 0u);
    }

    EXPECT_TRUE((*coordinator)->Stop().ok());
    // The clean shutdown reached every worker; Wait returns promptly.
    for (auto& worker : workers) {
      worker->Wait();
      EXPECT_TRUE(worker->Stop().ok());
    }
  }
}

TEST_F(ClusterTest, ShardCrashAndCheckpointRejoinMidStreamStillConverges) {
  const auto [base, stream] = testlib::ChurnScenario(
      /*seed=*/42, /*n=*/28, /*extra_edges=*/20, /*updates=*/48);
  const auto reference = ReferenceSnapshot(base, stream);

  TcpTransport transport;
  const std::size_t shards = 2;
  std::vector<std::unique_ptr<ShardWorker>> workers;
  std::vector<std::string> addresses;
  std::vector<ShardWorkerOptions> worker_options;
  for (std::size_t i = 0; i < shards; ++i) {
    ShardWorkerOptions options = WorkerOptions(i, shards);
    // Durable shards: the crashed one recovers from its base checkpoint +
    // WAL tail, exactly the process-kill path.
    const std::string tag = root_ + "/s" + std::to_string(i);
    options.service.durability.wal_dir = tag + "_wal";
    options.service.durability.checkpoint_dir = tag + "_cp";
    auto worker = ShardWorker::Start(Graph(base), &transport, "127.0.0.1:0",
                                     options);
    ASSERT_TRUE(worker.ok()) << worker.status().ToString();
    addresses.push_back((*worker)->address());
    workers.push_back(std::move(*worker));
    worker_options.push_back(options);
  }

  ClusterCoordinatorOptions options = CoordinatorOptions();
  options.shard_retry_seconds = 8.0;
  auto coordinator = ClusterCoordinator::Connect(Graph(base), addresses,
                                                 &transport, options);
  ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();

  const std::size_t half = stream.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    ASSERT_TRUE((*coordinator)->Submit(stream[i]));
  }
  ASSERT_TRUE((*coordinator)->Drain().ok());

  // Crash shard 1 the hard way: no clean shutdown, no final checkpoint.
  workers[1]->Halt();
  // Restart it on the same address from its durable state. The rejoin is
  // wire-driven: the handshake reports the recovered epoch and the
  // coordinator resends what the crash lost from its replay window.
  RecoveryInfo info;
  auto restarted = ShardWorker::Recover(&transport, addresses[1],
                                        worker_options[1], &info);
  ASSERT_TRUE(restarted.ok()) << restarted.status().ToString();
  EXPECT_TRUE(restarted->get()->range() == workers[1]->range());
  workers[1] = std::move(*restarted);

  for (std::size_t i = half; i < stream.size(); ++i) {
    ASSERT_TRUE((*coordinator)->Submit(stream[i]));
  }
  ASSERT_TRUE((*coordinator)->Drain().ok())
      << (*coordinator)->last_error().ToString();
  EXPECT_EQ((*coordinator)->health(), ServiceHealth::kHealthy);

  const auto snap = (*coordinator)->snapshot();
  EXPECT_EQ(snap->stream_position, stream.size());
  ExpectScoresNear(BcScores{reference->vbc, reference->ebc},
                   BcScores{snap->vbc, snap->ebc}, kTol,
                   "crash+rejoin cluster");

  const std::vector<ShardStatus> status = (*coordinator)->shard_status();
  ASSERT_EQ(status.size(), shards);
  EXPECT_GE(status[1].reconnects, 1u) << "the crash must have been healed "
                                         "through the reconnect path";
  EXPECT_EQ(status[1].epoch, (*coordinator)->final_epoch());
  EXPECT_EQ(status[0].reconnects, 0u);

  EXPECT_TRUE((*coordinator)->Stop().ok());
  for (auto& worker : workers) EXPECT_TRUE(worker->Stop().ok());
}

// --- failure ladder over the wire -------------------------------------------

TEST_F(ClusterTest, PartitionedShardHealsThroughBoundedReconnects) {
  const auto [base, stream] = testlib::ChurnScenario(
      /*seed=*/43, /*n=*/26, /*extra_edges=*/18, /*updates=*/48);
  const auto reference = ReferenceSnapshot(base, stream);

  TcpTransport inner;
  ChaosTransport chaos(&inner);
  const std::size_t shards = 2;
  std::vector<std::unique_ptr<ShardWorker>> workers;
  std::vector<std::string> addresses;
  for (std::size_t i = 0; i < shards; ++i) {
    auto worker = ShardWorker::Start(Graph(base), &inner, "127.0.0.1:0",
                                     WorkerOptions(i, shards));
    ASSERT_TRUE(worker.ok()) << worker.status().ToString();
    addresses.push_back((*worker)->address());
    workers.push_back(std::move(*worker));
  }

  // Every connection the coordinator makes to shard 0 dies after 3 frames
  // — repeated partitions mid-replication. Bring-up (hello + fetch = 2
  // frames) fits under the break; each replication connection then loses
  // its first ack and each reconnect makes at least one epoch of progress
  // (handshake + one resend/fetch fit under the break), so replication
  // keeps converging through the faults. The plan is armed before Connect
  // because ChaosTransport binds a plan to connections made after SetPlan.
  ChaosPlan plan;
  plan.drop_after_sends = 3;
  chaos.SetPlan(addresses[0], plan);

  ClusterCoordinatorOptions options = CoordinatorOptions();
  options.shard_retry_seconds = 8.0;
  auto coordinator = ClusterCoordinator::Connect(Graph(base), addresses,
                                                 &chaos, options);
  ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();

  EXPECT_EQ((*coordinator)->SubmitAll(stream), stream.size());
  ASSERT_TRUE((*coordinator)->Drain().ok())
      << (*coordinator)->last_error().ToString();
  EXPECT_EQ((*coordinator)->health(), ServiceHealth::kHealthy);

  const auto snap = (*coordinator)->snapshot();
  EXPECT_EQ(snap->stream_position, stream.size());
  ExpectScoresNear(BcScores{reference->vbc, reference->ebc},
                   BcScores{snap->vbc, snap->ebc}, kTol,
                   "partitioned cluster");

  const std::vector<ShardStatus> status = (*coordinator)->shard_status();
  EXPECT_GE(status[0].reconnects, 1u);
  EXPECT_EQ(status[1].reconnects, 0u);

  // Heal the plan so shutdown reaches shard 0 cleanly.
  chaos.SetPlan(addresses[0], ChaosPlan{});
  (void)(*coordinator)->Stop();
  for (auto& worker : workers) EXPECT_TRUE(worker->Stop().ok());
}

TEST_F(ClusterTest, ExhaustedRetryBudgetTakesTheCoordinatorReadOnly) {
  const auto [base, stream] = testlib::ChurnScenario(
      /*seed=*/44, /*n=*/24, /*extra_edges=*/16, /*updates=*/32);

  TcpTransport transport;
  const std::size_t shards = 2;
  std::vector<std::unique_ptr<ShardWorker>> workers;
  std::vector<std::string> addresses;
  for (std::size_t i = 0; i < shards; ++i) {
    auto worker = ShardWorker::Start(Graph(base), &transport, "127.0.0.1:0",
                                     WorkerOptions(i, shards));
    ASSERT_TRUE(worker.ok()) << worker.status().ToString();
    addresses.push_back((*worker)->address());
    workers.push_back(std::move(*worker));
  }

  ClusterCoordinatorOptions options = CoordinatorOptions();
  options.shard_ack_timeout_seconds = 1.0;
  options.shard_retry_seconds = 0.5;
  options.connect_timeout_seconds = 0.5;
  auto coordinator = ClusterCoordinator::Connect(Graph(base), addresses,
                                                 &transport, options);
  ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();

  const std::size_t half = stream.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    ASSERT_TRUE((*coordinator)->Submit(stream[i]));
  }
  ASSERT_TRUE((*coordinator)->Drain().ok());
  const auto last_good = (*coordinator)->snapshot();

  // Kill shard 0 and never bring it back: the per-batch recovery loop
  // burns its whole retry budget on refused connects, and the coordinator
  // goes read-only instead of hanging.
  workers[0]->Halt();
  for (std::size_t i = half; i < stream.size(); ++i) {
    (void)(*coordinator)->Submit(stream[i]);
  }
  const Status drain = (*coordinator)->Drain();
  EXPECT_FALSE(drain.ok());
  EXPECT_EQ((*coordinator)->health(), ServiceHealth::kReadOnly);
  EXPECT_FALSE((*coordinator)->last_error().ok());

  // Read-only, not down: the last published merge still serves, and new
  // submissions are rejected fast.
  const auto snap = (*coordinator)->snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_GE(snap->stream_position, last_good->stream_position);
  EXPECT_FALSE((*coordinator)->Submit(stream[0]));

  const ServeMetricsSnapshot metrics = (*coordinator)->metrics();
  EXPECT_EQ(metrics.health, "readonly");
  EXPECT_FALSE(metrics.last_error.empty());

  EXPECT_FALSE((*coordinator)->Stop().ok());
  EXPECT_TRUE(workers[1]->Stop().ok());
}

TEST_F(ClusterTest, DegradedShardDegradesTheCoordinator) {
  const auto [base, stream] = testlib::ChurnScenario(
      /*seed=*/45, /*n=*/26, /*extra_edges=*/18, /*updates=*/40);
  const auto reference = ReferenceSnapshot(base, stream);

  TcpTransport transport;
  const std::size_t shards = 2;
  std::vector<std::unique_ptr<ShardWorker>> workers;
  std::vector<std::string> addresses;
  for (std::size_t i = 0; i < shards; ++i) {
    ShardWorkerOptions options = WorkerOptions(i, shards);
    const std::string tag = root_ + "/s" + std::to_string(i);
    options.service.durability.wal_dir = tag + "_wal";
    // Only shard 0's checkpoint dir carries the fault filter substring, so
    // the process-global fault Io hits exactly one shard.
    options.service.durability.checkpoint_dir =
        tag + (i == 0 ? "_faultckpt" : "_cp");
    options.service.durability.checkpoint_every_updates = 8;
    options.service.durability.wal_fsync_every = 0;
    auto worker = ShardWorker::Start(Graph(base), &transport, "127.0.0.1:0",
                                     options);
    ASSERT_TRUE(worker.ok()) << worker.status().ToString();
    addresses.push_back((*worker)->address());
    workers.push_back(std::move(*worker));
  }

  auto coordinator = ClusterCoordinator::Connect(Graph(base), addresses,
                                                 &transport,
                                                 CoordinatorOptions());
  ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();

  {
    // Armed after bring-up: the next background checkpoint under shard 0's
    // checkpoint dir hits ENOSPC and degrades that shard; the degradation
    // must ride the next ack to the coordinator.
    FaultInjectingIo fault(*FaultSchedule::Parse("fsync~faultckpt@1=ENOSPC"));
    Io::Install(&fault);

    const std::size_t half = stream.size() / 2;
    for (std::size_t i = 0; i < half; ++i) {
      ASSERT_TRUE((*coordinator)->Submit(stream[i]));
    }
    ASSERT_TRUE((*coordinator)->Drain().ok());
    // Let shard 0's background checkpoint fail, then drive more batches so
    // its session observes the failure and acks with degraded health.
    (void)workers[0]->service()->QuiesceCheckpoints();
    for (std::size_t i = half; i < stream.size(); ++i) {
      ASSERT_TRUE((*coordinator)->Submit(stream[i]))
          << "a degraded cluster must keep accepting updates";
    }
    ASSERT_TRUE((*coordinator)->Drain().ok())
        << (*coordinator)->last_error().ToString();
    // Both shards' background checkpoint threads run through the
    // process-global Io; they must be idle before the fault Io dies.
    for (auto& worker : workers) (void)worker->service()->QuiesceCheckpoints();
    Io::Install(nullptr);
  }

  EXPECT_EQ(workers[0]->service()->health(), ServiceHealth::kDegraded);
  EXPECT_EQ((*coordinator)->health(), ServiceHealth::kDegraded);
  EXPECT_FALSE((*coordinator)->last_error().ok());

  const std::vector<ShardStatus> status = (*coordinator)->shard_status();
  EXPECT_EQ(status[0].health, ServiceHealth::kDegraded);
  EXPECT_EQ(status[1].health, ServiceHealth::kHealthy);

  // Degraded serving stayed correct the whole time.
  const auto snap = (*coordinator)->snapshot();
  EXPECT_EQ(snap->stream_position, stream.size());
  ExpectScoresNear(BcScores{reference->vbc, reference->ebc},
                   BcScores{snap->vbc, snap->ebc}, kTol, "degraded cluster");
  const ServeMetricsSnapshot metrics = (*coordinator)->metrics();
  EXPECT_EQ(metrics.health, "degraded");

  (void)(*coordinator)->Stop();
  for (auto& worker : workers) (void)worker->Stop();
}

// --- bring-up validation and the exactly-once contract ----------------------

TEST_F(ClusterTest, ConnectRefusesAnIncompleteShardRoster) {
  Rng rng(46);
  const Graph base = RandomConnectedGraph(20, 12, &rng);
  TcpTransport transport;
  // Two workers that each believe they are half of a 2-shard cluster...
  std::vector<std::unique_ptr<ShardWorker>> workers;
  std::vector<std::string> addresses;
  for (std::size_t i = 0; i < 2; ++i) {
    auto worker = ShardWorker::Start(Graph(base), &transport, "127.0.0.1:0",
                                     WorkerOptions(i, 2));
    ASSERT_TRUE(worker.ok()) << worker.status().ToString();
    addresses.push_back((*worker)->address());
    workers.push_back(std::move(*worker));
  }
  // ...must be refused when the coordinator was only given one of them:
  // the shard map would not tile the source space.
  auto partial = ClusterCoordinator::Connect(
      Graph(base), {addresses[0]}, &transport, CoordinatorOptions());
  EXPECT_FALSE(partial.ok());

  // And a graph that does not match what the shards were started with is
  // refused at the handshake, before any batch flows.
  Graph other = RandomConnectedGraph(21, 12, &rng);
  auto mismatched = ClusterCoordinator::Connect(
      std::move(other), addresses, &transport, CoordinatorOptions());
  EXPECT_FALSE(mismatched.ok());

  for (auto& worker : workers) EXPECT_TRUE(worker->Stop().ok());
}

TEST_F(ClusterTest, ReplicatedApplyIsExactlyOnceUnderRetries) {
  const auto [base, stream] = testlib::ChurnScenario(
      /*seed=*/47, /*n=*/16, /*extra_edges=*/10, /*updates=*/6,
      /*remove_fraction=*/0.0);

  BcServiceOptions options;
  options.replicated = true;
  auto service = BcService::Create(Graph(base), options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  // Replicated mode has no internal coalescing point; Submit rejects.
  EXPECT_FALSE((*service)->Submit(stream[0]));

  std::span<const EdgeUpdate> all(stream);
  ASSERT_TRUE((*service)->ApplyReplicatedBatch(1, 3, all.subspan(0, 3)).ok());
  EXPECT_EQ((*service)->final_epoch(), 1u);
  const auto after_first = (*service)->snapshot();

  // A duplicate delivery (the coordinator lost the ack and resent) is a
  // silent no-op: same epoch, same published scores.
  ASSERT_TRUE((*service)->ApplyReplicatedBatch(1, 3, all.subspan(0, 3)).ok());
  EXPECT_EQ((*service)->final_epoch(), 1u);
  EXPECT_EQ((*service)->snapshot()->stream_position,
            after_first->stream_position);

  // A gap is refused — the coordinator must backfill epoch 2 first.
  const Status gap = (*service)->ApplyReplicatedBatch(3, 6, all.subspan(3));
  EXPECT_FALSE(gap.ok());
  EXPECT_EQ(gap.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ((*service)->final_epoch(), 1u);

  // The contiguous next epoch lands normally after the refused gap.
  ASSERT_TRUE((*service)->ApplyReplicatedBatch(2, 6, all.subspan(3)).ok());
  EXPECT_EQ((*service)->final_epoch(), 2u);
  EXPECT_EQ((*service)->final_position(), 6u);
  EXPECT_EQ((*service)->health(), ServiceHealth::kHealthy);
  EXPECT_TRUE((*service)->Stop().ok());
}

// --- coordinator failover ---------------------------------------------------

// The tentpole acceptance: hard-kill the primary at 10 different points in
// the stream; every trial the warm standby must take over, resume exactly
// where its tailed window stands (no lost and no duplicated epochs — the
// shards' dedupe + gap refusal make the reconciliation exactly-once), and
// finish the stream to the same scores as the single process.
TEST_F(ClusterTest, CoordinatorFailoverAtRandomKillPoints) {
  const auto [base, stream] = testlib::ChurnScenario(
      /*seed=*/48, /*n=*/24, /*extra_edges=*/18, /*updates=*/40);
  Rng rng(48);  // kill-point schedule only; the scenario is seed-complete
  const auto reference = ReferenceSnapshot(base, stream);

  for (int trial = 0; trial < 10; ++trial) {
    SCOPED_TRACE("trial=" + std::to_string(trial));
    TcpTransport transport;
    const std::size_t shards = 2;
    std::vector<std::unique_ptr<ShardWorker>> workers;
    std::vector<std::string> addresses;
    for (std::size_t i = 0; i < shards; ++i) {
      auto worker = ShardWorker::Start(Graph(base), &transport, "127.0.0.1:0",
                                       WorkerOptions(i, shards));
      ASSERT_TRUE(worker.ok()) << worker.status().ToString();
      addresses.push_back((*worker)->address());
      workers.push_back(std::move(*worker));
    }

    ClusterCoordinatorOptions options = CoordinatorOptions();
    options.standby_listen = "127.0.0.1:0";
    options.heartbeat_interval_seconds = 0.05;
    options.lease_timeout_seconds = 1.0;
    options.shard_retry_seconds = 8.0;
    auto primary = ClusterCoordinator::Connect(Graph(base), addresses,
                                               &transport, options);
    ASSERT_TRUE(primary.ok()) << primary.status().ToString();
    ASSERT_FALSE((*primary)->standby_address().empty());

    auto standby = ClusterCoordinator::Standby(
        Graph(base), addresses, &transport, (*primary)->standby_address(),
        options);
    ASSERT_TRUE(standby.ok()) << standby.status().ToString();
    ASSERT_TRUE(WaitFor([&] { return (*primary)->standby_attached(); }, 10.0))
        << "standby never finished catching up";
    EXPECT_EQ((*standby)->role(),
              ClusterCoordinator::Role::kStandbyTailing);
    // A standby that has not taken over serves nothing and accepts nothing.
    EXPECT_EQ((*standby)->snapshot(), nullptr);
    EXPECT_FALSE((*standby)->Submit(stream[0]));

    // The kill point: a different published position each trial. The
    // primary dies crash-shaped — no shutdown frames — so the standby sees
    // the feed go silent and the shards see EOF.
    const std::size_t kill_at = 1 + rng.Next() % stream.size();
    EXPECT_EQ((*primary)->SubmitAll(stream), stream.size());
    ASSERT_TRUE(WaitFor(
        [&] { return (*primary)->final_position() >= kill_at; }, 20.0))
        << "primary never published position " << kill_at;
    (*primary)->Halt();

    const Status active = (*standby)->WaitUntilActive(30.0);
    ASSERT_TRUE(active.ok()) << active.ToString();
    EXPECT_EQ((*standby)->role(), ClusterCoordinator::Role::kStandbyActive);

    // Replicate-before-fanout: the standby's resume point can never be
    // behind anything the primary published.
    const std::uint64_t resume = (*standby)->final_position();
    EXPECT_GE(resume, kill_at);
    ASSERT_LE(resume, stream.size());
    for (std::size_t i = resume; i < stream.size(); ++i) {
      ASSERT_TRUE((*standby)->Submit(stream[i]));
    }
    ASSERT_TRUE((*standby)->Drain().ok())
        << (*standby)->last_error().ToString();

    const auto snap = (*standby)->snapshot();
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->stream_position, stream.size());
    EXPECT_EQ((*standby)->final_position(), stream.size());
    EXPECT_EQ((*standby)->health(), ServiceHealth::kHealthy);
    ExpectScoresNear(BcScores{reference->vbc, reference->ebc},
                     BcScores{snap->vbc, snap->ebc}, kTol,
                     "failover trial " + std::to_string(trial));

    // No shard lost or double-counted an epoch across the takeover.
    for (const ShardStatus& status : (*standby)->shard_status()) {
      EXPECT_EQ(status.epoch, (*standby)->final_epoch());
    }
    const ServeMetricsSnapshot metrics = (*standby)->metrics();
    EXPECT_EQ(metrics.failovers, 1u);
    EXPECT_GE(metrics.failover_gap_seconds, 0.0);

    EXPECT_TRUE((*standby)->Stop().ok());
    for (auto& worker : workers) {
      worker->Wait();
      EXPECT_TRUE(worker->Stop().ok());
    }
  }
}

// --- live rebalancing --------------------------------------------------------

// Split a shard in half while the stream keeps flowing, then merge it
// back, and at both waypoints the merged scores must match the
// single-process truth — the double-apply window and the atomic
// map-version commit never lose or double-count a batch.
TEST_F(ClusterTest, LiveSplitAndMergeUnderLoadMatchDifferential) {
  const auto [base, stream] = testlib::ChurnScenario(
      /*seed=*/49, /*n=*/30, /*extra_edges=*/24, /*updates=*/60);
  const auto reference = ReferenceSnapshot(base, stream);
  const std::size_t third = stream.size() / 3;
  const EdgeStream prefix(stream.begin(), stream.begin() + 2 * third);
  const auto mid_reference = ReferenceSnapshot(base, prefix);

  TcpTransport transport;
  const std::size_t shards = 2;
  std::vector<std::unique_ptr<ShardWorker>> workers;
  std::vector<std::string> addresses;
  for (std::size_t i = 0; i < shards; ++i) {
    auto worker = ShardWorker::Start(Graph(base), &transport, "127.0.0.1:0",
                                     WorkerOptions(i, shards));
    ASSERT_TRUE(worker.ok()) << worker.status().ToString();
    addresses.push_back((*worker)->address());
    workers.push_back(std::move(*worker));
  }

  ClusterCoordinatorOptions options = CoordinatorOptions();
  options.shard_retry_seconds = 8.0;
  auto coordinator = ClusterCoordinator::Connect(Graph(base), addresses,
                                                 &transport, options);
  ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();

  for (std::size_t i = 0; i < third; ++i) {
    ASSERT_TRUE((*coordinator)->Submit(stream[i]));
  }
  ASSERT_TRUE((*coordinator)->Drain().ok());

  // An empty worker waiting for the image; the split blocks until the
  // migration committed while the feeder keeps the stream flowing — some
  // batches MUST ride the double-apply window.
  auto recipient = ShardWorker::AwaitMigration(&transport, "127.0.0.1:0",
                                               WorkerOptions(0, 1));
  ASSERT_TRUE(recipient.ok()) << recipient.status().ToString();
  std::thread feeder([&] {
    for (std::size_t i = third; i < 2 * third; ++i) {
      EXPECT_TRUE((*coordinator)->Submit(stream[i]));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  const Status split = (*coordinator)->SplitShard(0, (*recipient)->address());
  feeder.join();
  ASSERT_TRUE(split.ok()) << split.ToString();
  ASSERT_TRUE((*coordinator)->Drain().ok())
      << (*coordinator)->last_error().ToString();

  {
    const std::vector<ShardStatus> status = (*coordinator)->shard_status();
    ASSERT_EQ(status.size(), 3u);
    for (const ShardStatus& shard : status) {
      EXPECT_FALSE(shard.joining) << "the commit must clear the handoff";
      EXPECT_EQ(shard.epoch, (*coordinator)->final_epoch());
    }
    EXPECT_EQ(status[1].address, (*recipient)->address());
    const auto snap = (*coordinator)->snapshot();
    EXPECT_EQ(snap->stream_position, prefix.size());
    ExpectScoresNear(BcScores{mid_reference->vbc, mid_reference->ebc},
                     BcScores{snap->vbc, snap->ebc}, kTol,
                     "post-split cluster");
    const ServeMetricsSnapshot metrics = (*coordinator)->metrics();
    EXPECT_EQ(metrics.migrations_started, 1u);
    EXPECT_EQ(metrics.migrations_completed, 1u);
    EXPECT_EQ(metrics.shard_map_version, 2u);
  }

  // Merge the split pair back under load: the survivor rescopes to the
  // union range and the recipient retires, again without a publication
  // landing between the rescope and the roster change.
  std::thread feeder2([&] {
    for (std::size_t i = 2 * third; i < stream.size(); ++i) {
      EXPECT_TRUE((*coordinator)->Submit(stream[i]));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  const Status merged = (*coordinator)->MergeShards(0);
  feeder2.join();
  ASSERT_TRUE(merged.ok()) << merged.ToString();
  ASSERT_TRUE((*coordinator)->Drain().ok())
      << (*coordinator)->last_error().ToString();

  const auto snap = (*coordinator)->snapshot();
  EXPECT_EQ(snap->stream_position, stream.size());
  EXPECT_EQ((*coordinator)->health(), ServiceHealth::kHealthy);
  ExpectScoresNear(BcScores{reference->vbc, reference->ebc},
                   BcScores{snap->vbc, snap->ebc}, kTol,
                   "post-merge cluster");
  const std::vector<ShardStatus> status = (*coordinator)->shard_status();
  ASSERT_EQ(status.size(), 2u);
  for (const ShardStatus& shard : status) {
    EXPECT_EQ(shard.epoch, (*coordinator)->final_epoch());
  }
  EXPECT_EQ((*coordinator)->metrics().shard_map_version, 3u);

  EXPECT_TRUE((*coordinator)->Stop().ok());
  // The merge retired the recipient with a clean shutdown.
  (*recipient)->Wait();
  EXPECT_TRUE((*recipient)->Stop().ok());
  for (auto& worker : workers) EXPECT_TRUE(worker->Stop().ok());
}

// --- shard-map versioning over the wire --------------------------------------

// Every range-carrying control frame must be refused when its map version
// is not strictly newer than what the shard already applied — a replayed
// plan or a delayed duplicate cannot silently re-cut ranges.
TEST_F(ClusterTest, StaleShardMapVersionIsRefusedOnEveryRangeFrame) {
  Rng rng(50);
  const Graph base = RandomConnectedGraph(20, 14, &rng);
  TcpTransport transport;
  auto worker = ShardWorker::Start(Graph(base), &transport, "127.0.0.1:0",
                                   WorkerOptions(0, 1));
  ASSERT_TRUE(worker.ok()) << worker.status().ToString();

  auto conn = transport.Connect((*worker)->address(), 5.0);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  const auto round_trip = [&](const std::string& frame) {
    Status sent = (*conn)->SendFrame(frame);
    EXPECT_TRUE(sent.ok()) << sent.ToString();
    std::string payload;
    Status received = (*conn)->RecvFrame(&payload, 10.0);
    EXPECT_TRUE(received.ok()) << received.ToString();
    return payload;
  };

  HelloMsg hello;
  hello.num_vertices = base.NumVertices();
  hello.num_edges = base.NumEdges();
  hello.directed = base.directed();
  {
    auto ack = DecodeHelloAck(round_trip(EncodeHello(hello)));
    ASSERT_TRUE(ack.ok()) << ack.status().ToString();
    EXPECT_EQ(ack->map_version, 0u) << "a fresh worker was never told";
  }

  // Version 1 against a never-told worker is strictly newer: applied.
  SplitRangeMsg shrink;
  shrink.map_version = 1;
  shrink.range = ShardRange{0, static_cast<VertexId>(base.NumVertices() / 2)};
  {
    auto ack = DecodeReplicateAck(round_trip(EncodeSplitRange(shrink)));
    ASSERT_TRUE(ack.ok()) << ack.status().ToString();
    EXPECT_TRUE(ack->ok) << ack->message;
  }
  {
    auto ack = DecodeHelloAck(round_trip(EncodeHello(hello)));
    ASSERT_TRUE(ack.ok());
    EXPECT_EQ(ack->map_version, 1u) << "the applied version must stick";
  }

  // The same version replayed — and an older one — are stale on every
  // range-carrying message type.
  {
    auto ack = DecodeReplicateAck(round_trip(EncodeSplitRange(shrink)));
    ASSERT_TRUE(ack.ok());
    EXPECT_FALSE(ack->ok);
    EXPECT_NE(ack->message.find("stale shard-map version"), std::string::npos)
        << ack->message;
  }
  MergeRangeMsg expand;
  expand.map_version = 1;
  expand.range = ShardRange{};  // full open-ended range
  {
    auto ack = DecodeReplicateAck(round_trip(EncodeMergeRange(expand)));
    ASSERT_TRUE(ack.ok());
    EXPECT_FALSE(ack->ok);
    EXPECT_NE(ack->message.find("stale shard-map version"), std::string::npos)
        << ack->message;
  }
  MigrateBeginMsg donate;
  donate.epoch = 0;  // matches, so the version check is what refuses
  donate.map_version = 1;
  donate.range = shrink.range;
  donate.recipient_address = "127.0.0.1:1";
  {
    auto ack = DecodeReplicateAck(round_trip(EncodeMigrateBegin(donate)));
    ASSERT_TRUE(ack.ok());
    EXPECT_FALSE(ack->ok);
    EXPECT_NE(ack->message.find("stale shard-map version"), std::string::npos)
        << ack->message;
  }

  // A strictly newer version still lands after the refusals.
  expand.map_version = 2;
  {
    auto ack = DecodeReplicateAck(round_trip(EncodeMergeRange(expand)));
    ASSERT_TRUE(ack.ok());
    EXPECT_TRUE(ack->ok) << ack->message;
  }
  EXPECT_TRUE((*worker)->range().open_ended());

  EXPECT_TRUE((*worker)->Stop().ok());
}

// --- chaos: duplication and delay --------------------------------------------

// A retransmitting path delivers every coordinator frame twice; the
// shard-side epoch dedupe must absorb the duplicates — each one acked,
// none applied twice.
TEST_F(ClusterTest, DuplicatedApplyFramesAreIdempotentOverTheWire) {
  const auto [base, stream] = testlib::ChurnScenario(
      /*seed=*/51, /*n=*/18, /*extra_edges=*/12, /*updates=*/6,
      /*remove_fraction=*/0.0);

  TcpTransport inner;
  ChaosTransport chaos(&inner);
  auto worker = ShardWorker::Start(Graph(base), &inner, "127.0.0.1:0",
                                   WorkerOptions(0, 1));
  ASSERT_TRUE(worker.ok()) << worker.status().ToString();

  ChaosPlan plan;
  plan.duplicate_sends = 8;  // every frame this test sends goes out twice
  chaos.SetPlan((*worker)->address(), plan);
  auto conn = chaos.Connect((*worker)->address(), 5.0);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();

  const auto recv = [&] {
    std::string payload;
    Status received = (*conn)->RecvFrame(&payload, 10.0);
    EXPECT_TRUE(received.ok()) << received.ToString();
    return payload;
  };

  HelloMsg hello;
  hello.num_vertices = base.NumVertices();
  hello.num_edges = base.NumEdges();
  hello.directed = base.directed();
  ASSERT_TRUE((*conn)->SendFrame(EncodeHello(hello)).ok());
  // The duplicated Hello earns two identical acks.
  auto ack1 = DecodeHelloAck(recv());
  auto ack2 = DecodeHelloAck(recv());
  ASSERT_TRUE(ack1.ok() && ack2.ok());
  EXPECT_EQ(ack1->epoch, ack2->epoch);

  ApplyMsg apply;
  apply.epoch = 1;
  apply.stream_position = 3;
  apply.updates.assign(stream.begin(), stream.begin() + 3);
  ASSERT_TRUE((*conn)->SendFrame(EncodeApply(apply)).ok());
  auto first = DecodeApplyAck(recv());
  auto duplicate = DecodeApplyAck(recv());
  ASSERT_TRUE(first.ok() && duplicate.ok());
  EXPECT_TRUE(first->ok) << first->message;
  EXPECT_TRUE(duplicate->ok) << "the duplicate must be a silent no-op, not "
                                "an error: " << duplicate->message;
  EXPECT_EQ(first->epoch, 1u);
  EXPECT_EQ(duplicate->epoch, 1u);
  // Same cumulative partial on both acks: the duplicate applied nothing.
  ExpectScoresNear(first->partial, duplicate->partial, 0.0,
                   "duplicated apply ack");
  EXPECT_EQ((*worker)->service()->final_epoch(), 1u);
  EXPECT_EQ((*worker)->service()->final_position(), 3u);

  // The next real epoch still lands exactly once after the duplicates.
  apply.epoch = 2;
  apply.stream_position = 6;
  apply.updates.assign(stream.begin() + 3, stream.end());
  ASSERT_TRUE((*conn)->SendFrame(EncodeApply(apply)).ok());
  auto next = DecodeApplyAck(recv());
  auto next_duplicate = DecodeApplyAck(recv());
  ASSERT_TRUE(next.ok() && next_duplicate.ok());
  EXPECT_TRUE(next->ok && next_duplicate->ok);
  EXPECT_EQ((*worker)->service()->final_epoch(), 2u);
  EXPECT_EQ((*worker)->service()->final_position(), 6u);

  EXPECT_TRUE((*worker)->Stop().ok());
}

// A slow link (per-frame send delay) must change nothing but latency: the
// cluster converges to the exact single-process scores with no reconnects.
TEST_F(ClusterTest, DelayedFramesOnlySlowTheClusterNotItsAnswers) {
  const auto [base, stream] = testlib::ChurnScenario(
      /*seed=*/52, /*n=*/24, /*extra_edges=*/16, /*updates=*/24);
  const auto reference = ReferenceSnapshot(base, stream);

  TcpTransport inner;
  ChaosTransport chaos(&inner);
  const std::size_t shards = 2;
  std::vector<std::unique_ptr<ShardWorker>> workers;
  std::vector<std::string> addresses;
  for (std::size_t i = 0; i < shards; ++i) {
    auto worker = ShardWorker::Start(Graph(base), &inner, "127.0.0.1:0",
                                     WorkerOptions(i, shards));
    ASSERT_TRUE(worker.ok()) << worker.status().ToString();
    addresses.push_back((*worker)->address());
    workers.push_back(std::move(*worker));
  }

  ChaosPlan plan;
  plan.send_delay_seconds = 0.002;
  chaos.SetPlan(addresses[0], plan);

  auto coordinator = ClusterCoordinator::Connect(Graph(base), addresses,
                                                 &chaos,
                                                 CoordinatorOptions());
  ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();
  EXPECT_EQ((*coordinator)->SubmitAll(stream), stream.size());
  ASSERT_TRUE((*coordinator)->Drain().ok())
      << (*coordinator)->last_error().ToString();

  const auto snap = (*coordinator)->snapshot();
  EXPECT_EQ(snap->stream_position, stream.size());
  ExpectScoresNear(BcScores{reference->vbc, reference->ebc},
                   BcScores{snap->vbc, snap->ebc}, kTol, "delayed cluster");
  for (const ShardStatus& status : (*coordinator)->shard_status()) {
    EXPECT_EQ(status.reconnects, 0u) << "delay is not a failure";
  }

  EXPECT_TRUE((*coordinator)->Stop().ok());
  for (auto& worker : workers) EXPECT_TRUE(worker->Stop().ok());
}

}  // namespace
}  // namespace sobc
