#include "gen/generators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "analysis/connected_components.h"
#include "analysis/graph_stats.h"
#include "common/rng.h"
#include "gen/dataset_profiles.h"
#include "gen/social_generator.h"
#include "gen/stream_generators.h"

namespace sobc {
namespace {

TEST(ErdosRenyiTest, ProducesRequestedSize) {
  Rng rng(1);
  Graph g = GenerateErdosRenyi(100, 300, &rng);
  EXPECT_EQ(g.NumVertices(), 100u);
  EXPECT_EQ(g.NumEdges(), 300u);
}

TEST(ErdosRenyiTest, CapsAtCompleteGraph) {
  Rng rng(2);
  Graph g = GenerateErdosRenyi(5, 1000, &rng);
  EXPECT_EQ(g.NumEdges(), 10u);
}

TEST(BarabasiAlbertTest, ConnectedAndSkewed) {
  Rng rng(3);
  Graph g = GenerateBarabasiAlbert(500, 3, &rng);
  EXPECT_EQ(g.NumVertices(), 500u);
  EXPECT_EQ(NumComponents(g), 1u);
  std::size_t max_degree = 0;
  for (VertexId v = 0; v < 500; ++v) {
    max_degree = std::max(max_degree, g.Degree(v));
  }
  // Preferential attachment produces hubs far above the mean degree (~6).
  EXPECT_GT(max_degree, 20u);
}

TEST(WattsStrogatzTest, LatticeIsHighlyClustered) {
  Rng rng(4);
  Graph lattice = GenerateWattsStrogatz(200, 4, 0.0, &rng);
  Graph rewired = GenerateWattsStrogatz(200, 4, 1.0, &rng);
  const double cc_lattice = AverageClustering(lattice);
  const double cc_rewired = AverageClustering(rewired);
  EXPECT_GT(cc_lattice, 0.5);  // ring lattice clustering is 0.6 for k=4
  EXPECT_LT(cc_rewired, cc_lattice / 3.0);
}

TEST(RandomTreeTest, ExactlyTreeEdgesAndConnected) {
  Rng rng(5);
  Graph g = GenerateRandomTree(64, &rng);
  EXPECT_EQ(g.NumEdges(), 63u);
  EXPECT_EQ(NumComponents(g), 1u);
}

TEST(SocialGeneratorTest, MatchesPaperCalibration) {
  Rng rng(6);
  Graph g = GenerateSocialGraph(2000, SocialGraphParams::PaperDefaults(), &rng);
  EXPECT_EQ(g.NumVertices(), 2000u);
  EXPECT_EQ(NumComponents(g), 1u);
  const double ad = AverageDegree(g);
  EXPECT_GT(ad, 9.0);   // paper target ~11.8
  EXPECT_LT(ad, 14.0);
  const double cc = AverageClustering(g);
  EXPECT_GT(cc, 0.12);  // paper target ~0.2
  EXPECT_LT(cc, 0.35);
}

TEST(SocialGeneratorTest, ClosureRaisesClustering) {
  Rng rng(7);
  SocialGraphParams open;
  open.triangle_probability = 0.0;
  SocialGraphParams closed;
  closed.triangle_probability = 0.9;
  Graph g_open = GenerateSocialGraph(1000, open, &rng);
  Graph g_closed = GenerateSocialGraph(1000, closed, &rng);
  EXPECT_GT(AverageClustering(g_closed), 2.0 * AverageClustering(g_open));
}

TEST(StreamGeneratorTest, AdditionStreamHasFreshDistinctNonEdges) {
  Rng rng(8);
  Graph g = GenerateErdosRenyi(50, 100, &rng);
  EdgeStream stream = RandomAdditionStream(g, 30, &rng);
  EXPECT_EQ(stream.size(), 30u);
  std::unordered_set<EdgeKey, EdgeKeyHash> seen;
  for (const EdgeUpdate& e : stream) {
    EXPECT_EQ(e.op, EdgeOp::kAdd);
    EXPECT_FALSE(g.HasEdge(e.u, e.v));
    EXPECT_TRUE(seen.insert(g.MakeKey(e.u, e.v)).second);
  }
}

TEST(StreamGeneratorTest, RemovalStreamPicksDistinctExistingEdges) {
  Rng rng(9);
  Graph g = GenerateErdosRenyi(40, 80, &rng);
  EdgeStream stream = RandomRemovalStream(g, 20, &rng);
  EXPECT_EQ(stream.size(), 20u);
  std::unordered_set<EdgeKey, EdgeKeyHash> seen;
  for (const EdgeUpdate& e : stream) {
    EXPECT_EQ(e.op, EdgeOp::kRemove);
    EXPECT_TRUE(g.HasEdge(e.u, e.v));
    EXPECT_TRUE(seen.insert(g.MakeKey(e.u, e.v)).second);
  }
}

TEST(StreamGeneratorTest, RemovalStreamCapsAtEdgeCount) {
  Rng rng(10);
  Graph g;
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  EdgeStream stream = RandomRemovalStream(g, 10, &rng);
  EXPECT_EQ(stream.size(), 2u);
}

TEST(StreamGeneratorTest, MixedStreamAppliesCleanly) {
  Rng rng(11);
  Graph g = GenerateErdosRenyi(30, 60, &rng);
  EdgeStream stream = MixedUpdateStream(g, 40, 0.5, &rng);
  EXPECT_EQ(stream.size(), 40u);
  Graph replay = g;
  for (const EdgeUpdate& e : stream) {
    if (e.op == EdgeOp::kAdd) {
      EXPECT_TRUE(replay.AddEdge(e.u, e.v).ok());
    } else {
      EXPECT_TRUE(replay.RemoveEdge(e.u, e.v).ok());
    }
  }
}

TEST(StreamGeneratorTest, ArrivalTimesAreMonotone) {
  Rng rng(12);
  Graph g = GenerateErdosRenyi(20, 30, &rng);
  EdgeStream stream = RandomAdditionStream(g, 15, &rng);
  StampArrivalTimes(&stream, {0.0, 1.0}, 100.0, &rng);
  EXPECT_DOUBLE_EQ(stream.front().timestamp, 100.0);
  for (std::size_t i = 1; i < stream.size(); ++i) {
    EXPECT_GT(stream[i].timestamp, stream[i - 1].timestamp);
  }
}

TEST(DatasetProfilesTest, TableTwoRowsPresent) {
  const auto& profiles = RealGraphProfiles();
  ASSERT_EQ(profiles.size(), 6u);
  EXPECT_NE(FindProfile("facebook"), nullptr);
  EXPECT_NE(FindProfile("amazon"), nullptr);
  EXPECT_NE(FindProfile("ca-GrQc"), nullptr);  // Table 3 list
  EXPECT_EQ(FindProfile("not-a-dataset"), nullptr);
}

TEST(DatasetProfilesTest, BuildsAtRequestedScale) {
  Rng rng(13);
  const DatasetProfile* fb = FindProfile("facebook");
  ASSERT_NE(fb, nullptr);
  Graph g = BuildProfileGraph(*fb, 500, &rng);
  EXPECT_EQ(g.NumVertices(), 500u);
  EXPECT_GT(AverageClustering(g), 0.1);  // facebook is the high-CC regime
}

TEST(DatasetProfilesTest, TreePlusMatchesDensityAndLowClustering) {
  Rng rng(14);
  const DatasetProfile* amz = FindProfile("amazon");
  ASSERT_NE(amz, nullptr);
  Graph g = BuildProfileGraph(*amz, 1000, &rng);
  const double ratio = static_cast<double>(g.NumEdges()) / 1000.0;
  EXPECT_NEAR(ratio, amz->EdgeRatio(), 0.4);
  EXPECT_LT(AverageClustering(g), 0.05);
  EXPECT_EQ(NumComponents(g), 1u);  // tree backbone keeps it connected
}

TEST(DatasetProfilesTest, SyntheticProfileFollowsTableTwo) {
  const DatasetProfile p = SyntheticSocialProfile(10000);
  EXPECT_EQ(p.paper_vertices, 10000u);
  EXPECT_NEAR(p.EdgeRatio(), 5.9, 0.1);  // AD ~11.8
}

TEST(DatasetProfilesTest, HighAndLowClusteringRegimesDiffer) {
  Rng rng(15);
  const DatasetProfile* dblp = FindProfile("dblp");
  const DatasetProfile* slashdot = FindProfile("slashdot");
  ASSERT_NE(dblp, nullptr);
  ASSERT_NE(slashdot, nullptr);
  Graph g_dblp = BuildProfileGraph(*dblp, 800, &rng);
  Graph g_slash = BuildProfileGraph(*slashdot, 800, &rng);
  EXPECT_GT(AverageClustering(g_dblp), 5.0 * AverageClustering(g_slash));
}

}  // namespace
}  // namespace sobc
