#include "storage/wal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/crc32.h"

namespace sobc {
namespace {

namespace fs = std::filesystem;

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/sobc_wal_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static WalRecord MakeRecord(std::uint64_t epoch, std::uint64_t position,
                              std::size_t updates) {
    WalRecord record;
    record.epoch = epoch;
    record.stream_position = position;
    for (std::size_t i = 0; i < updates; ++i) {
      record.updates.push_back({static_cast<VertexId>(epoch * 100 + i),
                                static_cast<VertexId>(i + 1),
                                i % 2 == 0 ? EdgeOp::kAdd : EdgeOp::kRemove,
                                static_cast<double>(epoch) + 0.25 * i});
    }
    return record;
  }

  std::string OnlySegment() const {
    std::string found;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      EXPECT_TRUE(found.empty()) << "more than one segment";
      found = entry.path().string();
    }
    EXPECT_FALSE(found.empty());
    return found;
  }

  std::string dir_;
};

TEST_F(WalTest, RoundTripsRecordsIncludingEmptyBatches) {
  auto writer = WalWriter::Open(dir_, 1, {});
  ASSERT_TRUE(writer.ok());
  std::vector<WalRecord> written;
  std::uint64_t position = 0;
  for (std::uint64_t e = 1; e <= 5; ++e) {
    // Epoch 3 is a fully coalesced-away batch: no updates, position moves.
    const std::size_t updates = e == 3 ? 0 : e;
    position += updates + 2;
    written.push_back(MakeRecord(e, position, updates));
    ASSERT_TRUE((*writer)->Append(written.back()).ok());
  }
  EXPECT_EQ((*writer)->stats().appends, 5u);
  EXPECT_GT((*writer)->stats().bytes, 0u);

  auto replay = ReadWalForReplay(dir_, 0, /*truncate_torn_tail=*/false);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->torn_bytes, 0u);
  ASSERT_EQ(replay->records.size(), written.size());
  for (std::size_t i = 0; i < written.size(); ++i) {
    EXPECT_EQ(replay->records[i].epoch, written[i].epoch);
    EXPECT_EQ(replay->records[i].stream_position, written[i].stream_position);
    EXPECT_EQ(replay->records[i].updates, written[i].updates);
  }
}

TEST_F(WalTest, AfterEpochFiltersReplayedRecords) {
  auto writer = WalWriter::Open(dir_, 1, {});
  ASSERT_TRUE(writer.ok());
  for (std::uint64_t e = 1; e <= 6; ++e) {
    ASSERT_TRUE((*writer)->Append(MakeRecord(e, e * 3, 2)).ok());
  }
  auto replay = ReadWalForReplay(dir_, 4, false);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->records.size(), 2u);
  EXPECT_EQ(replay->records.front().epoch, 5u);
  EXPECT_EQ(replay->records.back().epoch, 6u);
}

TEST_F(WalTest, MissingDirReplaysEmpty) {
  auto replay = ReadWalForReplay(dir_ + "/never_created", 0, true);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->records.empty());
  auto has = WalDirHasSegments(dir_ + "/never_created");
  ASSERT_TRUE(has.ok());
  EXPECT_FALSE(*has);
}

TEST_F(WalTest, TornTailIsTruncatedAtEveryByteOffset) {
  // Write 4 records, then chop the segment at every byte length from just
  // past record 2 to the full file: replay must always yield exactly the
  // records whose frames survived intact, never an error.
  auto writer = WalWriter::Open(dir_, 1, {});
  ASSERT_TRUE(writer.ok());
  std::vector<std::uint64_t> frame_ends;  // file size after each append
  for (std::uint64_t e = 1; e <= 4; ++e) {
    ASSERT_TRUE((*writer)->Append(MakeRecord(e, e * 5, 3)).ok());
    frame_ends.push_back(fs::file_size(OnlySegment()));
  }
  writer->reset();
  const std::string segment = OnlySegment();
  fs::path backup = segment + ".bak";
  fs::copy_file(segment, backup);

  const std::uint64_t full = frame_ends.back();
  for (std::uint64_t cut = frame_ends[1]; cut <= full; ++cut) {
    fs::copy_file(backup, segment, fs::copy_options::overwrite_existing);
    fs::resize_file(segment, cut);
    auto replay = ReadWalForReplay(dir_, 0, /*truncate_torn_tail=*/true);
    ASSERT_TRUE(replay.ok()) << "cut at " << cut << ": "
                             << replay.status().ToString();
    std::size_t expect = 0;
    while (expect < frame_ends.size() && frame_ends[expect] <= cut) ++expect;
    ASSERT_EQ(replay->records.size(), expect) << "cut at " << cut;
    const bool clean_boundary =
        std::find(frame_ends.begin(), frame_ends.end(), cut) !=
        frame_ends.end();
    if (clean_boundary) {
      EXPECT_EQ(replay->torn_bytes, 0u) << "clean cut at " << cut;
    } else {
      EXPECT_GT(replay->torn_bytes, 0u) << "cut at " << cut;
      // Truncation is physical: a second replay sees a clean log.
      auto again = ReadWalForReplay(dir_, 0, false);
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(again->torn_bytes, 0u);
      EXPECT_EQ(again->records.size(), expect);
    }
  }
  fs::remove(backup);
}

TEST_F(WalTest, CorruptedPayloadByteStopsReplayAtThatFrame) {
  auto writer = WalWriter::Open(dir_, 1, {});
  ASSERT_TRUE(writer.ok());
  std::uint64_t second_frame_at = 0;
  for (std::uint64_t e = 1; e <= 3; ++e) {
    ASSERT_TRUE((*writer)->Append(MakeRecord(e, e, 4)).ok());
    if (e == 1) second_frame_at = fs::file_size(OnlySegment());
  }
  writer->reset();
  const std::string segment = OnlySegment();
  {
    // Flip one payload byte of frame 2 (skip its 8-byte frame header).
    std::fstream f(segment,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(second_frame_at) + 12);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5A);
    f.seekp(static_cast<std::streamoff>(second_frame_at) + 12);
    f.write(&byte, 1);
  }
  auto replay = ReadWalForReplay(dir_, 0, true);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->records.size(), 1u);
  EXPECT_EQ(replay->records.front().epoch, 1u);
  EXPECT_GT(replay->torn_bytes, 0u);
}

TEST_F(WalTest, CorruptionInNonFinalSegmentFailsLoudly) {
  auto writer = WalWriter::Open(dir_, 1, {});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(MakeRecord(1, 1, 3)).ok());
  ASSERT_TRUE((*writer)->Append(MakeRecord(2, 2, 3)).ok());
  const std::string first_segment = OnlySegment();
  ASSERT_TRUE((*writer)->Rotate(3).ok());
  ASSERT_TRUE((*writer)->Append(MakeRecord(3, 3, 3)).ok());
  writer->reset();
  {
    std::fstream f(first_segment,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(30);
    const char garbage = '\x7F';
    f.write(&garbage, 1);
  }
  auto replay = ReadWalForReplay(dir_, 0, true);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kIOError);
}

TEST_F(WalTest, RotationSplitsSegmentsAndPruneDropsCoveredOnes) {
  auto writer = WalWriter::Open(dir_, 1, {});
  ASSERT_TRUE(writer.ok());
  std::uint64_t epoch = 0;
  for (int segment = 0; segment < 3; ++segment) {
    for (int i = 0; i < 4; ++i) {
      ++epoch;
      ASSERT_TRUE((*writer)->Append(MakeRecord(epoch, epoch, 1)).ok());
    }
    if (segment < 2) ASSERT_TRUE((*writer)->Rotate(epoch + 1).ok());
  }
  EXPECT_EQ((*writer)->stats().rotations, 2u);

  // A checkpoint at epoch 8 covers the first two segments exactly.
  auto pruned = PruneWalSegments(dir_, 8);
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(*pruned, 2u);
  auto replay = ReadWalForReplay(dir_, 8, false);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->records.size(), 4u);
  EXPECT_EQ(replay->records.front().epoch, 9u);

  // Asking for history the prune dropped must fail, not silently skip.
  auto too_far_back = ReadWalForReplay(dir_, 4, false);
  ASSERT_FALSE(too_far_back.ok());

  // The newest segment survives pruning even when fully covered.
  auto none = PruneWalSegments(dir_, 12);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(*none, 0u);
  auto has = WalDirHasSegments(dir_);
  ASSERT_TRUE(has.ok());
  EXPECT_TRUE(*has);
}

TEST_F(WalTest, EpochGapAcrossSegmentsIsAnError) {
  {
    auto writer = WalWriter::Open(dir_, 1, {});
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(MakeRecord(1, 1, 1)).ok());
  }
  {
    // A second writer that skips epoch 2 — as if a segment vanished.
    auto writer = WalWriter::Open(dir_, 3, {});
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(MakeRecord(3, 3, 1)).ok());
  }
  auto replay = ReadWalForReplay(dir_, 0, false);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kIOError);
}

TEST_F(WalTest, FsyncPolicyCountsSyncs) {
  WalOptions options;
  options.fsync_every = 2;
  auto writer = WalWriter::Open(dir_, 1, options);
  ASSERT_TRUE(writer.ok());
  for (std::uint64_t e = 1; e <= 5; ++e) {
    ASSERT_TRUE((*writer)->Append(MakeRecord(e, e, 1)).ok());
  }
  EXPECT_EQ((*writer)->stats().syncs, 2u);  // after epochs 2 and 4
  ASSERT_TRUE((*writer)->Sync().ok());
  EXPECT_EQ((*writer)->stats().syncs, 3u);

  WalOptions never;
  never.fsync_every = 0;
  auto lazy = WalWriter::Open(dir_ + "_lazy", 1, never);
  ASSERT_TRUE(lazy.ok());
  for (std::uint64_t e = 1; e <= 5; ++e) {
    ASSERT_TRUE((*lazy)->Append(MakeRecord(e, e, 1)).ok());
  }
  EXPECT_EQ((*lazy)->stats().syncs, 0u);
  fs::remove_all(dir_ + "_lazy");
}

TEST_F(WalTest, Crc32MatchesKnownVector) {
  // The classic zlib check value.
  const char* data = "123456789";
  EXPECT_EQ(Crc32(data, 9), 0xCBF43926u);
  EXPECT_EQ(Crc32(data, 0), 0u);
  // Chained computation equals one-shot.
  EXPECT_EQ(Crc32(data + 4, 5, Crc32(data, 4)), 0xCBF43926u);
}

}  // namespace
}  // namespace sobc
