// Degenerate-input coverage for the score reduce tree — the merge the
// cluster coordinator leans on every batch. The interesting inputs are
// exactly the ones a cluster produces: a single shard (no merge at all),
// per-shard partials whose dirty vertex sets are disjoint (each shard owns
// a contiguous source range, so their contributions touch different
// vertices), partials of different vbc lengths (a shard that grew the
// graph mid-batch), and the serial-vs-pooled fold agreeing bit for bit.

#include <gtest/gtest.h>

#include <cstddef>
#include <span>
#include <vector>

#include "bc/bc_types.h"
#include "graph/graph.h"
#include "parallel/score_reduce.h"
#include "parallel/thread_pool.h"

namespace sobc {
namespace {

BcScores MakePartial(std::initializer_list<double> vbc,
                     std::initializer_list<std::pair<EdgeKey, double>> ebc) {
  BcScores scores;
  scores.vbc.assign(vbc);
  for (const auto& [key, value] : ebc) scores.ebc[key] = value;
  return scores;
}

std::vector<BcScores*> Pointers(std::vector<BcScores>* partials) {
  std::vector<BcScores*> out;
  for (BcScores& p : *partials) out.push_back(&p);
  return out;
}

TEST(ScoreReduceTest, ZeroPartialsIsANoOp) {
  std::vector<BcScores*> empty;
  TreeReduceScores(nullptr, empty);  // must not crash or dereference
  ThreadPool pool(2);
  TreeReduceScores(&pool, empty);
  EXPECT_TRUE(empty.empty());
}

TEST(ScoreReduceTest, SingleShardIsUntouched) {
  std::vector<BcScores> partials;
  partials.push_back(MakePartial({1.0, 2.5, 0.0}, {{EdgeKey{0, 1}, 3.0}}));
  auto pointers = Pointers(&partials);
  ThreadPool pool(2);
  TreeReduceScores(&pool, pointers);
  EXPECT_EQ(partials[0].vbc, (std::vector<double>{1.0, 2.5, 0.0}));
  ASSERT_EQ(partials[0].ebc.size(), 1u);
  EXPECT_EQ(partials[0].ebc.at(EdgeKey{0, 1}), 3.0);
}

TEST(ScoreReduceTest, DisjointDirtySetsConcatenateExactly) {
  // Three shards, each contributing to vertices/edges the others never
  // touch — the cluster's steady state. The merged result must be the
  // exact union: no contribution lost, none double-counted, and sums of
  // disjoint (one-sided) values are exact in floating point.
  std::vector<BcScores> partials;
  partials.push_back(
      MakePartial({1.0, 2.0, 0.0, 0.0, 0.0, 0.0}, {{EdgeKey{0, 1}, 7.0}}));
  partials.push_back(
      MakePartial({0.0, 0.0, 3.0, 4.0, 0.0, 0.0}, {{EdgeKey{2, 3}, 8.0}}));
  partials.push_back(
      MakePartial({0.0, 0.0, 0.0, 0.0, 5.0, 6.0}, {{EdgeKey{4, 5}, 9.0}}));
  auto pointers = Pointers(&partials);
  TreeReduceScores(nullptr, pointers);
  EXPECT_EQ(partials[0].vbc,
            (std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0, 6.0}));
  ASSERT_EQ(partials[0].ebc.size(), 3u);
  EXPECT_EQ(partials[0].ebc.at(EdgeKey{0, 1}), 7.0);
  EXPECT_EQ(partials[0].ebc.at(EdgeKey{2, 3}), 8.0);
  EXPECT_EQ(partials[0].ebc.at(EdgeKey{4, 5}), 9.0);
}

TEST(ScoreReduceTest, ShorterPartialGrowsToTheWidestVbc) {
  // A shard that saw a vertex-growing update reports a longer vbc than
  // one that has not published since; the merge must widen, not truncate.
  std::vector<BcScores> partials;
  partials.push_back(MakePartial({1.0}, {}));
  partials.push_back(MakePartial({0.5, 2.0, 3.0}, {}));
  auto pointers = Pointers(&partials);
  TreeReduceScores(nullptr, pointers);
  EXPECT_EQ(partials[0].vbc, (std::vector<double>{1.5, 2.0, 3.0}));
}

TEST(ScoreReduceTest, PooledTreeMatchesSerialFold) {
  // 7 shards (odd, forces uneven rounds) with overlapping contributions;
  // tree order must not change the result vs. the serial left fold,
  // bit for bit — every merge is an add of the same addends per slot in
  // the same round structure regardless of pool scheduling.
  auto build = [] {
    std::vector<BcScores> partials;
    for (std::size_t s = 0; s < 7; ++s) {
      BcScores p;
      p.vbc.assign(16, 0.0);
      for (std::size_t v = 0; v < 16; ++v) {
        p.vbc[v] = static_cast<double>((s * 31 + v * 7) % 13) * 0.25;
      }
      p.ebc[EdgeKey{0, static_cast<VertexId>(s + 1)}] = 1.0;
      p.ebc[EdgeKey{1, 2}] = static_cast<double>(s);
      partials.push_back(std::move(p));
    }
    return partials;
  };
  std::vector<BcScores> serial = build();
  auto serial_ptrs = Pointers(&serial);
  TreeReduceScores(nullptr, serial_ptrs);

  std::vector<BcScores> pooled = build();
  auto pooled_ptrs = Pointers(&pooled);
  ThreadPool pool(4);
  TreeReduceScores(&pool, pooled_ptrs);

  ASSERT_EQ(serial[0].vbc.size(), pooled[0].vbc.size());
  for (std::size_t v = 0; v < serial[0].vbc.size(); ++v) {
    // The tree re-associates additions, so allow one ulp-scale slack;
    // with these values both orders are exact anyway.
    EXPECT_DOUBLE_EQ(serial[0].vbc[v], pooled[0].vbc[v]) << "vertex " << v;
  }
  ASSERT_EQ(serial[0].ebc.size(), pooled[0].ebc.size());
  for (const auto& [key, value] : serial[0].ebc) {
    EXPECT_DOUBLE_EQ(value, pooled[0].ebc.at(key)) << "(" << key.u << ","
                                                   << key.v << ")";
  }
}

}  // namespace
}  // namespace sobc
