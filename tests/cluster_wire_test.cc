// Unit coverage for the cluster plumbing under the coordinator: shard-map
// partition math, wire-format encode/decode round-trips (including
// truncation and bogus-count corruption the bounds-checked reader must
// refuse), and the framed TCP transport over loopback — real frames, CRC
// verification against a byte flipped on the wire, and receive deadlines.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cluster/shard_map.h"
#include "cluster/transport.h"
#include "cluster/wire.h"
#include "common/crc32.h"

namespace sobc {
namespace {

// --- shard map --------------------------------------------------------------

TEST(ShardMapTest, RangesTileTheSourceSpace) {
  for (std::size_t n : {1u, 7u, 64u, 1000u}) {
    for (std::size_t shards : {1u, 2u, 3u, 5u, 8u}) {
      const std::vector<ShardRange> ranges = BuildShardMap(n, shards);
      ASSERT_EQ(ranges.size(), shards);
      EXPECT_EQ(ranges.front().begin, 0u);
      for (std::size_t i = 0; i + 1 < shards; ++i) {
        EXPECT_EQ(ranges[i].end, ranges[i + 1].begin)
            << "gap/overlap at shard " << i << " (n=" << n << ")";
      }
      // The last shard is open-ended so vertices added by later updates
      // always have an owner.
      EXPECT_TRUE(ranges.back().open_ended());
      EXPECT_TRUE(ValidateShardMap(ranges, n).ok());
      // Sizes differ by at most one across shards.
      for (std::size_t i = 0; i + 1 < shards; ++i) {
        const std::size_t size = ranges[i].end - ranges[i].begin;
        EXPECT_NEAR(static_cast<double>(size),
                    static_cast<double>(n) / shards, 1.0);
      }
    }
  }
}

TEST(ShardMapTest, ValidateRejectsBrokenTilings) {
  const VertexId end = kInvalidVertex;
  // Gap between shards.
  EXPECT_FALSE(
      ValidateShardMap({ShardRange{0, 5}, ShardRange{6, end}}, 10).ok());
  // Overlap.
  EXPECT_FALSE(
      ValidateShardMap({ShardRange{0, 5}, ShardRange{4, end}}, 10).ok());
  // First shard not starting at 0.
  EXPECT_FALSE(ValidateShardMap({ShardRange{1, end}}, 10).ok());
  // Last shard closed before n.
  EXPECT_FALSE(
      ValidateShardMap({ShardRange{0, 5}, ShardRange{5, 8}}, 10).ok());
  // Empty map.
  EXPECT_FALSE(ValidateShardMap({}, 10).ok());
}

TEST(ShardMapTest, CheckMapVersionRequiresStrictlyNewer) {
  // Strictly newer than current: accepted.
  EXPECT_TRUE(CheckMapVersion(2, 1, "split-range").ok());
  EXPECT_TRUE(CheckMapVersion(7, 3, "merge-range").ok());
  // Equal or older: a stale frame from a pre-rebalance coordinator.
  const Status equal = CheckMapVersion(3, 3, "split-range");
  EXPECT_FALSE(equal.ok());
  EXPECT_NE(equal.message().find("stale shard-map version"),
            std::string::npos);
  EXPECT_FALSE(CheckMapVersion(2, 3, "merge-range").ok());
  // 0 means "never told" and is never newer than anything.
  EXPECT_FALSE(CheckMapVersion(0, 0, "migrate-begin").ok());
  EXPECT_FALSE(CheckMapVersion(0, 5, "migrate-begin").ok());
}

TEST(ShardMapTest, ParseHostPort) {
  std::string host;
  int port = 0;
  ASSERT_TRUE(ParseHostPort("127.0.0.1:9000", &host, &port).ok());
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 9000);
  ASSERT_TRUE(ParseHostPort("localhost:0", &host, &port).ok());
  EXPECT_EQ(host, "localhost");
  EXPECT_EQ(port, 0);
  EXPECT_FALSE(ParseHostPort("no-port-here", &host, &port).ok());
  EXPECT_FALSE(ParseHostPort(":123", &host, &port).ok());
}

// --- wire format ------------------------------------------------------------

TEST(WireTest, HelloRoundTrip) {
  HelloMsg msg;
  msg.num_vertices = 12345;
  msg.num_edges = 67890;
  msg.directed = true;
  const std::string payload = EncodeHello(msg);
  auto type = PeekType(payload);
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(*type, MsgType::kHello);
  auto decoded = DecodeHello(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->protocol_version, kClusterProtocolVersion);
  EXPECT_EQ(decoded->num_vertices, 12345u);
  EXPECT_EQ(decoded->num_edges, 67890u);
  EXPECT_TRUE(decoded->directed);
}

TEST(WireTest, HelloAckRoundTrip) {
  HelloAckMsg msg;
  msg.shard_index = 2;
  msg.shard_count = 4;
  msg.range = ShardRange{50, 75};
  msg.epoch = 99;
  msg.stream_position = 1234;
  msg.health = 1;
  msg.num_vertices = 100;
  msg.num_edges = 200;
  msg.map_version = 6;
  const std::string payload = EncodeHelloAck(msg);
  auto decoded = DecodeHelloAck(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->map_version, 6u);
  EXPECT_EQ(decoded->shard_index, 2u);
  EXPECT_EQ(decoded->shard_count, 4u);
  EXPECT_TRUE(decoded->range == (ShardRange{50, 75}));
  EXPECT_EQ(decoded->epoch, 99u);
  EXPECT_EQ(decoded->stream_position, 1234u);
  EXPECT_EQ(decoded->health, 1);
  EXPECT_EQ(decoded->num_vertices, 100u);
  EXPECT_EQ(decoded->num_edges, 200u);
  EXPECT_FALSE(decoded->directed);
}

TEST(WireTest, ApplyRoundTripPreservesUpdates) {
  ApplyMsg msg;
  msg.epoch = 7;
  msg.stream_position = 321;
  msg.updates.push_back(EdgeUpdate{1, 2, EdgeOp::kAdd, 0.5});
  msg.updates.push_back(EdgeUpdate{9, 3, EdgeOp::kRemove, 1.25});
  const std::string payload = EncodeApply(msg);
  auto decoded = DecodeApply(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->epoch, 7u);
  EXPECT_EQ(decoded->stream_position, 321u);
  ASSERT_EQ(decoded->updates.size(), 2u);
  EXPECT_EQ(decoded->updates[0].u, 1u);
  EXPECT_EQ(decoded->updates[0].v, 2u);
  EXPECT_EQ(decoded->updates[0].op, EdgeOp::kAdd);
  EXPECT_EQ(decoded->updates[0].timestamp, 0.5);
  EXPECT_EQ(decoded->updates[1].u, 9u);
  EXPECT_EQ(decoded->updates[1].op, EdgeOp::kRemove);
}

TEST(WireTest, ApplyAckRoundTripCarriesPartialScores) {
  ApplyAckMsg msg;
  msg.epoch = 11;
  msg.stream_position = 500;
  msg.ok = false;
  msg.status_code = 6;  // kFailedPrecondition
  msg.message = "epoch gap";
  msg.health = 2;
  msg.sources_total = 40;
  msg.sources_prefiltered = 15;
  msg.partial.vbc = {0.0, 1.5, 2.25};
  msg.partial.ebc[EdgeKey{1, 2}] = 3.75;
  const std::string payload = EncodeApplyAck(msg);
  auto decoded = DecodeApplyAck(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->epoch, 11u);
  EXPECT_FALSE(decoded->ok);
  EXPECT_EQ(decoded->status_code, 6);
  EXPECT_EQ(decoded->message, "epoch gap");
  EXPECT_EQ(decoded->health, 2);
  EXPECT_EQ(decoded->sources_total, 40u);
  EXPECT_EQ(decoded->sources_prefiltered, 15u);
  EXPECT_EQ(decoded->partial.vbc, (std::vector<double>{0.0, 1.5, 2.25}));
  EXPECT_EQ(decoded->partial.ebc.at(EdgeKey{1, 2}), 3.75);
}

TEST(WireTest, PartialAndControlRoundTrips) {
  PartialMsg msg;
  msg.epoch = 3;
  msg.stream_position = 77;
  msg.health = 0;
  msg.partial.vbc = {4.0};
  const std::string payload = EncodePartial(msg);
  auto decoded = DecodePartial(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->epoch, 3u);
  EXPECT_EQ(decoded->partial.vbc, (std::vector<double>{4.0}));

  auto fetch = PeekType(EncodeFetch());
  ASSERT_TRUE(fetch.ok());
  EXPECT_EQ(*fetch, MsgType::kFetch);
  auto shutdown = PeekType(EncodeShutdown());
  ASSERT_TRUE(shutdown.ok());
  EXPECT_EQ(*shutdown, MsgType::kShutdown);
  auto shutdown_ack = PeekType(EncodeShutdownAck());
  ASSERT_TRUE(shutdown_ack.ok());
  EXPECT_EQ(*shutdown_ack, MsgType::kShutdownAck);
}

TEST(WireTest, ReplicateRoundTripAllKinds) {
  ReplicateMsg batch;
  batch.kind = ReplicateMsg::kBatch;
  batch.epoch = 42;
  batch.stream_position = 900;
  batch.updates.push_back(EdgeUpdate{3, 4, EdgeOp::kAdd, 1.0});
  auto type = PeekType(EncodeReplicate(batch));
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(*type, MsgType::kReplicate);
  auto decoded = DecodeReplicate(EncodeReplicate(batch));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->kind, ReplicateMsg::kBatch);
  EXPECT_EQ(decoded->epoch, 42u);
  EXPECT_EQ(decoded->stream_position, 900u);
  ASSERT_EQ(decoded->updates.size(), 1u);
  EXPECT_EQ(decoded->updates[0].v, 4u);

  ReplicateMsg boot;
  boot.kind = ReplicateMsg::kBootstrap;
  boot.epoch = 5;
  boot.stream_position = 123;
  boot.num_vertices = 64;
  boot.num_edges = 200;
  boot.directed = true;
  decoded = DecodeReplicate(EncodeReplicate(boot));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->kind, ReplicateMsg::kBootstrap);
  EXPECT_EQ(decoded->num_vertices, 64u);
  EXPECT_EQ(decoded->num_edges, 200u);
  EXPECT_TRUE(decoded->directed);

  ReplicateMsg heartbeat;
  heartbeat.kind = ReplicateMsg::kHeartbeat;
  decoded = DecodeReplicate(EncodeReplicate(heartbeat));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->kind, ReplicateMsg::kHeartbeat);
  EXPECT_TRUE(decoded->updates.empty());
}

TEST(WireTest, ReplicateAckRoundTrip) {
  ReplicateAckMsg msg;
  msg.epoch = 17;
  msg.ok = false;
  msg.message = "stale shard-map version";
  auto decoded = DecodeReplicateAck(EncodeReplicateAck(msg));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->epoch, 17u);
  EXPECT_FALSE(decoded->ok);
  EXPECT_EQ(decoded->message, "stale shard-map version");
}

TEST(WireTest, RebalanceControlRoundTrips) {
  SplitRangeMsg split;
  split.map_version = 2;
  split.range = ShardRange{0, 32};
  auto split_decoded = DecodeSplitRange(EncodeSplitRange(split));
  ASSERT_TRUE(split_decoded.ok()) << split_decoded.status().ToString();
  EXPECT_EQ(split_decoded->map_version, 2u);
  EXPECT_TRUE(split_decoded->range == (ShardRange{0, 32}));

  MergeRangeMsg merge;
  merge.map_version = 3;
  merge.range = ShardRange{0, kInvalidVertex};
  auto merge_decoded = DecodeMergeRange(EncodeMergeRange(merge));
  ASSERT_TRUE(merge_decoded.ok()) << merge_decoded.status().ToString();
  EXPECT_EQ(merge_decoded->map_version, 3u);
  EXPECT_TRUE(merge_decoded->range.open_ended());

  MigrateBeginMsg begin;
  begin.epoch = 10;
  begin.stream_position = 456;
  begin.map_version = 2;
  begin.range = ShardRange{32, kInvalidVertex};
  begin.shard_index = 1;
  begin.shard_count = 3;
  begin.total_bytes = 9999;
  begin.recipient_address = "127.0.0.1:7070";
  auto begin_decoded = DecodeMigrateBegin(EncodeMigrateBegin(begin));
  ASSERT_TRUE(begin_decoded.ok()) << begin_decoded.status().ToString();
  EXPECT_EQ(begin_decoded->epoch, 10u);
  EXPECT_EQ(begin_decoded->stream_position, 456u);
  EXPECT_EQ(begin_decoded->map_version, 2u);
  EXPECT_TRUE(begin_decoded->range == (ShardRange{32, kInvalidVertex}));
  EXPECT_EQ(begin_decoded->shard_index, 1u);
  EXPECT_EQ(begin_decoded->shard_count, 3u);
  EXPECT_EQ(begin_decoded->total_bytes, 9999u);
  EXPECT_EQ(begin_decoded->recipient_address, "127.0.0.1:7070");

  MigrateChunkMsg chunk;
  chunk.offset = 65536;
  chunk.data = std::string("\x00\x01raw image bytes\xff", 18);
  auto chunk_decoded = DecodeMigrateChunk(EncodeMigrateChunk(chunk));
  ASSERT_TRUE(chunk_decoded.ok()) << chunk_decoded.status().ToString();
  EXPECT_EQ(chunk_decoded->offset, 65536u);
  EXPECT_EQ(chunk_decoded->data, chunk.data);

  MigrateCommitMsg commit;
  commit.total_bytes = 123456;
  commit.crc = 0xdeadbeef;
  auto commit_decoded = DecodeMigrateCommit(EncodeMigrateCommit(commit));
  ASSERT_TRUE(commit_decoded.ok()) << commit_decoded.status().ToString();
  EXPECT_EQ(commit_decoded->total_bytes, 123456u);
  EXPECT_EQ(commit_decoded->crc, 0xdeadbeefu);
}

TEST(WireTest, EveryNewMessageRefusesEveryTruncationPoint) {
  // Same every-byte sweep the v1 messages get: a truncated payload must
  // be an error at EVERY cut point, never a partial decode. The
  // (encoder, decoder) pairs cover all seven v2 messages.
  ReplicateMsg replicate;
  replicate.kind = ReplicateMsg::kBatch;
  replicate.epoch = 1;
  replicate.updates.push_back(EdgeUpdate{1, 2, EdgeOp::kAdd, 0.0});
  ReplicateAckMsg replicate_ack;
  replicate_ack.ok = false;
  replicate_ack.message = "why";
  SplitRangeMsg split;
  split.range = ShardRange{0, 9};
  MergeRangeMsg merge;
  merge.range = ShardRange{0, kInvalidVertex};
  MigrateBeginMsg begin;
  begin.recipient_address = "h:1";
  MigrateChunkMsg chunk;
  chunk.data = "abcdef";
  MigrateCommitMsg commit;

  struct Case {
    const char* name;
    std::string payload;
    bool (*decodes)(const std::string&);
  };
  const Case cases[] = {
      {"replicate", EncodeReplicate(replicate),
       [](const std::string& p) { return DecodeReplicate(p).ok(); }},
      {"replicate-ack", EncodeReplicateAck(replicate_ack),
       [](const std::string& p) { return DecodeReplicateAck(p).ok(); }},
      {"split-range", EncodeSplitRange(split),
       [](const std::string& p) { return DecodeSplitRange(p).ok(); }},
      {"merge-range", EncodeMergeRange(merge),
       [](const std::string& p) { return DecodeMergeRange(p).ok(); }},
      {"migrate-begin", EncodeMigrateBegin(begin),
       [](const std::string& p) { return DecodeMigrateBegin(p).ok(); }},
      {"migrate-chunk", EncodeMigrateChunk(chunk),
       [](const std::string& p) { return DecodeMigrateChunk(p).ok(); }},
      {"migrate-commit", EncodeMigrateCommit(commit),
       [](const std::string& p) { return DecodeMigrateCommit(p).ok(); }},
  };
  for (const Case& c : cases) {
    ASSERT_TRUE(c.decodes(c.payload)) << c.name;
    for (std::size_t cut = 1; cut < c.payload.size(); ++cut) {
      EXPECT_FALSE(c.decodes(c.payload.substr(0, cut)))
          << c.name << " truncated at byte " << cut << " decoded";
    }
    // Trailing garbage is a framing error too.
    EXPECT_FALSE(c.decodes(c.payload + "x")) << c.name;
    // And the type byte routes to exactly one decoder.
    EXPECT_FALSE(DecodeApply(c.payload).ok()) << c.name;
  }

  // A bogus update count in a replicate batch must be refused before any
  // allocation-sized resize (mirrors the Apply corruption case).
  std::string corrupt = EncodeReplicate(replicate);
  const std::size_t count_offset = 1 + 1 + 8 + 8 + 8 + 8 + 1;
  const std::uint32_t huge = 0x7fffffff;
  std::memcpy(corrupt.data() + count_offset, &huge, sizeof(huge));
  EXPECT_FALSE(DecodeReplicate(corrupt).ok());
}

TEST(WireTest, DecoderRefusesTruncationAndBogusCounts) {
  EXPECT_FALSE(PeekType("").ok());

  ApplyMsg msg;
  msg.epoch = 1;
  msg.updates.push_back(EdgeUpdate{1, 2, EdgeOp::kAdd, 0.0});
  const std::string payload = EncodeApply(msg);
  // Every truncation point must be an error, never a partial decode.
  for (std::size_t cut = 1; cut < payload.size(); ++cut) {
    EXPECT_FALSE(DecodeApply(payload.substr(0, cut)).ok())
        << "truncation at byte " << cut << " decoded";
  }
  // Wrong type byte routed to the wrong decoder.
  EXPECT_FALSE(DecodeHello(payload).ok());

  // A corrupted element count claiming more entries than the payload
  // could hold must be refused before any allocation-sized resize.
  std::string corrupt = payload;
  // The update-count u32 sits right after [type][epoch u64][position u64].
  const std::size_t count_offset = 1 + 8 + 8;
  const std::uint32_t huge = 0x7fffffff;
  std::memcpy(corrupt.data() + count_offset, &huge, sizeof(huge));
  EXPECT_FALSE(DecodeApply(corrupt).ok());

  // Trailing garbage after a complete message is a framing error too.
  EXPECT_FALSE(DecodeApply(payload + "x").ok());
}

// --- transport --------------------------------------------------------------

TEST(TransportTest, LoopbackFrameRoundTrip) {
  TcpTransport transport;
  auto listener = transport.Listen("127.0.0.1:0");
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  const std::string address = (*listener)->address();

  std::thread server([&] {
    auto conn = (*listener)->Accept(5.0);
    ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    std::string payload;
    ASSERT_TRUE((*conn)->RecvFrame(&payload, 5.0).ok());
    // Echo it back with a marker.
    ASSERT_TRUE((*conn)->SendFrame(payload + "!").ok());
  });

  auto client = transport.Connect(address, 5.0);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  std::string big(100000, 'a');
  big += "tail";
  ASSERT_TRUE((*client)->SendFrame(big).ok());
  std::string reply;
  ASSERT_TRUE((*client)->RecvFrame(&reply, 5.0).ok());
  EXPECT_EQ(reply, big + "!");
  server.join();
}

TEST(TransportTest, RecvTimesOutWhenNoFrameArrives) {
  TcpTransport transport;
  auto listener = transport.Listen("127.0.0.1:0");
  ASSERT_TRUE(listener.ok());
  auto client = transport.Connect((*listener)->address(), 5.0);
  ASSERT_TRUE(client.ok());
  auto server_conn = (*listener)->Accept(5.0);
  ASSERT_TRUE(server_conn.ok());
  std::string payload;
  const Status st = (*server_conn)->RecvFrame(&payload, 0.1);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(IsTransportTimeout(st)) << st.ToString();
  // Accept with nothing pending times out the same way.
  auto no_conn = (*listener)->Accept(0.1);
  EXPECT_FALSE(no_conn.ok());
  EXPECT_TRUE(IsTransportTimeout(no_conn.status()));
}

TEST(TransportTest, CorruptedFrameFailsTheCrcCheck) {
  TcpTransport transport;
  auto listener = transport.Listen("127.0.0.1:0");
  ASSERT_TRUE(listener.ok());
  std::string host;
  int port = 0;
  ASSERT_TRUE(ParseHostPort((*listener)->address(), &host, &port).ok());

  // Raw client socket so the test controls the exact bytes on the wire.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ASSERT_EQ(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  auto server_conn = (*listener)->Accept(5.0);
  ASSERT_TRUE(server_conn.ok());

  const std::string payload = "hello cluster";
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  std::uint32_t crc = Crc32(payload.data(), payload.size());
  crc ^= 0x1;  // one flipped bit: the frame must be refused
  std::string frame;
  frame.append(reinterpret_cast<const char*>(&length), sizeof(length));
  frame.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  frame += payload;
  ASSERT_EQ(::send(fd, frame.data(), frame.size(), 0),
            static_cast<ssize_t>(frame.size()));

  std::string received;
  const Status st = (*server_conn)->RecvFrame(&received, 5.0);
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(IsTransportTimeout(st)) << "CRC failure, not a timeout";
  ::close(fd);
}

TEST(TransportTest, PartialFramesDribbledOverSocketpairReassemble) {
  // A frame delivered a few bytes at a time exercises the short-read
  // handling in ReadAll: every recv() returning less than requested must
  // be treated as progress, not an error, and the frame must reassemble
  // byte-identically. socketpair + a raw writer gives the test exact
  // control of delivery boundaries.
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  auto conn = WrapFdAsConnection(fds[0], "socketpair");

  ApplyMsg msg;
  msg.epoch = 3;
  msg.stream_position = 50;
  for (VertexId i = 0; i < 40; ++i) {
    msg.updates.push_back(EdgeUpdate{i, i + 1, EdgeOp::kAdd, 0.25 * i});
  }
  const std::string payload = EncodeApply(msg);
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = Crc32(payload.data(), payload.size());
  std::string frame;
  frame.append(reinterpret_cast<const char*>(&length), sizeof(length));
  frame.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  frame += payload;

  std::thread dribbler([&] {
    // 7-byte pieces split the length header, the CRC, and the payload
    // across reads; the pauses make each piece a separate short read.
    for (std::size_t at = 0; at < frame.size(); at += 7) {
      const std::size_t n = std::min<std::size_t>(7, frame.size() - at);
      ASSERT_EQ(::send(fds[1], frame.data() + at, n, 0),
                static_cast<ssize_t>(n));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::string received;
  ASSERT_TRUE(conn->RecvFrame(&received, 10.0).ok());
  dribbler.join();
  EXPECT_EQ(received, payload);
  auto decoded = DecodeApply(received);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->updates.size(), 40u);

  // The wrapped side sends a frame the raw side can parse back.
  ASSERT_TRUE(conn->SendFrame("pong").ok());
  char buf[16];
  ssize_t got = 0;
  std::string raw;
  while (raw.size() < 8 + 4 &&
         (got = ::recv(fds[1], buf, sizeof(buf), 0)) > 0) {
    raw.append(buf, static_cast<std::size_t>(got));
  }
  std::uint32_t reply_len = 0;
  std::memcpy(&reply_len, raw.data(), sizeof(reply_len));
  EXPECT_EQ(reply_len, 4u);
  EXPECT_EQ(raw.substr(8), "pong");
  conn->Close();
  ::close(fds[1]);
}

}  // namespace
}  // namespace sobc
