#!/usr/bin/env python3
"""Header-comment lint for the public headers (CI step).

A -Wdocumentation-flavored check that every header under src/ keeps the
documentation discipline the codebase was written with:

  - the include guard matches the path (src/bc/foo.h -> SOBC_BC_FOO_H_),
  - the file carries at least one /// doc comment, and
  - every class/struct defined at namespace scope is immediately preceded
    by a /// doc block (small POD helpers inside classes are exempt; so
    are forward declarations and template specializations).

Exit code 1 lists every violation.
"""

import os
import re
import sys

# class/struct at column 0 that opens a definition on the same or next
# line (skips "class Foo;" forward declarations and "};" members).
DEF_RE = re.compile(r"^(?:template\s*<[^;{]*>\s*\n)?"
                    r"(?:class|struct)\s+(\w+)[^;]*?{",
                    re.MULTILINE)


def expected_guard(path: str, src_root: str) -> str:
    rel = os.path.relpath(path, src_root)
    return "SOBC_" + re.sub(r"[/.]", "_", rel).upper() + "_"


def lint(path: str, src_root: str):
    with open(path, encoding="utf-8") as f:
        text = f.read()
    errors = []
    guard = expected_guard(path, src_root)
    if f"#ifndef {guard}" not in text or f"#define {guard}" not in text:
        errors.append(f"{path}: include guard should be {guard}")
    if "///" not in text:
        errors.append(f"{path}: no /// documentation comment anywhere")
    lines = text.splitlines()
    for match in DEF_RE.finditer(text):
        name = match.group(1)
        line_no = text[:match.start()].count("\n")  # 0-based
        # Only top-level definitions: crude but effective — the line must
        # not be indented (members and local classes are).
        if lines[line_no].startswith((" ", "\t")):
            continue
        # Walk back over template<> and preprocessor lines (a doc comment
        # above an #if-selected definition still documents it).
        probe = line_no - 1
        while probe >= 0 and re.match(r"^\s*(template|#)", lines[probe]):
            probe -= 1
        documented = probe >= 0 and (
            lines[probe].lstrip().startswith("///")
            or lines[probe].lstrip().startswith("*/")
            or lines[probe].lstrip().startswith("//"))
        if not documented:
            errors.append(
                f"{path}:{line_no + 1}: {name} has no doc comment above it")
    return errors


def main() -> int:
    root = sys.argv[1] if len(sys.argv) > 1 else "src"
    errors = []
    for dirpath, _, filenames in os.walk(root):
        for name in sorted(filenames):
            if name.endswith(".h"):
                errors.extend(lint(os.path.join(dirpath, name), root))
    if errors:
        print("\n".join(errors))
        print(f"\n{len(errors)} header documentation issue(s)")
        return 1
    print("all public headers pass the documentation lint")
    return 0


if __name__ == "__main__":
    sys.exit(main())
