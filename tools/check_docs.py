#!/usr/bin/env python3
"""Markdown link checker for the repo docs (CI step).

Walks every tracked *.md file and verifies that
  - relative links point at files or directories that exist, and
  - intra-document anchors (#section) match a heading in the target file
    (GitHub slug rules, simplified).

External links (http/https/mailto) are deliberately not fetched: CI must
not fail on someone else's outage. Exit code 1 lists every broken link.
"""

import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
SKIP_DIRS = {".git", "build", ".claude"}


def github_slug(heading: str) -> str:
    """GitHub's anchor slug, close enough for our headings."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def headings_of(path: str) -> set:
    with open(path, encoding="utf-8") as f:
        text = CODE_FENCE_RE.sub("", f.read())
    return {github_slug(h) for h in HEADING_RE.findall(text)}


def markdown_files(root: str):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def main() -> int:
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    errors = []
    for md in sorted(markdown_files(root)):
        with open(md, encoding="utf-8") as f:
            text = CODE_FENCE_RE.sub("", f.read())
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, anchor = target.partition("#")
            base = os.path.dirname(md)
            resolved = os.path.normpath(os.path.join(base, path_part)) \
                if path_part else md
            if not os.path.exists(resolved):
                errors.append(f"{md}: broken link -> {target}")
                continue
            if anchor and resolved.endswith(".md"):
                if github_slug(anchor) not in headings_of(resolved):
                    errors.append(f"{md}: missing anchor -> {target}")
    if errors:
        print("\n".join(errors))
        print(f"\n{len(errors)} broken markdown link(s)")
        return 1
    print("all markdown links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
