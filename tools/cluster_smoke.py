#!/usr/bin/env python3
"""End-to-end cluster smoke: coordinator + shard workers on localhost.

The CI rehearsal of docs/OPERATIONS.md section 7, in two phases:

1. Crash + rejoin: three `sobc_cli shard` processes and one `sobc_cli
   cluster` coordinator run a deterministic churn stream; one shard is
   hard-killed mid-stream (--kill-after, _exit(137) right after a WAL
   append) and restarted with `shard --recover`, so the rejoin walks the
   real checkpoint + WAL-tail + wire-resync path.
2. Coordinator failover: a fresh 2-shard cluster runs the same stream
   paced (--pace-ms) with a warm standby tailing the primary's feed
   (--standby-listen / --standby-of); the primary is SIGKILLed
   mid-stream and the standby must take over the roster and finish the
   stream, inside the SOBC_CLUSTER_FAILOVER_GATE_MS gap gate (default
   10000 ms).

In both phases the final top-K block must be byte-identical to a
single-process `sobc_cli serve` of the same stream — the cluster
differential.

Usage: tools/cluster_smoke.py [--cli build/sobc_cli] [--workdir DIR]
Exit code 0 on success; every failure prints the offending output.
"""

import argparse
import os
import re
import shutil
import subprocess
import sys
import tempfile
import time

UPDATES = 400
CHURN = 0.4
SEED = 7
TOP = 5
SHARDS = 3
KILL_AFTER = 4  # WAL appends on the doomed shard before _exit(137)
PACE_MS = 20    # primary's per-update pacing in the failover phase
STARTUP_TIMEOUT = 60.0
RUN_TIMEOUT = 180.0


def fail(message, *outputs):
    print(f"FAIL: {message}", file=sys.stderr)
    for name, text in outputs:
        print(f"--- {name} ---\n{text}", file=sys.stderr)
    sys.exit(1)


def wait_for_line(path, pattern, timeout, proc=None, what=""):
    """Polls a log file until a line matches `pattern`; returns the match."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(path):
            with open(path, errors="replace") as f:
                for line in f:
                    m = re.search(pattern, line)
                    if m:
                        return m
        if proc is not None and proc.poll() is not None:
            with open(path, errors="replace") as f:
                fail(f"{what} exited rc={proc.returncode} before '{pattern}'",
                     (path, f.read()))
        time.sleep(0.05)
    with open(path, errors="replace") as f:
        fail(f"timed out waiting for '{pattern}' in {path}", (path, f.read()))


def top_block(text):
    """The `top-K vertices ... top-K edges ...` block of a run's stdout."""
    lines = text.splitlines()
    for i, line in enumerate(lines):
        if line.startswith(f"top-{TOP} vertices"):
            return "\n".join(lines[i:i + 2 * (TOP + 1)])
    return None


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--cli", default="build/sobc_cli")
    parser.add_argument("--workdir", default=None)
    args = parser.parse_args()
    cli = os.path.abspath(args.cli)
    if not os.path.exists(cli):
        fail(f"no sobc_cli at {cli} (build first)")

    workdir = args.workdir or tempfile.mkdtemp(prefix="sobc_cluster_smoke_")
    os.makedirs(workdir, exist_ok=True)
    os.chdir(workdir)
    print(f"cluster smoke in {workdir}")

    stream_flags = [f"--updates={UPDATES}", f"--churn={CHURN}",
                    f"--seed={SEED}", f"--top={TOP}"]

    subprocess.run([cli, "generate", "social", "200", "--seed=3",
                    "--out=g.txt"], check=True)

    # The single-process truth for the same deterministic stream.
    serve = subprocess.run(
        [cli, "serve", "g.txt", "--readers=0"] + stream_flags,
        capture_output=True, text=True, timeout=RUN_TIMEOUT)
    if serve.returncode != 0:
        fail("single-process serve failed", ("serve", serve.stdout + serve.stderr))
    reference = top_block(serve.stdout)
    if reference is None:
        fail("no top-K block in serve output", ("serve", serve.stdout))

    # Three durable shard workers on ephemeral ports; shard 1 is doomed.
    workers = {}
    addresses = []
    logs = []
    try:
        for i in range(SHARDS):
            log = f"shard{i}.log"
            logs.append(log)
            cmd = [cli, "shard", "g.txt", "--listen=127.0.0.1:0",
                   f"--shard-index={i}", f"--shards={SHARDS}",
                   f"--wal-dir=w{i}"]
            if i == 1:
                cmd.append(f"--kill-after={KILL_AFTER}")
            workers[i] = subprocess.Popen(
                cmd, stdout=open(log, "w"), stderr=subprocess.STDOUT)
            m = wait_for_line(log, r" on (127\.0\.0\.1:\d+)\s*$",
                              STARTUP_TIMEOUT, workers[i], f"shard {i}")
            addresses.append(m.group(1))
        print(f"shards up on {', '.join(addresses)} (shard 1 will die after "
              f"{KILL_AFTER} WAL appends)")

        cluster_log = "cluster.log"
        logs.append(cluster_log)
        coordinator = subprocess.Popen(
            [cli, "cluster", "g.txt", f"--shards={','.join(addresses)}",
             "--retry-seconds=60"] + stream_flags,
            stdout=open(cluster_log, "w"), stderr=subprocess.STDOUT)

        # The kill: shard 1 _exit(137)s mid-stream; restart it from its
        # durable state on the same address. The coordinator resyncs it
        # from the replay window inside its retry budget — no other step.
        rc = workers[1].wait(timeout=RUN_TIMEOUT)
        if rc != 137:
            fail(f"doomed shard exited rc={rc}, expected 137 (--kill-after)",
                 *((log, open(log, errors="replace").read()) for log in logs))
        print("shard 1 killed (rc=137); restarting with --recover")
        logs.append("shard1_recovered.log")
        workers[1] = subprocess.Popen(
            [cli, "shard", "--recover", "--wal-dir=w1",
             f"--listen={addresses[1]}", "--shard-index=1",
             f"--shards={SHARDS}"],
            stdout=open("shard1_recovered.log", "w"),
            stderr=subprocess.STDOUT)
        wait_for_line("shard1_recovered.log", r"recovered from checkpoint",
                      STARTUP_TIMEOUT, workers[1], "recovered shard 1")

        rc = coordinator.wait(timeout=RUN_TIMEOUT)
        cluster_out = open(cluster_log, errors="replace").read()
        if rc != 0:
            fail(f"coordinator exited rc={rc}", (cluster_log, cluster_out))

        # The coordinator's clean shutdown reaches every worker.
        for i, proc in workers.items():
            rc = proc.wait(timeout=STARTUP_TIMEOUT)
            if rc != 0:
                fail(f"shard {i} exited rc={rc} after shutdown",
                     *((log, open(log, errors="replace").read())
                       for log in logs))

        # The differential: byte-identical top-K, full stream consumed,
        # and the crash visibly healed through the reconnect path.
        cluster_top = top_block(cluster_out)
        if cluster_top is None:
            fail("no top-K block in cluster output", (cluster_log, cluster_out))
        if cluster_top != reference:
            fail("cluster top-K differs from single-process serve",
                 ("single-process", reference), ("cluster", cluster_top))
        if not re.search(rf"stream position {UPDATES}\b", cluster_out):
            fail(f"cluster did not reach stream position {UPDATES}",
                 (cluster_log, cluster_out))
        m = re.search(rf"shard {re.escape(addresses[1])}: .*?(\d+) reconnects",
                      cluster_out)
        if not m or int(m.group(1)) < 1:
            fail("shard 1 shows no reconnects — the kill never exercised "
                 "the rejoin path", (cluster_log, cluster_out))

        print("cluster smoke OK: top-K matches single-process run after "
              f"crash + rejoin ({m.group(1)} reconnects on shard 1)")

        # --- phase 2: coordinator failover ------------------------------
        print("failover smoke: fresh 2-shard cluster with a warm standby")
        fo_workers = {}
        fo_addresses = []
        for i in range(2):
            log = f"fo_shard{i}.log"
            logs.append(log)
            fo_workers[i] = subprocess.Popen(
                [cli, "shard", "g.txt", "--listen=127.0.0.1:0",
                 f"--shard-index={i}", "--shards=2"],
                stdout=open(log, "w"), stderr=subprocess.STDOUT)
            workers[f"fo{i}"] = fo_workers[i]
            m = wait_for_line(log, r" on (127\.0\.0\.1:\d+)\s*$",
                              STARTUP_TIMEOUT, fo_workers[i],
                              f"failover shard {i}")
            fo_addresses.append(m.group(1))

        primary_log = "primary.log"
        logs.append(primary_log)
        primary = subprocess.Popen(
            [cli, "cluster", "g.txt", f"--shards={','.join(fo_addresses)}",
             "--retry-seconds=60", "--standby-listen=127.0.0.1:0",
             f"--pace-ms={PACE_MS}"] + stream_flags,
            stdout=open(primary_log, "w"), stderr=subprocess.STDOUT)
        workers["primary"] = primary
        m = wait_for_line(primary_log, r"standby feed on (127\.0\.0\.1:\d+)",
                          STARTUP_TIMEOUT, primary, "primary")
        feed = m.group(1)

        standby_log = "standby.log"
        logs.append(standby_log)
        standby = subprocess.Popen(
            [cli, "cluster", "g.txt", f"--shards={','.join(fo_addresses)}",
             "--retry-seconds=60", f"--standby-of={feed}"] + stream_flags,
            stdout=open(standby_log, "w"), stderr=subprocess.STDOUT)
        workers["standby"] = standby
        wait_for_line(standby_log, r"standby attached to primary",
                      STARTUP_TIMEOUT, standby, "standby")

        # Let the paced primary get well into the stream, then kill -9 —
        # no shutdown frames, the real process-death shape.
        time.sleep(1.5)
        primary.kill()
        print("primary hard-killed mid-stream; waiting for takeover")
        m = wait_for_line(standby_log,
                          r"standby took over at epoch \d+ \(gap (\d+) ms\)",
                          STARTUP_TIMEOUT, standby, "standby")
        gap_ms = int(m.group(1))

        rc = standby.wait(timeout=RUN_TIMEOUT)
        standby_out = open(standby_log, errors="replace").read()
        if rc != 0:
            fail(f"standby exited rc={rc}", (standby_log, standby_out))
        # The standby's clean shutdown reaches the roster it adopted.
        for i, proc in fo_workers.items():
            rc = proc.wait(timeout=STARTUP_TIMEOUT)
            if rc != 0:
                fail(f"failover shard {i} exited rc={rc} after takeover",
                     *((log, open(log, errors="replace").read())
                       for log in logs))

        standby_top = top_block(standby_out)
        if standby_top is None:
            fail("no top-K block in standby output",
                 (standby_log, standby_out))
        if standby_top != reference:
            fail("post-failover top-K differs from single-process serve",
                 ("single-process", reference), ("standby", standby_top))
        if not re.search(rf"stream position {UPDATES}\b", standby_out):
            fail(f"standby did not reach stream position {UPDATES}",
                 (standby_log, standby_out))
        gate_ms = float(os.environ.get("SOBC_CLUSTER_FAILOVER_GATE_MS",
                                       "10000"))
        if gap_ms > gate_ms:
            fail(f"failover gap {gap_ms} ms exceeds the {gate_ms:.0f} ms "
                 "gate", (standby_log, standby_out))
        print(f"failover smoke OK: standby took over in {gap_ms} ms and "
              "its top-K matches the single-process run")
        return 0
    finally:
        for proc in workers.values():
            if proc.poll() is None:
                proc.kill()
        if args.workdir is None:
            shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
