#!/usr/bin/env python3
"""End-to-end cluster smoke: coordinator + 3 shard workers on localhost.

The CI rehearsal of docs/OPERATIONS.md section 7: three `sobc_cli shard`
processes and one `sobc_cli cluster` coordinator run a deterministic churn
stream; one shard is hard-killed mid-stream (--kill-after, _exit(137)
right after a WAL append) and restarted with `shard --recover`, so the
rejoin walks the real checkpoint + WAL-tail + wire-resync path. The final
top-K block must be byte-identical to a single-process `sobc_cli serve`
of the same stream — the cluster differential.

Usage: tools/cluster_smoke.py [--cli build/sobc_cli] [--workdir DIR]
Exit code 0 on success; every failure prints the offending output.
"""

import argparse
import os
import re
import shutil
import subprocess
import sys
import tempfile
import time

UPDATES = 400
CHURN = 0.4
SEED = 7
TOP = 5
SHARDS = 3
KILL_AFTER = 4  # WAL appends on the doomed shard before _exit(137)
STARTUP_TIMEOUT = 60.0
RUN_TIMEOUT = 180.0


def fail(message, *outputs):
    print(f"FAIL: {message}", file=sys.stderr)
    for name, text in outputs:
        print(f"--- {name} ---\n{text}", file=sys.stderr)
    sys.exit(1)


def wait_for_line(path, pattern, timeout, proc=None, what=""):
    """Polls a log file until a line matches `pattern`; returns the match."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(path):
            with open(path, errors="replace") as f:
                for line in f:
                    m = re.search(pattern, line)
                    if m:
                        return m
        if proc is not None and proc.poll() is not None:
            with open(path, errors="replace") as f:
                fail(f"{what} exited rc={proc.returncode} before '{pattern}'",
                     (path, f.read()))
        time.sleep(0.05)
    with open(path, errors="replace") as f:
        fail(f"timed out waiting for '{pattern}' in {path}", (path, f.read()))


def top_block(text):
    """The `top-K vertices ... top-K edges ...` block of a run's stdout."""
    lines = text.splitlines()
    for i, line in enumerate(lines):
        if line.startswith(f"top-{TOP} vertices"):
            return "\n".join(lines[i:i + 2 * (TOP + 1)])
    return None


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--cli", default="build/sobc_cli")
    parser.add_argument("--workdir", default=None)
    args = parser.parse_args()
    cli = os.path.abspath(args.cli)
    if not os.path.exists(cli):
        fail(f"no sobc_cli at {cli} (build first)")

    workdir = args.workdir or tempfile.mkdtemp(prefix="sobc_cluster_smoke_")
    os.makedirs(workdir, exist_ok=True)
    os.chdir(workdir)
    print(f"cluster smoke in {workdir}")

    stream_flags = [f"--updates={UPDATES}", f"--churn={CHURN}",
                    f"--seed={SEED}", f"--top={TOP}"]

    subprocess.run([cli, "generate", "social", "200", "--seed=3",
                    "--out=g.txt"], check=True)

    # The single-process truth for the same deterministic stream.
    serve = subprocess.run(
        [cli, "serve", "g.txt", "--readers=0"] + stream_flags,
        capture_output=True, text=True, timeout=RUN_TIMEOUT)
    if serve.returncode != 0:
        fail("single-process serve failed", ("serve", serve.stdout + serve.stderr))
    reference = top_block(serve.stdout)
    if reference is None:
        fail("no top-K block in serve output", ("serve", serve.stdout))

    # Three durable shard workers on ephemeral ports; shard 1 is doomed.
    workers = {}
    addresses = []
    logs = []
    try:
        for i in range(SHARDS):
            log = f"shard{i}.log"
            logs.append(log)
            cmd = [cli, "shard", "g.txt", "--listen=127.0.0.1:0",
                   f"--shard-index={i}", f"--shards={SHARDS}",
                   f"--wal-dir=w{i}"]
            if i == 1:
                cmd.append(f"--kill-after={KILL_AFTER}")
            workers[i] = subprocess.Popen(
                cmd, stdout=open(log, "w"), stderr=subprocess.STDOUT)
            m = wait_for_line(log, r" on (127\.0\.0\.1:\d+)\s*$",
                              STARTUP_TIMEOUT, workers[i], f"shard {i}")
            addresses.append(m.group(1))
        print(f"shards up on {', '.join(addresses)} (shard 1 will die after "
              f"{KILL_AFTER} WAL appends)")

        cluster_log = "cluster.log"
        logs.append(cluster_log)
        coordinator = subprocess.Popen(
            [cli, "cluster", "g.txt", f"--shards={','.join(addresses)}",
             "--retry-seconds=60"] + stream_flags,
            stdout=open(cluster_log, "w"), stderr=subprocess.STDOUT)

        # The kill: shard 1 _exit(137)s mid-stream; restart it from its
        # durable state on the same address. The coordinator resyncs it
        # from the replay window inside its retry budget — no other step.
        rc = workers[1].wait(timeout=RUN_TIMEOUT)
        if rc != 137:
            fail(f"doomed shard exited rc={rc}, expected 137 (--kill-after)",
                 *((log, open(log, errors="replace").read()) for log in logs))
        print("shard 1 killed (rc=137); restarting with --recover")
        logs.append("shard1_recovered.log")
        workers[1] = subprocess.Popen(
            [cli, "shard", "--recover", "--wal-dir=w1",
             f"--listen={addresses[1]}", "--shard-index=1",
             f"--shards={SHARDS}"],
            stdout=open("shard1_recovered.log", "w"),
            stderr=subprocess.STDOUT)
        wait_for_line("shard1_recovered.log", r"recovered from checkpoint",
                      STARTUP_TIMEOUT, workers[1], "recovered shard 1")

        rc = coordinator.wait(timeout=RUN_TIMEOUT)
        cluster_out = open(cluster_log, errors="replace").read()
        if rc != 0:
            fail(f"coordinator exited rc={rc}", (cluster_log, cluster_out))

        # The coordinator's clean shutdown reaches every worker.
        for i, proc in workers.items():
            rc = proc.wait(timeout=STARTUP_TIMEOUT)
            if rc != 0:
                fail(f"shard {i} exited rc={rc} after shutdown",
                     *((log, open(log, errors="replace").read())
                       for log in logs))

        # The differential: byte-identical top-K, full stream consumed,
        # and the crash visibly healed through the reconnect path.
        cluster_top = top_block(cluster_out)
        if cluster_top is None:
            fail("no top-K block in cluster output", (cluster_log, cluster_out))
        if cluster_top != reference:
            fail("cluster top-K differs from single-process serve",
                 ("single-process", reference), ("cluster", cluster_top))
        if not re.search(rf"stream position {UPDATES}\b", cluster_out):
            fail(f"cluster did not reach stream position {UPDATES}",
                 (cluster_log, cluster_out))
        m = re.search(rf"shard {re.escape(addresses[1])}: .*?(\d+) reconnects",
                      cluster_out)
        if not m or int(m.group(1)) < 1:
            fail("shard 1 shows no reconnects — the kill never exercised "
                 "the rejoin path", (cluster_log, cluster_out))

        print("cluster smoke OK: top-K matches single-process run after "
              f"crash + rejoin ({m.group(1)} reconnects on shard 1)")
        return 0
    finally:
        for proc in workers.values():
            if proc.poll() is None:
                proc.kill()
        if args.workdir is None:
            shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
