// sobc command-line tool: run the online-betweenness framework on edge-list
// files without writing any code.
//
// Usage:
//   sobc_cli scores <graph.txt> [--directed] [--out=scores.tsv]
//       Exact betweenness (Brandes) of an edge-list graph.
//   sobc_cli stream <graph.txt> <stream.txt> [--directed] [--variant=mo|mp|do]
//            [--store=bd.bin] [--store-codec=raw|delta] [--cache-mb=M]
//            [--no-prefetch] [--out=scores.tsv] [--top=K] [--threads=T]
//            [--no-prefilter] [--no-msbfs] [--do-switch-threshold=A]
//            [--approx=K --epsilon=E]
//       Step 1 + incremental replay of an update stream ("+ u v t" /
//       "- u v t" lines; see WriteEdgeStream), printing per-update stats
//       (including the prefilter skip-rate and the MS-BFS kernel report)
//       and the final top-K elements.
//       --threads fans each update's source loop across T workers
//       (0 = hardware concurrency). The storage flags tune the DO engine:
//       record codec, shared hot-record cache budget, async prefetch.
//       --no-msbfs pins every traversal to the per-source scalar BFS;
//       --do-switch-threshold=A tunes the direction-optimizing alpha
//       (<= 0 pins the kernel top-down). --approx=K runs the sampled
//       approximation (DESIGN.md §15): BD state is maintained for K
//       seeded sample sources only and published scores are n/K-scaled
//       estimates; --epsilon=E (in (0,1), default 0.1) tightens the
//       drift controller that triggers adaptive resampling, and --seed
//       pins the sampling schedule.
//   sobc_cli stats <graph.txt> [--directed] [--store=bd.bin]
//       Dataset statistics (the Table 2 columns). With --store, also the
//       store file's footprint — file bytes, encoded vs decoded bytes per
//       source, compression ratio, cache occupancy — the numbers that size
//       --cache-mb.
//   sobc_cli generate <profile-or-kind> <vertices> [--seed=S]
//            [--out=graph.txt] [--stream=N] [--stream-out=stream.txt]
//       Synthesize a dataset: a named profile ("facebook", "amazon", ...,
//       see dataset_profiles.h), "social", or "tree". Optionally also emit
//       a timestamped stream of N additions for the stream command.
//   sobc_cli serve <graph.txt> [--directed] [--stream=file|--updates=N]
//            [--churn=F] [--readers=R] [--batch=B] [--budget-ms=M]
//            [--queue-cap=C] [--no-coalesce] [--threads=T] [--no-prefilter]
//            [--no-msbfs] [--do-switch-threshold=A] [--approx=K --epsilon=E]
//            [--variant=mo|mp|do] [--store=bd.bin] [--store-codec=raw|delta]
//            [--cache-mb=M] [--no-prefetch] [--top=K] [--seed=S]
//            [--json=report.json] [--wal-dir=D] [--checkpoint-dir=D]
//            [--checkpoint-every=N] [--checkpoint-interval=S] [--fsync=N]
//            [--fault-schedule=SPEC]
//       Live serving loop (src/server): a writer thread drains coalesced
//       batches — fanning each batch's source work across T apply workers
//       — while R reader threads query top-k snapshots lock-free; prints
//       (and optionally writes as JSON) the serve metrics, prefilter
//       skip-rate and MS-BFS kernel counters included. --variant=do serves out of core; the store is
//       flushed at shutdown, so it can be inspected with `stats --store`.
//       --wal-dir makes the deployment durable: every accepted batch is
//       logged before apply (fdatasync every --fsync batches; 0 = never)
//       and checkpoints commit every N updates / S seconds. A killed
//       durable serve is restarted with `recover`. --fault-schedule arms
//       deterministic I/O fault injection after bring-up (grammar in
//       common/fault_io.h, e.g. "fdatasync@2=EIO,fsync~ckpt%0.5=ENOSPC");
//       serve exits non-zero when the service ends a run degraded or
//       read-only, printing the health state and the writer's final
//       status.
//   sobc_cli recover --wal-dir=D [--checkpoint-dir=D] [--store=live.bd]
//            [--threads=T] [--no-prefilter] [--cache-mb=M] [--no-prefetch]
//            [--top=K] [--out=scores.tsv] [--json=report.json]
//       Crash/restart recovery: loads the newest usable checkpoint,
//       replays the WAL tail (truncating a torn final frame), prints the
//       recovered epoch/position and top-K, then commits a clean-shutdown
//       checkpoint. The storage variant comes from the checkpoint
//       manifest; tuning flags still apply.
//   sobc_cli shard <graph> --listen=HOST:PORT --shard-index=I --shards=N
//            [--directed] [--variant=mo|mp|do] [--store=f.bd] [--threads=T]
//            [--no-prefilter] [--wal-dir=D] [--checkpoint-dir=D]
//            [--checkpoint-every=N] [--checkpoint-interval=S] [--fsync=N]
//            [--kill-after=N]
//       One cluster shard worker: runs a replicated BcService scoped to
//       source partition I of N (its own BD store, WAL, checkpoints) and
//       serves the coordinator protocol on the listen address until the
//       coordinator sends shutdown. With --recover (and no graph
//       argument) the shard restarts from its checkpoint + WAL tail and
//       rejoins over the wire; --kill-after=N hard-kills the process
//       after N WAL appends (the cluster smoke's crash lever).
//   sobc_cli cluster <graph> --shards=H:P,H:P,... [--directed]
//            [--stream=file|--updates=N] [--churn=F] [--batch=B]
//            [--budget-ms=M] [--queue-cap=C] [--no-coalesce] [--top=K]
//            [--seed=S] [--retry-seconds=S] [--pace-ms=M] [--json=report.json]
//            [--standby-listen=H:P] [--standby-of=H:P]
//            [--split=I --split-recipient=H:P] [--merge=I]
//       The cluster head: connects to already-listening shard workers,
//       replicates the (deterministically generated or file-loaded)
//       update stream to every shard, merges the acked score partials,
//       and prints the same metrics + top-K block as `serve` — the
//       differential the cluster smoke compares against a single-process
//       run. Shards are sent a clean shutdown at the end. --pace-ms
//       spaces submissions out so failures can land mid-stream.
//       --standby-listen arms the warm-standby feed (the resolved address
//       is printed); a second cluster process started with --standby-of
//       and the SAME graph/stream flags tails that feed and, if the
//       primary dies, takes over the shard roster and finishes the stream
//       to the same final block. --split migrates the upper half of shard
//       I's range to a `shard --await-migration` worker at the recipient
//       address midway through the stream, --merge folds shard I+1 back
//       into shard I — both without restarting the coordinator.
//
// Exit code 0 on success; errors go to stderr.

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "analysis/graph_stats.h"
#include "analysis/top_k.h"
#include "bc/bd_store_disk.h"
#include "cluster/coordinator.h"
#include "cluster/shard_worker.h"
#include "cluster/transport.h"
#include "bc/brandes.h"
#include "bc/dynamic_bc.h"
#include "bc/score_io.h"
#include "common/fault_io.h"
#include "common/flag_parse.h"
#include "common/io.h"
#include "common/rng.h"
#include "common/timer.h"
#include "gen/dataset_profiles.h"
#include "gen/generators.h"
#include "gen/social_generator.h"
#include "gen/stream_generators.h"
#include "graph/graph_io.h"
#include "server/bc_service.h"

namespace sobc {
namespace {

struct CliArgs {
  std::vector<std::string> positional;
  bool directed = false;
  std::string variant = "mo";
  std::string store_path;
  std::string out_path;
  std::string stream_out_path;
  std::string stream_file;
  std::string json_path;
  std::size_t top = 10;
  std::size_t stream_edges = 0;
  std::uint64_t seed = 1;
  // apply-path threading (stream replay and serve writer; 0 = hardware)
  int threads = 1;
  bool prefilter = true;
  // bit-parallel MS-BFS traversal kernel (stream + serve; default on)
  bool msbfs = true;
  double do_switch_threshold = 14.0;
  // sampled approximation (stream + serve + recover; 0 = exact)
  std::size_t approx_samples = 0;
  double epsilon = 0.1;
  // out-of-core storage engine
  std::string store_codec = "raw";
  std::size_t cache_mb = 64;
  bool prefetch = true;
  // serve options
  std::size_t serve_updates = 10000;
  double churn = 0.5;
  int readers = 2;
  std::size_t batch = 64;
  double budget_ms = 1.0;
  std::size_t queue_cap = 4096;
  bool coalesce = true;
  // durability (serve + recover)
  std::string wal_dir;
  std::string checkpoint_dir;
  std::size_t fsync_every = 1;
  std::size_t checkpoint_every = 0;
  double checkpoint_interval = 0.0;
  std::size_t kill_after = 0;
  // fault injection (serve): armed after bring-up, see CmdServe
  std::string fault_schedule;
  // cluster (shard + cluster commands)
  std::string listen;
  std::size_t shard_index = 0;
  // shard: the worker count; cluster: a comma-separated address list
  std::string shards_spec;
  bool recover_mode = false;
  double retry_seconds = 10.0;
  // cluster failover + live rebalancing
  std::string standby_listen;   // primary: arm the standby feed here
  std::string standby_of;       // run as warm standby of this feed address
  double pace_ms = 0.0;         // sleep between submitted updates
  long split_index = -1;        // split this shard's range mid-stream...
  std::string split_recipient;  // ...migrating to this awaiting worker
  long merge_index = -1;        // merge shard I+1 into shard I mid-stream
  bool await_migration = false; // shard: start empty, wait for the image
};

bool ParseArgs(int argc, char** argv, CliArgs* args) {
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--directed") {
      args->directed = true;
    } else if (arg.rfind("--variant=", 0) == 0) {
      args->variant = arg.substr(10);
    } else if (arg.rfind("--store=", 0) == 0) {
      args->store_path = arg.substr(8);
    } else if (arg.rfind("--out=", 0) == 0) {
      args->out_path = arg.substr(6);
    } else if (arg.rfind("--top=", 0) == 0) {
      args->top = std::strtoul(arg.c_str() + 6, nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      args->seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--stream=", 0) == 0) {
      // For generate this is a count; for serve it can also be a file.
      // Only an all-digits value is a count, so filenames like
      // "10k_updates.txt" route to the file branch.
      const std::string value = arg.substr(9);
      const bool numeric =
          !value.empty() &&
          std::all_of(value.begin(), value.end(), [](unsigned char c) {
            return std::isdigit(c) != 0;
          });
      if (numeric) {
        args->stream_edges = std::strtoul(value.c_str(), nullptr, 10);
      } else {
        args->stream_file = value;
      }
    } else if (arg.rfind("--stream-out=", 0) == 0) {
      args->stream_out_path = arg.substr(13);
    } else if (arg.rfind("--updates=", 0) == 0) {
      args->serve_updates = std::strtoul(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--churn=", 0) == 0) {
      args->churn = std::strtod(arg.c_str() + 8, nullptr);
    } else if (arg.rfind("--readers=", 0) == 0) {
      args->readers = static_cast<int>(std::strtol(arg.c_str() + 10, nullptr, 10));
    } else if (arg.rfind("--batch=", 0) == 0) {
      args->batch = std::strtoul(arg.c_str() + 8, nullptr, 10);
    } else if (arg.rfind("--budget-ms=", 0) == 0) {
      args->budget_ms = std::strtod(arg.c_str() + 12, nullptr);
    } else if (arg.rfind("--queue-cap=", 0) == 0) {
      args->queue_cap = std::strtoul(arg.c_str() + 12, nullptr, 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      args->threads =
          static_cast<int>(std::strtol(arg.c_str() + 10, nullptr, 10));
    } else if (arg == "--no-prefilter") {
      args->prefilter = false;
    } else if (arg == "--msbfs") {
      args->msbfs = true;
    } else if (arg == "--no-msbfs") {
      args->msbfs = false;
    } else if (arg.rfind("--do-switch-threshold=", 0) == 0) {
      auto value = ParseFiniteDouble(arg.substr(22));
      if (!value.ok()) {
        std::fprintf(stderr, "--do-switch-threshold: %s\n",
                     value.status().ToString().c_str());
        return false;
      }
      args->do_switch_threshold = *value;
    } else if (arg.rfind("--approx=", 0) == 0) {
      auto value = ParseUint64(arg.substr(9));
      if (!value.ok() || *value == 0) {
        std::fprintf(stderr,
                     "--approx: expected a positive sample count: %s\n",
                     value.ok() ? "got 0"
                                : value.status().ToString().c_str());
        return false;
      }
      args->approx_samples = static_cast<std::size_t>(*value);
    } else if (arg.rfind("--epsilon=", 0) == 0) {
      auto value = ParseFiniteDouble(arg.substr(10));
      if (!value.ok() || *value <= 0.0 || *value >= 1.0) {
        std::fprintf(
            stderr, "--epsilon: expected a finite value in (0, 1): %s\n",
            value.ok() ? arg.substr(10).c_str()
                       : value.status().ToString().c_str());
        return false;
      }
      args->epsilon = *value;
    } else if (arg.rfind("--store-codec=", 0) == 0) {
      args->store_codec = arg.substr(14);
    } else if (arg.rfind("--cache-mb=", 0) == 0) {
      args->cache_mb = std::strtoul(arg.c_str() + 11, nullptr, 10);
    } else if (arg == "--prefetch") {
      args->prefetch = true;
    } else if (arg == "--no-prefetch") {
      args->prefetch = false;
    } else if (arg == "--no-coalesce") {
      args->coalesce = false;
    } else if (arg.rfind("--wal-dir=", 0) == 0) {
      args->wal_dir = arg.substr(10);
    } else if (arg.rfind("--checkpoint-dir=", 0) == 0) {
      args->checkpoint_dir = arg.substr(17);
    } else if (arg.rfind("--fsync=", 0) == 0) {
      args->fsync_every = std::strtoul(arg.c_str() + 8, nullptr, 10);
    } else if (arg.rfind("--checkpoint-every=", 0) == 0) {
      args->checkpoint_every = std::strtoul(arg.c_str() + 19, nullptr, 10);
    } else if (arg.rfind("--checkpoint-interval=", 0) == 0) {
      args->checkpoint_interval = std::strtod(arg.c_str() + 22, nullptr);
    } else if (arg.rfind("--kill-after=", 0) == 0) {
      args->kill_after = std::strtoul(arg.c_str() + 13, nullptr, 10);
    } else if (arg.rfind("--fault-schedule=", 0) == 0) {
      args->fault_schedule = arg.substr(17);
    } else if (arg.rfind("--listen=", 0) == 0) {
      args->listen = arg.substr(9);
    } else if (arg.rfind("--shard-index=", 0) == 0) {
      args->shard_index = std::strtoul(arg.c_str() + 14, nullptr, 10);
    } else if (arg.rfind("--shards=", 0) == 0) {
      args->shards_spec = arg.substr(9);
    } else if (arg == "--recover") {
      args->recover_mode = true;
    } else if (arg.rfind("--retry-seconds=", 0) == 0) {
      args->retry_seconds = std::strtod(arg.c_str() + 16, nullptr);
    } else if (arg.rfind("--standby-listen=", 0) == 0) {
      args->standby_listen = arg.substr(17);
    } else if (arg.rfind("--standby-of=", 0) == 0) {
      args->standby_of = arg.substr(13);
    } else if (arg.rfind("--pace-ms=", 0) == 0) {
      args->pace_ms = std::strtod(arg.c_str() + 10, nullptr);
    } else if (arg.rfind("--split=", 0) == 0) {
      args->split_index = std::strtol(arg.c_str() + 8, nullptr, 10);
    } else if (arg.rfind("--split-recipient=", 0) == 0) {
      args->split_recipient = arg.substr(18);
    } else if (arg.rfind("--merge=", 0) == 0) {
      args->merge_index = std::strtol(arg.c_str() + 8, nullptr, 10);
    } else if (arg == "--await-migration") {
      args->await_migration = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      args->json_path = arg.substr(7);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    } else {
      args->positional.push_back(arg);
    }
  }
  return true;
}

void PrintTop(const BcScores& scores, std::size_t k) {
  std::printf("top-%zu vertices by betweenness:\n", k);
  for (const auto& [v, score] : TopKVertices(scores.vbc, k)) {
    std::printf("  %8u  %14.3f\n", v, score);
  }
  std::printf("top-%zu edges by betweenness:\n", k);
  for (const auto& [e, score] : TopKEdges(scores.ebc, k)) {
    std::printf("  (%u,%u)  %14.3f\n", e.u, e.v, score);
  }
}

/// Copies the storage-engine flags onto a DynamicBcOptions; false (with a
/// message) for an unknown codec name.
bool ApplyStorageFlags(const CliArgs& args, DynamicBcOptions* options) {
  auto codec = ParseRecordCodec(args.store_codec);
  if (!codec.ok()) {
    std::fprintf(stderr, "%s\n", codec.status().ToString().c_str());
    return false;
  }
  options->store_codec = *codec;
  options->cache_mb = args.cache_mb;
  options->prefetch = args.prefetch;
  return true;
}

/// The per-store footprint block of `stats --store` and the DO replay
/// summary: what a record costs on disk vs decoded, and how the cache and
/// prefetcher behaved — the numbers that size --cache-mb.
void PrintStoreFootprint(DiskBdStore& store) {
  auto fp = store.Footprint();
  if (!fp.ok()) {
    std::fprintf(stderr, "footprint: %s\n", fp.status().ToString().c_str());
    return;
  }
  const double raw_bytes = static_cast<double>(fp->raw_record_bytes);
  std::printf(
      "store %s: codec=%s, %llu sources x %llu vertices\n",
      store.path().c_str(), RecordCodecName(fp->codec),
      static_cast<unsigned long long>(fp->live_records),
      static_cast<unsigned long long>(fp->num_vertices));
  std::printf(
      "  file: %.1f MiB logical, %.1f MiB on disk (slots are sparse)\n",
      fp->file_logical_bytes / 1048576.0,
      fp->file_physical_bytes / 1048576.0);
  std::printf(
      "  encoded: %.1f bytes/source (raw fixed-width would be %.1f, "
      "ratio %.2f); decoded record: %.1f KiB\n",
      fp->bytes_per_source, raw_bytes, fp->compression_ratio,
      fp->decoded_record_bytes / 1024.0);
  std::printf(
      "  cache: %.1f / %.1f MiB resident (%llu records), hit rate %.1f%% "
      "(%llu hits, %llu misses, %llu evictions)\n",
      fp->cache.bytes / 1048576.0, fp->cache.capacity_bytes / 1048576.0,
      static_cast<unsigned long long>(fp->cache.entries),
      100.0 * fp->cache.HitRate(),
      static_cast<unsigned long long>(fp->cache.hits),
      static_cast<unsigned long long>(fp->cache.misses),
      static_cast<unsigned long long>(fp->cache.evictions));
  if (fp->cache.oversize_rejects > 0 && fp->cache.capacity_bytes > 0) {
    std::printf(
        "  WARNING: one decoded record exceeds a cache shard's budget "
        "(%llu inserts rejected) — the cache is effectively off; raise "
        "--cache-mb to at least %.0f\n",
        static_cast<unsigned long long>(fp->cache.oversize_rejects),
        fp->min_viable_cache_bytes / 1048576.0 + 1.0);
  }
  const DiskIoStats io = store.io_stats();
  std::printf(
      "  io: %.1f MiB read, %.1f MiB written (%llu record loads, %llu "
      "record writes)\n",
      io.bytes_read / 1048576.0, io.bytes_written / 1048576.0,
      static_cast<unsigned long long>(io.records_loaded),
      static_cast<unsigned long long>(io.records_written));
  if (store.prefetch_enabled()) {
    const PrefetchStats pf = store.prefetch_stats();
    std::printf(
        "  prefetch: %llu fetched ahead, %llu already cached, %llu "
        "dropped, %.3fs background read time\n",
        static_cast<unsigned long long>(pf.fetched),
        static_cast<unsigned long long>(pf.already_cached),
        static_cast<unsigned long long>(pf.dropped), pf.fetch_seconds);
  }
}

int MaybeWrite(const BcScores& scores, const std::string& out_path) {
  if (out_path.empty()) return 0;
  if (Status st = WriteScoresTsv(scores, out_path); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

int CmdScores(const CliArgs& args) {
  auto graph = ReadEdgeList(args.positional[0], args.directed);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  WallTimer timer;
  const BcScores scores = ComputeBrandes(*graph);
  std::printf("Brandes on %zu vertices / %zu edges: %.3fs\n",
              graph->NumVertices(), graph->NumEdges(), timer.Seconds());
  PrintTop(scores, args.top);
  return MaybeWrite(scores, args.out_path);
}

int CmdStream(const CliArgs& args) {
  auto graph = ReadEdgeList(args.positional[0], args.directed);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  auto stream = ReadEdgeStream(args.positional[1]);
  if (!stream.ok()) {
    std::fprintf(stderr, "%s\n", stream.status().ToString().c_str());
    return 1;
  }
  DynamicBcOptions options;
  if (args.variant == "mp") {
    options.variant = BcVariant::kMemoryPredecessors;
  } else if (args.variant == "do") {
    options.variant = BcVariant::kOutOfCore;
    options.storage_path =
        args.store_path.empty() ? args.positional[0] + ".bd" : args.store_path;
  } else if (args.variant != "mo") {
    std::fprintf(stderr, "unknown variant %s (mo|mp|do)\n",
                 args.variant.c_str());
    return 1;
  }
  options.num_threads = args.threads;
  options.prefilter = args.prefilter;
  options.msbfs = args.msbfs;
  options.do_switch_threshold = args.do_switch_threshold;
  options.approx_samples = args.approx_samples;
  options.approx_epsilon = args.epsilon;
  options.approx_seed = args.seed;
  if (!ApplyStorageFlags(args, &options)) return 1;
  WallTimer init_timer;
  auto bc = DynamicBc::Create(std::move(*graph), options);
  if (!bc.ok()) {
    std::fprintf(stderr, "%s\n", bc.status().ToString().c_str());
    return 1;
  }
  std::printf("step 1 done in %.3fs (%zu vertices, %zu edges, %s, "
              "%d apply threads)\n",
              init_timer.Seconds(), (*bc)->graph().NumVertices(),
              (*bc)->graph().NumEdges(), args.variant.c_str(),
              (*bc)->num_threads());
  if ((*bc)->approx()) {
    std::printf(
        "sampled approximation: %zu sources (scale %.2f, epsilon %.3g, "
        "seed %llu) — printed scores are estimates\n",
        (*bc)->sample_sources().size(), (*bc)->approx_scale(), args.epsilon,
        static_cast<unsigned long long>(args.seed));
  }

  WallTimer stream_timer;
  UpdateStats totals;
  for (const EdgeUpdate& update : *stream) {
    if (Status st = (*bc)->Apply(update); !st.ok()) {
      std::fprintf(stderr, "update (%u,%u): %s\n", update.u, update.v,
                   st.ToString().c_str());
      return 1;
    }
    totals.Merge((*bc)->last_update_stats());
  }
  const double seconds = stream_timer.Seconds();
  std::printf(
      "applied %zu updates in %.3fs (%.2f ms/update); per-source passes: "
      "%llu skipped (%llu by prefilter, %.1f%%), %llu no-level-change, "
      "%llu structural\n",
      stream->size(), seconds,
      stream->empty() ? 0.0 : 1e3 * seconds / stream->size(),
      static_cast<unsigned long long>(totals.sources_skipped),
      static_cast<unsigned long long>(totals.sources_prefiltered),
      totals.sources_total > 0
          ? 100.0 * static_cast<double>(totals.sources_prefiltered) /
                static_cast<double>(totals.sources_total)
          : 0.0,
      static_cast<unsigned long long>(totals.sources_non_structural),
      static_cast<unsigned long long>(totals.sources_structural));
  std::printf("msbfs kernel: %s; %llu batches, %llu bottom-up levels\n",
              args.msbfs ? "on" : "off",
              static_cast<unsigned long long>(totals.msbfs_batches),
              static_cast<unsigned long long>(totals.bottom_up_levels));
  if ((*bc)->approx()) {
    const ApproxStatus approx = (*bc)->approx_status();
    std::printf(
        "approx: sample epoch %llu, %llu resample rounds, %llu source "
        "swaps, drift %.3f\n",
        static_cast<unsigned long long>(approx.sample_epoch),
        static_cast<unsigned long long>(approx.resample_rounds),
        static_cast<unsigned long long>(approx.source_swaps), approx.drift);
  }
  if (DiskBdStore* disk = (*bc)->disk_store()) {
    PrintStoreFootprint(*disk);
  }
  // EstimatedScores applies the n/k extrapolation in approx mode (and is
  // a plain copy in exact mode), so stdout and --out always speak
  // betweenness units, never raw sampled sums.
  const BcScores published = (*bc)->EstimatedScores();
  PrintTop(published, args.top);
  return MaybeWrite(published, args.out_path);
}

/// The update stream `serve` and `cluster` run: loaded from --stream=file,
/// or generated deterministically from (--updates, --churn, --seed) — the
/// same flags produce the same stream in both commands, which is what
/// makes the cluster-vs-single-process differential smoke meaningful.
/// False (with a message on stderr) on failure.
bool BuildServeStream(const CliArgs& args, const Graph& graph,
                      EdgeStream* stream) {
  if (!args.stream_file.empty()) {
    auto loaded = ReadEdgeStream(args.stream_file);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return false;
    }
    *stream = std::move(*loaded);
  } else {
    // Churn-heavy synthetic stream: a mixed add/remove prefix followed by
    // a same-edge-pool churn tail (--churn fraction of the updates). The
    // tail is generated against the post-prefix graph so every element
    // stays applicable in order.
    if (args.churn < 0.0 || args.churn > 1.0) {
      std::fprintf(stderr, "--churn must be in [0, 1]\n");
      return false;
    }
    Rng rng(args.seed);
    const std::size_t churn_count =
        static_cast<std::size_t>(args.churn * args.serve_updates);
    *stream = MixedUpdateStream(graph, args.serve_updates - churn_count, 0.3,
                                &rng);
    Graph scratch = graph;
    for (const EdgeUpdate& update : *stream) {
      if (!ApplyToGraph(&scratch, update).ok()) {
        std::fprintf(stderr, "internal: generated prefix not applicable\n");
        return false;
      }
    }
    EdgeStream churn = ChurnStream(
        scratch, churn_count,
        std::max<std::size_t>(8, scratch.NumVertices() / 64), &rng);
    stream->insert(stream->end(), churn.begin(), churn.end());
  }
  if (stream->empty()) {
    std::fprintf(stderr, "empty update stream\n");
    return false;
  }
  return true;
}

int CmdServe(const CliArgs& args) {
  auto graph = ReadEdgeList(args.positional[0], args.directed);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  EdgeStream stream;
  if (!BuildServeStream(args, *graph, &stream)) return 1;

  BcServiceOptions options;
  options.queue.capacity = args.queue_cap;
  options.queue.max_batch = args.batch;
  options.queue.batch_latency_budget_seconds = args.budget_ms / 1e3;
  options.queue.coalesce = args.coalesce;
  options.top_k = args.top;
  options.bc.num_threads = args.threads;
  options.bc.prefilter = args.prefilter;
  options.bc.msbfs = args.msbfs;
  options.bc.do_switch_threshold = args.do_switch_threshold;
  options.bc.approx_samples = args.approx_samples;
  options.bc.approx_epsilon = args.epsilon;
  options.bc.approx_seed = args.seed;
  options.durability.wal_dir = args.wal_dir;
  options.durability.checkpoint_dir = args.checkpoint_dir;
  options.durability.wal_fsync_every = args.fsync_every;
  options.durability.checkpoint_every_updates = args.checkpoint_every;
  options.durability.checkpoint_interval_seconds = args.checkpoint_interval;
  options.durability.kill_after_appends = args.kill_after;
  if (args.variant == "mp") {
    options.bc.variant = BcVariant::kMemoryPredecessors;
  } else if (args.variant == "do") {
    options.bc.variant = BcVariant::kOutOfCore;
    options.bc.storage_path =
        args.store_path.empty() ? args.positional[0] + ".bd" : args.store_path;
  } else if (args.variant != "mo") {
    std::fprintf(stderr, "unknown variant %s (mo|mp|do)\n",
                 args.variant.c_str());
    return 1;
  }
  if (!ApplyStorageFlags(args, &options.bc)) return 1;
  WallTimer init_timer;
  auto service = BcService::Create(std::move(*graph), options);
  if (!service.ok()) {
    std::fprintf(stderr, "%s\n", service.status().ToString().c_str());
    return 1;
  }
  std::printf("step 1 done in %.3fs; serving with batch=%zu budget=%.1fms "
              "coalesce=%s readers=%d apply-threads=%d prefilter=%s "
              "msbfs=%s\n",
              init_timer.Seconds(), args.batch, args.budget_ms,
              args.coalesce ? "on" : "off", args.readers, args.threads,
              args.prefilter ? "on" : "off", args.msbfs ? "on" : "off");
  if (!args.fault_schedule.empty()) {
    auto schedule = FaultSchedule::Parse(args.fault_schedule);
    if (!schedule.ok()) {
      std::fprintf(stderr, "%s\n", schedule.status().ToString().c_str());
      return 2;
    }
    // Armed only now, after bring-up, so the schedule's counts target
    // serving I/O, not Create's initial checkpoint. Deliberately leaked:
    // the process-global Io must outlive every later syscall.
    auto* fault_io = new FaultInjectingIo(std::move(*schedule));
    Io::Install(fault_io);
    std::printf("fault injection armed: %s\n",
                fault_io->schedule().ToString().c_str());
  }

  // Reader threads hammer the snapshot head with top-k queries while the
  // writer refreshes — the concurrent scenario the subsystem exists for.
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<bool> reader_ok{true};
  std::vector<std::thread> readers;
  for (int r = 0; r < args.readers; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last_epoch = 0;
      while (!done.load(std::memory_order_acquire)) {
        const auto snap = (*service)->snapshot();
        if (snap->epoch < last_epoch) reader_ok.store(false);
        last_epoch = snap->epoch;
        if (!snap->top_vertices.empty() &&
            snap->top_vertices.front().second < 0.0) {
          reader_ok.store(false);  // keeps the reads from optimizing away
        }
        reads.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();
      }
    });
  }

  WallTimer serve_timer;
  const std::size_t accepted = (*service)->SubmitAll(stream);
  const Status drain_status = (*service)->Drain();
  const double serve_seconds = serve_timer.Seconds();
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  if (!drain_status.ok()) {
    std::fprintf(stderr, "serve failed: %s\n",
                 drain_status.ToString().c_str());
    const Status final_status = (*service)->Stop();
    std::fprintf(stderr, "service health: %s; writer status: %s\n",
                 ServiceHealthName((*service)->health()),
                 final_status.ToString().c_str());
    return 1;
  }
  if (Status st = (*service)->Stop(); !st.ok()) {
    std::fprintf(stderr, "%s\nservice health: %s\n", st.ToString().c_str(),
                 ServiceHealthName((*service)->health()));
    return 1;
  }
  if ((*service)->health() != ServiceHealth::kHealthy) {
    // Degraded or read-only at shutdown is an operator-visible failure
    // even when every accepted update drained: checkpoints were lost or
    // the writer died after the drain target was met.
    std::fprintf(stderr, "service health: %s (%s)\n",
                 ServiceHealthName((*service)->health()),
                 (*service)->last_error().ToString().c_str());
    return 1;
  }
  // Stop() flushed the store; the footprint below reflects the serve run.
  if (DiskBdStore* disk = (*service)->framework()->disk_store()) {
    PrintStoreFootprint(*disk);
  }
  if (!reader_ok.load()) {
    std::fprintf(stderr, "reader observed a non-monotonic epoch\n");
    return 1;
  }

  const ServeMetricsSnapshot metrics = (*service)->metrics();
  std::printf(
      "served %zu/%zu updates in %.3fs (%.0f updates/s): applied %llu, "
      "coalesced %llu (%.1f%%), dropped %llu, %llu publishes\n",
      accepted, stream.size(), serve_seconds,
      serve_seconds > 0 ? accepted / serve_seconds : 0.0,
      static_cast<unsigned long long>(metrics.applied),
      static_cast<unsigned long long>(metrics.coalesced),
      metrics.received > 0 ? 100.0 * metrics.coalesced / metrics.received
                           : 0.0,
      static_cast<unsigned long long>(metrics.dropped),
      static_cast<unsigned long long>(metrics.publishes));
  std::printf(
      "prefilter skipped %llu of %llu source passes (%.1f%%)\n",
      static_cast<unsigned long long>(metrics.sources_prefiltered),
      static_cast<unsigned long long>(metrics.sources_total),
      metrics.sources_total > 0
          ? 100.0 * static_cast<double>(metrics.sources_prefiltered) /
                static_cast<double>(metrics.sources_total)
          : 0.0);
  std::printf("msbfs kernel: %s; %llu batches, %llu bottom-up levels\n",
              args.msbfs ? "on" : "off",
              static_cast<unsigned long long>(metrics.msbfs_batches),
              static_cast<unsigned long long>(metrics.bottom_up_levels));
  if (metrics.approx_samples > 0) {
    std::printf(
        "approx: %llu samples (epoch %llu), %llu resample rounds, %llu "
        "source swaps, drift %.3f — published scores are estimates\n",
        static_cast<unsigned long long>(metrics.approx_samples),
        static_cast<unsigned long long>(metrics.approx_sample_epoch),
        static_cast<unsigned long long>(metrics.approx_resamples),
        static_cast<unsigned long long>(metrics.approx_source_swaps),
        metrics.approx_drift);
  }
  std::printf(
      "latency p50 %.3fms p99 %.3fms; batch apply p50 %.3fms p99 %.3fms; "
      "%llu snapshot reads across %d readers\n",
      1e3 * metrics.p50_update_latency_seconds,
      1e3 * metrics.p99_update_latency_seconds,
      1e3 * metrics.p50_batch_apply_seconds,
      1e3 * metrics.p99_batch_apply_seconds,
      static_cast<unsigned long long>(reads.load()), args.readers);
  if (!args.wal_dir.empty()) {
    std::printf(
        "wal: %llu appends, %.1f KiB, %llu syncs, %llu rotations; "
        "checkpoints: %llu written, %llu skipped, last epoch %llu "
        "(%.3fs background write time)\n",
        static_cast<unsigned long long>(metrics.wal_appends),
        metrics.wal_bytes / 1024.0,
        static_cast<unsigned long long>(metrics.wal_syncs),
        static_cast<unsigned long long>(metrics.wal_rotations),
        static_cast<unsigned long long>(metrics.checkpoints_written),
        static_cast<unsigned long long>(metrics.checkpoints_skipped),
        static_cast<unsigned long long>(metrics.last_checkpoint_epoch),
        metrics.checkpoint_write_seconds);
  }

  const auto snap = (*service)->snapshot();
  std::printf("final epoch %llu at stream position %llu\n",
              static_cast<unsigned long long>(snap->epoch),
              static_cast<unsigned long long>(snap->stream_position));
  PrintTop(BcScores{snap->vbc, snap->ebc}, args.top);

  if (!args.json_path.empty()) {
    std::FILE* f = std::fopen(args.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", metrics.ToJson().c_str());
    std::fclose(f);
    std::printf("wrote %s\n", args.json_path.c_str());
  }
  return 0;
}

int CmdRecover(const CliArgs& args) {
  if (args.wal_dir.empty()) {
    std::fprintf(stderr, "recover requires --wal-dir=DIR\n");
    return 2;
  }
  BcServiceOptions options;
  options.queue.capacity = args.queue_cap;
  options.queue.max_batch = args.batch;
  options.queue.batch_latency_budget_seconds = args.budget_ms / 1e3;
  options.queue.coalesce = args.coalesce;
  options.top_k = args.top;
  options.bc.num_threads = args.threads;
  options.bc.prefilter = args.prefilter;
  options.bc.msbfs = args.msbfs;
  options.bc.do_switch_threshold = args.do_switch_threshold;
  // --approx on recover asserts the deployment being recovered was a
  // sampled one (BcService::Recover fails if the checkpoint disagrees);
  // the sample set itself always comes from the checkpoint blob.
  options.bc.approx_samples = args.approx_samples;
  options.bc.approx_epsilon = args.epsilon;
  options.bc.approx_seed = args.seed;
  // For the out-of-core variant this is where the checkpointed store is
  // installed as the live file (default: <checkpoint-dir>/live.bd).
  options.bc.storage_path = args.store_path;
  if (!ApplyStorageFlags(args, &options.bc)) return 1;
  options.durability.wal_dir = args.wal_dir;
  options.durability.checkpoint_dir = args.checkpoint_dir;
  options.durability.wal_fsync_every = args.fsync_every;
  options.durability.checkpoint_every_updates = args.checkpoint_every;
  options.durability.checkpoint_interval_seconds = args.checkpoint_interval;

  RecoveryInfo info;
  auto service = BcService::Recover(options, &info);
  if (!service.ok()) {
    std::fprintf(stderr, "recover failed: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "recovered from checkpoint epoch %llu (position %llu, variant %s) "
      "in %.3fs\n",
      static_cast<unsigned long long>(info.manifest_epoch),
      static_cast<unsigned long long>(info.manifest_stream_position),
      info.variant.c_str(), info.load_seconds);
  std::printf(
      "replayed %llu wal batches / %llu updates in %.3fs (%llu torn bytes "
      "truncated)\n",
      static_cast<unsigned long long>(info.replayed_batches),
      static_cast<unsigned long long>(info.replayed_updates),
      info.replay_seconds, static_cast<unsigned long long>(info.torn_bytes));
  if (info.poisoned_batches > 0) {
    std::printf(
        "amputated a poisoned final batch (%llu rejected updates) — the "
        "update that killed the previous writer; state is the last "
        "published one\n",
        static_cast<unsigned long long>(info.poisoned_updates));
  }
  const auto snap = (*service)->snapshot();
  std::printf("serving at epoch %llu, stream position %llu\n",
              static_cast<unsigned long long>(snap->epoch),
              static_cast<unsigned long long>(snap->stream_position));
  PrintTop(BcScores{snap->vbc, snap->ebc}, args.top);
  // Stop commits the clean-shutdown checkpoint, so the next start (or the
  // next recover) replays nothing.
  if (Status st = (*service)->Stop(); !st.ok()) {
    std::fprintf(stderr, "%s\nservice health: %s\n", st.ToString().c_str(),
                 ServiceHealthName((*service)->health()));
    return 1;
  }
  if ((*service)->health() != ServiceHealth::kHealthy) {
    std::fprintf(stderr, "service health: %s (%s)\n",
                 ServiceHealthName((*service)->health()),
                 (*service)->last_error().ToString().c_str());
    return 1;
  }
  std::printf("clean-shutdown checkpoint committed at epoch %llu\n",
              static_cast<unsigned long long>(info.recovered_epoch));
  if (const int rc = MaybeWrite(BcScores{snap->vbc, snap->ebc},
                                args.out_path);
      rc != 0) {
    return rc;
  }
  if (!args.json_path.empty()) {
    std::FILE* f = std::fopen(args.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\"manifest_epoch\": %llu, \"manifest_stream_position\": %llu, "
        "\"variant\": \"%s\", \"replayed_batches\": %llu, "
        "\"replayed_updates\": %llu, \"torn_bytes\": %llu, "
        "\"poisoned_batches\": %llu, \"poisoned_updates\": %llu, "
        "\"recovered_epoch\": %llu, \"recovered_stream_position\": %llu, "
        "\"load_seconds\": %.9g, \"replay_seconds\": %.9g}\n",
        static_cast<unsigned long long>(info.manifest_epoch),
        static_cast<unsigned long long>(info.manifest_stream_position),
        info.variant.c_str(),
        static_cast<unsigned long long>(info.replayed_batches),
        static_cast<unsigned long long>(info.replayed_updates),
        static_cast<unsigned long long>(info.torn_bytes),
        static_cast<unsigned long long>(info.poisoned_batches),
        static_cast<unsigned long long>(info.poisoned_updates),
        static_cast<unsigned long long>(info.recovered_epoch),
        static_cast<unsigned long long>(info.recovered_stream_position),
        info.load_seconds, info.replay_seconds);
    std::fclose(f);
    std::printf("wrote %s\n", args.json_path.c_str());
  }
  return 0;
}

/// The BcServiceOptions a shard worker runs with, from the same flags
/// `serve` uses (variant, storage engine, durability, threading).
bool BuildShardServiceOptions(const CliArgs& args, BcServiceOptions* options,
                              const std::string& default_store) {
  options->top_k = args.top;
  options->bc.num_threads = args.threads;
  options->bc.prefilter = args.prefilter;
  options->bc.msbfs = args.msbfs;
  options->bc.do_switch_threshold = args.do_switch_threshold;
  if (args.variant == "mp") {
    options->bc.variant = BcVariant::kMemoryPredecessors;
  } else if (args.variant == "do") {
    options->bc.variant = BcVariant::kOutOfCore;
    options->bc.storage_path =
        args.store_path.empty() ? default_store : args.store_path;
  } else if (args.variant != "mo") {
    std::fprintf(stderr, "unknown variant %s (mo|mp|do)\n",
                 args.variant.c_str());
    return false;
  }
  if (args.recover_mode) {
    // Recover takes the variant from the manifest; --store names where
    // the checkpointed BD file is installed (empty = default).
    options->bc.storage_path = args.store_path;
  }
  if (!ApplyStorageFlags(args, &options->bc)) return false;
  options->durability.wal_dir = args.wal_dir;
  options->durability.checkpoint_dir = args.checkpoint_dir;
  options->durability.wal_fsync_every = args.fsync_every;
  options->durability.checkpoint_every_updates = args.checkpoint_every;
  options->durability.checkpoint_interval_seconds = args.checkpoint_interval;
  options->durability.kill_after_appends = args.kill_after;
  return true;
}

int CmdShard(const CliArgs& args) {
  if (args.await_migration) {
    if (args.listen.empty()) {
      std::fprintf(stderr,
                   "shard --await-migration requires --listen=HOST:PORT\n");
      return 2;
    }
  } else if (args.listen.empty() || args.shards_spec.empty()) {
    std::fprintf(stderr,
                 "shard requires --listen=HOST:PORT, --shard-index=I and "
                 "--shards=N\n");
    return 2;
  }
  const std::size_t shard_count =
      args.await_migration ? 1
                           : std::strtoul(args.shards_spec.c_str(), nullptr,
                                          10);
  if (shard_count == 0 || args.shard_index >= shard_count) {
    std::fprintf(stderr, "--shard-index=%zu outside --shards=%s\n",
                 args.shard_index, args.shards_spec.c_str());
    return 2;
  }
  ShardWorkerOptions options;
  options.shard_index = args.shard_index;
  options.shard_count = shard_count;
  const std::string default_store =
      args.await_migration
          ? "joining.bd"
          : (args.positional.empty()
                 ? "shard" + std::to_string(args.shard_index) + ".bd"
                 : args.positional[0] + ".shard" +
                       std::to_string(args.shard_index) + ".bd");
  if (!BuildShardServiceOptions(args, &options.service, default_store)) {
    return 2;
  }
  static TcpTransport transport;
  Result<std::unique_ptr<ShardWorker>> worker =
      Status::InvalidArgument("unreachable");
  if (args.await_migration) {
    // An empty recipient: slot, range, and base state all arrive with the
    // first donor's migration offer (a coordinator --split names us).
    worker = ShardWorker::AwaitMigration(&transport, args.listen, options);
  } else if (args.recover_mode) {
    if (args.wal_dir.empty()) {
      std::fprintf(stderr, "shard --recover requires --wal-dir=DIR\n");
      return 2;
    }
    RecoveryInfo info;
    worker = ShardWorker::Recover(&transport, args.listen, options, &info);
    if (worker.ok()) {
      std::printf(
          "shard %zu/%zu recovered from checkpoint epoch %llu; replayed "
          "%llu wal batches to epoch %llu\n",
          args.shard_index, shard_count,
          static_cast<unsigned long long>(info.manifest_epoch),
          static_cast<unsigned long long>(info.replayed_batches),
          static_cast<unsigned long long>(info.recovered_epoch));
    }
  } else {
    auto graph = ReadEdgeList(args.positional[0], args.directed);
    if (!graph.ok()) {
      std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
      return 1;
    }
    worker = ShardWorker::Start(std::move(*graph), &transport, args.listen,
                                options);
  }
  if (!worker.ok()) {
    std::fprintf(stderr, "shard: %s\n", worker.status().ToString().c_str());
    return 1;
  }
  if (args.await_migration) {
    std::printf("shard awaiting migration on %s\n",
                (*worker)->address().c_str());
  } else {
    const ShardRange range = (*worker)->range();
    std::printf("shard %zu/%zu serving sources [%u, %s) on %s\n",
                args.shard_index, shard_count, range.begin,
                range.open_ended() ? "end"
                                   : std::to_string(range.end).c_str(),
                (*worker)->address().c_str());
  }
  std::fflush(stdout);
  (*worker)->Wait();
  const Status st = (*worker)->Stop();
  if ((*worker)->service() == nullptr) {
    // An await-migration worker stopped before any donor showed up.
    std::printf("shard stopped before any migration arrived\n");
    return st.ok() ? 0 : 1;
  }
  const ServiceHealth health = (*worker)->service()->health();
  std::printf("shard %zu stopped at epoch %llu (health: %s)\n",
              args.shard_index,
              static_cast<unsigned long long>(
                  (*worker)->service()->final_epoch()),
              ServiceHealthName(health));
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  return health == ServiceHealth::kHealthy ? 0 : 1;
}

/// Submits stream[begin, end) to the coordinator, sleeping --pace-ms
/// between updates so a failover smoke can kill the primary mid-stream
/// with work still in flight.
std::size_t SubmitPaced(ClusterCoordinator* coordinator,
                        const EdgeStream& stream, std::size_t begin,
                        std::size_t end, double pace_ms) {
  std::size_t accepted = 0;
  for (std::size_t i = begin; i < end; ++i) {
    if (!coordinator->Submit(stream[i])) break;
    ++accepted;
    if (pace_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(pace_ms));
    }
  }
  return accepted;
}

/// The shared tail of every cluster run (primary or post-takeover
/// standby): per-shard status, the final snapshot + top-K block the smoke
/// byte-compares, optional score/JSON dumps, and the health-based exit
/// code.
int PrintClusterTail(ClusterCoordinator* coordinator, const CliArgs& args) {
  for (const ShardStatus& shard : coordinator->shard_status()) {
    std::printf(
        "  shard %s: sources [%u, %s), epoch %llu, health %s, "
        "%llu reconnects, %llu resent batches\n",
        shard.address.c_str(), shard.range.begin,
        shard.range.open_ended() ? "end"
                                 : std::to_string(shard.range.end).c_str(),
        static_cast<unsigned long long>(shard.epoch),
        ServiceHealthName(shard.health),
        static_cast<unsigned long long>(shard.reconnects),
        static_cast<unsigned long long>(shard.resent_batches));
  }

  const auto snap = coordinator->snapshot();
  std::printf("final epoch %llu at stream position %llu\n",
              static_cast<unsigned long long>(snap->epoch),
              static_cast<unsigned long long>(snap->stream_position));
  PrintTop(BcScores{snap->vbc, snap->ebc}, args.top);
  if (const int rc = MaybeWrite(BcScores{snap->vbc, snap->ebc}, args.out_path);
      rc != 0) {
    return rc;
  }
  if (!args.json_path.empty()) {
    std::FILE* f = std::fopen(args.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", coordinator->metrics().ToJson().c_str());
    std::fclose(f);
    std::printf("wrote %s\n", args.json_path.c_str());
  }
  if (coordinator->health() != ServiceHealth::kHealthy) {
    std::fprintf(stderr, "coordinator health: %s (%s)\n",
                 ServiceHealthName(coordinator->health()),
                 coordinator->last_error().ToString().c_str());
    return 1;
  }
  return 0;
}

/// The warm-standby flow of `cluster --standby-of`: tail the primary's
/// feed, and either exit quietly when the primary stops cleanly or take
/// over — resume the deterministic stream at the replicated position and
/// finish it to the same final block a never-failed run prints.
int CmdClusterStandby(const CliArgs& args,
                      const std::vector<std::string>& addresses, Graph graph,
                      const EdgeStream& stream,
                      const ClusterCoordinatorOptions& options) {
  static TcpTransport transport;
  auto standby = ClusterCoordinator::Standby(std::move(graph), addresses,
                                             &transport, args.standby_of,
                                             options);
  if (!standby.ok()) {
    std::fprintf(stderr, "standby bring-up: %s\n",
                 standby.status().ToString().c_str());
    return 1;
  }
  std::printf("standby tailing %s\n", args.standby_of.c_str());
  std::fflush(stdout);

  bool announced = false;
  while ((*standby)->role() == ClusterCoordinator::Role::kStandbyTailing) {
    if (!announced && (*standby)->standby_attached()) {
      announced = true;
      std::printf("standby attached to primary (epoch %llu)\n",
                  static_cast<unsigned long long>((*standby)->final_epoch()));
      std::fflush(stdout);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const Status active = (*standby)->WaitUntilActive(60.0);
  if ((*standby)->role() == ClusterCoordinator::Role::kStandbyFinished) {
    std::printf("primary stopped cleanly; standby exiting\n");
    return 0;
  }
  if (!active.ok()) {
    std::fprintf(stderr, "standby failed: %s\n", active.ToString().c_str());
    return 1;
  }

  const ServeMetricsSnapshot at_takeover = (*standby)->metrics();
  std::printf("standby took over at epoch %llu (gap %.0f ms)\n",
              static_cast<unsigned long long>((*standby)->final_epoch()),
              1e3 * at_takeover.failover_gap_seconds);
  std::fflush(stdout);

  // The stream is deterministic (same seed/file as the primary), so the
  // replicated position tells us exactly where to resume.
  const std::size_t resume =
      static_cast<std::size_t>((*standby)->final_position());
  if (resume > stream.size()) {
    std::fprintf(stderr,
                 "replicated position %zu is beyond the %zu-update stream — "
                 "the standby was started with different stream flags than "
                 "the primary\n",
                 resume, stream.size());
    return 1;
  }
  SubmitPaced(standby->get(), stream, resume, stream.size(), args.pace_ms);
  if (Status drained = (*standby)->Drain(); !drained.ok()) {
    std::fprintf(stderr, "standby drain: %s\n", drained.ToString().c_str());
    (void)(*standby)->Stop();
    return 1;
  }
  const int rc = PrintClusterTail(standby->get(), args);
  if (Status stopped = (*standby)->Stop(); !stopped.ok()) {
    std::fprintf(stderr, "%s\n", stopped.ToString().c_str());
    return 1;
  }
  return rc;
}

int CmdCluster(const CliArgs& args) {
  if (args.shards_spec.empty()) {
    std::fprintf(stderr, "cluster requires --shards=HOST:PORT,HOST:PORT,...\n");
    return 2;
  }
  std::vector<std::string> addresses;
  for (std::size_t start = 0; start <= args.shards_spec.size();) {
    std::size_t comma = args.shards_spec.find(',', start);
    if (comma == std::string::npos) comma = args.shards_spec.size();
    if (comma > start) {
      addresses.push_back(args.shards_spec.substr(start, comma - start));
    }
    start = comma + 1;
  }
  if (addresses.empty()) {
    std::fprintf(stderr, "no shard addresses in --shards\n");
    return 2;
  }
  auto graph = ReadEdgeList(args.positional[0], args.directed);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  EdgeStream stream;
  if (!BuildServeStream(args, *graph, &stream)) return 1;

  ClusterCoordinatorOptions options;
  options.queue.capacity = args.queue_cap;
  options.queue.max_batch = args.batch;
  options.queue.batch_latency_budget_seconds = args.budget_ms / 1e3;
  options.queue.coalesce = args.coalesce;
  options.top_k = args.top;
  options.shard_retry_seconds = args.retry_seconds;
  options.standby_listen = args.standby_listen;
  if (!args.standby_of.empty()) {
    return CmdClusterStandby(args, addresses, std::move(*graph), stream,
                             options);
  }

  static TcpTransport transport;
  WallTimer connect_timer;
  auto coordinator = ClusterCoordinator::Connect(std::move(*graph), addresses,
                                                 &transport, options);
  if (!coordinator.ok()) {
    std::fprintf(stderr, "cluster bring-up: %s\n",
                 coordinator.status().ToString().c_str());
    return 1;
  }
  std::printf("cluster up in %.3fs: %zu shards, epoch %llu\n",
              connect_timer.Seconds(), (*coordinator)->num_shards(),
              static_cast<unsigned long long>((*coordinator)->final_epoch()));
  if (!(*coordinator)->standby_address().empty()) {
    std::printf("standby feed on %s\n",
                (*coordinator)->standby_address().c_str());
  }
  std::fflush(stdout);

  // A requested live rebalance cuts the stream in half so the split/merge
  // runs with updates still flowing on both sides of the commit.
  const bool rebalance = args.split_index >= 0 || args.merge_index >= 0;
  const std::size_t first_leg = rebalance ? stream.size() / 2 : stream.size();
  WallTimer serve_timer;
  std::size_t accepted =
      SubmitPaced(coordinator->get(), stream, 0, first_leg, args.pace_ms);
  if (args.split_index >= 0) {
    if (args.split_recipient.empty()) {
      std::fprintf(stderr, "--split requires --split-recipient=HOST:PORT\n");
      (void)(*coordinator)->Stop();
      return 2;
    }
    const Status split = (*coordinator)->SplitShard(
        static_cast<std::size_t>(args.split_index), args.split_recipient);
    if (!split.ok()) {
      std::fprintf(stderr, "split failed: %s\n", split.ToString().c_str());
      (void)(*coordinator)->Stop();
      return 1;
    }
    std::printf("split shard %ld: now %zu shards (map v%llu)\n",
                args.split_index, (*coordinator)->num_shards(),
                static_cast<unsigned long long>(
                    (*coordinator)->metrics().shard_map_version));
    std::fflush(stdout);
  }
  if (args.merge_index >= 0) {
    const Status merged = (*coordinator)->MergeShards(
        static_cast<std::size_t>(args.merge_index));
    if (!merged.ok()) {
      std::fprintf(stderr, "merge failed: %s\n", merged.ToString().c_str());
      (void)(*coordinator)->Stop();
      return 1;
    }
    std::printf("merged shard %ld into %ld: now %zu shards (map v%llu)\n",
                args.merge_index + 1, args.merge_index,
                (*coordinator)->num_shards(),
                static_cast<unsigned long long>(
                    (*coordinator)->metrics().shard_map_version));
    std::fflush(stdout);
  }
  accepted += SubmitPaced(coordinator->get(), stream, first_leg,
                          stream.size(), args.pace_ms);
  const Status drain_status = (*coordinator)->Drain();
  const double serve_seconds = serve_timer.Seconds();
  if (!drain_status.ok()) {
    std::fprintf(stderr, "cluster failed: %s\n",
                 drain_status.ToString().c_str());
    (void)(*coordinator)->Stop();
    std::fprintf(stderr, "coordinator health: %s\n",
                 ServiceHealthName((*coordinator)->health()));
    return 1;
  }

  const ServeMetricsSnapshot metrics = (*coordinator)->metrics();
  std::printf(
      "replicated %zu/%zu updates in %.3fs (%.0f updates/s): applied %llu, "
      "coalesced %llu, %llu publishes\n",
      accepted, stream.size(), serve_seconds,
      serve_seconds > 0 ? accepted / serve_seconds : 0.0,
      static_cast<unsigned long long>(metrics.applied),
      static_cast<unsigned long long>(metrics.coalesced),
      static_cast<unsigned long long>(metrics.publishes));
  std::printf(
      "latency p50 %.3fms p99 %.3fms; batch replicate+merge p50 %.3fms "
      "p99 %.3fms\n",
      1e3 * metrics.p50_update_latency_seconds,
      1e3 * metrics.p99_update_latency_seconds,
      1e3 * metrics.p50_batch_apply_seconds,
      1e3 * metrics.p99_batch_apply_seconds);
  const int rc = PrintClusterTail(coordinator->get(), args);
  const Status stop_status = (*coordinator)->Stop();
  if (!stop_status.ok()) {
    std::fprintf(stderr, "%s\n", stop_status.ToString().c_str());
    return 1;
  }
  return rc;
}

int CmdStats(const CliArgs& args) {
  auto graph = ReadEdgeList(args.positional[0], args.directed);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  Rng rng(1);
  const std::size_t n = graph->NumVertices();
  const GraphStats stats = ComputeGraphStats(
      *graph, &rng, n > 20000 ? 8000 : 0, n > 2000 ? 200 : 0);
  std::printf("|V| %zu  |E| %zu  AD %.2f  CC %.4f  ED %.2f\n", stats.vertices,
              stats.edges, stats.average_degree, stats.clustering,
              stats.effective_diameter);
  if (!args.store_path.empty()) {
    auto store = DiskBdStore::Open(args.store_path);
    if (!store.ok()) {
      std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
      return 1;
    }
    PrintStoreFootprint(**store);
  }
  return 0;
}

int CmdGenerate(const CliArgs& args) {
  const std::string& kind = args.positional[0];
  const std::size_t n = std::strtoul(args.positional[1].c_str(), nullptr, 10);
  if (n == 0) {
    std::fprintf(stderr, "vertex count must be positive\n");
    return 1;
  }
  Rng rng(args.seed);
  Graph graph;
  ArrivalProcess arrivals;
  if (const DatasetProfile* profile = FindProfile(kind)) {
    graph = BuildProfileGraph(*profile, n, &rng);
    arrivals = profile->arrivals;
  } else if (kind == "social") {
    graph = GenerateSocialGraph(n, SocialGraphParams::PaperDefaults(), &rng);
  } else if (kind == "tree") {
    graph = GenerateRandomTree(n, &rng);
  } else {
    std::fprintf(stderr,
                 "unknown kind '%s' (profile name, 'social', or 'tree')\n",
                 kind.c_str());
    return 1;
  }
  const std::string out =
      args.out_path.empty() ? kind + ".txt" : args.out_path;
  if (Status st = WriteEdgeList(graph, out); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu vertices, %zu edges\n", out.c_str(),
              graph.NumVertices(), graph.NumEdges());
  if (args.stream_edges > 0) {
    EdgeStream stream = RandomAdditionStream(graph, args.stream_edges, &rng);
    StampArrivalTimes(&stream, arrivals, 0.0, &rng);
    const std::string stream_out = args.stream_out_path.empty()
                                       ? kind + ".stream.txt"
                                       : args.stream_out_path;
    if (Status st = WriteEdgeStream(stream, stream_out); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s: %zu timestamped additions\n", stream_out.c_str(),
                stream.size());
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: sobc_cli scores <graph> [--directed] [--out=f.tsv] "
               "[--top=K]\n"
               "       sobc_cli stream <graph> <stream> [--directed] "
               "[--variant=mo|mp|do] [--store=f.bd] "
               "[--store-codec=raw|delta] [--cache-mb=M] [--no-prefetch] "
               "[--out=f.tsv] [--top=K] [--threads=T] [--no-prefilter] "
               "[--no-msbfs] [--do-switch-threshold=A] "
               "[--approx=K --epsilon=E]\n"
               "       sobc_cli stats <graph> [--directed] [--store=f.bd]\n"
               "       sobc_cli generate <profile|social|tree> <vertices> "
               "[--seed=S] [--out=g.txt] [--stream=N] [--stream-out=s.txt]\n"
               "       sobc_cli serve <graph> [--directed] "
               "[--stream=file|--updates=N] [--churn=F] [--readers=R] "
               "[--batch=B] [--budget-ms=M] [--queue-cap=C] [--no-coalesce] "
               "[--threads=T] [--no-prefilter] [--no-msbfs] "
               "[--do-switch-threshold=A] [--approx=K --epsilon=E] "
               "[--variant=mo|mp|do] "
               "[--store=f.bd] [--store-codec=raw|delta] [--cache-mb=M] "
               "[--no-prefetch] [--top=K] [--seed=S] [--json=report.json] "
               "[--wal-dir=D] [--checkpoint-dir=D] [--checkpoint-every=N] "
               "[--checkpoint-interval=S] [--fsync=N] "
               "[--fault-schedule=SPEC]\n"
               "       sobc_cli recover --wal-dir=D [--checkpoint-dir=D] "
               "[--store=live.bd] [--threads=T] [--no-prefilter] "
               "[--cache-mb=M] [--no-prefetch] [--approx=K] [--top=K] "
               "[--out=f.tsv] [--json=report.json]\n"
               "       sobc_cli shard <graph> --listen=H:P --shard-index=I "
               "--shards=N [--directed] [--variant=mo|mp|do] [--store=f.bd] "
               "[--threads=T] [--no-prefilter] [--wal-dir=D] "
               "[--checkpoint-dir=D] [--checkpoint-every=N] "
               "[--checkpoint-interval=S] [--fsync=N] [--kill-after=N]\n"
               "       sobc_cli shard --recover --wal-dir=D --listen=H:P "
               "--shard-index=I --shards=N [--checkpoint-dir=D] "
               "[--store=live.bd] [--threads=T]\n"
               "       sobc_cli shard --await-migration --listen=H:P "
               "[--variant=mo|mp|do] [--store=f.bd] [--threads=T] "
               "[--wal-dir=D] [--checkpoint-dir=D]\n"
               "       sobc_cli cluster <graph> --shards=H:P,H:P,... "
               "[--directed] [--stream=file|--updates=N] [--churn=F] "
               "[--batch=B] [--budget-ms=M] [--queue-cap=C] [--no-coalesce] "
               "[--top=K] [--seed=S] [--retry-seconds=S] [--pace-ms=M] "
               "[--standby-listen=H:P] [--split=I --split-recipient=H:P] "
               "[--merge=I] [--out=f.tsv] [--json=report.json]\n"
               "       sobc_cli cluster <graph> --shards=H:P,H:P,... "
               "--standby-of=H:P [same stream flags as the primary]\n");
  return 2;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  CliArgs args;
  if (!ParseArgs(argc, argv, &args)) return Usage();
  const std::string command = argv[1];
  if (command == "scores" && args.positional.size() == 1) {
    return CmdScores(args);
  }
  if (command == "stream" && args.positional.size() == 2) {
    return CmdStream(args);
  }
  if (command == "stats" && args.positional.size() == 1) {
    return CmdStats(args);
  }
  if (command == "serve" && args.positional.size() == 1) {
    return CmdServe(args);
  }
  if (command == "recover" && args.positional.empty()) {
    return CmdRecover(args);
  }
  if (command == "shard" &&
      (args.positional.size() == 1 ||
       ((args.recover_mode || args.await_migration) &&
        args.positional.empty()))) {
    return CmdShard(args);
  }
  if (command == "cluster" && args.positional.size() == 1) {
    return CmdCluster(args);
  }
  if (command == "generate" && args.positional.size() == 2) {
    return CmdGenerate(args);
  }
  return Usage();
}

}  // namespace
}  // namespace sobc

int main(int argc, char** argv) { return sobc::Main(argc, argv); }
