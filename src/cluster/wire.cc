#include "cluster/wire.h"

#include <cstring>

namespace sobc {

namespace {

void PutU8(std::string* out, std::uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutDouble(std::string* out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, const std::string& v) {
  PutU32(out, static_cast<std::uint32_t>(v.size()));
  out->append(v);
}

void PutScores(std::string* out, const BcScores& scores) {
  PutU64(out, scores.vbc.size());
  for (double v : scores.vbc) PutDouble(out, v);
  PutU64(out, scores.ebc.size());
  for (const auto& [key, value] : scores.ebc) {
    PutU32(out, key.u);
    PutU32(out, key.v);
    PutDouble(out, value);
  }
}

/// Bounds-checked little-endian reader; the first failed read makes every
/// later one fail too, so decoders check once at the end.
class WireReader {
 public:
  explicit WireReader(const std::string& buf) : buf_(buf) {}

  std::uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<std::uint8_t>(buf_[pos_++]);
  }

  std::uint32_t U32() {
    if (!Need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(buf_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t U64() {
    if (!Need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(buf_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  double Double() {
    const std::uint64_t bits = U64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string String() {
    const std::uint32_t len = U32();
    if (!Need(len)) return {};
    std::string v = buf_.substr(pos_, len);
    pos_ += len;
    return v;
  }

  BcScores Scores() {
    BcScores scores;
    const std::uint64_t n = U64();
    if (!CheckCount(n, 8)) return scores;
    scores.vbc.resize(n);
    for (std::uint64_t i = 0; i < n; ++i) scores.vbc[i] = Double();
    const std::uint64_t edges = U64();
    if (!CheckCount(edges, 16)) return scores;
    scores.ebc.reserve(edges);
    for (std::uint64_t i = 0; i < edges; ++i) {
      EdgeKey key;
      key.u = U32();
      key.v = U32();
      scores.ebc[key] = Double();
    }
    return scores;
  }

  /// True when every read so far was in bounds and the payload is spent.
  bool Finished() const { return ok_ && pos_ == buf_.size(); }
  bool ok() const { return ok_; }

 private:
  bool Need(std::size_t bytes) {
    if (!ok_ || buf_.size() - pos_ < bytes) {
      ok_ = false;
      return false;
    }
    return true;
  }

  /// Guards element-count fields before resize/reserve: a count claiming
  /// more elements than the payload could possibly hold is corruption,
  /// not a huge allocation.
  bool CheckCount(std::uint64_t count, std::size_t element_bytes) {
    if (!ok_ || count > (buf_.size() - pos_) / element_bytes) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::string& buf_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

void PutUpdates(std::string* out, const std::vector<EdgeUpdate>& updates) {
  PutU32(out, static_cast<std::uint32_t>(updates.size()));
  for (const EdgeUpdate& update : updates) {
    PutU32(out, update.u);
    PutU32(out, update.v);
    PutU8(out, static_cast<std::uint8_t>(update.op));
    PutDouble(out, update.timestamp);
  }
}

std::vector<EdgeUpdate> ReadUpdates(WireReader* reader) {
  std::vector<EdgeUpdate> updates;
  const std::uint32_t count = reader->U32();
  for (std::uint32_t i = 0; i < count && reader->ok(); ++i) {
    EdgeUpdate update;
    update.u = reader->U32();
    update.v = reader->U32();
    update.op = static_cast<EdgeOp>(reader->U8());
    update.timestamp = reader->Double();
    updates.push_back(update);
  }
  return updates;
}

Status Malformed(const char* what) {
  return Status::IOError(std::string("malformed ") + what + " message");
}

Status CheckType(WireReader* reader, MsgType expected, const char* what) {
  if (reader->U8() != static_cast<std::uint8_t>(expected)) {
    return Status::IOError(std::string("payload is not a ") + what +
                           " message");
  }
  return Status::OK();
}

}  // namespace

Result<MsgType> PeekType(const std::string& payload) {
  if (payload.empty()) return Status::InvalidArgument("empty payload");
  return static_cast<MsgType>(static_cast<std::uint8_t>(payload[0]));
}

std::string EncodeHello(const HelloMsg& msg) {
  std::string out;
  PutU8(&out, static_cast<std::uint8_t>(MsgType::kHello));
  PutU32(&out, msg.protocol_version);
  PutU64(&out, msg.num_vertices);
  PutU64(&out, msg.num_edges);
  PutU8(&out, msg.directed ? 1 : 0);
  return out;
}

Result<HelloMsg> DecodeHello(const std::string& payload) {
  WireReader reader(payload);
  SOBC_RETURN_NOT_OK(CheckType(&reader, MsgType::kHello, "hello"));
  HelloMsg msg;
  msg.protocol_version = reader.U32();
  msg.num_vertices = reader.U64();
  msg.num_edges = reader.U64();
  msg.directed = reader.U8() != 0;
  if (!reader.Finished()) return Malformed("hello");
  return msg;
}

std::string EncodeHelloAck(const HelloAckMsg& msg) {
  std::string out;
  PutU8(&out, static_cast<std::uint8_t>(MsgType::kHelloAck));
  PutU32(&out, msg.protocol_version);
  PutU32(&out, msg.shard_index);
  PutU32(&out, msg.shard_count);
  PutU32(&out, msg.range.begin);
  PutU32(&out, msg.range.end);
  PutU64(&out, msg.epoch);
  PutU64(&out, msg.stream_position);
  PutU8(&out, msg.health);
  PutU64(&out, msg.num_vertices);
  PutU64(&out, msg.num_edges);
  PutU8(&out, msg.directed ? 1 : 0);
  PutU64(&out, msg.map_version);
  return out;
}

Result<HelloAckMsg> DecodeHelloAck(const std::string& payload) {
  WireReader reader(payload);
  SOBC_RETURN_NOT_OK(CheckType(&reader, MsgType::kHelloAck, "hello-ack"));
  HelloAckMsg msg;
  msg.protocol_version = reader.U32();
  msg.shard_index = reader.U32();
  msg.shard_count = reader.U32();
  msg.range.begin = reader.U32();
  msg.range.end = reader.U32();
  msg.epoch = reader.U64();
  msg.stream_position = reader.U64();
  msg.health = reader.U8();
  msg.num_vertices = reader.U64();
  msg.num_edges = reader.U64();
  msg.directed = reader.U8() != 0;
  msg.map_version = reader.U64();
  if (!reader.Finished()) return Malformed("hello-ack");
  return msg;
}

std::string EncodeApply(const ApplyMsg& msg) {
  std::string out;
  PutU8(&out, static_cast<std::uint8_t>(MsgType::kApply));
  PutU64(&out, msg.epoch);
  PutU64(&out, msg.stream_position);
  PutUpdates(&out, msg.updates);
  return out;
}

Result<ApplyMsg> DecodeApply(const std::string& payload) {
  WireReader reader(payload);
  SOBC_RETURN_NOT_OK(CheckType(&reader, MsgType::kApply, "apply"));
  ApplyMsg msg;
  msg.epoch = reader.U64();
  msg.stream_position = reader.U64();
  msg.updates = ReadUpdates(&reader);
  if (!reader.Finished()) return Malformed("apply");
  return msg;
}

std::string EncodeApplyAck(const ApplyAckMsg& msg) {
  std::string out;
  PutU8(&out, static_cast<std::uint8_t>(MsgType::kApplyAck));
  PutU64(&out, msg.epoch);
  PutU64(&out, msg.stream_position);
  PutU8(&out, msg.ok ? 1 : 0);
  PutU8(&out, msg.status_code);
  PutString(&out, msg.message);
  PutU8(&out, msg.health);
  PutU64(&out, msg.sources_total);
  PutU64(&out, msg.sources_prefiltered);
  PutScores(&out, msg.partial);
  return out;
}

Result<ApplyAckMsg> DecodeApplyAck(const std::string& payload) {
  WireReader reader(payload);
  SOBC_RETURN_NOT_OK(CheckType(&reader, MsgType::kApplyAck, "apply-ack"));
  ApplyAckMsg msg;
  msg.epoch = reader.U64();
  msg.stream_position = reader.U64();
  msg.ok = reader.U8() != 0;
  msg.status_code = reader.U8();
  msg.message = reader.String();
  msg.health = reader.U8();
  msg.sources_total = reader.U64();
  msg.sources_prefiltered = reader.U64();
  msg.partial = reader.Scores();
  if (!reader.Finished()) return Malformed("apply-ack");
  return msg;
}

std::string EncodeFetch() {
  std::string out;
  PutU8(&out, static_cast<std::uint8_t>(MsgType::kFetch));
  return out;
}

std::string EncodePartial(const PartialMsg& msg) {
  std::string out;
  PutU8(&out, static_cast<std::uint8_t>(MsgType::kPartial));
  PutU64(&out, msg.epoch);
  PutU64(&out, msg.stream_position);
  PutU8(&out, msg.health);
  PutScores(&out, msg.partial);
  return out;
}

Result<PartialMsg> DecodePartial(const std::string& payload) {
  WireReader reader(payload);
  SOBC_RETURN_NOT_OK(CheckType(&reader, MsgType::kPartial, "partial"));
  PartialMsg msg;
  msg.epoch = reader.U64();
  msg.stream_position = reader.U64();
  msg.health = reader.U8();
  msg.partial = reader.Scores();
  if (!reader.Finished()) return Malformed("partial");
  return msg;
}

std::string EncodeShutdown() {
  std::string out;
  PutU8(&out, static_cast<std::uint8_t>(MsgType::kShutdown));
  return out;
}

std::string EncodeShutdownAck() {
  std::string out;
  PutU8(&out, static_cast<std::uint8_t>(MsgType::kShutdownAck));
  return out;
}

std::string EncodeReplicate(const ReplicateMsg& msg) {
  std::string out;
  PutU8(&out, static_cast<std::uint8_t>(MsgType::kReplicate));
  PutU8(&out, msg.kind);
  PutU64(&out, msg.epoch);
  PutU64(&out, msg.stream_position);
  PutU64(&out, msg.num_vertices);
  PutU64(&out, msg.num_edges);
  PutU8(&out, msg.directed ? 1 : 0);
  PutUpdates(&out, msg.updates);
  return out;
}

Result<ReplicateMsg> DecodeReplicate(const std::string& payload) {
  WireReader reader(payload);
  SOBC_RETURN_NOT_OK(CheckType(&reader, MsgType::kReplicate, "replicate"));
  ReplicateMsg msg;
  msg.kind = reader.U8();
  msg.epoch = reader.U64();
  msg.stream_position = reader.U64();
  msg.num_vertices = reader.U64();
  msg.num_edges = reader.U64();
  msg.directed = reader.U8() != 0;
  msg.updates = ReadUpdates(&reader);
  if (!reader.Finished()) return Malformed("replicate");
  return msg;
}

std::string EncodeReplicateAck(const ReplicateAckMsg& msg) {
  std::string out;
  PutU8(&out, static_cast<std::uint8_t>(MsgType::kReplicateAck));
  PutU64(&out, msg.epoch);
  PutU8(&out, msg.ok ? 1 : 0);
  PutString(&out, msg.message);
  return out;
}

Result<ReplicateAckMsg> DecodeReplicateAck(const std::string& payload) {
  WireReader reader(payload);
  SOBC_RETURN_NOT_OK(
      CheckType(&reader, MsgType::kReplicateAck, "replicate-ack"));
  ReplicateAckMsg msg;
  msg.epoch = reader.U64();
  msg.ok = reader.U8() != 0;
  msg.message = reader.String();
  if (!reader.Finished()) return Malformed("replicate-ack");
  return msg;
}

std::string EncodeSplitRange(const SplitRangeMsg& msg) {
  std::string out;
  PutU8(&out, static_cast<std::uint8_t>(MsgType::kSplitRange));
  PutU64(&out, msg.map_version);
  PutU32(&out, msg.range.begin);
  PutU32(&out, msg.range.end);
  return out;
}

Result<SplitRangeMsg> DecodeSplitRange(const std::string& payload) {
  WireReader reader(payload);
  SOBC_RETURN_NOT_OK(CheckType(&reader, MsgType::kSplitRange, "split-range"));
  SplitRangeMsg msg;
  msg.map_version = reader.U64();
  msg.range.begin = reader.U32();
  msg.range.end = reader.U32();
  if (!reader.Finished()) return Malformed("split-range");
  return msg;
}

std::string EncodeMergeRange(const MergeRangeMsg& msg) {
  std::string out;
  PutU8(&out, static_cast<std::uint8_t>(MsgType::kMergeRange));
  PutU64(&out, msg.map_version);
  PutU32(&out, msg.range.begin);
  PutU32(&out, msg.range.end);
  return out;
}

Result<MergeRangeMsg> DecodeMergeRange(const std::string& payload) {
  WireReader reader(payload);
  SOBC_RETURN_NOT_OK(CheckType(&reader, MsgType::kMergeRange, "merge-range"));
  MergeRangeMsg msg;
  msg.map_version = reader.U64();
  msg.range.begin = reader.U32();
  msg.range.end = reader.U32();
  if (!reader.Finished()) return Malformed("merge-range");
  return msg;
}

std::string EncodeMigrateBegin(const MigrateBeginMsg& msg) {
  std::string out;
  PutU8(&out, static_cast<std::uint8_t>(MsgType::kMigrateBegin));
  PutU64(&out, msg.epoch);
  PutU64(&out, msg.stream_position);
  PutU64(&out, msg.map_version);
  PutU32(&out, msg.range.begin);
  PutU32(&out, msg.range.end);
  PutU32(&out, msg.shard_index);
  PutU32(&out, msg.shard_count);
  PutU64(&out, msg.total_bytes);
  PutString(&out, msg.recipient_address);
  return out;
}

Result<MigrateBeginMsg> DecodeMigrateBegin(const std::string& payload) {
  WireReader reader(payload);
  SOBC_RETURN_NOT_OK(
      CheckType(&reader, MsgType::kMigrateBegin, "migrate-begin"));
  MigrateBeginMsg msg;
  msg.epoch = reader.U64();
  msg.stream_position = reader.U64();
  msg.map_version = reader.U64();
  msg.range.begin = reader.U32();
  msg.range.end = reader.U32();
  msg.shard_index = reader.U32();
  msg.shard_count = reader.U32();
  msg.total_bytes = reader.U64();
  msg.recipient_address = reader.String();
  if (!reader.Finished()) return Malformed("migrate-begin");
  return msg;
}

std::string EncodeMigrateChunk(const MigrateChunkMsg& msg) {
  std::string out;
  PutU8(&out, static_cast<std::uint8_t>(MsgType::kMigrateChunk));
  PutU64(&out, msg.offset);
  PutString(&out, msg.data);
  return out;
}

Result<MigrateChunkMsg> DecodeMigrateChunk(const std::string& payload) {
  WireReader reader(payload);
  SOBC_RETURN_NOT_OK(
      CheckType(&reader, MsgType::kMigrateChunk, "migrate-chunk"));
  MigrateChunkMsg msg;
  msg.offset = reader.U64();
  msg.data = reader.String();
  if (!reader.Finished()) return Malformed("migrate-chunk");
  return msg;
}

std::string EncodeMigrateCommit(const MigrateCommitMsg& msg) {
  std::string out;
  PutU8(&out, static_cast<std::uint8_t>(MsgType::kMigrateCommit));
  PutU64(&out, msg.total_bytes);
  PutU32(&out, msg.crc);
  return out;
}

Result<MigrateCommitMsg> DecodeMigrateCommit(const std::string& payload) {
  WireReader reader(payload);
  SOBC_RETURN_NOT_OK(
      CheckType(&reader, MsgType::kMigrateCommit, "migrate-commit"));
  MigrateCommitMsg msg;
  msg.total_bytes = reader.U64();
  msg.crc = reader.U32();
  if (!reader.Finished()) return Malformed("migrate-commit");
  return msg;
}

}  // namespace sobc
