#include "cluster/chaos_transport.h"

#include <chrono>
#include <thread>
#include <utility>

namespace sobc {

namespace {

/// Wraps one real connection with the plan in force when it was made.
class ChaosConnection : public Connection {
 public:
  ChaosConnection(std::unique_ptr<Connection> inner, ChaosPlan plan)
      : inner_(std::move(inner)), plan_(plan) {}

  Status SendFrame(const std::string& payload) override {
    if (broken_) {
      return Status::IOError("chaos: connection to " + inner_->peer() +
                             " is partitioned");
    }
    if (plan_.send_delay_seconds > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(plan_.send_delay_seconds));
    }
    SOBC_RETURN_NOT_OK(inner_->SendFrame(payload));
    if (sends_ < plan_.duplicate_sends) {
      // Deliver the identical frame a second time — the receiver must
      // treat it as the duplicate it is, not as new work.
      SOBC_RETURN_NOT_OK(inner_->SendFrame(payload));
    }
    ++sends_;
    if (plan_.drop_after_sends > 0 && sends_ >= plan_.drop_after_sends) {
      // The frame left, the ack never comes back: the classic lost-ack
      // partition the exactly-once dedupe exists for.
      broken_ = true;
      inner_->Close();
    }
    return Status::OK();
  }

  Status RecvFrame(std::string* payload, double timeout_seconds) override {
    if (broken_) {
      return Status::IOError("chaos: connection to " + inner_->peer() +
                             " is partitioned");
    }
    if (plan_.recv_delay_seconds > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(plan_.recv_delay_seconds));
    }
    return inner_->RecvFrame(payload, timeout_seconds);
  }

  std::string peer() const override { return inner_->peer(); }
  void Close() override { inner_->Close(); }

 private:
  std::unique_ptr<Connection> inner_;
  ChaosPlan plan_;
  std::size_t sends_ = 0;
  bool broken_ = false;
};

}  // namespace

void ChaosTransport::SetPlan(const std::string& address,
                             const ChaosPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  state_[address] = AddressState{plan, 0};
}

Result<std::unique_ptr<Listener>> ChaosTransport::Listen(
    const std::string& address) {
  return inner_->Listen(address);
}

Result<std::unique_ptr<Connection>> ChaosTransport::Connect(
    const std::string& address, double timeout_seconds) {
  ChaosPlan plan;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = state_.find(address);
    if (it != state_.end()) {
      if (it->second.connects_failed < it->second.plan.fail_connects) {
        ++it->second.connects_failed;
        return Status::IOError("chaos: shard " + address +
                               " is unreachable");
      }
      plan = it->second.plan;
      // Connect-failure budget spent; later connections still carry the
      // frame-level plan (delay / drop counters restart per connection).
      plan.fail_connects = 0;
    }
  }
  auto conn = inner_->Connect(address, timeout_seconds);
  if (!conn.ok()) return conn.status();
  return std::unique_ptr<Connection>(
      new ChaosConnection(std::move(*conn), plan));
}

}  // namespace sobc
