#include "cluster/transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "cluster/shard_map.h"
#include "common/crc32.h"
#include "common/io.h"

namespace sobc {

namespace {

/// Frames larger than this are corruption, not messages (the largest real
/// payload — a full score partial — is tens of MB only on graphs far past
/// what a frame should carry in one piece).
constexpr std::uint32_t kMaxFrameBytes = 1u << 30;

Status Timeout(const char* what) {
  return Status(StatusCode::kIOError,
                std::string(what) + " timed out", ETIMEDOUT);
}

Status Errno(const char* what) {
  const int err = errno;
  return Status(StatusCode::kIOError,
                std::string(what) + " failed: " + std::strerror(err), err);
}

/// Resolves "host" to an IPv4 address ("localhost" or dotted-quad; the
/// cluster protocol is explicitly a LAN/localhost protocol, so a resolver
/// dependency buys nothing).
Status ResolveHost(const std::string& host, in_addr* out) {
  const std::string effective =
      (host == "localhost" || host.empty()) ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, effective.c_str(), out) != 1) {
    return Status::InvalidArgument("cannot parse host '" + host +
                                   "' (use a numeric IPv4 or localhost)");
  }
  return Status::OK();
}

/// Waits for `events` on fd. deadline <= 0 waits forever.
Status WaitFd(int fd, short events, double timeout_seconds,
              const char* what) {
  struct pollfd pfd {};
  pfd.fd = fd;
  pfd.events = events;
  const int timeout_ms =
      timeout_seconds <= 0
          ? -1
          : static_cast<int>(timeout_seconds * 1000.0) + 1;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return Status::OK();
    if (rc == 0) return Timeout(what);
    if (errno == EINTR) continue;
    return Errno(what);
  }
}

void PutU32(char* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

std::uint32_t GetU32(const char* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(in[i]))
         << (8 * i);
  }
  return v;
}

class TcpConnection : public Connection {
 public:
  TcpConnection(int fd, std::string peer) : fd_(fd), peer_(std::move(peer)) {
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~TcpConnection() override { Close(); }

  Status SendFrame(const std::string& payload) override {
    if (fd_ < 0) return Status::IOError("connection to " + peer_ + " closed");
    if (payload.size() > kMaxFrameBytes) {
      return Status::InvalidArgument("frame exceeds the size limit");
    }
    char header[8];
    PutU32(header, static_cast<std::uint32_t>(payload.size()));
    PutU32(header + 4, Crc32(payload.data(), payload.size()));
    SOBC_RETURN_NOT_OK(WriteAll(header, sizeof(header)));
    return WriteAll(payload.data(), payload.size());
  }

  Status RecvFrame(std::string* payload, double timeout_seconds) override {
    if (fd_ < 0) return Status::IOError("connection to " + peer_ + " closed");
    char header[8];
    SOBC_RETURN_NOT_OK(ReadAll(header, sizeof(header), timeout_seconds));
    const std::uint32_t length = GetU32(header);
    const std::uint32_t expected_crc = GetU32(header + 4);
    if (length > kMaxFrameBytes) {
      return Status::IOError("frame from " + peer_ +
                             " exceeds the size limit (corrupt length)");
    }
    payload->resize(length);
    if (length > 0) {
      SOBC_RETURN_NOT_OK(ReadAll(payload->data(), length, timeout_seconds));
    }
    if (Crc32(payload->data(), payload->size()) != expected_crc) {
      return Status::IOError("frame from " + peer_ + " failed its CRC");
    }
    return Status::OK();
  }

  std::string peer() const override { return peer_; }

  void Close() override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  // Short transfers and transient errnos (EINTR, spurious EAGAIN after a
  // successful poll) retry through the common/io.h bounded-backoff
  // machinery — same accounting, same cap — so a signal storm degrades
  // into a counted, reported error instead of either a hard failure on
  // the first EINTR or an unbounded spin. Progress resets the attempt
  // counter: only CONSECUTIVE fruitless wakeups count against the cap.
  Status WriteAll(const char* data, std::size_t size) {
    std::size_t sent = 0;
    int attempts = 0;
    while (sent < size) {
      const ssize_t n =
          ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
          if (++attempts >= kMaxTransientIoAttempts) {
            RecordIoRetriesExhausted();
            return Errno("send (transient-retry budget exhausted)");
          }
          RecordIoRetry();
          if (errno == EINTR) {
            IoBackoff(attempts - 1);
          } else {
            SOBC_RETURN_NOT_OK(WaitFd(fd_, POLLOUT, -1.0, "send"));
          }
          continue;
        }
        return Errno("send");
      }
      attempts = 0;
      sent += static_cast<std::size_t>(n);
    }
    return Status::OK();
  }

  Status ReadAll(char* data, std::size_t size, double timeout_seconds) {
    std::size_t got = 0;
    int attempts = 0;
    while (got < size) {
      SOBC_RETURN_NOT_OK(WaitFd(fd_, POLLIN, timeout_seconds, "recv"));
      const ssize_t n = ::recv(fd_, data + got, size - got, 0);
      if (n == 0) {
        return Status::IOError("peer " + peer_ + " closed the connection");
      }
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
          if (++attempts >= kMaxTransientIoAttempts) {
            RecordIoRetriesExhausted();
            return Errno("recv (transient-retry budget exhausted)");
          }
          RecordIoRetry();
          if (errno == EINTR) IoBackoff(attempts - 1);
          continue;
        }
        return Errno("recv");
      }
      attempts = 0;
      got += static_cast<std::size_t>(n);
    }
    return Status::OK();
  }

  int fd_;
  std::string peer_;
};

class TcpListener : public Listener {
 public:
  TcpListener(int fd, std::string address)
      : fd_(fd), address_(std::move(address)) {}

  ~TcpListener() override { Close(); }

  Result<std::unique_ptr<Connection>> Accept(
      double timeout_seconds) override {
    if (fd_ < 0) return Status::IOError("listener closed");
    SOBC_RETURN_NOT_OK(WaitFd(fd_, POLLIN, timeout_seconds, "accept"));
    struct sockaddr_in peer {};
    socklen_t peer_len = sizeof(peer);
    const int conn =
        ::accept(fd_, reinterpret_cast<struct sockaddr*>(&peer), &peer_len);
    if (conn < 0) return Errno("accept");
    char host[INET_ADDRSTRLEN] = "?";
    ::inet_ntop(AF_INET, &peer.sin_addr, host, sizeof(host));
    return std::unique_ptr<Connection>(new TcpConnection(
        conn,
        std::string(host) + ":" + std::to_string(ntohs(peer.sin_port))));
  }

  std::string address() const override { return address_; }

  void Close() override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_;
  std::string address_;
};

}  // namespace

bool IsTransportTimeout(const Status& status) {
  return status.code() == StatusCode::kIOError &&
         status.sys_errno() == ETIMEDOUT;
}

std::unique_ptr<Connection> WrapFdAsConnection(int fd, std::string peer) {
  return std::unique_ptr<Connection>(new TcpConnection(fd, std::move(peer)));
}

Result<std::unique_ptr<Listener>> TcpTransport::Listen(
    const std::string& address) {
  std::string host;
  int port = 0;
  SOBC_RETURN_NOT_OK(ParseHostPort(address, &host, &port));
  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  SOBC_RETURN_NOT_OK(ResolveHost(host, &addr.sin_addr));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status st = Errno("bind");
    ::close(fd);
    return st;
  }
  if (::listen(fd, 16) != 0) {
    const Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  // Report the actual port — "host:0" asked the kernel to pick one.
  struct sockaddr_in bound {};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) != 0) {
    const Status st = Errno("getsockname");
    ::close(fd);
    return st;
  }
  char bound_host[INET_ADDRSTRLEN] = "?";
  ::inet_ntop(AF_INET, &bound.sin_addr, bound_host, sizeof(bound_host));
  return std::unique_ptr<Listener>(new TcpListener(
      fd, std::string(bound_host) + ":" +
              std::to_string(ntohs(bound.sin_port))));
}

Result<std::unique_ptr<Connection>> TcpTransport::Connect(
    const std::string& address, double timeout_seconds) {
  std::string host;
  int port = 0;
  SOBC_RETURN_NOT_OK(ParseHostPort(address, &host, &port));
  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  SOBC_RETURN_NOT_OK(ResolveHost(host, &addr.sin_addr));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  // Non-blocking connect + poll gives the deadline; the socket goes back
  // to blocking afterwards (frame I/O deadlines come from poll, not
  // O_NONBLOCK).
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    const Status st = Errno("connect");
    ::close(fd);
    return st;
  }
  if (Status st = WaitFd(fd, POLLOUT, timeout_seconds, "connect");
      !st.ok()) {
    ::close(fd);
    return st;
  }
  int err = 0;
  socklen_t err_len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0 ||
      err != 0) {
    ::close(fd);
    return Status(StatusCode::kIOError,
                  "connect to " + address + " failed: " +
                      std::strerror(err != 0 ? err : errno),
                  err);
  }
  ::fcntl(fd, F_SETFL, flags);
  return std::unique_ptr<Connection>(new TcpConnection(fd, address));
}

}  // namespace sobc
