#ifndef SOBC_CLUSTER_TRANSPORT_H_
#define SOBC_CLUSTER_TRANSPORT_H_

#include <memory>
#include <string>

#include "common/status.h"

namespace sobc {

/// One frame-oriented, ordered, reliable connection between coordinator
/// and shard. Frames are the protocol unit: SendFrame writes one
/// [u32 length][u32 crc][payload] envelope, RecvFrame reads one and
/// verifies the CRC (src/common/crc32), so a decoder never sees a torn or
/// corrupted payload — the wire analog of the WAL's frame discipline.
///
/// A connection is used by one thread at a time per direction. RecvFrame
/// timeouts surface as IOError with sys_errno() == ETIMEDOUT (see
/// IsTransportTimeout), distinct from a dead peer, because the caller's
/// reaction differs: a timeout trips the per-shard watchdog and a bounded
/// retry; a dead peer goes straight to reconnect.
class Connection {
 public:
  virtual ~Connection() = default;

  virtual Status SendFrame(const std::string& payload) = 0;
  /// Reads one frame, waiting at most `timeout_seconds` (<= 0 waits
  /// forever) for the FIRST byte; once a frame header arrives the rest is
  /// read with the same per-wait deadline.
  virtual Status RecvFrame(std::string* payload, double timeout_seconds) = 0;
  /// A human-readable peer address for log lines.
  virtual std::string peer() const = 0;
  virtual void Close() = 0;
};

/// A bound, listening endpoint.
class Listener {
 public:
  virtual ~Listener() = default;

  /// Accepts one connection, waiting at most `timeout_seconds` (<= 0
  /// waits forever). Timeout surfaces like RecvFrame's.
  virtual Result<std::unique_ptr<Connection>> Accept(
      double timeout_seconds) = 0;
  /// The actual bound address (host:port — with the ephemeral port
  /// resolved, which is how tests listen on port 0).
  virtual std::string address() const = 0;
  virtual void Close() = 0;
};

/// The pluggable transport seam, mirroring the sobc::Io philosophy: the
/// coordinator and shard workers speak only this interface, the real
/// deployment plugs in TcpTransport, and tests plug in a
/// ChaosTransport wrapper that injects partitions, dead connects, and
/// slow shards without touching a socket option.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual Result<std::unique_ptr<Listener>> Listen(
      const std::string& address) = 0;
  virtual Result<std::unique_ptr<Connection>> Connect(
      const std::string& address, double timeout_seconds) = 0;
};

/// Whether a transport error is a deadline expiry (retryable wait) rather
/// than a dead peer or corrupt frame.
bool IsTransportTimeout(const Status& status);

/// Wraps an already-connected stream socket (an accepted fd, or one end
/// of a socketpair) in the CRC-framed Connection. Takes ownership of
/// `fd`. Exists for tests that need byte-level control of delivery —
/// partial frames, short reads — to drive the transient-retry loops.
std::unique_ptr<Connection> WrapFdAsConnection(int fd, std::string peer);

/// The real thing: IPv4 TCP with TCP_NODELAY, ephemeral-port support
/// ("host:0"), and poll()-based deadlines. Addresses are "host:port" with
/// a numeric host or "localhost".
class TcpTransport : public Transport {
 public:
  Result<std::unique_ptr<Listener>> Listen(
      const std::string& address) override;
  Result<std::unique_ptr<Connection>> Connect(
      const std::string& address, double timeout_seconds) override;
};

}  // namespace sobc

#endif  // SOBC_CLUSTER_TRANSPORT_H_
