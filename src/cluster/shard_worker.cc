#include "cluster/shard_worker.h"

#include <utility>

#include "common/crc32.h"
#include "storage/checkpoint.h"

namespace sobc {

namespace {

/// Image stream granularity. Small enough that a chunk frame never
/// approaches the transport's frame-size ceiling, large enough that the
/// per-frame CRC + syscall overhead stays negligible.
constexpr std::size_t kMigrateChunkBytes = 64 * 1024;

Result<std::unique_ptr<Listener>> ListenResolved(
    Transport* transport, const std::string& listen_address) {
  if (transport == nullptr) {
    return Status::InvalidArgument("shard worker needs a transport");
  }
  return transport->Listen(listen_address);
}

}  // namespace

ShardWorker::ShardWorker(std::unique_ptr<BcService> service,
                         std::unique_ptr<Listener> listener,
                         Transport* transport,
                         const ShardWorkerOptions& options, ShardRange range)
    : options_(options),
      transport_(transport),
      listener_(std::move(listener)),
      address_(listener_->address()),
      range_(range),
      service_(std::move(service)),
      shard_index_(options.shard_index),
      shard_count_(options.shard_count) {}

Result<std::unique_ptr<ShardWorker>> ShardWorker::Start(
    Graph graph, Transport* transport, const std::string& listen_address,
    const ShardWorkerOptions& options) {
  if (options.shard_count == 0 ||
      options.shard_index >= options.shard_count) {
    return Status::InvalidArgument("shard index outside the shard count");
  }
  const ShardRange range = ShardRangeOf(graph.NumVertices(),
                                        options.shard_count,
                                        options.shard_index);
  BcServiceOptions service_options = options.service;
  service_options.replicated = true;
  service_options.bc.source_begin = range.begin;
  service_options.bc.source_end = range.end;
  auto service = BcService::Create(std::move(graph), service_options);
  if (!service.ok()) return service.status();
  auto listener = ListenResolved(transport, listen_address);
  if (!listener.ok()) return listener.status();
  auto worker = std::unique_ptr<ShardWorker>(
      new ShardWorker(std::move(*service), std::move(*listener), transport,
                      options, range));
  worker->serve_thread_ =
      std::thread([raw = worker.get()] { raw->ServeLoop(); });
  return worker;
}

Result<std::unique_ptr<ShardWorker>> ShardWorker::Recover(
    Transport* transport, const std::string& listen_address,
    const ShardWorkerOptions& options, RecoveryInfo* info) {
  BcServiceOptions service_options = options.service;
  service_options.replicated = true;
  auto service = BcService::Recover(service_options, info);
  if (!service.ok()) return service.status();
  // The manifest decided the partition; report the recovered one.
  const ShardRange range{(*service)->options().bc.source_begin,
                         (*service)->options().bc.source_end};
  auto listener = ListenResolved(transport, listen_address);
  if (!listener.ok()) return listener.status();
  auto worker = std::unique_ptr<ShardWorker>(
      new ShardWorker(std::move(*service), std::move(*listener), transport,
                      options, range));
  worker->serve_thread_ =
      std::thread([raw = worker.get()] { raw->ServeLoop(); });
  return worker;
}

Result<std::unique_ptr<ShardWorker>> ShardWorker::AwaitMigration(
    Transport* transport, const std::string& listen_address,
    const ShardWorkerOptions& options) {
  auto listener = ListenResolved(transport, listen_address);
  if (!listener.ok()) return listener.status();
  auto worker = std::unique_ptr<ShardWorker>(
      new ShardWorker(nullptr, std::move(*listener), transport, options,
                      ShardRange{0, 0}));
  worker->serve_thread_ =
      std::thread([raw = worker.get()] { raw->ServeLoop(); });
  return worker;
}

ShardWorker::~ShardWorker() { (void)Stop(); }

HelloAckMsg ShardWorker::MakeHelloAck() const {
  HelloAckMsg ack;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ack.shard_index = static_cast<std::uint32_t>(shard_index_);
    ack.shard_count = static_cast<std::uint32_t>(shard_count_);
    ack.range = range_;
    ack.map_version = map_version_;
  }
  ack.epoch = service_->final_epoch();
  ack.stream_position = service_->final_position();
  ack.health = static_cast<std::uint8_t>(service_->health());
  const Graph& graph = service_->framework()->graph();
  ack.num_vertices = graph.NumVertices();
  ack.num_edges = graph.NumEdges();
  ack.directed = graph.directed();
  return ack;
}

ApplyAckMsg ShardWorker::HandleApply(const ApplyMsg& msg) {
  const Status st = service_->ApplyReplicatedBatch(
      msg.epoch, msg.stream_position, msg.updates);
  ApplyAckMsg ack;
  ack.epoch = service_->final_epoch();
  ack.stream_position = service_->final_position();
  ack.health = static_cast<std::uint8_t>(service_->health());
  if (!st.ok()) {
    ack.ok = false;
    ack.status_code = static_cast<std::uint8_t>(st.code());
    ack.message = st.message();
    return ack;
  }
  // Success (including an idempotent duplicate): the cumulative partial
  // is the merge input either way.
  const UpdateStats& stats = service_->framework()->last_update_stats();
  ack.sources_total = stats.sources_total;
  ack.sources_prefiltered = stats.sources_prefiltered;
  ack.partial = service_->framework()->scores();
  return ack;
}

ReplicateAckMsg ShardWorker::HandleRescope(std::uint64_t map_version,
                                           ShardRange range,
                                           const char* what) {
  ReplicateAckMsg ack;
  ack.epoch = service_->final_epoch();
  std::uint64_t current = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    current = map_version_;
  }
  if (Status st = CheckMapVersion(map_version, current, what); !st.ok()) {
    ack.ok = false;
    ack.message = st.message();
    return ack;
  }
  if (Status st = service_->RescopeSourceRange(range.begin, range.end);
      !st.ok()) {
    ack.ok = false;
    ack.message = st.message();
    return ack;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    range_ = range;
    map_version_ = map_version;
  }
  ack.epoch = service_->final_epoch();
  return ack;
}

ReplicateAckMsg ShardWorker::HandleMigrateOut(const MigrateBeginMsg& msg) {
  ReplicateAckMsg ack;
  ack.epoch = service_->final_epoch();
  auto fail = [&ack](std::string message) {
    ack.ok = false;
    ack.message = std::move(message);
    return ack;
  };
  if (msg.epoch != service_->final_epoch()) {
    // The coordinator cuts the handoff between batches; a mismatch means
    // it is talking to the wrong shard (or a stale retry).
    return fail("donor is at epoch " +
                std::to_string(service_->final_epoch()) +
                ", not the offered cut epoch " + std::to_string(msg.epoch));
  }
  {
    std::uint64_t current = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      current = map_version_;
    }
    if (Status st = CheckMapVersion(msg.map_version, current, "migrate-begin");
        !st.ok()) {
      return fail(st.message());
    }
  }
  // Checkpoint-consistent by construction: the session thread is the only
  // engine mutator, and it is here, between batches.
  const std::string image =
      ExportMigrationImage(service_->framework()->graph());
  auto conn = transport_->Connect(msg.recipient_address,
                                  options_.migrate_timeout_seconds);
  if (!conn.ok()) {
    return fail("connect recipient " + msg.recipient_address + ": " +
                conn.status().message());
  }
  MigrateBeginMsg offer = msg;
  offer.recipient_address.clear();
  offer.total_bytes = image.size();
  if (Status st = (*conn)->SendFrame(EncodeMigrateBegin(offer)); !st.ok()) {
    return fail("offer to recipient: " + st.message());
  }
  for (std::size_t at = 0; at < image.size(); at += kMigrateChunkBytes) {
    MigrateChunkMsg chunk;
    chunk.offset = at;
    chunk.data = image.substr(at, kMigrateChunkBytes);
    if (Status st = (*conn)->SendFrame(EncodeMigrateChunk(chunk)); !st.ok()) {
      return fail("stream image to recipient: " + st.message());
    }
  }
  MigrateCommitMsg commit;
  commit.total_bytes = image.size();
  commit.crc = Crc32(image.data(), image.size());
  if (Status st = (*conn)->SendFrame(EncodeMigrateCommit(commit)); !st.ok()) {
    return fail("commit image to recipient: " + st.message());
  }
  std::string payload;
  if (Status st =
          (*conn)->RecvFrame(&payload, options_.migrate_timeout_seconds);
      !st.ok()) {
    return fail("recipient never confirmed the image: " + st.message());
  }
  auto hello = DecodeHelloAck(payload);
  if (!hello.ok()) {
    return fail("recipient confirmation: " + hello.status().message());
  }
  if (hello->epoch != msg.epoch || hello->range.begin != msg.range.begin ||
      hello->range.end != msg.range.end) {
    return fail("recipient came up at the wrong cut (epoch " +
                std::to_string(hello->epoch) + ")");
  }
  return ack;
}

bool ShardWorker::HandleMigrateIn(Connection* conn,
                                  const MigrateBeginMsg& msg) {
  std::string image;
  image.reserve(msg.total_bytes);
  std::string payload;
  std::uint32_t expected_crc = 0;
  while (true) {
    if (stop_.load(std::memory_order_acquire)) return false;
    Status st = conn->RecvFrame(&payload, options_.migrate_timeout_seconds);
    if (!st.ok()) return false;
    auto type = PeekType(payload);
    if (!type.ok()) return false;
    if (*type == MsgType::kMigrateChunk) {
      auto chunk = DecodeMigrateChunk(payload);
      if (!chunk.ok()) return false;
      // Chunks are strictly sequential; the per-frame transport CRC rules
      // out corruption, so any misfit is a protocol bug — drop the offer.
      if (chunk->offset != image.size() ||
          image.size() + chunk->data.size() > msg.total_bytes) {
        return false;
      }
      image += chunk->data;
      continue;
    }
    if (*type == MsgType::kMigrateCommit) {
      auto commit = DecodeMigrateCommit(payload);
      if (!commit.ok()) return false;
      if (commit->total_bytes != image.size() ||
          image.size() != msg.total_bytes) {
        return false;
      }
      expected_crc = commit->crc;
      break;
    }
    return false;
  }
  if (Crc32(image.data(), image.size()) != expected_crc) return false;
  auto graph = ImportMigrationImage(image);
  if (!graph.ok()) return false;
  BcServiceOptions service_options = options_.service;
  service_options.replicated = true;
  service_options.bc.source_begin = msg.range.begin;
  service_options.bc.source_end = msg.range.end;
  // Join at the donor's cut: the first batch this shard may legally see
  // is epoch msg.epoch + 1, and its initial snapshot carries the cut.
  service_options.replicated_base_epoch = msg.epoch;
  service_options.replicated_base_position = msg.stream_position;
  auto service = BcService::Create(std::move(*graph), service_options);
  if (!service.ok()) return false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    service_ = std::move(*service);
    range_ = msg.range;
    shard_index_ = msg.shard_index;
    shard_count_ = msg.shard_count;
    map_version_ = msg.map_version;
  }
  return conn->SendFrame(EncodeHelloAck(MakeHelloAck())).ok();
}

bool ShardWorker::Session(Connection* conn) {
  std::string payload;
  while (!stop_.load(std::memory_order_acquire)) {
    const Status st = conn->RecvFrame(&payload, options_.poll_seconds);
    if (IsTransportTimeout(st)) continue;
    if (!st.ok()) return true;  // connection died; accept the next one
    auto type = PeekType(payload);
    if (!type.ok()) return true;
    // Until a migration offer lands, an AwaitMigration worker has no
    // engine: everything but that offer (and shutdown) is premature.
    const bool migrated = service() != nullptr;
    switch (*type) {
      case MsgType::kHello: {
        if (!migrated) return true;
        auto msg = DecodeHello(payload);
        if (!msg.ok()) return true;
        if (msg->protocol_version != kClusterProtocolVersion) {
          // Refusing loudly beats mis-parsing every later frame; the
          // coordinator sees the close and reports the bring-up failure.
          return true;
        }
        if (!conn->SendFrame(EncodeHelloAck(MakeHelloAck())).ok()) {
          return true;
        }
        break;
      }
      case MsgType::kApply: {
        if (!migrated) return true;
        auto msg = DecodeApply(payload);
        if (!msg.ok()) return true;
        if (!conn->SendFrame(EncodeApplyAck(HandleApply(*msg))).ok()) {
          return true;
        }
        break;
      }
      case MsgType::kFetch: {
        if (!migrated) return true;
        PartialMsg partial;
        partial.epoch = service_->final_epoch();
        partial.stream_position = service_->final_position();
        partial.health = static_cast<std::uint8_t>(service_->health());
        partial.partial = service_->framework()->scores();
        if (!conn->SendFrame(EncodePartial(partial)).ok()) return true;
        break;
      }
      case MsgType::kSplitRange: {
        if (!migrated) return true;
        auto msg = DecodeSplitRange(payload);
        if (!msg.ok()) return true;
        const ReplicateAckMsg ack =
            HandleRescope(msg->map_version, msg->range, "split-range");
        if (!conn->SendFrame(EncodeReplicateAck(ack)).ok()) return true;
        break;
      }
      case MsgType::kMergeRange: {
        if (!migrated) return true;
        auto msg = DecodeMergeRange(payload);
        if (!msg.ok()) return true;
        const ReplicateAckMsg ack =
            HandleRescope(msg->map_version, msg->range, "merge-range");
        if (!conn->SendFrame(EncodeReplicateAck(ack)).ok()) return true;
        break;
      }
      case MsgType::kMigrateBegin: {
        auto msg = DecodeMigrateBegin(payload);
        if (!msg.ok()) return true;
        if (msg->recipient_address.empty()) {
          // A donor offering US the image. Only an empty worker takes it;
          // a second offer (or one to a normal shard) is a protocol bug.
          if (migrated) return true;
          if (!HandleMigrateIn(conn, *msg)) return true;
          // Handoff done; the donor closes this connection next, and the
          // coordinator re-handshakes on a fresh one.
          break;
        }
        // The coordinator asking us to DONATE a range to the recipient.
        if (!migrated) return true;
        const ReplicateAckMsg ack = HandleMigrateOut(*msg);
        if (!conn->SendFrame(EncodeReplicateAck(ack)).ok()) return true;
        break;
      }
      case MsgType::kShutdown: {
        (void)conn->SendFrame(EncodeShutdownAck());
        {
          std::lock_guard<std::mutex> lock(mu_);
          shutdown_requested_ = true;
        }
        done_cv_.notify_all();
        return false;
      }
      default:
        // A message this side never expects (an ack, a stray type):
        // protocol desync — drop the connection and let the coordinator
        // re-handshake.
        return true;
    }
  }
  return false;
}

void ShardWorker::ServeLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    auto conn = listener_->Accept(options_.poll_seconds);
    if (!conn.ok()) {
      if (IsTransportTimeout(conn.status())) continue;
      if (stop_.load(std::memory_order_acquire)) break;
      // Listener error (closed fd during Stop, transient accept failure):
      // keep polling; Stop() is the only way out of a persistent one.
      continue;
    }
    if (!Session(conn->get())) break;
  }
}

void ShardWorker::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] {
    return shutdown_requested_ || stop_.load(std::memory_order_acquire);
  });
}

Status ShardWorker::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return service_ != nullptr ? service_->last_error()
                                             : Status::OK();
    stopped_ = true;
  }
  stop_.store(true, std::memory_order_release);
  done_cv_.notify_all();
  if (serve_thread_.joinable()) serve_thread_.join();
  listener_->Close();
  std::lock_guard<std::mutex> lock(mu_);
  return service_ != nullptr ? service_->Stop() : Status::OK();
}

void ShardWorker::Halt() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  stop_.store(true, std::memory_order_release);
  done_cv_.notify_all();
  if (serve_thread_.joinable()) serve_thread_.join();
  listener_->Close();
  std::lock_guard<std::mutex> lock(mu_);
  if (service_ != nullptr) service_->Halt();
}

}  // namespace sobc
