#include "cluster/shard_worker.h"

#include <utility>

namespace sobc {

namespace {

Result<std::unique_ptr<Listener>> ListenResolved(
    Transport* transport, const std::string& listen_address) {
  if (transport == nullptr) {
    return Status::InvalidArgument("shard worker needs a transport");
  }
  return transport->Listen(listen_address);
}

}  // namespace

ShardWorker::ShardWorker(std::unique_ptr<BcService> service,
                         std::unique_ptr<Listener> listener,
                         const ShardWorkerOptions& options, ShardRange range)
    : options_(options),
      range_(range),
      service_(std::move(service)),
      listener_(std::move(listener)),
      address_(listener_->address()) {}

Result<std::unique_ptr<ShardWorker>> ShardWorker::Start(
    Graph graph, Transport* transport, const std::string& listen_address,
    const ShardWorkerOptions& options) {
  if (options.shard_count == 0 ||
      options.shard_index >= options.shard_count) {
    return Status::InvalidArgument("shard index outside the shard count");
  }
  const ShardRange range = ShardRangeOf(graph.NumVertices(),
                                        options.shard_count,
                                        options.shard_index);
  BcServiceOptions service_options = options.service;
  service_options.replicated = true;
  service_options.bc.source_begin = range.begin;
  service_options.bc.source_end = range.end;
  auto service = BcService::Create(std::move(graph), service_options);
  if (!service.ok()) return service.status();
  auto listener = ListenResolved(transport, listen_address);
  if (!listener.ok()) return listener.status();
  auto worker = std::unique_ptr<ShardWorker>(new ShardWorker(
      std::move(*service), std::move(*listener), options, range));
  worker->serve_thread_ =
      std::thread([raw = worker.get()] { raw->ServeLoop(); });
  return worker;
}

Result<std::unique_ptr<ShardWorker>> ShardWorker::Recover(
    Transport* transport, const std::string& listen_address,
    const ShardWorkerOptions& options, RecoveryInfo* info) {
  BcServiceOptions service_options = options.service;
  service_options.replicated = true;
  auto service = BcService::Recover(service_options, info);
  if (!service.ok()) return service.status();
  // The manifest decided the partition; report the recovered one.
  const ShardRange range{(*service)->options().bc.source_begin,
                         (*service)->options().bc.source_end};
  auto listener = ListenResolved(transport, listen_address);
  if (!listener.ok()) return listener.status();
  auto worker = std::unique_ptr<ShardWorker>(new ShardWorker(
      std::move(*service), std::move(*listener), options, range));
  worker->serve_thread_ =
      std::thread([raw = worker.get()] { raw->ServeLoop(); });
  return worker;
}

ShardWorker::~ShardWorker() { (void)Stop(); }

HelloAckMsg ShardWorker::MakeHelloAck() const {
  HelloAckMsg ack;
  ack.shard_index = static_cast<std::uint32_t>(options_.shard_index);
  ack.shard_count = static_cast<std::uint32_t>(options_.shard_count);
  ack.range = range_;
  ack.epoch = service_->final_epoch();
  ack.stream_position = service_->final_position();
  ack.health = static_cast<std::uint8_t>(service_->health());
  const Graph& graph = service_->framework()->graph();
  ack.num_vertices = graph.NumVertices();
  ack.num_edges = graph.NumEdges();
  ack.directed = graph.directed();
  return ack;
}

ApplyAckMsg ShardWorker::HandleApply(const ApplyMsg& msg) {
  const Status st = service_->ApplyReplicatedBatch(
      msg.epoch, msg.stream_position, msg.updates);
  ApplyAckMsg ack;
  ack.epoch = service_->final_epoch();
  ack.stream_position = service_->final_position();
  ack.health = static_cast<std::uint8_t>(service_->health());
  if (!st.ok()) {
    ack.ok = false;
    ack.status_code = static_cast<std::uint8_t>(st.code());
    ack.message = st.message();
    return ack;
  }
  // Success (including an idempotent duplicate): the cumulative partial
  // is the merge input either way.
  const UpdateStats& stats = service_->framework()->last_update_stats();
  ack.sources_total = stats.sources_total;
  ack.sources_prefiltered = stats.sources_prefiltered;
  ack.partial = service_->framework()->scores();
  return ack;
}

bool ShardWorker::Session(Connection* conn) {
  std::string payload;
  while (!stop_.load(std::memory_order_acquire)) {
    const Status st = conn->RecvFrame(&payload, options_.poll_seconds);
    if (IsTransportTimeout(st)) continue;
    if (!st.ok()) return true;  // connection died; accept the next one
    auto type = PeekType(payload);
    if (!type.ok()) return true;
    switch (*type) {
      case MsgType::kHello: {
        auto msg = DecodeHello(payload);
        if (!msg.ok()) return true;
        if (msg->protocol_version != kClusterProtocolVersion) {
          // Refusing loudly beats mis-parsing every later frame; the
          // coordinator sees the close and reports the bring-up failure.
          return true;
        }
        if (!conn->SendFrame(EncodeHelloAck(MakeHelloAck())).ok()) {
          return true;
        }
        break;
      }
      case MsgType::kApply: {
        auto msg = DecodeApply(payload);
        if (!msg.ok()) return true;
        if (!conn->SendFrame(EncodeApplyAck(HandleApply(*msg))).ok()) {
          return true;
        }
        break;
      }
      case MsgType::kFetch: {
        PartialMsg partial;
        partial.epoch = service_->final_epoch();
        partial.stream_position = service_->final_position();
        partial.health = static_cast<std::uint8_t>(service_->health());
        partial.partial = service_->framework()->scores();
        if (!conn->SendFrame(EncodePartial(partial)).ok()) return true;
        break;
      }
      case MsgType::kShutdown: {
        (void)conn->SendFrame(EncodeShutdownAck());
        {
          std::lock_guard<std::mutex> lock(mu_);
          shutdown_requested_ = true;
        }
        done_cv_.notify_all();
        return false;
      }
      default:
        // A message this side never expects (an ack, a stray type):
        // protocol desync — drop the connection and let the coordinator
        // re-handshake.
        return true;
    }
  }
  return false;
}

void ShardWorker::ServeLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    auto conn = listener_->Accept(options_.poll_seconds);
    if (!conn.ok()) {
      if (IsTransportTimeout(conn.status())) continue;
      if (stop_.load(std::memory_order_acquire)) break;
      // Listener error (closed fd during Stop, transient accept failure):
      // keep polling; Stop() is the only way out of a persistent one.
      continue;
    }
    if (!Session(conn->get())) break;
  }
}

void ShardWorker::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] {
    return shutdown_requested_ || stop_.load(std::memory_order_acquire);
  });
}

Status ShardWorker::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return service_ != nullptr ? service_->last_error()
                                             : Status::OK();
    stopped_ = true;
  }
  stop_.store(true, std::memory_order_release);
  done_cv_.notify_all();
  if (serve_thread_.joinable()) serve_thread_.join();
  listener_->Close();
  return service_->Stop();
}

void ShardWorker::Halt() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  stop_.store(true, std::memory_order_release);
  done_cv_.notify_all();
  if (serve_thread_.joinable()) serve_thread_.join();
  listener_->Close();
  service_->Halt();
}

}  // namespace sobc
