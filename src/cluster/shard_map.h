#ifndef SOBC_CLUSTER_SHARD_MAP_H_
#define SOBC_CLUSTER_SHARD_MAP_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace sobc {

/// One shard's contiguous source partition. `end == kInvalidVertex` marks
/// an open-ended partition (it adopts every source the graph grows).
struct ShardRange {
  VertexId begin = 0;
  VertexId end = kInvalidVertex;

  bool open_ended() const { return end == kInvalidVertex; }
  bool operator==(const ShardRange&) const = default;
};

/// The partition of shard `index` among `shards` over an `n`-vertex graph:
/// [index*n/shards, (index+1)*n/shards), sizes differing by at most one.
/// The LAST shard's partition is open-ended, so vertices that arrive after
/// deployment (edge updates naming new ids) always have an owner — the
/// cluster analog of the single store's kInvalidVertex limit.
ShardRange ShardRangeOf(std::size_t n, std::size_t shards, std::size_t index);

/// All `shards` partitions, in shard order. They tile [0, n) exactly and
/// the union is open-ended.
std::vector<ShardRange> BuildShardMap(std::size_t n, std::size_t shards);

/// Checks that `ranges` (in shard order) tile the vertex set: start at 0,
/// are contiguous with no gap or overlap, and end open-ended. The
/// coordinator runs this over the handshake-reported ranges before serving
/// — a mis-started cluster (wrong --shards, duplicate index) must fail
/// bring-up, not produce silently wrong merged scores.
Status ValidateShardMap(const std::vector<ShardRange>& ranges, std::size_t n);

/// Guards a range-carrying control message against a stale shard map:
/// `msg_version` must be strictly newer than the version the receiver
/// already applied (`current_version`). 0 never counts as newer — a
/// version-0 message predates versioning entirely. FailedPrecondition
/// with a "stale shard-map version" message otherwise, so a coordinator
/// replaying an old plan (or a delayed duplicate) is refused instead of
/// silently re-cutting ranges.
Status CheckMapVersion(std::uint64_t msg_version,
                       std::uint64_t current_version, const char* what);

/// Splits "host:port" (the only address form the TCP transport speaks).
Status ParseHostPort(const std::string& address, std::string* host,
                     int* port);

}  // namespace sobc

#endif  // SOBC_CLUSTER_SHARD_MAP_H_
