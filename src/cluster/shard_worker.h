#ifndef SOBC_CLUSTER_SHARD_WORKER_H_
#define SOBC_CLUSTER_SHARD_WORKER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "cluster/shard_map.h"
#include "cluster/transport.h"
#include "cluster/wire.h"
#include "server/bc_service.h"

namespace sobc {

/// Configuration of one shard worker process (or in-process worker, in
/// tests).
struct ShardWorkerOptions {
  /// This worker's slot in the shard map; the owned source partition is
  /// ShardRangeOf(n, shard_count, shard_index). A migration recipient
  /// (AwaitMigration) ignores both — the MigrateBegin frame carries its
  /// slot and range.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  /// The underlying replicated BcService: variant, storage, durability
  /// (per-shard WAL + checkpoint dirs), threads. `replicated` is forced
  /// on and `bc.source_begin/source_end` are overwritten from the shard
  /// map (Start), the recovered manifest (Recover), or the migration
  /// offer (AwaitMigration).
  BcServiceOptions service;
  /// Poll interval of the accept/receive loops — how quickly Stop() and a
  /// coordinator reconnect are noticed.
  double poll_seconds = 0.1;
  /// Budget for the blocking halves of a live migration: the donor's
  /// connect + image stream + recipient ack, and the recipient's wait for
  /// the next chunk once an offer arrived.
  double migrate_timeout_seconds = 60.0;
};

/// One cluster shard: a scoped, replicated BcService behind a Transport
/// listener. The worker accepts one coordinator connection at a time
/// (a reconnecting coordinator closes the old one, whose EOF ends the old
/// session) and serves the wire protocol: handshake, replicated batches
/// (acked with this shard's cumulative score partial), partial fetches,
/// live-rebalance control frames (SplitRange/MergeRange/MigrateBegin),
/// and shutdown. All engine work runs on the session thread — the single
/// caller ApplyReplicatedBatch requires.
class ShardWorker {
 public:
  /// Fresh deployment: Step 1 (Brandes) over the owned partition only,
  /// then listen. `listen_address` may use port 0; address() reports the
  /// resolved one.
  static Result<std::unique_ptr<ShardWorker>> Start(
      Graph graph, Transport* transport, const std::string& listen_address,
      const ShardWorkerOptions& options);

  /// Restarted shard: checkpoint + WAL-tail recovery (BcService::Recover;
  /// the manifest's source partition wins), then listen. The rejoin
  /// itself happens over the wire: the coordinator reads this shard's
  /// recovered epoch from the handshake and resends what it missed.
  static Result<std::unique_ptr<ShardWorker>> Recover(
      Transport* transport, const std::string& listen_address,
      const ShardWorkerOptions& options, RecoveryInfo* info = nullptr);

  /// Migration recipient: listen with NO service yet. The first donor
  /// that connects with a MigrateBegin offer streams the graph image
  /// over; the worker rebuilds the graph, runs scoped Step 1 over the
  /// offered source range, and only then starts answering the normal
  /// protocol (a Hello before the handoff is dropped). Slot, range, map
  /// version, and base epoch/position all come from the offer.
  static Result<std::unique_ptr<ShardWorker>> AwaitMigration(
      Transport* transport, const std::string& listen_address,
      const ShardWorkerOptions& options);

  ~ShardWorker();

  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  /// The resolved listen address (host:port).
  const std::string& address() const { return address_; }
  ShardRange range() const {
    std::lock_guard<std::mutex> lock(mu_);
    return range_;
  }

  /// Blocks until the coordinator sent kShutdown or Stop() was called.
  void Wait();

  /// Clean stop: ends the serve loop, then BcService::Stop (final
  /// checkpoint). Idempotent.
  Status Stop();

  /// Crash-shaped stop for tests: ends the serve loop, then
  /// BcService::Halt — no final checkpoint, so a following Recover walks
  /// the real checkpoint + WAL-tail path (the in-process stand-in for
  /// kill -9, which the CLI exercises for real via --kill-after).
  void Halt();

  /// The underlying service (metrics, health); null on an AwaitMigration
  /// worker until its handoff completed. The session thread owns the
  /// engine while the worker runs; only metrics()/health()-style
  /// accessors are safe from other threads.
  BcService* service() {
    std::lock_guard<std::mutex> lock(mu_);
    return service_.get();
  }

 private:
  ShardWorker(std::unique_ptr<BcService> service,
              std::unique_ptr<Listener> listener, Transport* transport,
              const ShardWorkerOptions& options, ShardRange range);

  void ServeLoop();
  /// Serves one coordinator connection until it dies, shutdown, or
  /// Stop(). Returns false when the serve loop should exit.
  bool Session(Connection* conn);
  ApplyAckMsg HandleApply(const ApplyMsg& msg);
  HelloAckMsg MakeHelloAck() const;
  /// Commit step of a split/merge on this shard: version-check, rescope
  /// the engine to `range`, adopt the new map version. The ack carries
  /// the failure for the coordinator to surface.
  ReplicateAckMsg HandleRescope(std::uint64_t map_version, ShardRange range,
                                const char* what);
  /// Donor half of a live migration: export the graph image, stream it to
  /// msg.recipient_address, wait for the recipient's handshake.
  ReplicateAckMsg HandleMigrateOut(const MigrateBeginMsg& msg);
  /// Recipient half: consume the chunk stream from `conn`, rebuild the
  /// graph, create the scoped service, answer with a HelloAck. Returns
  /// false when the stream failed (connection is dropped; the worker
  /// keeps waiting for another offer).
  bool HandleMigrateIn(Connection* conn, const MigrateBeginMsg& msg);

  ShardWorkerOptions options_;
  Transport* transport_;
  std::unique_ptr<Listener> listener_;
  std::string address_;

  std::atomic<bool> stop_{false};
  mutable std::mutex mu_;
  std::condition_variable done_cv_;
  bool shutdown_requested_ = false;
  bool stopped_ = false;
  /// Mutable identity (mu_): a split/merge rescopes range_ and bumps
  /// map_version_; a migration handoff fills service_ and the slot.
  ShardRange range_;
  std::unique_ptr<BcService> service_;
  std::size_t shard_index_ = 0;
  std::size_t shard_count_ = 1;
  /// Newest shard-map version a range-carrying frame told this shard
  /// about; 0 means never told (bring-up default). Reported in the
  /// HelloAck so a takeover coordinator can spot a shard from the future.
  std::uint64_t map_version_ = 0;

  std::thread serve_thread_;
};

}  // namespace sobc

#endif  // SOBC_CLUSTER_SHARD_WORKER_H_
