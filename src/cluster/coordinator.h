#ifndef SOBC_CLUSTER_COORDINATOR_H_
#define SOBC_CLUSTER_COORDINATOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/shard_map.h"
#include "cluster/transport.h"
#include "cluster/wire.h"
#include "common/status.h"
#include "graph/edge_stream.h"
#include "graph/graph.h"
#include "parallel/thread_pool.h"
#include "server/bc_service.h"
#include "server/score_snapshot.h"
#include "server/serve_metrics.h"
#include "server/update_queue.h"

namespace sobc {

/// Tuning of the replicating coordinator: the queue in front of it,
/// snapshot shape (mirroring BcServiceOptions), and the wire-level
/// failure-handling budgets.
struct ClusterCoordinatorOptions {
  /// Queue depth, batching, coalescing — the cluster's single coalescing
  /// point, so every shard applies identical batch boundaries.
  /// `directed` is overwritten from the graph.
  UpdateQueueOptions queue;
  std::size_t top_k = 16;
  bool snapshot_edge_scores = true;
  /// Replicated batches kept for resending to a shard that crashed and
  /// rejoined behind the cluster epoch. A shard further behind than the
  /// window cannot be resynced live and must be re-bootstrapped from a
  /// fresher checkpoint copy.
  std::size_t replay_window_batches = 1024;
  /// Per-shard watchdog: how long one shard may sit on a batch (send to
  /// ack) before the coordinator declares it stalled and reconnects.
  double shard_ack_timeout_seconds = 30.0;
  /// Total budget for bringing one failed shard back (reconnect +
  /// re-handshake + resend) before the coordinator gives up and goes
  /// read-only. The bounded-retry half of the failure story: a flapping
  /// shard costs at most this much wall time per batch.
  double shard_retry_seconds = 10.0;
  /// Pause between reconnect attempts within the retry budget.
  double reconnect_backoff_seconds = 0.05;
  double connect_timeout_seconds = 5.0;
  /// Threads for the partial-score merge tree. 0 = pick automatically
  /// (serial for tiny clusters, a small pool once the tree has real
  /// parallelism).
  std::size_t merge_threads = 0;
};

/// Per-shard observability, surfaced next to the serve metrics.
struct ShardStatus {
  std::string address;
  ShardRange range;
  std::uint64_t epoch = 0;
  ServiceHealth health = ServiceHealth::kHealthy;
  /// Times this shard's connection was re-established (watchdog trips,
  /// crashes, partitions).
  std::uint64_t reconnects = 0;
  /// Replayed batches resent to this shard after rejoins.
  std::uint64_t resent_batches = 0;
};

/// The cluster head (DESIGN.md §13): accepts the update stream through the
/// same Submit/snapshot/Drain surface as BcService, but instead of an
/// in-process engine it replicates every coalesced batch to every shard
/// worker over the wire, collects per-shard cumulative score partials from
/// the acks, merges them through the score_reduce tree, and publishes the
/// merged epoch-stamped snapshot.
///
/// Failure handling is the PR-6 health ladder stretched over the wire:
/// a Degraded shard degrades the coordinator; a stalled or disconnected
/// shard trips the per-shard ack watchdog and is reconnected +
/// resynced from the replay window within a bounded retry budget; a
/// ReadOnly shard — or a retry budget exhausted — takes the coordinator
/// read-only (snapshots keep serving, Submit rejects). Exactly-once per
/// shard comes from the shards' epoch dedupe: the coordinator may deliver
/// a batch twice (lost ack), never skip one (a gap is refused and
/// backfilled from the window).
class ClusterCoordinator {
 public:
  /// Brings up the cluster head over already-listening shard workers:
  /// connects to every address, handshakes (protocol version, graph
  /// signature, shard-map tiling, equal epochs), fetches and merges the
  /// initial partials, and publishes the bring-up snapshot before the
  /// writer starts. `graph` is the coordinator's replica — it must be the
  /// same graph every shard was started with.
  static Result<std::unique_ptr<ClusterCoordinator>> Connect(
      Graph graph, const std::vector<std::string>& shard_addresses,
      Transport* transport, const ClusterCoordinatorOptions& options);

  ~ClusterCoordinator();

  ClusterCoordinator(const ClusterCoordinator&) = delete;
  ClusterCoordinator& operator=(const ClusterCoordinator&) = delete;

  /// Enqueues one update (any thread); same contract as BcService::Submit.
  bool Submit(const EdgeUpdate& update);
  std::size_t SubmitAll(const EdgeStream& stream);

  /// The latest published merged snapshot (wait-free; epoch-stamped).
  std::shared_ptr<const ScoreSnapshot> snapshot() const {
    return snapshots_.Acquire();
  }

  /// Blocks until everything accepted is replicated, acked by every
  /// shard, merged, and published (or the writer failed).
  Status Drain();

  /// Stops accepting updates, drains, joins the writer, and sends every
  /// shard a clean shutdown. Idempotent.
  Status Stop();

  std::uint64_t final_epoch() const {
    std::lock_guard<std::mutex> lock(mu_);
    return final_epoch_;
  }
  std::uint64_t final_position() const {
    return published_position_.load(std::memory_order_acquire);
  }

  ServeMetricsSnapshot metrics() const;
  /// Wire-side view of every shard (address, range, epoch, health,
  /// reconnect/resend counters), coherent as of the last published batch.
  std::vector<ShardStatus> shard_status() const;
  std::size_t num_shards() const { return shards_.size(); }

  ServiceHealth health() const {
    return static_cast<ServiceHealth>(
        health_.load(std::memory_order_acquire));
  }
  Status last_error() const {
    std::lock_guard<std::mutex> lock(mu_);
    return health_error_;
  }

 private:
  struct Shard {
    std::string address;
    std::uint32_t index = 0;
    ShardRange range;
    std::unique_ptr<Connection> conn;
    std::uint64_t epoch = 0;
    std::uint8_t health = 0;
    std::uint64_t reconnects = 0;
    std::uint64_t resent_batches = 0;
  };
  /// One replicated batch retained for resending (contiguous epochs; the
  /// front is the oldest epoch still live-resyncable).
  struct WindowEntry {
    std::uint64_t epoch = 0;
    std::uint64_t stream_position = 0;
    std::vector<EdgeUpdate> updates;
  };

  ClusterCoordinator(Graph graph, const ClusterCoordinatorOptions& options);

  /// Hello/HelloAck over an open connection.
  static Result<HelloAckMsg> Handshake(Connection* conn, const Graph& graph,
                                       double timeout_seconds);

  void WriterLoop();
  /// Replicates one batch (already applied to the replica graph and
  /// pushed to the window) to every shard and collects acked partials
  /// into `partials`. Any shard failure is retried through RecoverShard
  /// within the budget; a terminal failure comes back as the status.
  Status ReplicateBatch(std::uint64_t epoch, std::uint64_t stream_position,
                        const std::vector<EdgeUpdate>& updates,
                        std::vector<BcScores>* partials,
                        std::uint64_t* sources_total,
                        std::uint64_t* sources_prefiltered);
  /// Bounded-retry recovery of one shard to `target_epoch`: reconnect,
  /// re-handshake, resend the missed window epochs (the shard dedupes
  /// duplicates), and return the ack of the target epoch.
  Status RecoverShard(Shard* shard, std::uint64_t target_epoch,
                      ApplyAckMsg* final_ack);
  /// Processes an ack's health byte: Degraded shard -> Degraded
  /// coordinator; ReadOnly shard -> terminal error (returned).
  Status PropagateShardHealth(const Shard& shard, std::uint8_t health);
  /// Merges per-shard partials through the score_reduce tree into
  /// partials[0] (mutating the vector) and returns a reference to it.
  BcScores& MergePartials(std::vector<BcScores>* partials);

  void EnterDegraded(const Status& why);
  void EnterReadOnly(const Status& why);
  /// Rebuilds shard_status_ from shards_ (mu_ held).
  void RefreshShardStatusLocked();

  ClusterCoordinatorOptions options_;
  /// The coordinator's graph replica — advanced batch-by-batch in the
  /// same order the shards advance theirs, and the snapshot's vertex/edge
  /// counts. Owned by the writer thread once it starts.
  Graph graph_;
  Transport* transport_ = nullptr;
  std::vector<Shard> shards_;
  std::unique_ptr<ThreadPool> merge_pool_;

  UpdateQueue queue_;
  SnapshotStore snapshots_;
  ServeMetrics metrics_;

  /// Replay window (writer thread only): contiguous epochs, bounded by
  /// options_.replay_window_batches.
  std::deque<WindowEntry> window_;

  std::uint64_t base_epoch_ = 0;
  std::uint64_t base_position_ = 0;
  std::atomic<std::uint64_t> published_position_{0};

  mutable std::mutex mu_;  // writer_status_, final_*, shard status copy
  std::condition_variable publish_cv_;
  Status writer_status_;
  bool writer_done_ = false;
  bool stopped_ = false;
  std::uint64_t final_epoch_ = 0;
  std::uint64_t final_position_ = 0;
  /// Coherent copy of shards_ wire state for shard_status(), refreshed by
  /// the writer after each batch (shards_ itself is writer-owned).
  std::vector<ShardStatus> shard_status_;

  std::atomic<int> health_{static_cast<int>(ServiceHealth::kHealthy)};
  Status health_error_;

  std::thread writer_;
};

}  // namespace sobc

#endif  // SOBC_CLUSTER_COORDINATOR_H_
