#ifndef SOBC_CLUSTER_COORDINATOR_H_
#define SOBC_CLUSTER_COORDINATOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/shard_map.h"
#include "cluster/transport.h"
#include "cluster/wire.h"
#include "common/status.h"
#include "graph/edge_stream.h"
#include "graph/graph.h"
#include "parallel/thread_pool.h"
#include "server/bc_service.h"
#include "server/score_snapshot.h"
#include "server/serve_metrics.h"
#include "server/update_queue.h"

namespace sobc {

/// Tuning of the replicating coordinator: the queue in front of it,
/// snapshot shape (mirroring BcServiceOptions), and the wire-level
/// failure-handling budgets.
struct ClusterCoordinatorOptions {
  /// Queue depth, batching, coalescing — the cluster's single coalescing
  /// point, so every shard applies identical batch boundaries.
  /// `directed` is overwritten from the graph.
  UpdateQueueOptions queue;
  std::size_t top_k = 16;
  bool snapshot_edge_scores = true;
  /// Replicated batches kept for resending to a shard that crashed and
  /// rejoined behind the cluster epoch. A shard further behind than the
  /// window cannot be resynced live and must be re-bootstrapped from a
  /// fresher checkpoint copy.
  std::size_t replay_window_batches = 1024;
  /// Per-shard watchdog: how long one shard may sit on a batch (send to
  /// ack) before the coordinator declares it stalled and reconnects.
  double shard_ack_timeout_seconds = 30.0;
  /// Total budget for bringing one failed shard back (reconnect +
  /// re-handshake + resend) before the coordinator gives up and goes
  /// read-only. The bounded-retry half of the failure story: a flapping
  /// shard costs at most this much wall time per batch. Also the budget a
  /// takeover spends per shard reconciling the roster.
  double shard_retry_seconds = 10.0;
  /// Pause between reconnect attempts within the retry budget.
  double reconnect_backoff_seconds = 0.05;
  double connect_timeout_seconds = 5.0;
  /// Threads for the partial-score merge tree. 0 = pick automatically
  /// (serial for tiny clusters, a small pool once the tree has real
  /// parallelism).
  std::size_t merge_threads = 0;
  /// Warm-standby feed: non-empty makes Connect listen here (port 0
  /// resolves) and stream every replicated batch to an attached standby
  /// coordinator BEFORE the shard fan-out — the ordering that makes
  /// takeover reconciliation exactly-once (the standby's epoch is never
  /// behind any shard's once attached; DESIGN.md §13). Empty = no feed.
  std::string standby_listen;
  /// Primary -> standby heartbeat cadence while the feed is idle.
  double heartbeat_interval_seconds = 0.5;
  /// Standby-side lease: silence on the primary feed longer than this is
  /// a dead primary and triggers takeover. Must comfortably exceed the
  /// heartbeat interval. The standby reads the clock through LeaseClock,
  /// so tests script expiry deterministically.
  double lease_timeout_seconds = 3.0;
  /// Budget for the blocking halves of a live rebalance: the donor's
  /// image stream + the recipient's scoped Step 1 (split), or the
  /// surviving shard's rescope rebuild (merge).
  double migrate_timeout_seconds = 120.0;
};

/// Per-shard observability, surfaced next to the serve metrics.
struct ShardStatus {
  std::string address;
  ShardRange range;
  std::uint64_t epoch = 0;
  ServiceHealth health = ServiceHealth::kHealthy;
  /// Times this shard's connection was re-established (watchdog trips,
  /// crashes, partitions).
  std::uint64_t reconnects = 0;
  /// Replayed batches resent to this shard after rejoins.
  std::uint64_t resent_batches = 0;
  /// True while this shard is the recipient of an in-flight migration:
  /// it double-applies every batch but its partial is not merged until
  /// the map-version commit.
  bool joining = false;
};

/// The cluster head (DESIGN.md §13): accepts the update stream through the
/// same Submit/snapshot/Drain surface as BcService, but instead of an
/// in-process engine it replicates every coalesced batch to every shard
/// worker over the wire, collects per-shard cumulative score partials from
/// the acks, merges them through the score_reduce tree, and publishes the
/// merged epoch-stamped snapshot.
///
/// Failure handling is the PR-6 health ladder stretched over the wire:
/// a Degraded shard degrades the coordinator; a stalled or disconnected
/// shard trips the per-shard ack watchdog and is reconnected +
/// resynced from the replay window within a bounded retry budget; a
/// ReadOnly shard — or a retry budget exhausted — takes the coordinator
/// read-only (snapshots keep serving, Submit rejects). Exactly-once per
/// shard comes from the shards' epoch dedupe: the coordinator may deliver
/// a batch twice (lost ack), never skip one (a gap is refused and
/// backfilled from the window).
///
/// The coordinator itself is no longer a single point of failure: a
/// warm standby (Standby) tails the primary's replay window over the
/// replicate feed and, when the primary's lease expires, re-handshakes
/// the shard roster, reconciles each shard's last-acked epoch against
/// its own window, and resumes publication (WaitUntilActive). Live
/// rebalancing (SplitShard/MergeShards) re-cuts the source partition
/// under a versioned shard map without stopping the stream.
class ClusterCoordinator {
 public:
  /// Where this coordinator stands in the failover protocol. A Connect
  /// coordinator is kPrimary for life; a Standby one starts tailing and
  /// ends in exactly one of the three terminal states.
  enum class Role {
    kPrimary,
    kStandbyTailing,
    kStandbyActive,    // took over; full primary surface
    kStandbyFinished,  // primary stopped cleanly; nothing to take over
    kStandbyFailed,    // tail or takeover failed terminally
  };

  /// Brings up the cluster head over already-listening shard workers:
  /// connects to every address, handshakes (protocol version, graph
  /// signature, shard-map tiling, equal epochs), fetches and merges the
  /// initial partials, and publishes the bring-up snapshot before the
  /// writer starts. `graph` is the coordinator's replica — it must be the
  /// same graph every shard was started with.
  static Result<std::unique_ptr<ClusterCoordinator>> Connect(
      Graph graph, const std::vector<std::string>& shard_addresses,
      Transport* transport, const ClusterCoordinatorOptions& options);

  /// Brings up a warm standby: connects to the primary's standby feed
  /// (options.standby_listen on the primary; its resolved address), reads
  /// the bootstrap frame, validates the graph replica against the
  /// primary's bring-up signature, and starts tailing the replicated
  /// batch stream. `shard_addresses` is the roster a takeover will
  /// re-handshake — it must match the primary's. Submit/Drain reject
  /// until WaitUntilActive reports a takeover.
  static Result<std::unique_ptr<ClusterCoordinator>> Standby(
      Graph graph, const std::vector<std::string>& shard_addresses,
      Transport* transport, const std::string& primary_address,
      const ClusterCoordinatorOptions& options);

  ~ClusterCoordinator();

  ClusterCoordinator(const ClusterCoordinator&) = delete;
  ClusterCoordinator& operator=(const ClusterCoordinator&) = delete;

  /// Enqueues one update (any thread); same contract as BcService::Submit.
  /// A standby rejects until its takeover completed.
  bool Submit(const EdgeUpdate& update);
  std::size_t SubmitAll(const EdgeStream& stream);

  /// The latest published merged snapshot (wait-free; epoch-stamped).
  /// Null on a standby that has not taken over — the store's empty
  /// placeholder would masquerade as a real epoch-0 publication.
  std::shared_ptr<const ScoreSnapshot> snapshot() const {
    const Role role = role_.load(std::memory_order_acquire);
    if (role != Role::kPrimary && role != Role::kStandbyActive) {
      return nullptr;
    }
    return snapshots_.Acquire();
  }

  /// Blocks until everything accepted is replicated, acked by every
  /// shard, merged, and published (or the writer failed).
  Status Drain();

  /// Stops accepting updates, drains, joins the writer, and sends every
  /// shard — and an attached standby — a clean shutdown (the standby
  /// finishes without taking over). Idempotent.
  Status Stop();

  /// Crash-shaped stop for tests: kills the writer mid-queue and drops
  /// every connection WITHOUT shutdown frames, which is exactly what the
  /// roster observes when the process dies — shards see EOF and
  /// re-accept, an attached standby sees silence and takes over.
  void Halt();

  /// Standby only: blocks until the tail resolves — OK once this
  /// coordinator took over as primary; FailedPrecondition when the
  /// primary stopped cleanly (nothing to take over); the terminal error
  /// when the tail or takeover failed; IOError on timeout.
  Status WaitUntilActive(double timeout_seconds);

  Role role() const { return role_.load(std::memory_order_acquire); }

  /// Primary: 1 while a standby is attached (caught up and receiving the
  /// batch feed). Standby: 1 once its own catch-up completed.
  bool standby_attached() const {
    return standby_attached_.load(std::memory_order_acquire) != 0;
  }

  /// Resolved address of the standby feed ("" when standby_listen was
  /// empty) — what an operator passes to `--standby-of`.
  const std::string& standby_address() const { return standby_address_; }

  /// Live rebalance (active coordinator only; blocks until committed):
  /// splits shard `donor_index`'s source range in half, migrating the
  /// upper half to the AwaitMigration worker at `recipient_address`. The
  /// stream keeps flowing: after the checkpoint-consistent image ships,
  /// batches double-apply on donor and recipient until the atomic
  /// map-version commit rescopes the donor. Refused while a standby is
  /// attached or another rebalance is in flight.
  Status SplitShard(std::size_t donor_index,
                    const std::string& recipient_address);

  /// Live rebalance: merges shard `left_index+1`'s range into shard
  /// `left_index` (which rescopes to the union) and retires the right
  /// shard. Single writer turn — atomic under the map-version bump.
  Status MergeShards(std::size_t left_index);

  std::uint64_t final_epoch() const {
    std::lock_guard<std::mutex> lock(mu_);
    return final_epoch_;
  }
  std::uint64_t final_position() const {
    return published_position_.load(std::memory_order_acquire);
  }

  ServeMetricsSnapshot metrics() const;
  /// Wire-side view of every shard (address, range, epoch, health,
  /// reconnect/resend counters), coherent as of the last published batch.
  std::vector<ShardStatus> shard_status() const;
  std::size_t num_shards() const {
    std::lock_guard<std::mutex> lock(mu_);
    return shard_status_.size();
  }

  ServiceHealth health() const {
    return static_cast<ServiceHealth>(
        health_.load(std::memory_order_acquire));
  }
  Status last_error() const {
    std::lock_guard<std::mutex> lock(mu_);
    return health_error_;
  }

 private:
  struct Shard {
    std::string address;
    std::uint32_t index = 0;
    /// Identity the shard process reported at its LAST handshake; a
    /// reconnect must reproduce it exactly. reported_count is per-shard
    /// (not shards_.size()): after a split the roster holds workers
    /// started for different counts, all legitimately part of this
    /// cluster.
    std::uint32_t reported_count = 0;
    ShardRange range;
    std::unique_ptr<Connection> conn;
    std::uint64_t epoch = 0;
    std::uint8_t health = 0;
    std::uint64_t reconnects = 0;
    std::uint64_t resent_batches = 0;
    /// Migration recipient before the commit: in the Apply fan-out,
    /// excluded from the merge.
    bool joining = false;
  };
  /// One replicated batch retained for resending (contiguous epochs; the
  /// front is the oldest epoch still live-resyncable).
  struct WindowEntry {
    std::uint64_t epoch = 0;
    std::uint64_t stream_position = 0;
    std::vector<EdgeUpdate> updates;
  };
  /// One blocking rebalance call parked for the writer thread to execute
  /// between batches.
  struct ControlRequest {
    enum class Kind { kSplit, kMerge };
    Kind kind = Kind::kSplit;
    std::size_t index = 0;
    std::string recipient_address;
    Status result;
    bool done = false;
  };
  /// Writer-owned state of the in-flight split migration.
  struct Migration {
    bool active = false;
    std::size_t donor = 0;
    std::size_t joining = 0;
    std::uint64_t new_version = 0;
    ShardRange donor_new_range;
    std::uint64_t double_applied = 0;
    Status joining_status;
    ControlRequest* request = nullptr;
  };

  ClusterCoordinator(Graph graph, const ClusterCoordinatorOptions& options);

  /// Hello/HelloAck over an open connection.
  static Result<HelloAckMsg> Handshake(Connection* conn, const Graph& graph,
                                       double timeout_seconds);

  void WriterLoop();
  /// Replicates one batch (already applied to the replica graph, pushed
  /// to the window, and shipped to the standby) to every shard and
  /// collects acked partials into `partials`. Any shard failure is
  /// retried through RecoverShard within the budget; a terminal failure
  /// comes back as the status. A failing JOINING shard never fails the
  /// batch — it aborts the migration (migration_.joining_status).
  Status ReplicateBatch(std::uint64_t epoch, std::uint64_t stream_position,
                        const std::vector<EdgeUpdate>& updates,
                        std::vector<BcScores>* partials,
                        std::uint64_t* sources_total,
                        std::uint64_t* sources_prefiltered);
  /// Bounded-retry recovery of one shard to `target_epoch`: reconnect,
  /// re-handshake, resend the missed window epochs (the shard dedupes
  /// duplicates), and return the ack of the target epoch.
  Status RecoverShard(Shard* shard, std::uint64_t target_epoch,
                      ApplyAckMsg* final_ack);
  /// Processes an ack's health byte: Degraded shard -> Degraded
  /// coordinator; ReadOnly shard -> terminal error (returned).
  Status PropagateShardHealth(const Shard& shard, std::uint8_t health);
  /// Merges per-shard partials through the score_reduce tree into
  /// partials[0] (mutating the vector) and returns a reference to it.
  BcScores& MergePartials(std::vector<BcScores>* partials);

  /// --- standby feed (primary side; acceptor thread) ---
  void StandbyAcceptorLoop();
  /// Bootstraps + catches one standby connection up from the window,
  /// attaches it (writer takes over batch replication), then heartbeats
  /// until the connection breaks or the coordinator stops.
  void ServeStandby(std::unique_ptr<Connection> conn);
  /// Ships one window entry over the feed and awaits its ack.
  Status ReplicateEntryTo(Connection* conn, const WindowEntry& entry);
  /// Writer-side: pushes the batch into the window (trimming) and ships
  /// it to the attached standby, detaching the standby on failure.
  void PushWindowAndReplicate(WindowEntry entry);

  /// --- standby side (tail thread) ---
  void TailLoop();
  /// Lease expired or the feed died: reconcile the roster and become the
  /// primary. Runs on the tail thread; on success starts the writer.
  void Takeover(std::uint64_t epoch, std::uint64_t position,
                const std::string& reason);
  /// Connects + handshakes the roster, resyncs lagging shards from the
  /// window, fetches the partials at (epoch, position).
  Status ReconcileShards(std::uint64_t epoch, std::uint64_t position,
                         std::vector<Shard>* roster,
                         std::vector<BcScores>* partials);
  void FailStandby(const Status& why);

  /// --- rebalance (writer thread) ---
  void RunPendingControl(std::uint64_t epoch, std::uint64_t position);
  Status BeginSplit(ControlRequest* request, std::uint64_t epoch,
                    std::uint64_t position);
  Status ExecuteMerge(ControlRequest* request);
  /// Commits the in-flight migration (donor rescope + map-version bump)
  /// once at least one batch double-applied, or unconditionally on an
  /// idle tick.
  void MaybeCommitMigration(bool idle);
  void AbortMigration(const Status& why);
  void CompleteControl(ControlRequest* request, Status result);
  /// Fails a parked request when the writer can no longer run it.
  void FailPendingControl(const Status& why);
  /// Sends one control frame and awaits its ReplicateAck within
  /// migrate_timeout_seconds.
  Status ControlRoundTrip(Connection* conn, const std::string& frame,
                          ReplicateAckMsg* ack);

  void EnterDegraded(const Status& why);
  void EnterReadOnly(const Status& why);
  /// Rebuilds shard_status_ from shards_ (mu_ held).
  void RefreshShardStatusLocked();

  ClusterCoordinatorOptions options_;
  /// The coordinator's graph replica — advanced batch-by-batch in the
  /// same order the shards advance theirs, and the snapshot's vertex/edge
  /// counts. Owned by the writer thread once it starts (on a standby: the
  /// tail thread until takeover, the writer after).
  Graph graph_;
  Transport* transport_ = nullptr;
  std::vector<Shard> shards_;
  std::unique_ptr<ThreadPool> merge_pool_;

  UpdateQueue queue_;
  SnapshotStore snapshots_;
  ServeMetrics metrics_;

  /// Replay window: contiguous epochs, bounded by
  /// options_.replay_window_batches. Mutated only by the batch-stream
  /// owner (writer, or the standby tail before takeover), but read by the
  /// standby acceptor during catch-up — every mutation and catch-up scan
  /// holds standby_mu_.
  std::deque<WindowEntry> window_;

  std::uint64_t base_epoch_ = 0;
  std::uint64_t base_position_ = 0;
  std::atomic<std::uint64_t> published_position_{0};
  /// Graph signature at bring-up, carried by the standby bootstrap frame
  /// (the standby's replica must equal the primary's bring-up replica).
  std::uint64_t boot_vertices_ = 0;
  std::uint64_t boot_edges_ = 0;
  bool boot_directed_ = false;

  mutable std::mutex mu_;  // writer_status_, final_*, shard status copy
  std::condition_variable publish_cv_;
  Status writer_status_;
  bool writer_done_ = false;
  bool stopped_ = false;
  std::uint64_t final_epoch_ = 0;
  std::uint64_t final_position_ = 0;
  /// Coherent copy of shards_ wire state for shard_status(), refreshed by
  /// the writer after each batch (shards_ itself is writer-owned).
  std::vector<ShardStatus> shard_status_;

  std::atomic<int> health_{static_cast<int>(ServiceHealth::kHealthy)};
  Status health_error_;

  /// --- standby feed state (primary) ---
  std::unique_ptr<Listener> standby_listener_;
  std::string standby_address_;
  std::mutex standby_mu_;  // window_ mutations + standby_conn_
  std::unique_ptr<Connection> standby_conn_;
  std::thread standby_acceptor_;
  std::atomic<bool> acceptor_stop_{false};

  /// --- standby (tail) state ---
  std::atomic<Role> role_{Role::kPrimary};
  std::vector<std::string> shard_addresses_;
  std::unique_ptr<Connection> primary_conn_;
  std::thread tail_thread_;
  std::atomic<bool> tail_stop_{false};
  Status standby_status_;  // terminal tail/takeover error (mu_)

  /// --- rebalance state ---
  std::mutex control_mu_;
  std::condition_variable control_cv_;
  ControlRequest* pending_control_ = nullptr;
  Migration migration_;  // writer-owned
  std::atomic<bool> migration_active_{false};
  /// Shard-map generation: 1 at bring-up, +1 per committed split/merge.
  /// The plain copy is the writer's working value; the atomic mirrors it
  /// for metrics().
  std::uint64_t map_version_plain_ = 1;
  std::atomic<std::uint64_t> map_version_{0};

  std::atomic<bool> halted_{false};

  /// --- cluster-plane metrics ---
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<double> failover_gap_seconds_{0.0};
  std::atomic<std::uint64_t> standby_attached_{0};
  std::atomic<std::uint64_t> replicated_batches_{0};
  std::atomic<std::uint64_t> migrations_started_{0};
  std::atomic<std::uint64_t> migrations_completed_{0};
  std::atomic<std::uint64_t> migration_lag_batches_{0};

  std::thread writer_;
};

}  // namespace sobc

#endif  // SOBC_CLUSTER_COORDINATOR_H_
