#ifndef SOBC_CLUSTER_WIRE_H_
#define SOBC_CLUSTER_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bc/bc_types.h"
#include "cluster/shard_map.h"
#include "common/status.h"
#include "graph/edge_stream.h"
#include "graph/graph.h"

namespace sobc {

/// Coordinator <-> shard protocol version. Bumped on any incompatible
/// change; the Hello/HelloAck exchange refuses a mismatch at bring-up
/// instead of mis-parsing frames mid-stream. v2: standby replication
/// (Replicate/ReplicateAck), live rebalancing (SplitRange/MergeRange/
/// Migrate*), and the shard-map version in HelloAck.
inline constexpr std::uint32_t kClusterProtocolVersion = 2;

/// Every message is one transport frame; the frame layer (transport.h)
/// adds the [u32 length][u32 crc] envelope, so a payload reaching a
/// decoder has already passed its CRC. The first payload byte is the
/// message type; all integers are little-endian, doubles are IEEE-754
/// bit patterns.
enum class MsgType : std::uint8_t {
  kHello = 1,        // coordinator -> shard: identity + graph signature
  kHelloAck = 2,     // shard -> coordinator: partition, epoch, health
  kApply = 3,        // coordinator -> shard: one coalesced batch
  kApplyAck = 4,     // shard -> coordinator: result + partial scores
  kFetch = 5,        // coordinator -> shard: request current partials
  kPartial = 6,      // shard -> coordinator: current partial scores
  kShutdown = 7,      // coordinator -> shard: clean stop
  kShutdownAck = 8,   // shard -> coordinator: stopping
  kReplicate = 9,     // primary -> standby: batch / heartbeat / bootstrap
  kReplicateAck = 10, // standby -> primary; also the generic control ack
  kSplitRange = 11,   // coordinator -> donor: shrink to the new range
  kMergeRange = 12,   // coordinator -> shard: expand to the merged range
  kMigrateBegin = 13, // coordinator -> donor, and donor -> recipient
  kMigrateChunk = 14, // donor -> recipient: one slice of the image
  kMigrateCommit = 15,// donor -> recipient: image complete, CRC attached
};

/// Coordinator's opening message: the graph signature both sides must
/// agree on (a shard started over a different edge list would silently
/// produce wrong partials — refuse at handshake instead).
struct HelloMsg {
  std::uint32_t protocol_version = kClusterProtocolVersion;
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  bool directed = false;
};

/// Shard's handshake reply: who it is, what it owns, and where its
/// replicated log stands. The coordinator uses `epoch` to decide between
/// resuming (equal epochs), resending from its replay window (behind), or
/// refusing bring-up (ahead / inconsistent).
struct HelloAckMsg {
  std::uint32_t protocol_version = kClusterProtocolVersion;
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  ShardRange range;
  std::uint64_t epoch = 0;
  std::uint64_t stream_position = 0;
  std::uint8_t health = 0;  // ServiceHealth as int
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  bool directed = false;
  /// Newest shard-map version this worker has applied; 0 means "never
  /// told" (a fresh or checkpoint-recovered worker), which the
  /// coordinator accepts against any current version.
  std::uint64_t map_version = 0;
};

/// One replicated batch under the coordinator's absolute epoch numbering.
/// Batches are pre-coalesced by the coordinator's queue — the single
/// coalescing point, so every shard applies identical batch boundaries.
struct ApplyMsg {
  std::uint64_t epoch = 0;
  std::uint64_t stream_position = 0;
  std::vector<EdgeUpdate> updates;
};

/// Shard's per-batch reply. On success it carries the shard's CUMULATIVE
/// score partial (dense vbc over every vertex + its ebc contributions) —
/// the coordinator's merge input. On failure `ok` is false and
/// status_code/message carry the shard-side error; `health` always
/// reflects the shard's ladder position so Degraded propagates even while
/// batches still succeed.
struct ApplyAckMsg {
  std::uint64_t epoch = 0;
  std::uint64_t stream_position = 0;
  bool ok = true;
  std::uint8_t status_code = 0;  // StatusCode as int, 0 when ok
  std::string message;
  std::uint8_t health = 0;
  std::uint64_t sources_total = 0;
  std::uint64_t sources_prefiltered = 0;
  BcScores partial;
};

/// Reply to kFetch: the shard's current state, for coordinator bring-up
/// (the epoch-0 merge) and post-rejoin resync.
struct PartialMsg {
  std::uint64_t epoch = 0;
  std::uint64_t stream_position = 0;
  std::uint8_t health = 0;
  BcScores partial;
};

/// One frame of the primary -> standby replication feed. kind
/// distinguishes the three shapes sharing the codec: a real batch (the
/// standby applies and acks it), a heartbeat (lease renewal only, never
/// acked), and the bootstrap frame that opens the feed (carries the
/// primary's base epoch/position plus the graph signature the standby's
/// replica must match).
struct ReplicateMsg {
  static constexpr std::uint8_t kBatch = 0;
  static constexpr std::uint8_t kHeartbeat = 1;
  static constexpr std::uint8_t kBootstrap = 2;

  std::uint8_t kind = kBatch;
  std::uint64_t epoch = 0;
  std::uint64_t stream_position = 0;
  /// Graph signature, meaningful on kBootstrap only.
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  bool directed = false;
  std::vector<EdgeUpdate> updates;
};

/// Ack for a kBatch/kBootstrap replicate, and the generic reply to the
/// rebalancing control messages (SplitRange/MergeRange/MigrateBegin):
/// ok=false carries a human-readable refusal.
struct ReplicateAckMsg {
  std::uint64_t epoch = 0;
  bool ok = true;
  std::string message;
};

/// Shrinks the receiving shard to `range` under the new map version; the
/// shard rebuilds its scoped framework over the smaller range and acks
/// with its (unchanged) epoch.
struct SplitRangeMsg {
  std::uint64_t map_version = 0;
  ShardRange range;
};

/// Expands the receiving shard to the union `range` (absorbing a
/// neighbor being retired) under the new map version.
struct MergeRangeMsg {
  std::uint64_t map_version = 0;
  ShardRange range;
};

/// Opens a range migration. Coordinator -> donor: recipient_address
/// names where to stream (total_bytes 0). Donor -> recipient:
/// recipient_address is empty and total_bytes is the migration-image
/// size about to arrive in MigrateChunk frames. `range` is the slice the
/// recipient will own; shard_index/shard_count are its slot in the
/// post-split map; epoch/stream_position stamp the checkpoint-consistent
/// cut the image was taken at.
struct MigrateBeginMsg {
  std::uint64_t epoch = 0;
  std::uint64_t stream_position = 0;
  std::uint64_t map_version = 0;
  ShardRange range;
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 0;
  std::uint64_t total_bytes = 0;
  std::string recipient_address;
};

/// One slice of the migration image, offset-stamped so a reordered or
/// repeated chunk is detected instead of corrupting the image.
struct MigrateChunkMsg {
  std::uint64_t offset = 0;
  std::string data;
};

/// Closes the migration stream: the recipient verifies it holds exactly
/// total_bytes with this CRC-32 before building state from the image.
struct MigrateCommitMsg {
  std::uint64_t total_bytes = 0;
  std::uint32_t crc = 0;
};

/// First payload byte, or InvalidArgument on an empty payload.
Result<MsgType> PeekType(const std::string& payload);

std::string EncodeHello(const HelloMsg& msg);
std::string EncodeHelloAck(const HelloAckMsg& msg);
std::string EncodeApply(const ApplyMsg& msg);
std::string EncodeApplyAck(const ApplyAckMsg& msg);
std::string EncodeFetch();
std::string EncodePartial(const PartialMsg& msg);
std::string EncodeShutdown();
std::string EncodeShutdownAck();
std::string EncodeReplicate(const ReplicateMsg& msg);
std::string EncodeReplicateAck(const ReplicateAckMsg& msg);
std::string EncodeSplitRange(const SplitRangeMsg& msg);
std::string EncodeMergeRange(const MergeRangeMsg& msg);
std::string EncodeMigrateBegin(const MigrateBeginMsg& msg);
std::string EncodeMigrateChunk(const MigrateChunkMsg& msg);
std::string EncodeMigrateCommit(const MigrateCommitMsg& msg);

Result<HelloMsg> DecodeHello(const std::string& payload);
Result<HelloAckMsg> DecodeHelloAck(const std::string& payload);
Result<ApplyMsg> DecodeApply(const std::string& payload);
Result<ApplyAckMsg> DecodeApplyAck(const std::string& payload);
Result<PartialMsg> DecodePartial(const std::string& payload);
Result<ReplicateMsg> DecodeReplicate(const std::string& payload);
Result<ReplicateAckMsg> DecodeReplicateAck(const std::string& payload);
Result<SplitRangeMsg> DecodeSplitRange(const std::string& payload);
Result<MergeRangeMsg> DecodeMergeRange(const std::string& payload);
Result<MigrateBeginMsg> DecodeMigrateBegin(const std::string& payload);
Result<MigrateChunkMsg> DecodeMigrateChunk(const std::string& payload);
Result<MigrateCommitMsg> DecodeMigrateCommit(const std::string& payload);

}  // namespace sobc

#endif  // SOBC_CLUSTER_WIRE_H_
