#ifndef SOBC_CLUSTER_WIRE_H_
#define SOBC_CLUSTER_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bc/bc_types.h"
#include "cluster/shard_map.h"
#include "common/status.h"
#include "graph/edge_stream.h"
#include "graph/graph.h"

namespace sobc {

/// Coordinator <-> shard protocol version. Bumped on any incompatible
/// change; the Hello/HelloAck exchange refuses a mismatch at bring-up
/// instead of mis-parsing frames mid-stream.
inline constexpr std::uint32_t kClusterProtocolVersion = 1;

/// Every message is one transport frame; the frame layer (transport.h)
/// adds the [u32 length][u32 crc] envelope, so a payload reaching a
/// decoder has already passed its CRC. The first payload byte is the
/// message type; all integers are little-endian, doubles are IEEE-754
/// bit patterns.
enum class MsgType : std::uint8_t {
  kHello = 1,        // coordinator -> shard: identity + graph signature
  kHelloAck = 2,     // shard -> coordinator: partition, epoch, health
  kApply = 3,        // coordinator -> shard: one coalesced batch
  kApplyAck = 4,     // shard -> coordinator: result + partial scores
  kFetch = 5,        // coordinator -> shard: request current partials
  kPartial = 6,      // shard -> coordinator: current partial scores
  kShutdown = 7,     // coordinator -> shard: clean stop
  kShutdownAck = 8,  // shard -> coordinator: stopping
};

/// Coordinator's opening message: the graph signature both sides must
/// agree on (a shard started over a different edge list would silently
/// produce wrong partials — refuse at handshake instead).
struct HelloMsg {
  std::uint32_t protocol_version = kClusterProtocolVersion;
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  bool directed = false;
};

/// Shard's handshake reply: who it is, what it owns, and where its
/// replicated log stands. The coordinator uses `epoch` to decide between
/// resuming (equal epochs), resending from its replay window (behind), or
/// refusing bring-up (ahead / inconsistent).
struct HelloAckMsg {
  std::uint32_t protocol_version = kClusterProtocolVersion;
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  ShardRange range;
  std::uint64_t epoch = 0;
  std::uint64_t stream_position = 0;
  std::uint8_t health = 0;  // ServiceHealth as int
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  bool directed = false;
};

/// One replicated batch under the coordinator's absolute epoch numbering.
/// Batches are pre-coalesced by the coordinator's queue — the single
/// coalescing point, so every shard applies identical batch boundaries.
struct ApplyMsg {
  std::uint64_t epoch = 0;
  std::uint64_t stream_position = 0;
  std::vector<EdgeUpdate> updates;
};

/// Shard's per-batch reply. On success it carries the shard's CUMULATIVE
/// score partial (dense vbc over every vertex + its ebc contributions) —
/// the coordinator's merge input. On failure `ok` is false and
/// status_code/message carry the shard-side error; `health` always
/// reflects the shard's ladder position so Degraded propagates even while
/// batches still succeed.
struct ApplyAckMsg {
  std::uint64_t epoch = 0;
  std::uint64_t stream_position = 0;
  bool ok = true;
  std::uint8_t status_code = 0;  // StatusCode as int, 0 when ok
  std::string message;
  std::uint8_t health = 0;
  std::uint64_t sources_total = 0;
  std::uint64_t sources_prefiltered = 0;
  BcScores partial;
};

/// Reply to kFetch: the shard's current state, for coordinator bring-up
/// (the epoch-0 merge) and post-rejoin resync.
struct PartialMsg {
  std::uint64_t epoch = 0;
  std::uint64_t stream_position = 0;
  std::uint8_t health = 0;
  BcScores partial;
};

/// First payload byte, or InvalidArgument on an empty payload.
Result<MsgType> PeekType(const std::string& payload);

std::string EncodeHello(const HelloMsg& msg);
std::string EncodeHelloAck(const HelloAckMsg& msg);
std::string EncodeApply(const ApplyMsg& msg);
std::string EncodeApplyAck(const ApplyAckMsg& msg);
std::string EncodeFetch();
std::string EncodePartial(const PartialMsg& msg);
std::string EncodeShutdown();
std::string EncodeShutdownAck();

Result<HelloMsg> DecodeHello(const std::string& payload);
Result<HelloAckMsg> DecodeHelloAck(const std::string& payload);
Result<ApplyMsg> DecodeApply(const std::string& payload);
Result<ApplyAckMsg> DecodeApplyAck(const std::string& payload);
Result<PartialMsg> DecodePartial(const std::string& payload);

}  // namespace sobc

#endif  // SOBC_CLUSTER_WIRE_H_
