#include "cluster/lease.h"

#include <atomic>
#include <chrono>

namespace sobc {

namespace {

class SteadyLeaseClock : public LeaseClock {
 public:
  double Now() override {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

std::atomic<LeaseClock*>& InstalledClock() {
  static std::atomic<LeaseClock*> installed{nullptr};
  return installed;
}

}  // namespace

LeaseClock* LeaseClock::Default() {
  static SteadyLeaseClock* clock = new SteadyLeaseClock();
  return clock;
}

LeaseClock* LeaseClock::Get() {
  LeaseClock* clock = InstalledClock().load(std::memory_order_acquire);
  return clock != nullptr ? clock : Default();
}

LeaseClock* LeaseClock::Install(LeaseClock* clock) {
  return InstalledClock().exchange(clock, std::memory_order_acq_rel);
}

Lease::Lease(double timeout_seconds)
    : timeout_(timeout_seconds), renewed_at_(LeaseClock::Get()->Now()) {}

void Lease::Renew() { renewed_at_ = LeaseClock::Get()->Now(); }

bool Lease::Expired() const {
  return LeaseClock::Get()->Now() - renewed_at_ > timeout_;
}

double Lease::SilenceSeconds() const {
  const double silence = LeaseClock::Get()->Now() - renewed_at_;
  return silence > 0 ? silence : 0.0;
}

double ScriptedLeaseClock::Now() {
  std::lock_guard<std::mutex> lock(mu_);
  return now_;
}

void ScriptedLeaseClock::Advance(double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  now_ += seconds;
}

void ScriptedLeaseClock::Set(double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  now_ = seconds;
}

}  // namespace sobc
