#include "cluster/coordinator.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/io.h"
#include "parallel/score_reduce.h"

namespace sobc {

namespace {

ClusterCoordinatorOptions ResolveOptions(
    const ClusterCoordinatorOptions& options, const Graph& graph) {
  ClusterCoordinatorOptions resolved = options;
  resolved.queue.directed = graph.directed();
  resolved.replay_window_batches =
      std::max<std::size_t>(1, resolved.replay_window_batches);
  return resolved;
}

std::string ShardName(std::uint32_t index, const std::string& address) {
  return "shard " + std::to_string(index) + " (" + address + ")";
}

/// Receives one frame and requires it to be `want`; any transport error,
/// decode error, or other message type comes back as a status.
Status RecvExpect(Connection* conn, MsgType want, double timeout_seconds,
                  std::string* payload) {
  SOBC_RETURN_NOT_OK(conn->RecvFrame(payload, timeout_seconds));
  auto type = PeekType(*payload);
  SOBC_RETURN_NOT_OK(type.status());
  if (*type != want) {
    return Status::Internal(
        "protocol desync: expected message type " +
        std::to_string(static_cast<int>(want)) + ", got " +
        std::to_string(static_cast<int>(*type)));
  }
  return Status::OK();
}

}  // namespace

ClusterCoordinator::ClusterCoordinator(
    Graph graph, const ClusterCoordinatorOptions& options)
    : options_(ResolveOptions(options, graph)),
      graph_(std::move(graph)),
      queue_(options_.queue) {}

ClusterCoordinator::~ClusterCoordinator() { (void)Stop(); }

Result<HelloAckMsg> ClusterCoordinator::Handshake(Connection* conn,
                                                  const Graph& graph,
                                                  double timeout_seconds) {
  HelloMsg hello;
  hello.num_vertices = graph.NumVertices();
  hello.num_edges = graph.NumEdges();
  hello.directed = graph.directed();
  SOBC_RETURN_NOT_OK(conn->SendFrame(EncodeHello(hello)));
  std::string payload;
  SOBC_RETURN_NOT_OK(
      RecvExpect(conn, MsgType::kHelloAck, timeout_seconds, &payload));
  auto ack = DecodeHelloAck(payload);
  SOBC_RETURN_NOT_OK(ack.status());
  if (ack->protocol_version != kClusterProtocolVersion) {
    return Status::FailedPrecondition(
        "shard speaks cluster protocol v" +
        std::to_string(ack->protocol_version) + ", coordinator speaks v" +
        std::to_string(kClusterProtocolVersion));
  }
  return ack;
}

Result<std::unique_ptr<ClusterCoordinator>> ClusterCoordinator::Connect(
    Graph graph, const std::vector<std::string>& shard_addresses,
    Transport* transport, const ClusterCoordinatorOptions& options) {
  if (transport == nullptr) {
    return Status::InvalidArgument("cluster coordinator needs a transport");
  }
  const std::size_t num_shards = shard_addresses.size();
  if (num_shards == 0) {
    return Status::InvalidArgument("a cluster needs at least one shard");
  }
  auto coordinator = std::unique_ptr<ClusterCoordinator>(
      new ClusterCoordinator(std::move(graph), options));
  coordinator->transport_ = transport;
  const ClusterCoordinatorOptions& resolved = coordinator->options_;

  // Handshake every shard; order the roster by the index each one
  // reports, not by the address list (an operator may list them in any
  // order — the shard map is what must tile).
  std::vector<Shard> roster(num_shards);
  std::vector<bool> seen(num_shards, false);
  for (const std::string& address : shard_addresses) {
    auto conn =
        transport->Connect(address, resolved.connect_timeout_seconds);
    if (!conn.ok()) {
      return Status(conn.status().code(),
                    "connecting to shard " + address + ": " +
                        conn.status().message());
    }
    auto ack = Handshake(conn->get(), coordinator->graph_,
                         resolved.shard_ack_timeout_seconds);
    if (!ack.ok()) {
      return Status(ack.status().code(),
                    "handshake with shard " + address + ": " +
                        ack.status().message());
    }
    if (ack->shard_count != num_shards) {
      return Status::FailedPrecondition(
          "shard " + address + " was started for a " +
          std::to_string(ack->shard_count) + "-shard cluster, coordinator has " +
          std::to_string(num_shards) + " addresses");
    }
    if (ack->shard_index >= num_shards || seen[ack->shard_index]) {
      return Status::FailedPrecondition(
          "shard " + address + " reports index " +
          std::to_string(ack->shard_index) +
          ", which is out of range or already taken");
    }
    if (ack->num_vertices != coordinator->graph_.NumVertices() ||
        ack->num_edges != coordinator->graph_.NumEdges() ||
        ack->directed != coordinator->graph_.directed()) {
      return Status::FailedPrecondition(
          "graph signature mismatch with shard " + address +
          ": it serves a different graph than the coordinator's replica");
    }
    if (static_cast<ServiceHealth>(ack->health) ==
        ServiceHealth::kReadOnly) {
      return Status::FailedPrecondition(
          "shard " + address + " is read-only; restart it before bring-up");
    }
    Shard shard;
    shard.address = address;
    shard.index = ack->shard_index;
    shard.range = ack->range;
    shard.conn = std::move(*conn);
    shard.epoch = ack->epoch;
    shard.health = ack->health;
    roster[ack->shard_index] = std::move(shard);
    seen[ack->shard_index] = true;
  }

  std::vector<ShardRange> ranges;
  ranges.reserve(num_shards);
  for (const Shard& shard : roster) ranges.push_back(shard.range);
  SOBC_RETURN_NOT_OK(
      ValidateShardMap(ranges, coordinator->graph_.NumVertices()));
  for (const Shard& shard : roster) {
    if (shard.epoch != roster[0].epoch) {
      return Status::FailedPrecondition(
          "shards disagree on the replicated epoch at bring-up (" +
          ShardName(shard.index, shard.address) + " is at epoch " +
          std::to_string(shard.epoch) + ", shard 0 at " +
          std::to_string(roster[0].epoch) +
          "); re-bootstrap them from one checkpoint set");
    }
  }
  coordinator->shards_ = std::move(roster);

  // The bring-up merge: fetch every shard's current partial and publish
  // the epoch the cluster stands at before accepting any update.
  std::vector<BcScores> partials(num_shards);
  std::uint64_t base_epoch = coordinator->shards_[0].epoch;
  std::uint64_t base_position = 0;
  for (std::size_t i = 0; i < num_shards; ++i) {
    Shard& shard = coordinator->shards_[i];
    SOBC_RETURN_NOT_OK(shard.conn->SendFrame(EncodeFetch()));
    std::string payload;
    SOBC_RETURN_NOT_OK(RecvExpect(shard.conn.get(), MsgType::kPartial,
                                  resolved.shard_ack_timeout_seconds,
                                  &payload));
    auto partial = DecodePartial(payload);
    SOBC_RETURN_NOT_OK(partial.status());
    if (partial->epoch != base_epoch) {
      return Status::FailedPrecondition(
          ShardName(shard.index, shard.address) +
          " moved between handshake and the bring-up fetch");
    }
    base_position = partial->stream_position;
    partials[i] = std::move(partial->partial);
    if (static_cast<ServiceHealth>(partial->health) ==
        ServiceHealth::kDegraded) {
      coordinator->EnterDegraded(Status::FailedPrecondition(
          ShardName(shard.index, shard.address) +
          " is degraded (checkpointing suspended shard-side)"));
    }
  }

  // Merge pool: the reduce tree over p partials has floor(p/2)-way
  // parallelism in its first round; tiny clusters merge serially.
  if (resolved.merge_threads > 0) {
    coordinator->merge_pool_ =
        std::make_unique<ThreadPool>(resolved.merge_threads);
  } else if (num_shards >= 4) {
    coordinator->merge_pool_ = std::make_unique<ThreadPool>(num_shards / 2);
  }

  BcScores& merged = coordinator->MergePartials(&partials);
  coordinator->snapshots_.Publish(BuildSnapshot(
      coordinator->graph_, merged, base_epoch, base_position,
      resolved.top_k, resolved.snapshot_edge_scores));
  coordinator->metrics_.SeedPublication(base_epoch, base_position);
  coordinator->base_epoch_ = base_epoch;
  coordinator->base_position_ = base_position;
  coordinator->final_epoch_ = base_epoch;
  coordinator->final_position_ = base_position;
  coordinator->published_position_.store(base_position,
                                         std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(coordinator->mu_);
    coordinator->RefreshShardStatusLocked();
  }
  coordinator->writer_ =
      std::thread([raw = coordinator.get()] { raw->WriterLoop(); });
  return coordinator;
}

void ClusterCoordinator::RefreshShardStatusLocked() {
  shard_status_.clear();
  shard_status_.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    ShardStatus status;
    status.address = shard.address;
    status.range = shard.range;
    status.epoch = shard.epoch;
    status.health = static_cast<ServiceHealth>(shard.health);
    status.reconnects = shard.reconnects;
    status.resent_batches = shard.resent_batches;
    shard_status_.push_back(std::move(status));
  }
}

std::vector<ShardStatus> ClusterCoordinator::shard_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shard_status_;
}

bool ClusterCoordinator::Submit(const EdgeUpdate& update) {
  if (health() == ServiceHealth::kReadOnly) return false;
  return queue_.Push(update);
}

std::size_t ClusterCoordinator::SubmitAll(const EdgeStream& stream) {
  std::size_t accepted = 0;
  for (const EdgeUpdate& update : stream) {
    if (Submit(update)) ++accepted;
  }
  return accepted;
}

BcScores& ClusterCoordinator::MergePartials(
    std::vector<BcScores>* partials) {
  std::vector<BcScores*> pointers;
  pointers.reserve(partials->size());
  for (BcScores& partial : *partials) pointers.push_back(&partial);
  TreeReduceScores(merge_pool_.get(), pointers);
  return (*partials)[0];
}

Status ClusterCoordinator::PropagateShardHealth(const Shard& shard,
                                                std::uint8_t health) {
  switch (static_cast<ServiceHealth>(health)) {
    case ServiceHealth::kHealthy:
      return Status::OK();
    case ServiceHealth::kDegraded:
      // The rung propagates: reduced durability anywhere in the cluster
      // is reduced durability of the cluster.
      EnterDegraded(Status::FailedPrecondition(
          ShardName(shard.index, shard.address) + " is degraded"));
      return Status::OK();
    case ServiceHealth::kReadOnly:
    default:
      return Status::FailedPrecondition(
          ShardName(shard.index, shard.address) +
          " is read-only — its writer is dead, so the cluster cannot "
          "advance");
  }
}

Status ClusterCoordinator::RecoverShard(Shard* shard,
                                        std::uint64_t target_epoch,
                                        ApplyAckMsg* final_ack) {
  const std::string who = ShardName(shard->index, shard->address);
  if (shard->conn != nullptr) {
    shard->conn->Close();
    shard->conn.reset();
  }
  const double deadline =
      SteadyNowSeconds() + options_.shard_retry_seconds;
  Status last_error = Status::IOError(who + " is unreachable");
  while (SteadyNowSeconds() < deadline) {
    std::this_thread::sleep_for(std::chrono::duration<double>(
        options_.reconnect_backoff_seconds));
    auto conn = transport_->Connect(shard->address,
                                    options_.connect_timeout_seconds);
    if (!conn.ok()) {
      last_error = conn.status();
      continue;
    }
    auto hello = Handshake(conn->get(), graph_,
                           options_.shard_ack_timeout_seconds);
    if (!hello.ok()) {
      last_error = hello.status();
      continue;
    }
    if (hello->shard_index != shard->index ||
        hello->shard_count != shards_.size() ||
        !(hello->range == shard->range)) {
      return Status::FailedPrecondition(
          who + " came back with a different identity or partition; "
          "re-bootstrap it from this cluster's checkpoints");
    }
    if (static_cast<ServiceHealth>(hello->health) ==
        ServiceHealth::kReadOnly) {
      return Status::FailedPrecondition(
          who + " came back read-only; restart it from its checkpoint");
    }
    if (hello->epoch > target_epoch) {
      return Status::Internal(who + " is at epoch " +
                              std::to_string(hello->epoch) +
                              ", ahead of the coordinator's " +
                              std::to_string(target_epoch));
    }
    ApplyAckMsg ack;
    if (hello->epoch < target_epoch) {
      // Rejoin: resend every epoch it missed from the replay window.
      // Duplicates are safe (the shard dedupes by epoch) — only a gap
      // would be refused, and resending contiguously never leaves one.
      if (window_.empty() || window_.front().epoch > hello->epoch + 1) {
        return Status::FailedPrecondition(
            who + " recovered to epoch " + std::to_string(hello->epoch) +
            ", outside the coordinator's replay window (oldest " +
            std::to_string(window_.empty() ? target_epoch
                                           : window_.front().epoch) +
            "); re-bootstrap it from a fresher checkpoint copy");
      }
      bool connection_ok = true;
      for (std::uint64_t e = hello->epoch + 1; e <= target_epoch; ++e) {
        const WindowEntry& entry = window_[e - window_.front().epoch];
        ApplyMsg msg;
        msg.epoch = entry.epoch;
        msg.stream_position = entry.stream_position;
        msg.updates = entry.updates;
        if (!(*conn)->SendFrame(EncodeApply(msg)).ok()) {
          connection_ok = false;
          break;
        }
        std::string payload;
        const Status recv_status =
            RecvExpect(conn->get(), MsgType::kApplyAck,
                       options_.shard_ack_timeout_seconds, &payload);
        if (!recv_status.ok()) {
          last_error = recv_status;
          connection_ok = false;
          break;
        }
        auto decoded = DecodeApplyAck(payload);
        if (!decoded.ok()) {
          last_error = decoded.status();
          connection_ok = false;
          break;
        }
        ack = std::move(*decoded);
        if (!ack.ok) {
          return Status(static_cast<StatusCode>(ack.status_code),
                        who + " failed during resync: " + ack.message);
        }
        ++shard->resent_batches;
      }
      if (!connection_ok) continue;
      if (ack.epoch != target_epoch) {
        last_error = Status::Internal(
            who + " acked epoch " + std::to_string(ack.epoch) +
            " instead of " + std::to_string(target_epoch));
        continue;
      }
    } else {
      // The shard already holds the target epoch — the batch landed and
      // only its ack was lost. Fetch the partial that ack carried.
      if (!(*conn)->SendFrame(EncodeFetch()).ok()) continue;
      std::string payload;
      const Status recv_status =
          RecvExpect(conn->get(), MsgType::kPartial,
                     options_.shard_ack_timeout_seconds, &payload);
      if (!recv_status.ok()) {
        last_error = recv_status;
        continue;
      }
      auto partial = DecodePartial(payload);
      if (!partial.ok()) {
        last_error = partial.status();
        continue;
      }
      if (partial->epoch != target_epoch) {
        last_error = Status::Internal(who + " moved during recovery");
        continue;
      }
      ack.epoch = partial->epoch;
      ack.stream_position = partial->stream_position;
      ack.health = partial->health;
      ack.partial = std::move(partial->partial);
    }
    shard->conn = std::move(*conn);
    ++shard->reconnects;
    *final_ack = std::move(ack);
    return Status::OK();
  }
  return Status::IOError(
      "retry budget (" + std::to_string(options_.shard_retry_seconds) +
      "s) exhausted bringing back " + who + ": " + last_error.message());
}

Status ClusterCoordinator::ReplicateBatch(
    std::uint64_t epoch, std::uint64_t stream_position,
    const std::vector<EdgeUpdate>& updates, std::vector<BcScores>* partials,
    std::uint64_t* sources_total, std::uint64_t* sources_prefiltered) {
  ApplyMsg msg;
  msg.epoch = epoch;
  msg.stream_position = stream_position;
  msg.updates = updates;
  const std::string frame = EncodeApply(msg);

  // Pipeline: every shard gets the frame before any ack is awaited, so
  // one slow shard overlaps the others' apply work.
  std::vector<bool> sent(shards_.size(), false);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].conn != nullptr) {
      sent[i] = shards_[i].conn->SendFrame(frame).ok();
    }
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = shards_[i];
    ApplyAckMsg ack;
    bool have_ack = false;
    if (sent[i]) {
      std::string payload;
      if (RecvExpect(shard.conn.get(), MsgType::kApplyAck,
                     options_.shard_ack_timeout_seconds, &payload)
              .ok()) {
        auto decoded = DecodeApplyAck(payload);
        if (decoded.ok()) {
          ack = std::move(*decoded);
          have_ack = true;
        }
      }
    }
    if (have_ack && !ack.ok) {
      if (static_cast<StatusCode>(ack.status_code) ==
          StatusCode::kFailedPrecondition) {
        // The shard refused an epoch gap — it is behind (crashed and
        // recovered to an older checkpoint). Resync it like a
        // disconnect.
        have_ack = false;
      } else {
        return Status(static_cast<StatusCode>(ack.status_code),
                      ShardName(shard.index, shard.address) +
                          " failed applying epoch " +
                          std::to_string(epoch) + ": " + ack.message);
      }
    }
    if (have_ack && ack.epoch != epoch) have_ack = false;
    if (!have_ack) {
      // Send failed, ack timed out / connection died, or the shard needs
      // a resync: the per-shard watchdog path, bounded by the retry
      // budget.
      SOBC_RETURN_NOT_OK(RecoverShard(&shard, epoch, &ack));
    }
    SOBC_RETURN_NOT_OK(PropagateShardHealth(shard, ack.health));
    shard.epoch = ack.epoch;
    shard.health = ack.health;
    *sources_total += ack.sources_total;
    *sources_prefiltered += ack.sources_prefiltered;
    (*partials)[i] = std::move(ack.partial);
  }
  return Status::OK();
}

void ClusterCoordinator::WriterLoop() {
  std::uint64_t epoch = base_epoch_;
  std::uint64_t position = base_position_;
  const auto fail = [this](const Status& status) {
    queue_.Close();
    EnterReadOnly(status);
    {
      std::lock_guard<std::mutex> lock(mu_);
      writer_status_ = status;
      writer_done_ = true;
    }
    publish_cv_.notify_all();
  };
  DrainedBatch batch;
  while (queue_.PopBatch(&batch)) {
    const double batch_start = SteadyNowSeconds();
    ++epoch;
    position += batch.consumed;
    // Validate against + advance the replica first: a poison batch (one
    // the engine deterministically rejects) dies here, on the
    // coordinator, before any shard ever sees its epoch.
    Status replica_status;
    for (const EdgeUpdate& update : batch.updates) {
      replica_status = ApplyToGraph(&graph_, update);
      if (!replica_status.ok()) break;
    }
    if (!replica_status.ok()) {
      fail(replica_status);
      return;
    }
    // Even a fully coalesced-away batch replicates: shard epochs and
    // stream positions must advance in lockstep with the coordinator's,
    // or the shards' WALs would replay to different positions.
    window_.push_back(WindowEntry{epoch, position, batch.updates});
    while (window_.size() > options_.replay_window_batches) {
      window_.pop_front();
    }
    std::vector<BcScores> partials(shards_.size());
    std::uint64_t sources_total = 0;
    std::uint64_t sources_prefiltered = 0;
    const Status replicated =
        ReplicateBatch(epoch, position, batch.updates, &partials,
                       &sources_total, &sources_prefiltered);
    if (!replicated.ok()) {
      fail(replicated);
      return;
    }
    BcScores& merged = MergePartials(&partials);
    snapshots_.Publish(BuildSnapshot(graph_, merged, epoch, position,
                                     options_.top_k,
                                     options_.snapshot_edge_scores));
    const double now = SteadyNowSeconds();
    for (double& stamp : batch.enqueue_seconds) stamp = now - stamp;
    metrics_.RecordBatch(batch.updates.size(),
                         batch.consumed - batch.updates.size(),
                         now - batch_start, batch.enqueue_seconds, epoch,
                         position, sources_total, sources_prefiltered);
    {
      std::lock_guard<std::mutex> lock(mu_);
      final_epoch_ = epoch;
      final_position_ = position;
      published_position_.store(position, std::memory_order_release);
      RefreshShardStatusLocked();
    }
    publish_cv_.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    writer_done_ = true;
  }
  publish_cv_.notify_all();
}

Status ClusterCoordinator::Drain() {
  const std::uint64_t target = base_position_ + queue_.stats().received;
  std::unique_lock<std::mutex> lock(mu_);
  publish_cv_.wait(lock, [&] {
    return writer_done_ || !writer_status_.ok() ||
           published_position_.load(std::memory_order_acquire) >= target;
  });
  if (!writer_status_.ok()) return writer_status_;
  if (published_position_.load(std::memory_order_acquire) >= target) {
    return Status::OK();
  }
  return Status::FailedPrecondition(
      "coordinator writer exited before draining every accepted update");
}

Status ClusterCoordinator::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return writer_status_;
    stopped_ = true;
  }
  queue_.Close();
  if (writer_.joinable()) writer_.join();
  // Clean cluster shutdown: every reachable shard gets kShutdown (its
  // Wait() returns, its own Stop commits the final checkpoint). Best
  // effort — a dead connection means the shard is already gone or its
  // operator stops it directly.
  for (Shard& shard : shards_) {
    if (shard.conn == nullptr) continue;
    if (shard.conn->SendFrame(EncodeShutdown()).ok()) {
      std::string payload;
      (void)shard.conn->RecvFrame(&payload, 1.0);
    }
    shard.conn->Close();
  }
  std::lock_guard<std::mutex> lock(mu_);
  return writer_status_;
}

ServeMetricsSnapshot ClusterCoordinator::metrics() const {
  ServeMetricsSnapshot snap = metrics_.Read();
  const UpdateQueueStats queue_stats = queue_.stats();
  snap.received = queue_stats.received;
  snap.dropped = queue_stats.dropped;
  const std::uint64_t received_absolute =
      base_position_ + queue_stats.received;
  snap.epoch_lag = received_absolute > snap.published_stream_position
                       ? received_absolute - snap.published_stream_position
                       : 0;
  const ServiceHealth current_health = health();
  snap.health_state = static_cast<std::uint64_t>(current_health);
  snap.health = ServiceHealthName(current_health);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!health_error_.ok()) snap.last_error = health_error_.ToString();
  }
  const IoCounters io = ReadIoCounters();
  snap.io_retries = io.retries;
  snap.io_retries_exhausted = io.retries_exhausted;
  snap.io_faults_injected = io.faults_injected;
  return snap;
}

void ClusterCoordinator::EnterDegraded(const Status& why) {
  int expected = static_cast<int>(ServiceHealth::kHealthy);
  if (!health_.compare_exchange_strong(
          expected, static_cast<int>(ServiceHealth::kDegraded),
          std::memory_order_acq_rel)) {
    return;  // already degraded or read-only; first cause wins
  }
  // Same backpressure response as a degraded single-process service: the
  // cluster's durability is reduced somewhere, so accept less in flight.
  queue_.SetCapacity(std::max<std::size_t>(1, queue_.capacity() / 2));
  std::lock_guard<std::mutex> lock(mu_);
  health_error_ = why;
}

void ClusterCoordinator::EnterReadOnly(const Status& why) {
  health_.store(static_cast<int>(ServiceHealth::kReadOnly),
                std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  health_error_ = why;
}

}  // namespace sobc
