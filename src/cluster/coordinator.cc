#include "cluster/coordinator.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "cluster/lease.h"
#include "common/io.h"
#include "parallel/score_reduce.h"

namespace sobc {

namespace {

ClusterCoordinatorOptions ResolveOptions(
    const ClusterCoordinatorOptions& options, const Graph& graph) {
  ClusterCoordinatorOptions resolved = options;
  resolved.queue.directed = graph.directed();
  resolved.replay_window_batches =
      std::max<std::size_t>(1, resolved.replay_window_batches);
  return resolved;
}

std::string ShardName(std::uint32_t index, const std::string& address) {
  return "shard " + std::to_string(index) + " (" + address + ")";
}

/// Receives one frame and requires it to be `want`; any transport error,
/// decode error, or other message type comes back as a status.
Status RecvExpect(Connection* conn, MsgType want, double timeout_seconds,
                  std::string* payload) {
  SOBC_RETURN_NOT_OK(conn->RecvFrame(payload, timeout_seconds));
  auto type = PeekType(*payload);
  SOBC_RETURN_NOT_OK(type.status());
  if (*type != want) {
    return Status::Internal(
        "protocol desync: expected message type " +
        std::to_string(static_cast<int>(want)) + ", got " +
        std::to_string(static_cast<int>(*type)));
  }
  return Status::OK();
}

void SleepSeconds(double seconds) {
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace

ClusterCoordinator::ClusterCoordinator(
    Graph graph, const ClusterCoordinatorOptions& options)
    : options_(ResolveOptions(options, graph)),
      graph_(std::move(graph)),
      queue_(options_.queue) {
  boot_vertices_ = graph_.NumVertices();
  boot_edges_ = graph_.NumEdges();
  boot_directed_ = graph_.directed();
}

ClusterCoordinator::~ClusterCoordinator() { (void)Stop(); }

Result<HelloAckMsg> ClusterCoordinator::Handshake(Connection* conn,
                                                  const Graph& graph,
                                                  double timeout_seconds) {
  HelloMsg hello;
  hello.num_vertices = graph.NumVertices();
  hello.num_edges = graph.NumEdges();
  hello.directed = graph.directed();
  SOBC_RETURN_NOT_OK(conn->SendFrame(EncodeHello(hello)));
  std::string payload;
  SOBC_RETURN_NOT_OK(
      RecvExpect(conn, MsgType::kHelloAck, timeout_seconds, &payload));
  auto ack = DecodeHelloAck(payload);
  SOBC_RETURN_NOT_OK(ack.status());
  if (ack->protocol_version != kClusterProtocolVersion) {
    return Status::FailedPrecondition(
        "shard speaks cluster protocol v" +
        std::to_string(ack->protocol_version) + ", coordinator speaks v" +
        std::to_string(kClusterProtocolVersion));
  }
  return ack;
}

Result<std::unique_ptr<ClusterCoordinator>> ClusterCoordinator::Connect(
    Graph graph, const std::vector<std::string>& shard_addresses,
    Transport* transport, const ClusterCoordinatorOptions& options) {
  if (transport == nullptr) {
    return Status::InvalidArgument("cluster coordinator needs a transport");
  }
  const std::size_t num_shards = shard_addresses.size();
  if (num_shards == 0) {
    return Status::InvalidArgument("a cluster needs at least one shard");
  }
  auto coordinator = std::unique_ptr<ClusterCoordinator>(
      new ClusterCoordinator(std::move(graph), options));
  coordinator->transport_ = transport;
  const ClusterCoordinatorOptions& resolved = coordinator->options_;

  // Handshake every shard; order the roster by the index each one
  // reports, not by the address list (an operator may list them in any
  // order — the shard map is what must tile).
  std::vector<Shard> roster(num_shards);
  std::vector<bool> seen(num_shards, false);
  std::uint64_t newest_map_version = 1;
  for (const std::string& address : shard_addresses) {
    auto conn =
        transport->Connect(address, resolved.connect_timeout_seconds);
    if (!conn.ok()) {
      return Status(conn.status().code(),
                    "connecting to shard " + address + ": " +
                        conn.status().message());
    }
    auto ack = Handshake(conn->get(), coordinator->graph_,
                         resolved.shard_ack_timeout_seconds);
    if (!ack.ok()) {
      return Status(ack.status().code(),
                    "handshake with shard " + address + ": " +
                        ack.status().message());
    }
    if (ack->shard_count != num_shards) {
      return Status::FailedPrecondition(
          "shard " + address + " was started for a " +
          std::to_string(ack->shard_count) + "-shard cluster, coordinator has " +
          std::to_string(num_shards) + " addresses");
    }
    if (ack->shard_index >= num_shards || seen[ack->shard_index]) {
      return Status::FailedPrecondition(
          "shard " + address + " reports index " +
          std::to_string(ack->shard_index) +
          ", which is out of range or already taken");
    }
    if (ack->num_vertices != coordinator->graph_.NumVertices() ||
        ack->num_edges != coordinator->graph_.NumEdges() ||
        ack->directed != coordinator->graph_.directed()) {
      return Status::FailedPrecondition(
          "graph signature mismatch with shard " + address +
          ": it serves a different graph than the coordinator's replica");
    }
    if (static_cast<ServiceHealth>(ack->health) ==
        ServiceHealth::kReadOnly) {
      return Status::FailedPrecondition(
          "shard " + address + " is read-only; restart it before bring-up");
    }
    newest_map_version = std::max(newest_map_version, ack->map_version);
    Shard shard;
    shard.address = address;
    shard.index = ack->shard_index;
    shard.reported_count = ack->shard_count;
    shard.range = ack->range;
    shard.conn = std::move(*conn);
    shard.epoch = ack->epoch;
    shard.health = ack->health;
    roster[ack->shard_index] = std::move(shard);
    seen[ack->shard_index] = true;
  }

  std::vector<ShardRange> ranges;
  ranges.reserve(num_shards);
  for (const Shard& shard : roster) ranges.push_back(shard.range);
  SOBC_RETURN_NOT_OK(
      ValidateShardMap(ranges, coordinator->graph_.NumVertices()));
  for (const Shard& shard : roster) {
    if (shard.epoch != roster[0].epoch) {
      return Status::FailedPrecondition(
          "shards disagree on the replicated epoch at bring-up (" +
          ShardName(shard.index, shard.address) + " is at epoch " +
          std::to_string(shard.epoch) + ", shard 0 at " +
          std::to_string(roster[0].epoch) +
          "); re-bootstrap them from one checkpoint set");
    }
  }
  coordinator->shards_ = std::move(roster);
  coordinator->map_version_plain_ = newest_map_version;
  coordinator->map_version_.store(newest_map_version,
                                  std::memory_order_release);

  // The bring-up merge: fetch every shard's current partial and publish
  // the epoch the cluster stands at before accepting any update.
  std::vector<BcScores> partials(num_shards);
  std::uint64_t base_epoch = coordinator->shards_[0].epoch;
  std::uint64_t base_position = 0;
  for (std::size_t i = 0; i < num_shards; ++i) {
    Shard& shard = coordinator->shards_[i];
    SOBC_RETURN_NOT_OK(shard.conn->SendFrame(EncodeFetch()));
    std::string payload;
    SOBC_RETURN_NOT_OK(RecvExpect(shard.conn.get(), MsgType::kPartial,
                                  resolved.shard_ack_timeout_seconds,
                                  &payload));
    auto partial = DecodePartial(payload);
    SOBC_RETURN_NOT_OK(partial.status());
    if (partial->epoch != base_epoch) {
      return Status::FailedPrecondition(
          ShardName(shard.index, shard.address) +
          " moved between handshake and the bring-up fetch");
    }
    base_position = partial->stream_position;
    partials[i] = std::move(partial->partial);
    if (static_cast<ServiceHealth>(partial->health) ==
        ServiceHealth::kDegraded) {
      coordinator->EnterDegraded(Status::FailedPrecondition(
          ShardName(shard.index, shard.address) +
          " is degraded (checkpointing suspended shard-side)"));
    }
  }

  // Merge pool: the reduce tree over p partials has floor(p/2)-way
  // parallelism in its first round; tiny clusters merge serially.
  if (resolved.merge_threads > 0) {
    coordinator->merge_pool_ =
        std::make_unique<ThreadPool>(resolved.merge_threads);
  } else if (num_shards >= 4) {
    coordinator->merge_pool_ = std::make_unique<ThreadPool>(num_shards / 2);
  }

  BcScores& merged = coordinator->MergePartials(&partials);
  coordinator->snapshots_.Publish(BuildSnapshot(
      coordinator->graph_, merged, base_epoch, base_position,
      resolved.top_k, resolved.snapshot_edge_scores));
  coordinator->metrics_.SeedPublication(base_epoch, base_position);
  coordinator->base_epoch_ = base_epoch;
  coordinator->base_position_ = base_position;
  coordinator->final_epoch_ = base_epoch;
  coordinator->final_position_ = base_position;
  coordinator->published_position_.store(base_position,
                                         std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(coordinator->mu_);
    coordinator->RefreshShardStatusLocked();
  }
  if (!resolved.standby_listen.empty()) {
    auto listener = transport->Listen(resolved.standby_listen);
    if (!listener.ok()) {
      return Status(listener.status().code(),
                    "listening for a standby on " + resolved.standby_listen +
                        ": " + listener.status().message());
    }
    coordinator->standby_address_ = (*listener)->address();
    coordinator->standby_listener_ = std::move(*listener);
    coordinator->standby_acceptor_ = std::thread(
        [raw = coordinator.get()] { raw->StandbyAcceptorLoop(); });
  }
  coordinator->writer_ =
      std::thread([raw = coordinator.get()] { raw->WriterLoop(); });
  return coordinator;
}

Result<std::unique_ptr<ClusterCoordinator>> ClusterCoordinator::Standby(
    Graph graph, const std::vector<std::string>& shard_addresses,
    Transport* transport, const std::string& primary_address,
    const ClusterCoordinatorOptions& options) {
  if (transport == nullptr) {
    return Status::InvalidArgument("cluster standby needs a transport");
  }
  if (shard_addresses.empty()) {
    return Status::InvalidArgument("a cluster needs at least one shard");
  }
  auto coordinator = std::unique_ptr<ClusterCoordinator>(
      new ClusterCoordinator(std::move(graph), options));
  coordinator->transport_ = transport;
  coordinator->shard_addresses_ = shard_addresses;
  coordinator->role_.store(Role::kStandbyTailing, std::memory_order_release);

  auto conn = transport->Connect(primary_address,
                                 coordinator->options_.connect_timeout_seconds);
  if (!conn.ok()) {
    return Status(conn.status().code(),
                  "connecting to the primary's standby feed at " +
                      primary_address + ": " + conn.status().message());
  }
  std::string payload;
  const Status received =
      RecvExpect(conn->get(), MsgType::kReplicate,
                 coordinator->options_.shard_ack_timeout_seconds, &payload);
  if (!received.ok()) {
    return Status(received.code(), "waiting for the primary's bootstrap: " +
                                       received.message());
  }
  auto boot = DecodeReplicate(payload);
  SOBC_RETURN_NOT_OK(boot.status());
  if (boot->kind != ReplicateMsg::kBootstrap) {
    return Status::Internal(
        "primary sent a non-bootstrap frame to a fresh standby");
  }
  ReplicateAckMsg ack;
  ack.epoch = boot->epoch;
  if (boot->num_vertices != coordinator->graph_.NumVertices() ||
      boot->num_edges != coordinator->graph_.NumEdges() ||
      boot->directed != coordinator->graph_.directed()) {
    ack.ok = false;
    ack.message = "graph signature mismatch";
    (void)(*conn)->SendFrame(EncodeReplicateAck(ack));
    return Status::FailedPrecondition(
        "graph signature mismatch with the primary: the standby must be "
        "started with the primary's bring-up graph");
  }
  SOBC_RETURN_NOT_OK((*conn)->SendFrame(EncodeReplicateAck(ack)));

  coordinator->base_epoch_ = boot->epoch;
  coordinator->base_position_ = boot->stream_position;
  coordinator->final_epoch_ = boot->epoch;
  coordinator->final_position_ = boot->stream_position;
  coordinator->published_position_.store(boot->stream_position,
                                         std::memory_order_release);
  coordinator->metrics_.SeedPublication(boot->epoch, boot->stream_position);
  coordinator->primary_conn_ = std::move(*conn);
  coordinator->tail_thread_ =
      std::thread([raw = coordinator.get()] { raw->TailLoop(); });
  return coordinator;
}

void ClusterCoordinator::RefreshShardStatusLocked() {
  shard_status_.clear();
  shard_status_.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    ShardStatus status;
    status.address = shard.address;
    status.range = shard.range;
    status.epoch = shard.epoch;
    status.health = static_cast<ServiceHealth>(shard.health);
    status.reconnects = shard.reconnects;
    status.resent_batches = shard.resent_batches;
    status.joining = shard.joining;
    shard_status_.push_back(std::move(status));
  }
}

std::vector<ShardStatus> ClusterCoordinator::shard_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shard_status_;
}

bool ClusterCoordinator::Submit(const EdgeUpdate& update) {
  const Role current = role();
  if (current != Role::kPrimary && current != Role::kStandbyActive) {
    return false;
  }
  if (health() == ServiceHealth::kReadOnly) return false;
  return queue_.Push(update);
}

std::size_t ClusterCoordinator::SubmitAll(const EdgeStream& stream) {
  std::size_t accepted = 0;
  for (const EdgeUpdate& update : stream) {
    if (Submit(update)) ++accepted;
  }
  return accepted;
}

BcScores& ClusterCoordinator::MergePartials(
    std::vector<BcScores>* partials) {
  std::vector<BcScores*> pointers;
  pointers.reserve(partials->size());
  for (BcScores& partial : *partials) pointers.push_back(&partial);
  TreeReduceScores(merge_pool_.get(), pointers);
  return (*partials)[0];
}

Status ClusterCoordinator::PropagateShardHealth(const Shard& shard,
                                                std::uint8_t health) {
  switch (static_cast<ServiceHealth>(health)) {
    case ServiceHealth::kHealthy:
      return Status::OK();
    case ServiceHealth::kDegraded:
      // The rung propagates: reduced durability anywhere in the cluster
      // is reduced durability of the cluster.
      EnterDegraded(Status::FailedPrecondition(
          ShardName(shard.index, shard.address) + " is degraded"));
      return Status::OK();
    case ServiceHealth::kReadOnly:
    default:
      return Status::FailedPrecondition(
          ShardName(shard.index, shard.address) +
          " is read-only — its writer is dead, so the cluster cannot "
          "advance");
  }
}

Status ClusterCoordinator::RecoverShard(Shard* shard,
                                        std::uint64_t target_epoch,
                                        ApplyAckMsg* final_ack) {
  const std::string who = ShardName(shard->index, shard->address);
  if (shard->conn != nullptr) {
    shard->conn->Close();
    shard->conn.reset();
  }
  const double deadline =
      SteadyNowSeconds() + options_.shard_retry_seconds;
  Status last_error = Status::IOError(who + " is unreachable");
  while (SteadyNowSeconds() < deadline) {
    SleepSeconds(options_.reconnect_backoff_seconds);
    auto conn = transport_->Connect(shard->address,
                                    options_.connect_timeout_seconds);
    if (!conn.ok()) {
      last_error = conn.status();
      continue;
    }
    auto hello = Handshake(conn->get(), graph_,
                           options_.shard_ack_timeout_seconds);
    if (!hello.ok()) {
      last_error = hello.status();
      continue;
    }
    if (hello->shard_index != shard->index ||
        hello->shard_count != shard->reported_count ||
        !(hello->range == shard->range)) {
      return Status::FailedPrecondition(
          who + " came back with a different identity or partition; "
          "re-bootstrap it from this cluster's checkpoints");
    }
    if (hello->map_version > map_version_plain_) {
      return Status::FailedPrecondition(
          who + " came back from shard-map version " +
          std::to_string(hello->map_version) +
          ", newer than the coordinator's " +
          std::to_string(map_version_plain_) +
          "; re-bootstrap the cluster from one checkpoint set");
    }
    if (static_cast<ServiceHealth>(hello->health) ==
        ServiceHealth::kReadOnly) {
      return Status::FailedPrecondition(
          who + " came back read-only; restart it from its checkpoint");
    }
    if (hello->epoch > target_epoch) {
      return Status::Internal(who + " is at epoch " +
                              std::to_string(hello->epoch) +
                              ", ahead of the coordinator's " +
                              std::to_string(target_epoch));
    }
    ApplyAckMsg ack;
    if (hello->epoch < target_epoch) {
      // Rejoin: resend every epoch it missed from the replay window.
      // Duplicates are safe (the shard dedupes by epoch) — only a gap
      // would be refused, and resending contiguously never leaves one.
      if (window_.empty() || window_.front().epoch > hello->epoch + 1) {
        return Status::FailedPrecondition(
            who + " recovered to epoch " + std::to_string(hello->epoch) +
            ", outside the coordinator's replay window (oldest " +
            std::to_string(window_.empty() ? target_epoch
                                           : window_.front().epoch) +
            "); re-bootstrap it from a fresher checkpoint copy");
      }
      bool connection_ok = true;
      for (std::uint64_t e = hello->epoch + 1; e <= target_epoch; ++e) {
        const WindowEntry& entry = window_[e - window_.front().epoch];
        ApplyMsg msg;
        msg.epoch = entry.epoch;
        msg.stream_position = entry.stream_position;
        msg.updates = entry.updates;
        if (!(*conn)->SendFrame(EncodeApply(msg)).ok()) {
          connection_ok = false;
          break;
        }
        std::string payload;
        const Status recv_status =
            RecvExpect(conn->get(), MsgType::kApplyAck,
                       options_.shard_ack_timeout_seconds, &payload);
        if (!recv_status.ok()) {
          last_error = recv_status;
          connection_ok = false;
          break;
        }
        auto decoded = DecodeApplyAck(payload);
        if (!decoded.ok()) {
          last_error = decoded.status();
          connection_ok = false;
          break;
        }
        ack = std::move(*decoded);
        if (!ack.ok) {
          return Status(static_cast<StatusCode>(ack.status_code),
                        who + " failed during resync: " + ack.message);
        }
        ++shard->resent_batches;
      }
      if (!connection_ok) continue;
      if (ack.epoch != target_epoch) {
        last_error = Status::Internal(
            who + " acked epoch " + std::to_string(ack.epoch) +
            " instead of " + std::to_string(target_epoch));
        continue;
      }
    } else {
      // The shard already holds the target epoch — the batch landed and
      // only its ack was lost. Fetch the partial that ack carried.
      if (!(*conn)->SendFrame(EncodeFetch()).ok()) continue;
      std::string payload;
      const Status recv_status =
          RecvExpect(conn->get(), MsgType::kPartial,
                     options_.shard_ack_timeout_seconds, &payload);
      if (!recv_status.ok()) {
        last_error = recv_status;
        continue;
      }
      auto partial = DecodePartial(payload);
      if (!partial.ok()) {
        last_error = partial.status();
        continue;
      }
      if (partial->epoch != target_epoch) {
        last_error = Status::Internal(who + " moved during recovery");
        continue;
      }
      ack.epoch = partial->epoch;
      ack.stream_position = partial->stream_position;
      ack.health = partial->health;
      ack.partial = std::move(partial->partial);
    }
    shard->conn = std::move(*conn);
    ++shard->reconnects;
    *final_ack = std::move(ack);
    return Status::OK();
  }
  return Status::IOError(
      "retry budget (" + std::to_string(options_.shard_retry_seconds) +
      "s) exhausted bringing back " + who + ": " + last_error.message());
}

Status ClusterCoordinator::ReplicateBatch(
    std::uint64_t epoch, std::uint64_t stream_position,
    const std::vector<EdgeUpdate>& updates, std::vector<BcScores>* partials,
    std::uint64_t* sources_total, std::uint64_t* sources_prefiltered) {
  ApplyMsg msg;
  msg.epoch = epoch;
  msg.stream_position = stream_position;
  msg.updates = updates;
  const std::string frame = EncodeApply(msg);

  // Pipeline: every shard gets the frame before any ack is awaited, so
  // one slow shard overlaps the others' apply work. A joining migration
  // recipient is in the fan-out too — the double-apply window — but its
  // failures abort the migration instead of the batch, and its partial
  // is dropped before the merge (it owns nothing until the commit).
  std::vector<bool> sent(shards_.size(), false);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].conn != nullptr) {
      sent[i] = shards_[i].conn->SendFrame(frame).ok();
    }
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = shards_[i];
    ApplyAckMsg ack;
    bool have_ack = false;
    if (sent[i]) {
      std::string payload;
      if (RecvExpect(shard.conn.get(), MsgType::kApplyAck,
                     options_.shard_ack_timeout_seconds, &payload)
              .ok()) {
        auto decoded = DecodeApplyAck(payload);
        if (decoded.ok()) {
          ack = std::move(*decoded);
          have_ack = true;
        }
      }
    }
    if (shard.joining) {
      Status joining_status;
      if (!have_ack) {
        joining_status = Status::IOError(
            "migration recipient " + shard.address +
            " stopped answering during the double-apply window");
      } else if (!ack.ok) {
        joining_status =
            Status(static_cast<StatusCode>(ack.status_code),
                   "migration recipient " + shard.address +
                       " failed applying epoch " + std::to_string(epoch) +
                       ": " + ack.message);
      } else if (ack.epoch != epoch) {
        joining_status = Status::Internal(
            "migration recipient " + shard.address + " acked epoch " +
            std::to_string(ack.epoch) + " instead of " +
            std::to_string(epoch));
      } else if (static_cast<ServiceHealth>(ack.health) ==
                 ServiceHealth::kReadOnly) {
        joining_status = Status::FailedPrecondition(
            "migration recipient " + shard.address + " went read-only");
      }
      if (!joining_status.ok()) {
        migration_.joining_status = joining_status;
        continue;
      }
      shard.epoch = ack.epoch;
      shard.health = ack.health;
      ++migration_.double_applied;
      migration_lag_batches_.store(migration_.double_applied,
                                   std::memory_order_relaxed);
      (*partials)[i] = std::move(ack.partial);
      continue;
    }
    if (have_ack && !ack.ok) {
      if (static_cast<StatusCode>(ack.status_code) ==
          StatusCode::kFailedPrecondition) {
        // The shard refused an epoch gap — it is behind (crashed and
        // recovered to an older checkpoint). Resync it like a
        // disconnect.
        have_ack = false;
      } else {
        return Status(static_cast<StatusCode>(ack.status_code),
                      ShardName(shard.index, shard.address) +
                          " failed applying epoch " +
                          std::to_string(epoch) + ": " + ack.message);
      }
    }
    if (have_ack && ack.epoch != epoch) have_ack = false;
    if (!have_ack) {
      // Send failed, ack timed out / connection died, or the shard needs
      // a resync: the per-shard watchdog path, bounded by the retry
      // budget.
      SOBC_RETURN_NOT_OK(RecoverShard(&shard, epoch, &ack));
    }
    SOBC_RETURN_NOT_OK(PropagateShardHealth(shard, ack.health));
    shard.epoch = ack.epoch;
    shard.health = ack.health;
    *sources_total += ack.sources_total;
    *sources_prefiltered += ack.sources_prefiltered;
    (*partials)[i] = std::move(ack.partial);
  }
  return Status::OK();
}

Status ClusterCoordinator::ReplicateEntryTo(Connection* conn,
                                            const WindowEntry& entry) {
  ReplicateMsg msg;
  msg.kind = ReplicateMsg::kBatch;
  msg.epoch = entry.epoch;
  msg.stream_position = entry.stream_position;
  msg.updates = entry.updates;
  SOBC_RETURN_NOT_OK(conn->SendFrame(EncodeReplicate(msg)));
  std::string payload;
  SOBC_RETURN_NOT_OK(RecvExpect(conn, MsgType::kReplicateAck,
                                options_.shard_ack_timeout_seconds,
                                &payload));
  auto ack = DecodeReplicateAck(payload);
  SOBC_RETURN_NOT_OK(ack.status());
  if (!ack->ok) {
    return Status::FailedPrecondition(
        "standby refused epoch " + std::to_string(entry.epoch) + ": " +
        ack->message);
  }
  if (ack->epoch != entry.epoch) {
    return Status::Internal("standby acked epoch " +
                            std::to_string(ack->epoch) + " instead of " +
                            std::to_string(entry.epoch));
  }
  return Status::OK();
}

void ClusterCoordinator::PushWindowAndReplicate(WindowEntry entry) {
  std::lock_guard<std::mutex> lock(standby_mu_);
  window_.push_back(std::move(entry));
  while (window_.size() > options_.replay_window_batches) {
    window_.pop_front();
  }
  if (standby_conn_ == nullptr) return;
  // Replicate-before-fanout: the standby holds this epoch before any
  // shard sees it, so at takeover the standby's window is always long
  // enough to resync every shard (DESIGN.md §13). A standby failure
  // detaches it — the cluster keeps serving without its safety net.
  const Status sent = ReplicateEntryTo(standby_conn_.get(), window_.back());
  if (!sent.ok()) {
    standby_conn_->Close();
    standby_conn_.reset();
    standby_attached_.store(0, std::memory_order_release);
    return;
  }
  replicated_batches_.fetch_add(1, std::memory_order_relaxed);
}

void ClusterCoordinator::StandbyAcceptorLoop() {
  while (!acceptor_stop_.load(std::memory_order_acquire)) {
    auto conn = standby_listener_->Accept(0.1);
    if (!conn.ok()) continue;
    if (migration_active_.load(std::memory_order_acquire)) {
      // A catch-up would hand the standby a pre-split shard map; let it
      // retry once the rebalance committed.
      (*conn)->Close();
      continue;
    }
    ServeStandby(std::move(*conn));
  }
}

void ClusterCoordinator::ServeStandby(std::unique_ptr<Connection> conn) {
  {
    std::lock_guard<std::mutex> lock(standby_mu_);
    if (!window_.empty() && window_.front().epoch > base_epoch_ + 1) {
      // The window no longer reaches back to the bring-up point, so a
      // late standby cannot be caught up from here; it must be restarted
      // against a fresher primary.
      conn->Close();
      return;
    }
  }
  ReplicateMsg boot;
  boot.kind = ReplicateMsg::kBootstrap;
  boot.epoch = base_epoch_;
  boot.stream_position = base_position_;
  boot.num_vertices = boot_vertices_;
  boot.num_edges = boot_edges_;
  boot.directed = boot_directed_;
  if (!conn->SendFrame(EncodeReplicate(boot)).ok()) {
    conn->Close();
    return;
  }
  std::string payload;
  if (!RecvExpect(conn.get(), MsgType::kReplicateAck,
                  options_.shard_ack_timeout_seconds, &payload)
           .ok()) {
    conn->Close();
    return;
  }
  auto boot_ack = DecodeReplicateAck(payload);
  if (!boot_ack.ok() || !boot_ack->ok) {
    conn->Close();
    return;
  }

  // Catch-up: drain the window to the standby, re-scanning under the
  // lock until no entry is newer than what it holds, then attach while
  // still holding the lock — from that point the writer replicates each
  // batch itself, so there is no epoch the standby misses or sees twice.
  std::uint64_t sent_through = base_epoch_;
  for (;;) {
    std::vector<WindowEntry> pending;
    {
      std::lock_guard<std::mutex> lock(standby_mu_);
      if (!window_.empty() && window_.front().epoch > sent_through + 1) {
        // The writer outran the catch-up by a full window; give up.
        conn->Close();
        return;
      }
      for (const WindowEntry& entry : window_) {
        if (entry.epoch > sent_through) pending.push_back(entry);
      }
      if (pending.empty()) {
        standby_conn_ = std::move(conn);
        standby_attached_.store(1, std::memory_order_release);
        break;
      }
    }
    for (const WindowEntry& entry : pending) {
      if (!ReplicateEntryTo(conn.get(), entry).ok()) {
        conn->Close();
        return;
      }
      sent_through = entry.epoch;
      replicated_batches_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Heartbeats keep the standby's lease renewed through idle stretches;
  // batches (sent by the writer) renew it too. Heartbeats are never
  // acked — the writer is the connection's only reader after attach.
  while (!acceptor_stop_.load(std::memory_order_acquire)) {
    SleepSeconds(options_.heartbeat_interval_seconds);
    ReplicateMsg heartbeat;
    heartbeat.kind = ReplicateMsg::kHeartbeat;
    std::lock_guard<std::mutex> lock(standby_mu_);
    if (standby_conn_ == nullptr) return;  // writer detached it
    if (!standby_conn_->SendFrame(EncodeReplicate(heartbeat)).ok()) {
      standby_conn_->Close();
      standby_conn_.reset();
      standby_attached_.store(0, std::memory_order_release);
      return;
    }
  }
}

void ClusterCoordinator::TailLoop() {
  std::uint64_t epoch = base_epoch_;
  std::uint64_t position = base_position_;
  Lease lease(options_.lease_timeout_seconds);
  while (!tail_stop_.load(std::memory_order_acquire)) {
    std::string payload;
    const Status received = primary_conn_->RecvFrame(&payload, 0.1);
    if (!received.ok()) {
      if (IsTransportTimeout(received)) {
        if (lease.Expired()) {
          Takeover(epoch, position,
                   "primary lease expired after " +
                       std::to_string(lease.SilenceSeconds()) +
                       "s of silence");
          return;
        }
        continue;
      }
      Takeover(epoch, position,
               "primary feed died: " + received.message());
      return;
    }
    lease.Renew();
    auto type = PeekType(payload);
    if (!type.ok()) {
      Takeover(epoch, position,
               "garbled frame on the primary feed: " +
                   type.status().message());
      return;
    }
    if (*type == MsgType::kShutdown) {
      // Clean primary stop: nothing to take over.
      (void)primary_conn_->SendFrame(EncodeShutdownAck());
      primary_conn_->Close();
      {
        std::lock_guard<std::mutex> lock(mu_);
        role_.store(Role::kStandbyFinished, std::memory_order_release);
      }
      publish_cv_.notify_all();
      return;
    }
    if (*type != MsgType::kReplicate) continue;
    auto msg = DecodeReplicate(payload);
    if (!msg.ok()) {
      FailStandby(msg.status());
      return;
    }
    if (msg->kind == ReplicateMsg::kHeartbeat) {
      standby_attached_.store(1, std::memory_order_release);
      continue;
    }
    if (msg->kind != ReplicateMsg::kBatch) continue;
    standby_attached_.store(1, std::memory_order_release);
    ReplicateAckMsg ack;
    ack.epoch = msg->epoch;
    if (msg->epoch <= epoch) {
      // Duplicate (the primary resent after losing our ack): already
      // applied — ack it again, apply nothing.
      (void)primary_conn_->SendFrame(EncodeReplicateAck(ack));
      continue;
    }
    if (msg->epoch != epoch + 1) {
      FailStandby(Status::FailedPrecondition(
          "gap in the standby feed: expected epoch " +
          std::to_string(epoch + 1) + ", got " +
          std::to_string(msg->epoch)));
      return;
    }
    Status applied;
    for (const EdgeUpdate& update : msg->updates) {
      applied = ApplyToGraph(&graph_, update);
      if (!applied.ok()) break;
    }
    if (!applied.ok()) {
      FailStandby(applied);
      return;
    }
    epoch = msg->epoch;
    position = msg->stream_position;
    window_.push_back(WindowEntry{epoch, position, std::move(msg->updates)});
    while (window_.size() > options_.replay_window_batches) {
      window_.pop_front();
    }
    replicated_batches_.fetch_add(1, std::memory_order_relaxed);
    (void)primary_conn_->SendFrame(EncodeReplicateAck(ack));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    role_.store(Role::kStandbyFinished, std::memory_order_release);
  }
  publish_cv_.notify_all();
}

Status ClusterCoordinator::ReconcileShards(std::uint64_t epoch,
                                           std::uint64_t position,
                                           std::vector<Shard>* roster,
                                           std::vector<BcScores>* partials) {
  const std::size_t num_shards = shard_addresses_.size();
  roster->clear();
  roster->resize(num_shards);
  partials->assign(num_shards, BcScores{});
  std::vector<bool> seen(num_shards, false);
  std::uint64_t newest_map_version = 1;
  for (const std::string& address : shard_addresses_) {
    // The shard only notices the dead primary when its old connection
    // EOFs, so the first connect attempts may find it still serving the
    // corpse; retry within the per-shard budget.
    const double deadline = SteadyNowSeconds() + options_.shard_retry_seconds;
    Status last_error = Status::IOError("shard " + address +
                                        " is unreachable");
    bool done = false;
    while (!done && SteadyNowSeconds() < deadline) {
      SleepSeconds(options_.reconnect_backoff_seconds);
      auto conn =
          transport_->Connect(address, options_.connect_timeout_seconds);
      if (!conn.ok()) {
        last_error = conn.status();
        continue;
      }
      auto hello = Handshake(conn->get(), graph_,
                             options_.shard_ack_timeout_seconds);
      if (!hello.ok()) {
        last_error = hello.status();
        continue;
      }
      const std::string who = ShardName(hello->shard_index, address);
      if (hello->shard_index >= num_shards || seen[hello->shard_index]) {
        return Status::FailedPrecondition(
            who + " reports an index that is out of range or already "
                  "taken; the standby's shard list does not match the "
                  "roster");
      }
      if (static_cast<ServiceHealth>(hello->health) ==
          ServiceHealth::kReadOnly) {
        return Status::FailedPrecondition(
            who + " is read-only; restart it before failing over");
      }
      if (hello->epoch > epoch) {
        return Status::FailedPrecondition(
            "standby is behind the shard roster (" + who + " is at epoch " +
            std::to_string(hello->epoch) + ", standby at " +
            std::to_string(epoch) +
            "); it never finished catching up, so it cannot take over");
      }
      newest_map_version = std::max(newest_map_version, hello->map_version);
      Shard shard;
      shard.address = address;
      shard.index = hello->shard_index;
      shard.reported_count = hello->shard_count;
      shard.range = hello->range;
      shard.epoch = hello->epoch;
      shard.health = hello->health;
      if (hello->epoch < epoch) {
        // The shard missed the primary's final batches; the standby holds
        // them all (replicate-before-fanout), so resend from its window.
        // The shard's epoch dedupe + gap refusal make this exactly-once.
        if (window_.empty() || window_.front().epoch > hello->epoch + 1) {
          return Status::FailedPrecondition(
              who + " is at epoch " + std::to_string(hello->epoch) +
              ", outside the standby's replay window; re-bootstrap it "
              "from a fresher checkpoint copy");
        }
        ApplyAckMsg ack;
        for (std::uint64_t e = hello->epoch + 1; e <= epoch; ++e) {
          const WindowEntry& entry = window_[e - window_.front().epoch];
          ApplyMsg msg;
          msg.epoch = entry.epoch;
          msg.stream_position = entry.stream_position;
          msg.updates = entry.updates;
          SOBC_RETURN_NOT_OK((*conn)->SendFrame(EncodeApply(msg)));
          std::string payload;
          SOBC_RETURN_NOT_OK(
              RecvExpect(conn->get(), MsgType::kApplyAck,
                         options_.shard_ack_timeout_seconds, &payload));
          auto decoded = DecodeApplyAck(payload);
          SOBC_RETURN_NOT_OK(decoded.status());
          ack = std::move(*decoded);
          if (!ack.ok) {
            return Status(static_cast<StatusCode>(ack.status_code),
                          who + " failed during the takeover resync: " +
                              ack.message);
          }
          ++shard.resent_batches;
        }
        if (ack.epoch != epoch || ack.stream_position != position) {
          return Status::Internal(
              who + " resynced to (" + std::to_string(ack.epoch) + ", " +
              std::to_string(ack.stream_position) + "), expected (" +
              std::to_string(epoch) + ", " + std::to_string(position) +
              ")");
        }
        shard.epoch = ack.epoch;
        shard.health = ack.health;
        (*partials)[shard.index] = std::move(ack.partial);
      } else {
        // Already at the takeover epoch — its last ack was simply lost
        // with the primary. Fetch the partial that ack carried.
        SOBC_RETURN_NOT_OK((*conn)->SendFrame(EncodeFetch()));
        std::string payload;
        SOBC_RETURN_NOT_OK(
            RecvExpect(conn->get(), MsgType::kPartial,
                       options_.shard_ack_timeout_seconds, &payload));
        auto partial = DecodePartial(payload);
        SOBC_RETURN_NOT_OK(partial.status());
        if (partial->epoch != epoch ||
            partial->stream_position != position) {
          return Status::Internal(who + " moved during the takeover");
        }
        shard.health = partial->health;
        (*partials)[shard.index] = std::move(partial->partial);
      }
      shard.conn = std::move(*conn);
      seen[shard.index] = true;
      const std::size_t slot = shard.index;
      (*roster)[slot] = std::move(shard);
      done = true;
    }
    if (!done) {
      return Status(last_error.code(),
                    "takeover retry budget (" +
                        std::to_string(options_.shard_retry_seconds) +
                        "s) exhausted reaching shard " + address + ": " +
                        last_error.message());
    }
  }
  std::vector<ShardRange> ranges;
  ranges.reserve(num_shards);
  for (const Shard& shard : *roster) ranges.push_back(shard.range);
  SOBC_RETURN_NOT_OK(ValidateShardMap(ranges, graph_.NumVertices()));
  map_version_plain_ = std::max<std::uint64_t>(1, newest_map_version);
  map_version_.store(map_version_plain_, std::memory_order_release);
  return Status::OK();
}

void ClusterCoordinator::Takeover(std::uint64_t epoch,
                                  std::uint64_t position,
                                  const std::string& reason) {
  const double detected_at = SteadyNowSeconds();
  if (primary_conn_ != nullptr) primary_conn_->Close();
  std::vector<Shard> roster;
  std::vector<BcScores> partials;
  const Status reconciled =
      ReconcileShards(epoch, position, &roster, &partials);
  if (!reconciled.ok()) {
    FailStandby(Status(reconciled.code(), "takeover (" + reason +
                                              ") failed: " +
                                              reconciled.message()));
    return;
  }
  shards_ = std::move(roster);
  if (options_.merge_threads > 0) {
    merge_pool_ = std::make_unique<ThreadPool>(options_.merge_threads);
  } else if (shards_.size() >= 4) {
    merge_pool_ = std::make_unique<ThreadPool>(shards_.size() / 2);
  }
  BcScores& merged = MergePartials(&partials);
  snapshots_.Publish(BuildSnapshot(graph_, merged, epoch, position,
                                   options_.top_k,
                                   options_.snapshot_edge_scores));
  metrics_.SeedPublication(epoch, position);
  base_epoch_ = epoch;
  base_position_ = position;
  published_position_.store(position, std::memory_order_release);
  failovers_.store(1, std::memory_order_relaxed);
  failover_gap_seconds_.store(SteadyNowSeconds() - detected_at,
                              std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    final_epoch_ = epoch;
    final_position_ = position;
    RefreshShardStatusLocked();
    role_.store(Role::kStandbyActive, std::memory_order_release);
  }
  publish_cv_.notify_all();
  // The writer starts from the tail thread, so Stop/Halt must join the
  // tail before the writer.
  writer_ = std::thread([this] { WriterLoop(); });
}

void ClusterCoordinator::FailStandby(const Status& why) {
  EnterReadOnly(why);
  {
    std::lock_guard<std::mutex> lock(mu_);
    standby_status_ = why;
    role_.store(Role::kStandbyFailed, std::memory_order_release);
  }
  publish_cv_.notify_all();
}

Status ClusterCoordinator::WaitUntilActive(double timeout_seconds) {
  std::unique_lock<std::mutex> lock(mu_);
  const bool resolved = publish_cv_.wait_for(
      lock, std::chrono::duration<double>(timeout_seconds), [&] {
        return role_.load(std::memory_order_acquire) !=
               Role::kStandbyTailing;
      });
  if (!resolved) {
    return Status::IOError("standby is still tailing after " +
                           std::to_string(timeout_seconds) + "s");
  }
  switch (role_.load(std::memory_order_acquire)) {
    case Role::kStandbyActive:
      return Status::OK();
    case Role::kStandbyFinished:
      return Status::FailedPrecondition(
          "primary stopped cleanly; the standby never took over");
    case Role::kStandbyFailed:
      return standby_status_;
    case Role::kPrimary:
    default:
      return Status::FailedPrecondition("not a standby");
  }
}

void ClusterCoordinator::WriterLoop() {
  std::uint64_t epoch = base_epoch_;
  std::uint64_t position = base_position_;
  const auto fail = [this](const Status& status) {
    queue_.Close();
    EnterReadOnly(status);
    if (migration_.active) AbortMigration(status);
    FailPendingControl(status);
    {
      std::lock_guard<std::mutex> lock(mu_);
      writer_status_ = status;
      writer_done_ = true;
    }
    publish_cv_.notify_all();
  };
  DrainedBatch batch;
  for (;;) {
    const UpdateQueue::PopResult popped = queue_.PopBatchFor(&batch, 0.05);
    if (popped == UpdateQueue::PopResult::kClosed) break;
    if (halted_.load(std::memory_order_acquire)) break;
    // Rebalance requests run on this thread, between batches, so the
    // shard roster and map version only ever change at a batch boundary.
    RunPendingControl(epoch, position);
    if (popped == UpdateQueue::PopResult::kTimeout) {
      MaybeCommitMigration(/*idle=*/true);
      continue;
    }
    const double batch_start = SteadyNowSeconds();
    ++epoch;
    position += batch.consumed;
    // Validate against + advance the replica first: a poison batch (one
    // the engine deterministically rejects) dies here, on the
    // coordinator, before any shard ever sees its epoch.
    Status replica_status;
    for (const EdgeUpdate& update : batch.updates) {
      replica_status = ApplyToGraph(&graph_, update);
      if (!replica_status.ok()) break;
    }
    if (!replica_status.ok()) {
      fail(replica_status);
      return;
    }
    // Even a fully coalesced-away batch replicates: shard epochs and
    // stream positions must advance in lockstep with the coordinator's,
    // or the shards' WALs would replay to different positions. The
    // window push and the standby feed happen before the shard fan-out.
    PushWindowAndReplicate(WindowEntry{epoch, position, batch.updates});
    const std::size_t joining_index =
        migration_.active ? migration_.joining : shards_.size();
    std::vector<BcScores> partials(shards_.size());
    std::uint64_t sources_total = 0;
    std::uint64_t sources_prefiltered = 0;
    const Status replicated =
        ReplicateBatch(epoch, position, batch.updates, &partials,
                       &sources_total, &sources_prefiltered);
    if (!replicated.ok()) {
      fail(replicated);
      return;
    }
    if (migration_.active && !migration_.joining_status.ok()) {
      AbortMigration(migration_.joining_status);
    }
    if (joining_index < partials.size()) {
      // Until the commit the donor still owns the full range; merging
      // the recipient's double-applied partial would count the migrated
      // sources twice.
      partials.erase(partials.begin() +
                     static_cast<std::ptrdiff_t>(joining_index));
    }
    BcScores& merged = MergePartials(&partials);
    snapshots_.Publish(BuildSnapshot(graph_, merged, epoch, position,
                                     options_.top_k,
                                     options_.snapshot_edge_scores));
    const double now = SteadyNowSeconds();
    for (double& stamp : batch.enqueue_seconds) stamp = now - stamp;
    metrics_.RecordBatch(batch.updates.size(),
                         batch.consumed - batch.updates.size(),
                         now - batch_start, batch.enqueue_seconds, epoch,
                         position, sources_total, sources_prefiltered);
    {
      std::lock_guard<std::mutex> lock(mu_);
      final_epoch_ = epoch;
      final_position_ = position;
      published_position_.store(position, std::memory_order_release);
      RefreshShardStatusLocked();
    }
    publish_cv_.notify_all();
    MaybeCommitMigration(/*idle=*/false);
  }
  if (migration_.active) {
    AbortMigration(Status::FailedPrecondition(
        "coordinator stopped before the migration committed"));
  }
  FailPendingControl(Status::FailedPrecondition(
      "coordinator stopped before the rebalance ran"));
  {
    std::lock_guard<std::mutex> lock(mu_);
    writer_done_ = true;
  }
  publish_cv_.notify_all();
}

Status ClusterCoordinator::SplitShard(std::size_t donor_index,
                                      const std::string& recipient_address) {
  ControlRequest request;
  request.kind = ControlRequest::Kind::kSplit;
  request.index = donor_index;
  request.recipient_address = recipient_address;
  const Role current = role();
  if (current != Role::kPrimary && current != Role::kStandbyActive) {
    return Status::FailedPrecondition(
        "only the active coordinator can rebalance");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_ || writer_done_) {
      return Status::FailedPrecondition("coordinator is stopped");
    }
  }
  {
    std::lock_guard<std::mutex> lock(control_mu_);
    if (pending_control_ != nullptr) {
      return Status::FailedPrecondition(
          "another rebalance is already in progress");
    }
    pending_control_ = &request;
  }
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(control_mu_);
      if (control_cv_.wait_for(lock, std::chrono::milliseconds(100),
                               [&] { return request.done; })) {
        return request.result;
      }
    }
    bool dead;
    {
      std::lock_guard<std::mutex> lock(mu_);
      dead = writer_done_;
    }
    if (dead) {
      std::lock_guard<std::mutex> lock(control_mu_);
      if (request.done) return request.result;
      if (pending_control_ == &request) pending_control_ = nullptr;
      return Status::FailedPrecondition(
          "coordinator writer exited before the rebalance ran");
    }
  }
}

Status ClusterCoordinator::MergeShards(std::size_t left_index) {
  ControlRequest request;
  request.kind = ControlRequest::Kind::kMerge;
  request.index = left_index;
  const Role current = role();
  if (current != Role::kPrimary && current != Role::kStandbyActive) {
    return Status::FailedPrecondition(
        "only the active coordinator can rebalance");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_ || writer_done_) {
      return Status::FailedPrecondition("coordinator is stopped");
    }
  }
  {
    std::lock_guard<std::mutex> lock(control_mu_);
    if (pending_control_ != nullptr) {
      return Status::FailedPrecondition(
          "another rebalance is already in progress");
    }
    pending_control_ = &request;
  }
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(control_mu_);
      if (control_cv_.wait_for(lock, std::chrono::milliseconds(100),
                               [&] { return request.done; })) {
        return request.result;
      }
    }
    bool dead;
    {
      std::lock_guard<std::mutex> lock(mu_);
      dead = writer_done_;
    }
    if (dead) {
      std::lock_guard<std::mutex> lock(control_mu_);
      if (request.done) return request.result;
      if (pending_control_ == &request) pending_control_ = nullptr;
      return Status::FailedPrecondition(
          "coordinator writer exited before the rebalance ran");
    }
  }
}

void ClusterCoordinator::RunPendingControl(std::uint64_t epoch,
                                           std::uint64_t position) {
  ControlRequest* request = nullptr;
  {
    std::lock_guard<std::mutex> lock(control_mu_);
    request = pending_control_;
  }
  if (request == nullptr || request == migration_.request) return;
  if (request->kind == ControlRequest::Kind::kSplit) {
    const Status begun = BeginSplit(request, epoch, position);
    if (!begun.ok()) {
      CompleteControl(request, begun);
    }
    // On success the request stays parked until the migration commits
    // (or aborts) — SplitShard returns only once the map version bumped.
  } else {
    CompleteControl(request, ExecuteMerge(request));
  }
}

Status ClusterCoordinator::ControlRoundTrip(Connection* conn,
                                            const std::string& frame,
                                            ReplicateAckMsg* ack) {
  if (conn == nullptr) {
    return Status::IOError("shard connection is down");
  }
  SOBC_RETURN_NOT_OK(conn->SendFrame(frame));
  std::string payload;
  SOBC_RETURN_NOT_OK(RecvExpect(conn, MsgType::kReplicateAck,
                                options_.migrate_timeout_seconds, &payload));
  auto decoded = DecodeReplicateAck(payload);
  SOBC_RETURN_NOT_OK(decoded.status());
  *ack = std::move(*decoded);
  return Status::OK();
}

Status ClusterCoordinator::BeginSplit(ControlRequest* request,
                                      std::uint64_t epoch,
                                      std::uint64_t position) {
  if (request->index >= shards_.size()) {
    return Status::InvalidArgument(
        "no shard " + std::to_string(request->index) + " to split (" +
        std::to_string(shards_.size()) + " shards)");
  }
  {
    std::lock_guard<std::mutex> lock(standby_mu_);
    if (standby_conn_ != nullptr) {
      return Status::FailedPrecondition(
          "rebalancing with a standby attached is not supported; detach "
          "the standby first (its shard list would go stale)");
    }
  }
  Shard& donor = shards_[request->index];
  const VertexId range_begin = donor.range.begin;
  const VertexId range_end = donor.range.open_ended()
                                 ? static_cast<VertexId>(graph_.NumVertices())
                                 : donor.range.end;
  if (range_end <= range_begin + 1) {
    return Status::FailedPrecondition(
        ShardName(donor.index, donor.address) +
        " owns fewer than two sources; nothing to split");
  }
  const VertexId mid = range_begin + (range_end - range_begin) / 2;
  const std::uint64_t new_version = map_version_plain_ + 1;

  MigrateBeginMsg offer;
  offer.epoch = epoch;
  offer.stream_position = position;
  offer.map_version = new_version;
  offer.range = ShardRange{mid, donor.range.end};  // keeps open-endedness
  offer.shard_index = donor.index + 1;
  offer.shard_count = static_cast<std::uint32_t>(shards_.size() + 1);
  offer.recipient_address = request->recipient_address;
  ReplicateAckMsg ack;
  SOBC_RETURN_NOT_OK(
      ControlRoundTrip(donor.conn.get(), EncodeMigrateBegin(offer), &ack));
  if (!ack.ok) {
    return Status::FailedPrecondition(
        ShardName(donor.index, donor.address) +
        " refused the migration: " + ack.message);
  }

  // The donor streamed its image and the recipient rebuilt + rescoped;
  // bring the recipient into the roster as a joining shard.
  auto conn = transport_->Connect(request->recipient_address,
                                  options_.connect_timeout_seconds);
  if (!conn.ok()) {
    return Status(conn.status().code(),
                  "connecting to migration recipient " +
                      request->recipient_address + ": " +
                      conn.status().message());
  }
  auto hello = Handshake(conn->get(), graph_,
                         options_.shard_ack_timeout_seconds);
  if (!hello.ok()) {
    return Status(hello.status().code(),
                  "handshake with migration recipient " +
                      request->recipient_address + ": " +
                      hello.status().message());
  }
  if (hello->epoch != epoch || !(hello->range == offer.range) ||
      hello->map_version != new_version) {
    return Status::Internal(
        "migration recipient " + request->recipient_address +
        " came up with the wrong identity (epoch " +
        std::to_string(hello->epoch) + ", map v" +
        std::to_string(hello->map_version) + ")");
  }
  // One fetch to pin its stream position to the cut point.
  SOBC_RETURN_NOT_OK((*conn)->SendFrame(EncodeFetch()));
  std::string payload;
  SOBC_RETURN_NOT_OK(RecvExpect(conn->get(), MsgType::kPartial,
                                options_.shard_ack_timeout_seconds,
                                &payload));
  auto partial = DecodePartial(payload);
  SOBC_RETURN_NOT_OK(partial.status());
  if (partial->epoch != epoch || partial->stream_position != position) {
    return Status::Internal("migration recipient " +
                            request->recipient_address +
                            " is not at the offered cut point");
  }

  Shard joining;
  joining.address = request->recipient_address;
  joining.index = offer.shard_index;
  joining.reported_count = offer.shard_count;
  joining.range = hello->range;
  joining.epoch = hello->epoch;
  joining.health = hello->health;
  joining.joining = true;
  joining.conn = std::move(*conn);

  migration_.active = true;
  migration_.donor = request->index;
  migration_.joining = request->index + 1;
  migration_.new_version = new_version;
  migration_.donor_new_range = ShardRange{range_begin, mid};
  migration_.double_applied = 0;
  migration_.joining_status = Status::OK();
  migration_.request = request;
  shards_.insert(shards_.begin() +
                     static_cast<std::ptrdiff_t>(request->index + 1),
                 std::move(joining));
  migration_active_.store(true, std::memory_order_release);
  migrations_started_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    RefreshShardStatusLocked();
  }
  return Status::OK();
}

void ClusterCoordinator::MaybeCommitMigration(bool idle) {
  if (!migration_.active) return;
  if (!migration_.joining_status.ok()) {
    AbortMigration(migration_.joining_status);
    return;
  }
  // Commit once the recipient proved it can follow the live stream (one
  // double-applied batch), or immediately when the stream is idle.
  if (!idle && migration_.double_applied == 0) return;
  Shard& donor = shards_[migration_.donor];
  SplitRangeMsg commit;
  commit.map_version = migration_.new_version;
  commit.range = migration_.donor_new_range;
  ReplicateAckMsg ack;
  Status committed =
      ControlRoundTrip(donor.conn.get(), EncodeSplitRange(commit), &ack);
  if (committed.ok() && !ack.ok) {
    committed = Status::FailedPrecondition(
        ShardName(donor.index, donor.address) +
        " refused the split commit: " + ack.message);
  }
  if (!committed.ok()) {
    AbortMigration(committed);
    return;
  }
  // The atomic cut: from the next batch on, the donor computes under the
  // narrowed range and the recipient's partial is merged — every epoch
  // is computed under exactly one shard map.
  donor.range = migration_.donor_new_range;
  donor.epoch = ack.epoch;
  shards_[migration_.joining].joining = false;
  map_version_plain_ = migration_.new_version;
  map_version_.store(map_version_plain_, std::memory_order_release);
  migrations_completed_.fetch_add(1, std::memory_order_relaxed);
  migration_lag_batches_.store(0, std::memory_order_relaxed);
  ControlRequest* request = migration_.request;
  migration_ = Migration{};
  migration_active_.store(false, std::memory_order_release);
  CompleteControl(request, Status::OK());
  {
    std::lock_guard<std::mutex> lock(mu_);
    RefreshShardStatusLocked();
  }
}

void ClusterCoordinator::AbortMigration(const Status& why) {
  if (!migration_.active) return;
  Shard& joining = shards_[migration_.joining];
  if (joining.conn != nullptr) joining.conn->Close();
  ControlRequest* request = migration_.request;
  shards_.erase(shards_.begin() +
                static_cast<std::ptrdiff_t>(migration_.joining));
  migration_ = Migration{};
  migration_active_.store(false, std::memory_order_release);
  migration_lag_batches_.store(0, std::memory_order_relaxed);
  CompleteControl(request,
                  Status(why.code(), "migration aborted: " + why.message()));
  {
    std::lock_guard<std::mutex> lock(mu_);
    RefreshShardStatusLocked();
  }
}

Status ClusterCoordinator::ExecuteMerge(ControlRequest* request) {
  const std::size_t left = request->index;
  if (left + 1 >= shards_.size()) {
    return Status::InvalidArgument(
        "merging shard " + std::to_string(left) + " needs a shard " +
        std::to_string(left + 1) + " to absorb (" +
        std::to_string(shards_.size()) + " shards)");
  }
  {
    std::lock_guard<std::mutex> lock(standby_mu_);
    if (standby_conn_ != nullptr) {
      return Status::FailedPrecondition(
          "rebalancing with a standby attached is not supported; detach "
          "the standby first (its shard list would go stale)");
    }
  }
  Shard& survivor = shards_[left];
  Shard& retiring = shards_[left + 1];
  MergeRangeMsg merge;
  merge.map_version = map_version_plain_ + 1;
  merge.range = ShardRange{survivor.range.begin, retiring.range.end};
  ReplicateAckMsg ack;
  SOBC_RETURN_NOT_OK(
      ControlRoundTrip(survivor.conn.get(), EncodeMergeRange(merge), &ack));
  if (!ack.ok) {
    return Status::FailedPrecondition(
        ShardName(survivor.index, survivor.address) +
        " refused the merge: " + ack.message);
  }
  // Single writer turn: the survivor already rescoped to the union, no
  // batch is published in between, so the next epoch merges the union
  // partial exactly once.
  survivor.range = merge.range;
  survivor.epoch = ack.epoch;
  if (retiring.conn != nullptr) {
    if (retiring.conn->SendFrame(EncodeShutdown()).ok()) {
      std::string payload;
      (void)retiring.conn->RecvFrame(&payload, 1.0);
    }
    retiring.conn->Close();
  }
  shards_.erase(shards_.begin() + static_cast<std::ptrdiff_t>(left + 1));
  map_version_plain_ = merge.map_version;
  map_version_.store(map_version_plain_, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mu_);
    RefreshShardStatusLocked();
  }
  return Status::OK();
}

void ClusterCoordinator::CompleteControl(ControlRequest* request,
                                         Status result) {
  if (request == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(control_mu_);
    request->result = std::move(result);
    request->done = true;
    if (pending_control_ == request) pending_control_ = nullptr;
  }
  control_cv_.notify_all();
}

void ClusterCoordinator::FailPendingControl(const Status& why) {
  ControlRequest* request = nullptr;
  {
    std::lock_guard<std::mutex> lock(control_mu_);
    request = pending_control_;
    pending_control_ = nullptr;
    if (request != nullptr && !request->done) {
      request->result = why;
      request->done = true;
    }
  }
  control_cv_.notify_all();
}

Status ClusterCoordinator::Drain() {
  const Role current = role();
  if (current != Role::kPrimary && current != Role::kStandbyActive) {
    return Status::FailedPrecondition(
        "standby has not taken over; nothing to drain");
  }
  const std::uint64_t target = base_position_ + queue_.stats().received;
  std::unique_lock<std::mutex> lock(mu_);
  publish_cv_.wait(lock, [&] {
    return writer_done_ || !writer_status_.ok() ||
           published_position_.load(std::memory_order_acquire) >= target;
  });
  if (!writer_status_.ok()) return writer_status_;
  if (published_position_.load(std::memory_order_acquire) >= target) {
    return Status::OK();
  }
  return Status::FailedPrecondition(
      "coordinator writer exited before draining every accepted update");
}

Status ClusterCoordinator::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return writer_status_;
    stopped_ = true;
  }
  queue_.Close();
  tail_stop_.store(true, std::memory_order_release);
  // The tail may be mid-takeover (it starts the writer): join it before
  // the writer so writer_ is stable.
  if (tail_thread_.joinable()) tail_thread_.join();
  if (writer_.joinable()) writer_.join();
  acceptor_stop_.store(true, std::memory_order_release);
  if (standby_acceptor_.joinable()) standby_acceptor_.join();
  {
    std::lock_guard<std::mutex> lock(standby_mu_);
    if (standby_conn_ != nullptr) {
      // Clean handoff: the standby finishes instead of taking over.
      if (standby_conn_->SendFrame(EncodeShutdown()).ok()) {
        std::string payload;
        (void)standby_conn_->RecvFrame(&payload, 1.0);
      }
      standby_conn_->Close();
      standby_conn_.reset();
      standby_attached_.store(0, std::memory_order_release);
    }
  }
  if (standby_listener_ != nullptr) standby_listener_->Close();
  if (primary_conn_ != nullptr) primary_conn_->Close();
  FailPendingControl(Status::FailedPrecondition("coordinator stopped"));
  // Clean cluster shutdown: every reachable shard gets kShutdown (its
  // Wait() returns, its own Stop commits the final checkpoint). Best
  // effort — a dead connection means the shard is already gone or its
  // operator stops it directly.
  for (Shard& shard : shards_) {
    if (shard.conn == nullptr) continue;
    if (shard.conn->SendFrame(EncodeShutdown()).ok()) {
      std::string payload;
      (void)shard.conn->RecvFrame(&payload, 1.0);
    }
    shard.conn->Close();
  }
  std::lock_guard<std::mutex> lock(mu_);
  return writer_status_;
}

void ClusterCoordinator::Halt() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  halted_.store(true, std::memory_order_release);
  queue_.Close();
  tail_stop_.store(true, std::memory_order_release);
  acceptor_stop_.store(true, std::memory_order_release);
  if (tail_thread_.joinable()) tail_thread_.join();
  if (writer_.joinable()) writer_.join();
  if (standby_acceptor_.joinable()) standby_acceptor_.join();
  if (standby_listener_ != nullptr) standby_listener_->Close();
  {
    std::lock_guard<std::mutex> lock(standby_mu_);
    if (standby_conn_ != nullptr) {
      // No shutdown frame: the standby sees silence, its lease expires,
      // and it takes over — the whole point of the drill.
      standby_conn_->Close();
      standby_conn_.reset();
      standby_attached_.store(0, std::memory_order_release);
    }
  }
  for (Shard& shard : shards_) {
    if (shard.conn != nullptr) shard.conn->Close();
  }
  if (primary_conn_ != nullptr) primary_conn_->Close();
  FailPendingControl(Status::FailedPrecondition("coordinator halted"));
  {
    std::lock_guard<std::mutex> lock(mu_);
    writer_done_ = true;
  }
  publish_cv_.notify_all();
}

ServeMetricsSnapshot ClusterCoordinator::metrics() const {
  ServeMetricsSnapshot snap = metrics_.Read();
  const UpdateQueueStats queue_stats = queue_.stats();
  snap.received = queue_stats.received;
  snap.dropped = queue_stats.dropped;
  const std::uint64_t received_absolute =
      base_position_ + queue_stats.received;
  snap.epoch_lag = received_absolute > snap.published_stream_position
                       ? received_absolute - snap.published_stream_position
                       : 0;
  const ServiceHealth current_health = health();
  snap.health_state = static_cast<std::uint64_t>(current_health);
  snap.health = ServiceHealthName(current_health);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!health_error_.ok()) snap.last_error = health_error_.ToString();
  }
  const IoCounters io = ReadIoCounters();
  snap.io_retries = io.retries;
  snap.io_retries_exhausted = io.retries_exhausted;
  snap.io_faults_injected = io.faults_injected;
  snap.failovers = failovers_.load(std::memory_order_relaxed);
  snap.failover_gap_seconds =
      failover_gap_seconds_.load(std::memory_order_relaxed);
  snap.standby_attached = standby_attached_.load(std::memory_order_relaxed);
  snap.replicated_batches =
      replicated_batches_.load(std::memory_order_relaxed);
  snap.migrations_started =
      migrations_started_.load(std::memory_order_relaxed);
  snap.migrations_completed =
      migrations_completed_.load(std::memory_order_relaxed);
  snap.migration_lag_batches =
      migration_lag_batches_.load(std::memory_order_relaxed);
  snap.shard_map_version = map_version_.load(std::memory_order_relaxed);
  return snap;
}

void ClusterCoordinator::EnterDegraded(const Status& why) {
  int expected = static_cast<int>(ServiceHealth::kHealthy);
  if (!health_.compare_exchange_strong(
          expected, static_cast<int>(ServiceHealth::kDegraded),
          std::memory_order_acq_rel)) {
    return;  // already degraded or read-only; first cause wins
  }
  // Same backpressure response as a degraded single-process service: the
  // cluster's durability is reduced somewhere, so accept less in flight.
  queue_.SetCapacity(std::max<std::size_t>(1, queue_.capacity() / 2));
  std::lock_guard<std::mutex> lock(mu_);
  health_error_ = why;
}

void ClusterCoordinator::EnterReadOnly(const Status& why) {
  health_.store(static_cast<int>(ServiceHealth::kReadOnly),
                std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  health_error_ = why;
}

}  // namespace sobc
