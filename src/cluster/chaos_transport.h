#ifndef SOBC_CLUSTER_CHAOS_TRANSPORT_H_
#define SOBC_CLUSTER_CHAOS_TRANSPORT_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "cluster/transport.h"

namespace sobc {

/// Faults a test injects against one shard address — the wire analog of
/// common/fault_io.h, but at the transport seam: partitions (connections
/// that die after N frames), unreachable shards (connects that fail), and
/// slow shards (per-frame delay), all without touching a socket.
struct ChaosPlan {
  /// Fail the next N Connect() calls to this address (simulates a crashed
  /// or partitioned-away shard between the coordinator's retries).
  std::size_t fail_connects = 0;
  /// Break the connection (both directions error from then on) after this
  /// many successful SendFrames on it; 0 = never.
  std::size_t drop_after_sends = 0;
  /// Sleep this long before every frame receive (slow-shard emulation —
  /// long enough values trip the coordinator's per-shard ack watchdog).
  double recv_delay_seconds = 0.0;
  /// Sleep this long before every frame send (slow-link emulation on the
  /// outbound path: frames arrive late but intact and in order).
  double send_delay_seconds = 0.0;
  /// Send each of the first N frames TWICE (a retransmitting middlebox /
  /// naive client retry) — the duplicated-delivery case the shard-side
  /// epoch dedupe must absorb; 0 = never duplicate.
  std::size_t duplicate_sends = 0;
};

/// A Transport decorator: every Listen/Connect goes to the inner (real)
/// transport, but connections to an address with a plan misbehave as the
/// plan says. Tests set plans from the test thread; connections consult
/// the shared per-address state under a lock, so a plan set mid-stream
/// applies to frames already in flight order.
class ChaosTransport : public Transport {
 public:
  explicit ChaosTransport(Transport* inner) : inner_(inner) {}

  /// Replaces the plan of `address`. The per-connection sent-frame
  /// counters restart from zero for connections made after this call.
  void SetPlan(const std::string& address, const ChaosPlan& plan);

  Result<std::unique_ptr<Listener>> Listen(
      const std::string& address) override;
  Result<std::unique_ptr<Connection>> Connect(
      const std::string& address, double timeout_seconds) override;

 private:
  struct AddressState {
    ChaosPlan plan;
    std::size_t connects_failed = 0;
  };

  Transport* inner_;
  std::mutex mu_;
  std::map<std::string, AddressState> state_;
};

}  // namespace sobc

#endif  // SOBC_CLUSTER_CHAOS_TRANSPORT_H_
