#ifndef SOBC_CLUSTER_LEASE_H_
#define SOBC_CLUSTER_LEASE_H_

#include <mutex>

namespace sobc {

/// The time source of the failover detector, seamed the way Io seams the
/// durability syscalls (DESIGN.md §12): production runs on the steady
/// clock; tests install a ScriptedLeaseClock and advance it by hand, so
/// "the primary's heartbeats stopped arriving" is a deterministic event a
/// test can schedule — even while the underlying TCP connection is still
/// technically open.
class LeaseClock {
 public:
  virtual ~LeaseClock() = default;

  /// Monotonic seconds; only differences are meaningful.
  virtual double Now() = 0;

  /// The steady-clock implementation (a process-lifetime singleton).
  static LeaseClock* Default();

  /// The currently installed instance; Default() unless a test swapped it.
  static LeaseClock* Get();

  /// Atomically installs `clock` (nullptr restores Default()) and returns
  /// the previous instance. The caller keeps the installed object alive
  /// until every lease-holding thread has quiesced.
  static LeaseClock* Install(LeaseClock* clock);
};

/// One side of a heartbeat contract: the holder renews on every frame
/// received from its peer; Expired() after `timeout_seconds` of silence
/// is the takeover trigger.
class Lease {
 public:
  explicit Lease(double timeout_seconds);

  void Renew();
  bool Expired() const;

  /// Seconds of silence so far (for the failover gap metric).
  double SilenceSeconds() const;

 private:
  double timeout_;
  double renewed_at_;
};

/// Hand-cranked clock for failover tests: Advance() past the lease
/// timeout scripts a primary death without waiting wall-clock time.
class ScriptedLeaseClock : public LeaseClock {
 public:
  double Now() override;
  void Advance(double seconds);
  void Set(double seconds);

 private:
  mutable std::mutex mu_;
  double now_ = 0.0;
};

}  // namespace sobc

#endif  // SOBC_CLUSTER_LEASE_H_
