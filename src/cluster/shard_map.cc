#include "cluster/shard_map.h"

#include <cstdlib>

namespace sobc {

ShardRange ShardRangeOf(std::size_t n, std::size_t shards,
                        std::size_t index) {
  ShardRange range;
  if (shards == 0) return range;
  if (index >= shards) index = shards - 1;
  range.begin = static_cast<VertexId>(index * n / shards);
  range.end = index + 1 == shards
                  ? kInvalidVertex
                  : static_cast<VertexId>((index + 1) * n / shards);
  return range;
}

std::vector<ShardRange> BuildShardMap(std::size_t n, std::size_t shards) {
  std::vector<ShardRange> ranges;
  ranges.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    ranges.push_back(ShardRangeOf(n, shards, i));
  }
  return ranges;
}

Status ValidateShardMap(const std::vector<ShardRange>& ranges,
                        std::size_t n) {
  if (ranges.empty()) return Status::InvalidArgument("no shards");
  VertexId cursor = 0;
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    const ShardRange& range = ranges[i];
    if (range.begin != cursor) {
      return Status::FailedPrecondition(
          "shard " + std::to_string(i) + " owns sources from " +
          std::to_string(range.begin) + " but the previous shard ends at " +
          std::to_string(cursor) + " (gap or overlap in the shard map)");
    }
    const bool last = i + 1 == ranges.size();
    if (last) {
      if (!range.open_ended()) {
        return Status::FailedPrecondition(
            "last shard's partition must be open-ended so grown vertices "
            "have an owner");
      }
    } else {
      if (range.open_ended() || range.end < range.begin) {
        return Status::FailedPrecondition(
            "shard " + std::to_string(i) + " has an invalid partition");
      }
      cursor = range.end;
    }
  }
  if (!ranges.back().open_ended() && cursor > n) {
    return Status::FailedPrecondition("shard map overruns the vertex set");
  }
  return Status::OK();
}

Status CheckMapVersion(std::uint64_t msg_version,
                       std::uint64_t current_version, const char* what) {
  if (msg_version == 0 || msg_version <= current_version) {
    return Status::FailedPrecondition(
        std::string("stale shard-map version ") +
        std::to_string(msg_version) + " in " + what +
        " (this shard already holds version " +
        std::to_string(current_version) + ")");
  }
  return Status::OK();
}

Status ParseHostPort(const std::string& address, std::string* host,
                     int* port) {
  const std::size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == address.size()) {
    return Status::InvalidArgument("address '" + address +
                                   "' is not host:port");
  }
  char* end = nullptr;
  const long parsed = std::strtol(address.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || parsed < 0 || parsed > 65535) {
    return Status::InvalidArgument("address '" + address +
                                   "' has an invalid port");
  }
  *host = address.substr(0, colon);
  *port = static_cast<int>(parsed);
  return Status::OK();
}

}  // namespace sobc
