#ifndef SOBC_STORAGE_WAL_H_
#define SOBC_STORAGE_WAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/edge_stream.h"

namespace sobc {

/// One durable unit of the write-ahead log: the coalesced batch the serving
/// writer is about to apply, stamped with the epoch its publication will
/// carry and the stream position it advances to (consumed inputs included,
/// so a fully coalesced-away batch still logs as an empty record that moves
/// the position). Replaying the logged records through the same batch-apply
/// machinery reproduces the uninterrupted run's epochs, positions, and —
/// for the byte-copied out-of-core BD store — its exact scores.
struct WalRecord {
  /// Epoch this batch produces when applied (checkpoint epoch + k for the
  /// k-th logged batch after it). Strictly contiguous within the log.
  std::uint64_t epoch = 0;
  /// Stream position after applying this batch (raw inputs consumed, the
  /// coalesced-away ones included).
  std::uint64_t stream_position = 0;
  /// Post-coalescing survivors, in apply order. May be empty.
  std::vector<EdgeUpdate> updates;
  /// Where this record lives — filled by the replay reader so recovery
  /// can amputate a poisoned final record (one the engine deterministically
  /// rejects: it killed the live writer and was never applied or
  /// published) with TruncateWalSegment.
  std::string segment;
  std::uint64_t frame_offset = 0;
};

/// Durability policy of the log writer.
struct WalOptions {
  /// fdatasync the segment after every N appended records; 0 leaves
  /// durability to the OS page cache (fastest, loses the tail on power
  /// failure but not on process crash). 1 is the classic every-commit
  /// policy.
  std::size_t fsync_every = 1;
};

/// Monotonic writer-side counters, snapshot-readable from any thread.
struct WalStats {
  std::uint64_t appends = 0;
  std::uint64_t appended_updates = 0;
  std::uint64_t bytes = 0;  // frame bytes written (headers included)
  std::uint64_t syncs = 0;
  std::uint64_t rotations = 0;
  /// Newest epoch known durable: the last appended epoch at the most
  /// recent successful fdatasync (seeded to next_epoch - 1 at Open — the
  /// checkpoint/replay baseline). Under fsync_every == 0 this trails the
  /// appended epoch by design. After a failed sync it freezes: a failed
  /// fsync must never be reported as durable (see Sync).
  std::uint64_t last_durable_epoch = 0;
};

/// Append side of the write-ahead log: one directory of epoch-named segment
/// files (`wal-<first epoch>.log`), each a magic header followed by
/// CRC-framed records. The serving writer appends every drained batch
/// *before* applying it; a checkpoint rotates to a fresh segment so fully
/// checkpointed segments become prunable.
///
/// Single-threaded by contract (the serving writer owns it); stats() is the
/// one method safe from other threads.
class WalWriter {
 public:
  /// Opens `dir` (created if missing) and starts the segment whose first
  /// record will carry `next_epoch`. An existing segment of that name is
  /// truncated: by construction it can only hold a garbage tail a prior
  /// recovery already discarded.
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& dir,
                                                 std::uint64_t next_epoch,
                                                 const WalOptions& options);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one framed record and applies the fsync policy. The record is
  /// recoverable once this returns under fsync_every == 1; under laxer
  /// policies it survives process crashes immediately and power loss only
  /// after the next sync.
  Status Append(std::uint64_t epoch, std::uint64_t stream_position,
                std::span<const EdgeUpdate> updates);
  Status Append(const WalRecord& record) {
    return Append(record.epoch, record.stream_position, record.updates);
  }

  /// Forces fdatasync of the current segment regardless of policy.
  ///
  /// A failed sync is fatal for the segment ("fsyncgate" semantics): the
  /// kernel may have dropped the dirty pages while reporting the error, so
  /// retrying the fsync could succeed while the data is gone. The writer
  /// is poisoned — every later Append/Sync fails fast with
  /// FailedPrecondition — and last_durable_epoch stays at the last epoch a
  /// *successful* sync covered.
  Status Sync();

  /// Closes the current segment and starts `wal-<next_epoch>.log`. Called
  /// at checkpoint capture so the segment boundary aligns with the
  /// checkpoint epoch; earlier segments then hold only records the
  /// checkpoint covers.
  Status Rotate(std::uint64_t next_epoch);

  WalStats stats() const;
  const std::string& dir() const { return dir_; }

 private:
  WalWriter(std::string dir, WalOptions options);

  Status OpenSegment(std::uint64_t first_epoch);

  std::string dir_;
  WalOptions options_;
  int fd_ = -1;
  std::string segment_path_;
  std::size_t appends_since_sync_ = 0;
  /// Set by the first failed fdatasync; makes every later append fail
  /// fast instead of appending records whose durability is unknowable.
  bool poisoned_ = false;
  std::uint64_t last_appended_epoch_ = 0;
  std::atomic<std::uint64_t> durable_epoch_{0};
  std::atomic<std::uint64_t> appends_{0};
  std::atomic<std::uint64_t> appended_updates_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> syncs_{0};
  std::atomic<std::uint64_t> rotations_{0};
};

/// Everything a recovery replay needs from the log.
struct WalReplay {
  /// Records with epoch > the caller's checkpoint epoch, contiguous and
  /// ascending. Empty when the log holds nothing newer.
  std::vector<WalRecord> records;
  /// Bytes discarded from a torn final segment (0 for a clean log).
  std::uint64_t torn_bytes = 0;
  /// Segment the torn tail was found (and truncated) in; empty if clean.
  std::string torn_segment;
  std::uint64_t segments_read = 0;
};

/// Reads every segment of `dir` in epoch order and returns the records
/// newer than `after_epoch`. A bad frame (short read, CRC mismatch,
/// implausible length) in the *final* segment is a torn tail from a crash
/// mid-append: everything from it on is discarded and — when
/// `truncate_torn_tail` — physically truncated so the next writer appends
/// after valid data. A bad frame in any earlier segment, or an epoch gap,
/// is real corruption and fails with IOError.
Result<WalReplay> ReadWalForReplay(const std::string& dir,
                                   std::uint64_t after_epoch,
                                   bool truncate_torn_tail);

/// Truncates `segment` (a path from WalRecord::segment) at `offset`,
/// discarding the record starting there and everything after it, then
/// fsyncs the directory. Recovery's amputation of a poisoned final
/// record; the caller must have verified the record is the log's last.
Status TruncateWalSegment(const std::string& dir, const std::string& segment,
                          std::uint64_t offset);

/// Whether `dir` already holds any wal segment — the guard that keeps
/// BcService::Create from silently clobbering a log that Recover should
/// consume.
Result<bool> WalDirHasSegments(const std::string& dir);

/// Deletes segments every record of which is covered by a checkpoint at
/// `through_epoch` — i.e. segments whose *successor* segment starts at or
/// before `through_epoch + 1`. The newest segment always survives. Safe to
/// run while a writer appends (the writer only touches the newest segment).
/// Returns the number of segments removed.
Result<std::size_t> PruneWalSegments(const std::string& dir,
                                     std::uint64_t through_epoch);

}  // namespace sobc

#endif  // SOBC_STORAGE_WAL_H_
