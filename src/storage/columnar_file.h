#ifndef SOBC_STORAGE_COLUMNAR_FILE_H_
#define SOBC_STORAGE_COLUMNAR_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace sobc {

/// Shape of a fixed-width columnar record file: `num_records` records, each
/// holding `entries_per_record` entries for every column, stored column
/// after column within the record (Section 5.1's layout: all distances,
/// then all path counts, then all dependencies of one source).
struct ColumnarLayout {
  std::vector<std::uint64_t> column_widths;  // bytes per entry
  std::uint64_t entries_per_record = 0;
  std::uint64_t num_records = 0;

  std::uint64_t EntryStride() const {
    std::uint64_t total = 0;
    for (std::uint64_t w : column_widths) total += w;
    return total;
  }
  std::uint64_t RecordStride() const {
    return EntryStride() * entries_per_record;
  }
  std::uint64_t ColumnOffset(std::size_t column) const {
    std::uint64_t off = 0;
    for (std::size_t c = 0; c < column; ++c) {
      off += column_widths[c] * entries_per_record;
    }
    return off;
  }
};

/// A binary file of fixed-width columnar records with positioned I/O.
/// Because every entry has a fixed size, the offset of any (record, column,
/// entry) triple is computable, which is what enables the out-of-core
/// algorithm to skip sources (dd == 0) without reading their records and to
/// update records in place. Created files are sparse (all-zero), so callers
/// should pick encodings where zero means "absent" (see DiskBdStore).
///
/// Multiple handles may be Open()ed on one file; positioned reads/writes on
/// disjoint records are safe concurrently (pread/pwrite), which the
/// parallel executor relies on.
class ColumnarFile {
 public:
  ~ColumnarFile();
  ColumnarFile(const ColumnarFile&) = delete;
  ColumnarFile& operator=(const ColumnarFile&) = delete;

  /// Creates (truncating) a file with the given layout.
  static Result<std::unique_ptr<ColumnarFile>> Create(
      const std::string& path, const ColumnarLayout& layout);

  /// Opens an existing file, reading the layout from its header.
  static Result<std::unique_ptr<ColumnarFile>> Open(const std::string& path);

  const ColumnarLayout& layout() const { return layout_; }
  const std::string& path() const { return path_; }

  /// Reads `count` entries of `column` in `record`, starting at `first`.
  Status Read(std::uint64_t record, std::size_t column, std::uint64_t first,
              std::uint64_t count, void* out) const;

  /// Writes `count` entries of `column` in `record`, starting at `first`,
  /// in place.
  Status Write(std::uint64_t record, std::size_t column, std::uint64_t first,
               std::uint64_t count, const void* data);

  /// Raw positioned access to a byte span inside one record (offset from
  /// the record's first byte). Lets callers read or write several adjacent
  /// columns with a single syscall — the sequential whole-record access of
  /// Section 5.1.
  Status ReadSpan(std::uint64_t record, std::uint64_t byte_offset,
                  std::uint64_t num_bytes, void* out) const;
  Status WriteSpan(std::uint64_t record, std::uint64_t byte_offset,
                   std::uint64_t num_bytes, const void* data);

  /// A caller-managed 64-bit field persisted in the header (DiskBdStore
  /// stores the live vertex count there, below the record capacity).
  Status SetUserValue(std::uint64_t value);
  std::uint64_t user_value() const { return user_value_; }

  /// A second and third caller-managed field (DiskBdStore persists its
  /// source partition bounds in these).
  Status SetUserAux(std::uint64_t aux0, std::uint64_t aux1);
  std::uint64_t user_aux0() const { return user_aux_[0]; }
  std::uint64_t user_aux1() const { return user_aux_[1]; }

  /// Fourth and fifth caller-managed fields (DiskBdStore persists its
  /// record codec id and vertex capacity in these).
  Status SetUserAuxHigh(std::uint64_t aux2, std::uint64_t aux3);
  std::uint64_t user_aux2() const { return user_aux_[2]; }
  std::uint64_t user_aux3() const { return user_aux_[3]; }

  /// Flushes file contents and header to disk.
  Status Sync();

 private:
  ColumnarFile(int fd, std::string path, ColumnarLayout layout,
               std::uint64_t user_value, std::uint64_t aux0,
               std::uint64_t aux1, std::uint64_t aux2, std::uint64_t aux3,
               std::uint64_t header_size)
      : fd_(fd),
        path_(std::move(path)),
        layout_(std::move(layout)),
        user_value_(user_value),
        user_aux_{aux0, aux1, aux2, aux3},
        header_size_(header_size) {}

  Status CheckBounds(std::uint64_t record, std::size_t column,
                     std::uint64_t first, std::uint64_t count) const;
  std::uint64_t Offset(std::uint64_t record, std::size_t column,
                       std::uint64_t first) const;
  Status MapFile();

  int fd_;
  std::string path_;
  ColumnarLayout layout_;
  std::uint64_t user_value_;
  std::uint64_t user_aux_[4];
  std::uint64_t header_size_;
  // The file is memory-mapped ("memory structures are mapped directly on
  // disk", Section 1.2): reads and in-place updates are plain memory
  // accesses and the page cache handles write-back.
  char* map_ = nullptr;
  std::uint64_t map_size_ = 0;
};

}  // namespace sobc

#endif  // SOBC_STORAGE_COLUMNAR_FILE_H_
