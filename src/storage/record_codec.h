#ifndef SOBC_STORAGE_RECORD_CODEC_H_
#define SOBC_STORAGE_RECORD_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "bc/bc_types.h"
#include "common/status.h"

namespace sobc {

/// On-disk encoding of one BD[s] record (the d / sigma / delta columns of
/// Section 3). The codec is selected per store file and recorded in the
/// file header, so every handle opened on the file decodes it the same way.
///
///   kRaw    — the original fixed-width layout: three columns per record
///             (16-bit biased distance, 64-bit path count, 64-bit
///             dependency). Supports in-place span patching; distances are
///             capped at 65534 (EncodeDistance16 returns Status past that).
///   kDelta  — one variable-length blob per record:
///               d      delta + zigzag varint over the biased 32-bit
///                      distance (BFS distances are near-uniform small
///                      integers, so consecutive deltas are tiny; the
///                      varint also removes the 16-bit distance ceiling),
///               sigma  run-length (varint run, varint value — sigma is
///                      overwhelmingly 1 on sparse graphs),
///               delta  zero-run / literal-run alternation (varint zero
///                      count, varint literal count, raw 8-byte doubles —
///                      dependencies of DAG leaves are exactly 0.0).
///             Apply rewrites the whole blob; decode is exact (doubles are
///             stored bit-identical).
enum class RecordCodecId : std::uint8_t {
  kRaw = 0,
  kDelta = 1,
};

const char* RecordCodecName(RecordCodecId id);
Result<RecordCodecId> ParseRecordCodec(std::string_view name);

// --- 16-bit biased distance encoding (the kRaw d column) -------------------

/// Biased so the file's zero-fill reads as "unreachable". Distances above
/// 65534 do not fit 16 bits; callers must reject them via
/// EncodeDistance16 (the kDelta codec has no such ceiling).
inline constexpr Distance kMaxRawDistance = 65534;

Result<std::uint16_t> EncodeDistance16(Distance d);

inline std::uint16_t EncodeDistance16Unchecked(Distance d) {
  return d == kUnreachable ? 0 : static_cast<std::uint16_t>(d + 1);
}
inline Distance DecodeDistance16(std::uint16_t raw) {
  return raw == 0 ? kUnreachable : static_cast<Distance>(raw - 1);
}

// --- varint primitives (LEB128 + zigzag), shared with tests ----------------

void PutVarint64(std::uint64_t value, std::vector<std::uint8_t>* out);
/// Returns bytes consumed, or 0 on truncated/overlong input.
std::size_t GetVarint64(const std::uint8_t* data, std::size_t len,
                        std::uint64_t* value);

inline std::uint64_t ZigZagEncode64(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
inline std::int64_t ZigZagDecode64(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

// --- blob codec (kDelta) ---------------------------------------------------

/// Encoder/decoder for one whole record blob. Stateless; one process-wide
/// instance per codec id (Get). All entry points are thread-safe.
class RecordCodec {
 public:
  virtual ~RecordCodec() = default;
  virtual RecordCodecId id() const = 0;

  /// Upper bound on the encoded size of an n-entry record; the store sizes
  /// its fixed file slots with this so re-encoded records always fit.
  virtual std::size_t MaxEncodedBytes(std::size_t n) const = 0;

  /// Encodes the three columns into `out` (assigned, not appended).
  virtual void Encode(const Distance* d, const PathCount* sigma,
                      const double* delta, std::size_t n,
                      std::vector<std::uint8_t>* out) const = 0;

  /// Decodes an n-entry blob into caller buffers of length >= n.
  virtual Status Decode(const std::uint8_t* data, std::size_t len,
                        std::size_t n, Distance* d, PathCount* sigma,
                        double* delta) const = 0;

  /// Decodes only d[0, limit) — the PeekDistances path, which never needs
  /// sigma/delta and can stop early. `limit` <= n.
  virtual Status DecodeDistances(const std::uint8_t* data, std::size_t len,
                                 std::size_t n, std::size_t limit,
                                 Distance* d) const = 0;

  static const RecordCodec& Get(RecordCodecId id);
};

}  // namespace sobc

#endif  // SOBC_STORAGE_RECORD_CODEC_H_
