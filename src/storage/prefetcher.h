#ifndef SOBC_STORAGE_PREFETCHER_H_
#define SOBC_STORAGE_PREFETCHER_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "graph/graph.h"

namespace sobc {

/// Background read-ahead accounting, snapshot-readable from any thread.
struct PrefetchStats {
  std::uint64_t hinted = 0;          // source ids enqueued via Hint
  std::uint64_t fetched = 0;         // records decoded into the cache
  std::uint64_t already_cached = 0;  // skipped: a current decode was resident
  std::uint64_t failed = 0;          // loader errors (logged, not fatal)
  std::uint64_t dropped = 0;         // queue overflow, oldest hints shed
  double fetch_seconds = 0.0;        // background time spent decoding
};

/// Background read-ahead for the out-of-core BD store: one thread drains a
/// queue of hinted source ids and decodes each record into the shared
/// RecordCache (via the owner-provided loader) ahead of the compute path.
/// Correctness never depends on the prefetcher — a fetch that loses a race
/// with a writer is discarded by the cache's epoch check, and a missing
/// fetch is just a cache miss — so hints are fire-and-forget from any
/// thread.
///
/// Pacing comes from the hint sites, not from this class: the sharded
/// drain's worker claiming chunk k hints chunk k + lookahead
/// (SourceSharder::ChunkSources), and the serial drain hints the next
/// slab before computing the current one — double-buffering in both cases.
///
/// Quiesce() empties the queue and blocks until the thread is idle; the
/// store calls it before Grow (the epoch array is resized) and before
/// swapping the loader's file handle after a rebuild.
class Prefetcher {
 public:
  enum class LoadResult { kFetched, kAlreadyCached, kFailed };

  /// Decodes one source's record into the shared cache. Runs on the
  /// prefetch thread only. Errors are counted, never fatal.
  using Loader = std::function<LoadResult(VertexId)>;

  Prefetcher() = default;
  ~Prefetcher() { Stop(); }

  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  /// Spawns the background thread. No-op if already running.
  void Start(Loader loader);

  /// Joins the background thread (pending hints are abandoned).
  void Stop();

  bool running() const { return thread_.joinable(); }

  /// Enqueues sources for background decode (any thread; cheap copy).
  void Hint(std::span<const VertexId> sources);

  /// Clears pending hints and blocks until the in-flight fetch finished.
  void Quiesce();

  PrefetchStats stats() const;

 private:
  void Loop();

  static constexpr std::size_t kMaxQueuedBatches = 1024;

  Loader loader_;
  std::thread thread_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::vector<VertexId>> queue_;
  bool stop_ = false;
  bool busy_ = false;
  std::uint64_t clear_ticket_ = 0;  // bumped by Quiesce to abort mid-batch

  // Stats; counters written by the prefetch thread, hinted/dropped by
  // producers, all under mu_ (cold paths).
  PrefetchStats stats_;
};

}  // namespace sobc

#endif  // SOBC_STORAGE_PREFETCHER_H_
