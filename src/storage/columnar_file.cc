#include "storage/columnar_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/io.h"
#include "common/posix_io.h"

namespace sobc {

namespace {

constexpr std::uint64_t kMagic = 0x53424353544F5245ULL;  // "SBCSTORE"
// Version 2 widened the caller-managed header area from three to five
// 64-bit fields (DiskBdStore persists its record codec id and vertex
// capacity in the extra two).
constexpr std::uint32_t kVersion = 2;

struct FileHeader {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t num_columns;
  std::uint64_t entries_per_record;
  std::uint64_t num_records;
  std::uint64_t user_value;
  std::uint64_t user_aux0;
  std::uint64_t user_aux1;
  std::uint64_t user_aux2;
  std::uint64_t user_aux3;
};

std::uint64_t HeaderSize(std::size_t num_columns) {
  return sizeof(FileHeader) + num_columns * sizeof(std::uint64_t);
}

}  // namespace

ColumnarFile::~ColumnarFile() {
  if (map_ != nullptr) ::munmap(map_, map_size_);
  if (fd_ >= 0) Io::Get()->Close(fd_);
}

Status ColumnarFile::MapFile() {
  map_size_ = header_size_ + layout_.RecordStride() * layout_.num_records;
  // mmap/munmap stay raw: the map is process memory, not a fault-injection
  // surface, and the Io seam is deliberately syscall-shaped around fds.
  void* map = ::mmap(nullptr, map_size_, PROT_READ | PROT_WRITE, MAP_SHARED,
                     fd_, 0);
  if (map == MAP_FAILED) {
    map_ = nullptr;
    return ErrnoStatus("mmap", path_);
  }
  map_ = static_cast<char*>(map);
  return Status::OK();
}

Result<std::unique_ptr<ColumnarFile>> ColumnarFile::Create(
    const std::string& path, const ColumnarLayout& layout) {
  if (layout.column_widths.empty() || layout.entries_per_record == 0) {
    return Status::InvalidArgument("columnar layout must be non-empty");
  }
  Io* io = Io::Get();
  const int fd = io->Open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("open", path);

  const std::uint64_t header_size = HeaderSize(layout.column_widths.size());
  const std::uint64_t total =
      header_size + layout.RecordStride() * layout.num_records;
  if (io->Ftruncate(fd, static_cast<std::int64_t>(total)) != 0) {
    const Status st = ErrnoStatus("ftruncate", path);
    io->Close(fd);
    return st;
  }

  FileHeader header{};
  header.magic = kMagic;
  header.version = kVersion;
  header.num_columns = static_cast<std::uint32_t>(layout.column_widths.size());
  header.entries_per_record = layout.entries_per_record;
  header.num_records = layout.num_records;
  header.user_value = 0;
  header.user_aux0 = 0;
  header.user_aux1 = 0;
  header.user_aux2 = 0;
  header.user_aux3 = 0;
  Status st = PwriteFully(fd, &header, sizeof(header), 0, path);
  if (st.ok()) {
    st = PwriteFully(fd, layout.column_widths.data(),
                     layout.column_widths.size() * sizeof(std::uint64_t),
                     sizeof(header), path);
  }
  if (!st.ok()) {
    io->Close(fd);
    return st;
  }
  auto file = std::unique_ptr<ColumnarFile>(
      new ColumnarFile(fd, path, layout, 0, 0, 0, 0, 0, header_size));
  SOBC_RETURN_NOT_OK(file->MapFile());
  return file;
}

Result<std::unique_ptr<ColumnarFile>> ColumnarFile::Open(
    const std::string& path) {
  Io* io = Io::Get();
  const int fd = io->Open(path.c_str(), O_RDWR, 0);
  if (fd < 0) return ErrnoStatus("open", path);
  FileHeader header{};
  Status st = PreadFully(fd, &header, sizeof(header), 0, path);
  if (!st.ok()) {
    io->Close(fd);
    return st;
  }
  if (header.magic != kMagic) {
    io->Close(fd);
    return Status::IOError("not a sobc columnar file: " + path);
  }
  if (header.version != kVersion) {
    io->Close(fd);
    return Status::IOError(
        "unsupported sobc columnar file version " +
        std::to_string(header.version) + " (this build reads version " +
        std::to_string(kVersion) + "): " + path +
        "; re-create the store from its graph + stream");
  }
  ColumnarLayout layout;
  layout.entries_per_record = header.entries_per_record;
  layout.num_records = header.num_records;
  layout.column_widths.resize(header.num_columns);
  st = PreadFully(fd, layout.column_widths.data(),
                  header.num_columns * sizeof(std::uint64_t), sizeof(header),
                  path);
  if (!st.ok()) {
    io->Close(fd);
    return st;
  }
  auto file = std::unique_ptr<ColumnarFile>(
      new ColumnarFile(fd, path, layout, header.user_value, header.user_aux0,
                       header.user_aux1, header.user_aux2, header.user_aux3,
                       HeaderSize(header.num_columns)));
  SOBC_RETURN_NOT_OK(file->MapFile());
  return file;
}

std::uint64_t ColumnarFile::Offset(std::uint64_t record, std::size_t column,
                                   std::uint64_t first) const {
  return header_size_ + record * layout_.RecordStride() +
         layout_.ColumnOffset(column) + first * layout_.column_widths[column];
}

Status ColumnarFile::CheckBounds(std::uint64_t record, std::size_t column,
                                 std::uint64_t first,
                                 std::uint64_t count) const {
  if (record >= layout_.num_records ||
      column >= layout_.column_widths.size() ||
      first + count > layout_.entries_per_record) {
    return Status::OutOfRange("columnar access out of bounds in " + path_);
  }
  return Status::OK();
}

Status ColumnarFile::Read(std::uint64_t record, std::size_t column,
                          std::uint64_t first, std::uint64_t count,
                          void* out) const {
  SOBC_RETURN_NOT_OK(CheckBounds(record, column, first, count));
  std::memcpy(out, map_ + Offset(record, column, first),
              count * layout_.column_widths[column]);
  return Status::OK();
}

Status ColumnarFile::Write(std::uint64_t record, std::size_t column,
                           std::uint64_t first, std::uint64_t count,
                           const void* data) {
  SOBC_RETURN_NOT_OK(CheckBounds(record, column, first, count));
  std::memcpy(map_ + Offset(record, column, first), data,
              count * layout_.column_widths[column]);
  return Status::OK();
}

Status ColumnarFile::ReadSpan(std::uint64_t record, std::uint64_t byte_offset,
                              std::uint64_t num_bytes, void* out) const {
  if (record >= layout_.num_records ||
      byte_offset + num_bytes > layout_.RecordStride()) {
    return Status::OutOfRange("record span out of bounds in " + path_);
  }
  std::memcpy(out,
              map_ + header_size_ + record * layout_.RecordStride() +
                  byte_offset,
              num_bytes);
  return Status::OK();
}

Status ColumnarFile::WriteSpan(std::uint64_t record, std::uint64_t byte_offset,
                               std::uint64_t num_bytes, const void* data) {
  if (record >= layout_.num_records ||
      byte_offset + num_bytes > layout_.RecordStride()) {
    return Status::OutOfRange("record span out of bounds in " + path_);
  }
  std::memcpy(map_ + header_size_ + record * layout_.RecordStride() +
                  byte_offset,
              data, num_bytes);
  return Status::OK();
}

Status ColumnarFile::SetUserValue(std::uint64_t value) {
  user_value_ = value;
  std::memcpy(map_ + offsetof(FileHeader, user_value), &value, sizeof(value));
  return Status::OK();
}

Status ColumnarFile::SetUserAux(std::uint64_t aux0, std::uint64_t aux1) {
  user_aux_[0] = aux0;
  user_aux_[1] = aux1;
  std::memcpy(map_ + offsetof(FileHeader, user_aux0), &aux0, sizeof(aux0));
  std::memcpy(map_ + offsetof(FileHeader, user_aux1), &aux1, sizeof(aux1));
  return Status::OK();
}

Status ColumnarFile::SetUserAuxHigh(std::uint64_t aux2, std::uint64_t aux3) {
  user_aux_[2] = aux2;
  user_aux_[3] = aux3;
  std::memcpy(map_ + offsetof(FileHeader, user_aux2), &aux2, sizeof(aux2));
  std::memcpy(map_ + offsetof(FileHeader, user_aux3), &aux3, sizeof(aux3));
  return Status::OK();
}

Status ColumnarFile::Sync() {
  Io* io = Io::Get();
  if (map_ != nullptr && io->Msync(map_, map_size_, MS_SYNC) != 0) {
    return ErrnoStatus("msync", path_);
  }
  if (io->Fsync(fd_) != 0) return ErrnoStatus("fsync", path_);
  return Status::OK();
}

}  // namespace sobc
