#include "storage/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>
#include <utility>
#include <vector>

#include "bc/score_io.h"
#include "common/crc32.h"
#include "common/io.h"
#include "common/posix_io.h"
#include "common/timer.h"
#include "graph/graph_io.h"
#include "storage/wal.h"

namespace sobc {

namespace {

namespace fs = std::filesystem;

constexpr std::string_view kManifestPrefix = "MANIFEST-";
constexpr std::string_view kCurrentName = "CURRENT";

/// Writes `content` to `path` atomically: temp file + fsync + rename +
/// directory fsync. The unit every manifest/CURRENT update is built from.
Status WriteFileAtomic(const std::string& dir, const std::string& name,
                       const std::string& content) {
  const std::string tmp = dir + "/" + name + ".tmp";
  const std::string final_path = dir + "/" + name;
  Io* io = Io::Get();
  const int fd = io->Open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("open", tmp);
  if (Status st = WriteFully(fd, content.data(), content.size(), tmp);
      !st.ok()) {
    io->Close(fd);
    return st;
  }
  if (io->Fsync(fd) != 0) {
    const Status st = ErrnoStatus("fsync", tmp);
    io->Close(fd);
    return st;
  }
  io->Close(fd);
  if (io->Rename(tmp.c_str(), final_path.c_str()) != 0) {
    return ErrnoStatus("rename", tmp);
  }
  return SyncDir(dir);
}

/// Manifest files of `dir`, newest epoch first.
Result<std::vector<std::pair<std::uint64_t, std::string>>> ListManifests(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> manifests;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.compare(0, kManifestPrefix.size(), kManifestPrefix) != 0 ||
        name.size() <= kManifestPrefix.size() ||
        name.find(".tmp") != std::string::npos) {
      continue;
    }
    const std::string digits = name.substr(kManifestPrefix.size());
    if (digits.find_first_not_of("0123456789") != std::string::npos) continue;
    manifests.emplace_back(std::strtoull(digits.c_str(), nullptr, 10),
                           entry.path().string());
  }
  if (ec) {
    return Status::IOError("cannot list checkpoint dir " + dir + ": " +
                           ec.message());
  }
  std::sort(manifests.begin(), manifests.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return manifests;
}

std::string RenderManifest(const CheckpointManifest& manifest) {
  std::ostringstream out;
  out << "sobc-checkpoint 1\n";
  out << "epoch " << manifest.epoch << "\n";
  out << "stream_position " << manifest.stream_position << "\n";
  out << "directed " << (manifest.directed ? 1 : 0) << "\n";
  out << "num_vertices " << manifest.num_vertices << "\n";
  out << "variant " << manifest.variant << "\n";
  // Written only for scoped (cluster-shard) deployments: pre-cluster
  // readers skip unknown keys, and absent keys parse back as the
  // full-range defaults, so the format stays compatible both ways.
  if (manifest.source_begin != 0 || manifest.source_end != kInvalidVertex) {
    out << "source_begin " << manifest.source_begin << "\n";
    out << "source_end " << manifest.source_end << "\n";
  }
  out << "graph " << manifest.graph_file << "\n";
  out << "scores " << manifest.scores_file << "\n";
  char crc_buf[16];
  std::snprintf(crc_buf, sizeof(crc_buf), "%08x", manifest.graph_crc);
  out << "graph_crc " << crc_buf << "\n";
  std::snprintf(crc_buf, sizeof(crc_buf), "%08x", manifest.scores_crc);
  out << "scores_crc " << crc_buf << "\n";
  if (!manifest.store_file.empty()) {
    out << "store " << manifest.store_file << "\n";
    out << "store_codec " << manifest.store_codec << "\n";
    std::snprintf(crc_buf, sizeof(crc_buf), "%08x", manifest.store_crc);
    out << "store_crc " << crc_buf << "\n";
  }
  // Sampled deployments only; pre-approx readers skip the unknown keys.
  if (!manifest.samples_file.empty()) {
    out << "samples " << manifest.samples_file << "\n";
    std::snprintf(crc_buf, sizeof(crc_buf), "%08x", manifest.samples_crc);
    out << "samples_crc " << crc_buf << "\n";
  }
  std::string body = out.str();
  char crc_line[32];
  std::snprintf(crc_line, sizeof(crc_line), "crc %08x\n",
                Crc32(body.data(), body.size()));
  return body + crc_line;
}

}  // namespace

std::string ManifestName(std::uint64_t epoch) {
  return std::string(kManifestPrefix) + std::to_string(epoch);
}

Status WriteManifest(const std::string& dir,
                     const CheckpointManifest& manifest) {
  SOBC_RETURN_NOT_OK(
      WriteFileAtomic(dir, ManifestName(manifest.epoch),
                      RenderManifest(manifest)));
  // CURRENT is a convenience pointer, not the source of truth: recovery
  // falls back to scanning MANIFEST-* files when it is stale or torn.
  return WriteFileAtomic(dir, std::string(kCurrentName),
                         ManifestName(manifest.epoch) + "\n");
}

Result<CheckpointManifest> ReadManifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open manifest: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  const std::size_t crc_at = content.rfind("crc ");
  if (crc_at == std::string::npos || crc_at == 0 ||
      content[crc_at - 1] != '\n') {
    return Status::IOError("manifest missing checksum: " + path);
  }
  const std::uint32_t expected = static_cast<std::uint32_t>(
      std::strtoul(content.c_str() + crc_at + 4, nullptr, 16));
  if (Crc32(content.data(), crc_at) != expected) {
    return Status::IOError("manifest checksum mismatch: " + path);
  }
  CheckpointManifest manifest;
  std::istringstream lines(content.substr(0, crc_at));
  std::string line;
  if (!std::getline(lines, line) || line != "sobc-checkpoint 1") {
    return Status::IOError("not a sobc checkpoint manifest: " + path);
  }
  while (std::getline(lines, line)) {
    std::istringstream tokens(line);
    std::string key, value;
    if (!(tokens >> key >> value)) continue;
    if (key == "epoch") {
      manifest.epoch = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "stream_position") {
      manifest.stream_position = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "directed") {
      manifest.directed = value == "1";
    } else if (key == "num_vertices") {
      manifest.num_vertices = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "variant") {
      manifest.variant = value;
    } else if (key == "source_begin") {
      manifest.source_begin = static_cast<VertexId>(
          std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "source_end") {
      manifest.source_end = static_cast<VertexId>(
          std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "graph") {
      manifest.graph_file = value;
    } else if (key == "scores") {
      manifest.scores_file = value;
    } else if (key == "store") {
      manifest.store_file = value;
    } else if (key == "store_codec") {
      manifest.store_codec = value;
    } else if (key == "graph_crc") {
      manifest.graph_crc = static_cast<std::uint32_t>(
          std::strtoul(value.c_str(), nullptr, 16));
    } else if (key == "scores_crc") {
      manifest.scores_crc = static_cast<std::uint32_t>(
          std::strtoul(value.c_str(), nullptr, 16));
    } else if (key == "store_crc") {
      manifest.store_crc = static_cast<std::uint32_t>(
          std::strtoul(value.c_str(), nullptr, 16));
    } else if (key == "samples") {
      manifest.samples_file = value;
    } else if (key == "samples_crc") {
      manifest.samples_crc = static_cast<std::uint32_t>(
          std::strtoul(value.c_str(), nullptr, 16));
    }
  }
  if (manifest.graph_file.empty() || manifest.scores_file.empty()) {
    return Status::IOError("manifest names no state files: " + path);
  }
  return manifest;
}

namespace {

/// Loads the state one manifest names; any failure makes the caller fall
/// back to an older manifest.
Result<LoadedCheckpoint> LoadFromManifest(const std::string& dir,
                                          const std::string& manifest_path) {
  auto manifest = ReadManifest(manifest_path);
  if (!manifest.ok()) return manifest.status();
  // Content verification before parsing: a failure here (like any other
  // failure in this function) sends the caller down the fallback ladder
  // to an older checkpoint instead of recovering onto corrupt state.
  auto verify_crc = [&](const std::string& file,
                        std::uint32_t expected) -> Status {
    auto actual = FileCrc32(dir + "/" + file);
    if (!actual.ok()) return actual.status();
    if (*actual != expected) {
      return Status::IOError("checkpoint state file corrupt (crc): " + file);
    }
    return Status::OK();
  };
  SOBC_RETURN_NOT_OK(verify_crc(manifest->graph_file, manifest->graph_crc));
  SOBC_RETURN_NOT_OK(verify_crc(manifest->scores_file, manifest->scores_crc));
  if (!manifest->store_file.empty()) {
    SOBC_RETURN_NOT_OK(verify_crc(manifest->store_file, manifest->store_crc));
  }
  auto graph = ReadAdjacency(dir + "/" + manifest->graph_file);
  if (!graph.ok()) return graph.status();
  if (graph->directed() != manifest->directed) {
    return Status::IOError("checkpoint graph directedness disagrees with "
                           "the manifest");
  }
  if (graph->NumVertices() != manifest->num_vertices) {
    return Status::IOError("checkpoint graph has " +
                           std::to_string(graph->NumVertices()) +
                           " vertices, manifest says " +
                           std::to_string(manifest->num_vertices));
  }
  auto scores = ReadScores(dir + "/" + manifest->scores_file);
  if (!scores.ok()) return scores.status();
  if (scores->vbc.size() != manifest->num_vertices) {
    return Status::IOError("checkpoint scores do not match the graph");
  }
  LoadedCheckpoint loaded;
  if (!manifest->store_file.empty()) {
    loaded.store_path = dir + "/" + manifest->store_file;
    if (!fs::exists(loaded.store_path)) {
      return Status::IOError("checkpoint store file missing: " +
                             loaded.store_path);
    }
  }
  if (!manifest->samples_file.empty()) {
    const std::string samples_path = dir + "/" + manifest->samples_file;
    std::ifstream samples_in(samples_path, std::ios::binary);
    if (!samples_in) {
      return Status::IOError("checkpoint samples file missing: " +
                             samples_path);
    }
    std::ostringstream samples_buffer;
    samples_buffer << samples_in.rdbuf();
    loaded.samples_blob = samples_buffer.str();
    if (Crc32(loaded.samples_blob.data(), loaded.samples_blob.size()) !=
        manifest->samples_crc) {
      return Status::IOError("checkpoint samples file corrupt (crc): " +
                             manifest->samples_file);
    }
  }
  loaded.manifest = std::move(*manifest);
  loaded.graph = std::move(*graph);
  loaded.scores = std::move(*scores);
  return loaded;
}

}  // namespace

Result<bool> CheckpointDirHasManifests(const std::string& dir) {
  if (!fs::exists(dir)) return false;
  auto manifests = ListManifests(dir);
  if (!manifests.ok()) return manifests.status();
  return !manifests->empty();
}

Result<LoadedCheckpoint> LoadLatestCheckpoint(const std::string& dir) {
  if (!fs::exists(dir)) {
    return Status::NotFound("checkpoint dir does not exist: " + dir);
  }
  // Candidate order: CURRENT's target first, then every manifest newest
  // first. Trying them in turn is what makes recovery survive a crash at
  // any point of the checkpoint protocol — a half-written newest
  // checkpoint simply loses to its predecessor.
  std::vector<std::string> candidates;
  {
    std::ifstream current(dir + "/" + std::string(kCurrentName));
    std::string name;
    if (current && std::getline(current, name) && !name.empty()) {
      candidates.push_back(dir + "/" + name);
    }
  }
  auto manifests = ListManifests(dir);
  if (!manifests.ok()) return manifests.status();
  for (const auto& [epoch, path] : *manifests) {
    if (candidates.empty() || candidates.front() != path) {
      candidates.push_back(path);
    }
  }
  Status last_error =
      Status::NotFound("no usable checkpoint in " + dir);
  for (const std::string& path : candidates) {
    auto loaded = LoadFromManifest(dir, path);
    if (loaded.ok()) return loaded;
    last_error = loaded.status();
  }
  return last_error;
}

Result<std::size_t> PruneCheckpoints(const std::string& dir,
                                     std::size_t keep) {
  auto manifests = ListManifests(dir);
  if (!manifests.ok()) return manifests.status();
  std::size_t valid_kept = 0;
  std::size_t removed = 0;
  for (const auto& [epoch, path] : *manifests) {
    auto manifest = ReadManifest(path);
    if (manifest.ok() && valid_kept < keep) {
      ++valid_kept;
      continue;
    }
    // Either surplus or unreadable: drop the manifest first (the commit
    // record), then the state files it names.
    Io* io = Io::Get();
    if (io->Unlink(path.c_str()) != 0) continue;
    ++removed;
    if (manifest.ok()) {
      (void)io->Unlink((dir + "/" + manifest->graph_file).c_str());
      (void)io->Unlink((dir + "/" + manifest->scores_file).c_str());
      if (!manifest->store_file.empty()) {
        (void)io->Unlink((dir + "/" + manifest->store_file).c_str());
      }
      if (!manifest->samples_file.empty()) {
        (void)io->Unlink((dir + "/" + manifest->samples_file).c_str());
      }
    }
  }
  if (removed > 0) SOBC_RETURN_NOT_OK(SyncDir(dir));
  return removed;
}

Status CopyFile(const std::string& from, const std::string& to,
                std::uint32_t* crc) {
  {
    // Opening the destination truncates it: copying a file onto itself
    // (e.g. `recover --store=` aimed at the checkpointed copy) would
    // destroy the source before a byte is read.
    std::error_code ec;
    if (fs::equivalent(from, to, ec) && !ec) {
      return Status::InvalidArgument(
          "copy source and destination are the same file: " + from);
    }
  }
  Io* io = Io::Get();
  const int src = io->Open(from.c_str(), O_RDONLY, 0);
  if (src < 0) return ErrnoStatus("open", from);
  const int dst = io->Open(to.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (dst < 0) {
    io->Close(src);
    return ErrnoStatus("open", to);
  }
  std::vector<char> buffer(1 << 20);
  Status status;
  std::uint32_t running_crc = 0;
  for (;;) {
    std::size_t got = 0;
    status = ReadUpTo(src, buffer.data(), buffer.size(), &got, from);
    if (!status.ok() || got == 0) break;
    running_crc = Crc32(buffer.data(), got, running_crc);
    status = WriteFully(dst, buffer.data(), got, to);
    if (!status.ok()) break;
    if (got < buffer.size()) break;  // end of file
  }
  if (status.ok() && io->Fsync(dst) != 0) status = ErrnoStatus("fsync", to);
  io->Close(src);
  io->Close(dst);
  if (status.ok() && crc != nullptr) *crc = running_crc;
  return status;
}

Result<std::uint32_t> FileCrc32(const std::string& path) {
  Io* io = Io::Get();
  const int fd = io->Open(path.c_str(), O_RDONLY, 0);
  if (fd < 0) return ErrnoStatus("open", path);
  std::vector<char> buffer(1 << 20);
  std::uint32_t crc = 0;
  Status status;
  for (;;) {
    std::size_t got = 0;
    status = ReadUpTo(fd, buffer.data(), buffer.size(), &got, path);
    if (!status.ok() || got == 0) break;
    crc = Crc32(buffer.data(), got, crc);
    if (got < buffer.size()) break;  // end of file
  }
  io->Close(fd);
  if (!status.ok()) return status;
  return crc;
}

CheckpointWriter::CheckpointWriter(std::string dir, std::string wal_dir,
                                   std::size_t retain)
    : dir_(std::move(dir)),
      wal_dir_(std::move(wal_dir)),
      retain_(retain == 0 ? 1 : retain) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  worker_ = std::thread([this] { Loop(); });
}

CheckpointWriter::~CheckpointWriter() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

bool CheckpointWriter::AdmitTrigger() {
  std::lock_guard<std::mutex> lock(mu_);
  if (busy_ || pending_.has_value()) {
    skipped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

bool CheckpointWriter::Enqueue(Job job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (busy_ || pending_.has_value()) {
      skipped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    pending_ = std::move(job);
  }
  cv_.notify_all();
  return true;
}

Status CheckpointWriter::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !busy_ && !pending_.has_value(); });
  return error_;
}

Status CheckpointWriter::WriteNow(Job job) {
  // Claim the single in-flight slot so the worker and a synchronous write
  // never serialize state concurrently.
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return !busy_ && !pending_.has_value(); });
    busy_ = true;
  }
  const Status status = WriteJob(job);
  {
    std::lock_guard<std::mutex> lock(mu_);
    busy_ = false;
    if (!status.ok() && error_.ok()) error_ = status;
  }
  cv_.notify_all();
  return status;
}

void CheckpointWriter::Loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || pending_.has_value(); });
      if (stop_ && !pending_.has_value()) return;
      job = std::move(*pending_);
      pending_.reset();
      busy_ = true;
    }
    const Status status = WriteJob(job);
    {
      std::lock_guard<std::mutex> lock(mu_);
      busy_ = false;
      if (!status.ok() && error_.ok()) error_ = status;
    }
    cv_.notify_all();
  }
}

Status CheckpointWriter::WriteJob(const Job& job) {
  WallTimer timer;
  auto fail = [this](Status status) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    return status;
  };
  const std::string epoch_tag = std::to_string(job.epoch);
  CheckpointManifest manifest;
  manifest.epoch = job.epoch;
  manifest.stream_position = job.stream_position;
  manifest.directed = job.graph.directed();
  manifest.num_vertices = job.graph.NumVertices();
  manifest.variant = job.variant;
  manifest.source_begin = job.source_begin;
  manifest.source_end = job.source_end;
  // Adjacency dump, not an edge list: neighbor order must survive the
  // round trip or recovery replay diverges by summation order.
  manifest.graph_file = "graph-" + epoch_tag + ".adj";
  manifest.scores_file = "scores-" + epoch_tag + ".bin";
  manifest.store_file = job.store_file;
  manifest.store_codec = job.store_codec;
  manifest.store_crc = job.store_crc;

  // State-file CRCs are computed inline by the writers — no read-back.
  Status st = WriteAdjacency(job.graph, dir_ + "/" + manifest.graph_file,
                             &manifest.graph_crc);
  if (st.ok()) st = SyncFile(dir_ + "/" + manifest.graph_file);
  if (st.ok()) {
    st = WriteScores(job.scores, dir_ + "/" + manifest.scores_file,
                     &manifest.scores_crc);
  }
  if (st.ok()) st = SyncFile(dir_ + "/" + manifest.scores_file);
  if (st.ok() && !job.samples_blob.empty()) {
    // The sample-set state rides the same commit protocol as the score
    // columns: durable before the manifest names it, CRC of the in-memory
    // blob (WriteFileAtomic fsyncs, so no read-back needed).
    manifest.samples_file = "samples-" + epoch_tag + ".bin";
    manifest.samples_crc =
        Crc32(job.samples_blob.data(), job.samples_blob.size());
    st = WriteFileAtomic(dir_, manifest.samples_file, job.samples_blob);
  }
  // The manifest is the commit point: state files are durable before it
  // exists, so no manifest ever names half-written state.
  if (st.ok()) st = WriteManifest(dir_, manifest);
  if (!st.ok()) return fail(std::move(st));

  written_.fetch_add(1, std::memory_order_relaxed);
  last_epoch_.store(job.epoch, std::memory_order_relaxed);
  write_seconds_total_.store(
      write_seconds_total_.load(std::memory_order_relaxed) + timer.Seconds(),
      std::memory_order_relaxed);

  // Housekeeping after the commit: retention and WAL coverage pruning are
  // best-effort (a failure here never invalidates the checkpoint). WAL
  // retention aligns with the *oldest retained* checkpoint, not the one
  // just committed — every retained manifest must stay a viable recovery
  // root, and falling back to it needs the WAL tail after its epoch.
  (void)PruneCheckpoints(dir_, retain_);
  if (!wal_dir_.empty()) {
    std::uint64_t oldest_retained = job.epoch;
    if (auto manifests = ListManifests(dir_); manifests.ok()) {
      for (const auto& [epoch, path] : *manifests) {
        oldest_retained = std::min(oldest_retained, epoch);
      }
    }
    (void)PruneWalSegments(wal_dir_, oldest_retained);
  }
  return Status::OK();
}

CheckpointStats CheckpointWriter::stats() const {
  CheckpointStats stats;
  stats.written = written_.load(std::memory_order_relaxed);
  stats.skipped = skipped_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.last_epoch = last_epoch_.load(std::memory_order_relaxed);
  stats.write_seconds_total =
      write_seconds_total_.load(std::memory_order_relaxed);
  return stats;
}

namespace {

// Little-endian scalar helpers of the migration-image format. The image
// is already CRC-protected at the frame layer and again end-to-end by
// MigrateCommit, so the codec only needs structure checks.

void ImagePutU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

bool ImageGetU32(const std::string& in, std::size_t* pos, std::uint32_t* v) {
  if (in.size() - *pos < 4) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<std::uint32_t>(
              static_cast<std::uint8_t>(in[*pos + i]))
          << (8 * i);
  }
  *pos += 4;
  return true;
}

void ImagePutLists(std::string* out,
                   const Graph& graph, bool inbound) {
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    const auto list = inbound ? graph.InNeighbors(v) : graph.OutNeighbors(v);
    ImagePutU32(out, static_cast<std::uint32_t>(list.size()));
    for (VertexId id : list) ImagePutU32(out, id);
  }
}

Result<std::vector<std::vector<VertexId>>> ImageGetLists(
    const std::string& image, std::size_t* pos, std::uint32_t n) {
  std::vector<std::vector<VertexId>> lists(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    std::uint32_t count = 0;
    if (!ImageGetU32(image, pos, &count) ||
        count > (image.size() - *pos) / 4) {
      return Status::IOError("truncated migration image");
    }
    lists[v].reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      std::uint32_t id = 0;
      ImageGetU32(image, pos, &id);
      lists[v].push_back(id);
    }
  }
  return lists;
}

}  // namespace

std::string ExportMigrationImage(const Graph& graph) {
  std::string out;
  out.push_back(graph.directed() ? 1 : 0);
  ImagePutU32(&out, static_cast<std::uint32_t>(graph.NumVertices()));
  ImagePutLists(&out, graph, /*inbound=*/false);
  if (graph.directed()) ImagePutLists(&out, graph, /*inbound=*/true);
  return out;
}

Result<Graph> ImportMigrationImage(const std::string& image) {
  if (image.empty()) return Status::IOError("empty migration image");
  std::size_t pos = 0;
  const bool directed = image[pos++] != 0;
  std::uint32_t n = 0;
  if (!ImageGetU32(image, &pos, &n)) {
    return Status::IOError("truncated migration image");
  }
  auto out_lists = ImageGetLists(image, &pos, n);
  SOBC_RETURN_NOT_OK(out_lists.status());
  std::vector<std::vector<VertexId>> in_lists;
  if (directed) {
    auto in = ImageGetLists(image, &pos, n);
    SOBC_RETURN_NOT_OK(in.status());
    in_lists = std::move(*in);
  }
  if (pos != image.size()) {
    return Status::IOError("trailing bytes after the migration image");
  }
  return Graph::FromAdjacency(directed, std::move(*out_lists),
                              std::move(in_lists));
}

}  // namespace sobc
