#include "storage/record_codec.h"

#include <cstring>

namespace sobc {

const char* RecordCodecName(RecordCodecId id) {
  switch (id) {
    case RecordCodecId::kRaw:
      return "raw";
    case RecordCodecId::kDelta:
      return "delta";
  }
  return "unknown";
}

Result<RecordCodecId> ParseRecordCodec(std::string_view name) {
  if (name == "raw") return RecordCodecId::kRaw;
  if (name == "delta") return RecordCodecId::kDelta;
  return Status::InvalidArgument("unknown record codec '" + std::string(name) +
                                 "' (raw|delta)");
}

Result<std::uint16_t> EncodeDistance16(Distance d) {
  if (d != kUnreachable && d > kMaxRawDistance) {
    return Status::OutOfRange(
        "distance " + std::to_string(d) +
        " exceeds the raw codec's 16-bit encoding (use the delta codec "
        "for diameters above " +
        std::to_string(kMaxRawDistance) + ")");
  }
  return EncodeDistance16Unchecked(d);
}

void PutVarint64(std::uint64_t value, std::vector<std::uint8_t>* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<std::uint8_t>(value));
}

std::size_t GetVarint64(const std::uint8_t* data, std::size_t len,
                        std::uint64_t* value) {
  std::uint64_t result = 0;
  std::size_t shift = 0;
  for (std::size_t i = 0; i < len && shift < 64; ++i) {
    const std::uint8_t byte = data[i];
    result |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return i + 1;
    }
    shift += 7;
  }
  return 0;  // truncated or overlong
}

namespace {

Status Corrupt() { return Status::IOError("corrupt encoded BD record"); }

/// The kDelta blob: three sections back to back, no section headers — the
/// decoder knows n and each section is self-delimiting.
class DeltaRecordCodec final : public RecordCodec {
 public:
  RecordCodecId id() const override { return RecordCodecId::kDelta; }

  std::size_t MaxEncodedBytes(std::size_t n) const override {
    // d: <=5 bytes per zigzag varint of a 33-bit delta; sigma: worst case
    // alternating values, 1-byte run + 10-byte varint each; delta: worst
    // case alternating zero/literal runs, 1 + 1 + 8 bytes per two entries
    // (bounded by 10 per entry). Plus slack for the trailing run headers.
    return 5 * n + 11 * n + 10 * n + 16;
  }

  void Encode(const Distance* d, const PathCount* sigma, const double* delta,
              std::size_t n, std::vector<std::uint8_t>* out) const override {
    out->clear();
    out->reserve(n * 4 + 16);
    // d section: zigzag varint of consecutive biased-distance differences.
    // Biased (unreachable = 0, else d+1) keeps the dominant case — long
    // stretches of near-equal BFS levels — in one byte per vertex.
    std::int64_t prev = 0;
    for (std::size_t v = 0; v < n; ++v) {
      const std::int64_t biased =
          d[v] == kUnreachable ? 0
                               : static_cast<std::int64_t>(d[v]) + 1;
      PutVarint64(ZigZagEncode64(biased - prev), out);
      prev = biased;
    }
    // sigma section: run-length pairs (varint run, varint value).
    for (std::size_t v = 0; v < n;) {
      std::size_t run = 1;
      while (v + run < n && sigma[v + run] == sigma[v]) ++run;
      PutVarint64(run, out);
      PutVarint64(sigma[v], out);
      v += run;
    }
    // delta section: alternating (varint zero-run, varint literal-run,
    // literal doubles). Exact — literals are raw 8-byte IEEE doubles.
    for (std::size_t v = 0; v < n;) {
      std::size_t zeros = 0;
      while (v + zeros < n && delta[v + zeros] == 0.0) ++zeros;
      std::size_t lits = 0;
      while (v + zeros + lits < n && delta[v + zeros + lits] != 0.0) ++lits;
      PutVarint64(zeros, out);
      PutVarint64(lits, out);
      const std::size_t at = out->size();
      out->resize(at + lits * sizeof(double));
      std::memcpy(out->data() + at, delta + v + zeros, lits * sizeof(double));
      v += zeros + lits;
    }
  }

  Status Decode(const std::uint8_t* data, std::size_t len, std::size_t n,
                Distance* d, PathCount* sigma, double* delta) const override {
    std::size_t pos = 0;
    SOBC_RETURN_NOT_OK(DecodeDSection(data, len, n, n, d, &pos));
    // sigma section.
    for (std::size_t v = 0; v < n;) {
      std::uint64_t run = 0;
      std::uint64_t value = 0;
      std::size_t used = GetVarint64(data + pos, len - pos, &run);
      if (used == 0) return Corrupt();
      pos += used;
      used = GetVarint64(data + pos, len - pos, &value);
      if (used == 0) return Corrupt();
      pos += used;
      if (run == 0 || run > n - v) return Corrupt();
      for (std::uint64_t i = 0; i < run; ++i) sigma[v + i] = value;
      v += run;
    }
    // delta section.
    for (std::size_t v = 0; v < n;) {
      std::uint64_t zeros = 0;
      std::uint64_t lits = 0;
      std::size_t used = GetVarint64(data + pos, len - pos, &zeros);
      if (used == 0) return Corrupt();
      pos += used;
      used = GetVarint64(data + pos, len - pos, &lits);
      if (used == 0) return Corrupt();
      pos += used;
      // Bound each count individually before summing — a corrupt blob
      // could otherwise wrap zeros + lits around 2^64 and slip past the
      // combined check into a huge out-of-bounds write.
      if (zeros > n - v || lits > n - v - zeros) return Corrupt();
      if (zeros + lits == 0) return Corrupt();
      for (std::uint64_t i = 0; i < zeros; ++i) delta[v + i] = 0.0;
      if (lits * sizeof(double) > len - pos) return Corrupt();
      std::memcpy(delta + v + zeros, data + pos, lits * sizeof(double));
      pos += lits * sizeof(double);
      v += zeros + lits;
    }
    return Status::OK();
  }

  Status DecodeDistances(const std::uint8_t* data, std::size_t len,
                         std::size_t n, std::size_t limit,
                         Distance* d) const override {
    std::size_t pos = 0;
    return DecodeDSection(data, len, n, limit, d, &pos);
  }

 private:
  static Status DecodeDSection(const std::uint8_t* data, std::size_t len,
                               std::size_t n, std::size_t limit, Distance* d,
                               std::size_t* pos) {
    std::int64_t prev = 0;
    for (std::size_t v = 0; v < limit; ++v) {
      std::uint64_t raw = 0;
      const std::size_t used = GetVarint64(data + *pos, len - *pos, &raw);
      if (used == 0) return Corrupt();
      *pos += used;
      const std::int64_t biased = prev + ZigZagDecode64(raw);
      if (biased < 0 || biased > static_cast<std::int64_t>(kUnreachable)) {
        return Corrupt();
      }
      d[v] = biased == 0 ? kUnreachable : static_cast<Distance>(biased - 1);
      prev = biased;
    }
    (void)n;
    return Status::OK();
  }
};

}  // namespace

const RecordCodec& RecordCodec::Get(RecordCodecId id) {
  // kRaw never reaches the blob interface — DiskBdStore keeps its columnar
  // fixed-width fast path for it — so delta is the only blob codec today.
  static const DeltaRecordCodec delta;
  (void)id;
  return delta;
}

}  // namespace sobc
