#ifndef SOBC_STORAGE_RECORD_CACHE_H_
#define SOBC_STORAGE_RECORD_CACHE_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "bc/bc_types.h"

namespace sobc {

/// One decoded BD record, immutable once published through the cache.
/// Writers never mutate a published record: Apply builds a patched copy,
/// writes it to the file, bumps the record's epoch, and inserts the copy —
/// so any pin held by another handle (or by the prefetcher) keeps observing
/// the consistent pre-update record, and the epoch mismatch retires it from
/// the cache on its next lookup.
struct CachedRecord {
  std::uint64_t key = 0;         // record index within the backing file
  std::uint64_t generation = 0;  // cache generation it was decoded under
  std::uint32_t epoch = 0;       // record epoch it was decoded under
  std::vector<Distance> d;
  std::vector<PathCount> sigma;
  std::vector<double> delta;
  /// Write-back state (the compressed codec defers file writes): true
  /// while this version exists only in the cache. Cleared by the thread
  /// that encodes it to the file; the columns themselves stay immutable.
  mutable std::atomic<bool> dirty{false};

  CachedRecord() = default;
  /// The copy-on-write copy starts clean; everything else carries over.
  CachedRecord(const CachedRecord& other)
      : key(other.key),
        generation(other.generation),
        epoch(other.epoch),
        d(other.d),
        sigma(other.sigma),
        delta(other.delta) {}
  CachedRecord& operator=(const CachedRecord&) = delete;

  std::size_t ByteSize() const {
    return sizeof(CachedRecord) + d.capacity() * sizeof(Distance) +
           sigma.capacity() * sizeof(PathCount) +
           delta.capacity() * sizeof(double);
  }
};

/// The shared state behind every handle of one DiskBdStore backing file:
/// a sharded LRU of decoded records plus the validation metadata that makes
/// sharing safe without any manual invalidation protocol.
///
///   * per-record epochs — bumped by the writer after each Apply/PutInitial
///     file write; a cached record is served only while its stamped epoch
///     equals the record's current epoch, so a handle can never read another
///     handle's stale decode (this replaces the deleted
///     BdStore::InvalidateCache discipline);
///   * a generation counter — bumped by Grow (record length and file layout
///     change), retiring every cached record at once;
///   * striped record-I/O locks — the prefetcher decodes records ahead of
///     the compute workers over the same mmap, so byte-level file access to
///     one record is serialized through a small mutex stripe (disjoint
///     records almost never share a stripe, and writers of one drain touch
///     disjoint records by construction).
///
/// All methods are thread-safe except InvalidateAll, which the owner must
/// call quiesced (no concurrent readers/writers/prefetch — the discipline
/// Grow already follows).
class RecordCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;
    std::uint64_t stale_discards = 0;  // inserts rejected by epoch/gen check
    /// Inserts rejected because one decoded record exceeds a whole
    /// shard's budget (capacity/16): the cache is effectively disabled
    /// for this record size — raise the budget to at least 16x the
    /// decoded record size.
    std::uint64_t oversize_rejects = 0;
    std::uint64_t bytes = 0;           // decoded bytes currently resident
    std::uint64_t entries = 0;
    std::uint64_t capacity_bytes = 0;

    double HitRate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };

  /// `capacity_bytes` bounds the decoded-record footprint (0 = cache every
  /// lookup misses, epochs still tracked); `num_records` sizes the epoch
  /// array (the backing file's record capacity).
  RecordCache(std::size_t capacity_bytes, std::size_t num_records);

  // --- record epochs -------------------------------------------------------

  std::uint32_t Epoch(std::uint64_t key) const {
    return epochs_[key].load(std::memory_order_acquire);
  }
  /// Called by a writer after its file write completed; returns the new
  /// epoch. Readers that sampled the old epoch discard what they decoded.
  std::uint32_t BumpEpoch(std::uint64_t key) {
    return epochs_[key].fetch_add(1, std::memory_order_acq_rel) + 1;
  }
  std::uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Last record version encoded to the backing file. While a dirty
  /// version sits in the cache, FlushedEpoch(key) < Epoch(key); the two
  /// are equal exactly when the file holds the current version — the
  /// invariant file readers wait on (a miss with flushed < epoch means an
  /// evicted dirty record's write-back is in flight).
  std::uint32_t FlushedEpoch(std::uint64_t key) const {
    return flushed_[key].load(std::memory_order_acquire);
  }
  /// Called under the record's I/O stripe lock after writing its bytes.
  void SetFlushedEpoch(std::uint64_t key, std::uint32_t epoch) {
    flushed_[key].store(epoch, std::memory_order_release);
  }

  /// Retires every cached record and resizes the epoch array (Grow path).
  /// Caller must be quiesced AND have flushed dirty records first — this
  /// drops them; see class comment.
  void InvalidateAll(std::size_t num_records);

  /// Stripe lock serializing byte-level file I/O on one record.
  std::mutex& RecordIoLock(std::uint64_t key) {
    return io_locks_[key % kIoStripes];
  }

  // --- decoded-record LRU --------------------------------------------------

  /// Returns the cached record iff its stamped epoch/generation are still
  /// current (touching LRU), nullptr otherwise (stale entries are erased).
  std::shared_ptr<const CachedRecord> Acquire(std::uint64_t key);

  /// Like Acquire but without LRU/stat side effects — the prefetcher's
  /// cheap "already decoded?" probe.
  bool Contains(std::uint64_t key) const;

  struct InsertOutcome {
    /// False when the record was not kept (stale stamp, or larger than a
    /// shard's budget) — a dirty record the cache did not retain must be
    /// written back by the caller immediately.
    bool retained = false;
    /// Records evicted to make room; the caller writes back the dirty
    /// ones (the cache has no file access).
    std::vector<std::shared_ptr<const CachedRecord>> evicted;
  };

  /// Publishes a decoded record. Discarded (retained == false) when its
  /// stamped epoch/generation are already stale (a writer overtook the
  /// decode) or it exceeds a shard's whole budget.
  InsertOutcome Insert(std::shared_ptr<const CachedRecord> record);

  /// Snapshots every resident dirty record (write-back flush).
  void CollectDirty(
      std::vector<std::shared_ptr<const CachedRecord>>* out) const;

  /// Whether `record` was decoded under the current generation and the
  /// record's current epoch — i.e. no writer has superseded it.
  bool Current(const CachedRecord& record) const {
    return record.generation == generation() &&
           record.epoch == Epoch(record.key);
  }

  Stats stats() const;
  std::size_t capacity_bytes() const { return capacity_bytes_; }

  /// Shard count — one decoded record must fit capacity/kShards to be
  /// cacheable at all (see Stats::oversize_rejects).
  static constexpr std::size_t kShards = 16;

 private:
  static constexpr std::size_t kIoStripes = 64;

  struct Shard {
    mutable std::mutex mu;
    // LRU list front = most recent; map points into the list.
    std::list<std::shared_ptr<const CachedRecord>> lru;
    std::unordered_map<
        std::uint64_t,
        std::list<std::shared_ptr<const CachedRecord>>::iterator>
        map;
    std::size_t bytes = 0;
  };

  Shard& ShardOf(std::uint64_t key) { return shards_[key % kShards]; }
  const Shard& ShardOf(std::uint64_t key) const {
    return shards_[key % kShards];
  }
  void EraseLocked(Shard& shard,
                   std::unordered_map<std::uint64_t,
                                      std::list<std::shared_ptr<
                                          const CachedRecord>>::iterator>::
                       iterator it);

  std::size_t capacity_bytes_;
  std::size_t shard_capacity_;
  std::array<Shard, kShards> shards_;
  std::array<std::mutex, kIoStripes> io_locks_;

  std::unique_ptr<std::atomic<std::uint32_t>[]> epochs_;
  std::unique_ptr<std::atomic<std::uint32_t>[]> flushed_;
  std::size_t num_records_ = 0;
  std::atomic<std::uint64_t> generation_{0};

  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> inserts_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> stale_discards_{0};
  std::atomic<std::uint64_t> oversize_rejects_{0};
};

}  // namespace sobc

#endif  // SOBC_STORAGE_RECORD_CACHE_H_
