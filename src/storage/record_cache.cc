#include "storage/record_cache.h"

namespace sobc {

RecordCache::RecordCache(std::size_t capacity_bytes, std::size_t num_records)
    : capacity_bytes_(capacity_bytes),
      shard_capacity_(capacity_bytes / kShards),
      epochs_(new std::atomic<std::uint32_t>[num_records]()),
      flushed_(new std::atomic<std::uint32_t>[num_records]()),
      num_records_(num_records) {}

void RecordCache::InvalidateAll(std::size_t num_records) {
  generation_.fetch_add(1, std::memory_order_acq_rel);
  if (num_records != num_records_) {
    epochs_.reset(new std::atomic<std::uint32_t>[num_records]());
    flushed_.reset(new std::atomic<std::uint32_t>[num_records]());
    num_records_ = num_records;
  }
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
    shard.lru.clear();
    shard.bytes = 0;
  }
}

std::shared_ptr<const CachedRecord> RecordCache::Acquire(std::uint64_t key) {
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  std::shared_ptr<const CachedRecord> record = *it->second;
  if (!Current(*record)) {
    EraseLocked(shard, it);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  // LRU touch: splice to front.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  it->second = shard.lru.begin();
  hits_.fetch_add(1, std::memory_order_relaxed);
  return record;
}

bool RecordCache::Contains(std::uint64_t key) const {
  const Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(key);
  return it != shard.map.end() && Current(**it->second);
}

RecordCache::InsertOutcome RecordCache::Insert(
    std::shared_ptr<const CachedRecord> record) {
  InsertOutcome outcome;
  if (record == nullptr) return outcome;
  const std::uint64_t key = record->key;
  const std::size_t bytes = record->ByteSize();
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (!Current(*record)) {
    // A writer (or Grow) overtook this decode; publishing it would hand
    // stale data to readers that sample the epoch afterwards. The check
    // MUST happen under the shard lock: checked outside, a decode that
    // was current at check time could erase the entry a concurrent
    // writer inserted in between — dropping the only copy of a newer
    // dirty (write-back) version.
    stale_discards_.fetch_add(1, std::memory_order_relaxed);
    return outcome;
  }
  auto it = shard.map.find(key);
  if (it != shard.map.end()) EraseLocked(shard, it);
  if (bytes > shard_capacity_) {
    // Larger than a whole shard's budget: cacheable nowhere; skip instead
    // of evicting everything for one record. Counted so operators can see
    // an undersized --cache-mb (stats reports oversize_rejects).
    oversize_rejects_.fetch_add(1, std::memory_order_relaxed);
    return outcome;
  }
  shard.lru.push_front(std::move(record));
  shard.map.emplace(key, shard.lru.begin());
  shard.bytes += bytes;
  inserts_.fetch_add(1, std::memory_order_relaxed);
  outcome.retained = true;
  while (shard.bytes > shard_capacity_ && shard.lru.size() > 1) {
    auto& victim = shard.lru.back();
    shard.bytes -= victim->ByteSize();
    shard.map.erase(victim->key);
    outcome.evicted.push_back(std::move(victim));
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  return outcome;
}

void RecordCache::CollectDirty(
    std::vector<std::shared_ptr<const CachedRecord>>* out) const {
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& record : shard.lru) {
      if (record->dirty.load(std::memory_order_acquire)) {
        out->push_back(record);
      }
    }
  }
}

void RecordCache::EraseLocked(
    Shard& shard,
    std::unordered_map<std::uint64_t,
                       std::list<std::shared_ptr<const CachedRecord>>::
                           iterator>::iterator it) {
  shard.bytes -= (*it->second)->ByteSize();
  shard.lru.erase(it->second);
  shard.map.erase(it);
}

RecordCache::Stats RecordCache::stats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.inserts = inserts_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.stale_discards = stale_discards_.load(std::memory_order_relaxed);
  stats.oversize_rejects = oversize_rejects_.load(std::memory_order_relaxed);
  stats.capacity_bytes = capacity_bytes_;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.bytes += shard.bytes;
    stats.entries += shard.lru.size();
  }
  return stats;
}

}  // namespace sobc
