#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string_view>
#include <utility>

#include "common/crc32.h"
#include "common/io.h"
#include "common/posix_io.h"

namespace sobc {

namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kWalMagic = 0x314C4157'43424F53ULL;  // "SOBCWAL1"
constexpr std::uint32_t kWalVersion = 1;
constexpr std::size_t kSegmentHeaderBytes = 16;
constexpr std::size_t kFrameHeaderBytes = 8;  // u32 length + u32 crc
/// A frame longer than this is garbage, not data — 2^26 updates per batch
/// is far beyond any queue capacity.
constexpr std::uint32_t kMaxPayloadBytes = 1u << 30;
constexpr std::size_t kBytesPerUpdate = 4 + 4 + 1 + 8;  // u, v, op, timestamp

std::string SegmentName(std::uint64_t first_epoch) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "wal-%020llu.log",
                static_cast<unsigned long long>(first_epoch));
  return buf;
}

/// Segment files of `dir`, sorted by their first-epoch name.
Result<std::vector<std::pair<std::uint64_t, std::string>>> ListSegments(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> segments;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    constexpr std::string_view kPrefix = "wal-";
    constexpr std::string_view kSuffix = ".log";
    if (name.size() <= kPrefix.size() + kSuffix.size() ||
        name.compare(0, kPrefix.size(), kPrefix) != 0 ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
            0) {
      continue;
    }
    const std::string digits = name.substr(
        kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    segments.emplace_back(std::strtoull(digits.c_str(), nullptr, 10),
                          entry.path().string());
  }
  if (ec) {
    return Status::IOError("cannot list wal dir " + dir + ": " + ec.message());
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

template <typename T>
void AppendValue(std::vector<std::uint8_t>* out, T value) {
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&value);
  out->insert(out->end(), bytes, bytes + sizeof(value));
}

template <typename T>
bool ReadValue(const std::uint8_t* data, std::size_t size, std::size_t* offset,
               T* out) {
  if (*offset + sizeof(T) > size) return false;
  std::memcpy(out, data + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

/// One frame in a single buffer: the 8 header bytes are reserved up
/// front and patched after the payload is encoded behind them, so the
/// serve hot path pays one allocation and no payload copy.
std::vector<std::uint8_t> EncodeFrame(std::uint64_t epoch,
                                      std::uint64_t stream_position,
                                      std::span<const EdgeUpdate> updates) {
  std::vector<std::uint8_t> frame;
  frame.reserve(kFrameHeaderBytes + 8 + 8 + 4 +
                updates.size() * kBytesPerUpdate);
  frame.resize(kFrameHeaderBytes);
  AppendValue(&frame, epoch);
  AppendValue(&frame, stream_position);
  AppendValue(&frame, static_cast<std::uint32_t>(updates.size()));
  for (const EdgeUpdate& update : updates) {
    AppendValue(&frame, update.u);
    AppendValue(&frame, update.v);
    AppendValue(&frame, static_cast<std::uint8_t>(update.op));
    AppendValue(&frame, update.timestamp);
  }
  const auto length =
      static_cast<std::uint32_t>(frame.size() - kFrameHeaderBytes);
  const std::uint32_t crc = Crc32(frame.data() + kFrameHeaderBytes, length);
  std::memcpy(frame.data(), &length, sizeof(length));
  std::memcpy(frame.data() + sizeof(length), &crc, sizeof(crc));
  return frame;
}

bool DecodePayload(const std::uint8_t* data, std::size_t size,
                   WalRecord* record) {
  std::size_t offset = 0;
  std::uint32_t count = 0;
  if (!ReadValue(data, size, &offset, &record->epoch) ||
      !ReadValue(data, size, &offset, &record->stream_position) ||
      !ReadValue(data, size, &offset, &count)) {
    return false;
  }
  if (size - offset != count * kBytesPerUpdate) return false;
  record->updates.resize(count);
  for (EdgeUpdate& update : record->updates) {
    std::uint8_t op = 0;
    if (!ReadValue(data, size, &offset, &update.u) ||
        !ReadValue(data, size, &offset, &update.v) ||
        !ReadValue(data, size, &offset, &op) ||
        !ReadValue(data, size, &offset, &update.timestamp)) {
      return false;
    }
    if (op > static_cast<std::uint8_t>(EdgeOp::kRemove)) return false;
    update.op = static_cast<EdgeOp>(op);
  }
  return true;
}

}  // namespace

WalWriter::WalWriter(std::string dir, WalOptions options)
    : dir_(std::move(dir)), options_(options) {}

namespace {

/// Truncates `path` to `length` through the Io seam (std::filesystem's
/// resize_file would bypass fault injection).
Status TruncateFileAt(const std::string& path, std::uint64_t length) {
  Io* io = Io::Get();
  const int fd = io->Open(path.c_str(), O_WRONLY, 0);
  if (fd < 0) return ErrnoStatus("open", path);
  const int rc = io->Ftruncate(fd, static_cast<std::int64_t>(length));
  const int saved_errno = errno;
  io->Close(fd);
  if (rc != 0) return ErrnoStatusFrom(saved_errno, "ftruncate", path);
  return Status::OK();
}

}  // namespace

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    if (!poisoned_) (void)Io::Get()->Fdatasync(fd_);
    Io::Get()->Close(fd_);
  }
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& dir,
                                                   std::uint64_t next_epoch,
                                                   const WalOptions& options) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create wal dir " + dir + ": " +
                           ec.message());
  }
  auto writer = std::unique_ptr<WalWriter>(new WalWriter(dir, options));
  // Everything up to next_epoch - 1 is durable by construction (committed
  // checkpoint or already-synced replayed segments).
  writer->last_appended_epoch_ = next_epoch - 1;
  writer->durable_epoch_.store(next_epoch - 1, std::memory_order_relaxed);
  SOBC_RETURN_NOT_OK(writer->OpenSegment(next_epoch));
  return writer;
}

Status WalWriter::OpenSegment(std::uint64_t first_epoch) {
  Io* io = Io::Get();
  if (fd_ >= 0) {
    if (poisoned_) {
      return Status::FailedPrecondition(
          "wal segment " + segment_path_ +
          " is poisoned by an earlier fsync failure");
    }
    if (io->Fdatasync(fd_) != 0) {
      const Status st = ErrnoStatus("fdatasync", segment_path_);
      poisoned_ = true;
      return st;
    }
    durable_epoch_.store(last_appended_epoch_, std::memory_order_relaxed);
    io->Close(fd_);
    fd_ = -1;
  }
  segment_path_ = dir_ + "/" + SegmentName(first_epoch);
  // O_TRUNC: a colliding segment can only be one whose every frame a prior
  // recovery already discarded as garbage (see the Open contract).
  fd_ = io->Open(segment_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) return ErrnoStatus("open", segment_path_);
  std::vector<std::uint8_t> header;
  AppendValue(&header, kWalMagic);
  AppendValue(&header, kWalVersion);
  AppendValue(&header, std::uint32_t{0});
  SOBC_RETURN_NOT_OK(WriteFully(fd_, header.data(), header.size(),
                                segment_path_));
  bytes_.fetch_add(header.size(), std::memory_order_relaxed);
  appends_since_sync_ = 0;
  return SyncDir(dir_);
}

Status WalWriter::Append(std::uint64_t epoch, std::uint64_t stream_position,
                         std::span<const EdgeUpdate> updates) {
  if (fd_ < 0) return Status::FailedPrecondition("wal writer is closed");
  if (poisoned_) {
    return Status::FailedPrecondition(
        "wal segment " + segment_path_ +
        " is poisoned by an earlier fsync failure");
  }
  const std::vector<std::uint8_t> frame =
      EncodeFrame(epoch, stream_position, updates);
  SOBC_RETURN_NOT_OK(WriteFully(fd_, frame.data(), frame.size(),
                                segment_path_));
  appends_.fetch_add(1, std::memory_order_relaxed);
  appended_updates_.fetch_add(updates.size(), std::memory_order_relaxed);
  bytes_.fetch_add(frame.size(), std::memory_order_relaxed);
  last_appended_epoch_ = epoch;
  if (options_.fsync_every > 0 &&
      ++appends_since_sync_ >= options_.fsync_every) {
    return Sync();
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("wal writer is closed");
  if (poisoned_) {
    return Status::FailedPrecondition(
        "wal segment " + segment_path_ +
        " is poisoned by an earlier fsync failure");
  }
  if (Io::Get()->Fdatasync(fd_) != 0) {
    // Fatal for this segment: the kernel may have discarded the dirty
    // pages while reporting the failure, so a retry that succeeds proves
    // nothing about the lost writes. durable_epoch_ deliberately stays at
    // the last successful sync.
    const Status st = ErrnoStatus("fdatasync", segment_path_);
    poisoned_ = true;
    return st;
  }
  syncs_.fetch_add(1, std::memory_order_relaxed);
  durable_epoch_.store(last_appended_epoch_, std::memory_order_relaxed);
  appends_since_sync_ = 0;
  return Status::OK();
}

Status WalWriter::Rotate(std::uint64_t next_epoch) {
  rotations_.fetch_add(1, std::memory_order_relaxed);
  return OpenSegment(next_epoch);
}

WalStats WalWriter::stats() const {
  WalStats stats;
  stats.appends = appends_.load(std::memory_order_relaxed);
  stats.appended_updates = appended_updates_.load(std::memory_order_relaxed);
  stats.bytes = bytes_.load(std::memory_order_relaxed);
  stats.syncs = syncs_.load(std::memory_order_relaxed);
  stats.rotations = rotations_.load(std::memory_order_relaxed);
  stats.last_durable_epoch = durable_epoch_.load(std::memory_order_relaxed);
  return stats;
}

Result<WalReplay> ReadWalForReplay(const std::string& dir,
                                   std::uint64_t after_epoch,
                                   bool truncate_torn_tail) {
  WalReplay replay;
  if (!fs::exists(dir)) return replay;
  auto segments = ListSegments(dir);
  if (!segments.ok()) return segments.status();
  bool have_last_epoch = false;
  std::uint64_t last_epoch = 0;
  for (std::size_t i = 0; i < segments->size(); ++i) {
    const bool last_segment = i + 1 == segments->size();
    const std::string& path = (*segments)[i].second;
    Io* io = Io::Get();
    const int fd = io->Open(path.c_str(), O_RDONLY, 0);
    if (fd < 0) return ErrnoStatus("open", path);
    ++replay.segments_read;

    // Everything from the first bad frame on is a torn tail (final
    // segment) or corruption (earlier segment). A read *error* (EIO,
    // network filesystem hiccup) is a live I/O failure, never a crash
    // artifact: ReadUpTo surfaces it as a Status and we fail loudly
    // instead of truncating data a retry would have read.
    std::uint64_t good_offset = 0;
    std::string torn_reason;
    auto read_chunk = [&](void* out, std::size_t want,
                          std::size_t* got) -> Status {
      return ReadUpTo(fd, out, want, got, path);
    };
    std::uint8_t header[kSegmentHeaderBytes];
    std::size_t header_got = 0;
    Status read_status = read_chunk(header, sizeof(header), &header_got);
    if (!read_status.ok()) {
      io->Close(fd);
      return read_status;
    }
    if (header_got != sizeof(header)) {
      torn_reason = "short segment header";
    } else {
      std::uint64_t magic = 0;
      std::uint32_t version = 0;
      std::memcpy(&magic, header, sizeof(magic));
      std::memcpy(&version, header + 8, sizeof(version));
      if (magic != kWalMagic || version != kWalVersion) {
        torn_reason = "bad segment header";
      } else {
        good_offset = kSegmentHeaderBytes;
      }
    }
    std::vector<std::uint8_t> payload;
    while (torn_reason.empty()) {
      std::uint8_t frame_header[kFrameHeaderBytes];
      std::size_t got = 0;
      read_status = read_chunk(frame_header, sizeof(frame_header), &got);
      if (!read_status.ok()) break;
      if (got == 0) break;  // clean end of segment
      if (got != sizeof(frame_header)) {
        torn_reason = "short frame header";
        break;
      }
      std::uint32_t length = 0;
      std::uint32_t crc = 0;
      std::memcpy(&length, frame_header, sizeof(length));
      std::memcpy(&crc, frame_header + 4, sizeof(crc));
      if (length > kMaxPayloadBytes) {
        torn_reason = "implausible frame length";
        break;
      }
      payload.resize(length);
      read_status = read_chunk(payload.data(), length, &got);
      if (!read_status.ok()) break;
      if (got != length) {
        torn_reason = "short frame payload";
        break;
      }
      if (Crc32(payload.data(), payload.size()) != crc) {
        torn_reason = "crc mismatch";
        break;
      }
      WalRecord record;
      if (!DecodePayload(payload.data(), payload.size(), &record)) {
        torn_reason = "undecodable payload";
        break;
      }
      if (have_last_epoch && record.epoch != last_epoch + 1) {
        io->Close(fd);
        return Status::IOError(
            "wal epoch gap in " + path + ": expected " +
            std::to_string(last_epoch + 1) + ", found " +
            std::to_string(record.epoch));
      }
      last_epoch = record.epoch;
      have_last_epoch = true;
      record.segment = path;
      record.frame_offset = good_offset;
      good_offset += kFrameHeaderBytes + length;
      if (record.epoch > after_epoch) {
        replay.records.push_back(std::move(record));
      }
    }
    io->Close(fd);
    if (!read_status.ok()) return read_status;

    if (!torn_reason.empty()) {
      if (!last_segment) {
        return Status::IOError("wal corruption in non-final segment " + path +
                               " (" + torn_reason + ")");
      }
      std::error_code ec;
      const std::uint64_t size = fs::file_size(path, ec);
      if (ec) {
        return Status::IOError("cannot stat " + path + ": " + ec.message());
      }
      replay.torn_bytes = size - good_offset;
      replay.torn_segment = path;
      if (truncate_torn_tail && replay.torn_bytes > 0) {
        SOBC_RETURN_NOT_OK(TruncateFileAt(path, good_offset));
        SOBC_RETURN_NOT_OK(SyncDir(dir));
      }
    }
  }
  if (!replay.records.empty() &&
      replay.records.front().epoch != after_epoch + 1) {
    return Status::IOError(
        "wal does not reach back to checkpoint epoch " +
        std::to_string(after_epoch) + " (oldest logged epoch after it is " +
        std::to_string(replay.records.front().epoch) +
        "); a needed segment was pruned or lost");
  }
  return replay;
}

Status TruncateWalSegment(const std::string& dir, const std::string& segment,
                          std::uint64_t offset) {
  SOBC_RETURN_NOT_OK(TruncateFileAt(segment, offset));
  return SyncDir(dir);
}

Result<bool> WalDirHasSegments(const std::string& dir) {
  if (!fs::exists(dir)) return false;
  auto segments = ListSegments(dir);
  if (!segments.ok()) return segments.status();
  return !segments->empty();
}

Result<std::size_t> PruneWalSegments(const std::string& dir,
                                     std::uint64_t through_epoch) {
  auto segments = ListSegments(dir);
  if (!segments.ok()) return segments.status();
  std::size_t removed = 0;
  // Segment i holds only epochs < first_epoch(i+1): it is fully covered by
  // the checkpoint iff its successor starts at or before through_epoch + 1.
  for (std::size_t i = 0; i + 1 < segments->size(); ++i) {
    if ((*segments)[i + 1].first <= through_epoch + 1) {
      if (Io::Get()->Unlink((*segments)[i].second.c_str()) == 0) ++removed;
    }
  }
  if (removed > 0) SOBC_RETURN_NOT_OK(SyncDir(dir));
  return removed;
}

}  // namespace sobc
