#ifndef SOBC_STORAGE_CHECKPOINT_H_
#define SOBC_STORAGE_CHECKPOINT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "bc/bc_types.h"
#include "common/status.h"
#include "graph/graph.h"

namespace sobc {

/// The root of one checkpoint: which epoch it captures and which files in
/// the checkpoint directory hold the state. Written atomically
/// (temp + fsync + rename, then the CURRENT pointer) so a crash mid-write
/// can never produce a manifest that names half-written state — a
/// checkpoint exists only once its manifest does.
struct CheckpointManifest {
  std::uint64_t epoch = 0;
  std::uint64_t stream_position = 0;
  bool directed = false;
  /// Vertex count at checkpoint time. Edge-list files cannot carry
  /// trailing isolated vertices, so loading re-grows the graph to this.
  std::uint64_t num_vertices = 0;
  /// Storage variant the deployment ran ("mo", "mp", or "do"); recovery
  /// rebuilds the same one.
  std::string variant = "mo";
  /// Source partition [source_begin, source_end) the deployment owned —
  /// the full range for a single-process service, one shard's share for a
  /// cluster worker. Recovery rebuilds the same scoped framework, so a
  /// restored shard's scores stay the same *partials* it checkpointed.
  /// source_end == kInvalidVertex (the default) is open-ended. Absent in
  /// pre-cluster manifests; the defaults reproduce their behavior.
  VertexId source_begin = 0;
  VertexId source_end = kInvalidVertex;
  /// Files relative to the checkpoint directory.
  std::string graph_file;
  std::string scores_file;
  /// Byte-copy of the flushed out-of-core BD store ("do" only; empty
  /// otherwise). Generation-stamped by the epoch in its name.
  std::string store_file;
  /// Record codec of store_file, informational (the file header rules).
  std::string store_codec;
  /// Serialized sampled-approximation state (sample ids, drift ledger,
  /// RNG — see OnlineApproxState::Serialize), present only for sampled
  /// deployments. Pre-approx readers skip the key; exact deployments
  /// never write it.
  std::string samples_file;
  /// Whole-file CRCs of the state files, verified at load. The WAL
  /// frames and the manifest text are CRC-framed; without these the much
  /// larger state payloads would accept silent content corruption (a bit
  /// flip inside an in-range neighbor id parses fine) and recovery would
  /// diverge undetected.
  std::uint32_t graph_crc = 0;
  std::uint32_t scores_crc = 0;
  std::uint32_t store_crc = 0;
  std::uint32_t samples_crc = 0;
};

/// One fully loaded checkpoint: the manifest plus the graph and score state
/// it names. The BD store (when present) stays on disk; RestoreStorePath()
/// gives its absolute location for the caller to copy or open.
struct LoadedCheckpoint {
  CheckpointManifest manifest;
  Graph graph;
  BcScores scores;
  /// Absolute path of the checkpointed BD store file; empty for in-memory
  /// variants.
  std::string store_path;
  /// Serialized sampled-approximation state; empty for exact deployments.
  /// The recovery path hands it to the framework via
  /// DynamicBcOptions::approx_restore_blob.
  std::string samples_blob;
};

/// Name of the manifest file for `epoch` (MANIFEST-<epoch>).
std::string ManifestName(std::uint64_t epoch);

/// Writes `manifest` atomically into `dir` and repoints CURRENT at it.
/// The state files it names must already be in place — this is the commit
/// point of the checkpoint protocol.
Status WriteManifest(const std::string& dir, const CheckpointManifest& manifest);

/// Parses one manifest file, validating its trailing whole-file checksum.
Result<CheckpointManifest> ReadManifest(const std::string& path);

/// Whether `dir` already holds any manifest — the guard that keeps
/// BcService::Create from mixing a fresh deployment's checkpoints with a
/// previous one's (stale higher-epoch manifests would win both retention
/// and the recovery fallback ladder).
Result<bool> CheckpointDirHasManifests(const std::string& dir);

/// Loads the newest usable checkpoint of `dir`: the manifest CURRENT names,
/// falling back to older MANIFEST-* files (newest first) when CURRENT is
/// missing, torn, or names unreadable state — the situations a crash
/// between checkpoint steps can leave behind. NotFound when no usable
/// checkpoint exists.
Result<LoadedCheckpoint> LoadLatestCheckpoint(const std::string& dir);

/// Deletes checkpoints older than the `keep` newest valid ones (manifest
/// plus the state files it names). Returns manifests removed.
Result<std::size_t> PruneCheckpoints(const std::string& dir, std::size_t keep);

/// Plain byte copy (used to snapshot the flushed BD store into a
/// checkpoint and to install it back at recovery). Overwrites `to`;
/// refuses identical paths (the destination is O_TRUNCed, so copying a
/// file onto itself would destroy it). `crc` (optional) receives the
/// CRC-32 of the bytes copied.
Status CopyFile(const std::string& from, const std::string& to,
                std::uint32_t* crc = nullptr);

/// CRC-32 of a whole file's content.
Result<std::uint32_t> FileCrc32(const std::string& path);

/// Serializes a checkpoint-consistent graph image for a live range
/// migration (DESIGN.md §13): the donor captures its graph between
/// batches and streams these bytes to the recipient in MigrateChunk
/// frames; the recipient rebuilds the graph and runs a scoped Step 1
/// over its new source range, which reproduces the donor's maintained
/// BD/partial state for that range exactly (exact maintenance ==
/// from-scratch state on the current graph). Adjacency-list ORDER is
/// preserved verbatim — the same bit-identity requirement the
/// checkpoint format has (Graph::FromAdjacency), since traversal order
/// fixes floating-point summation order downstream.
std::string ExportMigrationImage(const Graph& graph);

/// Rebuilds the graph from ExportMigrationImage bytes. The caller has
/// already CRC-checked the stream (MigrateCommit); this validates
/// structure and bounds.
Result<Graph> ImportMigrationImage(const std::string& image);

/// Background counters, snapshot-readable from any thread.
struct CheckpointStats {
  std::uint64_t written = 0;       // checkpoints committed (manifest durable)
  std::uint64_t skipped = 0;       // triggers dropped: previous still running
  std::uint64_t failed = 0;
  std::uint64_t last_epoch = 0;    // newest committed checkpoint
  double write_seconds_total = 0;  // background serialization time
};

/// The off-thread half of checkpointing: the serving writer captures state
/// (graph copy, score copy, flushed BD-store byte copy) between batches and
/// hands it here; this thread serializes it to files and commits the
/// manifest, so the writer's stall is the capture, not the I/O. One job in
/// flight at a time — a trigger that fires while one is running is skipped
/// (counted), never queued, so checkpoint cost cannot build a backlog.
class CheckpointWriter {
 public:
  struct Job {
    std::uint64_t epoch = 0;
    std::uint64_t stream_position = 0;
    Graph graph;
    BcScores scores;
    std::string variant;
    /// Owned source partition (see CheckpointManifest).
    VertexId source_begin = 0;
    VertexId source_end = kInvalidVertex;
    /// Pre-placed BD store copy inside the checkpoint dir ("do" only),
    /// with the CRC the capture's CopyFile computed over it.
    std::string store_file;
    std::string store_codec;
    std::uint32_t store_crc = 0;
    /// Serialized sampled-approximation state captured with the scores
    /// (same moment, same epoch); empty for exact deployments. The
    /// checkpoint thread persists it as samples-<epoch>.bin.
    std::string samples_blob;
  };

  /// Serializes into `dir` (created if missing), keeping the `retain`
  /// newest checkpoints. `wal_dir` non-empty additionally prunes WAL
  /// segments a committed checkpoint fully covers.
  CheckpointWriter(std::string dir, std::string wal_dir, std::size_t retain);
  ~CheckpointWriter();

  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  /// Whether a job handed over right now would be accepted; false also
  /// counts the trigger as skipped. Callers use this to avoid capturing
  /// state (for the out-of-core variant: flushing and byte-copying the BD
  /// store) for a job that would only be dropped.
  bool AdmitTrigger();

  /// Hands one captured state over; false (and a skip count) when the
  /// previous checkpoint is still being written.
  bool Enqueue(Job job);

  /// Blocks until no job is in flight; returns the first error any job hit
  /// (sticky until read).
  Status WaitIdle();

  /// Non-blocking read of the sticky error — lets the serving writer
  /// notice a failed background checkpoint between batches (and degrade)
  /// without stalling behind an in-flight job.
  Status PeekError() const {
    std::lock_guard<std::mutex> lock(mu_);
    return error_;
  }

  /// Runs one job synchronously on the calling thread (initial checkpoint
  /// at Create, final checkpoint at Stop — moments that want the commit
  /// before proceeding).
  Status WriteNow(Job job);

  CheckpointStats stats() const;
  const std::string& dir() const { return dir_; }

 private:
  void Loop();
  Status WriteJob(const Job& job);

  std::string dir_;
  std::string wal_dir_;
  std::size_t retain_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::optional<Job> pending_;
  bool busy_ = false;
  bool stop_ = false;
  Status error_;

  std::atomic<std::uint64_t> written_{0};
  std::atomic<std::uint64_t> skipped_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> last_epoch_{0};
  std::atomic<double> write_seconds_total_{0.0};

  std::thread worker_;
};

}  // namespace sobc

#endif  // SOBC_STORAGE_CHECKPOINT_H_
