#include "storage/prefetcher.h"

#include <utility>

#include "common/timer.h"

namespace sobc {

void Prefetcher::Start(Loader loader) {
  if (thread_.joinable()) return;
  loader_ = std::move(loader);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = false;
  }
  thread_ = std::thread([this] { Loop(); });
}

void Prefetcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Prefetcher::Hint(std::span<const VertexId> sources) {
  if (sources.empty() || !thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stats_.hinted += sources.size();
    if (queue_.size() >= kMaxQueuedBatches) {
      // Shed the oldest hints: they are the least likely to still be ahead
      // of the compute frontier.
      stats_.dropped += queue_.front().size();
      queue_.pop_front();
    }
    queue_.emplace_back(sources.begin(), sources.end());
  }
  work_cv_.notify_one();
}

void Prefetcher::Quiesce() {
  if (!thread_.joinable()) return;
  std::unique_lock<std::mutex> lock(mu_);
  for (const auto& batch : queue_) stats_.dropped += batch.size();
  queue_.clear();
  ++clear_ticket_;
  idle_cv_.wait(lock, [this] { return !busy_ && queue_.empty(); });
}

PrefetchStats Prefetcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Prefetcher::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_) return;
    std::vector<VertexId> batch = std::move(queue_.front());
    queue_.pop_front();
    busy_ = true;
    const std::uint64_t ticket = clear_ticket_;
    lock.unlock();

    WallTimer timer;
    std::uint64_t fetched = 0;
    std::uint64_t cached = 0;
    std::uint64_t failed = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      {
        // Abort the rest of the batch promptly when Quiesce or Stop landed.
        std::lock_guard<std::mutex> peek(mu_);
        if (stop_ || clear_ticket_ != ticket) break;
      }
      switch (loader_(batch[i])) {
        case LoadResult::kFetched:
          ++fetched;
          break;
        case LoadResult::kAlreadyCached:
          ++cached;
          break;
        case LoadResult::kFailed:
          ++failed;
          break;
      }
    }
    const double seconds = timer.Seconds();

    lock.lock();
    stats_.fetched += fetched;
    stats_.already_cached += cached;
    stats_.failed += failed;
    stats_.fetch_seconds += seconds;
    busy_ = false;
    if (queue_.empty()) idle_cv_.notify_all();
  }
}

}  // namespace sobc
