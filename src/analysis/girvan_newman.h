#ifndef SOBC_ANALYSIS_GIRVAN_NEWMAN_H_
#define SOBC_ANALYSIS_GIRVAN_NEWMAN_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace sobc {

/// One iteration of Girvan–Newman: the removed highest-betweenness edge,
/// its score, the component count afterwards, and the time the iteration
/// took (edge selection + betweenness refresh, excluding bookkeeping).
struct GirvanNewmanStep {
  EdgeKey removed;
  double ebc = 0.0;
  std::size_t num_components = 0;
  double seconds = 0.0;
};

/// The full dendrogram trace: initialization cost plus one entry per
/// removed edge.
struct GirvanNewmanResult {
  /// Time to obtain the initial edge betweenness (one Brandes run; for the
  /// incremental driver this also builds the BD store).
  double init_seconds = 0.0;
  std::vector<GirvanNewmanStep> steps;

  double TotalSeconds() const;
  /// Component count after the final removal.
  std::size_t FinalComponents() const;
};

/// Stopping rules and engine choice for the community-detection driver.
struct GirvanNewmanOptions {
  /// Stop after this many edge removals (0 = remove every edge, the full
  /// dendrogram).
  std::size_t max_removals = 0;
  /// Stop early once the graph splits into at least this many components
  /// (0 = no early stop) — the community-detection use of Section 6.3.
  std::size_t target_components = 0;
};

/// Girvan–Newman by incremental edge betweenness: removes the top-EBC edge
/// and lets the dynamic framework refresh scores (the paper's Section 6.3
/// use case, Figure 9).
Result<GirvanNewmanResult> GirvanNewmanIncremental(
    const Graph& graph, const GirvanNewmanOptions& options);

/// The classical baseline: recomputes all edge betweenness from scratch
/// with Brandes after every removal.
Result<GirvanNewmanResult> GirvanNewmanRecompute(
    const Graph& graph, const GirvanNewmanOptions& options);

}  // namespace sobc

#endif  // SOBC_ANALYSIS_GIRVAN_NEWMAN_H_
