#ifndef SOBC_ANALYSIS_GRAPH_STATS_H_
#define SOBC_ANALYSIS_GRAPH_STATS_H_

#include <cstddef>

#include "common/rng.h"
#include "graph/graph.h"

namespace sobc {

/// The dataset descriptors of Table 2.
struct GraphStats {
  std::size_t vertices = 0;
  std::size_t edges = 0;
  double average_degree = 0.0;       // 2m/n (m/n for directed)
  double clustering = 0.0;           // average local clustering coefficient
  double effective_diameter = 0.0;   // interpolated 90th pct of distances
};

/// Average degree: 2m/n for undirected graphs, m/n for directed.
double AverageDegree(const Graph& graph);

/// Average local clustering coefficient (Watts–Strogatz): mean over all
/// vertices of (#links among neighbors) / (deg*(deg-1)/2), with degree<2
/// vertices contributing zero. When `sample` > 0 and smaller than n, the
/// mean is estimated from that many uniformly sampled vertices.
double AverageClustering(const Graph& graph, Rng* rng = nullptr,
                         std::size_t sample = 0);

/// Effective diameter: the (interpolated) distance within which
/// `percentile` of all connected ordered pairs fall, estimated by BFS from
/// `sample_sources` random sources (all sources when 0 or >= n).
double EffectiveDiameter(const Graph& graph, double percentile = 0.9,
                         Rng* rng = nullptr, std::size_t sample_sources = 0);

/// All of the above in one pass (sampling bounds keep it cheap on large
/// graphs: `sample` for clustering, `sample_sources` for the diameter).
GraphStats ComputeGraphStats(const Graph& graph, Rng* rng = nullptr,
                             std::size_t sample = 0,
                             std::size_t sample_sources = 0);

}  // namespace sobc

#endif  // SOBC_ANALYSIS_GRAPH_STATS_H_
