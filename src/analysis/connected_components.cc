#include "analysis/connected_components.h"

#include <algorithm>

#include "graph/csr_view.h"

namespace sobc {

std::vector<std::size_t> ComponentLabels(const Graph& graph) {
  const std::size_t n = graph.NumVertices();
  const CsrView& adj = graph.csr();
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> labels(n, kNone);
  std::vector<VertexId> queue;
  std::size_t next = 0;
  for (VertexId start = 0; start < n; ++start) {
    if (labels[start] != kNone) continue;
    const std::size_t label = next++;
    labels[start] = label;
    queue.clear();
    queue.push_back(start);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const VertexId v = queue[head];
      auto visit = [&](VertexId w) {
        if (labels[w] == kNone) {
          labels[w] = label;
          queue.push_back(w);
        }
      };
      for (VertexId w : adj.OutNeighbors(v)) visit(w);
      if (adj.directed()) {
        for (VertexId w : adj.InNeighbors(v)) visit(w);
      }
    }
  }
  return labels;
}

std::vector<std::size_t> ComponentSizes(
    const std::vector<std::size_t>& labels) {
  std::vector<std::size_t> sizes;
  for (std::size_t label : labels) {
    if (label >= sizes.size()) sizes.resize(label + 1, 0);
    ++sizes[label];
  }
  return sizes;
}

std::size_t NumComponents(const Graph& graph) {
  const auto labels = ComponentLabels(graph);
  std::size_t max_label = 0;
  for (std::size_t label : labels) max_label = std::max(max_label, label + 1);
  return max_label;
}

Graph LargestConnectedComponent(const Graph& graph,
                                std::vector<VertexId>* original_ids) {
  const auto labels = ComponentLabels(graph);
  const auto sizes = ComponentSizes(labels);
  Graph lcc(graph.directed());
  if (sizes.empty()) return lcc;
  const std::size_t best =
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin();

  std::vector<VertexId> remap(graph.NumVertices(), kInvalidVertex);
  if (original_ids != nullptr) original_ids->clear();
  VertexId next = 0;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (labels[v] != best) continue;
    remap[v] = next++;
    if (original_ids != nullptr) original_ids->push_back(v);
  }
  if (next > 0) lcc.EnsureVertex(next - 1);
  graph.ForEachEdge([&](VertexId u, VertexId v) {
    if (remap[u] != kInvalidVertex && remap[v] != kInvalidVertex) {
      (void)lcc.AddEdge(remap[u], remap[v]);
    }
  });
  return lcc;
}

}  // namespace sobc
