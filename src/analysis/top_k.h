#ifndef SOBC_ANALYSIS_TOP_K_H_
#define SOBC_ANALYSIS_TOP_K_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "bc/bc_types.h"
#include "graph/graph.h"

namespace sobc {

/// Highest-betweenness vertices, descending by score (stable tie-break by
/// id). The "emerging leaders" application the paper's conclusion sketches.
std::vector<std::pair<VertexId, double>> TopKVertices(
    const std::vector<double>& vbc, std::size_t k);

/// Highest-betweenness edges, descending (ties by canonical key).
std::vector<std::pair<EdgeKey, double>> TopKEdges(const EbcMap& ebc,
                                                  std::size_t k);

/// Jaccard similarity of the top-k vertex sets of two score vectors — the
/// standard way to quantify how well an approximation (or a stale
/// snapshot) preserves the leaderboard.
double TopKOverlap(const std::vector<double>& a, const std::vector<double>& b,
                   std::size_t k);

}  // namespace sobc

#endif  // SOBC_ANALYSIS_TOP_K_H_
