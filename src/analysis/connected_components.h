#ifndef SOBC_ANALYSIS_CONNECTED_COMPONENTS_H_
#define SOBC_ANALYSIS_CONNECTED_COMPONENTS_H_

#include <cstddef>
#include <vector>

#include "graph/graph.h"

namespace sobc {

/// Per-vertex component label in [0, #components). For directed graphs
/// these are weakly connected components (edge direction ignored).
std::vector<std::size_t> ComponentLabels(const Graph& graph);

/// Sizes indexed by component label.
std::vector<std::size_t> ComponentSizes(
    const std::vector<std::size_t>& labels);

std::size_t NumComponents(const Graph& graph);

/// Extracts the largest connected component with densely re-numbered
/// vertices (the paper evaluates on the LCC of every real graph). When
/// `original_ids` is non-null it receives, per new id, the vertex's id in
/// the input graph.
Graph LargestConnectedComponent(const Graph& graph,
                                std::vector<VertexId>* original_ids = nullptr);

}  // namespace sobc

#endif  // SOBC_ANALYSIS_CONNECTED_COMPONENTS_H_
