#include "analysis/top_k.h"

#include <algorithm>
#include <unordered_set>

namespace sobc {

std::vector<std::pair<VertexId, double>> TopKVertices(
    const std::vector<double>& vbc, std::size_t k) {
  std::vector<std::pair<VertexId, double>> ranked;
  ranked.reserve(vbc.size());
  for (VertexId v = 0; v < vbc.size(); ++v) ranked.emplace_back(v, vbc[v]);
  k = std::min(k, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + k, ranked.end(),
                    [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second > b.second;
                      return a.first < b.first;
                    });
  ranked.resize(k);
  return ranked;
}

std::vector<std::pair<EdgeKey, double>> TopKEdges(const EbcMap& ebc,
                                                  std::size_t k) {
  std::vector<std::pair<EdgeKey, double>> ranked(ebc.begin(), ebc.end());
  k = std::min(k, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + k, ranked.end(),
                    [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second > b.second;
                      return a.first < b.first;
                    });
  ranked.resize(k);
  return ranked;
}

double TopKOverlap(const std::vector<double>& a, const std::vector<double>& b,
                   std::size_t k) {
  const auto top_a = TopKVertices(a, k);
  const auto top_b = TopKVertices(b, k);
  if (top_a.empty() && top_b.empty()) return 1.0;
  std::unordered_set<VertexId> set_a;
  for (const auto& [v, score] : top_a) set_a.insert(v);
  std::size_t common = 0;
  for (const auto& [v, score] : top_b) common += set_a.count(v);
  const std::size_t unions = top_a.size() + top_b.size() - common;
  return unions == 0 ? 1.0
                     : static_cast<double>(common) /
                           static_cast<double>(unions);
}

}  // namespace sobc
