#include "analysis/girvan_newman.h"

#include <algorithm>

#include "analysis/connected_components.h"
#include "bc/brandes.h"
#include "bc/dynamic_bc.h"
#include "common/timer.h"

namespace sobc {

double GirvanNewmanResult::TotalSeconds() const {
  double total = init_seconds;
  for (const GirvanNewmanStep& step : steps) total += step.seconds;
  return total;
}

std::size_t GirvanNewmanResult::FinalComponents() const {
  return steps.empty() ? 0 : steps.back().num_components;
}

namespace {

/// Highest-betweenness edge in the map (ties by key order for
/// determinism); kInvalidVertex endpoints when the map is empty.
std::pair<EdgeKey, double> TopEdge(const EbcMap& ebc) {
  EdgeKey best{kInvalidVertex, kInvalidVertex};
  double best_score = -1.0;
  for (const auto& [key, value] : ebc) {
    if (value > best_score ||
        (value == best_score && key < best)) {
      best = key;
      best_score = value;
    }
  }
  return {best, best_score};
}

bool ShouldStop(const GirvanNewmanOptions& options, std::size_t removals,
                std::size_t components, std::size_t edges_left) {
  if (edges_left == 0) return true;
  if (options.max_removals != 0 && removals >= options.max_removals) {
    return true;
  }
  if (options.target_components != 0 &&
      components >= options.target_components) {
    return true;
  }
  return false;
}

}  // namespace

Result<GirvanNewmanResult> GirvanNewmanIncremental(
    const Graph& graph, const GirvanNewmanOptions& options) {
  GirvanNewmanResult result;
  WallTimer init_timer;
  auto bc = DynamicBc::Create(graph, DynamicBcOptions{});
  if (!bc.ok()) return bc.status();
  result.init_seconds = init_timer.Seconds();

  std::size_t components = NumComponents((*bc)->graph());
  while (!ShouldStop(options, result.steps.size(), components,
                     (*bc)->graph().NumEdges())) {
    WallTimer timer;
    const auto [edge, score] = TopEdge((*bc)->ebc());
    if (edge.u == kInvalidVertex) break;
    SOBC_RETURN_NOT_OK((*bc)->Apply({edge.u, edge.v, EdgeOp::kRemove}));
    const double seconds = timer.Seconds();
    components = NumComponents((*bc)->graph());
    result.steps.push_back({edge, score, components, seconds});
  }
  return result;
}

Result<GirvanNewmanResult> GirvanNewmanRecompute(
    const Graph& graph, const GirvanNewmanOptions& options) {
  GirvanNewmanResult result;
  Graph current = graph;
  WallTimer init_timer;
  BcScores scores = ComputeBrandes(current);
  result.init_seconds = init_timer.Seconds();

  std::size_t components = NumComponents(current);
  while (!ShouldStop(options, result.steps.size(), components,
                     current.NumEdges())) {
    WallTimer timer;
    const auto [edge, score] = TopEdge(scores.ebc);
    if (edge.u == kInvalidVertex) break;
    SOBC_RETURN_NOT_OK(current.RemoveEdge(edge.u, edge.v));
    scores = ComputeBrandes(current);  // the full recomputation GN pays
    const double seconds = timer.Seconds();
    components = NumComponents(current);
    result.steps.push_back({edge, score, components, seconds});
  }
  return result;
}

}  // namespace sobc
