#include "analysis/graph_stats.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "bc/bc_types.h"
#include "graph/csr_view.h"

namespace sobc {

double AverageDegree(const Graph& graph) {
  const std::size_t n = graph.NumVertices();
  if (n == 0) return 0.0;
  const double m = static_cast<double>(graph.NumEdges());
  return (graph.directed() ? m : 2.0 * m) / static_cast<double>(n);
}

double AverageClustering(const Graph& graph, Rng* rng, std::size_t sample) {
  const std::size_t n = graph.NumVertices();
  if (n == 0) return 0.0;
  const CsrView& adj = graph.csr();
  const bool sampled = rng != nullptr && sample > 0 && sample < n;
  const std::size_t count = sampled ? sample : n;

  std::vector<std::uint32_t> mark(n, 0);
  std::uint32_t epoch = 0;
  double total = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const VertexId v = sampled ? static_cast<VertexId>(rng->Uniform(n))
                               : static_cast<VertexId>(i);
    const auto neighbors = adj.OutNeighbors(v);
    const std::size_t k = neighbors.size();
    if (k < 2) continue;
    ++epoch;
    for (VertexId u : neighbors) mark[u] = epoch;
    std::size_t links = 0;
    for (VertexId u : neighbors) {
      for (VertexId w : adj.OutNeighbors(u)) {
        if (mark[w] == epoch) ++links;  // counts each link twice
      }
    }
    total += static_cast<double>(links) / static_cast<double>(k * (k - 1));
  }
  return total / static_cast<double>(count);
}

double EffectiveDiameter(const Graph& graph, double percentile, Rng* rng,
                         std::size_t sample_sources) {
  const std::size_t n = graph.NumVertices();
  if (n == 0) return 0.0;
  const CsrView& adj = graph.csr();
  const bool sampled =
      rng != nullptr && sample_sources > 0 && sample_sources < n;
  const std::size_t count = sampled ? sample_sources : n;

  // Histogram of pairwise hop distances over the sampled sources.
  std::vector<std::uint64_t> histogram;
  std::vector<Distance> dist(n);
  std::vector<VertexId> queue;
  for (std::size_t i = 0; i < count; ++i) {
    const VertexId s = sampled ? static_cast<VertexId>(rng->Uniform(n))
                               : static_cast<VertexId>(i);
    std::fill(dist.begin(), dist.end(), kUnreachable);
    queue.clear();
    dist[s] = 0;
    queue.push_back(s);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const VertexId v = queue[head];
      for (VertexId w : adj.OutNeighbors(v)) {
        if (dist[w] != kUnreachable) continue;
        dist[w] = dist[v] + 1;
        if (dist[w] >= histogram.size()) histogram.resize(dist[w] + 1, 0);
        ++histogram[dist[w]];
        queue.push_back(w);
      }
    }
  }
  std::uint64_t reachable = 0;
  for (std::uint64_t c : histogram) reachable += c;
  if (reachable == 0) return 0.0;

  // Smallest d with CDF(d) >= percentile, linearly interpolated between
  // integer distances (the KONECT convention Table 2 uses).
  const double target = percentile * static_cast<double>(reachable);
  double cumulative = 0.0;
  for (std::size_t d = 1; d < histogram.size(); ++d) {
    const double prev = cumulative;
    cumulative += static_cast<double>(histogram[d]);
    if (cumulative >= target) {
      const double span = cumulative - prev;
      if (span <= 0.0) return static_cast<double>(d);
      return static_cast<double>(d - 1) + (target - prev) / span;
    }
  }
  return static_cast<double>(histogram.size() - 1);
}

GraphStats ComputeGraphStats(const Graph& graph, Rng* rng, std::size_t sample,
                             std::size_t sample_sources) {
  GraphStats stats;
  stats.vertices = graph.NumVertices();
  stats.edges = graph.NumEdges();
  stats.average_degree = AverageDegree(graph);
  stats.clustering = AverageClustering(graph, rng, sample);
  stats.effective_diameter =
      EffectiveDiameter(graph, 0.9, rng, sample_sources);
  return stats;
}

}  // namespace sobc
