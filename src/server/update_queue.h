#ifndef SOBC_SERVER_UPDATE_QUEUE_H_
#define SOBC_SERVER_UPDATE_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "graph/edge_stream.h"

namespace sobc {

/// Seconds on the steady clock, the time base shared by the queue's
/// enqueue stamps and the writer's drain/publish stamps.
inline double SteadyNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Shape of the producer/consumer contract: depth, batching, coalescing,
/// and what happens when producers outrun the writer.
struct UpdateQueueOptions {
  /// Bounded depth; the backpressure point of the serving layer.
  std::size_t capacity = 4096;
  /// Maximum updates handed to the consumer per PopBatch.
  std::size_t max_batch = 256;
  /// After the first element of a batch is available, wait up to this long
  /// for more arrivals before handing the batch over — the latency budget
  /// traded for coalescing opportunity. 0 drains whatever is present.
  double batch_latency_budget_seconds = 0.0;
  /// Collapse same-edge churn inside each drained batch (see
  /// CoalesceUpdates below).
  bool coalesce = true;
  /// Edge-key canonicalization for coalescing; must match the graph.
  bool directed = false;
  /// When the queue is full: false blocks producers until space frees
  /// (default — no update is ever silently lost), true rejects the new
  /// update and counts it dropped.
  bool drop_when_full = false;
};

/// Monotonic counters, readable from any thread. `received` counts accepted
/// pushes; `drained + coalesced == consumed inputs` after every batch, so
/// `received == drained + coalesced + depth()` when producers are quiet.
struct UpdateQueueStats {
  std::uint64_t received = 0;
  std::uint64_t dropped = 0;
  std::uint64_t batches = 0;
  std::uint64_t drained = 0;    // handed to the consumer, post-coalescing
  std::uint64_t coalesced = 0;  // removed by coalescing
  std::uint64_t max_depth = 0;  // high-water mark
};

/// One drained batch: the post-coalescing updates plus the accounting the
/// metrics layer needs about the raw inputs they stand for.
struct DrainedBatch {
  /// Updates to apply, in arrival order of their last occurrence.
  std::vector<EdgeUpdate> updates;
  /// Raw input elements this batch consumed (>= updates.size()).
  std::size_t consumed = 0;
  /// Enqueue stamp (SteadyNowSeconds) of every consumed element, in
  /// arrival order — latency accounting covers coalesced-away updates too.
  std::vector<double> enqueue_seconds;
};

/// Bounded multi-producer single-consumer queue between the serving API and
/// the writer thread (DESIGN.md §8). Producers push individual stream
/// elements; the writer drains coalesced batches. Everything is guarded by
/// one mutex — producers and the consumer only ever hold it for O(batch)
/// pointer work, never while betweenness refreshes run.
class UpdateQueue {
 public:
  explicit UpdateQueue(const UpdateQueueOptions& options);

  /// Enqueues one update. Blocks while the queue is full (default policy)
  /// unless drop_when_full, in which case a full queue rejects the update.
  /// Returns false when the update was dropped or the queue is closed.
  bool Push(const EdgeUpdate& update);

  /// Blocks until at least one update is available or the queue is closed
  /// and empty (returns false — the writer's exit signal). Drains up to
  /// max_batch elements, waiting up to the latency budget for stragglers,
  /// then coalesces. `out->updates` may come back empty with consumed > 0
  /// when the whole batch collapsed to a no-op.
  bool PopBatch(DrainedBatch* out);

  /// PopBatch outcome for the timed variant: a consumer that also runs
  /// control work (the cluster coordinator's rebalance commands) needs to
  /// distinguish "nothing arrived yet" from "queue closed and drained".
  enum class PopResult { kBatch, kTimeout, kClosed };

  /// PopBatch with a bounded wait: kTimeout after `timeout_seconds` with
  /// no update available (the queue stays open, `out` is empty), kClosed
  /// once the queue is closed and drained, kBatch otherwise.
  PopResult PopBatchFor(DrainedBatch* out, double timeout_seconds);

  /// Stops accepting pushes and wakes everyone; already-queued updates
  /// remain drainable.
  void Close();

  /// Rebounds the queue (clamped to >= 1). Shrinking below the current
  /// depth drops nothing — existing items drain normally, new pushes see
  /// the tighter bound. Degraded mode uses this to tighten backpressure.
  void SetCapacity(std::size_t capacity);

  bool closed() const;
  std::size_t depth() const;
  std::size_t capacity() const;
  UpdateQueueStats stats() const;

 private:
  struct Item {
    EdgeUpdate update;
    double enqueue_seconds = 0.0;
  };

  /// The shared drain tail of PopBatch/PopBatchFor: latency-budget wait,
  /// take, coalesce. Requires at least one item (lock held).
  void DrainLocked(std::unique_lock<std::mutex>* lock, DrainedBatch* out);

  UpdateQueueOptions options_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Item> items_;
  UpdateQueueStats stats_;
  bool closed_ = false;
};

/// In-place batch coalescing (DESIGN.md §8). Per canonical edge key, the
/// batch's ops form a toggle chain, so only the first and last op matter:
///
///   first == kAdd,    last == kRemove  -> edge absent before and after:
///                                         every op dropped
///   first == kRemove, last == kAdd     -> edge present before and after,
///                                         and exact scores depend only on
///                                         the final graph: all dropped
///   otherwise                          -> keep only the last op
///
/// Survivors keep their relative arrival order (ops on distinct edges are
/// independently applicable, so the collapsed batch is always applicable).
/// Returns the number of updates removed.
std::size_t CoalesceUpdates(bool directed, std::vector<EdgeUpdate>* batch);

}  // namespace sobc

#endif  // SOBC_SERVER_UPDATE_QUEUE_H_
