#ifndef SOBC_SERVER_SERVE_METRICS_H_
#define SOBC_SERVER_SERVE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace sobc {

/// One coherent reading of the serving counters. Counters are monotonic;
/// quantiles cover the retained latency samples. The writer-side fields
/// come from ServeMetrics::Read; received/dropped/epoch_lag are filled by
/// BcService::metrics() from the queue's own stats (the single source of
/// truth for push accounting).
struct ServeMetricsSnapshot {
  /// Version of the JSON object ToJson emits, as its `schema_version`
  /// field — bumped whenever a key is added, renamed, or removed, so
  /// dashboards can detect a schema they don't understand instead of
  /// silently charting missing keys as zero. (v1 predates the field.)
  /// metrics_schema_test pins the emitted key set against the documented
  /// table in docs/OPERATIONS.md §3; changing either side alone fails it.
  /// (v3 added the cluster failover/migration keys; v4 the MS-BFS kernel
  /// counters; v5 the sampled-approximation gauges.)
  static constexpr std::uint64_t kSchemaVersion = 5;

  std::uint64_t received = 0;   // accepted into the queue
  std::uint64_t dropped = 0;    // rejected by backpressure
  std::uint64_t applied = 0;    // reached the engine, post-coalescing
  std::uint64_t coalesced = 0;  // collapsed away before the engine
  std::uint64_t batches = 0;
  std::uint64_t publishes = 0;

  /// Latest published epoch and its stream position; the queue lag
  /// `received - published_stream_position` is how far reads trail writes.
  std::uint64_t publish_epoch = 0;
  std::uint64_t published_stream_position = 0;
  std::uint64_t epoch_lag = 0;

  /// Per-source accounting of the apply path, summed over every applied
  /// batch: how many source passes the updates implied in total and how
  /// many the endpoint-BFS prefilter eliminated without a BD probe
  /// (Proposition 3.1). Their ratio — emitted as prefilter_skip_rate in
  /// the JSON — is the skip-rate `sobc_cli serve` surfaces.
  std::uint64_t sources_total = 0;
  std::uint64_t sources_prefiltered = 0;

  /// Bit-parallel MS-BFS accounting, summed over every applied batch:
  /// kernel batches run (prefilter 2-lane folds plus the engine's 64-lane
  /// structural batches) and how many of their BFS levels the
  /// direction-optimizing heuristic expanded bottom-up. Both stay zero
  /// when the deployment runs with --no-msbfs.
  std::uint64_t msbfs_batches = 0;
  std::uint64_t bottom_up_levels = 0;

  /// Durability-side counters, filled by BcService::metrics() from the
  /// WAL writer's and checkpoint writer's own stats (all zero when the
  /// service runs without a wal_dir). wal_appends counts logged batches;
  /// checkpoints_skipped counts triggers dropped because the previous
  /// checkpoint was still being written.
  std::uint64_t wal_appends = 0;
  std::uint64_t wal_appended_updates = 0;
  std::uint64_t wal_bytes = 0;
  std::uint64_t wal_syncs = 0;
  std::uint64_t wal_rotations = 0;
  std::uint64_t checkpoints_written = 0;
  std::uint64_t checkpoints_skipped = 0;
  std::uint64_t checkpoints_failed = 0;
  std::uint64_t last_checkpoint_epoch = 0;
  double checkpoint_write_seconds = 0.0;
  /// Newest epoch the WAL has confirmed durable via a successful
  /// fdatasync; freezes after a failed sync (fsyncgate — see WalWriter).
  std::uint64_t wal_last_durable_epoch = 0;

  /// Health of the serving layer (BcService::ServiceHealth as an int:
  /// 0 healthy, 1 degraded, 2 read-only) plus the operator-facing detail:
  /// whether checkpointing is suspended, whether the watchdog flagged the
  /// writer as stalled, and the error that drove the last transition
  /// ("" while healthy). `health` is the state as a string for humans.
  std::uint64_t health_state = 0;
  std::uint64_t checkpoints_suspended = 0;
  std::uint64_t writer_stalled = 0;
  std::string health = "healthy";
  std::string last_error;

  /// Process-wide transient-I/O accounting (see IoCounters): syscalls
  /// retried after EINTR/EAGAIN, retry budgets exhausted, and faults the
  /// injection layer fired (0 outside fault-injection runs).
  std::uint64_t io_retries = 0;
  std::uint64_t io_retries_exhausted = 0;
  std::uint64_t io_faults_injected = 0;

  /// Cluster-plane counters, filled by ClusterCoordinator::metrics()
  /// (all zero for a single-process service). `failovers` counts standby
  /// takeovers this process performed; `failover_gap_seconds` is the
  /// detect-to-first-publish gap of the most recent one.
  /// `standby_attached` is 1 while a standby tails this primary's replay
  /// window, and `replicated_batches` counts batches shipped over (or
  /// tailed from) the standby feed. The migration trio tracks live
  /// rebalances: started/completed counts plus the double-apply lag of
  /// the in-flight one (batches applied on both donor and recipient
  /// while the handoff is open — 0 when no migration is running).
  /// `shard_map_version` is the current map generation (0 outside
  /// cluster mode, 1 at bring-up, +1 per committed split/merge).
  std::uint64_t failovers = 0;
  double failover_gap_seconds = 0.0;
  std::uint64_t standby_attached = 0;
  std::uint64_t replicated_batches = 0;
  std::uint64_t migrations_started = 0;
  std::uint64_t migrations_completed = 0;
  std::uint64_t migration_lag_batches = 0;
  std::uint64_t shard_map_version = 0;

  /// Sampled-approximation gauges (DESIGN.md §15), filled by
  /// BcService::metrics() from the engine's ApproxStatus after each batch.
  /// All zero for an exact deployment (approx_samples == 0 is the
  /// "approximation off" signal). `approx_drift` is the current drift
  /// ledger value — the estimate of accumulated staleness the resampling
  /// policy compares against epsilon; `approx_sample_epoch` increments
  /// when a resampling round completes, so dashboards can correlate
  /// estimate jumps with sample-set generations.
  std::uint64_t approx_samples = 0;
  std::uint64_t approx_sample_epoch = 0;
  std::uint64_t approx_resamples = 0;
  std::uint64_t approx_source_swaps = 0;
  double approx_drift = 0.0;

  /// Submit-to-publish latency per consumed update (coalesced ones
  /// included — their effect was published even if they never ran).
  double p50_update_latency_seconds = 0.0;
  double p99_update_latency_seconds = 0.0;
  /// Engine time per applied batch.
  double p50_batch_apply_seconds = 0.0;
  double p99_batch_apply_seconds = 0.0;

  /// The snapshot as one JSON object (the BENCH_serve.json building block).
  std::string ToJson() const;
};

/// Thread-safe observability for the writer side of the serving layer:
/// one entry per applied batch (push-side accounting lives in
/// UpdateQueueStats). Counter reads are lock-free; the latency reservoirs
/// keep the most recent samples (bounded ring) under a mutex the writer
/// touches once per batch.
class ServeMetrics {
 public:
  static constexpr std::size_t kMaxSamples = 1 << 14;

  /// One applied-and-published batch: `applied` post-coalescing updates,
  /// `coalesced` collapsed away, engine time, per-consumed-update
  /// submit-to-publish latencies, the publication it produced, and the
  /// batch's source-pass accounting (total vs. prefilter-eliminated).
  void RecordBatch(std::size_t applied, std::size_t coalesced,
                   double apply_seconds,
                   std::span<const double> update_latencies,
                   std::uint64_t publish_epoch, std::uint64_t stream_position,
                   std::uint64_t sources_total = 0,
                   std::uint64_t sources_prefiltered = 0,
                   std::uint64_t msbfs_batches = 0,
                   std::uint64_t bottom_up_levels = 0);

  ServeMetricsSnapshot Read() const;

  /// Primes the publication cursor after recovery so epoch lag reads
  /// correctly before the first post-recovery batch is applied. Counters
  /// (publishes, batches) are untouched — they cover this process's work.
  void SeedPublication(std::uint64_t epoch, std::uint64_t stream_position);

  /// Publishes the approximation gauges after a batch (no-op values for
  /// exact deployments are fine — zeros read as "approximation off").
  void RecordApprox(std::uint64_t samples, std::uint64_t sample_epoch,
                    std::uint64_t resamples, std::uint64_t source_swaps,
                    double drift);

 private:
  static void PushSample(std::vector<double>* ring, std::size_t* next,
                         double value);

  std::atomic<std::uint64_t> applied_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> publishes_{0};
  std::atomic<std::uint64_t> publish_epoch_{0};
  std::atomic<std::uint64_t> published_stream_position_{0};
  std::atomic<std::uint64_t> sources_total_{0};
  std::atomic<std::uint64_t> sources_prefiltered_{0};
  std::atomic<std::uint64_t> msbfs_batches_{0};
  std::atomic<std::uint64_t> bottom_up_levels_{0};
  std::atomic<std::uint64_t> approx_samples_{0};
  std::atomic<std::uint64_t> approx_sample_epoch_{0};
  std::atomic<std::uint64_t> approx_resamples_{0};
  std::atomic<std::uint64_t> approx_source_swaps_{0};
  std::atomic<double> approx_drift_{0.0};

  mutable std::mutex sample_mu_;
  std::vector<double> latency_samples_;
  std::size_t latency_next_ = 0;
  std::vector<double> batch_samples_;
  std::size_t batch_next_ = 0;
};

}  // namespace sobc

#endif  // SOBC_SERVER_SERVE_METRICS_H_
