#include "server/serve_metrics.h"

#include <cstdio>

#include "common/stats.h"

namespace sobc {

namespace {

void AppendField(std::string* out, const char* name, double value,
                 bool trailing_comma = true) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "\"%s\": %.9g%s", name, value,
                trailing_comma ? ", " : "");
  *out += buf;
}

void AppendField(std::string* out, const char* name, std::uint64_t value,
                 bool trailing_comma = true) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "\"%s\": %llu%s", name,
                static_cast<unsigned long long>(value),
                trailing_comma ? ", " : "");
  *out += buf;
}

void AppendField(std::string* out, const char* name, const std::string& value,
                 bool trailing_comma = true) {
  *out += "\"";
  *out += name;
  *out += "\": \"";
  for (const char c : value) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += trailing_comma ? "\", " : "\"";
}

}  // namespace

void ServeMetrics::PushSample(std::vector<double>* ring, std::size_t* next,
                              double value) {
  if (ring->size() < kMaxSamples) {
    ring->push_back(value);
  } else {
    (*ring)[*next] = value;
    *next = (*next + 1) % kMaxSamples;
  }
}

void ServeMetrics::RecordBatch(std::size_t applied, std::size_t coalesced,
                               double apply_seconds,
                               std::span<const double> update_latencies,
                               std::uint64_t publish_epoch,
                               std::uint64_t stream_position,
                               std::uint64_t sources_total,
                               std::uint64_t sources_prefiltered,
                               std::uint64_t msbfs_batches,
                               std::uint64_t bottom_up_levels) {
  applied_.fetch_add(applied, std::memory_order_relaxed);
  coalesced_.fetch_add(coalesced, std::memory_order_relaxed);
  sources_total_.fetch_add(sources_total, std::memory_order_relaxed);
  sources_prefiltered_.fetch_add(sources_prefiltered,
                                 std::memory_order_relaxed);
  msbfs_batches_.fetch_add(msbfs_batches, std::memory_order_relaxed);
  bottom_up_levels_.fetch_add(bottom_up_levels, std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  publishes_.fetch_add(1, std::memory_order_relaxed);
  publish_epoch_.store(publish_epoch, std::memory_order_relaxed);
  published_stream_position_.store(stream_position,
                                   std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(sample_mu_);
  for (double latency : update_latencies) {
    PushSample(&latency_samples_, &latency_next_, latency);
  }
  PushSample(&batch_samples_, &batch_next_, apply_seconds);
}

void ServeMetrics::SeedPublication(std::uint64_t epoch,
                                   std::uint64_t stream_position) {
  publish_epoch_.store(epoch, std::memory_order_relaxed);
  published_stream_position_.store(stream_position, std::memory_order_relaxed);
}

void ServeMetrics::RecordApprox(std::uint64_t samples,
                                std::uint64_t sample_epoch,
                                std::uint64_t resamples,
                                std::uint64_t source_swaps, double drift) {
  approx_samples_.store(samples, std::memory_order_relaxed);
  approx_sample_epoch_.store(sample_epoch, std::memory_order_relaxed);
  approx_resamples_.store(resamples, std::memory_order_relaxed);
  approx_source_swaps_.store(source_swaps, std::memory_order_relaxed);
  approx_drift_.store(drift, std::memory_order_relaxed);
}

ServeMetricsSnapshot ServeMetrics::Read() const {
  ServeMetricsSnapshot snap;
  snap.applied = applied_.load(std::memory_order_relaxed);
  snap.coalesced = coalesced_.load(std::memory_order_relaxed);
  snap.batches = batches_.load(std::memory_order_relaxed);
  snap.publishes = publishes_.load(std::memory_order_relaxed);
  snap.publish_epoch = publish_epoch_.load(std::memory_order_relaxed);
  snap.published_stream_position =
      published_stream_position_.load(std::memory_order_relaxed);
  snap.sources_total = sources_total_.load(std::memory_order_relaxed);
  snap.sources_prefiltered =
      sources_prefiltered_.load(std::memory_order_relaxed);
  snap.msbfs_batches = msbfs_batches_.load(std::memory_order_relaxed);
  snap.bottom_up_levels = bottom_up_levels_.load(std::memory_order_relaxed);
  snap.approx_samples = approx_samples_.load(std::memory_order_relaxed);
  snap.approx_sample_epoch =
      approx_sample_epoch_.load(std::memory_order_relaxed);
  snap.approx_resamples = approx_resamples_.load(std::memory_order_relaxed);
  snap.approx_source_swaps =
      approx_source_swaps_.load(std::memory_order_relaxed);
  snap.approx_drift = approx_drift_.load(std::memory_order_relaxed);
  std::vector<double> latencies;
  std::vector<double> batch_seconds;
  {
    std::lock_guard<std::mutex> lock(sample_mu_);
    latencies = latency_samples_;
    batch_seconds = batch_samples_;
  }
  if (!latencies.empty()) {
    const Summary summary(std::move(latencies));
    snap.p50_update_latency_seconds = summary.Quantile(0.5);
    snap.p99_update_latency_seconds = summary.Quantile(0.99);
  }
  if (!batch_seconds.empty()) {
    const Summary summary(std::move(batch_seconds));
    snap.p50_batch_apply_seconds = summary.Quantile(0.5);
    snap.p99_batch_apply_seconds = summary.Quantile(0.99);
  }
  return snap;
}

std::string ServeMetricsSnapshot::ToJson() const {
  std::string out = "{";
  AppendField(&out, "schema_version", kSchemaVersion);
  AppendField(&out, "received", received);
  AppendField(&out, "dropped", dropped);
  AppendField(&out, "applied", applied);
  AppendField(&out, "coalesced", coalesced);
  AppendField(&out, "batches", batches);
  AppendField(&out, "publishes", publishes);
  AppendField(&out, "publish_epoch", publish_epoch);
  AppendField(&out, "published_stream_position", published_stream_position);
  AppendField(&out, "epoch_lag", epoch_lag);
  AppendField(&out, "sources_total", sources_total);
  AppendField(&out, "sources_prefiltered", sources_prefiltered);
  AppendField(&out, "prefilter_skip_rate",
              sources_total > 0 ? static_cast<double>(sources_prefiltered) /
                                      static_cast<double>(sources_total)
                                : 0.0);
  AppendField(&out, "msbfs_batches", msbfs_batches);
  AppendField(&out, "bottom_up_levels", bottom_up_levels);
  AppendField(&out, "approx_samples", approx_samples);
  AppendField(&out, "approx_sample_epoch", approx_sample_epoch);
  AppendField(&out, "approx_resamples", approx_resamples);
  AppendField(&out, "approx_source_swaps", approx_source_swaps);
  AppendField(&out, "approx_drift", approx_drift);
  AppendField(&out, "wal_appends", wal_appends);
  AppendField(&out, "wal_appended_updates", wal_appended_updates);
  AppendField(&out, "wal_bytes", wal_bytes);
  AppendField(&out, "wal_syncs", wal_syncs);
  AppendField(&out, "wal_rotations", wal_rotations);
  AppendField(&out, "checkpoints_written", checkpoints_written);
  AppendField(&out, "checkpoints_skipped", checkpoints_skipped);
  AppendField(&out, "checkpoints_failed", checkpoints_failed);
  AppendField(&out, "last_checkpoint_epoch", last_checkpoint_epoch);
  AppendField(&out, "checkpoint_write_seconds", checkpoint_write_seconds);
  AppendField(&out, "wal_last_durable_epoch", wal_last_durable_epoch);
  AppendField(&out, "health_state", health_state);
  AppendField(&out, "health", health);
  AppendField(&out, "checkpoints_suspended", checkpoints_suspended);
  AppendField(&out, "writer_stalled", writer_stalled);
  AppendField(&out, "last_error", last_error);
  AppendField(&out, "io_retries", io_retries);
  AppendField(&out, "io_retries_exhausted", io_retries_exhausted);
  AppendField(&out, "io_faults_injected", io_faults_injected);
  AppendField(&out, "failovers", failovers);
  AppendField(&out, "failover_gap_seconds", failover_gap_seconds);
  AppendField(&out, "standby_attached", standby_attached);
  AppendField(&out, "replicated_batches", replicated_batches);
  AppendField(&out, "migrations_started", migrations_started);
  AppendField(&out, "migrations_completed", migrations_completed);
  AppendField(&out, "migration_lag_batches", migration_lag_batches);
  AppendField(&out, "shard_map_version", shard_map_version);
  AppendField(&out, "p50_update_latency_seconds", p50_update_latency_seconds);
  AppendField(&out, "p99_update_latency_seconds", p99_update_latency_seconds);
  AppendField(&out, "p50_batch_apply_seconds", p50_batch_apply_seconds);
  AppendField(&out, "p99_batch_apply_seconds", p99_batch_apply_seconds,
              /*trailing_comma=*/false);
  out += "}";
  return out;
}

}  // namespace sobc
