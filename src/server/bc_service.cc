#include "server/bc_service.h"

#include <cstdlib>
#include <utility>

#include "bc/bd_store_disk.h"
#include "common/timer.h"
#include "storage/record_codec.h"

namespace sobc {

namespace {

const char* VariantName(BcVariant variant) {
  switch (variant) {
    case BcVariant::kMemoryPredecessors:
      return "mp";
    case BcVariant::kMemory:
      return "mo";
    case BcVariant::kOutOfCore:
      return "do";
  }
  return "mo";
}

}  // namespace

BcService::BcService(std::unique_ptr<DynamicBc> bc,
                     const BcServiceOptions& options)
    : options_(options), bc_(std::move(bc)), queue_(options.queue) {}

Result<std::unique_ptr<BcService>> BcService::Create(
    Graph graph, const BcServiceOptions& options) {
  BcServiceOptions resolved = options;
  resolved.queue.directed = graph.directed();
  auto bc = DynamicBc::Create(std::move(graph), resolved.bc);
  if (!bc.ok()) return bc.status();
  auto service = std::unique_ptr<BcService>(
      new BcService(std::move(*bc), resolved));
  // Epoch 0: the Step-1 scores are queryable before any update arrives,
  // and before the writer exists — no publication ever races with it.
  service->snapshots_.Publish(BuildSnapshot(
      service->bc_->graph(), service->bc_->scores(), /*epoch=*/0,
      /*stream_position=*/0, resolved.top_k, resolved.snapshot_edge_scores));
  if (resolved.durability.enabled()) {
    // Refuse pre-existing durable state in either directory: a log is
    // Recover's job, and stale higher-epoch manifests from a previous
    // deployment would win retention pruning and the fallback ladder.
    auto has_log = WalDirHasSegments(resolved.durability.wal_dir);
    if (!has_log.ok()) return has_log.status();
    if (*has_log) {
      return Status::FailedPrecondition(
          "wal dir " + resolved.durability.wal_dir +
          " already holds a log; Recover it or point at a fresh directory");
    }
    SOBC_RETURN_NOT_OK(
        service->StartDurability(/*next_epoch=*/1, /*initial_checkpoint=*/true));
  }
  service->writer_ = std::thread([raw = service.get()] { raw->WriterLoop(); });
  return service;
}

Result<std::unique_ptr<BcService>> BcService::Recover(
    const BcServiceOptions& options, RecoveryInfo* info) {
  BcServiceOptions resolved = options;
  DurabilityOptions& durability = resolved.durability;
  if (!durability.enabled()) {
    return Status::InvalidArgument("Recover requires durability.wal_dir");
  }
  if (durability.checkpoint_dir.empty()) {
    durability.checkpoint_dir = durability.wal_dir + "/checkpoints";
  }
  RecoveryInfo local_info;
  RecoveryInfo& out = info != nullptr ? *info : local_info;

  WallTimer load_timer;
  auto loaded = LoadLatestCheckpoint(durability.checkpoint_dir);
  if (!loaded.ok()) return loaded.status();
  const CheckpointManifest manifest = loaded->manifest;
  out.manifest_epoch = manifest.epoch;
  out.manifest_stream_position = manifest.stream_position;
  out.variant = manifest.variant;
  resolved.queue.directed = manifest.directed;

  std::unique_ptr<DynamicBc> bc;
  if (manifest.variant == "do") {
    // Install the generation-stamped store copy as the live file and skip
    // Step 1 entirely; the byte-exact BD state is what makes serial-apply
    // recovery bit-identical to the uninterrupted run.
    resolved.bc.variant = BcVariant::kOutOfCore;
    if (resolved.bc.storage_path.empty()) {
      resolved.bc.storage_path = durability.checkpoint_dir + "/live.bd";
    }
    SOBC_RETURN_NOT_OK(CopyFile(loaded->store_path, resolved.bc.storage_path));
    auto resumed = DynamicBc::Resume(
        std::move(loaded->graph), resolved.bc,
        durability.checkpoint_dir + "/" + manifest.scores_file);
    if (!resumed.ok()) return resumed.status();
    bc = std::move(*resumed);
  } else if (manifest.variant == "mo" || manifest.variant == "mp") {
    // Warm restart: the O(nm) Step 1 rebuilds the in-memory BD structures
    // (they cannot outlive a process), but the checkpointed scores — which
    // include every pre-checkpoint update — replace the fresh ones, and
    // the WAL tail spares re-running the whole stream.
    resolved.bc.variant = manifest.variant == "mp"
                              ? BcVariant::kMemoryPredecessors
                              : BcVariant::kMemory;
    resolved.bc.storage_path.clear();
    auto created = DynamicBc::Create(std::move(loaded->graph), resolved.bc);
    if (!created.ok()) return created.status();
    SOBC_RETURN_NOT_OK((*created)->RestoreScores(std::move(loaded->scores)));
    bc = std::move(*created);
  } else {
    return Status::IOError("manifest names unknown variant '" +
                           manifest.variant + "'");
  }
  out.load_seconds = load_timer.Seconds();

  // Replay the WAL tail through the same batch-apply machinery the live
  // writer uses; each logged record reproduces exactly one publication of
  // the uninterrupted run. A torn final frame (crash mid-append) is
  // truncated away — its batch was never applied, let alone published.
  WallTimer replay_timer;
  auto replay = ReadWalForReplay(durability.wal_dir, manifest.epoch,
                                 /*truncate_torn_tail=*/true);
  if (!replay.ok()) return replay.status();
  out.torn_bytes = replay->torn_bytes;
  std::uint64_t epoch = manifest.epoch;
  std::uint64_t position = manifest.stream_position;
  for (std::size_t i = 0; i < replay->records.size(); ++i) {
    const WalRecord& record = replay->records[i];
    if (record.stream_position < position) {
      return Status::IOError("wal stream position regressed at epoch " +
                             std::to_string(record.epoch));
    }
    if (!record.updates.empty()) {
      if (Status st = bc->ApplyBatch(record.updates); !st.ok()) {
        const bool client_data_error =
            st.code() == StatusCode::kInvalidArgument ||
            st.code() == StatusCode::kNotFound ||
            st.code() == StatusCode::kAlreadyExists ||
            st.code() == StatusCode::kOutOfRange;
        if (client_data_error && i + 1 == replay->records.size()) {
          // The poisoned record that killed the live writer: logged (the
          // log-before-apply order), deterministically rejected by the
          // engine, never published. It must be the log's last record —
          // the writer died on it. Amputate it and re-enter recovery
          // from clean checkpoint state (this pass's framework applied
          // part of the batch before the rejection), preserving the
          // guarantee that recovery lands on the last PUBLISHED state.
          SOBC_RETURN_NOT_OK(TruncateWalSegment(
              durability.wal_dir, record.segment, record.frame_offset));
          const std::uint64_t poisoned_batches = out.poisoned_batches + 1;
          const std::uint64_t poisoned_updates =
              out.poisoned_updates + record.updates.size();
          bc.reset();  // release the live store before the re-entry reopens it
          if (info != nullptr) *info = RecoveryInfo{};  // re-entry refills
          auto recovered = Recover(options, info);
          if (recovered.ok() && info != nullptr) {
            info->poisoned_batches = poisoned_batches;
            info->poisoned_updates = poisoned_updates;
          }
          return recovered;
        }
        // Anything else — an internal/IO failure, or a rejected record
        // with valid history after it — is not a legal crash artifact.
        return st;
      }
    }
    epoch = record.epoch;
    position = record.stream_position;
    ++out.replayed_batches;
    out.replayed_updates += record.updates.size();
  }
  out.replay_seconds = replay_timer.Seconds();
  out.recovered_epoch = epoch;
  out.recovered_stream_position = position;

  auto service = std::unique_ptr<BcService>(
      new BcService(std::move(bc), resolved));
  service->base_epoch_ = epoch;
  service->base_position_ = position;
  service->final_epoch_ = epoch;
  service->final_position_ = position;
  service->published_position_.store(position, std::memory_order_release);
  service->metrics_.SeedPublication(epoch, position);
  service->snapshots_.Publish(BuildSnapshot(
      service->bc_->graph(), service->bc_->scores(), epoch, position,
      resolved.top_k, resolved.snapshot_edge_scores));
  // New appends land in a fresh segment starting right after the
  // recovered epoch; the replayed segments stay until a checkpoint covers
  // them (a second crash before then replays the same tail again).
  SOBC_RETURN_NOT_OK(
      service->StartDurability(epoch + 1, /*initial_checkpoint=*/false));
  service->writer_ = std::thread([raw = service.get()] { raw->WriterLoop(); });
  return service;
}

Status BcService::StartDurability(std::uint64_t next_epoch,
                                  bool initial_checkpoint) {
  DurabilityOptions& durability = options_.durability;
  if (durability.checkpoint_dir.empty()) {
    durability.checkpoint_dir = durability.wal_dir + "/checkpoints";
  }
  if (initial_checkpoint) {
    auto has_checkpoints =
        CheckpointDirHasManifests(durability.checkpoint_dir);
    if (!has_checkpoints.ok()) return has_checkpoints.status();
    if (*has_checkpoints) {
      return Status::FailedPrecondition(
          "checkpoint dir " + durability.checkpoint_dir +
          " already holds checkpoints; Recover them or point at a fresh "
          "directory");
    }
  }
  checkpointer_ = std::make_unique<CheckpointWriter>(
      durability.checkpoint_dir, durability.wal_dir,
      durability.retain_checkpoints);
  if (initial_checkpoint) {
    // The initial checkpoint is what makes the WAL replayable at all (a
    // log without a base graph recovers nothing), and it must be durable
    // BEFORE the first WAL segment exists: a crash between the two leaves
    // state both Create (segments present) and Recover (no manifest)
    // would refuse. Committed synchronously, in the safe order.
    auto job = CaptureCheckpointJob(base_epoch_, base_position_);
    if (!job.ok()) return job.status();
    SOBC_RETURN_NOT_OK(checkpointer_->WriteNow(std::move(*job)));
  }
  WalOptions wal_options;
  wal_options.fsync_every = durability.wal_fsync_every;
  auto wal = WalWriter::Open(durability.wal_dir, next_epoch, wal_options);
  if (!wal.ok()) return wal.status();
  wal_ = std::move(*wal);
  last_checkpoint_stamp_ = SteadyNowSeconds();
  return Status::OK();
}

Result<CheckpointWriter::Job> BcService::CaptureCheckpointJob(
    std::uint64_t epoch, std::uint64_t position) {
  CheckpointWriter::Job job;
  job.epoch = epoch;
  job.stream_position = position;
  job.graph = bc_->graph();
  job.scores = bc_->scores();
  job.variant = VariantName(options_.bc.variant);
  if (options_.bc.variant == BcVariant::kOutOfCore) {
    auto* disk = dynamic_cast<DiskBdStore*>(bc_->store());
    if (disk == nullptr) {
      return Status::Internal("out-of-core framework without a disk store");
    }
    // Flush makes the file the full BD state; nothing mutates it until
    // this capture returns (the writer is here, workers are parked), so
    // the byte copy is a consistent generation stamped by its epoch.
    SOBC_RETURN_NOT_OK(disk->Flush());
    job.store_file = "bd-" + std::to_string(epoch) + ".bin";
    job.store_codec = RecordCodecName(disk->codec());
    SOBC_RETURN_NOT_OK(CopyFile(disk->path(),
                                checkpointer_->dir() + "/" + job.store_file,
                                &job.store_crc));
  }
  return job;
}

Status BcService::MaybeCheckpoint(std::uint64_t epoch,
                                  std::uint64_t position) {
  const DurabilityOptions& durability = options_.durability;
  bool due = durability.checkpoint_every_updates > 0 &&
             updates_since_checkpoint_ >= durability.checkpoint_every_updates;
  if (!due && durability.checkpoint_interval_seconds > 0 &&
      SteadyNowSeconds() - last_checkpoint_stamp_ >=
          durability.checkpoint_interval_seconds) {
    due = true;
  }
  if (!due) return Status::OK();
  // Reset the policy clock even when the trigger is skipped, so a slow
  // in-flight checkpoint is not hammered with a capture per batch.
  updates_since_checkpoint_ = 0;
  last_checkpoint_stamp_ = SteadyNowSeconds();
  if (!checkpointer_->AdmitTrigger()) return Status::OK();
  auto job = CaptureCheckpointJob(epoch, position);
  if (!job.ok()) return job.status();
  if (checkpointer_->Enqueue(std::move(*job))) {
    // Segment boundary aligned to the checkpoint: once its manifest is
    // durable, every earlier segment is fully covered and prunable.
    SOBC_RETURN_NOT_OK(wal_->Rotate(epoch + 1));
  }
  return Status::OK();
}

BcService::~BcService() { (void)Stop(); }

bool BcService::Submit(const EdgeUpdate& update) {
  return queue_.Push(update);
}

ServeMetricsSnapshot BcService::metrics() const {
  ServeMetricsSnapshot snap = metrics_.Read();
  const UpdateQueueStats queue_stats = queue_.stats();
  snap.received = queue_stats.received;
  snap.dropped = queue_stats.dropped;
  const std::uint64_t received_absolute = base_position_ + queue_stats.received;
  snap.epoch_lag = received_absolute > snap.published_stream_position
                       ? received_absolute - snap.published_stream_position
                       : 0;
  if (wal_ != nullptr) {
    const WalStats wal_stats = wal_->stats();
    snap.wal_appends = wal_stats.appends;
    snap.wal_appended_updates = wal_stats.appended_updates;
    snap.wal_bytes = wal_stats.bytes;
    snap.wal_syncs = wal_stats.syncs;
    snap.wal_rotations = wal_stats.rotations;
  }
  if (checkpointer_ != nullptr) {
    const CheckpointStats checkpoint_stats = checkpointer_->stats();
    snap.checkpoints_written = checkpoint_stats.written;
    snap.checkpoints_skipped = checkpoint_stats.skipped;
    snap.checkpoints_failed = checkpoint_stats.failed;
    snap.last_checkpoint_epoch = checkpoint_stats.last_epoch;
    snap.checkpoint_write_seconds = checkpoint_stats.write_seconds_total;
  }
  return snap;
}

std::size_t BcService::SubmitAll(const EdgeStream& stream) {
  std::size_t accepted = 0;
  for (const EdgeUpdate& update : stream) {
    if (Submit(update)) ++accepted;
  }
  return accepted;
}

void BcService::WriterLoop() {
  std::uint64_t position = base_position_;
  std::uint64_t epoch = base_epoch_;
  DrainedBatch batch;
  auto fail = [this](Status st) {
    // Terminal: publishables stop here. Close the queue so blocked
    // producers unblock, record the failure, and let Drain/Stop report.
    queue_.Close();
    std::lock_guard<std::mutex> lock(mu_);
    writer_status_ = std::move(st);
    writer_done_ = true;
    publish_cv_.notify_all();
  };
  while (queue_.PopBatch(&batch)) {
    if (wal_ != nullptr) {
      // Log-before-apply: by the time any effect of this batch can exist
      // (in memory or in the BD store file), the batch itself is already
      // recoverable. An empty coalesced-away batch still logs — replay
      // must reproduce its epoch and position.
      if (Status st = wal_->Append(epoch + 1, position + batch.consumed,
                                   batch.updates);
          !st.ok()) {
        fail(std::move(st));
        return;
      }
      if (options_.durability.kill_after_appends > 0 &&
          wal_->stats().appends >= options_.durability.kill_after_appends) {
        // Crash injection (tests, CI recovery smoke): die hard with the
        // logged batch never applied — the worst legal crash point.
        (void)wal_->Sync();
        std::_Exit(137);
      }
    }
    WallTimer apply_timer;
    Status st = batch.updates.empty()
                    ? Status::OK()
                    : bc_->ApplyBatch(batch.updates);
    const double apply_seconds = apply_timer.Seconds();
    if (!st.ok()) {
      fail(std::move(st));
      return;
    }
    position += batch.consumed;
    ++epoch;
    snapshots_.Publish(BuildSnapshot(bc_->graph(), bc_->scores(), epoch,
                                     position, options_.top_k,
                                     options_.snapshot_edge_scores));
    // Latency is submit-to-publish: the moment a consumed update's effect
    // (possibly "no effect", for coalesced churn) became readable.
    const double now = SteadyNowSeconds();
    for (double& t : batch.enqueue_seconds) t = now - t;
    const UpdateStats& update_stats = bc_->last_update_stats();
    metrics_.RecordBatch(batch.updates.size(),
                         batch.consumed - batch.updates.size(), apply_seconds,
                         batch.enqueue_seconds, epoch, position,
                         update_stats.sources_total,
                         update_stats.sources_prefiltered);
    {
      // The store must happen under mu_ so a Drain caller between its
      // predicate check and its sleep cannot miss this publication.
      std::lock_guard<std::mutex> lock(mu_);
      published_position_.store(position, std::memory_order_release);
      final_epoch_ = epoch;
      final_position_ = position;
    }
    publish_cv_.notify_all();
    if (checkpointer_ != nullptr) {
      updates_since_checkpoint_ += batch.consumed;
      if (Status ck = MaybeCheckpoint(epoch, position); !ck.ok()) {
        fail(std::move(ck));
        return;
      }
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  writer_done_ = true;
  publish_cv_.notify_all();
}

Status BcService::Drain() {
  const std::uint64_t target = base_position_ + queue_.stats().received;
  std::unique_lock<std::mutex> lock(mu_);
  publish_cv_.wait(lock, [&] {
    return writer_done_ || !writer_status_.ok() ||
           published_position_.load(std::memory_order_acquire) >= target;
  });
  if (!writer_status_.ok()) return writer_status_;
  if (published_position_.load(std::memory_order_acquire) < target) {
    return Status::FailedPrecondition(
        "writer exited before draining every accepted update");
  }
  return Status::OK();
}

Status BcService::Stop() {
  queue_.Close();
  if (writer_.joinable()) writer_.join();
  // The writer can no longer touch the framework; push the final BD state
  // to stable storage so a serve-mode out-of-core deployment is resumable
  // (no-op for the in-memory variants).
  const Status flush = bc_->store()->Flush();
  std::uint64_t epoch = 0;
  std::uint64_t position = 0;
  bool clean = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (writer_status_.ok() && !flush.ok()) writer_status_ = flush;
    epoch = final_epoch_;
    position = final_position_;
    clean = writer_status_.ok();
  }
  if (checkpointer_ != nullptr && !final_checkpoint_done_) {
    final_checkpoint_done_ = true;
    Status background = checkpointer_->WaitIdle();
    Status final_status = background;
    if (clean && background.ok()) {
      // A clean shutdown commits a checkpoint at the final epoch, so the
      // next start replays nothing.
      auto job = CaptureCheckpointJob(epoch, position);
      final_status = job.ok() ? checkpointer_->WriteNow(std::move(*job))
                              : job.status();
    }
    if (!final_status.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      if (writer_status_.ok()) writer_status_ = final_status;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  return writer_status_;
}

}  // namespace sobc
