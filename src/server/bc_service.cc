#include "server/bc_service.h"

#include <utility>

#include "common/timer.h"

namespace sobc {

BcService::BcService(std::unique_ptr<DynamicBc> bc,
                     const BcServiceOptions& options)
    : options_(options), bc_(std::move(bc)), queue_(options.queue) {}

Result<std::unique_ptr<BcService>> BcService::Create(
    Graph graph, const BcServiceOptions& options) {
  BcServiceOptions resolved = options;
  resolved.queue.directed = graph.directed();
  auto bc = DynamicBc::Create(std::move(graph), resolved.bc);
  if (!bc.ok()) return bc.status();
  auto service = std::unique_ptr<BcService>(
      new BcService(std::move(*bc), resolved));
  // Epoch 0: the Step-1 scores are queryable before any update arrives,
  // and before the writer exists — no publication ever races with it.
  service->snapshots_.Publish(BuildSnapshot(
      service->bc_->graph(), service->bc_->scores(), /*epoch=*/0,
      /*stream_position=*/0, resolved.top_k, resolved.snapshot_edge_scores));
  service->writer_ = std::thread([raw = service.get()] { raw->WriterLoop(); });
  return service;
}

BcService::~BcService() { (void)Stop(); }

bool BcService::Submit(const EdgeUpdate& update) {
  return queue_.Push(update);
}

ServeMetricsSnapshot BcService::metrics() const {
  ServeMetricsSnapshot snap = metrics_.Read();
  const UpdateQueueStats queue_stats = queue_.stats();
  snap.received = queue_stats.received;
  snap.dropped = queue_stats.dropped;
  snap.epoch_lag = snap.received > snap.published_stream_position
                       ? snap.received - snap.published_stream_position
                       : 0;
  return snap;
}

std::size_t BcService::SubmitAll(const EdgeStream& stream) {
  std::size_t accepted = 0;
  for (const EdgeUpdate& update : stream) {
    if (Submit(update)) ++accepted;
  }
  return accepted;
}

void BcService::WriterLoop() {
  std::uint64_t position = 0;
  std::uint64_t epoch = 0;
  DrainedBatch batch;
  while (queue_.PopBatch(&batch)) {
    WallTimer apply_timer;
    Status st = batch.updates.empty()
                    ? Status::OK()
                    : bc_->ApplyBatch(batch.updates);
    const double apply_seconds = apply_timer.Seconds();
    if (!st.ok()) {
      // Terminal: publishables stop here. Close the queue so blocked
      // producers unblock, record the failure, and let Drain/Stop report.
      queue_.Close();
      std::lock_guard<std::mutex> lock(mu_);
      writer_status_ = st;
      writer_done_ = true;
      publish_cv_.notify_all();
      return;
    }
    position += batch.consumed;
    ++epoch;
    snapshots_.Publish(BuildSnapshot(bc_->graph(), bc_->scores(), epoch,
                                     position, options_.top_k,
                                     options_.snapshot_edge_scores));
    // Latency is submit-to-publish: the moment a consumed update's effect
    // (possibly "no effect", for coalesced churn) became readable.
    const double now = SteadyNowSeconds();
    for (double& t : batch.enqueue_seconds) t = now - t;
    const UpdateStats& update_stats = bc_->last_update_stats();
    metrics_.RecordBatch(batch.updates.size(),
                         batch.consumed - batch.updates.size(), apply_seconds,
                         batch.enqueue_seconds, epoch, position,
                         update_stats.sources_total,
                         update_stats.sources_prefiltered);
    {
      // The store must happen under mu_ so a Drain caller between its
      // predicate check and its sleep cannot miss this publication.
      std::lock_guard<std::mutex> lock(mu_);
      published_position_.store(position, std::memory_order_release);
    }
    publish_cv_.notify_all();
  }
  std::lock_guard<std::mutex> lock(mu_);
  writer_done_ = true;
  publish_cv_.notify_all();
}

Status BcService::Drain() {
  const std::uint64_t target = queue_.stats().received;
  std::unique_lock<std::mutex> lock(mu_);
  publish_cv_.wait(lock, [&] {
    return writer_done_ || !writer_status_.ok() ||
           published_position_.load(std::memory_order_acquire) >= target;
  });
  if (!writer_status_.ok()) return writer_status_;
  if (published_position_.load(std::memory_order_acquire) < target) {
    return Status::FailedPrecondition(
        "writer exited before draining every accepted update");
  }
  return Status::OK();
}

Status BcService::Stop() {
  queue_.Close();
  if (writer_.joinable()) writer_.join();
  // The writer can no longer touch the framework; push the final BD state
  // to stable storage so a serve-mode out-of-core deployment is resumable
  // (no-op for the in-memory variants).
  const Status flush = bc_->store()->Flush();
  std::lock_guard<std::mutex> lock(mu_);
  if (writer_status_.ok() && !flush.ok()) writer_status_ = flush;
  return writer_status_;
}

}  // namespace sobc
