#include "server/bc_service.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <utility>

#include "bc/bd_store_disk.h"
#include "common/io.h"
#include "common/timer.h"
#include "storage/record_codec.h"

namespace sobc {

namespace {

const char* VariantName(BcVariant variant) {
  switch (variant) {
    case BcVariant::kMemoryPredecessors:
      return "mp";
    case BcVariant::kMemory:
      return "mo";
    case BcVariant::kOutOfCore:
      return "do";
  }
  return "mo";
}

/// Estimate provenance for a publication: exact deployments get the
/// default tag, sampled ones their scale and sample-generation identity.
SnapshotEstimateInfo EstimateInfoOf(const DynamicBc& bc) {
  SnapshotEstimateInfo info;
  if (bc.approx()) {
    const ApproxStatus status = bc.approx_status();
    info.approximate = true;
    info.scale = bc.approx_scale();
    info.sample_count = status.num_samples;
    info.sample_epoch = status.sample_epoch;
  }
  return info;
}

}  // namespace

const char* ServiceHealthName(ServiceHealth health) {
  switch (health) {
    case ServiceHealth::kHealthy:
      return "healthy";
    case ServiceHealth::kDegraded:
      return "degraded";
    case ServiceHealth::kReadOnly:
      return "readonly";
  }
  return "healthy";
}

BcService::BcService(std::unique_ptr<DynamicBc> bc,
                     const BcServiceOptions& options)
    : options_(options), bc_(std::move(bc)), queue_(options.queue) {}

Result<std::unique_ptr<BcService>> BcService::Create(
    Graph graph, const BcServiceOptions& options) {
  BcServiceOptions resolved = options;
  resolved.queue.directed = graph.directed();
  if (resolved.replicated && (resolved.bc.approx_samples > 0 ||
                              !resolved.bc.approx_restore_blob.empty())) {
    // Replicated shards are scoped partials by design; the sampled mode
    // owns the full source universe (DynamicBc enforces the same), and
    // mixing estimated partials into an exact merge would silently bias
    // the cluster's scores.
    return Status::InvalidArgument(
        "sampled approximation is a single-process mode; replicated "
        "shards must run exact");
  }
  auto bc = DynamicBc::Create(std::move(graph), resolved.bc);
  if (!bc.ok()) return bc.status();
  if (!resolved.replicated && (resolved.replicated_base_epoch != 0 ||
                               resolved.replicated_base_position != 0)) {
    return Status::InvalidArgument(
        "replicated_base_epoch/position require a replicated-mode service");
  }
  auto service = std::unique_ptr<BcService>(
      new BcService(std::move(*bc), resolved));
  // The base epoch (0 for a fresh deployment, the donor's cut for a
  // migration recipient): the Step-1 scores are queryable before any
  // update arrives, and before the writer exists — no publication ever
  // races with it.
  service->base_epoch_ = resolved.replicated_base_epoch;
  service->base_position_ = resolved.replicated_base_position;
  service->final_epoch_ = resolved.replicated_base_epoch;
  service->final_position_ = resolved.replicated_base_position;
  service->published_position_.store(resolved.replicated_base_position,
                                     std::memory_order_release);
  service->metrics_.SeedPublication(resolved.replicated_base_epoch,
                                    resolved.replicated_base_position);
  service->snapshots_.Publish(BuildSnapshot(
      service->bc_->graph(), service->bc_->scores(),
      resolved.replicated_base_epoch, resolved.replicated_base_position,
      resolved.top_k, resolved.snapshot_edge_scores,
      EstimateInfoOf(*service->bc_)));
  if (resolved.durability.enabled()) {
    // Refuse pre-existing durable state in either directory: a log is
    // Recover's job, and stale higher-epoch manifests from a previous
    // deployment would win retention pruning and the fallback ladder.
    auto has_log = WalDirHasSegments(resolved.durability.wal_dir);
    if (!has_log.ok()) return has_log.status();
    if (*has_log) {
      return Status::FailedPrecondition(
          "wal dir " + resolved.durability.wal_dir +
          " already holds a log; Recover it or point at a fresh directory");
    }
    SOBC_RETURN_NOT_OK(service->StartDurability(
        resolved.replicated_base_epoch + 1, /*initial_checkpoint=*/true));
  }
  if (!resolved.replicated) {
    if (resolved.writer_stall_timeout_seconds > 0) {
      service->watchdog_ =
          std::thread([raw = service.get()] { raw->WatchdogLoop(); });
    }
    service->writer_ =
        std::thread([raw = service.get()] { raw->WriterLoop(); });
  }
  return service;
}

Result<std::unique_ptr<BcService>> BcService::Recover(
    const BcServiceOptions& options, RecoveryInfo* info) {
  BcServiceOptions resolved = options;
  DurabilityOptions& durability = resolved.durability;
  if (!durability.enabled()) {
    return Status::InvalidArgument("Recover requires durability.wal_dir");
  }
  if (durability.checkpoint_dir.empty()) {
    durability.checkpoint_dir = durability.wal_dir + "/checkpoints";
  }
  RecoveryInfo local_info;
  RecoveryInfo& out = info != nullptr ? *info : local_info;

  WallTimer load_timer;
  auto loaded = LoadLatestCheckpoint(durability.checkpoint_dir);
  if (!loaded.ok()) return loaded.status();
  const CheckpointManifest manifest = loaded->manifest;
  out.manifest_epoch = manifest.epoch;
  out.manifest_stream_position = manifest.stream_position;
  out.variant = manifest.variant;
  resolved.queue.directed = manifest.directed;
  // The manifest is authoritative for the source partition: a recovered
  // shard must rebuild the same scoped framework so its scores stay the
  // same per-shard partials it checkpointed.
  resolved.bc.source_begin = manifest.source_begin;
  resolved.bc.source_end = manifest.source_end;
  // The checkpointed sample-set state (empty for exact deployments) is
  // authoritative: the framework restores the exact sample ids, drift
  // ledger, and RNG trajectory the crashed run carried, so WAL replay
  // makes the same resampling decisions it did.
  resolved.bc.approx_restore_blob = loaded->samples_blob;
  if (loaded->samples_blob.empty() && resolved.bc.approx_samples > 0) {
    return Status::FailedPrecondition(
        "recovery requested sampled approximation but the checkpoint was "
        "written by an exact deployment; recover exact or redeploy fresh");
  }

  std::unique_ptr<DynamicBc> bc;
  if (manifest.variant == "do") {
    // Install the generation-stamped store copy as the live file and skip
    // Step 1 entirely; the byte-exact BD state is what makes serial-apply
    // recovery bit-identical to the uninterrupted run.
    resolved.bc.variant = BcVariant::kOutOfCore;
    if (resolved.bc.storage_path.empty()) {
      resolved.bc.storage_path = durability.checkpoint_dir + "/live.bd";
    }
    SOBC_RETURN_NOT_OK(CopyFile(loaded->store_path, resolved.bc.storage_path));
    auto resumed = DynamicBc::Resume(
        std::move(loaded->graph), resolved.bc,
        durability.checkpoint_dir + "/" + manifest.scores_file);
    if (!resumed.ok()) return resumed.status();
    bc = std::move(*resumed);
  } else if (manifest.variant == "mo" || manifest.variant == "mp") {
    // Warm restart: the O(nm) Step 1 rebuilds the in-memory BD structures
    // (they cannot outlive a process), but the checkpointed scores — which
    // include every pre-checkpoint update — replace the fresh ones, and
    // the WAL tail spares re-running the whole stream.
    resolved.bc.variant = manifest.variant == "mp"
                              ? BcVariant::kMemoryPredecessors
                              : BcVariant::kMemory;
    resolved.bc.storage_path.clear();
    auto created = DynamicBc::Create(std::move(loaded->graph), resolved.bc);
    if (!created.ok()) return created.status();
    SOBC_RETURN_NOT_OK((*created)->RestoreScores(std::move(loaded->scores)));
    bc = std::move(*created);
  } else {
    return Status::IOError("manifest names unknown variant '" +
                           manifest.variant + "'");
  }
  out.load_seconds = load_timer.Seconds();

  // Replay the WAL tail through the same batch-apply machinery the live
  // writer uses; each logged record reproduces exactly one publication of
  // the uninterrupted run. A torn final frame (crash mid-append) is
  // truncated away — its batch was never applied, let alone published.
  WallTimer replay_timer;
  auto replay = ReadWalForReplay(durability.wal_dir, manifest.epoch,
                                 /*truncate_torn_tail=*/true);
  if (!replay.ok()) return replay.status();
  out.torn_bytes = replay->torn_bytes;
  std::uint64_t epoch = manifest.epoch;
  std::uint64_t position = manifest.stream_position;
  for (std::size_t i = 0; i < replay->records.size(); ++i) {
    const WalRecord& record = replay->records[i];
    if (record.stream_position < position) {
      return Status::IOError("wal stream position regressed at epoch " +
                             std::to_string(record.epoch));
    }
    if (!record.updates.empty()) {
      if (Status st = bc->ApplyBatch(record.updates); !st.ok()) {
        const bool client_data_error =
            st.code() == StatusCode::kInvalidArgument ||
            st.code() == StatusCode::kNotFound ||
            st.code() == StatusCode::kAlreadyExists ||
            st.code() == StatusCode::kOutOfRange;
        if (client_data_error && i + 1 == replay->records.size()) {
          // The poisoned record that killed the live writer: logged (the
          // log-before-apply order), deterministically rejected by the
          // engine, never published. It must be the log's last record —
          // the writer died on it. Amputate it and re-enter recovery
          // from clean checkpoint state (this pass's framework applied
          // part of the batch before the rejection), preserving the
          // guarantee that recovery lands on the last PUBLISHED state.
          SOBC_RETURN_NOT_OK(TruncateWalSegment(
              durability.wal_dir, record.segment, record.frame_offset));
          const std::uint64_t poisoned_batches = out.poisoned_batches + 1;
          const std::uint64_t poisoned_updates =
              out.poisoned_updates + record.updates.size();
          bc.reset();  // release the live store before the re-entry reopens it
          if (info != nullptr) *info = RecoveryInfo{};  // re-entry refills
          auto recovered = Recover(options, info);
          if (recovered.ok() && info != nullptr) {
            info->poisoned_batches = poisoned_batches;
            info->poisoned_updates = poisoned_updates;
          }
          return recovered;
        }
        // Anything else — an internal/IO failure, or a rejected record
        // with valid history after it — is not a legal crash artifact.
        return st;
      }
    }
    epoch = record.epoch;
    position = record.stream_position;
    ++out.replayed_batches;
    out.replayed_updates += record.updates.size();
  }
  out.replay_seconds = replay_timer.Seconds();
  out.recovered_epoch = epoch;
  out.recovered_stream_position = position;

  auto service = std::unique_ptr<BcService>(
      new BcService(std::move(bc), resolved));
  service->base_epoch_ = epoch;
  service->base_position_ = position;
  service->final_epoch_ = epoch;
  service->final_position_ = position;
  service->published_position_.store(position, std::memory_order_release);
  service->metrics_.SeedPublication(epoch, position);
  service->snapshots_.Publish(BuildSnapshot(
      service->bc_->graph(), service->bc_->scores(), epoch, position,
      resolved.top_k, resolved.snapshot_edge_scores,
      EstimateInfoOf(*service->bc_)));
  // New appends land in a fresh segment starting right after the
  // recovered epoch; the replayed segments stay until a checkpoint covers
  // them (a second crash before then replays the same tail again).
  SOBC_RETURN_NOT_OK(
      service->StartDurability(epoch + 1, /*initial_checkpoint=*/false));
  if (!resolved.replicated) {
    if (resolved.writer_stall_timeout_seconds > 0) {
      service->watchdog_ =
          std::thread([raw = service.get()] { raw->WatchdogLoop(); });
    }
    service->writer_ =
        std::thread([raw = service.get()] { raw->WriterLoop(); });
  }
  return service;
}

void BcService::EnterDegraded(const Status& why) {
  int expected = static_cast<int>(ServiceHealth::kHealthy);
  if (!health_.compare_exchange_strong(
          expected, static_cast<int>(ServiceHealth::kDegraded),
          std::memory_order_acq_rel)) {
    return;  // already degraded or read-only; first cause wins
  }
  checkpoints_suspended_.store(true, std::memory_order_release);
  // Less durability, less exposure: with checkpoints gone the WAL tail is
  // all the recovery there is, so let backpressure bite earlier.
  queue_.SetCapacity(std::max<std::size_t>(1, queue_.capacity() / 2));
  std::lock_guard<std::mutex> lock(mu_);
  health_error_ = why;
}

void BcService::EnterReadOnly(const Status& why) {
  health_.store(static_cast<int>(ServiceHealth::kReadOnly),
                std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  // The terminal error supersedes a degraded-mode cause.
  health_error_ = why;
}

void BcService::WatchdogLoop() {
  const double timeout = options_.writer_stall_timeout_seconds;
  const auto poll =
      std::chrono::duration<double>(std::clamp(timeout / 4.0, 0.001, 0.05));
  std::unique_lock<std::mutex> lock(watchdog_mu_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(lock, poll, [this] { return watchdog_stop_; });
    if (watchdog_stop_) break;
    const double started = batch_started_.load(std::memory_order_relaxed);
    const bool stalled =
        started > 0.0 && SteadyNowSeconds() - started >= timeout;
    if (stalled != writer_stalled_.load(std::memory_order_relaxed)) {
      {
        // Under mu_ so a Drain caller between predicate and sleep cannot
        // miss the flag flip.
        std::lock_guard<std::mutex> guard(mu_);
        writer_stalled_.store(stalled, std::memory_order_release);
      }
      publish_cv_.notify_all();
    }
  }
}

Status BcService::StartDurability(std::uint64_t next_epoch,
                                  bool initial_checkpoint) {
  DurabilityOptions& durability = options_.durability;
  if (durability.checkpoint_dir.empty()) {
    durability.checkpoint_dir = durability.wal_dir + "/checkpoints";
  }
  if (initial_checkpoint) {
    auto has_checkpoints =
        CheckpointDirHasManifests(durability.checkpoint_dir);
    if (!has_checkpoints.ok()) return has_checkpoints.status();
    if (*has_checkpoints) {
      return Status::FailedPrecondition(
          "checkpoint dir " + durability.checkpoint_dir +
          " already holds checkpoints; Recover them or point at a fresh "
          "directory");
    }
  }
  checkpointer_ = std::make_unique<CheckpointWriter>(
      durability.checkpoint_dir, durability.wal_dir,
      durability.retain_checkpoints);
  if (initial_checkpoint) {
    // The initial checkpoint is what makes the WAL replayable at all (a
    // log without a base graph recovers nothing), and it must be durable
    // BEFORE the first WAL segment exists: a crash between the two leaves
    // state both Create (segments present) and Recover (no manifest)
    // would refuse. Committed synchronously, in the safe order.
    auto job = CaptureCheckpointJob(base_epoch_, base_position_);
    if (!job.ok()) return job.status();
    SOBC_RETURN_NOT_OK(checkpointer_->WriteNow(std::move(*job)));
  }
  WalOptions wal_options;
  wal_options.fsync_every = durability.wal_fsync_every;
  auto wal = WalWriter::Open(durability.wal_dir, next_epoch, wal_options);
  if (!wal.ok()) return wal.status();
  wal_ = std::move(*wal);
  last_checkpoint_stamp_ = SteadyNowSeconds();
  return Status::OK();
}

Result<CheckpointWriter::Job> BcService::CaptureCheckpointJob(
    std::uint64_t epoch, std::uint64_t position) {
  CheckpointWriter::Job job;
  job.epoch = epoch;
  job.stream_position = position;
  job.graph = bc_->graph();
  job.scores = bc_->scores();
  job.variant = VariantName(options_.bc.variant);
  job.source_begin = options_.bc.source_begin;
  job.source_end = options_.bc.source_end;
  job.samples_blob = bc_->SerializeApproxState();
  if (options_.bc.variant == BcVariant::kOutOfCore) {
    // disk_store() is the root disk handle even in approx mode, where
    // store() is the slot-translating adapter wrapped around it.
    DiskBdStore* disk = bc_->disk_store();
    if (disk == nullptr) {
      return Status::Internal("out-of-core framework without a disk store");
    }
    // Flush makes the file the full BD state; nothing mutates it until
    // this capture returns (the writer is here, workers are parked), so
    // the byte copy is a consistent generation stamped by its epoch.
    SOBC_RETURN_NOT_OK(disk->Flush());
    job.store_file = "bd-" + std::to_string(epoch) + ".bin";
    job.store_codec = RecordCodecName(disk->codec());
    SOBC_RETURN_NOT_OK(CopyFile(disk->path(),
                                checkpointer_->dir() + "/" + job.store_file,
                                &job.store_crc));
  }
  return job;
}

Status BcService::MaybeCheckpoint(std::uint64_t epoch,
                                  std::uint64_t position) {
  const DurabilityOptions& durability = options_.durability;
  bool due = durability.checkpoint_every_updates > 0 &&
             updates_since_checkpoint_ >= durability.checkpoint_every_updates;
  if (!due && durability.checkpoint_interval_seconds > 0 &&
      SteadyNowSeconds() - last_checkpoint_stamp_ >=
          durability.checkpoint_interval_seconds) {
    due = true;
  }
  if (!due) return Status::OK();
  // Reset the policy clock even when the trigger is skipped, so a slow
  // in-flight checkpoint is not hammered with a capture per batch.
  updates_since_checkpoint_ = 0;
  last_checkpoint_stamp_ = SteadyNowSeconds();
  if (!checkpointer_->AdmitTrigger()) return Status::OK();
  auto job = CaptureCheckpointJob(epoch, position);
  if (!job.ok()) {
    // A failed capture (ENOSPC copying the BD store, a flush error) costs
    // this and future checkpoints, not serving: the engine state is
    // intact and the WAL keeps every batch recoverable. Degrade and move
    // on — WAL-only, checkpoints suspended.
    EnterDegraded(job.status());
    return Status::OK();
  }
  if (checkpointer_->Enqueue(std::move(*job))) {
    // Segment boundary aligned to the checkpoint: once its manifest is
    // durable, every earlier segment is fully covered and prunable. A
    // rotate failure stays fatal — it poisons or loses the WAL itself.
    SOBC_RETURN_NOT_OK(wal_->Rotate(epoch + 1));
  }
  return Status::OK();
}

BcService::~BcService() { (void)Stop(); }

bool BcService::Submit(const EdgeUpdate& update) {
  // A replicated shard has no writer draining the queue: every batch
  // arrives from the coordinator through ApplyReplicatedBatch.
  if (options_.replicated) return false;
  // Fail fast once the writer is dead: no producer should block (or even
  // take the queue lock chain) to learn the service is read-only.
  if (health() == ServiceHealth::kReadOnly) return false;
  return queue_.Push(update);
}

ServeMetricsSnapshot BcService::metrics() const {
  ServeMetricsSnapshot snap = metrics_.Read();
  const UpdateQueueStats queue_stats = queue_.stats();
  snap.received = queue_stats.received;
  snap.dropped = queue_stats.dropped;
  const std::uint64_t received_absolute = base_position_ + queue_stats.received;
  snap.epoch_lag = received_absolute > snap.published_stream_position
                       ? received_absolute - snap.published_stream_position
                       : 0;
  if (wal_ != nullptr) {
    const WalStats wal_stats = wal_->stats();
    snap.wal_appends = wal_stats.appends;
    snap.wal_appended_updates = wal_stats.appended_updates;
    snap.wal_bytes = wal_stats.bytes;
    snap.wal_syncs = wal_stats.syncs;
    snap.wal_rotations = wal_stats.rotations;
    snap.wal_last_durable_epoch = wal_stats.last_durable_epoch;
  }
  if (checkpointer_ != nullptr) {
    const CheckpointStats checkpoint_stats = checkpointer_->stats();
    snap.checkpoints_written = checkpoint_stats.written;
    snap.checkpoints_skipped = checkpoint_stats.skipped;
    snap.checkpoints_failed = checkpoint_stats.failed;
    snap.last_checkpoint_epoch = checkpoint_stats.last_epoch;
    snap.checkpoint_write_seconds = checkpoint_stats.write_seconds_total;
  }
  const ServiceHealth current_health = health();
  snap.health_state = static_cast<std::uint64_t>(current_health);
  snap.health = ServiceHealthName(current_health);
  snap.checkpoints_suspended =
      checkpoints_suspended_.load(std::memory_order_acquire) ? 1 : 0;
  snap.writer_stalled =
      writer_stalled_.load(std::memory_order_acquire) ? 1 : 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!health_error_.ok()) snap.last_error = health_error_.ToString();
  }
  const IoCounters io = ReadIoCounters();
  snap.io_retries = io.retries;
  snap.io_retries_exhausted = io.retries_exhausted;
  snap.io_faults_injected = io.faults_injected;
  return snap;
}

std::size_t BcService::SubmitAll(const EdgeStream& stream) {
  std::size_t accepted = 0;
  for (const EdgeUpdate& update : stream) {
    if (Submit(update)) ++accepted;
  }
  return accepted;
}

void BcService::WriterLoop() {
  std::uint64_t position = base_position_;
  std::uint64_t epoch = base_epoch_;
  DrainedBatch batch;
  auto fail = [this](Status st) {
    // Terminal: publishables stop here. The service goes ReadOnly, the
    // queue closes so blocked producers unblock, and Drain/Stop report.
    queue_.Close();
    EnterReadOnly(st);
    batch_started_.store(0.0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    writer_status_ = std::move(st);
    writer_done_ = true;
    publish_cv_.notify_all();
  };
  while (queue_.PopBatch(&batch)) {
    // Stamp before the hook: a hook that stalls (the watchdog tests) must
    // count against the batch it delays.
    batch_started_.store(SteadyNowSeconds(), std::memory_order_relaxed);
    if (options_.writer_batch_hook) options_.writer_batch_hook();
    if (wal_ != nullptr) {
      // Log-before-apply: by the time any effect of this batch can exist
      // (in memory or in the BD store file), the batch itself is already
      // recoverable. An empty coalesced-away batch still logs — replay
      // must reproduce its epoch and position.
      if (Status st = wal_->Append(epoch + 1, position + batch.consumed,
                                   batch.updates);
          !st.ok()) {
        fail(std::move(st));
        return;
      }
      if (options_.durability.kill_after_appends > 0 &&
          wal_->stats().appends >= options_.durability.kill_after_appends) {
        // Crash injection (tests, CI recovery smoke): die hard with the
        // logged batch never applied — the worst legal crash point.
        (void)wal_->Sync();
        std::_Exit(137);
      }
    }
    WallTimer apply_timer;
    Status st = batch.updates.empty()
                    ? Status::OK()
                    : bc_->ApplyBatch(batch.updates);
    const double apply_seconds = apply_timer.Seconds();
    if (!st.ok()) {
      fail(std::move(st));
      return;
    }
    position += batch.consumed;
    ++epoch;
    if (Status commit =
            CommitBatch(epoch, position, batch.updates.size(), batch.consumed,
                        apply_seconds, &batch.enqueue_seconds);
        !commit.ok()) {
      fail(std::move(commit));
      return;
    }
    batch_started_.store(0.0, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(mu_);
  writer_done_ = true;
  publish_cv_.notify_all();
}

Status BcService::CommitBatch(std::uint64_t epoch, std::uint64_t position,
                              std::size_t applied, std::uint64_t consumed,
                              double apply_seconds,
                              std::vector<double>* latencies) {
  snapshots_.Publish(BuildSnapshot(bc_->graph(), bc_->scores(), epoch,
                                   position, options_.top_k,
                                   options_.snapshot_edge_scores,
                                   EstimateInfoOf(*bc_)));
  // Latency is submit-to-publish: the moment a consumed update's effect
  // (possibly "no effect", for coalesced churn) became readable.
  const double now = SteadyNowSeconds();
  for (double& t : *latencies) t = now - t;
  const UpdateStats& update_stats = bc_->last_update_stats();
  metrics_.RecordBatch(applied, consumed - applied, apply_seconds, *latencies,
                       epoch, position, update_stats.sources_total,
                       update_stats.sources_prefiltered,
                       update_stats.msbfs_batches,
                       update_stats.bottom_up_levels);
  if (bc_->approx()) {
    const ApproxStatus approx = bc_->approx_status();
    metrics_.RecordApprox(approx.num_samples, approx.sample_epoch,
                          approx.resample_rounds, approx.source_swaps,
                          approx.drift);
  }
  {
    // The store must happen under mu_ so a Drain caller between its
    // predicate check and its sleep cannot miss this publication.
    std::lock_guard<std::mutex> lock(mu_);
    published_position_.store(position, std::memory_order_release);
    final_epoch_ = epoch;
    final_position_ = position;
  }
  publish_cv_.notify_all();
  if (checkpointer_ != nullptr) {
    // A background checkpoint that failed since the last batch degrades
    // the service (checkpoints suspended, WAL-only) without killing it.
    if (Status background = checkpointer_->PeekError(); !background.ok()) {
      EnterDegraded(background);
    }
    if (!checkpoints_suspended_.load(std::memory_order_acquire)) {
      updates_since_checkpoint_ += consumed;
      SOBC_RETURN_NOT_OK(MaybeCheckpoint(epoch, position));
    }
  }
  return Status::OK();
}

Status BcService::ApplyReplicatedBatch(std::uint64_t epoch,
                                       std::uint64_t stream_position,
                                       std::span<const EdgeUpdate> updates) {
  if (!options_.replicated) {
    return Status::FailedPrecondition(
        "ApplyReplicatedBatch requires a replicated-mode service");
  }
  if (health() == ServiceHealth::kReadOnly) {
    Status why = last_error();
    return why.ok() ? Status::FailedPrecondition("shard is read-only")
                    : why;
  }
  std::uint64_t current = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    current = final_epoch_;
  }
  // Exactly-once under coordinator retries: a redelivered epoch was fully
  // applied (and logged) before — acknowledging it again is the idempotent
  // half of the delivery argument (DESIGN.md §13).
  if (epoch <= current) return Status::OK();
  if (epoch != current + 1) {
    return Status::FailedPrecondition(
        "replicated batch epoch " + std::to_string(epoch) +
        " leaves a gap after " + std::to_string(current) +
        "; resend the missing epochs first");
  }
  auto fail = [this](Status st) -> Status {
    EnterReadOnly(st);
    batch_started_.store(0.0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    writer_status_ = st;
    writer_done_ = true;
    publish_cv_.notify_all();
    return st;
  };
  const double started = SteadyNowSeconds();
  batch_started_.store(started, std::memory_order_relaxed);
  if (options_.writer_batch_hook) options_.writer_batch_hook();
  if (wal_ != nullptr) {
    // Same log-before-apply discipline as the writer loop, under the
    // coordinator's absolute epoch numbering.
    if (Status st = wal_->Append(epoch, stream_position, updates); !st.ok()) {
      return fail(std::move(st));
    }
    if (options_.durability.kill_after_appends > 0 &&
        wal_->stats().appends >= options_.durability.kill_after_appends) {
      (void)wal_->Sync();
      std::_Exit(137);
    }
  }
  WallTimer apply_timer;
  Status st = updates.empty() ? Status::OK() : bc_->ApplyBatch(updates);
  const double apply_seconds = apply_timer.Seconds();
  if (!st.ok()) return fail(std::move(st));
  const std::uint64_t previous =
      published_position_.load(std::memory_order_acquire);
  const std::uint64_t consumed =
      stream_position > previous ? stream_position - previous : 0;
  // Latency on a shard is receive-to-publish (the coordinator owns the
  // submit-to-publish number; the queue lives there).
  std::vector<double> latencies(updates.size(), started);
  if (Status commit = CommitBatch(epoch, stream_position, updates.size(),
                                  std::max<std::uint64_t>(consumed,
                                                          updates.size()),
                                  apply_seconds, &latencies);
      !commit.ok()) {
    return fail(std::move(commit));
  }
  batch_started_.store(0.0, std::memory_order_relaxed);
  return Status::OK();
}

Status BcService::RescopeSourceRange(VertexId begin, VertexId end) {
  if (!options_.replicated) {
    return Status::FailedPrecondition(
        "RescopeSourceRange requires a replicated-mode service");
  }
  if (health() == ServiceHealth::kReadOnly) {
    Status why = last_error();
    return why.ok() ? Status::FailedPrecondition("shard is read-only") : why;
  }
  if (options_.bc.variant == BcVariant::kOutOfCore) {
    return Status::FailedPrecondition(
        "rescope an out-of-core shard by re-bootstrapping it from a "
        "checkpoint: its BD store file is scoped to the old range");
  }
  // Exact maintenance keeps the framework equal to a from-scratch build on
  // the current graph, so a scoped Step 1 over a copy of that graph IS the
  // exact partial for the new range at the current epoch (DESIGN.md §13).
  Graph graph = bc_->graph();
  options_.bc.source_begin = begin;
  options_.bc.source_end = end;
  auto rebuilt = DynamicBc::Create(std::move(graph), options_.bc);
  if (!rebuilt.ok()) return rebuilt.status();
  bc_ = std::move(*rebuilt);
  std::uint64_t epoch = 0;
  std::uint64_t position = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    epoch = final_epoch_;
    position = final_position_;
  }
  // Republished at the UNCHANGED epoch/position: no snapshot (and thus no
  // merged cluster epoch) is ever computed under two shard maps at once.
  snapshots_.Publish(BuildSnapshot(bc_->graph(), bc_->scores(), epoch,
                                   position, options_.top_k,
                                   options_.snapshot_edge_scores));
  if (checkpointer_ != nullptr) {
    // Force a checkpoint under the new scope so a crash after the commit
    // recovers the new range (the manifest is authoritative for the
    // partition). Its failure costs durability, not the rescope.
    Status background = checkpointer_->WaitIdle();
    if (!background.ok()) EnterDegraded(background);
    if (!checkpoints_suspended_.load(std::memory_order_acquire)) {
      auto job = CaptureCheckpointJob(epoch, position);
      Status wrote = job.ok() ? checkpointer_->WriteNow(std::move(*job))
                              : job.status();
      if (!wrote.ok()) EnterDegraded(wrote);
    }
    updates_since_checkpoint_ = 0;
    last_checkpoint_stamp_ = SteadyNowSeconds();
  }
  return Status::OK();
}

void BcService::Halt() {
  // Skipping the clean-shutdown checkpoint leaves exactly what a kill
  // leaves behind: the last periodic checkpoint plus the WAL tail.
  final_checkpoint_done_ = true;
  (void)Stop();
}

Status BcService::Drain() {
  const std::uint64_t target = base_position_ + queue_.stats().received;
  std::unique_lock<std::mutex> lock(mu_);
  publish_cv_.wait(lock, [&] {
    return writer_done_ || !writer_status_.ok() ||
           writer_stalled_.load(std::memory_order_acquire) ||
           published_position_.load(std::memory_order_acquire) >= target;
  });
  if (!writer_status_.ok()) return writer_status_;
  if (published_position_.load(std::memory_order_acquire) >= target) {
    return Status::OK();
  }
  if (writer_stalled_.load(std::memory_order_acquire)) {
    // The watchdog flagged a batch exceeding the stall timeout. Drain
    // surfaces the hang instead of joining it; the stall can still
    // resolve (the flag clears and a later Drain succeeds).
    return Status::Internal(
        "writer stalled: a batch has exceeded the " +
        std::to_string(options_.writer_stall_timeout_seconds) +
        "s stall timeout");
  }
  return Status::FailedPrecondition(
      "writer exited before draining every accepted update");
}

Status BcService::Stop() {
  queue_.Close();
  if (writer_.joinable()) writer_.join();
  {
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  // The writer can no longer touch the framework; push the final BD state
  // to stable storage so a serve-mode out-of-core deployment is resumable
  // (no-op for the in-memory variants).
  const Status flush = bc_->store()->Flush();
  std::uint64_t epoch = 0;
  std::uint64_t position = 0;
  bool clean = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (writer_status_.ok() && !flush.ok()) writer_status_ = flush;
    epoch = final_epoch_;
    position = final_position_;
    clean = writer_status_.ok();
  }
  if (checkpointer_ != nullptr && !final_checkpoint_done_) {
    final_checkpoint_done_ = true;
    Status background = checkpointer_->WaitIdle();
    if (!background.ok()) EnterDegraded(background);
    Status final_status = background;
    if (clean && background.ok() &&
        !checkpoints_suspended_.load(std::memory_order_acquire)) {
      // A clean shutdown commits a checkpoint at the final epoch, so the
      // next start replays nothing. Suspended (degraded) services skip
      // it — whatever suspended checkpointing (ENOSPC) still holds, and
      // the WAL already covers every applied batch.
      auto job = CaptureCheckpointJob(epoch, position);
      final_status = job.ok() ? checkpointer_->WriteNow(std::move(*job))
                              : job.status();
    }
    if (!final_status.ok()) {
      // A failed shutdown checkpoint leaves the next start replaying the
      // WAL tail — reduced durability, same ladder rung as any other
      // checkpoint failure.
      EnterDegraded(final_status);
      std::lock_guard<std::mutex> lock(mu_);
      if (writer_status_.ok()) writer_status_ = final_status;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  return writer_status_;
}

}  // namespace sobc
