#include "server/score_snapshot.h"

#include "analysis/top_k.h"

namespace sobc {

std::shared_ptr<const ScoreSnapshot> BuildSnapshot(
    const Graph& graph, const BcScores& scores, std::uint64_t epoch,
    std::uint64_t stream_position, std::size_t top_k, bool with_edge_scores) {
  auto snapshot = std::make_shared<ScoreSnapshot>();
  snapshot->epoch = epoch;
  snapshot->stream_position = stream_position;
  snapshot->directed = graph.directed();
  snapshot->num_vertices = graph.NumVertices();
  snapshot->num_edges = graph.NumEdges();
  snapshot->vbc = scores.vbc;
  if (with_edge_scores) snapshot->ebc = scores.ebc;
  snapshot->top_vertices = TopKVertices(scores.vbc, top_k);
  snapshot->top_edges = TopKEdges(scores.ebc, top_k);
  return snapshot;
}

}  // namespace sobc
