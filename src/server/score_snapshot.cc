#include "server/score_snapshot.h"

#include "analysis/top_k.h"

namespace sobc {

std::shared_ptr<const ScoreSnapshot> BuildSnapshot(
    const Graph& graph, const BcScores& scores, std::uint64_t epoch,
    std::uint64_t stream_position, std::size_t top_k, bool with_edge_scores,
    const SnapshotEstimateInfo& estimate) {
  auto snapshot = std::make_shared<ScoreSnapshot>();
  snapshot->epoch = epoch;
  snapshot->stream_position = stream_position;
  snapshot->directed = graph.directed();
  snapshot->num_vertices = graph.NumVertices();
  snapshot->num_edges = graph.NumEdges();
  snapshot->approximate = estimate.approximate;
  snapshot->estimate_scale = estimate.approximate ? estimate.scale : 1.0;
  snapshot->approx_samples = estimate.approximate ? estimate.sample_count : 0;
  snapshot->sample_epoch = estimate.approximate ? estimate.sample_epoch : 0;
  snapshot->vbc = scores.vbc;
  if (with_edge_scores) snapshot->ebc = scores.ebc;
  // Sampled deployments keep the maintained sums unscaled; the publication
  // is where the n/k extrapolation happens, so every reader-facing surface
  // (columns and leaderboards alike) speaks estimated-betweenness units.
  if (snapshot->approximate && snapshot->estimate_scale != 1.0) {
    const double scale = snapshot->estimate_scale;
    for (double& value : snapshot->vbc) value *= scale;
    for (auto& [key, value] : snapshot->ebc) value *= scale;
    snapshot->top_vertices = TopKVertices(snapshot->vbc, top_k);
    EbcMap scaled_ebc;
    const EbcMap* leaderboard_source = &snapshot->ebc;
    if (!with_edge_scores) {
      scaled_ebc = scores.ebc;
      for (auto& [key, value] : scaled_ebc) value *= scale;
      leaderboard_source = &scaled_ebc;
    }
    snapshot->top_edges = TopKEdges(*leaderboard_source, top_k);
    return snapshot;
  }
  snapshot->top_vertices = TopKVertices(scores.vbc, top_k);
  snapshot->top_edges = TopKEdges(scores.ebc, top_k);
  return snapshot;
}

}  // namespace sobc
