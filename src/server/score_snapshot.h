#ifndef SOBC_SERVER_SCORE_SNAPSHOT_H_
#define SOBC_SERVER_SCORE_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "bc/bc_types.h"
#include "graph/graph.h"

namespace sobc {

/// An immutable, epoch-stamped publication of the framework's scores — the
/// unit the serving layer hands to readers (DESIGN.md §8). The writer
/// thread builds one after each applied batch; once published it is never
/// mutated, so any number of reader threads may hold and query it without
/// synchronization while later epochs supersede it.
///
/// Top-k leaderboards are precomputed at publish time: the dominant online
/// query (the paper's "emerging leaders" application) costs a pointer load
/// plus an array read, never a scan, and never blocks on a running update.
struct ScoreSnapshot {
  /// Publication sequence number. 0 is the Step-1 (Brandes) snapshot.
  std::uint64_t epoch = 0;
  /// Input stream elements consumed when this snapshot was published,
  /// *including* updates the queue coalesced away — the graph state equals
  /// base graph + the first `stream_position` stream elements.
  std::uint64_t stream_position = 0;

  bool directed = false;
  std::size_t num_vertices = 0;
  std::size_t num_edges = 0;

  /// Estimate provenance (DESIGN.md §15). When `approximate` is true the
  /// score columns are sampled estimates — maintained sums over
  /// `approx_samples` sources, published pre-multiplied by n/k — and
  /// `sample_epoch` identifies the sample generation that produced them
  /// (it increments when a resampling round completes, so two snapshots
  /// with equal epochs but different sample_epochs are not comparable
  /// point-for-point). Exact deployments leave all four at defaults.
  bool approximate = false;
  double estimate_scale = 1.0;
  std::size_t approx_samples = 0;
  std::uint64_t sample_epoch = 0;

  /// Vertex betweenness, indexed by vertex id.
  std::vector<double> vbc;
  /// Edge betweenness; empty when the service publishes leaderboards only
  /// (BcServiceOptions::snapshot_edge_scores == false).
  EbcMap ebc;

  /// Leaderboards precomputed at publish time, descending by score.
  std::vector<std::pair<VertexId, double>> top_vertices;
  std::vector<std::pair<EdgeKey, double>> top_edges;

  double VertexScore(VertexId v) const {
    return v < vbc.size() ? vbc[v] : 0.0;
  }
  /// Edge betweenness of (u, v); zero when absent or not captured.
  double EdgeScore(VertexId u, VertexId v) const {
    const auto it = ebc.find(MakeEdgeKey(directed, u, v));
    return it == ebc.end() ? 0.0 : it->second;
  }
};

/// Publication point between the writer thread and reader threads: an
/// atomic shared_ptr swap. Readers acquire the current snapshot without
/// ever blocking on refresh work — the only shared state they touch is the
/// head pointer, held exactly as long as the load takes. Acquire/release
/// ordering makes every field of the published snapshot visible to the
/// acquiring thread.
///
/// Under -fsanitize=thread the swap runs through a mutex instead:
/// libstdc++'s std::atomic<shared_ptr> guards its control block with a
/// lock bit TSAN cannot see through (a known instrumentation gap — its
/// plain-field accesses behind the bit are reported as races even in
/// trivially correct programs), so the sanitizer build substitutes
/// synchronization TSAN can verify. The contract is identical; only the
/// instrumented build pays the mutex.
#if defined(__SANITIZE_THREAD__)
#define SOBC_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)  // Clang spells it this way
#define SOBC_TSAN_BUILD 1
#endif
#endif
class SnapshotStore {
 public:
#if defined(SOBC_TSAN_BUILD)
  SnapshotStore() : head_(std::make_shared<const ScoreSnapshot>()) {}

  std::shared_ptr<const ScoreSnapshot> Acquire() const {
    std::lock_guard<std::mutex> lock(mu_);
    return head_;
  }

  void Publish(std::shared_ptr<const ScoreSnapshot> snapshot) {
    std::lock_guard<std::mutex> lock(mu_);
    head_ = std::move(snapshot);
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const ScoreSnapshot> head_;
#else
  SnapshotStore() : head_(std::make_shared<const ScoreSnapshot>()) {}

  /// Current snapshot (never null; epoch 0 before the first publication).
  std::shared_ptr<const ScoreSnapshot> Acquire() const {
    return head_.load(std::memory_order_acquire);
  }

  /// Publishes `snapshot` as the new head. Single writer; epochs must be
  /// monotonically increasing.
  void Publish(std::shared_ptr<const ScoreSnapshot> snapshot) {
    head_.store(std::move(snapshot), std::memory_order_release);
  }

 private:
  std::atomic<std::shared_ptr<const ScoreSnapshot>> head_;
#endif
};

/// Provenance tag for BuildSnapshot: exact publications use the default;
/// a sampled deployment passes its scale (n/k) and sample identity, and
/// BuildSnapshot multiplies the published columns by the scale (the
/// maintained sums stay unscaled inside the engine).
struct SnapshotEstimateInfo {
  bool approximate = false;
  double scale = 1.0;
  std::size_t sample_count = 0;
  std::uint64_t sample_epoch = 0;
};

/// Builds a publication from the current scores: copies the score columns
/// and precomputes the top-k leaderboards. `with_edge_scores=false` skips
/// the edge map copy (leaderboards still cover edges).
std::shared_ptr<const ScoreSnapshot> BuildSnapshot(
    const Graph& graph, const BcScores& scores, std::uint64_t epoch,
    std::uint64_t stream_position, std::size_t top_k, bool with_edge_scores,
    const SnapshotEstimateInfo& estimate = {});

}  // namespace sobc

#endif  // SOBC_SERVER_SCORE_SNAPSHOT_H_
