#include "server/update_queue.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

namespace sobc {

UpdateQueue::UpdateQueue(const UpdateQueueOptions& options)
    : options_(options) {
  if (options_.capacity == 0) options_.capacity = 1;
  if (options_.max_batch == 0) options_.max_batch = 1;
}

bool UpdateQueue::Push(const EdgeUpdate& update) {
  std::unique_lock<std::mutex> lock(mu_);
  if (options_.drop_when_full) {
    if (closed_ || items_.size() >= options_.capacity) {
      ++stats_.dropped;
      return false;
    }
  } else {
    not_full_.wait(lock, [&] {
      return closed_ || items_.size() < options_.capacity;
    });
    if (closed_) {
      ++stats_.dropped;
      return false;
    }
  }
  items_.push_back(Item{update, SteadyNowSeconds()});
  ++stats_.received;
  stats_.max_depth = std::max(stats_.max_depth,
                              static_cast<std::uint64_t>(items_.size()));
  not_empty_.notify_one();
  return true;
}

bool UpdateQueue::PopBatch(DrainedBatch* out) {
  out->updates.clear();
  out->enqueue_seconds.clear();
  out->consumed = 0;

  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
  if (items_.empty()) return false;  // closed and drained
  DrainLocked(&lock, out);
  return true;
}

UpdateQueue::PopResult UpdateQueue::PopBatchFor(DrainedBatch* out,
                                                double timeout_seconds) {
  out->updates.clear();
  out->enqueue_seconds.clear();
  out->consumed = 0;

  std::unique_lock<std::mutex> lock(mu_);
  const auto wait = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(timeout_seconds));
  not_empty_.wait_for(lock, wait,
                      [&] { return closed_ || !items_.empty(); });
  if (items_.empty()) return closed_ ? PopResult::kClosed : PopResult::kTimeout;
  DrainLocked(&lock, out);
  return PopResult::kBatch;
}

void UpdateQueue::DrainLocked(std::unique_lock<std::mutex>* lock_ptr,
                              DrainedBatch* out) {
  std::unique_lock<std::mutex>& lock = *lock_ptr;
  if (options_.batch_latency_budget_seconds > 0.0 &&
      items_.size() < options_.max_batch && !closed_) {
    // Trade a bounded slice of latency for a fuller (more coalescible)
    // batch. Wakeups re-check; we leave early once the batch is full.
    const auto budget = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(std::chrono::duration<double>(
        options_.batch_latency_budget_seconds));
    not_empty_.wait_for(lock, budget, [&] {
      return closed_ || items_.size() >= options_.max_batch;
    });
  }

  const std::size_t take = std::min(items_.size(), options_.max_batch);
  out->updates.reserve(take);
  out->enqueue_seconds.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    out->updates.push_back(items_.front().update);
    out->enqueue_seconds.push_back(items_.front().enqueue_seconds);
    items_.pop_front();
  }
  out->consumed = take;
  ++stats_.batches;
  not_full_.notify_all();

  std::size_t removed = 0;
  if (options_.coalesce) {
    removed = CoalesceUpdates(options_.directed, &out->updates);
  }
  stats_.coalesced += removed;
  stats_.drained += out->updates.size();
}

void UpdateQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

void UpdateQueue::SetCapacity(std::size_t capacity) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    options_.capacity = capacity == 0 ? 1 : capacity;
  }
  // A raise can free blocked producers; a shrink wakes them into a
  // re-check that sends them back to sleep.
  not_full_.notify_all();
}

bool UpdateQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t UpdateQueue::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_.capacity;
}

std::size_t UpdateQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

UpdateQueueStats UpdateQueue::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t CoalesceUpdates(bool directed, std::vector<EdgeUpdate>* batch) {
  if (batch->size() < 2) return 0;
  struct Span {
    std::size_t first = 0;
    std::size_t last = 0;
  };
  std::unordered_map<EdgeKey, Span, EdgeKeyHash> spans;
  spans.reserve(batch->size());
  for (std::size_t i = 0; i < batch->size(); ++i) {
    const EdgeUpdate& e = (*batch)[i];
    const EdgeKey key = MakeEdgeKey(directed, e.u, e.v);
    auto [it, inserted] = spans.try_emplace(key, Span{i, i});
    if (!inserted) it->second.last = i;
  }
  std::vector<EdgeUpdate> survivors;
  survivors.reserve(batch->size());
  for (std::size_t i = 0; i < batch->size(); ++i) {
    const EdgeUpdate& e = (*batch)[i];
    const Span& span =
        spans.find(MakeEdgeKey(directed, e.u, e.v))->second;
    if (i != span.last) continue;  // superseded by a later op on this edge
    const EdgeOp first_op = (*batch)[span.first].op;
    // Differing first/last ops mean the edge ends in its pre-batch state
    // (add..remove: never existed; remove..add: still exists with exactly
    // its old paths) — the whole chain is a no-op.
    if (span.first != span.last && first_op != e.op) continue;
    survivors.push_back(e);
  }
  const std::size_t removed = batch->size() - survivors.size();
  *batch = std::move(survivors);
  return removed;
}

}  // namespace sobc
