#ifndef SOBC_SERVER_BC_SERVICE_H_
#define SOBC_SERVER_BC_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>

#include "bc/dynamic_bc.h"
#include "common/status.h"
#include "graph/edge_stream.h"
#include "graph/graph.h"
#include "server/score_snapshot.h"
#include "server/serve_metrics.h"
#include "server/update_queue.h"

namespace sobc {

struct BcServiceOptions {
  /// Storage variant and traversal options of the underlying framework.
  DynamicBcOptions bc;
  /// Queue depth, batch size, latency budget, coalescing, drop policy.
  /// `directed` is overwritten from the graph.
  UpdateQueueOptions queue;
  /// Leaderboard length precomputed into every snapshot.
  std::size_t top_k = 16;
  /// Copy the full edge-betweenness map into each snapshot (EdgeScore
  /// queries at any key). Disable to publish scores + leaderboards only,
  /// which trims per-publish copying on edge-dense graphs.
  bool snapshot_edge_scores = true;
};

/// The concurrent serving layer over the online framework (DESIGN.md §8):
/// one writer thread owns the graph, the BD store, and the incremental
/// engine, draining coalesced batches from a bounded update queue; readers
/// on any thread query immutable epoch-stamped snapshots and never block
/// on a running refresh.
///
///   auto service = BcService::Create(std::move(graph), {});
///   service->Submit({u, v, EdgeOp::kAdd, now});        // any thread
///   auto snap = service->snapshot();                   // any thread
///   for (auto& [vertex, score] : snap->top_vertices) ...
///
/// Lifecycle: Create runs Step 1 (Brandes) synchronously and publishes the
/// epoch-0 snapshot before the writer starts. Stop() (or destruction)
/// closes the queue, drains what was accepted, and joins the writer. After
/// a writer error the service stops accepting updates and Drain/Stop
/// return the failure.
class BcService {
 public:
  static Result<std::unique_ptr<BcService>> Create(
      Graph graph, const BcServiceOptions& options);
  ~BcService();

  BcService(const BcService&) = delete;
  BcService& operator=(const BcService&) = delete;

  /// Enqueues one update (any thread). Blocks under backpressure unless
  /// the queue drops; returns false when dropped or the service stopped.
  bool Submit(const EdgeUpdate& update);

  /// Submits a whole stream in order; returns how many were accepted.
  std::size_t SubmitAll(const EdgeStream& stream);

  /// The latest published scores. Wait-free with respect to refresh work;
  /// the returned snapshot stays valid for as long as the caller holds it.
  std::shared_ptr<const ScoreSnapshot> snapshot() const {
    return snapshots_.Acquire();
  }

  /// Blocks until everything accepted so far is applied and published (or
  /// the writer failed). Readers see a snapshot at least this fresh.
  Status Drain();

  /// Stops accepting updates, drains accepted ones, joins the writer.
  /// Idempotent; returns the writer's terminal status.
  Status Stop();

  /// Writer-side metrics merged with the queue's push accounting.
  ServeMetricsSnapshot metrics() const;

  /// Updates accepted into the queue so far.
  std::uint64_t submitted() const { return queue_.stats().received; }

  /// The underlying framework — for post-mortem inspection (store
  /// footprint, checkpoint). Safe to touch only after Stop() returned;
  /// while the service runs, the writer thread owns it.
  DynamicBc* framework() { return bc_.get(); }

 private:
  BcService(std::unique_ptr<DynamicBc> bc, const BcServiceOptions& options);

  void WriterLoop();
  Status WriterStatusLocked() const { return writer_status_; }

  BcServiceOptions options_;
  /// Owned by the writer thread once it starts; other threads must only
  /// touch it again after the writer has been joined.
  std::unique_ptr<DynamicBc> bc_;
  UpdateQueue queue_;
  SnapshotStore snapshots_;
  ServeMetrics metrics_;

  std::atomic<std::uint64_t> published_position_{0};

  mutable std::mutex mu_;  // guards writer_status_ and Drain waits
  std::condition_variable publish_cv_;
  Status writer_status_;
  bool writer_done_ = false;

  std::thread writer_;
};

}  // namespace sobc

#endif  // SOBC_SERVER_BC_SERVICE_H_
