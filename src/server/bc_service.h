#ifndef SOBC_SERVER_BC_SERVICE_H_
#define SOBC_SERVER_BC_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "bc/dynamic_bc.h"
#include "common/status.h"
#include "graph/edge_stream.h"
#include "graph/graph.h"
#include "server/score_snapshot.h"
#include "server/serve_metrics.h"
#include "server/update_queue.h"
#include "storage/checkpoint.h"
#include "storage/wal.h"

namespace sobc {

/// Durability of the serving layer (DESIGN.md §11). With a wal_dir set,
/// the writer thread logs every drained batch to a CRC-framed write-ahead
/// log *before* applying it, and periodically commits checkpoints (graph +
/// scores + flushed BD store for the out-of-core variant) so a crashed or
/// restarted deployment resumes from the last checkpoint plus a WAL-tail
/// replay instead of an O(nm) from-scratch recompute.
struct DurabilityOptions {
  /// Directory of the write-ahead log. Empty disables durability (the
  /// PR-2 behavior: all serving state dies with the process).
  std::string wal_dir;
  /// Checkpoint directory; defaults to <wal_dir>/checkpoints.
  std::string checkpoint_dir;
  /// fdatasync the log every N appended batches. 1 (default) makes every
  /// accepted batch power-loss durable before it is applied; 0 leaves
  /// syncing to the OS (process crashes still lose nothing — the page
  /// cache survives them — but power loss can cost the unsynced tail).
  std::size_t wal_fsync_every = 1;
  /// Commit a checkpoint once this many raw stream updates were consumed
  /// since the last one (0 = no op-count trigger).
  std::size_t checkpoint_every_updates = 0;
  /// Commit a checkpoint once this much wall time passed since the last
  /// one (0 = no interval trigger). Either trigger alone suffices.
  double checkpoint_interval_seconds = 0.0;
  /// Checkpoints kept on disk; older ones are pruned after each commit.
  std::size_t retain_checkpoints = 2;
  /// Crash-injection hook for tests and the CI recovery smoke: the writer
  /// calls _exit(137) right after this many WAL appends (0 = off) —
  /// a hard kill at the most adversarial point, mid-stream with the apply
  /// for the logged batch never run.
  std::size_t kill_after_appends = 0;

  bool enabled() const { return !wal_dir.empty(); }
};

/// The serving layer's health ladder (docs/OPERATIONS.md "Failure modes &
/// health states"). Transitions are one-way within a process: a Degraded
/// service never self-heals to Healthy (the condition that degraded it —
/// a failed checkpoint, ENOSPC — needs operator action), and ReadOnly is
/// terminal (the writer is dead; snapshots still serve, Submit rejects).
enum class ServiceHealth : int {
  kHealthy = 0,
  /// Checkpointing failed or is impossible (ENOSPC): checkpoints are
  /// suspended, serving continues WAL-only, and the queue capacity is
  /// halved so backpressure bites earlier while durability is reduced.
  kDegraded = 1,
  /// The writer thread is dead (WAL append/sync/rotate failure, engine
  /// apply failure). Published snapshots remain readable forever; Submit
  /// fails fast; Drain/Stop report the terminal error.
  kReadOnly = 2,
};

/// The state name as emitted in ServeMetrics JSON ("healthy" | "degraded"
/// | "readonly").
const char* ServiceHealthName(ServiceHealth health);

/// What BcService::Recover found and did — surfaced by `sobc_cli recover`
/// and asserted by the crash-injection tests.
struct RecoveryInfo {
  /// Checkpoint the recovery started from.
  std::uint64_t manifest_epoch = 0;
  std::uint64_t manifest_stream_position = 0;
  std::string variant;
  /// WAL tail replayed on top of it.
  std::uint64_t replayed_batches = 0;
  std::uint64_t replayed_updates = 0;
  /// Bytes discarded from a torn final segment (crash mid-append).
  std::uint64_t torn_bytes = 0;
  /// A poisoned final record — a batch the engine deterministically
  /// rejects (bad client update, e.g. adding an existing edge), which is
  /// what killed the live writer — was amputated from the log. Its
  /// effects were never published, so the recovered state is still
  /// exactly the live run's last published state.
  std::uint64_t poisoned_batches = 0;
  std::uint64_t poisoned_updates = 0;
  /// Serving state after replay: the epoch/position the uninterrupted run
  /// had published for this prefix.
  std::uint64_t recovered_epoch = 0;
  std::uint64_t recovered_stream_position = 0;
  double load_seconds = 0.0;
  double replay_seconds = 0.0;
};

/// Everything a serving deployment is configured with: the framework
/// underneath, the queue in front of it, snapshot shape, and durability.
struct BcServiceOptions {
  /// Storage variant and traversal options of the underlying framework.
  DynamicBcOptions bc;
  /// Queue depth, batch size, latency budget, coalescing, drop policy.
  /// `directed` is overwritten from the graph.
  UpdateQueueOptions queue;
  /// Leaderboard length precomputed into every snapshot.
  std::size_t top_k = 16;
  /// Copy the full edge-betweenness map into each snapshot (EdgeScore
  /// queries at any key). Disable to publish scores + leaderboards only,
  /// which trims per-publish copying on edge-dense graphs.
  bool snapshot_edge_scores = true;
  /// Write-ahead log + checkpointing; off by default.
  DurabilityOptions durability;
  /// Watchdog: flag the writer as stalled when one batch (WAL append +
  /// apply + publish) exceeds this many seconds, so Drain() reports the
  /// hang instead of blocking forever. 0 disables the watchdog.
  double writer_stall_timeout_seconds = 0.0;
  /// Test hook, called by the writer thread at the start of every batch
  /// (before the WAL append). Lets fault tests deterministically stall or
  /// observe the writer; never set in production.
  std::function<void()> writer_batch_hook;
  /// Shard-worker (cluster) mode: no internal writer or watchdog thread.
  /// Batches arrive pre-coalesced from the coordinator connection through
  /// ApplyReplicatedBatch, which runs the exact writer-loop sequence
  /// (log-before-apply, publish, checkpoint policy) on the caller's
  /// thread. Submit rejects — the coordinator's queue is the only
  /// coalescing point, so every shard sees the same batch boundaries.
  bool replicated = false;
  /// Replicated mode only: the absolute epoch/position this service's
  /// initial state corresponds to. A freshly sharded deployment starts at
  /// 0; a migration recipient joins at the donor's cut (DESIGN.md §13),
  /// so its first ApplyReplicatedBatch epoch is replicated_base_epoch+1.
  /// Create publishes the initial snapshot at this epoch and, when
  /// durable, starts the WAL at epoch+1.
  std::uint64_t replicated_base_epoch = 0;
  std::uint64_t replicated_base_position = 0;
};

/// The concurrent serving layer over the online framework (DESIGN.md §8):
/// one writer thread owns the graph, the BD store, and the incremental
/// engine, draining coalesced batches from a bounded update queue; readers
/// on any thread query immutable epoch-stamped snapshots and never block
/// on a running refresh.
///
///   auto service = BcService::Create(std::move(graph), {});
///   service->Submit({u, v, EdgeOp::kAdd, now});        // any thread
///   auto snap = service->snapshot();                   // any thread
///   for (auto& [vertex, score] : snap->top_vertices) ...
///
/// Lifecycle: Create runs Step 1 (Brandes) synchronously and publishes the
/// epoch-0 snapshot before the writer starts. Stop() (or destruction)
/// closes the queue, drains what was accepted, and joins the writer. After
/// a writer error the service stops accepting updates and Drain/Stop
/// return the failure.
class BcService {
 public:
  static Result<std::unique_ptr<BcService>> Create(
      Graph graph, const BcServiceOptions& options);

  /// Rebuilds a durable deployment after a crash or restart: loads the
  /// newest usable checkpoint from options.durability, replays the WAL
  /// tail through the same batch-apply machinery the live writer uses
  /// (truncating a torn final frame), and resumes serving at the epoch and
  /// stream position the uninterrupted run had published. The storage
  /// variant comes from the manifest; tuning fields of options.bc
  /// (threads, prefilter, cache, codec is header-ruled) still apply. For
  /// the out-of-core variant the checkpointed store is byte-copied to
  /// options.bc.storage_path (default <checkpoint_dir>/live.bd), which
  /// makes serial-apply recovery bit-identical to the uninterrupted run.
  static Result<std::unique_ptr<BcService>> Recover(
      const BcServiceOptions& options, RecoveryInfo* info = nullptr);

  ~BcService();

  BcService(const BcService&) = delete;
  BcService& operator=(const BcService&) = delete;

  /// Enqueues one update (any thread). Blocks under backpressure unless
  /// the queue drops; returns false when dropped or the service stopped.
  bool Submit(const EdgeUpdate& update);

  /// Submits a whole stream in order; returns how many were accepted.
  std::size_t SubmitAll(const EdgeStream& stream);

  /// The latest published scores. Wait-free with respect to refresh work;
  /// the returned snapshot stays valid for as long as the caller holds it.
  std::shared_ptr<const ScoreSnapshot> snapshot() const {
    return snapshots_.Acquire();
  }

  /// Blocks until everything accepted so far is applied and published (or
  /// the writer failed). Readers see a snapshot at least this fresh.
  Status Drain();

  /// Stops accepting updates, drains accepted ones, joins the writer.
  /// Idempotent; returns the writer's terminal status.
  Status Stop();

  /// Crash-shaped stop for tests: shuts the service down WITHOUT the
  /// clean-shutdown checkpoint, so the next Recover exercises the real
  /// checkpoint + WAL-tail path exactly as after a process kill (the WAL
  /// already holds every applied batch — log-before-apply).
  void Halt();

  /// Replicated-mode apply (options.replicated only; one caller thread —
  /// the shard's coordinator session). Runs one coalesced batch through
  /// the writer-loop sequence under the coordinator's epoch numbering:
  /// `epoch` must be exactly final_epoch()+1 and `stream_position` the
  /// coordinator's raw-update position after the batch. Exactly-once under
  /// retries: a duplicate delivery (epoch <= the current epoch) is a
  /// silent OK no-op, a gap is FailedPrecondition (the coordinator must
  /// backfill from its replay window), and any WAL/apply failure takes the
  /// shard ReadOnly and sticks as last_error().
  Status ApplyReplicatedBatch(std::uint64_t epoch,
                              std::uint64_t stream_position,
                              std::span<const EdgeUpdate> updates);

  /// Replicated mode only (same single-caller discipline as
  /// ApplyReplicatedBatch): re-scopes this shard's owned source range to
  /// [begin, end) at the CURRENT epoch — the commit step of a live range
  /// migration (DESIGN.md §13). Because exact maintenance keeps the
  /// framework's state equal to a from-scratch build on the current graph,
  /// the rescope reruns scoped Step 1 over a copy of that graph, which IS
  /// the exact partial for the new range at this epoch; the snapshot is
  /// republished at the unchanged epoch/position so no publication ever
  /// mixes two maps. When durable, a post-rescope checkpoint is forced so
  /// recovery rebuilds the new scope (its failure degrades, not fails).
  /// Unimplemented for the out-of-core variant — re-bootstrap such a
  /// shard from a checkpoint instead.
  Status RescopeSourceRange(VertexId begin, VertexId end);

  /// Published epoch of the newest snapshot (any thread).
  std::uint64_t final_epoch() const {
    std::lock_guard<std::mutex> lock(mu_);
    return final_epoch_;
  }
  /// Raw-stream position of the newest snapshot (any thread).
  std::uint64_t final_position() const {
    return published_position_.load(std::memory_order_acquire);
  }

  /// Writer-side metrics merged with the queue's push accounting.
  ServeMetricsSnapshot metrics() const;

  /// Blocks until no checkpoint job is in flight and returns the first
  /// background checkpoint error, if any. Observers (benches, operators
  /// snapshotting the checkpoint dir) call this for a stable directory;
  /// later batches may trigger new checkpoints as usual. No-op without
  /// durability.
  Status QuiesceCheckpoints() {
    return checkpointer_ != nullptr ? checkpointer_->WaitIdle()
                                    : Status::OK();
  }

  /// Updates accepted into the queue so far.
  std::uint64_t submitted() const { return queue_.stats().received; }

  /// Current position on the health ladder (any thread).
  ServiceHealth health() const {
    return static_cast<ServiceHealth>(
        health_.load(std::memory_order_acquire));
  }

  /// The error behind the last health transition; OK while healthy.
  Status last_error() const {
    std::lock_guard<std::mutex> lock(mu_);
    return health_error_;
  }

  /// The underlying framework — for post-mortem inspection (store
  /// footprint, checkpoint). Safe to touch only after Stop() returned;
  /// while the service runs, the writer thread owns it. In replicated
  /// mode there is no writer thread: the single ApplyReplicatedBatch
  /// caller (the shard's session loop) owns it and may read it between
  /// applies — that is how a shard serializes its score partials.
  DynamicBc* framework() { return bc_.get(); }

  /// The resolved options this service runs with. Recover rewrites the
  /// variant and source partition from the manifest; a restarted shard
  /// reads its recovered partition back from here.
  const BcServiceOptions& options() const { return options_; }

 private:
  BcService(std::unique_ptr<DynamicBc> bc, const BcServiceOptions& options);

  void WriterLoop();
  Status WriterStatusLocked() const { return writer_status_; }
  /// The post-apply half of one batch, shared by the writer loop and
  /// ApplyReplicatedBatch: publish the snapshot, record metrics (latency
  /// stamps become submit-to-publish latencies here, after the publish),
  /// advance final_epoch_/final_position_ under mu_, and run the
  /// checkpoint policy. `consumed` is the raw-stream update count the
  /// batch covers (applied + coalesced-away).
  Status CommitBatch(std::uint64_t epoch, std::uint64_t position,
                     std::size_t applied, std::uint64_t consumed,
                     double apply_seconds, std::vector<double>* latencies);
  /// Durability plumbing shared by Create and Recover: checkpoint writer +
  /// WAL writer, with the first WAL segment starting at `next_epoch`.
  /// With `initial_checkpoint` (Create only) it first refuses a reused
  /// checkpoint dir, then commits the base-epoch checkpoint BEFORE the
  /// first WAL segment exists — the crash-safe bring-up order.
  Status StartDurability(std::uint64_t next_epoch, bool initial_checkpoint);
  /// Captures graph/scores (and, out of core, a flushed byte copy of the
  /// BD store) into a checkpoint job — the only part of checkpointing the
  /// writer thread pays for; serialization runs on the checkpoint thread.
  Result<CheckpointWriter::Job> CaptureCheckpointJob(std::uint64_t epoch,
                                                     std::uint64_t position);
  /// Evaluates the op-count/interval policy and hands a captured job to
  /// the background writer (writer thread only).
  Status MaybeCheckpoint(std::uint64_t epoch, std::uint64_t position);
  /// Healthy -> Degraded (one-way; no-op from Degraded/ReadOnly):
  /// suspends checkpointing, halves the queue capacity, records `why`.
  void EnterDegraded(const Status& why);
  /// Any state -> ReadOnly; records `why` as the terminal error.
  void EnterReadOnly(const Status& why);
  /// Watchdog thread body: samples the writer's batch-start stamp and
  /// flags a stall (writer_stall_timeout_seconds exceeded) for Drain.
  void WatchdogLoop();

  BcServiceOptions options_;
  /// Owned by the writer thread once it starts; other threads must only
  /// touch it again after the writer has been joined.
  std::unique_ptr<DynamicBc> bc_;
  UpdateQueue queue_;
  SnapshotStore snapshots_;
  ServeMetrics metrics_;

  std::atomic<std::uint64_t> published_position_{0};

  // Durability state (null / zero when options_.durability is off).
  // wal_ is owned by the writer thread once it starts; checkpointer_ has
  // its own thread and is touched from the writer (Enqueue) and Stop
  // (WriteNow/WaitIdle) only after the writer joined.
  std::unique_ptr<WalWriter> wal_;
  std::unique_ptr<CheckpointWriter> checkpointer_;
  /// Epoch/position the service resumed from (0/0 for a fresh Create);
  /// the writer's epochs and Drain targets are absolute, offset by these.
  std::uint64_t base_epoch_ = 0;
  std::uint64_t base_position_ = 0;
  /// Raw updates consumed since the last checkpoint trigger + its stamp
  /// (writer thread only).
  std::uint64_t updates_since_checkpoint_ = 0;
  double last_checkpoint_stamp_ = 0.0;
  bool final_checkpoint_done_ = false;  // Stop() idempotence

  mutable std::mutex mu_;  // guards writer_status_ and Drain waits
  std::condition_variable publish_cv_;
  Status writer_status_;
  bool writer_done_ = false;
  /// Last published epoch/position, for Stop()'s final checkpoint
  /// (guarded by mu_; written by the writer at each publish).
  std::uint64_t final_epoch_ = 0;
  std::uint64_t final_position_ = 0;

  // Health ladder (ServiceHealth as int; transitions documented on the
  // enum). health_error_ is guarded by mu_.
  std::atomic<int> health_{static_cast<int>(ServiceHealth::kHealthy)};
  std::atomic<bool> checkpoints_suspended_{false};
  Status health_error_;

  // Writer watchdog. batch_started_ holds the SteadyNowSeconds stamp of
  // the batch in flight (0 = writer idle); writer_stalled_ is flipped by
  // the watchdog under mu_ so Drain's wait sees it.
  std::atomic<double> batch_started_{0.0};
  std::atomic<bool> writer_stalled_{false};
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  std::thread watchdog_;

  std::thread writer_;
};

}  // namespace sobc

#endif  // SOBC_SERVER_BC_SERVICE_H_
