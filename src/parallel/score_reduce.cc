#include "parallel/score_reduce.h"

namespace sobc {

void TreeReduceScores(ThreadPool* pool, std::span<BcScores*> partials) {
  const std::size_t p = partials.size();
  if (p <= 1) return;
  if (pool == nullptr || p == 2) {
    for (std::size_t i = 1; i < p; ++i) partials[0]->Merge(*partials[i]);
    return;
  }
  for (std::size_t stride = 1; stride < p; stride *= 2) {
    // Round: partials[i] absorbs partials[i + stride] for every even
    // multiple i of 2*stride; pairs are disjoint, so they merge in
    // parallel.
    std::vector<std::size_t> left;
    for (std::size_t i = 0; i + stride < p; i += 2 * stride) {
      left.push_back(i);
    }
    if (left.size() == 1) {
      partials[left[0]]->Merge(*partials[left[0] + stride]);
      continue;
    }
    ParallelFor(pool, left.size(), [&](std::size_t k) {
      partials[left[k]]->Merge(*partials[left[k] + stride]);
    });
  }
}

}  // namespace sobc
