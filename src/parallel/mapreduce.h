#ifndef SOBC_PARALLEL_MAPREDUCE_H_
#define SOBC_PARALLEL_MAPREDUCE_H_

#include <memory>
#include <string>
#include <vector>

#include "bc/bc_types.h"
#include "bc/bd_store.h"
#include "bc/dynamic_bc.h"
#include "bc/incremental.h"
#include "bc/source_prefilter.h"
#include "common/status.h"
#include "graph/edge_stream.h"
#include "graph/graph.h"
#include "parallel/source_sharder.h"
#include "parallel/thread_pool.h"
#include "storage/record_codec.h"

namespace sobc {

class DiskBdStore;

/// Configuration of the parallel embodiment (Section 5.2): how many
/// logical mappers partition the sources and how each mapper's store and
/// per-update drain are tuned.
struct ParallelBcOptions {
  /// Number of logical mappers p (the paper's shared-nothing machines).
  /// Each mapper *stores* a contiguous range of ~n/p sources (Figure 4);
  /// the work over those sources is claimed dynamically, see below.
  int num_mappers = 4;
  /// Storage variant per mapper; kOutOfCore gives every mapper its own
  /// columnar file under storage_dir (one disk per machine in the paper).
  BcVariant variant = BcVariant::kMemory;
  std::string storage_dir;
  /// Record codec of each mapper's store file (storage/record_codec.h).
  RecordCodecId store_codec = RecordCodecId::kRaw;
  /// Total hot-record cache budget in MiB, split evenly across the
  /// mappers' stores (each store's handles share its slice; the aggregate
  /// never exceeds this budget).
  std::size_t cache_mb = 64;
  /// Background read-ahead of upcoming chunks into each mapper store's
  /// shared cache (kOutOfCore only).
  bool prefetch = true;
  /// Physical threads executing map work. Zero = hardware concurrency.
  /// Mapper count may exceed thread count: the cluster model below still
  /// reports per-mapper times as if each ran on its own machine.
  int num_threads = 0;
  /// Traverse via the graph's packed CsrView snapshot (default): built once
  /// in Create, patched on the driver thread inside Apply, and shared
  /// read-only by all workers of one update.
  bool use_csr = true;
  /// Run the endpoint-BFS affected-source prefilter before the map phase,
  /// so mappers only ever touch dirty sources (source_prefilter.h). Off =
  /// the paper's original full-range sweep with per-source BD probes.
  bool prefilter = true;
  /// Drive the traversal hot paths (prefilter, per-mapper Step-1 rebuild,
  /// engine structural batches) through the bit-parallel MS-BFS kernel
  /// (graph/msbfs.h, DESIGN.md §14); off = per-source scalar BFS.
  bool msbfs = true;
  /// Direction-optimizing switch threshold (Beamer's alpha); <= 0 pins the
  /// kernel top-down.
  double do_switch_threshold = 14.0;
};

/// Timing of one parallel update, in the paper's accounting:
///   cumulative = prefilter + sum over mappers (+ merge) — what Figure 6
///                compares against single-machine Brandes;
///   modeled_wall = prefilter + max over mappers + merge — wall-clock on a
///                p-machine cluster, which drives Figures 7-8 and Table 5.
/// The prefilter (like the merge) is coordinator work serialized before the
/// map phase, so it charges into both.
struct ParallelUpdateTiming {
  std::vector<double> mapper_seconds;
  double merge_seconds = 0.0;
  double prefilter_seconds = 0.0;

  double CumulativeSeconds() const;
  double ModeledWallSeconds() const;
};

/// The MapReduce embodiment of Section 5.4: p mappers each own a source
/// partition (with its private BD store), process every stream update for
/// their sources, and emit partial betweenness sums; the reduce step
/// aggregates partials per vertex/edge id.
///
/// On this single-node implementation the map phase is executed by
/// work-claiming pool workers rather than one monolithic task per mapper:
/// the per-update dirty-source worklist (endpoint-BFS prefilter) is sliced
/// into degree-weighted chunks that never straddle a mapper's partition,
/// and idle workers claim chunks through SourceSharder's atomic cursor —
/// so one mapper hit by an expensive structural source no longer pins the
/// whole update to its range's worst case. Per-chunk times are accumulated
/// back onto the owning mapper, preserving the per-machine accounting the
/// cluster model reports (see DESIGN.md, substitution 3 and §9).
class ParallelDynamicBc {
 public:
  static Result<std::unique_ptr<ParallelDynamicBc>> Create(
      Graph graph, const ParallelBcOptions& options);

  /// Applies one update across all mappers (map) and invalidates the cached
  /// reduction. Per-update timing is returned through `timing` if non-null.
  Status Apply(const EdgeUpdate& update,
               ParallelUpdateTiming* timing = nullptr);

  Status ApplyAll(const EdgeStream& stream);

  /// The reduced (global) scores, maintained continuously: every Apply
  /// folds the workers' emitted deltas into this set.
  const BcScores& scores();

  /// Seconds spent by the most recent reduce.
  double last_merge_seconds() const { return last_merge_seconds_; }

  const Graph& graph() const { return graph_; }
  int num_mappers() const { return static_cast<int>(mappers_.size()); }

  /// Merged per-update statistics for the most recent Apply.
  UpdateStats last_update_stats() const { return last_stats_; }

  /// Step-1 (Brandes initialization) per-mapper times, for speedup
  /// accounting against the sequential baseline.
  const std::vector<double>& init_mapper_seconds() const {
    return init_seconds_;
  }

 private:
  /// A storage partition: the paper's machine-owned source range.
  struct Mapper {
    VertexId begin = 0;
    VertexId limit = kInvalidVertex;  // open-ended for the last mapper
    std::unique_ptr<BdStore> store;
    /// store downcast when kOutOfCore (worker handles come from its
    /// OpenShared; hints go to its prefetcher); null otherwise.
    DiskBdStore* disk = nullptr;
  };

  /// A physical lane of the map phase: engine scratch, score partial, and
  /// (out-of-core) one store handle per mapper it has touched.
  struct MapWorker {
    std::unique_ptr<IncrementalEngine> engine;
    BcScores delta;
    UpdateStats stats;
    Status status;
    std::vector<std::unique_ptr<BdStore>> disk_handles;  // indexed by mapper
  };

  ParallelDynamicBc(Graph graph, int num_threads)
      : graph_(std::move(graph)),
        pool_(std::make_unique<ThreadPool>(num_threads)) {}

  VertexId MapperEnd(const Mapper& m) const;
  /// Index of the mapper whose partition holds source s.
  std::size_t MapperOf(VertexId s) const;
  Status EnsureMapWorkers(std::size_t w, std::size_t n);
  /// The store a worker must use for sources of mapper `m` (the mapper's
  /// own store in-memory; a lazily opened private handle out-of-core).
  Result<BdStore*> WorkerStore(MapWorker* worker, std::size_t m);

  ParallelBcOptions options_;
  PredMode pred_mode_ = PredMode::kScanNeighbors;
  Graph graph_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<Mapper> mappers_;
  std::vector<MapWorker> workers_;
  std::vector<double> init_seconds_;
  BcScores reduced_;
  double last_merge_seconds_ = 0.0;
  UpdateStats last_stats_;

  SourcePrefilter prefilter_;
  SourceSharder sharder_;
  std::vector<VertexId> worklist_;
  std::vector<std::uint64_t> weights_;
  std::vector<std::size_t> hard_breaks_;
  std::vector<std::size_t> chunk_mapper_;
  std::vector<double> chunk_seconds_;
  std::vector<double> mapper_seconds_;
};

}  // namespace sobc

#endif  // SOBC_PARALLEL_MAPREDUCE_H_
