#ifndef SOBC_PARALLEL_MAPREDUCE_H_
#define SOBC_PARALLEL_MAPREDUCE_H_

#include <memory>
#include <string>
#include <vector>

#include "bc/bc_types.h"
#include "bc/bd_store.h"
#include "bc/dynamic_bc.h"
#include "bc/incremental.h"
#include "common/status.h"
#include "graph/edge_stream.h"
#include "graph/graph.h"
#include "parallel/thread_pool.h"

namespace sobc {

struct ParallelBcOptions {
  /// Number of logical mappers p (the paper's shared-nothing machines).
  /// Sources are split into p contiguous ranges of ~n/p each (Figure 4).
  int num_mappers = 4;
  /// Storage variant per mapper; kOutOfCore gives every mapper its own
  /// columnar file under storage_dir (one disk per machine in the paper).
  BcVariant variant = BcVariant::kMemory;
  std::string storage_dir;
  /// Physical threads executing mapper tasks. Zero = hardware concurrency.
  /// Mapper count may exceed thread count: the cluster model below still
  /// reports per-mapper times as if each ran on its own machine.
  int num_threads = 0;
  /// Traverse via the graph's packed CsrView snapshot (default): built once
  /// in Create, patched on the driver thread inside Apply, and shared
  /// read-only by all p mappers of one update.
  bool use_csr = true;
};

/// Timing of one parallel update, in the paper's accounting:
///   cumulative = sum over mappers (+ merge)  — what Figure 6 compares
///                against single-machine Brandes;
///   modeled_wall = max over mappers + merge  — wall-clock on a p-machine
///                cluster, which drives Figures 7-8 and Table 5.
struct ParallelUpdateTiming {
  std::vector<double> mapper_seconds;
  double merge_seconds = 0.0;

  double CumulativeSeconds() const;
  double ModeledWallSeconds() const;
};

/// The MapReduce embodiment of Section 5.4: p mappers each own a source
/// partition (with its private BD store and engine), process every stream
/// update for their sources, and emit partial betweenness sums; the reduce
/// step aggregates partials per vertex/edge id.
///
/// On this single-node implementation the mappers run as thread-pool tasks;
/// per-mapper timings are measured individually so cluster-level cumulative
/// and wall-clock figures can be reported faithfully (see DESIGN.md,
/// substitution 3).
class ParallelDynamicBc {
 public:
  static Result<std::unique_ptr<ParallelDynamicBc>> Create(
      Graph graph, const ParallelBcOptions& options);

  /// Applies one update across all mappers (map) and invalidates the cached
  /// reduction. Per-update timing is returned through `timing` if non-null.
  Status Apply(const EdgeUpdate& update,
               ParallelUpdateTiming* timing = nullptr);

  Status ApplyAll(const EdgeStream& stream);

  /// The reduced (global) scores, maintained continuously: every Apply
  /// folds the mappers' emitted deltas into this set.
  const BcScores& scores();

  /// Seconds spent by the most recent reduce.
  double last_merge_seconds() const { return last_merge_seconds_; }

  const Graph& graph() const { return graph_; }
  int num_mappers() const { return static_cast<int>(mappers_.size()); }

  /// Merged per-update statistics for the most recent Apply.
  UpdateStats last_update_stats() const;

  /// Step-1 (Brandes initialization) per-mapper times, for speedup
  /// accounting against the sequential baseline.
  const std::vector<double>& init_mapper_seconds() const {
    return init_seconds_;
  }

 private:
  struct Mapper {
    VertexId begin = 0;
    VertexId limit = kInvalidVertex;  // open-ended for the last mapper
    std::unique_ptr<BdStore> store;
    std::unique_ptr<IncrementalEngine> engine;
    /// Scores emitted for the current update only (the map output).
    BcScores delta;
    UpdateStats stats;
    double last_seconds = 0.0;
    Status last_status;
  };

  ParallelDynamicBc(Graph graph, int num_threads)
      : graph_(std::move(graph)),
        pool_(std::make_unique<ThreadPool>(num_threads)) {}

  VertexId MapperEnd(const Mapper& m) const;

  Graph graph_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<Mapper> mappers_;
  std::vector<double> init_seconds_;
  BcScores reduced_;
  double last_merge_seconds_ = 0.0;
};

}  // namespace sobc

#endif  // SOBC_PARALLEL_MAPREDUCE_H_
