#include "parallel/online_scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace sobc {

OnlineReplayResult SimulateQueue(const std::vector<double>& arrivals,
                                 const std::vector<double>& processing) {
  OnlineReplayResult result;
  result.total_updates = arrivals.size();
  result.update_seconds = processing;
  double finish_prev = arrivals.empty() ? 0.0 : arrivals.front();
  double total_delay = 0.0;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const double start = std::max(arrivals[i], finish_prev);
    const double finish = start + processing[i];
    finish_prev = finish;
    if (i + 1 < arrivals.size()) {
      ++result.deadline_updates;
      const double deadline = arrivals[i + 1];
      result.inter_arrival_seconds.push_back(deadline - arrivals[i]);
      if (finish > deadline) {
        ++result.missed;
        total_delay += finish - deadline;
      }
    }
  }
  if (result.deadline_updates > 0) {
    result.missed_fraction = static_cast<double>(result.missed) /
                             static_cast<double>(result.deadline_updates);
  }
  if (result.missed > 0) {
    result.avg_delay_seconds = total_delay / static_cast<double>(result.missed);
  }
  return result;
}

Result<OnlineReplayResult> ReplayOnline(ParallelDynamicBc* bc,
                                        const EdgeStream& stream) {
  std::vector<double> arrivals;
  std::vector<double> processing;
  arrivals.reserve(stream.size());
  processing.reserve(stream.size());
  double prev = stream.empty() ? 0.0 : stream.front().timestamp;
  for (const EdgeUpdate& update : stream) {
    if (update.timestamp < prev) {
      return Status::InvalidArgument(
          "stream timestamps must be non-decreasing");
    }
    prev = update.timestamp;
    ParallelUpdateTiming timing;
    SOBC_RETURN_NOT_OK(bc->Apply(update, &timing));
    arrivals.push_back(update.timestamp);
    processing.push_back(timing.ModeledWallSeconds());
  }
  return SimulateQueue(arrivals, processing);
}

double ModeledUpdateSeconds(double ts_per_source, std::size_t n, int mappers,
                            double tm_merge) {
  if (mappers <= 0) return std::numeric_limits<double>::infinity();
  return ts_per_source * static_cast<double>(n) / mappers + tm_merge;
}

int RequiredMappers(double ts_per_source, std::size_t n,
                    double inter_arrival_seconds, double tm_merge) {
  const double budget = inter_arrival_seconds - tm_merge;
  if (budget <= 0.0) return 0;  // serial part alone blows the deadline
  const double p = ts_per_source * static_cast<double>(n) / budget;
  return static_cast<int>(std::floor(p)) + 1;
}

}  // namespace sobc
