#include "parallel/online_scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace sobc {

void DeadlineAccounting::Record(double arrival, double finish) {
  ++acc_.total_updates;
  if (has_pending_) {
    // The previous update's deadline is this arrival (tU < tI rule).
    ++acc_.deadline_updates;
    acc_.inter_arrival_seconds.push_back(arrival - pending_arrival_);
    if (pending_finish_ > arrival) {
      ++acc_.missed;
      total_delay_ += pending_finish_ - arrival;
    }
  }
  has_pending_ = true;
  pending_arrival_ = arrival;
  pending_finish_ = finish;
}

OnlineReplayResult DeadlineAccounting::Result() const {
  OnlineReplayResult result = acc_;
  if (result.deadline_updates > 0) {
    result.missed_fraction = static_cast<double>(result.missed) /
                             static_cast<double>(result.deadline_updates);
  }
  if (result.missed > 0) {
    result.avg_delay_seconds =
        total_delay_ / static_cast<double>(result.missed);
  }
  return result;
}

OnlineReplayResult SimulateQueue(const std::vector<double>& arrivals,
                                 const std::vector<double>& processing) {
  DeadlineAccounting accounting;
  double finish_prev = arrivals.empty() ? 0.0 : arrivals.front();
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const double start = std::max(arrivals[i], finish_prev);
    const double finish = start + processing[i];
    finish_prev = finish;
    accounting.Record(arrivals[i], finish);
  }
  OnlineReplayResult result = accounting.Result();
  result.update_seconds = processing;
  return result;
}

Result<OnlineReplayResult> ReplayOnline(ParallelDynamicBc* bc,
                                        const EdgeStream& stream) {
  std::vector<double> arrivals;
  std::vector<double> processing;
  arrivals.reserve(stream.size());
  processing.reserve(stream.size());
  double prev = stream.empty() ? 0.0 : stream.front().timestamp;
  for (const EdgeUpdate& update : stream) {
    if (update.timestamp < prev) {
      return Status::InvalidArgument(
          "stream timestamps must be non-decreasing");
    }
    prev = update.timestamp;
    ParallelUpdateTiming timing;
    SOBC_RETURN_NOT_OK(bc->Apply(update, &timing));
    arrivals.push_back(update.timestamp);
    processing.push_back(timing.ModeledWallSeconds());
  }
  return SimulateQueue(arrivals, processing);
}

double ModeledUpdateSeconds(double ts_per_source, std::size_t n, int mappers,
                            double tm_merge) {
  if (mappers <= 0) return std::numeric_limits<double>::infinity();
  return ts_per_source * static_cast<double>(n) / mappers + tm_merge;
}

int RequiredMappers(double ts_per_source, std::size_t n,
                    double inter_arrival_seconds, double tm_merge) {
  const double budget = inter_arrival_seconds - tm_merge;
  if (budget <= 0.0) return 0;  // serial part alone blows the deadline
  const double p = ts_per_source * static_cast<double>(n) / budget;
  return static_cast<int>(std::floor(p)) + 1;
}

}  // namespace sobc
