#ifndef SOBC_PARALLEL_ONLINE_SCHEDULER_H_
#define SOBC_PARALLEL_ONLINE_SCHEDULER_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "graph/edge_stream.h"
#include "parallel/mapreduce.h"

namespace sobc {

/// Outcome of replaying a timestamped update stream against the framework
/// (Section 5.3 / Section 6.2, Figure 8 and Table 5). An update is "on
/// time" when its betweenness refresh finishes before the next update
/// arrives (tU < tI); otherwise it is missed and its delay is how far past
/// that deadline the refresh completed.
struct OnlineReplayResult {
  std::size_t total_updates = 0;
  std::size_t deadline_updates = 0;  // updates that had a next arrival
  std::size_t missed = 0;
  double missed_fraction = 0.0;
  double avg_delay_seconds = 0.0;  // mean lateness over missed updates
  /// Per-update processing time (modeled p-machine wall clock).
  std::vector<double> update_seconds;
  /// Per-update inter-arrival gap to the next update (one shorter).
  std::vector<double> inter_arrival_seconds;
};

/// Incremental form of the miss/delay accounting shared by SimulateQueue
/// and the live serving drain (src/server): feed each update's arrival and
/// completion time in arrival order. An update's deadline is the *next*
/// update's arrival, so update i is settled when Record(i+1) supplies it;
/// the last update has no deadline and is never counted missed.
class DeadlineAccounting {
 public:
  /// Records one update. `arrival` values must be non-decreasing across
  /// calls; `finish` is when its betweenness refresh completed.
  void Record(double arrival, double finish);

  /// Accounting over everything recorded so far (update_seconds is left
  /// empty — processing times belong to the caller's clock model).
  OnlineReplayResult Result() const;

 private:
  bool has_pending_ = false;
  double pending_arrival_ = 0.0;
  double pending_finish_ = 0.0;
  double total_delay_ = 0.0;
  OnlineReplayResult acc_;
};

/// Replays `stream` through `bc`, timing each update and queueing work like
/// the deployed system would: an update cannot start before the previous
/// one finished. Stream timestamps must be non-decreasing.
Result<OnlineReplayResult> ReplayOnline(ParallelDynamicBc* bc,
                                        const EdgeStream& stream);

/// Computes the miss/delay accounting alone from known per-update
/// processing times and arrival timestamps (used by tests and by the
/// what-if capacity planner below).
OnlineReplayResult SimulateQueue(const std::vector<double>& arrivals,
                                 const std::vector<double>& processing);

/// The capacity model of Section 5.3: with average per-source time tS,
/// merge time tM and n sources, p machines produce an update in
/// tU = tS * n / p + tM.
double ModeledUpdateSeconds(double ts_per_source, std::size_t n, int mappers,
                            double tm_merge);

/// Minimum number of machines needed to keep tU below the inter-arrival
/// time tI (p' > tS * n / (tI - tM)); returns 0 when tI <= tM, i.e. the
/// serial part alone already misses the deadline (Section 5.3's caveat).
int RequiredMappers(double ts_per_source, std::size_t n,
                    double inter_arrival_seconds, double tm_merge);

}  // namespace sobc

#endif  // SOBC_PARALLEL_ONLINE_SCHEDULER_H_
