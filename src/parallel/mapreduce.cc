#include "parallel/mapreduce.h"

#include <algorithm>
#include <numeric>
#include <thread>

#include "bc/bd_store_disk.h"
#include "bc/brandes.h"
#include "common/timer.h"
#include "graph/csr_view.h"
#include "parallel/score_reduce.h"

namespace sobc {

namespace {

MsBfsOptions MakeKernelOptions(const ParallelBcOptions& options) {
  MsBfsOptions msbfs;
  msbfs.direction_optimizing = options.do_switch_threshold > 0.0;
  if (msbfs.direction_optimizing) msbfs.alpha = options.do_switch_threshold;
  return msbfs;
}

}  // namespace

double ParallelUpdateTiming::CumulativeSeconds() const {
  double total = merge_seconds + prefilter_seconds;
  for (double s : mapper_seconds) total += s;
  return total;
}

double ParallelUpdateTiming::ModeledWallSeconds() const {
  double slowest = 0.0;
  for (double s : mapper_seconds) slowest = std::max(slowest, s);
  return prefilter_seconds + slowest + merge_seconds;
}

VertexId ParallelDynamicBc::MapperEnd(const Mapper& m) const {
  const auto n = static_cast<VertexId>(graph_.NumVertices());
  return m.limit == kInvalidVertex ? n : std::min(m.limit, n);
}

std::size_t ParallelDynamicBc::MapperOf(VertexId s) const {
  // Partitions are contiguous and ascending; the last one is open-ended.
  std::size_t lo = 0;
  std::size_t hi = mappers_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi + 1) / 2;
    if (mappers_[mid].begin <= s) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

Result<std::unique_ptr<ParallelDynamicBc>> ParallelDynamicBc::Create(
    Graph graph, const ParallelBcOptions& options) {
  if (options.num_mappers <= 0) {
    return Status::InvalidArgument("num_mappers must be positive");
  }
  if (options.variant == BcVariant::kOutOfCore && options.storage_dir.empty()) {
    return Status::InvalidArgument("kOutOfCore variant needs a storage_dir");
  }
  const std::size_t n = graph.NumVertices();
  const auto p = static_cast<std::size_t>(options.num_mappers);
  int threads = options.num_threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 2;
  }
  auto bc = std::unique_ptr<ParallelDynamicBc>(
      new ParallelDynamicBc(std::move(graph), threads));
  bc->options_ = options;
  bc->options_.num_threads = threads;

  // Partition the sources into p contiguous ranges (Figure 4's Pi ranges).
  // The last range is open-ended so future vertices land somewhere.
  bc->mappers_.resize(p);
  const std::size_t share = n / p;
  const std::size_t remainder = n % p;
  VertexId cursor = 0;
  const PredMode pred_mode =
      options.variant == BcVariant::kMemoryPredecessors
          ? PredMode::kPredecessorLists
          : PredMode::kScanNeighbors;
  bc->pred_mode_ = pred_mode;
  for (std::size_t i = 0; i < p; ++i) {
    Mapper& m = bc->mappers_[i];
    m.begin = cursor;
    const std::size_t size = share + (i < remainder ? 1 : 0);
    cursor = static_cast<VertexId>(cursor + size);
    m.limit = i + 1 == p ? kInvalidVertex : cursor;
    if (options.variant == BcVariant::kOutOfCore) {
      const std::string disk_path =
          options.storage_dir + "/bd_part_" + std::to_string(i) + ".bin";
      DiskBdStoreOptions disk_options;
      disk_options.codec = options.store_codec;
      // One slice of the budget per mapper store (its own file, its own
      // shared cache). No floor: cache_mb is a total budget, and raising
      // slices above it would multiply the operator's limit by p.
      disk_options.cache_bytes = (options.cache_mb << 20) / p;
      disk_options.prefetch = options.prefetch;
      auto store = DiskBdStore::Create(disk_path, n,
                                       /*capacity=*/0, m.begin, m.limit,
                                       disk_options);
      if (!store.ok()) return store.status();
      m.disk = store->get();
      m.store = std::move(*store);
    } else {
      m.store = std::make_unique<InMemoryBdStore>(pred_mode, m.begin, m.limit);
    }
  }

  // Step 1 in parallel: each mapper bootstraps its own partition with
  // Brandes, emitting its partial sums; the reduce folds them into the
  // global scores once. The CsrView must exist before the mappers start:
  // the first csr() call builds (mutates) it, every later one is a plain
  // read, so all p mappers share this one snapshot safely.
  if (options.use_csr) bc->graph_.csr();
  bc->prefilter_.ConfigureMsBfs(options.msbfs, MakeKernelOptions(options));
  bc->init_seconds_.assign(p, 0.0);
  BrandesOptions brandes;
  brandes.pred_mode = pred_mode;
  brandes.use_csr = options.use_csr;
  brandes.use_msbfs = options.msbfs;
  brandes.msbfs = MakeKernelOptions(options);
  std::vector<BcScores> init_deltas(p);
  std::vector<Status> init_status(p);
  ParallelFor(bc->pool_.get(), p, [&](std::size_t i) {
    Mapper& m = bc->mappers_[i];
    WallTimer timer;
    // InitializeFromScratch walks the partition through the batched
    // MS-BFS rebuild (64 sources per kernel call) when enabled, the
    // per-source scalar search otherwise.
    init_status[i] = InitializeFromScratch(bc->graph_, brandes, m.store.get(),
                                           &init_deltas[i], m.begin,
                                           bc->MapperEnd(m));
    bc->init_seconds_[i] = timer.Seconds();
  });
  bc->reduced_.vbc.assign(n, 0.0);
  for (std::size_t i = 0; i < p; ++i) {
    SOBC_RETURN_NOT_OK(init_status[i]);
    bc->reduced_.Merge(init_deltas[i]);
  }
  return bc;
}

Status ParallelDynamicBc::EnsureMapWorkers(std::size_t w, std::size_t n) {
  if (workers_.size() < w) workers_.resize(w);
  const bool disk = options_.variant == BcVariant::kOutOfCore;
  for (std::size_t i = 0; i < w; ++i) {
    MapWorker& wk = workers_[i];
    if (wk.engine == nullptr) {
      wk.engine =
          std::make_unique<IncrementalEngine>(pred_mode_, options_.use_csr);
    }
    wk.engine->ConfigureMsBfs(options_.msbfs, MakeKernelOptions(options_));
    if (disk) {
      wk.disk_handles.resize(mappers_.size());
      for (std::size_t m = 0; m < wk.disk_handles.size(); ++m) {
        auto& handle = wk.disk_handles[m];
        if (handle == nullptr) continue;
        if (handle->num_vertices() != mappers_[m].store->num_vertices()) {
          // Stale layout (a Grow rebuilt or re-headered the file): drop it;
          // WorkerStore reopens on demand. A same-layout handle needs
          // nothing — it shares the mapper store's record cache and
          // epochs, so cross-handle writes are already visible.
          handle.reset();
        }
      }
    }
    wk.delta.vbc.assign(n, 0.0);
    wk.delta.ebc.clear();
    wk.stats = UpdateStats{};
    wk.status = Status::OK();
  }
  return Status::OK();
}

Result<BdStore*> ParallelDynamicBc::WorkerStore(MapWorker* worker,
                                                std::size_t m) {
  if (options_.variant != BcVariant::kOutOfCore) {
    // In-memory stores are safe for concurrent access to distinct source
    // records; each source is claimed by exactly one worker per update.
    return mappers_[m].store.get();
  }
  auto& handle = worker->disk_handles[m];
  if (handle == nullptr) {
    auto opened = mappers_[m].disk->OpenShared();
    if (!opened.ok()) return opened.status();
    handle = std::move(*opened);
  }
  return handle.get();
}

Status ParallelDynamicBc::Apply(const EdgeUpdate& update,
                                ParallelUpdateTiming* timing) {
  last_stats_ = UpdateStats{};
  if (update.op == EdgeOp::kAdd) {
    const std::size_t needed =
        static_cast<std::size_t>(std::max(update.u, update.v)) + 1;
    if (needed > graph_.NumVertices()) {
      for (Mapper& m : mappers_) {
        // Grow retires every cached record through the store's cache
        // generation; worker handles revalidate on their next read.
        SOBC_RETURN_NOT_OK(m.store->Grow(needed));
      }
      reduced_.vbc.resize(needed, 0.0);
    }
    SOBC_RETURN_NOT_OK(graph_.AddEdge(update.u, update.v));
  } else {
    SOBC_RETURN_NOT_OK(graph_.RemoveEdge(update.u, update.v));
  }
  const std::size_t n = graph_.NumVertices();

  // Prefilter: the dirty-source worklist every mapper's share is cut from.
  WallTimer prefilter_timer;
  if (options_.prefilter) {
    SOBC_RETURN_NOT_OK(
        prefilter_.Build(graph_, update, options_.use_csr, &worklist_));
    last_stats_.msbfs_batches += prefilter_.last_stats().batches;
    last_stats_.bottom_up_levels += prefilter_.last_stats().bottom_up_levels;
    const auto skipped = static_cast<std::uint64_t>(n - worklist_.size());
    last_stats_.sources_total += skipped;
    last_stats_.sources_skipped += skipped;
    last_stats_.sources_prefiltered += skipped;
  } else {
    worklist_.resize(n);
    std::iota(worklist_.begin(), worklist_.end(), VertexId{0});
  }
  const double prefilter_seconds = prefilter_timer.Seconds();

  // Map phase: slice the worklist into degree-weighted chunks that respect
  // mapper partition edges, then let pool workers claim chunks dynamically
  // (the key-value pairs of Figure 4, restricted to dirty sources).
  FillSourceCostWeights(graph_, options_.use_csr, worklist_, &weights_);
  hard_breaks_.clear();
  for (std::size_t m = 1; m < mappers_.size(); ++m) {
    const auto pos = static_cast<std::size_t>(
        std::lower_bound(worklist_.begin(), worklist_.end(),
                         mappers_[m].begin) -
        worklist_.begin());
    if (pos > 0 && pos < worklist_.size()) hard_breaks_.push_back(pos);
  }
  SourceSharderOptions sharding;
  sharding.num_workers = pool_->num_threads();
  if (options_.msbfs) sharding.batch_align = MsBfsScratch::kLanes;
  sharder_.Reset(worklist_, weights_, sharding, hard_breaks_);

  const std::size_t chunks = sharder_.num_chunks();
  chunk_mapper_.resize(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    chunk_mapper_[c] = MapperOf(worklist_[sharder_.chunk_begin(c)]);
  }
  chunk_seconds_.assign(chunks, 0.0);

  const std::size_t w = std::min(pool_->num_threads(), std::max<std::size_t>(chunks, 1));
  SOBC_RETURN_NOT_OK(EnsureMapWorkers(w, n));

  // Prefetch pipeline (kOutOfCore): prime the first chunks, then let each
  // claim hint the chunk `lookahead` past it onto the owning mapper's
  // store — its background reader decodes records ahead of the workers.
  const bool prefetch = options_.variant == BcVariant::kOutOfCore &&
                        !mappers_.empty() && mappers_[0].disk != nullptr &&
                        mappers_[0].disk->prefetch_enabled();
  const std::size_t lookahead = w + 1;
  if (prefetch) {
    for (std::size_t c = 0; c < std::min(lookahead, chunks); ++c) {
      mappers_[chunk_mapper_[c]].disk->Hint(sharder_.ChunkSources(c));
    }
  }

  if (chunks > 0) {
    ParallelFor(pool_.get(), w, [&](std::size_t i) {
      MapWorker& wk = workers_[i];
      std::span<const VertexId> chunk;
      std::size_t idx = 0;
      while (sharder_.Next(&chunk, &idx)) {
        if (prefetch && idx + lookahead < chunks) {
          const std::size_t ahead = idx + lookahead;
          mappers_[chunk_mapper_[ahead]].disk->Hint(
              sharder_.ChunkSources(ahead));
        }
        auto store = WorkerStore(&wk, chunk_mapper_[idx]);
        if (!store.ok()) {
          wk.status = store.status();
          sharder_.Abort();
          return;
        }
        WallTimer chunk_timer;
        const Status st = wk.engine->ApplyUpdateForSources(
            graph_, update, chunk, *store, &wk.delta, &wk.stats);
        chunk_seconds_[idx] = chunk_timer.Seconds();
        if (!st.ok()) {
          wk.status = st;
          sharder_.Abort();
          return;
        }
      }
    });
  }
  for (std::size_t i = 0; i < w; ++i) {
    SOBC_RETURN_NOT_OK(workers_[i].status);
  }

  // Reduce phase: fold the workers' emitted deltas tree-wise, then one
  // final merge into the maintained global scores.
  WallTimer merge_timer;
  std::vector<BcScores*> partials;
  partials.reserve(w);
  for (std::size_t i = 0; i < w; ++i) partials.push_back(&workers_[i].delta);
  TreeReduceScores(w > 2 ? pool_.get() : nullptr, partials);
  if (w > 0) reduced_.Merge(workers_[0].delta);
  if (update.op == EdgeOp::kRemove) {
    // The removed edge's entry now holds only floating-point residue.
    reduced_.ebc.erase(graph_.MakeKey(update.u, update.v));
  }
  last_merge_seconds_ = merge_timer.Seconds();
  for (std::size_t i = 0; i < w; ++i) last_stats_.Merge(workers_[i].stats);

  // Per-machine accounting: each chunk's time lands on the mapper that
  // owns its sources, so the cluster model still sees p machines.
  mapper_seconds_.assign(mappers_.size(), 0.0);
  for (std::size_t c = 0; c < chunks; ++c) {
    mapper_seconds_[chunk_mapper_[c]] += chunk_seconds_[c];
  }
  if (timing != nullptr) {
    timing->mapper_seconds = mapper_seconds_;
    timing->merge_seconds = last_merge_seconds_;
    timing->prefilter_seconds = prefilter_seconds;
  }
  return Status::OK();
}

Status ParallelDynamicBc::ApplyAll(const EdgeStream& stream) {
  for (const EdgeUpdate& update : stream) {
    SOBC_RETURN_NOT_OK(Apply(update));
  }
  return Status::OK();
}

const BcScores& ParallelDynamicBc::scores() { return reduced_; }

}  // namespace sobc
