#include "parallel/mapreduce.h"

#include <algorithm>
#include <thread>

#include "bc/bd_store_disk.h"
#include "bc/brandes.h"
#include "common/timer.h"

namespace sobc {

double ParallelUpdateTiming::CumulativeSeconds() const {
  double total = merge_seconds;
  for (double s : mapper_seconds) total += s;
  return total;
}

double ParallelUpdateTiming::ModeledWallSeconds() const {
  double slowest = 0.0;
  for (double s : mapper_seconds) slowest = std::max(slowest, s);
  return slowest + merge_seconds;
}

VertexId ParallelDynamicBc::MapperEnd(const Mapper& m) const {
  const auto n = static_cast<VertexId>(graph_.NumVertices());
  return m.limit == kInvalidVertex ? n : std::min(m.limit, n);
}

Result<std::unique_ptr<ParallelDynamicBc>> ParallelDynamicBc::Create(
    Graph graph, const ParallelBcOptions& options) {
  if (options.num_mappers <= 0) {
    return Status::InvalidArgument("num_mappers must be positive");
  }
  if (options.variant == BcVariant::kOutOfCore && options.storage_dir.empty()) {
    return Status::InvalidArgument("kOutOfCore variant needs a storage_dir");
  }
  const std::size_t n = graph.NumVertices();
  const auto p = static_cast<std::size_t>(options.num_mappers);
  int threads = options.num_threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 2;
  }
  auto bc = std::unique_ptr<ParallelDynamicBc>(
      new ParallelDynamicBc(std::move(graph), threads));

  // Partition the sources into p contiguous ranges (Figure 4's Pi ranges).
  // The last range is open-ended so future vertices land somewhere.
  bc->mappers_.resize(p);
  const std::size_t share = n / p;
  const std::size_t remainder = n % p;
  VertexId cursor = 0;
  const PredMode pred_mode =
      options.variant == BcVariant::kMemoryPredecessors
          ? PredMode::kPredecessorLists
          : PredMode::kScanNeighbors;
  for (std::size_t i = 0; i < p; ++i) {
    Mapper& m = bc->mappers_[i];
    m.begin = cursor;
    const std::size_t size = share + (i < remainder ? 1 : 0);
    cursor = static_cast<VertexId>(cursor + size);
    m.limit = i + 1 == p ? kInvalidVertex : cursor;
    if (options.variant == BcVariant::kOutOfCore) {
      auto store = DiskBdStore::Create(
          options.storage_dir + "/bd_part_" + std::to_string(i) + ".bin", n,
          /*capacity=*/0, m.begin, m.limit);
      if (!store.ok()) return store.status();
      m.store = std::move(*store);
    } else {
      m.store = std::make_unique<InMemoryBdStore>(pred_mode, m.begin, m.limit);
    }
    m.engine = std::make_unique<IncrementalEngine>(pred_mode, options.use_csr);
  }

  // Step 1 in parallel: each mapper bootstraps its own partition with
  // Brandes, emitting its partial sums; the reduce folds them into the
  // global scores once. The CsrView must exist before the mappers start:
  // the first csr() call builds (mutates) it, every later one is a plain
  // read, so all p mappers share this one snapshot safely.
  if (options.use_csr) bc->graph_.csr();
  bc->init_seconds_.assign(p, 0.0);
  BrandesOptions brandes;
  brandes.pred_mode = pred_mode;
  brandes.use_csr = options.use_csr;
  ParallelFor(bc->pool_.get(), p, [&](std::size_t i) {
    Mapper& m = bc->mappers_[i];
    WallTimer timer;
    m.delta.vbc.assign(bc->graph_.NumVertices(), 0.0);
    m.delta.ebc.clear();
    SourceBcData data;
    const VertexId end = bc->MapperEnd(m);
    for (VertexId s = m.begin; s < end && m.last_status.ok(); ++s) {
      BrandesSingleSource(bc->graph_, s, brandes, &data, &m.delta);
      m.last_status = m.store->PutInitial(s, std::move(data));
    }
    bc->init_seconds_[i] = timer.Seconds();
  });
  bc->reduced_.vbc.assign(n, 0.0);
  for (Mapper& m : bc->mappers_) {
    if (!m.last_status.ok()) return m.last_status;
    bc->reduced_.Merge(m.delta);
  }
  return bc;
}

Status ParallelDynamicBc::Apply(const EdgeUpdate& update,
                                ParallelUpdateTiming* timing) {
  if (update.op == EdgeOp::kAdd) {
    const std::size_t needed =
        static_cast<std::size_t>(std::max(update.u, update.v)) + 1;
    if (needed > graph_.NumVertices()) {
      for (Mapper& m : mappers_) {
        SOBC_RETURN_NOT_OK(m.store->Grow(needed));
      }
      reduced_.vbc.resize(needed, 0.0);
    }
    SOBC_RETURN_NOT_OK(graph_.AddEdge(update.u, update.v));
  } else {
    SOBC_RETURN_NOT_OK(graph_.RemoveEdge(update.u, update.v));
  }

  // Map phase: every mapper revises its sources independently and emits
  // only the betweenness *changes* of this update (the key-value pairs of
  // Figure 4, restricted to ids whose partial score moved).
  ParallelFor(pool_.get(), mappers_.size(), [&](std::size_t i) {
    Mapper& m = mappers_[i];
    WallTimer timer;
    m.stats = UpdateStats{};
    m.delta.vbc.assign(graph_.NumVertices(), 0.0);
    m.delta.ebc.clear();
    m.last_status = m.engine->ApplyUpdateRange(graph_, update, m.begin,
                                               MapperEnd(m), m.store.get(),
                                               &m.delta, &m.stats);
    m.last_seconds = timer.Seconds();
  });

  // Reduce phase: aggregate the emitted deltas by element id.
  WallTimer merge_timer;
  for (Mapper& m : mappers_) {
    SOBC_RETURN_NOT_OK(m.last_status);
    reduced_.Merge(m.delta);
  }
  if (update.op == EdgeOp::kRemove) {
    // The removed edge's entry now holds only floating-point residue.
    reduced_.ebc.erase(graph_.MakeKey(update.u, update.v));
  }
  last_merge_seconds_ = merge_timer.Seconds();

  if (timing != nullptr) {
    timing->mapper_seconds.clear();
    for (const Mapper& m : mappers_) {
      timing->mapper_seconds.push_back(m.last_seconds);
    }
    timing->merge_seconds = last_merge_seconds_;
  }
  return Status::OK();
}

Status ParallelDynamicBc::ApplyAll(const EdgeStream& stream) {
  for (const EdgeUpdate& update : stream) {
    SOBC_RETURN_NOT_OK(Apply(update));
  }
  return Status::OK();
}

const BcScores& ParallelDynamicBc::scores() { return reduced_; }

UpdateStats ParallelDynamicBc::last_update_stats() const {
  UpdateStats merged;
  for (const Mapper& m : mappers_) merged.Merge(m.stats);
  return merged;
}

}  // namespace sobc
