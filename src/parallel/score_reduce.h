#ifndef SOBC_PARALLEL_SCORE_REDUCE_H_
#define SOBC_PARALLEL_SCORE_REDUCE_H_

#include <span>

#include "bc/bc_types.h"
#include "parallel/thread_pool.h"

namespace sobc {

/// Folds partials[1..] into *partials[0] with a binary reduction tree:
/// ceil(log2(p)) rounds of pairwise BcScores::Merge, the merges of each
/// round running concurrently on the pool. A serial left fold touches
/// partial 0's (large, cache-cold) vbc array p-1 times on one thread; the
/// tree does the same total work but its rounds halve the survivor count,
/// so the drain's reduce step stops being the serial tail Amdahl charges
/// against every added worker. With a null pool the fold degrades to the
/// serial loop.
void TreeReduceScores(ThreadPool* pool, std::span<BcScores*> partials);

}  // namespace sobc

#endif  // SOBC_PARALLEL_SCORE_REDUCE_H_
