#ifndef SOBC_PARALLEL_SOURCE_SHARDER_H_
#define SOBC_PARALLEL_SOURCE_SHARDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace sobc {

/// Per-source weight for chunk sizing, the tS term of the online
/// scheduler's capacity model (Section 5.3) made degree-aware: a constant
/// share for the per-source bookkeeping (peek, view, patch emit) plus the
/// source's degree standing in for the traversal share of the repair
/// pipeline. Exact per-source cost is unknowable up front (skipped vs.
/// structural vs. disconnected differ by orders of magnitude), which is why
/// chunks are *claimed* dynamically rather than pre-assigned.
inline std::uint64_t EstimatedSourceCost(std::size_t degree) {
  return 8 + static_cast<std::uint64_t>(degree);
}

/// Fills `weights` (resized to the worklist length) with the estimated
/// cost of each worklist source, reading degrees from the graph's CsrView
/// snapshot when `use_csr`, the adjacency lists otherwise. Shared by every
/// drain coordinator so the cost model lives in one place.
void FillSourceCostWeights(const Graph& graph, bool use_csr,
                           std::span<const VertexId> worklist,
                           std::vector<std::uint64_t>* weights);

/// Chunking policy of the work-stealing source sharder (DESIGN.md §9).
struct SourceSharderOptions {
  /// Workers that will drain the chunk queue.
  std::size_t num_workers = 1;
  /// Target chunks per worker: enough granularity that a worker stuck on a
  /// heavy structural chunk sheds the rest of the worklist to its peers,
  /// not so much that the atomic cursor becomes the hot spot.
  std::size_t chunks_per_worker = 8;
  /// Floor on a chunk's total weight so tiny worklists do not shatter into
  /// one-source tasks.
  std::uint64_t min_chunk_weight = 64;
  /// Snap weight-triggered chunk cuts to multiples of this many sources
  /// from the chunk's start, so every chunk hands the engine whole MS-BFS
  /// batches (64 lanes) instead of ragged tails that waste lane occupancy.
  /// 1 disables alignment; hard partition breaks still cut exactly.
  std::size_t batch_align = 1;
};

/// Degree-weighted dynamic work distribution over a dirty-source worklist
/// (the parallel embodiment's map phase, rebuilt for skewed per-source
/// cost). Reset() slices the worklist into chunks of roughly equal
/// estimated weight; workers then claim chunks through an atomic cursor —
/// a shared-queue work-stealing discipline: nothing is owned until a
/// worker pops it, so a worker delayed by one expensive source simply
/// claims fewer chunks while its peers drain the rest.
///
/// Reset() may only be called while no worker is draining; Next() is safe
/// from any number of threads.
class SourceSharder {
 public:
  /// Slices `worklist` (with per-entry `weights`, same length) into chunks.
  /// `hard_breaks` lists ascending positions in the worklist where a chunk
  /// must end (exclusive) — the mapper-partition edges of the MapReduce
  /// embodiment, so every chunk lands in exactly one mapper's store. Spans
  /// must stay alive until the drain finishes.
  void Reset(std::span<const VertexId> worklist,
             std::span<const std::uint64_t> weights,
             const SourceSharderOptions& options,
             std::span<const std::size_t> hard_breaks = {});

  /// Claims the next chunk. Returns false when the worklist is drained (or
  /// Abort() was called). `chunk_index` receives the chunk's ordinal, for
  /// per-chunk accounting arrays written without synchronization.
  bool Next(std::span<const VertexId>* chunk,
            std::size_t* chunk_index = nullptr);

  /// Makes every subsequent Next() return false; workers finish the chunk
  /// they hold and stop. Used to cut the drain short on the first error.
  void Abort();

  std::size_t num_chunks() const {
    return bounds_.empty() ? 0 : bounds_.size() - 1;
  }
  /// First worklist position of chunk `i` (chunks partition the worklist in
  /// order, so this also identifies the owning mapper range).
  std::size_t chunk_begin(std::size_t i) const { return bounds_[i]; }

  /// The sources of chunk `i`, readable from any thread during a drain —
  /// the "upcoming dirty-source chunk" published to the out-of-core
  /// prefetch pipeline. Chunks are claimed in ascending order, so the
  /// worker claiming chunk k hints ChunkSources(k + lookahead): a fixed
  /// read-ahead distance past the work-stealing cursor with every chunk
  /// hinted exactly once.
  std::span<const VertexId> ChunkSources(std::size_t i) const {
    return worklist_.subspan(bounds_[i], bounds_[i + 1] - bounds_[i]);
  }

 private:
  std::span<const VertexId> worklist_;
  std::vector<std::size_t> bounds_;  // chunk i = worklist[bounds_[i], bounds_[i+1])
  std::atomic<std::size_t> cursor_{0};
};

}  // namespace sobc

#endif  // SOBC_PARALLEL_SOURCE_SHARDER_H_
