#include "parallel/thread_pool.h"

#include <algorithm>

namespace sobc {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock,
                       [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace sobc
