#ifndef SOBC_PARALLEL_THREAD_POOL_H_
#define SOBC_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sobc {

/// Fixed-size worker pool. Tasks are opaque closures; Wait() blocks until
/// the queue drains and every in-flight task finishes. The parallel
/// executor uses one pool for the lifetime of the framework, submitting one
/// task per logical mapper per update.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  std::size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> threads_;
};

/// Runs fn(i) for i in [0, count) across the pool, blocking until done.
/// Takes the callback by template parameter: each worker invokes fn
/// directly instead of through a std::function thunk, so the only type
/// erasure left is the queued task closure itself.
template <class Fn>
void ParallelFor(ThreadPool* pool, std::size_t count, Fn&& fn) {
  for (std::size_t i = 0; i < count; ++i) {
    pool->Submit([&fn, i] { fn(i); });
  }
  pool->Wait();
}

}  // namespace sobc

#endif  // SOBC_PARALLEL_THREAD_POOL_H_
