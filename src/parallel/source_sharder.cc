#include "parallel/source_sharder.h"

#include <algorithm>

#include "common/logging.h"
#include "graph/csr_view.h"

namespace sobc {

void FillSourceCostWeights(const Graph& graph, bool use_csr,
                           std::span<const VertexId> worklist,
                           std::vector<std::uint64_t>* weights) {
  weights->resize(worklist.size());
  if (use_csr) {
    const CsrView& csr = graph.csr();
    for (std::size_t i = 0; i < worklist.size(); ++i) {
      (*weights)[i] = EstimatedSourceCost(csr.OutDegree(worklist[i]));
    }
  } else {
    for (std::size_t i = 0; i < worklist.size(); ++i) {
      (*weights)[i] = EstimatedSourceCost(graph.OutDegree(worklist[i]));
    }
  }
}

void SourceSharder::Reset(std::span<const VertexId> worklist,
                          std::span<const std::uint64_t> weights,
                          const SourceSharderOptions& options,
                          std::span<const std::size_t> hard_breaks) {
  SOBC_DCHECK(worklist.size() == weights.size());
  worklist_ = worklist;
  bounds_.clear();
  cursor_.store(0, std::memory_order_relaxed);
  if (worklist.empty()) return;

  std::uint64_t total = 0;
  for (std::uint64_t w : weights) total += w;
  const std::size_t workers = std::max<std::size_t>(1, options.num_workers);
  const std::size_t target_chunks =
      std::max<std::size_t>(1, workers * options.chunks_per_worker);
  const std::uint64_t target_weight = std::max<std::uint64_t>(
      options.min_chunk_weight, (total + target_chunks - 1) / target_chunks);

  bounds_.push_back(0);
  std::size_t next_break = 0;  // index into hard_breaks
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < worklist.size(); ++i) {
    acc += weights[i];
    while (next_break < hard_breaks.size() &&
           hard_breaks[next_break] <= i + 1) {
      // Past (or at) a partition edge: a chunk may never straddle it.
      if (hard_breaks[next_break] == i + 1 && i + 1 < worklist.size() &&
          bounds_.back() != i + 1) {
        bounds_.push_back(i + 1);
        acc = 0;
      }
      ++next_break;
    }
    const std::size_t align = std::max<std::size_t>(1, options.batch_align);
    if (acc >= target_weight && i + 1 < worklist.size() &&
        bounds_.back() != i + 1 && (i + 1 - bounds_.back()) % align == 0) {
      bounds_.push_back(i + 1);
      acc = 0;
    }
  }
  bounds_.push_back(worklist.size());
}

bool SourceSharder::Next(std::span<const VertexId>* chunk,
                         std::size_t* chunk_index) {
  const std::size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
  if (i >= num_chunks()) return false;
  *chunk = worklist_.subspan(bounds_[i], bounds_[i + 1] - bounds_[i]);
  if (chunk_index != nullptr) *chunk_index = i;
  return true;
}

void SourceSharder::Abort() {
  cursor_.store(bounds_.size(), std::memory_order_relaxed);
}

}  // namespace sobc
