#ifndef SOBC_GEN_STREAM_GENERATORS_H_
#define SOBC_GEN_STREAM_GENERATORS_H_

#include <cstddef>

#include "common/rng.h"
#include "graph/edge_stream.h"
#include "graph/graph.h"

namespace sobc {

/// The paper's synthetic addition workload (Section 6, "Graph updates"):
/// `count` random currently-unconnected vertex pairs, in arrival order.
EdgeStream RandomAdditionStream(const Graph& graph, std::size_t count,
                                Rng* rng);

/// The paper's synthetic removal workload: `count` random existing edges.
/// The same edge is never removed twice.
EdgeStream RandomRemovalStream(const Graph& graph, std::size_t count,
                               Rng* rng);

/// Parameters of a bursty arrival process: log-normal inter-arrival gaps,
/// which match the heavy-tailed arrival patterns of the paper's real
/// streams (slashdot/facebook replay, Figure 8).
struct ArrivalProcess {
  double lognormal_mu = 0.0;     // log of the median gap, seconds
  double lognormal_sigma = 1.0;  // burstiness
};

/// Stamps `stream` (in place) with arrival times starting at `start_time`,
/// drawing gaps from the process.
void StampArrivalTimes(EdgeStream* stream, const ArrivalProcess& process,
                       double start_time, Rng* rng);

/// A mixed add/remove stream: each element is a removal of a random
/// existing edge with probability `remove_fraction`, otherwise an addition
/// of a random non-edge. Tracks the evolving edge set so the stream is
/// always applicable in order to `graph`.
EdgeStream MixedUpdateStream(const Graph& graph, std::size_t count,
                             double remove_fraction, Rng* rng);

/// A churn-heavy stream for the serving workload: updates toggle a small
/// pool of `pool_size` random non-edges add/remove/add/..., so nearby
/// elements frequently revisit the same edge — exactly the insert/delete
/// churn the update queue's batch coalescing collapses and the
/// EdgeScoreMap's tombstone cleanup absorbs. Always applicable in order.
EdgeStream ChurnStream(const Graph& graph, std::size_t count,
                       std::size_t pool_size, Rng* rng);

}  // namespace sobc

#endif  // SOBC_GEN_STREAM_GENERATORS_H_
