#ifndef SOBC_GEN_DATASET_PROFILES_H_
#define SOBC_GEN_DATASET_PROFILES_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gen/stream_generators.h"
#include "graph/graph.h"

namespace sobc {

/// Family of synthetic stand-in generators (see DESIGN.md, substitution 2).
enum class ProfileKind {
  /// Power-law growth with triadic closure: mid/high clustering social
  /// graphs (wikielections, facebook, epinions, dblp, collaboration nets).
  kSocial,
  /// Random spanning tree plus uniform chords: near-zero clustering,
  /// reply/rating networks (slashdot, amazon).
  kTreePlus,
};

/// A synthetic stand-in for one of the paper's datasets: enough structure
/// (size, density, clustering regime, arrival process) to reproduce the
/// relative behaviour the evaluation attributes to that dataset.
struct DatasetProfile {
  std::string name;
  std::size_t paper_vertices = 0;  // LCC size reported in Table 2/3
  std::size_t paper_edges = 0;
  double paper_cc = 0.0;  // clustering coefficient target
  ProfileKind kind = ProfileKind::kSocial;
  std::size_t edges_per_vertex = 6;   // kSocial growth parameter
  double triangle_probability = 0.3;  // kSocial closure parameter
  /// Inter-arrival process for timestamped replay (Fig. 8 / Table 5).
  ArrivalProcess arrivals;

  /// Edge/vertex ratio of the paper's graph (used to size kTreePlus).
  double EdgeRatio() const {
    return static_cast<double>(paper_edges) /
           static_cast<double>(paper_vertices);
  }
};

/// The six real graphs of Table 2 (wikielections, slashdot, facebook,
/// epinions, dblp, amazon).
const std::vector<DatasetProfile>& RealGraphProfiles();

/// The small graphs of the related-work comparison (Table 3).
const std::vector<DatasetProfile>& RelatedWorkProfiles();

/// Profile for the paper's synthetic social graphs (Table 2 top: 1k..1000k,
/// average degree ~11.8, clustering ~0.2).
DatasetProfile SyntheticSocialProfile(std::size_t vertices);

/// Looks a profile up by name across both lists; nullptr if absent.
const DatasetProfile* FindProfile(const std::string& name);

/// Builds the stand-in graph at `target_vertices` scale (the paper-scale
/// vertex count is in the profile; benches pass a laptop-scale count).
Graph BuildProfileGraph(const DatasetProfile& profile,
                        std::size_t target_vertices, Rng* rng);

}  // namespace sobc

#endif  // SOBC_GEN_DATASET_PROFILES_H_
