#include "gen/dataset_profiles.h"

#include <algorithm>
#include <cmath>

#include "gen/generators.h"
#include "gen/social_generator.h"

namespace sobc {

namespace {

DatasetProfile Social(std::string name, std::size_t v, std::size_t e,
                      double cc, std::size_t epv, double closure,
                      ArrivalProcess arrivals = {}) {
  DatasetProfile p;
  p.name = std::move(name);
  p.paper_vertices = v;
  p.paper_edges = e;
  p.paper_cc = cc;
  p.kind = ProfileKind::kSocial;
  p.edges_per_vertex = epv;
  p.triangle_probability = closure;
  p.arrivals = arrivals;
  return p;
}

DatasetProfile TreePlus(std::string name, std::size_t v, std::size_t e,
                        double cc, ArrivalProcess arrivals = {}) {
  DatasetProfile p;
  p.name = std::move(name);
  p.paper_vertices = v;
  p.paper_edges = e;
  p.paper_cc = cc;
  p.kind = ProfileKind::kTreePlus;
  p.arrivals = arrivals;
  return p;
}

}  // namespace

const std::vector<DatasetProfile>& RealGraphProfiles() {
  // Arrival processes: log-normal gaps in seconds. The paper's Figure 8
  // shows facebook arriving roughly an order of magnitude faster than
  // slashdot, with heavy-tailed bursts; sigma ~2 reproduces that spread.
  static const std::vector<DatasetProfile>* kProfiles =
      new std::vector<DatasetProfile>{
          Social("wikielections", 7066, 100780, 0.126, 14, 0.30,
                 {std::log(900.0), 1.8}),
          TreePlus("slashdot", 51082, 117377, 0.006, {std::log(600.0), 2.0}),
          Social("facebook", 63392, 816885, 0.148, 13, 0.35,
                 {std::log(45.0), 2.2}),
          Social("epinions", 119130, 704571, 0.081, 6, 0.22,
                 {std::log(300.0), 2.0}),
          Social("dblp", 1105171, 4835099, 0.6483, 4, 0.95,
                 {std::log(120.0), 1.5}),
          TreePlus("amazon", 2146057, 5743145, 0.0004,
                   {std::log(150.0), 1.7}),
      };
  return *kProfiles;
}

const std::vector<DatasetProfile>& RelatedWorkProfiles() {
  static const std::vector<DatasetProfile>* kProfiles =
      new std::vector<DatasetProfile>{
          Social("wikivote", 7000, 100000, 0.14, 14, 0.30),
          Social("contact", 10000, 50000, 0.10, 5, 0.25),
          Social("uci-fb-like", 2000, 17000, 0.09, 8, 0.25),
          Social("ca-GrQc", 4158, 13422, 0.56, 3, 0.85),
          Social("ca-HepTh", 8638, 24806, 0.48, 3, 0.80),
          Social("adjnoun", 112, 425, 0.17, 4, 0.30),
          Social("ca-CondMat", 21363, 91286, 0.64, 4, 0.85),
          Social("as-22july06", 22963, 48436, 0.23, 2, 0.35),
      };
  return *kProfiles;
}

DatasetProfile SyntheticSocialProfile(std::size_t vertices) {
  // Table 2 synthetic rows: AD ~11.8, CC ~0.2 at every scale.
  DatasetProfile p = Social("synthetic-" + std::to_string(vertices), vertices,
                            vertices * 59 / 10, 0.21, 6, 0.52);
  return p;
}

const DatasetProfile* FindProfile(const std::string& name) {
  for (const auto& p : RealGraphProfiles()) {
    if (p.name == name) return &p;
  }
  for (const auto& p : RelatedWorkProfiles()) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

Graph BuildProfileGraph(const DatasetProfile& profile,
                        std::size_t target_vertices, Rng* rng) {
  const std::size_t n = std::max<std::size_t>(16, target_vertices);
  switch (profile.kind) {
    case ProfileKind::kSocial: {
      SocialGraphParams params;
      params.edges_per_vertex = profile.edges_per_vertex;
      params.triangle_probability = profile.triangle_probability;
      // Relabel so vertex ids carry no locality; real dataset ids do not
      // follow attachment order either, and balanced contiguous source
      // partitions depend on it.
      return RelabelRandom(GenerateSocialGraph(n, params, rng), rng);
    }
    case ProfileKind::kTreePlus: {
      Graph g = GenerateRandomTree(n, rng);
      const double ratio = std::max(1.0, profile.EdgeRatio());
      const auto target_edges = static_cast<std::size_t>(ratio * n);
      std::size_t guard = 0;
      while (g.NumEdges() < target_edges && guard < 100 * target_edges) {
        ++guard;
        const auto u = static_cast<VertexId>(rng->Uniform(n));
        const auto v = static_cast<VertexId>(rng->Uniform(n));
        if (u == v) continue;
        (void)g.AddEdge(u, v);
      }
      return g;
    }
  }
  return Graph();
}

}  // namespace sobc
