#ifndef SOBC_GEN_SOCIAL_GENERATOR_H_
#define SOBC_GEN_SOCIAL_GENERATOR_H_

#include <cstddef>

#include "common/rng.h"
#include "graph/graph.h"

namespace sobc {

/// Parameters of the synthetic social-graph generator. This is the
/// substitution for the measurement-calibrated generator of Sala et al.
/// [32] used by the paper (see DESIGN.md): a Holme–Kim-style power-law
/// growth process with tunable triadic closure, calibrated so the defaults
/// reproduce the paper's Table 2 synthetic targets (average degree ~11.8,
/// clustering coefficient ~0.2, effective diameter 5.5–7.8).
struct SocialGraphParams {
  /// Edges each arriving vertex brings (average degree ~ 2x this).
  std::size_t edges_per_vertex = 6;
  /// Probability that an attachment closes a triangle with the previous
  /// target's neighborhood rather than following preferential attachment.
  double triangle_probability = 0.52;

  /// Paper-calibrated defaults (Table 2 synthetic row).
  static SocialGraphParams PaperDefaults() { return SocialGraphParams{}; }
};

/// Generates an undirected social-like graph with n vertices.
Graph GenerateSocialGraph(std::size_t n, const SocialGraphParams& params,
                          Rng* rng);

}  // namespace sobc

#endif  // SOBC_GEN_SOCIAL_GENERATOR_H_
