#include "gen/generators.h"

#include <algorithm>
#include <vector>

namespace sobc {

Graph GenerateErdosRenyi(std::size_t n, std::size_t m, Rng* rng) {
  Graph g;
  if (n == 0) return g;
  g.EnsureVertex(static_cast<VertexId>(n - 1));
  const std::size_t max_edges = n * (n - 1) / 2;
  m = std::min(m, max_edges);
  std::size_t attempts = 0;
  while (g.NumEdges() < m && attempts < 100 * m + 100) {
    ++attempts;
    const auto u = static_cast<VertexId>(rng->Uniform(n));
    const auto v = static_cast<VertexId>(rng->Uniform(n));
    if (u == v) continue;
    (void)g.AddEdge(u, v);
  }
  return g;
}

Graph GenerateBarabasiAlbert(std::size_t n, std::size_t edges_per_vertex,
                             Rng* rng) {
  Graph g;
  if (n == 0) return g;
  const std::size_t m = std::max<std::size_t>(1, edges_per_vertex);
  const std::size_t seed = std::min(n, m + 1);
  g.EnsureVertex(static_cast<VertexId>(n - 1));
  // Seed clique.
  for (VertexId u = 0; u < seed; ++u) {
    for (VertexId v = u + 1; v < seed; ++v) (void)g.AddEdge(u, v);
  }
  // Endpoint pool: each vertex appears once per incident edge, so sampling
  // uniformly from the pool is degree-proportional sampling.
  std::vector<VertexId> pool;
  pool.reserve(2 * n * m);
  g.ForEachEdge([&pool](VertexId u, VertexId v) {
    pool.push_back(u);
    pool.push_back(v);
  });
  for (VertexId v = static_cast<VertexId>(seed); v < n; ++v) {
    std::size_t added = 0;
    std::size_t guard = 0;
    while (added < m && guard < 100 * m + 100) {
      ++guard;
      const VertexId target =
          pool.empty() ? static_cast<VertexId>(rng->Uniform(v))
                       : pool[rng->Uniform(pool.size())];
      if (target == v) continue;
      if (g.AddEdge(v, target).ok()) {
        pool.push_back(v);
        pool.push_back(target);
        ++added;
      }
    }
  }
  return g;
}

Graph GenerateWattsStrogatz(std::size_t n, std::size_t neighbors_each_side,
                            double rewire_p, Rng* rng) {
  Graph g;
  if (n == 0) return g;
  g.EnsureVertex(static_cast<VertexId>(n - 1));
  const std::size_t k = std::min(neighbors_each_side, (n - 1) / 2);
  for (VertexId u = 0; u < n; ++u) {
    for (std::size_t j = 1; j <= k; ++j) {
      const auto v = static_cast<VertexId>((u + j) % n);
      if (rng->Chance(rewire_p)) {
        // Rewire the lattice edge to a random target, keeping the degree
        // roughly intact; fall back to the lattice edge on collisions.
        std::size_t guard = 0;
        while (guard++ < 32) {
          const auto w = static_cast<VertexId>(rng->Uniform(n));
          if (w == u) continue;
          if (g.AddEdge(u, w).ok()) break;
        }
      } else {
        (void)g.AddEdge(u, v);
      }
    }
  }
  return g;
}

Graph RelabelRandom(const Graph& graph, Rng* rng) {
  const std::size_t n = graph.NumVertices();
  std::vector<VertexId> perm(n);
  for (VertexId v = 0; v < n; ++v) perm[v] = v;
  for (std::size_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng->Uniform(i)]);
  }
  Graph out(graph.directed());
  if (n > 0) out.EnsureVertex(static_cast<VertexId>(n - 1));
  graph.ForEachEdge([&](VertexId u, VertexId v) {
    (void)out.AddEdge(perm[u], perm[v]);
  });
  return out;
}

Graph GenerateRandomTree(std::size_t n, Rng* rng) {
  Graph g;
  if (n == 0) return g;
  g.EnsureVertex(static_cast<VertexId>(n - 1));
  for (VertexId v = 1; v < n; ++v) {
    const auto parent = static_cast<VertexId>(rng->Uniform(v));
    (void)g.AddEdge(parent, v);
  }
  return g;
}

}  // namespace sobc
