#include "gen/stream_generators.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

namespace sobc {

EdgeStream RandomAdditionStream(const Graph& graph, std::size_t count,
                                Rng* rng) {
  EdgeStream stream;
  const std::size_t n = graph.NumVertices();
  if (n < 2) return stream;
  std::unordered_set<EdgeKey, EdgeKeyHash> chosen;
  std::size_t guard = 0;
  while (stream.size() < count && guard < 200 * count + 1000) {
    ++guard;
    const auto u = static_cast<VertexId>(rng->Uniform(n));
    const auto v = static_cast<VertexId>(rng->Uniform(n));
    if (u == v || graph.HasEdge(u, v)) continue;
    if (!chosen.insert(graph.MakeKey(u, v)).second) continue;
    stream.push_back({u, v, EdgeOp::kAdd, 0.0});
  }
  return stream;
}

EdgeStream RandomRemovalStream(const Graph& graph, std::size_t count,
                               Rng* rng) {
  EdgeStream stream;
  std::vector<EdgeKey> edges = graph.Edges();
  if (edges.empty()) return stream;
  count = std::min(count, edges.size());
  // Partial Fisher-Yates: pick `count` distinct edges.
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + rng->Uniform(edges.size() - i);
    std::swap(edges[i], edges[j]);
    stream.push_back({edges[i].u, edges[i].v, EdgeOp::kRemove, 0.0});
  }
  return stream;
}

void StampArrivalTimes(EdgeStream* stream, const ArrivalProcess& process,
                       double start_time, Rng* rng) {
  double t = start_time;
  for (EdgeUpdate& update : *stream) {
    update.timestamp = t;
    t += rng->LogNormal(process.lognormal_mu, process.lognormal_sigma);
  }
}

EdgeStream MixedUpdateStream(const Graph& graph, std::size_t count,
                             double remove_fraction, Rng* rng) {
  EdgeStream stream;
  const std::size_t n = graph.NumVertices();
  if (n < 2) return stream;
  std::vector<EdgeKey> edges = graph.Edges();
  std::unordered_set<EdgeKey, EdgeKeyHash> present(edges.begin(), edges.end());
  std::size_t guard = 0;
  while (stream.size() < count && guard < 500 * count + 1000) {
    ++guard;
    const bool remove = !edges.empty() && rng->Chance(remove_fraction);
    if (remove) {
      const std::size_t i = rng->Uniform(edges.size());
      const EdgeKey key = edges[i];
      edges[i] = edges.back();
      edges.pop_back();
      present.erase(key);
      stream.push_back({key.u, key.v, EdgeOp::kRemove, 0.0});
    } else {
      const auto u = static_cast<VertexId>(rng->Uniform(n));
      const auto v = static_cast<VertexId>(rng->Uniform(n));
      if (u == v) continue;
      const EdgeKey key = graph.MakeKey(u, v);
      if (present.count(key) != 0) continue;
      present.insert(key);
      edges.push_back(key);
      stream.push_back({key.u, key.v, EdgeOp::kAdd, 0.0});
    }
  }
  return stream;
}

EdgeStream ChurnStream(const Graph& graph, std::size_t count,
                       std::size_t pool_size, Rng* rng) {
  EdgeStream stream;
  const std::size_t n = graph.NumVertices();
  if (n < 2 || pool_size == 0) return stream;
  // Pool of distinct non-edges; each starts absent and toggles thereafter.
  std::vector<EdgeKey> pool;
  std::unordered_set<EdgeKey, EdgeKeyHash> chosen;
  std::size_t guard = 0;
  while (pool.size() < pool_size && guard < 200 * pool_size + 1000) {
    ++guard;
    const auto u = static_cast<VertexId>(rng->Uniform(n));
    const auto v = static_cast<VertexId>(rng->Uniform(n));
    if (u == v || graph.HasEdge(u, v)) continue;
    if (!chosen.insert(graph.MakeKey(u, v)).second) continue;
    pool.push_back(graph.MakeKey(u, v));
  }
  if (pool.empty()) return stream;
  std::vector<bool> present(pool.size(), false);
  stream.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = rng->Uniform(pool.size());
    const EdgeOp op = present[j] ? EdgeOp::kRemove : EdgeOp::kAdd;
    present[j] = !present[j];
    stream.push_back({pool[j].u, pool[j].v, op, 0.0});
  }
  return stream;
}

}  // namespace sobc
