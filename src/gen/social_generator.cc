#include "gen/social_generator.h"

#include <algorithm>
#include <vector>

namespace sobc {

Graph GenerateSocialGraph(std::size_t n, const SocialGraphParams& params,
                          Rng* rng) {
  Graph g;
  if (n == 0) return g;
  const std::size_t m = std::max<std::size_t>(1, params.edges_per_vertex);
  const std::size_t seed = std::min(n, m + 1);
  g.EnsureVertex(static_cast<VertexId>(n - 1));
  for (VertexId u = 0; u < seed; ++u) {
    for (VertexId v = u + 1; v < seed; ++v) (void)g.AddEdge(u, v);
  }
  std::vector<VertexId> pool;  // degree-proportional endpoint pool
  pool.reserve(2 * n * m);
  g.ForEachEdge([&pool](VertexId u, VertexId v) {
    pool.push_back(u);
    pool.push_back(v);
  });
  for (VertexId v = static_cast<VertexId>(seed); v < n; ++v) {
    VertexId last_target = kInvalidVertex;
    std::size_t added = 0;
    std::size_t guard = 0;
    while (added < m && guard < 200 * m + 100) {
      ++guard;
      VertexId target = kInvalidVertex;
      // Triadic closure: link to a neighbor of the previous target, which
      // is what lifts clustering to social-network levels (Holme & Kim).
      if (last_target != kInvalidVertex &&
          rng->Chance(params.triangle_probability)) {
        const auto neighbors = g.OutNeighbors(last_target);
        if (!neighbors.empty()) {
          target = neighbors[rng->Uniform(neighbors.size())];
        }
      }
      if (target == kInvalidVertex) {
        target = pool.empty() ? static_cast<VertexId>(rng->Uniform(v))
                              : pool[rng->Uniform(pool.size())];
      }
      if (target == v) continue;
      if (g.AddEdge(v, target).ok()) {
        pool.push_back(v);
        pool.push_back(target);
        last_target = target;
        ++added;
      }
    }
  }
  return g;
}

}  // namespace sobc
