#ifndef SOBC_GEN_GENERATORS_H_
#define SOBC_GEN_GENERATORS_H_

#include <cstddef>

#include "common/rng.h"
#include "graph/graph.h"

namespace sobc {

/// Erdős–Rényi G(n, m): n vertices, m distinct uniformly random edges.
Graph GenerateErdosRenyi(std::size_t n, std::size_t m, Rng* rng);

/// Barabási–Albert preferential attachment: every new vertex attaches to
/// `edges_per_vertex` existing vertices chosen proportionally to degree.
/// Power-law degrees, vanishing clustering.
Graph GenerateBarabasiAlbert(std::size_t n, std::size_t edges_per_vertex,
                             Rng* rng);

/// Watts–Strogatz small world: ring lattice with `neighbors_each_side`
/// links per side, rewired with probability `rewire_p`. High clustering,
/// short paths.
Graph GenerateWattsStrogatz(std::size_t n, std::size_t neighbors_each_side,
                            double rewire_p, Rng* rng);

/// Random tree (uniform attachment): a connected skeleton used by tests
/// and as a high-diameter stress case.
Graph GenerateRandomTree(std::size_t n, Rng* rng);

/// Returns a copy of `graph` with vertex ids randomly permuted. Growth
/// generators hand out ids in attachment order, which correlates id ranges
/// with graph neighborhoods; relabeling removes that correlation so
/// contiguous source partitions (Section 5.2) are load-balanced.
Graph RelabelRandom(const Graph& graph, Rng* rng);

}  // namespace sobc

#endif  // SOBC_GEN_GENERATORS_H_
