#ifndef SOBC_COMMON_FLAG_PARSE_H_
#define SOBC_COMMON_FLAG_PARSE_H_

// Validated numeric parsing for command-line flag values. The std::strtod /
// std::strtoul idiom silently accepts trailing junk ("--epsilon=0.1x"),
// empty values, "inf"/"nan", and (for the unsigned variants) negative
// numbers that wrap — all of which turn an operator typo into a quietly
// wrong deployment. These helpers parse the WHOLE token or fail.

#include <cstdint>
#include <string>

#include "common/status.h"

namespace sobc {

/// Parses `text` as a double. The entire token must be consumed and the
/// value must be finite — "inf", "nan", "", and "1.5abc" are all
/// InvalidArgument.
Result<double> ParseFiniteDouble(const std::string& text);

/// ParseFiniteDouble plus an inclusive range check [min, max].
Result<double> ParseFiniteDoubleInRange(const std::string& text, double min,
                                        double max);

/// Parses `text` as a base-10 unsigned integer. The entire token must be
/// consumed; a leading '-' (which strtoull would wrap to a huge value) and
/// out-of-range magnitudes are InvalidArgument.
Result<std::uint64_t> ParseUint64(const std::string& text);

}  // namespace sobc

#endif  // SOBC_COMMON_FLAG_PARSE_H_
