#ifndef SOBC_COMMON_TIMER_H_
#define SOBC_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace sobc {

/// Monotonic wall-clock stopwatch. Starts on construction; Restart() resets.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart, in seconds.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in microseconds.
  std::int64_t Micros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sobc

#endif  // SOBC_COMMON_TIMER_H_
