#ifndef SOBC_COMMON_ENV_H_
#define SOBC_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace sobc {

/// Reads an environment variable, returning `fallback` if unset or invalid.
/// The bench harness uses these to pick between laptop-scale defaults and
/// the paper's full-scale parameters (e.g. SOBC_SCALE=paper).
std::string GetEnvString(const char* name, const std::string& fallback);
std::int64_t GetEnvInt(const char* name, std::int64_t fallback);

/// True when SOBC_SCALE=paper: benches then use the paper's graph sizes.
bool UsePaperScale();

}  // namespace sobc

#endif  // SOBC_COMMON_ENV_H_
