#include "common/io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <thread>

namespace sobc {

namespace {

class PosixIo final : public Io {
 public:
  int Open(const char* path, int flags, unsigned mode) override {
    return ::open(path, flags, mode);
  }
  long Read(int fd, void* buf, std::size_t count) override {
    return ::read(fd, buf, count);
  }
  long Write(int fd, const void* buf, std::size_t count) override {
    return ::write(fd, buf, count);
  }
  long Pread(int fd, void* buf, std::size_t count,
             std::int64_t offset) override {
    return ::pread(fd, buf, count, static_cast<off_t>(offset));
  }
  long Pwrite(int fd, const void* buf, std::size_t count,
              std::int64_t offset) override {
    return ::pwrite(fd, buf, count, static_cast<off_t>(offset));
  }
  int Fsync(int fd) override { return ::fsync(fd); }
  int Fdatasync(int fd) override { return ::fdatasync(fd); }
  int Msync(void* addr, std::size_t length, int flags) override {
    return ::msync(addr, length, flags);
  }
  int Ftruncate(int fd, std::int64_t length) override {
    return ::ftruncate(fd, static_cast<off_t>(length));
  }
  int Close(int fd) override { return ::close(fd); }
  int Rename(const char* from, const char* to) override {
    return ::rename(from, to);
  }
  int Unlink(const char* path) override { return ::unlink(path); }
};

std::atomic<Io*> g_io{nullptr};

std::atomic<std::uint64_t> g_retries{0};
std::atomic<std::uint64_t> g_retries_exhausted{0};
std::atomic<std::uint64_t> g_faults_injected{0};

}  // namespace

Io* Io::Default() {
  static PosixIo posix_io;
  return &posix_io;
}

Io* Io::Get() {
  Io* io = g_io.load(std::memory_order_acquire);
  return io != nullptr ? io : Default();
}

Io* Io::Install(Io* io) {
  Io* previous = g_io.exchange(io, std::memory_order_acq_rel);
  return previous != nullptr ? previous : Default();
}

IoCounters ReadIoCounters() {
  IoCounters counters;
  counters.retries = g_retries.load(std::memory_order_relaxed);
  counters.retries_exhausted =
      g_retries_exhausted.load(std::memory_order_relaxed);
  counters.faults_injected = g_faults_injected.load(std::memory_order_relaxed);
  return counters;
}

void RecordIoRetry() { g_retries.fetch_add(1, std::memory_order_relaxed); }

void RecordIoRetriesExhausted() {
  g_retries_exhausted.fetch_add(1, std::memory_order_relaxed);
}

void RecordInjectedFault() {
  g_faults_injected.fetch_add(1, std::memory_order_relaxed);
}

bool IsTransientIoErrno(int err) {
  return err == EINTR || err == EAGAIN || err == EWOULDBLOCK;
}

void IoBackoff(int attempt) {
  // SplitMix64 over a per-thread counter: deterministic per thread, yet
  // different threads (different stack addresses seed the counter) spread
  // out. No global state, no clock dependence.
  thread_local std::uint64_t jitter_state =
      reinterpret_cast<std::uintptr_t>(&jitter_state);
  jitter_state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = jitter_state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;

  const int shift = std::min(attempt, 5);
  const std::int64_t base_us = std::min<std::int64_t>(50LL << shift, 2000);
  // Jitter in [0.75, 1.25) of the base.
  const double factor = 0.75 + 0.5 * static_cast<double>(z >> 11) * 0x1.0p-53;
  const auto sleep_us =
      static_cast<std::int64_t>(static_cast<double>(base_us) * factor);
  std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
}

}  // namespace sobc
