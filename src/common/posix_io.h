#ifndef SOBC_COMMON_POSIX_IO_H_
#define SOBC_COMMON_POSIX_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace sobc {

/// Small shared file-I/O helpers for the durability layer (WAL +
/// checkpoint + columnar store). One implementation of errno reporting,
/// full-buffer reads/writes with bounded transient-errno retry, and
/// directory/file fsync, so the subsystems cannot silently diverge in
/// durability behavior. Everything goes through the pluggable Io seam
/// (common/io.h), which is what makes every error branch fault-injectable.

/// Thread-safe strerror: renders `err` without touching the static buffer
/// std::strerror may share across threads.
std::string SafeStrerror(int err);

/// IOError carrying errno's message, e.g. "write failed for p: ...". Reads
/// the calling thread's errno; the returned Status carries it in
/// sys_errno() so callers can branch on the cause (ENOSPC vs EIO).
Status ErrnoStatus(const char* what, const std::string& path);

/// Same, for an errno value saved before intervening calls could clobber it.
Status ErrnoStatusFrom(int err, const char* what, const std::string& path);

/// Writes the whole buffer, absorbing short writes and retrying transient
/// errnos (EINTR/EAGAIN) with bounded, jittered exponential backoff; the
/// retry cap turns a persistent transient storm into a reported error.
Status WriteFully(int fd, const void* data, std::size_t size,
                  const std::string& path);

/// Reads up to `size` bytes; `*got` receives the count actually read
/// (short only at end-of-file). Transient errnos retry as in WriteFully;
/// a real read error (EIO) returns it.
Status ReadUpTo(int fd, void* out, std::size_t size, std::size_t* got,
                const std::string& path);

/// Positioned full-buffer read/write with the same retry policy; a short
/// pread hitting end-of-file is an IOError (callers read fixed-size
/// headers and records that must exist in full).
Status PreadFully(int fd, void* out, std::size_t size, std::uint64_t offset,
                  const std::string& path);
Status PwriteFully(int fd, const void* data, std::size_t size,
                   std::uint64_t offset, const std::string& path);

/// fsync of the directory entry itself, making file creation/removal/
/// rename inside it durable (a file-content sync does not cover its
/// directory entry).
Status SyncDir(const std::string& dir);

/// Opens `path` read-only and fsyncs it (used after ofstream-based
/// writers, which flush but never sync).
Status SyncFile(const std::string& path);

}  // namespace sobc

#endif  // SOBC_COMMON_POSIX_IO_H_
