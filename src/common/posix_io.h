#ifndef SOBC_COMMON_POSIX_IO_H_
#define SOBC_COMMON_POSIX_IO_H_

#include <cstddef>
#include <string>

#include "common/status.h"

namespace sobc {

/// Small shared POSIX I/O helpers for the durability layer (WAL +
/// checkpoint). One implementation of errno reporting, full-buffer
/// writes, and directory/file fsync, so the two subsystems cannot
/// silently diverge in durability behavior.

/// IOError carrying errno's message, e.g. "write failed for p: ...".
Status ErrnoStatus(const char* what, const std::string& path);

/// Writes the whole buffer, retrying on EINTR and short writes.
Status WriteFully(int fd, const void* data, std::size_t size,
                  const std::string& path);

/// fsync of the directory entry itself, making file creation/removal/
/// rename inside it durable (a file-content sync does not cover its
/// directory entry).
Status SyncDir(const std::string& dir);

/// Opens `path` read-only and fsyncs it (used after ofstream-based
/// writers, which flush but never sync).
Status SyncFile(const std::string& path);

}  // namespace sobc

#endif  // SOBC_COMMON_POSIX_IO_H_
